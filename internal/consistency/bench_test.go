package consistency

import (
	"testing"
	"time"
)

func BenchmarkSimulateOverhead(b *testing.B) {
	st := randomSharedTrace(1, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateOverhead(st)
	}
	b.ReportMetric(float64(len(st.Events)), "events")
}

func BenchmarkSimulateStale(b *testing.B) {
	st := randomSharedTrace(1, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateStale(st, 60*time.Second)
	}
}

func BenchmarkCollectShared(b *testing.B) {
	// CollectShared itself scans the full trace twice.
	recs := randomRecords(3, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CollectShared(recs)
	}
}
