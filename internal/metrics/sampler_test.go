package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSamplerSeriesAndRing(t *testing.T) {
	r := New()
	var v int64
	r.Int(Desc{Name: "n_total", Unit: "ops", Help: "n", Kind: Counter},
		Labels{L("client", "0")}, func() int64 { return v })
	s := NewSampler(r, 3, nil)
	for i := 1; i <= 5; i++ {
		v = int64(i * 10)
		s.Sample(time.Duration(i) * time.Second)
	}
	if s.Len() != 3 || s.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", s.Len(), s.Dropped())
	}
	ser := s.Get("n_total", `{client="0"}`)
	if len(ser.Values) != 3 || ser.Values[0] != 30 || ser.Values[2] != 50 {
		t.Fatalf("ring series = %+v", ser.Values)
	}
	if ser.Times[0] != 3*time.Second {
		t.Fatalf("oldest retained time = %v, want 3s", ser.Times[0])
	}
}

func TestSamplerLateColumns(t *testing.T) {
	r := New()
	d := Desc{Name: "m_total", Unit: "ops", Help: "m", Kind: Counter}
	r.Int(d, Labels{L("i", "0")}, func() int64 { return 1 })
	s := NewSampler(r, 0, nil)
	s.Sample(time.Second)
	// A second instance appears after the first sample (replay clients
	// materialize lazily); earlier rows must read as missing, not zero.
	r.Int(d, Labels{L("i", "1")}, func() int64 { return 2 })
	s.Sample(2 * time.Second)

	late := s.Get("m_total", `{i="1"}`)
	if !isNaN(late.Values[0]) || late.Values[1] != 2 {
		t.Fatalf("late column values = %v", late.Values)
	}
	var b strings.Builder
	if err := s.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("tsv lines = %d:\n%s", len(lines), b.String())
	}
	if !strings.Contains(lines[1], "\t-") {
		t.Fatalf("missing value not rendered as '-': %q", lines[1])
	}
}

func TestSamplerMatchFilterAndDeterminism(t *testing.T) {
	build := func() string {
		r := New()
		r.Int(Desc{Name: "keep_total", Unit: "ops", Help: "k", Kind: Counter}, nil, func() int64 { return 7 })
		r.Int(Desc{Name: "drop_total", Unit: "ops", Help: "d", Kind: Counter}, nil, func() int64 { return 9 })
		s := NewSampler(r, 0, func(name string) bool { return name == "keep_total" })
		s.Sample(time.Second)
		s.Sample(2 * time.Second)
		var b strings.Builder
		if err := s.WriteTSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := build()
	if strings.Contains(out, "drop_total") {
		t.Fatalf("filtered metric leaked into series:\n%s", out)
	}
	if out != build() {
		t.Fatal("sampler TSV not deterministic")
	}
}
