package netsim

import (
	"spritefs/internal/metrics"
)

// RegisterMetrics registers the wire's byte/op accounting (the Table 5 and
// Table 7 instrumentation) and the fault-hook perturbation counters into
// the central registry. One Network serves the whole cluster, so these
// families are registered once per run, with a class label per traffic
// category.
func (n *Network) RegisterMetrics(r *metrics.Registry) {
	for c := Class(0); c < NumClasses; c++ {
		ls := metrics.Labels{metrics.L("class", c.String())}
		r.IntVar(metrics.Desc{Name: "spritefs_net_bytes_total", Unit: "bytes",
			Help: "Bytes crossing the wire, by traffic class (Table 7's breakdown).",
			Kind: metrics.Counter},
			ls, &n.total.Bytes[c])
		r.IntVar(metrics.Desc{Name: "spritefs_net_ops_total", Unit: "ops",
			Help: "RPCs issued, by traffic class.",
			Kind: metrics.Counter},
			ls, &n.total.Ops[c])
	}
	r.SecondsVar(metrics.Desc{Name: "spritefs_net_busy_seconds",
		Help: "Cumulative wire-busy time; divided by elapsed virtual time it gives the paper's ~4% Ethernet utilization check.",
		Kind: metrics.Counter},
		nil, &n.busy)

	fctr := func(name, help string, v *int64) {
		r.IntVar(metrics.Desc{Name: name, Unit: "ops", Help: help, Kind: metrics.Counter}, nil, v)
	}
	fctr("spritefs_net_fault_dropped_ops_total",
		"RPCs that lost at least one packet to an injected drop window or partition.", &n.faults.DroppedOps)
	fctr("spritefs_net_fault_retransmits_total",
		"Total packet retransmissions forced by injected faults.", &n.faults.Retransmit)
	fctr("spritefs_net_fault_stalled_ops_total",
		"RPCs that incurred fault-induced extra delay.", &n.faults.StalledOps)
	r.SecondsVar(metrics.Desc{Name: "spritefs_net_fault_stall_seconds",
		Help: "Total extra latency added by injected faults (partition waits, retransmission timeouts, delay windows).",
		Kind: metrics.Counter},
		nil, &n.faults.StallTime)
}
