package server

import (
	"strconv"

	"spritefs/internal/metrics"
)

// RegisterMetrics registers the server's consistency-action counters
// (Table 10), name-space bookkeeping, crash/recovery counters and — when
// storage is attached — the server cache and disk counters, all labeled
// server="<id>".
func (s *Server) RegisterMetrics(r *metrics.Registry) {
	ls := metrics.Labels{metrics.L("server", strconv.Itoa(int(s.id)))}
	ctr := func(name, unit, help string, v *int64) {
		r.IntVar(metrics.Desc{Name: name, Unit: unit, Help: help, Kind: metrics.Counter}, ls, v)
	}
	ctr("spritefs_server_file_opens_total", "ops",
		"Opens of regular files served (Table 10's denominator).", &s.st.FileOpens)
	ctr("spritefs_server_dir_opens_total", "ops",
		"Opens of directories served.", &s.st.DirOpens)
	ctr("spritefs_server_creates_total", "ops",
		"Files and directories created.", &s.st.Creates)
	ctr("spritefs_server_deletes_total", "ops",
		"Files deleted.", &s.st.Deletes)
	ctr("spritefs_server_truncates_total", "ops",
		"Truncate-to-zero operations (counted as deletes by the lifetime analysis).", &s.st.Truncates)
	ctr("spritefs_server_recalls_total", "ops",
		"Opens that triggered a dirty-data recall from the last writer (Table 10).", &s.st.Recalls)
	ctr("spritefs_server_cws_events_total", "ops",
		"Opens that initiated concurrent write-sharing and disabled client caching (Table 10).", &s.st.CWSEvents)
	ctr("spritefs_server_cacheoff_ops_total", "ops",
		"Reads and writes passed through while a file was uncacheable.", &s.st.CacheOffOps)
	ctr("spritefs_server_invalidations_total", "ops",
		"Stale-version invalidations instructed to clients at open.", &s.st.Invalids)
	ctr("spritefs_server_writeback_bytes_total", "bytes",
		"Bytes accepted via WriteBack RPCs — the server side of the conservation invariant the fault harness checks.", &s.st.WriteBackBytes)
	ctr("spritefs_server_crashes_total", "crashes",
		"Times this server crashed (fault injection).", &s.st.Crashes)
	ctr("spritefs_server_opens_lost_in_crash_total", "ops",
		"Open registrations discarded with the volatile tables by crashes.", &s.st.OpensLostInCrash)
	ctr("spritefs_server_recovery_opens_total", "ops",
		"Handle re-registrations served after restarts (the reopen storm).", &s.st.RecoveryOpens)
	ctr("spritefs_server_recovery_cws_total", "ops",
		"Concurrent write-sharing re-detected during recovery reopens.", &s.st.RecoveryCWS)
	r.SecondsVar(metrics.Desc{Name: "spritefs_server_max_recovery_seconds",
		Help: "Longest crash-to-reconsistency interval observed: from crash until the slowest client finished the recovery protocol.",
		Kind: metrics.Gauge},
		ls, &s.st.MaxRecoveryTime)
	r.Int(metrics.Desc{Name: "spritefs_server_epoch", Unit: "restarts",
		Help: "Restart generation; clients compare it against the epoch they last saw to detect crashes.",
		Kind: metrics.Gauge},
		ls, func() int64 { return int64(s.epoch) })
	r.Int(metrics.Desc{Name: "spritefs_server_files", Unit: "files",
		Help: "Files currently present in the server's name space.",
		Kind: metrics.Gauge},
		ls, func() int64 { return int64(len(s.files)) })

	if s.Store != nil {
		s.Store.registerMetrics(r, ls)
	}
}

// registerMetrics registers the storage layer's cache/disk counters plus
// the internal block cache under the spritefs_server_cache prefix (kept
// distinct from the client spritefs_cache families so projections over
// client caches never double-count server-side blocks).
func (st *Storage) registerMetrics(r *metrics.Registry, ls metrics.Labels) {
	ctr := func(name, unit, help string, v *int64) {
		r.IntVar(metrics.Desc{Name: name, Unit: unit, Help: help, Kind: metrics.Counter}, ls, v)
	}
	ctr("spritefs_server_store_read_blocks_total", "blocks",
		"Client block fetches served by the storage layer.", &st.st.ReadBlocks)
	ctr("spritefs_server_store_read_miss_blocks_total", "blocks",
		"Served fetches that missed the server cache and touched the disk (Table 7's server-cache commentary).", &st.st.ReadMissBlocks)
	ctr("spritefs_server_store_write_blocks_total", "blocks",
		"Writeback blocks accepted into the server cache.", &st.st.WriteBlocks)
	ctr("spritefs_server_store_disk_reads_total", "ops",
		"Disk read operations (~25 ms each in the 1991 model).", &st.st.DiskReads)
	ctr("spritefs_server_store_disk_writes_total", "ops",
		"Disk write operations.", &st.st.DiskWrites)
	ctr("spritefs_server_store_lost_dirty_bytes_total", "bytes",
		"Server-cache bytes that were dirty (not yet on disk) when the server crashed.", &st.st.LostDirtyBytes)
	r.SecondsVar(metrics.Desc{Name: "spritefs_server_store_disk_busy_seconds",
		Help: "Cumulative disk-busy time.",
		Kind: metrics.Counter},
		ls, &st.st.DiskBusy)
	r.SecondsVar(metrics.Desc{Name: "spritefs_server_store_max_lost_dirty_age_seconds",
		Help: "Age of the oldest dirty byte destroyed by a server crash.",
		Kind: metrics.Gauge},
		ls, &st.st.MaxLostDirtyAge)
	st.cache.RegisterMetrics(r, "spritefs_server_cache", ls)
}
