// wan-scale demonstrates the hierarchical topology: the paper's
// community multiplied to 400 clients on four Ethernet segments, but
// the segments grouped into two sites joined by a WAN trunk instead of
// a flat campus backbone. Remote artifacts (binaries, kernels,
// group-shared files) are homed by consistent hashing at site
// granularity; client site affinity keeps most remote traffic on the
// cheap intra-site tier, and the report breaks out what crossed the
// WAN and what it cost in latency. The hierarchical run preserves the
// flat run's guarantee — sequential and parallel executors are
// byte-identical — so the example runs both and checks.
//
//	go run ./examples/wan-scale
package main

import (
	"bytes"
	"fmt"
	"time"

	"spritefs/internal/scale"
	"spritefs/internal/workload"
)

func main() {
	cfg := scale.Config{
		Base:   workload.Default(42),
		Factor: 10, // 400 clients
		Shards: 4,  // four Ethernet segments...
		Sites:  2,  // ...grouped two per site, sites joined by a WAN trunk
		Tiers: scale.TiersConfig{
			Site: scale.Tier{Latency: 2 * time.Millisecond, BandwidthBps: 12.5e6},
			WAN:  scale.Tier{Latency: 30 * time.Millisecond, BandwidthBps: 5.625e6},
		},
	}
	cfg.Remote = scale.DefaultRemote()
	cfg.Remote.SiteAffinity = 0.7 // 70% of remote picks prefer the local site

	build := func() *scale.Engine { return scale.MustNew(cfg) }
	horizon := 30 * time.Minute

	par := build()
	parStats := par.Run(scale.RunOptions{Horizon: horizon, Parallel: true})
	seq := build()
	seqStats := seq.Run(scale.RunOptions{Horizon: horizon})

	rep := par.Report()
	fmt.Println(rep.Table())
	fmt.Println(rep.ExecTable())

	var a, b bytes.Buffer
	if err := par.Reg.WritePrometheus(&a); err != nil {
		panic(err)
	}
	if err := seq.Reg.WritePrometheus(&b); err != nil {
		panic(err)
	}
	seqRep := seq.Report()
	if !bytes.Equal(a.Bytes(), b.Bytes()) || rep.Table().String() != seqRep.Table().String() {
		panic("parallel and sequential executors disagree")
	}
	var remoteOps int64
	for _, s := range rep.PerShard {
		remoteOps += s.Remote.OpsIssued
	}
	fmt.Printf("cross-site ops: %d of %d remote (%.0f%% stayed on the site tier)\n",
		rep.CrossSiteOps, remoteOps,
		100*(1-float64(rep.CrossSiteOps)/float64(max(remoteOps, 1))))
	fmt.Printf("wan trunk: %d msgs, %.1f MB, %.2f%% utilized\n",
		rep.WANMsgs, float64(rep.WANBytes)/1e6, rep.WANUtil*100)
	fmt.Printf("parallel (%d workers): %v wall   sequential: %v wall\n",
		parStats.Workers, parStats.Wall.Round(time.Millisecond), seqStats.Wall.Round(time.Millisecond))
	fmt.Println("reports and metric dumps are byte-identical across executors")
}
