package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: spritefs/internal/scale
BenchmarkScaleEngine/clients=1000/shards=1-4         	       1	3200000000 ns/op	 900000 B/op	    1200 allocs/op
BenchmarkScaleEngine/clients=1000/shards=8-4         	       1	 800000000 ns/op	 950000 B/op	    1300 allocs/op
BenchmarkRecoveryStorm/clients=64-4                  	      10	   1500000 ns/op
PASS
ok  	spritefs/internal/scale	5.1s
`

func TestConvert(t *testing.T) {
	o, err := Convert(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(o.Benchmarks))
	}
	e := o.Benchmarks[0]
	if e.Name != "BenchmarkScaleEngine/clients=1000/shards=1" ||
		e.Clients != 1000 || e.Shards != 1 ||
		e.NsPerOp != 3.2e9 || e.BytesPerOp != 900000 || e.AllocsPerOp != 1200 {
		t.Errorf("first entry parsed wrong: %+v", e)
	}
	storm := o.Benchmarks[2]
	if storm.Clients != 64 || storm.Shards != 0 || storm.Iterations != 10 {
		t.Errorf("recovery entry parsed wrong: %+v", storm)
	}
	if len(o.Speedups) != 1 {
		t.Fatalf("derived %d speedups, want 1: %+v", len(o.Speedups), o.Speedups)
	}
	s := o.Speedups[0]
	if s.Benchmark != "BenchmarkScaleEngine" || s.Clients != 1000 ||
		s.Shards != 8 || s.OverShards != 1 || s.WallClock != 4.0 {
		t.Errorf("speedup derived wrong: %+v", s)
	}
}

func TestConvertRejectsEmpty(t *testing.T) {
	if _, err := Convert(strings.NewReader("PASS\n")); err == nil {
		t.Error("empty input accepted")
	}
}
