// scale-out demonstrates the sharded cluster topology: the paper's
// community multiplied to 400 clients, split across four Ethernet
// segments joined by a campus backbone, run with the deterministic
// parallel executor. The same topology run sequentially produces
// byte-identical reports — only wall-clock changes — so the example
// runs both and checks.
//
//	go run ./examples/scale-out
package main

import (
	"bytes"
	"fmt"
	"time"

	"spritefs/internal/scale"
	"spritefs/internal/workload"
)

func main() {
	cfg := scale.Config{
		Base:   workload.Default(42),
		Factor: 10, // 400 clients
		Shards: 4,
	}

	build := func() *scale.Engine { return scale.MustNew(cfg) }
	horizon := 30 * time.Minute

	par := build()
	parStats := par.Run(scale.RunOptions{Horizon: horizon, Parallel: true})
	seq := build()
	seqStats := seq.Run(scale.RunOptions{Horizon: horizon})

	rep := par.Report()
	fmt.Println(rep.Table())
	fmt.Println(rep.ExecTable())

	var a, b bytes.Buffer
	if err := par.Reg.WritePrometheus(&a); err != nil {
		panic(err)
	}
	if err := seq.Reg.WritePrometheus(&b); err != nil {
		panic(err)
	}
	seqRep := seq.Report()
	if !bytes.Equal(a.Bytes(), b.Bytes()) || rep.Table().String() != seqRep.Table().String() {
		panic("parallel and sequential executors disagree")
	}
	fmt.Printf("parallel (%d workers): %v wall   sequential: %v wall\n",
		parStats.Workers, parStats.Wall.Round(time.Millisecond), seqStats.Wall.Round(time.Millisecond))
	fmt.Println("reports and metric dumps are byte-identical across executors")
}
