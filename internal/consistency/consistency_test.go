package consistency

import (
	"testing"
	"time"

	"spritefs/internal/trace"
)

func rec(t time.Duration, kind trace.Kind, client int32, file uint64, flags uint8, off, n int64, handle uint64) trace.Record {
	return trace.Record{
		Time: t, Kind: kind, Client: client, User: client + 100, File: file,
		Flags: flags, Offset: off, Length: n, Handle: handle,
	}
}

func TestCollectSharedFindsCrossClientWrites(t *testing.T) {
	recs := []trace.Record{
		// File 1: written by client 0, read by client 1 -> shared.
		rec(1*time.Second, trace.KindOpen, 0, 1, trace.FlagWriteMode, 0, 0, 10),
		rec(2*time.Second, trace.KindWrite, 0, 1, 0, 0, 100, 10),
		rec(3*time.Second, trace.KindClose, 0, 1, trace.FlagWriteMode, 0, 0, 10),
		rec(4*time.Second, trace.KindOpen, 1, 1, trace.FlagReadMode, 0, 0, 11),
		rec(5*time.Second, trace.KindRead, 1, 1, 0, 0, 100, 11),
		rec(6*time.Second, trace.KindClose, 1, 1, trace.FlagReadMode, 0, 0, 11),
		// File 2: only client 0 -> not shared.
		rec(7*time.Second, trace.KindOpen, 0, 2, trace.FlagWriteMode, 0, 0, 12),
		rec(8*time.Second, trace.KindWrite, 0, 2, 0, 0, 100, 12),
		rec(9*time.Second, trace.KindClose, 0, 2, trace.FlagWriteMode, 0, 0, 12),
		// File 3: two readers, never written -> not shared.
		rec(10*time.Second, trace.KindOpen, 0, 3, trace.FlagReadMode, 0, 0, 13),
		rec(11*time.Second, trace.KindOpen, 1, 3, trace.FlagReadMode, 0, 0, 14),
	}
	st := CollectShared(recs)
	if st.TotalOpens != 5 {
		t.Errorf("TotalOpens = %d, want 5", st.TotalOpens)
	}
	for _, ev := range st.Events {
		if ev.File != 1 {
			t.Errorf("non-shared file %d in events", ev.File)
		}
	}
	if len(st.Events) != 6 {
		t.Errorf("events = %d, want 6", len(st.Events))
	}
	if st.Duration != 11*time.Second {
		t.Errorf("duration = %v", st.Duration)
	}
	if len(st.Users) != 2 {
		t.Errorf("users = %d", len(st.Users))
	}
}

func TestCollectSharedIgnoresDirectories(t *testing.T) {
	recs := []trace.Record{
		rec(1, trace.KindOpen, 0, 1, trace.FlagWriteMode|trace.FlagDirectory, 0, 0, 1),
		rec(2, trace.KindOpen, 1, 1, trace.FlagReadMode|trace.FlagDirectory, 0, 0, 2),
	}
	st := CollectShared(recs)
	if st.TotalOpens != 0 || len(st.Events) != 0 {
		t.Errorf("directories leaked: opens=%d events=%d", st.TotalOpens, len(st.Events))
	}
}

// sequentialSharing builds the classic stale-data scenario: client 0
// writes the file, then client 1 reads it repeatedly while client 0
// overwrites it again.
func sequentialSharing() SharedTrace {
	var recs []trace.Record
	// Client 0 writes v1 at t=0.
	recs = append(recs,
		rec(0, trace.KindOpen, 0, 1, trace.FlagWriteMode, 0, 0, 1),
		rec(1*time.Second, trace.KindWrite, 0, 1, 0, 0, 4096, 1),
		rec(2*time.Second, trace.KindClose, 0, 1, trace.FlagWriteMode, 0, 0, 1),
	)
	// Client 1 reads at t=10 (validates), then client 0 overwrites at
	// t=12, then client 1 reads again at t=15 (inside a 60s window:
	// stale; outside a 3s window: revalidates).
	recs = append(recs,
		rec(10*time.Second, trace.KindOpen, 1, 1, trace.FlagReadMode, 0, 0, 2),
		rec(10*time.Second+500*time.Millisecond, trace.KindRead, 1, 1, 0, 0, 4096, 2),
		rec(12*time.Second, trace.KindOpen, 0, 1, trace.FlagWriteMode, 0, 0, 3),
		rec(12*time.Second+500*time.Millisecond, trace.KindWrite, 0, 1, 0, 0, 4096, 3),
		rec(13*time.Second, trace.KindClose, 0, 1, trace.FlagWriteMode, 0, 0, 3),
		rec(15*time.Second, trace.KindRead, 1, 1, 0, 0, 4096, 2),
		rec(16*time.Second, trace.KindClose, 1, 1, trace.FlagReadMode, 0, 0, 2),
	)
	return CollectShared(recs)
}

func TestSimulateStaleLongIntervalSeesError(t *testing.T) {
	st := sequentialSharing()
	res := SimulateStale(st, 60*time.Second)
	if res.Errors != 1 {
		t.Fatalf("errors = %d, want 1", res.Errors)
	}
	if res.UsersAffected != 1 {
		t.Errorf("users affected = %d", res.UsersAffected)
	}
	if res.OpensWithError != 1 {
		t.Errorf("opens with error = %d", res.OpensWithError)
	}
	if got := res.PctOpensWithError(); got < 33.3 || got > 33.4 { // 1 of 3 opens
		t.Errorf("pct opens = %g", got)
	}
	if res.ErrorsPerHour <= 0 {
		t.Errorf("errors/hour = %g", res.ErrorsPerHour)
	}
}

func TestSimulateStaleShortIntervalAvoidsError(t *testing.T) {
	st := sequentialSharing()
	// The second read comes 4.5 s after validation: a 3-second window has
	// expired, so the client revalidates and sees fresh data.
	res := SimulateStale(st, 3*time.Second)
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0", res.Errors)
	}
}

func TestSimulateStaleShorterIntervalNeverWorse(t *testing.T) {
	st := sequentialSharing()
	long := SimulateStale(st, 60*time.Second)
	short := SimulateStale(st, 3*time.Second)
	if short.Errors > long.Errors {
		t.Errorf("shorter interval produced more errors: %d > %d", short.Errors, long.Errors)
	}
}

func TestSimulateStaleWriterSeesOwnData(t *testing.T) {
	recs := []trace.Record{
		rec(0, trace.KindOpen, 0, 1, trace.FlagWriteMode|trace.FlagReadMode, 0, 0, 1),
		rec(1*time.Second, trace.KindWrite, 0, 1, 0, 0, 100, 1),
		rec(2*time.Second, trace.KindRead, 0, 1, 0, 0, 100, 1),
		rec(3*time.Second, trace.KindClose, 0, 1, trace.FlagWriteMode, 0, 0, 1),
		// Second client makes the file shared.
		rec(4*time.Second, trace.KindOpen, 1, 1, trace.FlagReadMode, 0, 0, 2),
		rec(5*time.Second, trace.KindRead, 1, 1, 0, 0, 100, 2),
	}
	res := SimulateStale(CollectShared(recs), 60*time.Second)
	if res.Errors != 0 {
		t.Errorf("writer reading its own fresh write errored: %d", res.Errors)
	}
}

// cwsEpisode builds a concurrent write-sharing episode: clients 0 and 1
// both have the file open, client 1 writing, with ops flagged Shared.
func cwsEpisode(opBytes int64, nOps int) SharedTrace {
	var recs []trace.Record
	t := time.Duration(0)
	recs = append(recs,
		rec(t, trace.KindOpen, 0, 1, trace.FlagReadMode, 0, 0, 1),
		rec(t+time.Second, trace.KindOpen, 1, 1, trace.FlagWriteMode, 0, 0, 2),
	)
	t += 2 * time.Second
	off := int64(0)
	for i := 0; i < nOps; i++ {
		recs = append(recs,
			rec(t, trace.KindWrite, 1, 1, trace.FlagShared, off, opBytes, 2),
			rec(t+500*time.Millisecond, trace.KindRead, 0, 1, trace.FlagShared, off, opBytes, 1),
		)
		off += opBytes
		t += time.Second
	}
	recs = append(recs,
		rec(t, trace.KindClose, 1, 1, trace.FlagWriteMode, 0, 0, 2),
		rec(t+time.Second, trace.KindClose, 0, 1, trace.FlagReadMode, 0, 0, 1),
	)
	return CollectShared(recs)
}

func TestOverheadSpriteIsExactlyAppTraffic(t *testing.T) {
	o := SimulateOverhead(cwsEpisode(1000, 10))
	if o.AppOps != 20 || o.AppBytes != 20000 {
		t.Fatalf("app traffic: ops=%d bytes=%d", o.AppOps, o.AppBytes)
	}
	if o.Bytes[AlgSprite] != o.AppBytes {
		t.Errorf("sprite bytes = %d, want %d", o.Bytes[AlgSprite], o.AppBytes)
	}
	if o.RPCs[AlgSprite] != o.AppOps {
		t.Errorf("sprite rpcs = %d, want %d", o.RPCs[AlgSprite], o.AppOps)
	}
	if o.ByteRatio(AlgSprite) != 1.0 || o.RPCRatio(AlgSprite) != 1.0 {
		t.Errorf("sprite ratios: %g / %g", o.ByteRatio(AlgSprite), o.RPCRatio(AlgSprite))
	}
}

func TestOverheadModifiedEqualsSpriteDuringPureCWS(t *testing.T) {
	// The entire episode is concurrent write-sharing, so the modified
	// scheme never re-enables caching: identical traffic to Sprite.
	o := SimulateOverhead(cwsEpisode(1000, 10))
	if o.Bytes[AlgModified] != o.Bytes[AlgSprite] {
		t.Errorf("modified bytes = %d, sprite = %d", o.Bytes[AlgModified], o.Bytes[AlgSprite])
	}
}

func TestOverheadTokenThrashesOnFineGrainedSharing(t *testing.T) {
	// Fine-grained alternating reads and writes: the token bounces
	// between clients, flushing and re-reading whole 4 KB blocks for each
	// small access — the paper's "worse than the Sprite approach" case.
	o := SimulateOverhead(cwsEpisode(100, 10))
	if o.Bytes[AlgToken] <= o.Bytes[AlgSprite] {
		t.Errorf("token (%d bytes) should exceed sprite (%d) at fine grain",
			o.Bytes[AlgToken], o.Bytes[AlgSprite])
	}
}

func TestOverheadTokenWinsForRepeatedReadsOfStableData(t *testing.T) {
	// One writer writes once; a second client then reads the same block
	// many times while both remain open (still CWS, so Sprite keeps
	// passing reads through, but the token scheme caches after the first
	// fetch).
	var recs []trace.Record
	recs = append(recs,
		rec(0, trace.KindOpen, 1, 1, trace.FlagWriteMode, 0, 0, 2),
		rec(time.Second, trace.KindOpen, 0, 1, trace.FlagReadMode, 0, 0, 1),
		rec(2*time.Second, trace.KindWrite, 1, 1, trace.FlagShared, 0, 4096, 2),
	)
	t0 := 3 * time.Second
	for i := 0; i < 50; i++ {
		recs = append(recs, rec(t0, trace.KindRead, 0, 1, trace.FlagShared, 0, 4096, 1))
		t0 += 100 * time.Millisecond
	}
	recs = append(recs,
		rec(t0, trace.KindClose, 1, 1, trace.FlagWriteMode, 0, 0, 2),
		rec(t0+time.Second, trace.KindClose, 0, 1, trace.FlagReadMode, 0, 0, 1),
	)
	o := SimulateOverhead(CollectShared(recs))
	if o.RPCs[AlgToken] >= o.RPCs[AlgSprite] {
		t.Errorf("token rpcs = %d, sprite = %d; token should win on re-reads",
			o.RPCs[AlgToken], o.RPCs[AlgSprite])
	}
}

func TestOverheadEmptyTrace(t *testing.T) {
	o := SimulateOverhead(SharedTrace{})
	if o.ByteRatio(AlgSprite) != 0 || o.RPCRatio(AlgToken) != 0 {
		t.Error("empty trace produced nonzero ratios")
	}
}

func TestStaleEmptyTrace(t *testing.T) {
	res := SimulateStale(SharedTrace{Users: map[int32]bool{}}, time.Minute)
	if res.Errors != 0 || res.ErrorsPerHour != 0 || res.PctUsersAffected() != 0 {
		t.Errorf("empty trace: %+v", res)
	}
}
