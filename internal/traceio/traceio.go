// Package traceio converts foreign trace formats into the native
// trace.Record stream, following the replay-trace taxonomy's
// capture→normalize→replay pipeline: the paper's methodology rests on
// captured traces, and this package is how somebody else's capture gets
// onto this reproduction's cache/server/consistency stack.
//
// Two importers are provided — a generic CSV/TSV I/O-trace adapter with a
// configurable column mapping (SNIA-style dumps) and an strace-like
// syscall-log adapter — sharing one synthesis core that interns paths to
// file IDs, infers open/close brackets around orphaned reads and writes,
// and normalizes timestamps to a zero-based virtual timebase. Imported
// streams are stamped with trace header version 2 so trace.Merge refuses
// to interleave them with native captures.
//
// The Modernize transform rescales an imported (or native) trace's
// request sizes, rates, file populations and client counts toward
// present-day profiles, TraceTracker-style, and reports exactly what it
// scaled.
package traceio

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"spritefs/internal/trace"
)

// ImportVersion is the trace header version stamped on imported streams.
const ImportVersion = uint16(2)

// Options control the shared import pipeline.
type Options struct {
	// NumServers is the number of file servers imported paths are spread
	// across (the top 16 bits of the file ID route records to servers,
	// exactly as in the live cluster). Default 4.
	NumServers int
	// Clients caps the number of distinct workstations synthesized for
	// formats that identify only processes, not machines (strace).
	// Default 8. Formats that carry a client column ignore this.
	Clients int
}

func (o Options) withDefaults() Options {
	if o.NumServers <= 0 {
		o.NumServers = 4
	}
	if o.NumServers > 1<<15 {
		o.NumServers = 1 << 15
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	return o
}

// ImportReport summarizes what an importer did and inferred, so the
// operator can judge how much of the resulting stream is synthesized
// scaffolding versus captured fact.
type ImportReport struct {
	Rows        int // input rows/lines seen (excluding blank/comment)
	Malformed   int // rows skipped as unparseable
	Ignored     int // rows parsed but not representable (untraced fds, unknown ops)
	Records     int // native records emitted
	Files       int // distinct files interned
	Clients     int // distinct workstations
	SynthOpens  int // opens synthesized around orphaned reads/writes
	SynthCloses int // closes synthesized for handles still open at EOF
	Reordered   int // events that arrived out of timestamp order
	Duration    time.Duration
	Notes       []string // first few skip diagnostics
}

// String renders the report as an aligned key: value block.
func (r *ImportReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rows parsed:        %d (%d malformed, %d ignored)\n", r.Rows, r.Malformed, r.Ignored)
	fmt.Fprintf(&b, "records emitted:    %d\n", r.Records)
	fmt.Fprintf(&b, "files interned:     %d\n", r.Files)
	fmt.Fprintf(&b, "workstations:       %d\n", r.Clients)
	fmt.Fprintf(&b, "synthesized opens:  %d\n", r.SynthOpens)
	fmt.Fprintf(&b, "synthesized closes: %d\n", r.SynthCloses)
	fmt.Fprintf(&b, "reordered events:   %d\n", r.Reordered)
	fmt.Fprintf(&b, "trace duration:     %s\n", r.Duration)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// note records a skip diagnostic, keeping only the first few.
func (r *ImportReport) note(format string, args ...any) {
	const maxNotes = 8
	if len(r.Notes) < maxNotes {
		r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
	} else if len(r.Notes) == maxNotes {
		r.Notes = append(r.Notes, "... further diagnostics suppressed")
	}
}

// event is one parsed foreign-trace row, before record synthesis.
type event struct {
	time   time.Duration
	client int32
	user   int32
	proc   int32
	kind   trace.Kind
	flags  uint8 // open modes / directory flag
	path   string
	offset int64 // -1 = implicit sequential (use the handle's position)
	length int64
	size   int64 // size hint, 0 if unknown
	seq    int   // input order, the tie-break under equal timestamps
}

// builder is the shared synthesis core: path→file-ID interning, handle
// inference, and time normalization.
type builder struct {
	opt     Options
	rep     *ImportReport
	files   map[string]uint64 // path → file ID
	sizes   map[uint64]int64  // file ID → running max extent
	nextSeq []uint64          // per-server file sequence numbers
	open    map[openKey]*openState
	nextH   uint64
	out     []trace.Record
}

type openKey struct {
	client int32
	proc   int32
	file   uint64
}

type openState struct {
	key    openKey
	handle uint64
	pos    int64
	dir    bool
}

func newBuilder(opt Options, rep *ImportReport) *builder {
	return &builder{
		opt:     opt,
		rep:     rep,
		files:   make(map[string]uint64),
		sizes:   make(map[uint64]int64),
		nextSeq: make([]uint64, opt.NumServers),
		open:    make(map[openKey]*openState),
		nextH:   1,
	}
}

// intern maps a path to a stable file ID. The owning server is the FNV-1a
// hash of the cleaned path modulo the server count, mirroring how the live
// cluster spreads its name space; the low 48 bits are a per-server
// sequence number, so IDs are dense and deterministic in first-appearance
// order.
func (b *builder) intern(path string) uint64 {
	path = cleanPath(path)
	if id, ok := b.files[path]; ok {
		return id
	}
	h := fnv.New32a()
	h.Write([]byte(path))
	srv := uint64(h.Sum32()) % uint64(b.opt.NumServers)
	b.nextSeq[srv]++
	id := srv<<48 | b.nextSeq[srv]
	b.files[path] = id
	return id
}

// cleanPath canonicalizes separators and strips trailing slashes so
// "/a/b/" and "/a/b" intern to the same file.
func cleanPath(p string) string {
	p = strings.TrimSpace(p)
	for len(p) > 1 && strings.HasSuffix(p, "/") {
		p = p[:len(p)-1]
	}
	if p == "" {
		p = "/"
	}
	return p
}

// build runs the synthesis pass: sort parsed events into timestamp order
// (stable, so equal stamps keep input order), shift the timebase to zero,
// then emit native records with inferred open/close brackets.
func (b *builder) build(events []event) ([]trace.Record, error) {
	if len(events) == 0 {
		if b.rep.Rows == 0 {
			return nil, fmt.Errorf("traceio: empty input")
		}
		return nil, fmt.Errorf("traceio: no usable events in %d rows (%d malformed, %d ignored)",
			b.rep.Rows, b.rep.Malformed, b.rep.Ignored)
	}
	for i := 1; i < len(events); i++ {
		if events[i].time < events[i-1].time {
			b.rep.Reordered++
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		return events[i].seq < events[j].seq
	})
	base := events[0].time
	for i := range events {
		events[i].time -= base
	}
	for i := range events {
		b.emit(&events[i])
	}
	// Handles still open at end-of-trace get a synthesized close at the
	// final timestamp, in deterministic (client, proc, file) order.
	last := events[len(events)-1].time
	states := make([]*openState, 0, len(b.open))
	for _, st := range b.open {
		states = append(states, st)
	}
	sort.Slice(states, func(i, j int) bool {
		a, c := states[i].key, states[j].key
		if a.client != c.client {
			return a.client < c.client
		}
		if a.proc != c.proc {
			return a.proc < c.proc
		}
		return a.file < c.file
	})
	for _, st := range states {
		b.closeState(st, last)
		b.rep.SynthCloses++
	}
	b.rep.Records = len(b.out)
	b.rep.Files = len(b.files)
	b.rep.Duration = last
	clients := make(map[int32]bool)
	for i := range b.out {
		clients[b.out[i].Client] = true
	}
	b.rep.Clients = len(clients)
	return b.out, nil
}

// push appends one record, stamping the routing server from the file ID.
func (b *builder) push(r trace.Record) {
	r.Server = int16(r.File >> 48)
	b.out = append(b.out, r)
}

// ensureOpen returns the open state for (client, proc, file), synthesizing
// an open bracket at time t if the foreign trace never showed one (the
// orphaned-read/write case: the capture started mid-session).
func (b *builder) ensureOpen(ev *event, file uint64) *openState {
	k := openKey{client: ev.client, proc: ev.proc, file: file}
	if st, ok := b.open[k]; ok {
		return st
	}
	st := &openState{key: k, handle: b.nextH, dir: ev.flags&trace.FlagDirectory != 0}
	b.nextH++
	b.open[k] = st
	flags := uint8(trace.FlagReadMode | trace.FlagWriteMode)
	if st.dir {
		flags |= trace.FlagDirectory
	}
	b.push(trace.Record{
		Time: ev.time, Kind: trace.KindOpen, Flags: flags,
		Client: ev.client, User: ev.user, Proc: ev.proc,
		File: file, Handle: st.handle, Size: b.sizes[file],
	})
	b.rep.SynthOpens++
	return st
}

// closeState emits a close for st and forgets it.
func (b *builder) closeState(st *openState, t time.Duration) {
	var flags uint8
	if st.dir {
		flags = trace.FlagDirectory
	}
	b.push(trace.Record{
		Time: t, Kind: trace.KindClose, Flags: flags,
		Client: st.key.client, Proc: st.key.proc,
		File: st.key.file, Handle: st.handle, Size: b.sizes[st.key.file],
	})
	delete(b.open, st.key)
}

// grow tracks the running max extent of a file, the size stamped on
// subsequent opens and closes.
func (b *builder) grow(file uint64, extent int64) {
	if extent > b.sizes[file] {
		b.sizes[file] = extent
	}
}

// emit converts one time-ordered event into native records.
func (b *builder) emit(ev *event) {
	file := b.intern(ev.path)
	switch ev.kind {
	case trace.KindOpen:
		k := openKey{client: ev.client, proc: ev.proc, file: file}
		if st, ok := b.open[k]; ok {
			// Double open without a close: close the stale bracket first
			// so handles never alias.
			b.closeState(st, ev.time)
			b.rep.SynthCloses++
		}
		st := &openState{key: k, handle: b.nextH, dir: ev.flags&trace.FlagDirectory != 0}
		b.nextH++
		b.open[k] = st
		flags := ev.flags
		if flags&(trace.FlagReadMode|trace.FlagWriteMode) == 0 {
			flags |= trace.FlagReadMode | trace.FlagWriteMode
		}
		b.grow(file, ev.size)
		b.push(trace.Record{
			Time: ev.time, Kind: trace.KindOpen, Flags: flags,
			Client: ev.client, User: ev.user, Proc: ev.proc,
			File: file, Handle: st.handle, Size: b.sizes[file],
		})

	case trace.KindClose:
		k := openKey{client: ev.client, proc: ev.proc, file: file}
		st, ok := b.open[k]
		if !ok {
			// Close with no open in the window: synthesize the bracket so
			// the pair replays.
			st = b.ensureOpen(ev, file)
		}
		b.closeState(st, ev.time)

	case trace.KindRead, trace.KindWrite, trace.KindDirRead:
		st := b.ensureOpen(ev, file)
		off := ev.offset
		if off < 0 {
			off = st.pos
		}
		st.pos = off + ev.length
		if ev.kind != trace.KindRead || b.sizes[file] < off+ev.length {
			b.grow(file, off+ev.length)
		}
		var flags uint8
		if st.dir || ev.kind == trace.KindDirRead {
			flags |= trace.FlagDirectory
		}
		b.push(trace.Record{
			Time: ev.time, Kind: ev.kind, Flags: flags,
			Client: ev.client, User: ev.user, Proc: ev.proc,
			File: file, Handle: st.handle, Offset: off, Length: ev.length,
		})

	case trace.KindReposition:
		st := b.ensureOpen(ev, file)
		st.pos = ev.offset
		b.push(trace.Record{
			Time: ev.time, Kind: trace.KindReposition,
			Client: ev.client, User: ev.user, Proc: ev.proc,
			File: file, Handle: st.handle, Offset: ev.offset,
		})

	case trace.KindCreate:
		b.grow(file, ev.size)
		b.push(trace.Record{
			Time: ev.time, Kind: trace.KindCreate, Flags: ev.flags & trace.FlagDirectory,
			Client: ev.client, User: ev.user, Proc: ev.proc, File: file,
		})

	case trace.KindDelete, trace.KindTruncate:
		if ev.kind == trace.KindDelete {
			// Unlink-while-open has no counterpart in the Sprite model:
			// close every live bracket on the file first, deterministically.
			var stale []*openState
			for _, st := range b.open {
				if st.key.file == file {
					stale = append(stale, st)
				}
			}
			sort.Slice(stale, func(i, j int) bool {
				a, c := stale[i].key, stale[j].key
				if a.client != c.client {
					return a.client < c.client
				}
				return a.proc < c.proc
			})
			for _, st := range stale {
				b.closeState(st, ev.time)
				b.rep.SynthCloses++
			}
		}
		b.sizes[file] = 0
		b.push(trace.Record{
			Time: ev.time, Kind: ev.kind, Flags: ev.flags & trace.FlagDirectory,
			Client: ev.client, User: ev.user, Proc: ev.proc, File: file,
		})
	}
}
