// Package fscache implements the Sprite client file cache measured in
// Section 5 of the paper: a block-oriented (4 KB) main-memory cache with
// LRU replacement, a 30-second delayed-write policy enforced by a 5-second
// cleaner daemon, write fetches for partial writes of non-resident blocks,
// fsync write-through, dirty-data recall for cache consistency, and a
// dynamically adjustable size negotiated with the virtual memory system.
//
// The cache is passive with respect to I/O: operations return descriptions
// of the server transfers they imply (miss bytes to fetch, dirty blocks to
// write back) and the caller — internal/client — performs the RPCs on the
// simulated network. Every counter the paper's Tables 4, 6, 8 and 9 need
// is maintained here.
package fscache
