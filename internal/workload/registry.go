package workload

import (
	"spritefs/internal/server"
	"spritefs/internal/sim"
	"spritefs/internal/vm"
)

// Binary is a program executable image living in the shared file system.
type Binary struct {
	File      uint64
	Size      int64
	CodePages int
	DataPages int
}

// Registry is the pre-existing file population: system binaries, per-user
// small files (sources, documents), mailboxes, per-group shared files and
// directories, and the big-simulation users' input files. It is built
// directly on the servers before tracing starts, exactly as the paper's
// traced window began with a populated file system.
type Registry struct {
	Binaries []Binary
	// KernelImages are the 2-10 MB kernel binaries the OS group works
	// with (the paper checked they were not skewing the size results).
	KernelImages []uint64

	UserSmall map[int32][]uint64
	// UserData are medium-sized per-user data files (simulation inputs,
	// datasets) in the hundreds-of-kilobytes range.
	UserData  map[int32][]uint64
	Mailboxes map[int32]uint64
	UserDirs  map[int32]uint64

	GroupShared [NumGroups][]uint64
	GroupDirs   [NumGroups]uint64

	// BigInputs[i] are the input files of big-sim user i (20 MB class).
	BigInputs [][]uint64

	// Media is the streaming library (post-1991 workload); empty unless
	// Params.MediaFiles > 0.
	Media []uint64

	// AllFiles lists every file for the nightly backup pass.
	AllFiles []uint64
}

// Bootstrap creates the initial file population spread across the servers,
// with most files on server 0 (the paper's dominant Sun 4). Sizes are
// drawn from the Params distributions.
func Bootstrap(p Params, servers []*server.Server, rng *sim.Rand) *Registry {
	if len(servers) == 0 {
		panic("workload: no servers")
	}
	r := &Registry{
		UserSmall: make(map[int32][]uint64),
		UserData:  make(map[int32][]uint64),
		Mailboxes: make(map[int32]uint64),
		UserDirs:  make(map[int32]uint64),
	}
	// Server selection: 70% of files on server 0, the rest spread.
	pick := func() *server.Server {
		if len(servers) == 1 || rng.Bool(0.7) {
			return servers[0]
		}
		return servers[1+rng.Intn(len(servers)-1)]
	}
	mk := func(size int64) uint64 {
		srv := pick()
		f := srv.Create(false, 0)
		srv.Grow(f.ID, size, 0)
		r.AllFiles = append(r.AllFiles, f.ID)
		return f.ID
	}
	mkDir := func(size int64) uint64 {
		srv := pick()
		f := srv.Create(true, 0)
		srv.Grow(f.ID, size, 0)
		return f.ID
	}

	// System binaries: the common tools everyone execs.
	const numBinaries = 24
	for i := 0; i < numBinaries; i++ {
		code := p.CodePagesMin + rng.Intn(p.CodePagesMax-p.CodePagesMin+1)
		data := p.DataPagesMin + rng.Intn(p.DataPagesMax-p.DataPagesMin+1)
		size := int64(code+data) * vm.PageSize
		r.Binaries = append(r.Binaries, Binary{File: mk(size), Size: size, CodePages: code, DataPages: data})
	}
	// Kernel images for the OS group: 2-10 MB.
	for i := 0; i < 6; i++ {
		size := int64(rng.Range(2, 10) * (1 << 20))
		r.KernelImages = append(r.KernelImages, mk(size))
	}

	nUsers := int32(p.DailyUsers + p.OccasionalUsers)
	for u := int32(0); u < nUsers; u++ {
		nFiles := 8 + rng.Intn(16)
		for i := 0; i < nFiles; i++ {
			r.UserSmall[u] = append(r.UserSmall[u], mk(int64(rng.LogNormal(p.SmallMedian, p.SmallSigma))+1))
		}
		r.Mailboxes[u] = mk(int64(rng.LogNormal(p.MailMedian, p.MailSigma)) + 1)
		r.UserDirs[u] = mkDir(int64(rng.Range(4096, 32768)))
		nData := 2 + rng.Intn(3)
		for i := 0; i < nData; i++ {
			r.UserData[u] = append(r.UserData[u], mk(int64(rng.LogNormal(256*1024, 1.0))+1))
		}
	}

	for g := Group(0); g < NumGroups; g++ {
		n := 4 + rng.Intn(4)
		for i := 0; i < n; i++ {
			r.GroupShared[g] = append(r.GroupShared[g], mk(int64(rng.LogNormal(6*1024, 1.0))+1))
		}
		r.GroupDirs[g] = mkDir(int64(rng.Range(8192, 32768)))
	}

	for i := 0; i < p.BigSimUsers; i++ {
		var inputs []uint64
		for j := 0; j < 3; j++ {
			size := int64(rng.Range(0.8, 1.2) * p.SimInputMB * (1 << 20))
			inputs = append(inputs, mk(size))
		}
		r.BigInputs = append(r.BigInputs, inputs)
	}

	// Streaming media library, built last and only when enabled, so the
	// 1991 population (and its RNG draws) is byte-identical when off.
	for i := 0; i < p.MediaFiles; i++ {
		size := int64(rng.Range(0.3, 2.2) * p.MediaFileMB * (1 << 20))
		r.Media = append(r.Media, mk(size))
	}
	return r
}

// RandomBinary picks a system binary. Selection is heavily skewed toward
// the first few "hot" tools (shell, editor, compiler driver) — everyone
// runs the same handful of programs, which is why Sprite's code-page
// retention and file-cache checks on code faults pay off (Table 6's
// paging hit rate).
func (r *Registry) RandomBinary(rng *sim.Rand) Binary {
	if len(r.Binaries) > 6 && rng.Bool(0.85) {
		return r.Binaries[rng.Intn(6)]
	}
	return r.Binaries[rng.Intn(len(r.Binaries))]
}

// RandomData picks one of the user's medium data files.
func (r *Registry) RandomData(rng *sim.Rand, user int32) (uint64, bool) {
	files := r.UserData[user]
	if len(files) == 0 {
		return 0, false
	}
	return files[rng.Intn(len(files))], true
}

// RandomSmall picks one of the user's small files.
func (r *Registry) RandomSmall(rng *sim.Rand, user int32) (uint64, bool) {
	files := r.UserSmall[user]
	if len(files) == 0 {
		return 0, false
	}
	return files[rng.Intn(len(files))], true
}

// RandomMedia picks a streaming library object with the usual popularity
// skew: most plays go to the hot quarter of the catalog, which is what
// gives server caches something to work with even against media-sized
// objects.
func (r *Registry) RandomMedia(rng *sim.Rand) (uint64, bool) {
	if len(r.Media) == 0 {
		return 0, false
	}
	if hot := len(r.Media) / 4; hot > 0 && rng.Bool(0.8) {
		return r.Media[rng.Intn(hot)], true
	}
	return r.Media[rng.Intn(len(r.Media))], true
}

// RandomShared picks one of the group's shared files.
func (r *Registry) RandomShared(rng *sim.Rand, g Group) (uint64, bool) {
	files := r.GroupShared[g]
	if len(files) == 0 {
		return 0, false
	}
	return files[rng.Intn(len(files))], true
}
