package traceio

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
	"time"

	"spritefs/internal/trace"
)

// The strace importer understands the common single-process and -f
// multi-process line shapes, with or without -t/-tt/-ttt timestamps:
//
//	openat(AT_FDCWD, "/etc/hosts", O_RDONLY|O_CLOEXEC) = 3
//	1699999999.123456 read(3, "..."..., 4096) = 4096
//	[pid  1234] 14:02:07.123456 write(4, "x", 1) = 1
//	1234  0.000123 close(3) = 0
//
// File descriptors are tracked per pid from successful open/openat/creat
// returns; operations on descriptors the log never showed an open for are
// attributed to a synthetic "pidN/fdM" file (except stdio fds 0-2, which
// are ignored), and the shared builder brackets them with inferred
// opens/closes. Failed calls (= -1 ERRNO), unfinished/resumed halves,
// signal and exit markers are skipped.

// straceLine captures: [1] pid (either prefix form), [2] timestamp,
// [3] syscall name, [4] raw argument text, [5] return value.
var straceLine = regexp.MustCompile(
	`^(?:\[pid\s+(\d+)\]\s+|(\d+)\s+)?` + // [pid 1234] or bare-pid prefix
		`(?:(\d+:\d+:\d+(?:\.\d+)?|\d+\.\d+)\s+)?` + // -tt wall clock or -ttt/-r float seconds
		`([a-z_][a-z0-9_]*)\((.*)\)\s*=\s*(-?\d+|\?)`) // name(args) = ret

// straceQuoted extracts the first double-quoted argument (the path).
var straceQuoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type straceParser struct {
	opt Options
	rep *ImportReport

	fds      map[int32]map[int]string // pid → fd → interned path key
	pidOrder map[int32]int32          // pid → first-appearance index
	events   []event

	sawClock  bool          // any line carried a timestamp
	lastWall  time.Duration // previous wall-clock stamp, for midnight wrap
	wallBase  time.Duration // accumulated wrap offset
	synthetic time.Duration // fallback clock when the log has no stamps
}

// ImportStrace parses an strace-style syscall log and synthesizes a
// native record stream.
func ImportStrace(r io.Reader, opt Options) ([]trace.Record, *ImportReport, error) {
	opt = opt.withDefaults()
	rep := &ImportReport{}
	p := &straceParser{
		opt:      opt,
		rep:      rep,
		fds:      make(map[int32]map[int]string),
		pidOrder: make(map[int32]int32),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "---") || strings.HasPrefix(line, "+++") {
			continue // signal delivery / process exit markers
		}
		rep.Rows++
		if strings.Contains(line, "<unfinished") || strings.Contains(line, "resumed>") {
			rep.Ignored++
			continue
		}
		p.line(line)
	}
	if err := sc.Err(); err != nil {
		return nil, rep, fmt.Errorf("traceio: reading strace log: %w", err)
	}
	b := newBuilder(opt, rep)
	recs, err := b.build(p.events)
	if err != nil {
		return nil, rep, err
	}
	return recs, rep, nil
}

// line parses one syscall line into at most one event.
func (p *straceParser) line(s string) {
	m := straceLine.FindStringSubmatch(s)
	if m == nil {
		p.rep.Malformed++
		p.rep.note("unparseable line: %.60s", s)
		return
	}
	pidStr := m[1]
	if pidStr == "" {
		pidStr = m[2]
	}
	var pid int32
	if pidStr != "" {
		n, _ := strconv.ParseInt(pidStr, 10, 32)
		pid = int32(n)
	}
	t := p.stamp(m[3])
	name, args, retStr := m[4], m[5], m[6]
	if retStr == "?" || strings.HasPrefix(retStr, "-") {
		// Failed or indeterminate call: no file-system effect.
		p.rep.Ignored++
		return
	}
	ret, _ := strconv.ParseInt(retStr, 10, 64)

	ev := event{
		time:   t,
		client: p.clientFor(pid),
		proc:   pid,
		offset: -1,
		seq:    len(p.events),
	}
	ev.user = ev.client

	fdtab := p.fds[pid]
	argFd := func() int {
		i := strings.IndexAny(args, ",)")
		a := args
		if i >= 0 {
			a = args[:i]
		}
		n, err := strconv.Atoi(strings.TrimSpace(a))
		if err != nil {
			return -1
		}
		return n
	}
	// pathFor resolves an fd to its opened path, or a synthetic
	// "pidN/fdM" name for descriptors the log never opened (stdio is
	// dropped entirely).
	pathFor := func(fd int) (string, bool) {
		if path, ok := fdtab[fd]; ok {
			return path, true
		}
		if fd <= 2 {
			return "", false
		}
		return fmt.Sprintf("untracked/pid%d/fd%d", pid, fd), true
	}
	nthInt := func(n int) (int64, bool) {
		parts := splitArgs(args)
		if n >= len(parts) {
			return 0, false
		}
		v, err := strconv.ParseInt(strings.TrimSpace(parts[n]), 10, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}

	switch name {
	case "open", "openat", "creat":
		path := firstQuoted(args)
		if path == "" {
			p.rep.Malformed++
			p.rep.note("open with no path: %.60s", s)
			return
		}
		if fdtab == nil {
			fdtab = make(map[int]string)
			p.fds[pid] = fdtab
		}
		fdtab[int(ret)] = path
		ev.kind = trace.KindOpen
		ev.path = path
		ev.flags = openFlags(args, name == "creat")
		if strings.Contains(args, "O_DIRECTORY") {
			ev.flags |= trace.FlagDirectory
		}

	case "close":
		fd := argFd()
		path, ok := pathFor(fd)
		if !ok {
			p.rep.Ignored++
			return
		}
		delete(fdtab, fd)
		ev.kind = trace.KindClose
		ev.path = path

	case "read", "readv", "pread64", "pread":
		fd := argFd()
		path, ok := pathFor(fd)
		if !ok || ret == 0 {
			p.rep.Ignored++
			return
		}
		ev.kind = trace.KindRead
		ev.path = path
		ev.length = ret
		if name == "pread64" || name == "pread" {
			if off, ok := nthInt(3); ok {
				ev.offset = off
			}
		}

	case "write", "writev", "pwrite64", "pwrite":
		fd := argFd()
		path, ok := pathFor(fd)
		if !ok || ret == 0 {
			p.rep.Ignored++
			return
		}
		ev.kind = trace.KindWrite
		ev.path = path
		ev.length = ret
		if name == "pwrite64" || name == "pwrite" {
			if off, ok := nthInt(3); ok {
				ev.offset = off
			}
		}

	case "lseek", "_llseek":
		fd := argFd()
		path, ok := pathFor(fd)
		if !ok {
			p.rep.Ignored++
			return
		}
		// strace prints the resulting absolute offset as the return value.
		ev.kind = trace.KindReposition
		ev.path = path
		ev.offset = ret

	case "getdents", "getdents64":
		fd := argFd()
		path, ok := pathFor(fd)
		if !ok || ret == 0 {
			p.rep.Ignored++
			return
		}
		ev.kind = trace.KindDirRead
		ev.path = path
		ev.length = ret
		ev.flags = trace.FlagDirectory

	case "unlink", "unlinkat":
		path := firstQuoted(args)
		if path == "" {
			p.rep.Malformed++
			return
		}
		ev.kind = trace.KindDelete
		ev.path = path

	case "truncate", "ftruncate":
		if name == "truncate" {
			ev.path = firstQuoted(args)
		} else if path, ok := pathFor(argFd()); ok {
			ev.path = path
		}
		if ev.path == "" {
			p.rep.Ignored++
			return
		}
		ev.kind = trace.KindTruncate

	case "mkdir", "mkdirat":
		path := firstQuoted(args)
		if path == "" {
			p.rep.Malformed++
			return
		}
		ev.kind = trace.KindCreate
		ev.path = path
		ev.flags = trace.FlagDirectory

	default:
		// stat, mmap, ioctl, socket traffic, ...: not file data traffic.
		p.rep.Ignored++
		return
	}
	p.events = append(p.events, ev)
}

// stamp converts a line's timestamp text into a monotonic-enough virtual
// time. Wall-clock (-tt) stamps wrap at midnight; float stamps (-ttt
// epoch or -r relative) are taken as absolute seconds; logs with no
// stamps at all get a synthetic 1ms-per-call clock.
func (p *straceParser) stamp(ts string) time.Duration {
	p.synthetic += time.Millisecond
	if ts == "" {
		if p.sawClock {
			return p.lastWall + p.wallBase
		}
		return p.synthetic
	}
	p.sawClock = true
	var d time.Duration
	if strings.Contains(ts, ":") {
		parts := strings.SplitN(ts, ":", 3)
		h, _ := strconv.Atoi(parts[0])
		min, _ := strconv.Atoi(parts[1])
		sec, _ := strconv.ParseFloat(parts[2], 64)
		d = time.Duration(h)*time.Hour + time.Duration(min)*time.Minute +
			time.Duration(sec*float64(time.Second))
		if d < p.lastWall {
			p.wallBase += 24 * time.Hour
		}
	} else {
		sec, _ := strconv.ParseFloat(ts, 64)
		d = time.Duration(sec * float64(time.Second))
	}
	p.lastWall = d
	return d + p.wallBase
}

// clientFor spreads pids across the synthetic workstation pool in
// first-appearance order.
func (p *straceParser) clientFor(pid int32) int32 {
	if idx, ok := p.pidOrder[pid]; ok {
		return idx % int32(p.opt.Clients)
	}
	idx := int32(len(p.pidOrder))
	p.pidOrder[pid] = idx
	return idx % int32(p.opt.Clients)
}

// firstQuoted returns the first double-quoted argument, unescaped enough
// for use as a path key.
func firstQuoted(args string) string {
	m := straceQuoted.FindStringSubmatch(args)
	if m == nil {
		return ""
	}
	return m[1]
}

// openFlags maps O_* mode flags in the argument text to record flags.
func openFlags(args string, creat bool) uint8 {
	var f uint8
	switch {
	case creat || strings.Contains(args, "O_WRONLY"):
		f = trace.FlagWriteMode
	case strings.Contains(args, "O_RDWR"):
		f = trace.FlagReadMode | trace.FlagWriteMode
	default: // O_RDONLY is 0 and often implicit
		f = trace.FlagReadMode
	}
	return f
}

// splitArgs splits a syscall argument list at top-level commas (quoted
// strings and nested braces/brackets are kept intact).
func splitArgs(s string) []string {
	var parts []string
	depth, start := 0, 0
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}
