package replay

import (
	"reflect"
	"testing"
	"time"

	"spritefs/internal/client"
)

// sweepConfigs is the parameter grid the invariance test replays: the
// knobs the paper's Section 5 simulations turned.
func sweepConfigs() []Config {
	mk := func(name string, mut func(*Config)) Config {
		c := replayCfg(name)
		mut(&c)
		return c
	}
	return []Config{
		mk("base", func(c *Config) {}),
		mk("cache-2M", func(c *Config) { c.FixedCachePages = 512 }),
		mk("wb-5s", func(c *Config) { c.WritebackDelay = 5 * time.Second }),
		mk("poll-10s", func(c *Config) {
			c.Consistency = client.ConsistencyPoll
			c.PollInterval = 10 * time.Second
		}),
		mk("afap", func(c *Config) { c.AsFastAsPossible = true }),
	}
}

// TestSweepWorkerCountInvariance is the acceptance criterion: the sweep's
// aggregate report is byte-identical whether one goroutine or eight replay
// the configurations.
func TestSweepWorkerCountInvariance(t *testing.T) {
	live := capturedTrace(t)
	cfgs := sweepConfigs()

	serial, err := RunSweep(live.recs, cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(live.recs, cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(cfgs) || len(parallel) != len(cfgs) {
		t.Fatalf("result counts: %d serial, %d parallel, want %d", len(serial), len(parallel), len(cfgs))
	}
	for i := range cfgs {
		if serial[i].Stats != parallel[i].Stats {
			t.Errorf("config %q: stats diverge across worker counts", cfgs[i].Name)
		}
		if !reflect.DeepEqual(serial[i].Report, parallel[i].Report) {
			t.Errorf("config %q: reports diverge across worker counts", cfgs[i].Name)
		}
	}
	a, b := SweepTable(serial).TSV(), SweepTable(parallel).TSV()
	if a != b {
		t.Fatalf("sweep reports not byte-identical:\n--- workers=1 ---\n%s--- workers=8 ---\n%s", a, b)
	}
}

// TestSweepEffectsAreVisible sanity-checks that the grid actually moves the
// Section 5 ratios in the directions the paper predicts.
func TestSweepEffectsAreVisible(t *testing.T) {
	live := capturedTrace(t)
	cfgs := sweepConfigs()
	results, err := RunSweep(live.recs, cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Result{}
	for _, r := range results {
		byName[r.Config.Name] = r
	}
	// A quarter-size cache cannot miss less than the full-size one.
	if small, base := byName["cache-2M"], byName["base"]; small.Report.Table6.All.ReadMissPct+1e-9 < base.Report.Table6.All.ReadMissPct {
		t.Errorf("2 MB cache misses less (%.2f%%) than 8 MB (%.2f%%)",
			small.Report.Table6.All.ReadMissPct, base.Report.Table6.All.ReadMissPct)
	}
	// Shortening the delayed-write window writes back at least as much:
	// fewer bytes die in the cache before the flush.
	if fast, base := byName["wb-5s"], byName["base"]; fast.Report.Table6.All.WritebackPct+1e-9 < base.Report.Table6.All.WritebackPct {
		t.Errorf("5s writeback flushes less (%.2f%%) than 30s (%.2f%%)",
			fast.Report.Table6.All.WritebackPct, base.Report.Table6.All.WritebackPct)
	}
	table := SweepTable(results)
	if table.NumRows() != len(cfgs) {
		t.Errorf("sweep table has %d rows, want %d", table.NumRows(), len(cfgs))
	}
	t.Logf("\n%s", table.String())
}

func TestRunSweepEmpty(t *testing.T) {
	live := capturedTrace(t)
	results, err := RunSweep(live.recs, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("got %d results for empty config list", len(results))
	}
}
