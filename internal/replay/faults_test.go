package replay

import (
	"reflect"
	"testing"
	"time"

	"spritefs/internal/faults"
	"spritefs/internal/fscache"
	"spritefs/internal/trace"
)

// faultedCfg is the golden replay-under-faults configuration: the captured
// trace with server 0 crashing mid-run and staying unreachable for 30s.
func faultedCfg(name string) Config {
	cfg := replayCfg(name)
	sched, err := faults.Parse("server-crash:0@1h0m0s/30s")
	if err != nil {
		panic(err)
	}
	cfg.Faults = sched
	return cfg
}

// TestReplayUnderFaultsBoundsLoss pins the paper's delayed-write risk claim
// on a replayed trace: a mid-trace server crash destroys only data that had
// been dirty for less than the writeback interval, because anything older
// had already been flushed by the cleaner daemons.
func TestReplayUnderFaultsBoundsLoss(t *testing.T) {
	live := capturedTrace(t)
	res, err := Run(faultedCfg("crash"), trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Report.Recovery
	if rec.ServerCrashes != 1 || res.Faults.ServerCrashes != 1 {
		t.Fatalf("expected exactly one server crash, got report %d / injector %d",
			rec.ServerCrashes, res.Faults.ServerCrashes)
	}
	t.Logf("crash cost: %d dirty bytes lost (max age %v), %d opens lost, %d replayed, storm %d, ttr %v",
		rec.DirtyBytesLost, rec.MaxDirtyAge, rec.OpensLostInCrash,
		rec.ReplayedBytes, res.Faults.MaxReopenStorm, rec.MaxTimeToReconsistency)

	// The headline bound: no lost byte was dirty longer than the writeback
	// delay plus one cleaner period (the cleaner samples age every period).
	bound := fscache.WritebackDelay + fscache.CleanerPeriod + time.Second
	if rec.MaxDirtyAge > bound {
		t.Errorf("lost dirty data aged %v, exceeds writeback bound %v", rec.MaxDirtyAge, bound)
	}
	// The recovery protocol ran: clients noticed the restart and reopened.
	if rec.Recoveries == 0 {
		t.Error("no client ran the recovery protocol after the crash")
	}
	if rec.MaxTimeToReconsistency < 30*time.Second {
		t.Errorf("time-to-reconsistency %v shorter than the 30s outage", rec.MaxTimeToReconsistency)
	}
	if rec.GaveUp != 0 {
		t.Errorf("%d recovery attempts gave up against a restarted server", rec.GaveUp)
	}
	// The faulted replay still applies every record cleanly — faults change
	// latencies and cache state, never the reference string.
	if res.Stats.Errors != 0 || res.Stats.UnknownHandle != 0 {
		t.Errorf("faulted replay not clean: %+v", res.Stats)
	}
	base, err := Run(replayCfg("clean"), trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Applied != base.Stats.Applied {
		t.Errorf("crash changed the applied record count: %d vs %d",
			res.Stats.Applied, base.Stats.Applied)
	}
	if res.Report.Table10.FileOpens != base.Report.Table10.FileOpens {
		t.Errorf("crash changed the open count")
	}
}

// TestFaultedSweepWorkerCountInvariance extends the sweep acceptance
// criterion to faulted replays: the same schedule replayed under 1 and 4
// workers yields byte-identical reports, so fault injection costs nothing
// in determinism.
func TestFaultedSweepWorkerCountInvariance(t *testing.T) {
	live := capturedTrace(t)
	cfgs := []Config{faultedCfg("crash"), replayCfg("clean")}

	serial, err := RunSweep(live.recs, cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(live.recs, cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if serial[i].Stats != parallel[i].Stats {
			t.Errorf("config %q: stats diverge across worker counts", cfgs[i].Name)
		}
		if serial[i].Faults != parallel[i].Faults {
			t.Errorf("config %q: fault stats diverge across worker counts:\n%+v\n%+v",
				cfgs[i].Name, serial[i].Faults, parallel[i].Faults)
		}
		if !reflect.DeepEqual(serial[i].Report, parallel[i].Report) {
			t.Errorf("config %q: reports diverge across worker counts", cfgs[i].Name)
		}
		if a, b := ReplayTable(serial[i]).String(), ReplayTable(parallel[i]).String(); a != b {
			t.Errorf("config %q: rendered reports not byte-identical", cfgs[i].Name)
		}
	}
	// The golden run is also stable across repeated executions.
	again, err := Run(faultedCfg("crash"), trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	if again.Faults != serial[0].Faults || !reflect.DeepEqual(again.Report, serial[0].Report) {
		t.Error("faulted replay not reproducible run to run")
	}
}
