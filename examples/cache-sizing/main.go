// cache-sizing sweeps fixed client cache sizes over the same workload and
// prints the miss-ratio curve — the experiment behind one of the paper's
// sharpest points: the 1985 BSD study predicted ~10% misses for a 4 MB
// cache, but Sprite measured miss ratios four times higher, because files
// had grown an order of magnitude in the meantime. The sweep shows the
// same large-file floor: growing the cache stops helping once the hot
// small files fit, while multi-megabyte files still blow straight through.
//
//	go run ./examples/cache-sizing
package main

import (
	"fmt"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/netsim"
	"spritefs/internal/vm"
	"spritefs/internal/workload"
)

func main() {
	fmt.Println("sweeping fixed cache sizes over an identical 2-hour workload...")
	fmt.Printf("\n%10s  %18s  %20s  %16s\n", "cache", "file read miss %", "miss traffic (bytes%)", "server read MB")

	for _, mb := range []int{1, 2, 4, 8, 16} {
		p := workload.Default(31)
		p.NumClients = 10
		p.DailyUsers = 8
		p.OccasionalUsers = 6
		// Include one big-file user so the large-file effect is visible,
		// as in the paper's measured cluster.
		p.BigSimUsers = 1
		p.SimInputMB = 6
		p.SimOutputMB = 2

		cfg := cluster.DefaultConfig(p)
		cfg.NumServers = 2
		cfg.CollectTrace = false
		cfg.FixedCachePages = mb << 20 / vm.PageSize
		c := cluster.New(cfg)
		c.Run(2 * time.Hour)

		t6 := c.Table6Report()
		total := c.Net.Total()
		// File-read traffic only: pinning a huge cache also starves the
		// VM system and inflates paging, which is its own lesson.
		serverReadMB := float64(total.Bytes[netsim.FileRead]) / (1 << 20)
		fmt.Printf("%8d MB  %18.1f  %20.1f  %16.0f\n",
			mb, t6.All.ReadMissPct, t6.All.ReadMissTrafficPct, serverReadMB)
	}

	fmt.Println("\nThe BSD study's prediction (10% at 4 MB) assumed 1985-sized files; with")
	fmt.Println("1991-sized files the curve flattens well above it — the paper's Section 5.2.")
}
