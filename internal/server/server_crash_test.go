package server

import (
	"errors"
	"testing"
	"time"
)

func TestCrashDiscardsVolatileState(t *testing.T) {
	s := New(0)
	s.AttachStorage(64)
	f := s.Create(false, 0)
	g := s.Create(false, 0)

	// Two clients share f (write-sharing), one holds g.
	if _, err := s.Open(f.ID, 1, true, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(f.ID, 2, false, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(g.ID, 1, true, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	s.Close(g.ID, 1, true, true, 4*time.Second) // g gains a last writer
	if !f.Uncacheable() {
		t.Fatal("f not under write-sharing before crash")
	}
	// Un-synced dirty data in the server cache.
	s.Store.AcceptWrite(f.ID, 0, 1000, 10*time.Second)

	out := s.Crash(30 * time.Second)
	if out.OpensDropped != 2 {
		t.Errorf("OpensDropped = %d, want 2", out.OpensDropped)
	}
	if out.DirtyBytesLost != 1000 {
		t.Errorf("DirtyBytesLost = %d, want 1000", out.DirtyBytesLost)
	}
	if out.MaxDirtyAge != 20*time.Second {
		t.Errorf("MaxDirtyAge = %v, want 20s", out.MaxDirtyAge)
	}
	if f.Openers() != 0 || f.Uncacheable() || f.lastWriter != NoClient {
		t.Errorf("f volatile state survived crash: %d openers, uncacheable=%v", f.Openers(), f.Uncacheable())
	}
	if g.lastWriter != NoClient {
		t.Error("g last-writer hint survived crash")
	}
	if s.Lookup(f.ID) == nil || s.Lookup(g.ID) == nil {
		t.Error("file metadata lost in crash (must survive: it models the disk)")
	}
	if !s.Down() {
		t.Error("server not down after crash")
	}
	st := s.Stats()
	if st.Crashes != 1 || st.OpensLostInCrash != 2 {
		t.Errorf("crash counters = %+v", st)
	}
	if ss := s.Store.Stats(); ss.LostDirtyBytes != 1000 || ss.MaxLostDirtyAge != 20*time.Second {
		t.Errorf("storage loss counters = %+v", ss)
	}
}

func TestDownRejectsAndRestartBumpsEpoch(t *testing.T) {
	s := New(0)
	f := s.Create(false, 0)
	if s.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", s.Epoch())
	}
	s.Crash(time.Second)
	if _, err := s.Open(f.ID, 1, false, 2*time.Second); !errors.Is(err, ErrDown) {
		t.Errorf("Open while down: err = %v, want ErrDown", err)
	}
	if err := s.Close(f.ID, 1, false, false, 2*time.Second); !errors.Is(err, ErrDown) {
		t.Errorf("Close while down: err = %v, want ErrDown", err)
	}
	if _, err := s.Recover(f.ID, 1, 1, 0, 2*time.Second); !errors.Is(err, ErrDown) {
		t.Errorf("Recover while down: err = %v, want ErrDown", err)
	}
	s.Restart(3 * time.Second)
	if s.Down() || s.Epoch() != 1 {
		t.Errorf("after restart: down=%v epoch=%d", s.Down(), s.Epoch())
	}
	if _, err := s.Open(f.ID, 1, false, 4*time.Second); err != nil {
		t.Errorf("Open after restart: %v", err)
	}
}

func TestRecoverIsIdempotent(t *testing.T) {
	s := New(0)
	f := s.Create(false, 0)
	if _, err := s.Open(f.ID, 1, true, 0); err != nil {
		t.Fatal(err)
	}
	s.Crash(time.Second)
	s.Restart(time.Second)

	// The satellite fix: re-registering must SET counts, not add, so a
	// duplicate (retried) recovery cannot double-count opens.
	for i := 0; i < 2; i++ {
		if _, err := s.Recover(f.ID, 1, 0, 1, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		_, w := f.Registration(1)
		if f.Openers() != 1 || f.WriterCount() != 1 || w != 1 {
			t.Fatalf("after recover #%d: openers=%d writers=%d count=%d",
				i+1, f.Openers(), f.WriterCount(), w)
		}
	}
	if got := s.Stats().RecoveryOpens; got != 2 {
		t.Errorf("RecoveryOpens = %d, want 2", got)
	}
	// A normal close must balance — the registration is exact.
	if err := s.Close(f.ID, 1, true, false, 3*time.Second); err != nil {
		t.Errorf("close after recovery: %v", err)
	}
	if f.Openers() != 0 {
		t.Errorf("openers = %d after close, want 0", f.Openers())
	}
}

func TestRecoverRedetectsWriteSharing(t *testing.T) {
	s := New(0)
	f := s.Create(false, 0)
	if _, err := s.Open(f.ID, 1, true, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(f.ID, 2, false, 0); err != nil {
		t.Fatal(err)
	}
	cwsBefore := s.Stats().CWSEvents
	s.Crash(time.Second)
	s.Restart(time.Second)

	r1, err := s.Recover(f.ID, 2, 1, 0, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Cacheable || r1.StartedCWS {
		t.Errorf("single reader recovery: %+v, want cacheable, no CWS", r1)
	}
	r2, err := s.Recover(f.ID, 1, 0, 1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cacheable || !r2.StartedCWS {
		t.Errorf("writer recovery: %+v, want uncacheable + CWS", r2)
	}
	if len(r2.DisableOn) != 1 || r2.DisableOn[0] != 2 {
		t.Errorf("DisableOn = %v, want [2]", r2.DisableOn)
	}
	st := s.Stats()
	if st.RecoveryCWS != 1 {
		t.Errorf("RecoveryCWS = %d, want 1", st.RecoveryCWS)
	}
	if st.CWSEvents != cwsBefore {
		t.Errorf("CWSEvents inflated by recovery: %d -> %d", cwsBefore, st.CWSEvents)
	}
}

func TestDisconnectPurgesClient(t *testing.T) {
	s := New(0)
	f := s.Create(false, 0)
	g := s.Create(false, 0)
	if _, err := s.Open(f.ID, 1, true, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(f.ID, 2, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(g.ID, 1, true, 0); err != nil {
		t.Fatal(err)
	}
	s.Close(g.ID, 1, true, true, time.Second) // client 1 is g's last writer
	if !f.Uncacheable() {
		t.Fatal("f not write-shared")
	}

	dropped := s.Disconnect(1, 2*time.Second)
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if f.Openers() != 1 || f.WriterCount() != 0 {
		t.Errorf("f after disconnect: openers=%d writers=%d", f.Openers(), f.WriterCount())
	}
	// Sole remaining opener is a reader — but uncacheable only clears at
	// zero openers (matching Close semantics).
	if !f.Uncacheable() {
		t.Error("uncacheable cleared with an opener remaining")
	}
	if g.lastWriter != NoClient {
		t.Error("disconnected client still g's last writer")
	}
	s.Close(f.ID, 2, false, false, 3*time.Second)
	if f.Uncacheable() {
		t.Error("uncacheable survived last close")
	}
}

func TestWriteBackBytesCountsDeletedFiles(t *testing.T) {
	s := New(0)
	f := s.Create(false, 0)
	s.WriteBack(f.ID, 1, 0, 500, time.Second)
	s.Delete(f.ID, 2*time.Second)
	// The client already counted these bytes as shipped; the server must
	// too, or the conservation invariant breaks on every delete-while-dirty.
	s.WriteBack(f.ID, 1, 1, 300, 3*time.Second)
	if got := s.Stats().WriteBackBytes; got != 800 {
		t.Errorf("WriteBackBytes = %d, want 800", got)
	}
}
