package check

import (
	"flag"
	"testing"
	"time"

	"spritefs/internal/client"
	"spritefs/internal/cluster"
	"spritefs/internal/faults"
	"spritefs/internal/fscache"
	"spritefs/internal/netsim"
	"spritefs/internal/server"
	"spritefs/internal/sim"
	"spritefs/internal/workload"
)

var (
	seedFlag  = flag.Int64("faultseed", 1, "base seed for the randomized fault schedules")
	schedFlag = flag.Int("schedules", 100, "number of random schedules TestFaultSchedules runs")
)

const (
	harnessServers = 2
	harnessClients = 4
	harnessRun     = 20 * time.Minute
)

// harnessCluster builds the small cluster every schedule runs against:
// a busy 4-workstation, 2-server system, short sessions so open tables
// churn constantly under the faults.
func harnessCluster(seed int64, sched faults.Schedule) *cluster.Cluster {
	p := workload.Default(seed)
	p.NumClients = harnessClients
	p.DailyUsers = harnessClients
	p.OccasionalUsers = 2
	p.SessionMedian = 5 * time.Minute
	p.GapMedian = 4 * time.Minute
	p.ThinkMean = 3 * time.Second
	cfg := cluster.DefaultConfig(p)
	cfg.NumServers = harnessServers
	cfg.SamplePeriod = 0
	cfg.Faults = sched
	return cluster.New(cfg)
}

// TestFaultSchedules is the randomized invariant harness: generate fault
// schedules from a logged seed, run each against a fresh small cluster,
// and audit every run with check.Run. Reproduce one failing schedule with
//
//	go test -run TestFaultSchedules -faultseed <seed> -schedules 1
//
// using the per-schedule seed from the failure log.
func TestFaultSchedules(t *testing.T) {
	n := *schedFlag
	if testing.Short() && n > 15 {
		n = 15
	}
	t.Logf("running %d schedules from base seed %d", n, *seedFlag)

	// Lost dirty data can never have aged past a full delayed-write window
	// plus one cleaner period (the daemons sample age every period); the
	// extra second absorbs the staggered cleaner start offsets.
	ageBound := fscache.WritebackDelay + fscache.CleanerPeriod + time.Second

	for i := 0; i < n; i++ {
		seed := *seedFlag + int64(i)
		// Events end early enough that every outage heals and its recovery
		// sweep completes before the run stops: quiescence is what makes
		// the open-table agreement checkable.
		sched := faults.Random(sim.NewRand(seed), harnessRun-3*time.Minute,
			6, harnessServers, harnessClients)
		cl := harnessCluster(seed, sched)
		cl.Run(harnessRun)

		if vs := Run(cl); len(vs) > 0 {
			for _, v := range vs {
				t.Errorf("seed %d: %s", seed, v)
			}
			t.Fatalf("seed %d: %d violations under schedule %s", seed, len(vs), sched)
		}
		rec := cl.RecoveryReport()
		if rec.MaxDirtyAge > ageBound {
			t.Errorf("seed %d: lost dirty data aged %v, exceeds bound %v (schedule %s)",
				seed, rec.MaxDirtyAge, ageBound, sched)
		}
		if rec.GaveUp != 0 {
			t.Errorf("seed %d: %d recovery attempts gave up against restarted servers",
				seed, rec.GaveUp)
		}
	}
}

// TestCheckPassesCleanCluster pins the auditor's false-positive rate at
// zero: a run with no faults at all must produce no violations.
func TestCheckPassesCleanCluster(t *testing.T) {
	cl := harnessCluster(*seedFlag, faults.Schedule{})
	cl.Run(harnessRun)
	if vs := Run(cl); len(vs) > 0 {
		for _, v := range vs {
			t.Errorf("%s", v)
		}
	}
	rec := cl.RecoveryReport()
	if rec.ServerCrashes != 0 || rec.ClientCrashes != 0 || rec.DirtyBytesLost != 0 {
		t.Errorf("faultless run reported crashes: %+v", rec)
	}
}

// auditRig is a hand-driven System for negative tests: one server, two
// clients, no workload — every open is placed exactly where the test
// wants it.
type auditRig struct {
	clock   *sim.Sim
	net     *netsim.Network
	servers []*server.Server
	clients []*client.Client
}

func (r *auditRig) Clock() *sim.Sim                  { return r.clock }
func (r *auditRig) Wire() *netsim.Network            { return r.net }
func (r *auditRig) FileServers() []*server.Server    { return r.servers }
func (r *auditRig) Workstations() []*client.Client   { return r.clients }
func (r *auditRig) RecallFrom(cl int32, file uint64) { r.clients[cl].FlushForRecall(file) }
func (r *auditRig) DisableCaching(cls []int32, file uint64) {
	for _, id := range cls {
		r.clients[id].DisableFor(file)
	}
}

func newAuditRig() *auditRig {
	r := &auditRig{clock: sim.New(1), net: netsim.New(netsim.DefaultConfig())}
	s := server.New(0)
	s.AttachStorage(1024)
	r.servers = []*server.Server{s}
	route := func(uint64) *server.Server { return s }
	for i := 0; i < 2; i++ {
		c := client.New(client.DefaultConfig(int32(i)), r.clock, r.net, route, s, nil)
		c.SetCoordinator(r)
		r.clients = append(r.clients, c)
	}
	return r
}

// TestCheckDetectsTornOpenTable proves the auditor can actually fail: crash
// a server under a live open and audit before any recovery runs — the torn
// open table must surface as a violation, and recovery must clear it.
func TestCheckDetectsTornOpenTable(t *testing.T) {
	r := newAuditRig()
	c := r.clients[0]
	file := c.Create(1, 1, false, false)
	if _, _, err := c.Open(1, 1, file, true, true, false); err != nil {
		t.Fatal(err)
	}
	c.Write(0, 0) // keep the handle open; no data needed
	if vs := Run(r); len(vs) > 0 {
		t.Fatalf("clean rig audits dirty: %v", vs)
	}

	now := r.clock.Now()
	out := r.servers[0].Crash(now)
	r.servers[0].Restart(now)
	if out.OpensDropped != 1 {
		t.Fatalf("crash dropped %d opens, want 1", out.OpensDropped)
	}
	vs := Run(r)
	if len(vs) == 0 {
		t.Fatal("auditor found no violations in a torn open table")
	}
	if vs[0].Rule != "open-tables" {
		t.Errorf("first violation is %q, want open-tables: %s", vs[0].Rule, vs[0])
	}

	// Run the recovery protocol: the same system must now audit clean —
	// recovery closes exactly the gap the crash opened.
	for _, ws := range r.clients {
		ws.RecoverServer(r.servers[0])
	}
	if vs := Run(r); len(vs) > 0 {
		for _, v := range vs {
			t.Errorf("after recovery: %s", v)
		}
	}
}

// TestCheckAcknowledgedSyncDataSurvives pins the no-lost-acknowledged-data
// invariant: once Fsync returns, a workstation crash destroys nothing —
// the bytes are the server's responsibility, and conservation still holds.
func TestCheckAcknowledgedSyncDataSurvives(t *testing.T) {
	r := newAuditRig()
	c := r.clients[0]
	file := c.Create(1, 1, false, false)
	h, _, err := c.Open(1, 1, file, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	c.Write(h, 6000)
	c.Fsync(h)

	loss := c.Crash(r.clock.Now())
	r.servers[0].Disconnect(c.ID(), r.clock.Now())
	if loss.DirtyBytes != 0 {
		t.Errorf("crash after fsync lost %d acknowledged bytes", loss.DirtyBytes)
	}
	if vs := Run(r); len(vs) > 0 {
		for _, v := range vs {
			t.Errorf("%s", v)
		}
	}
	if got := r.servers[0].Stats().WriteBackBytes; got != 6000 {
		t.Errorf("server accepted %d bytes, want the 6000 fsync shipped", got)
	}
}
