package vm

import (
	"fmt"
	"time"
)

// PageClass is one of the paper's four page groups.
type PageClass uint8

// Page classes. Code and initialized ("unmodified") data pages are paged
// from the executable file through the file cache; modified data and stack
// pages are paged to and from backing files, bypassing the client cache.
const (
	PageCode PageClass = iota
	PageInitData
	PageHeap
	PageStack
	NumPageClasses
)

var pageClassNames = [NumPageClasses]string{"code", "init-data", "heap", "stack"}

// String returns the class name.
func (c PageClass) String() string {
	if c < NumPageClasses {
		return pageClassNames[c]
	}
	return fmt.Sprintf("pageclass(%d)", uint8(c))
}

// IO is the set of callbacks through which the VM system performs paging
// I/O. CodeIn and DataIn go through the client file cache (and so may hit
// there); BackingIn and BackingOut go straight to the server. The migrated
// flag attributes traffic to migrated processes for Table 6.
type IO struct {
	CodeIn     func(execFile uint64, offset, bytes int64, migrated bool)
	DataIn     func(execFile uint64, offset, bytes int64, migrated bool)
	BackingIn  func(bytes int64, migrated bool)
	BackingOut func(bytes int64, migrated bool)
}

// Stats counts paging activity by class and direction, feeding the paging
// rows of Tables 5 and 7 and the Section 5.3 traffic split.
type Stats struct {
	BytesIn   [NumPageClasses]int64
	BytesOut  [NumPageClasses]int64
	Evictions int64 // pages evicted under memory pressure
	Refaults  int64 // backing pages faulted back in
	CodeReuse int64 // code pages reused from the retained pool (no I/O)
}

// TotalBytes returns all paging bytes moved.
func (s *Stats) TotalBytes() int64 {
	var sum int64
	for c := PageClass(0); c < NumPageClasses; c++ {
		sum += s.BytesIn[c] + s.BytesOut[c]
	}
	return sum
}

type proc struct {
	pid      int32
	execFile uint64
	pages    [NumPageClasses]int // resident pages by class
	pagedOut int                 // heap/stack pages currently on backing store
	lastRef  time.Duration
	migrated bool
}

func (p *proc) resident() int {
	n := 0
	for _, c := range p.pages {
		n += c
	}
	return n
}

type retained struct {
	pages   int
	lastUse time.Duration
}

// System is one client's virtual memory system.
type System struct {
	mem *Memory
	io  IO

	procs    map[int32]*proc
	retained map[uint64]*retained // execFile -> sticky code pages
	retPages int

	st Stats
}

// NewSystem returns a VM system over the given memory arbiter, performing
// its paging I/O through io. All callbacks must be non-nil.
func NewSystem(mem *Memory, io IO) *System {
	if io.CodeIn == nil || io.DataIn == nil || io.BackingIn == nil || io.BackingOut == nil {
		panic("vm: nil IO callback")
	}
	return &System{
		mem:      mem,
		io:       io,
		procs:    make(map[int32]*proc),
		retained: make(map[uint64]*retained),
	}
}

// Stats returns a snapshot of the paging counters.
func (s *System) Stats() Stats { return s.st }

// ResidentPages returns pages held by live processes plus retained code.
func (s *System) ResidentPages() int {
	n := s.retPages
	for _, p := range s.procs {
		n += p.resident()
	}
	return n
}

// NumProcs returns the number of live processes.
func (s *System) NumProcs() int { return len(s.procs) }

// acquire obtains n physical pages from the arbiter for pid, evicting
// colder pages when memory is exhausted. The file-cache squeeze implied by
// AcquireVM is observed by the client glue through the Memory shares.
func (s *System) acquire(pid int32, n int, now time.Duration) {
	for granted := 0; granted < n; {
		g, _ := s.mem.AcquireVM(n - granted)
		if g == 0 {
			if !s.evictOne(pid, now) {
				// Nothing evictable: run overcommitted rather than
				// deadlock; the real system would thrash.
				return
			}
			continue
		}
		granted += g
	}
}

// Start creates a process image: code and initialized data are faulted in
// from the executable file (reusing retained code pages when the same
// program ran recently — "Sprite keeps code pages in memory even after
// processes exit"), and stack pages are allocated zero-fill with no I/O.
func (s *System) Start(pid int32, execFile uint64, codePages, dataPages, stackPages int, migrated bool, now time.Duration) {
	if _, dup := s.procs[pid]; dup {
		panic(fmt.Sprintf("vm: duplicate pid %d", pid))
	}
	if codePages < 0 || dataPages < 0 || stackPages < 0 {
		panic("vm: negative page counts")
	}
	p := &proc{pid: pid, execFile: execFile, migrated: migrated, lastRef: now}
	s.procs[pid] = p

	// Code: reuse the retained pool when possible. Reused pages are
	// already VM-owned, so only the faulted remainder is acquired.
	reuse := 0
	if r := s.retained[execFile]; r != nil {
		reuse = r.pages
		if reuse > codePages {
			reuse = codePages
		}
		s.retPages -= reuse
		r.pages -= reuse
		if r.pages == 0 {
			delete(s.retained, execFile)
		}
		s.st.CodeReuse += int64(reuse)
	}
	faultCode := codePages - reuse
	s.acquire(pid, faultCode, now)
	p.pages[PageCode] = codePages
	if faultCode > 0 {
		bytes := int64(faultCode) * PageSize
		s.io.CodeIn(execFile, 0, bytes, migrated)
		s.st.BytesIn[PageCode] += bytes
	}

	// Initialized data: copied from the file cache on first reference.
	s.acquire(pid, dataPages, now)
	p.pages[PageInitData] = dataPages
	if dataPages > 0 {
		bytes := int64(dataPages) * PageSize
		s.io.DataIn(execFile, int64(codePages)*PageSize, bytes, migrated)
		s.st.BytesIn[PageInitData] += bytes
	}

	// Stack: zero-fill, no I/O.
	s.acquire(pid, stackPages, now)
	p.pages[PageStack] = stackPages
}

// evictOne evicts one cold page: retained code first (dropped, no I/O),
// then the LRU process's pages — clean classes dropped (code/init-data can
// be re-faulted through the file cache), dirty heap/stack written to the
// backing file. Returns false if nothing is evictable.
func (s *System) evictOne(exceptPid int32, now time.Duration) bool {
	if s.dropOneRetained(func(*retained) bool { return true }) {
		s.mem.ReleaseVM(1)
		s.st.Evictions++
		return true
	}
	var victim *proc
	for _, p := range s.procs {
		if p.pid == exceptPid {
			continue
		}
		if victim == nil || p.lastRef < victim.lastRef {
			victim = p
		}
	}
	if victim == nil || !s.stealPage(victim) {
		return false
	}
	s.mem.ReleaseVM(1)
	s.st.Evictions++
	return true
}

// dropOneRetained removes one retained code page matching the predicate
// (oldest first) and reports whether one was found.
func (s *System) dropOneRetained(ok func(*retained) bool) bool {
	var oldestExec uint64
	var oldest *retained
	for f, r := range s.retained {
		if !ok(r) {
			continue
		}
		if oldest == nil || r.lastUse < oldest.lastUse {
			oldest, oldestExec = r, f
		}
	}
	if oldest == nil {
		return false
	}
	oldest.pages--
	s.retPages--
	if oldest.pages == 0 {
		delete(s.retained, oldestExec)
	}
	return true
}

// stealPage removes one page from victim, paging dirty classes out to the
// backing file. It reports whether a page was taken.
func (s *System) stealPage(victim *proc) bool {
	switch {
	case victim.pages[PageCode] > 0:
		victim.pages[PageCode]--
	case victim.pages[PageInitData] > 0:
		victim.pages[PageInitData]--
	case victim.pages[PageHeap] > 0:
		victim.pages[PageHeap]--
		victim.pagedOut++
		s.io.BackingOut(PageSize, victim.migrated)
		s.st.BytesOut[PageHeap] += PageSize
	case victim.pages[PageStack] > 0:
		victim.pages[PageStack]--
		victim.pagedOut++
		s.io.BackingOut(PageSize, victim.migrated)
		s.st.BytesOut[PageStack] += PageSize
	default:
		return false
	}
	return true
}

// Touch marks a process active: its pages are referenced, any paged-out
// pages fault back in from the backing file, and growHeap new heap pages
// are allocated (dirty). Unknown pids are ignored (the process exited).
func (s *System) Touch(pid int32, growHeap int, now time.Duration) {
	p := s.procs[pid]
	if p == nil {
		return
	}
	p.lastRef = now
	if p.pagedOut > 0 {
		n := p.pagedOut
		p.pagedOut = 0
		s.acquire(pid, n, now)
		p.pages[PageHeap] += n
		bytes := int64(n) * PageSize
		s.io.BackingIn(bytes, p.migrated)
		s.st.BytesIn[PageHeap] += bytes
		s.st.Refaults += int64(n)
	}
	if growHeap > 0 {
		s.acquire(pid, growHeap, now)
		p.pages[PageHeap] += growHeap
	}
}

// PageOut writes up to n of pid's heap pages to the backing file and
// releases the physical pages (working-set trimming under memory
// pressure); they fault back in on the next Touch. It returns the number
// paged out.
func (s *System) PageOut(pid int32, n int, now time.Duration) int {
	p := s.procs[pid]
	if p == nil || n <= 0 {
		return 0
	}
	if n > p.pages[PageHeap] {
		n = p.pages[PageHeap]
	}
	if n == 0 {
		return 0
	}
	p.pages[PageHeap] -= n
	p.pagedOut += n
	bytes := int64(n) * PageSize
	s.io.BackingOut(bytes, p.migrated)
	s.st.BytesOut[PageHeap] += bytes
	s.st.Evictions += int64(n)
	s.mem.ReleaseVM(n)
	return n
}

// Free releases up to n of pid's heap pages back to the free pool (the
// process freed memory); no I/O results. It returns the number released.
func (s *System) Free(pid int32, n int, now time.Duration) int {
	p := s.procs[pid]
	if p == nil || n <= 0 {
		return 0
	}
	if n > p.pages[PageHeap] {
		n = p.pages[PageHeap]
	}
	p.pages[PageHeap] -= n
	p.lastRef = now
	s.mem.ReleaseVM(n)
	return n
}

// Exit tears a process down: heap and stack pages are discarded without
// writeback ("data pages must be discarded from virtual memory when
// processes exit"), code pages move to the retained pool, and the physical
// pages return to the free pool (except retained code, which stays
// VM-owned).
func (s *System) Exit(pid int32, now time.Duration) {
	p := s.procs[pid]
	if p == nil {
		return
	}
	delete(s.procs, pid)
	code := p.pages[PageCode]
	if code > 0 {
		r := s.retained[p.execFile]
		if r == nil {
			r = &retained{}
			s.retained[p.execFile] = r
		}
		r.pages += code
		r.lastUse = now
		s.retPages += code
	}
	s.mem.ReleaseVM(p.resident() - code)
}

// EvictProcess forcibly evicts a migrated process's memory (the paper's
// "user returns to a workstation that has been used only by migrated
// processes" scenario): dirty heap and stack pages are written to the
// backing file and all physical pages are released; the pages fault back
// in if the process is touched again.
func (s *System) EvictProcess(pid int32, now time.Duration) {
	p := s.procs[pid]
	if p == nil {
		return
	}
	dirty := p.pages[PageHeap] + p.pages[PageStack]
	if dirty > 0 {
		bytes := int64(dirty) * PageSize
		s.io.BackingOut(bytes, p.migrated)
		s.st.BytesOut[PageHeap] += bytes
		s.st.Evictions += int64(dirty)
	}
	total := p.resident()
	p.pages = [NumPageClasses]int{}
	p.pagedOut += dirty
	s.mem.ReleaseVM(total)
}

// IdlePages returns the number of VM pages unreferenced for at least
// IdleThreshold: retained code plus pages of idle processes. The file
// cache may claim up to this many pages through Memory.AcquireFS.
func (s *System) IdlePages(now time.Duration) int {
	n := 0
	for _, r := range s.retained {
		if now-r.lastUse >= IdleThreshold {
			n += r.pages
		}
	}
	for _, p := range s.procs {
		if now-p.lastRef >= IdleThreshold {
			n += p.resident()
		}
	}
	return n
}

// DropIdle surrenders n idle pages after the file cache claimed them via
// Memory.AcquireFS (which already adjusted the ownership shares): retained
// code goes first, then pages of idle processes — dirty ones are paged
// out. It returns the number actually dropped.
func (s *System) DropIdle(n int, now time.Duration) int {
	dropped := 0
	for dropped < n {
		if s.dropOneRetained(func(r *retained) bool { return now-r.lastUse >= IdleThreshold }) {
			dropped++
			continue
		}
		var victim *proc
		for _, p := range s.procs {
			if now-p.lastRef < IdleThreshold {
				continue
			}
			if victim == nil || p.lastRef < victim.lastRef {
				victim = p
			}
		}
		if victim == nil || !s.stealPage(victim) {
			break
		}
		dropped++
	}
	return dropped
}
