package scale_test

import (
	"fmt"
	"testing"
	"time"

	"spritefs/internal/scale"
	"spritefs/internal/workload"
)

// benchHorizon keeps one iteration of the 1000-client macro benchmark in
// the single-digit seconds on commodity hardware.
const benchHorizon = 15 * time.Minute

// runRecycled runs one benchmark iteration, carrying the message free
// lists from the previous iteration's engine into the next. A fresh
// engine starts with empty pools, so without this every iteration
// re-pays the warm-up allocations and allocs/op reports cold-start cost
// instead of the steady state the pooling is there to provide.
func runRecycled(cfg scale.Config, opts scale.RunOptions, pools [][]*scale.Message) [][]*scale.Message {
	cfg.SeedMessages = pools
	e := scale.MustNew(cfg)
	e.Run(opts)
	return e.DrainMessagePools()
}

// BenchmarkScaleEngine is the throughput-vs-shards macro benchmark behind
// BENCH_scale.json: the same 1000-client community run as one segment and
// as eight. The shards=1 row is the sequential executor; multi-shard rows
// use the parallel executor, so the ratio between them is the wall-clock
// speedup sharding buys on this host (bounded by usable cores — on a
// single-core host expect ~1x).
func BenchmarkScaleEngine(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("clients=1000/shards=%d", shards), func(b *testing.B) {
			cfg := scale.Config{
				Base:   workload.Default(42),
				Factor: 25,
				Shards: shards,
			}
			opts := scale.RunOptions{Horizon: benchHorizon, Parallel: shards > 1}
			var pools [][]*scale.Message
			for i := 0; i < b.N; i++ {
				pools = runRecycled(cfg, opts, pools)
			}
		})
	}
}

// BenchmarkScaleWorkers pins the worker-count axis: the eight-shard
// community run by one worker and by eight on the channel-clock
// executor. benchjson derives the 8-vs-1 wall-clock speedup recorded in
// BENCH_scale.json from these two rows; it tracks the host's usable
// cores, since the executor's rounds and exchanges are identical either
// way.
func BenchmarkScaleWorkers(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("clients=1000/shards=8/workers=%d", workers), func(b *testing.B) {
			cfg := scale.Config{
				Base:   workload.Default(42),
				Factor: 25,
				Shards: 8,
			}
			opts := scale.RunOptions{Horizon: benchHorizon, Parallel: true, Workers: workers}
			var pools [][]*scale.Message
			for i := 0; i < b.N; i++ {
				pools = runRecycled(cfg, opts, pools)
			}
		})
	}
}

// BenchmarkWANScale is the hierarchical-topology macro benchmark behind
// BENCH_scale.json: the 1000-client community on a fixed 8-segment grid,
// flat (sites=1) and re-grouped into 2 and 4 sites under WAN tier
// pricing. The name carries clients/sites/segs labels so benchjson can
// chart cost vs tier depth; a tier-pricing regression (say, the router
// pricing walk going quadratic) shows up here before it shows up in a
// million-client run.
func BenchmarkWANScale(b *testing.B) {
	for _, sites := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("clients=1000/sites=%d/segs=8", sites), func(b *testing.B) {
			cfg := scale.Config{
				Base:   workload.Default(42),
				Factor: 25,
				Shards: 8,
				Sites:  sites,
			}
			opts := scale.RunOptions{Horizon: benchHorizon, Parallel: true}
			var pools [][]*scale.Message
			for i := 0; i < b.N; i++ {
				pools = runRecycled(cfg, opts, pools)
			}
		})
	}
}

// BenchmarkWANScaleQuick is the benchcheck gate's variant: a small
// two-site community, cheap enough to run median-of-counts inside make
// check, sensitive to regressions in tier pricing, placement lookups and
// the cross-site gateway path.
func BenchmarkWANScaleQuick(b *testing.B) {
	p := workload.Default(7)
	p.NumClients = 16
	p.DailyUsers = 12
	p.OccasionalUsers = 4
	cfg := scale.Config{Base: p, Shards: 4, Sites: 2, ServersPerShard: 1}
	cfg.Remote = scale.DefaultRemote()
	cfg.Remote.OpsPerClientHour = 600 // one remote op per client every 6s
	opts := scale.RunOptions{Horizon: 10 * time.Minute, Parallel: true}
	var pools [][]*scale.Message
	for i := 0; i < b.N; i++ {
		pools = runRecycled(cfg, opts, pools)
	}
}

// BenchmarkScaleBarrier isolates the executor overhead: a small community
// where remote messages (and so exchange rounds) dominate the per-shard
// work.
func BenchmarkScaleBarrier(b *testing.B) {
	p := workload.Default(7)
	p.NumClients = 16
	p.DailyUsers = 12
	p.OccasionalUsers = 4
	cfg := scale.Config{Base: p, Shards: 4, ServersPerShard: 1}
	cfg.Remote = scale.DefaultRemote()
	cfg.Remote.OpsPerClientHour = 600 // one remote op per client every 6s
	opts := scale.RunOptions{Horizon: 10 * time.Minute, Parallel: true}
	var pools [][]*scale.Message
	for i := 0; i < b.N; i++ {
		pools = runRecycled(cfg, opts, pools)
	}
}
