package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasic(t *testing.T) {
	c := NewCounters()
	if c.Get("missing") != 0 {
		t.Error("missing counter not zero")
	}
	c.Inc("opens")
	c.Add("opens", 2)
	c.Add("bytes", -5)
	if got := c.Get("opens"); got != 3 {
		t.Errorf("opens = %d, want 3", got)
	}
	if got := c.Get("bytes"); got != -5 {
		t.Errorf("bytes = %d, want -5", got)
	}
}

func TestCountersSnapshotIsolation(t *testing.T) {
	c := NewCounters()
	c.Add("x", 1)
	snap := c.Snapshot()
	c.Add("x", 10)
	if snap["x"] != 1 {
		t.Error("snapshot mutated by later Add")
	}
	snap["x"] = 99
	if c.Get("x") != 11 {
		t.Error("mutating snapshot affected counters")
	}
}

func TestDelta(t *testing.T) {
	a := map[string]int64{"x": 1, "gone": 5}
	b := map[string]int64{"x": 4, "new": 7}
	d := Delta(a, b)
	if d["x"] != 3 || d["new"] != 7 || d["gone"] != -5 {
		t.Errorf("Delta = %v", d)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc("n")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8000 {
		t.Errorf("concurrent increments lost: %d", got)
	}
}

func TestCountersStringSorted(t *testing.T) {
	c := NewCounters()
	c.Inc("zeta")
	c.Inc("alpha")
	s := c.String()
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Errorf("String not sorted:\n%s", s)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 4); got != 25 {
		t.Errorf("Ratio(1,4) = %g, want 25", got)
	}
	if got := Ratio(3, 0); got != 0 {
		t.Errorf("Ratio with zero denominator = %g, want 0", got)
	}
	if got := RatioF(0.5, 2); got != 25 {
		t.Errorf("RatioF = %g, want 25", got)
	}
	if got := RatioF(1, 0); got != 0 {
		t.Errorf("RatioF zero den = %g, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "Metric", "Paper", "Measured")
	tb.AddRow("throughput", "8.0", "7.9")
	tb.AddRowf("miss ratio", "%.1f", 41.4, 40.2)
	out := tb.String()
	for _, want := range []string{"Table X", "Metric", "throughput", "41.4", "40.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{500, "500B"},
		{2048, "2.0K"},
		{3 << 20, "3.0M"},
		{5 << 30, "5.0G"},
	}
	for _, c := range cases {
		if got := FmtBytes(c.n); got != c.want {
			t.Errorf("FmtBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
