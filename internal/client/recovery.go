// Client crash and server-recovery protocol. Sprite servers are stateful
// (open tables, cacheability decisions live in server memory), so the
// system's fault story is a client-driven recovery protocol: when a client
// notices a server restarted — the server's epoch changed — it re-registers
// every open handle, relearns per-file cacheability, and replays the dirty
// blocks its delayed-write cache still holds. Detection is lazy, on the
// next open or close against the server, which is how the real system's
// periodic-ping discovery collapses into a synchronous simulator.

package client

import (
	"slices"
	"time"

	"spritefs/internal/fscache"
	"spritefs/internal/netsim"
	"spritefs/internal/server"
)

// RecoveryRetryLimit bounds how many times a client retries contacting a
// down server before giving up for this attempt (it will try again on its
// next contact, since the server's epoch only changes at restart).
const RecoveryRetryLimit = 8

// RecoveryBackoff is the initial retry backoff; it doubles per retry, so a
// full retry cycle waits (2^RecoveryRetryLimit - 1) * RecoveryBackoff.
const RecoveryBackoff = 100 * time.Millisecond

// RecoveryStats counts a client's fault-recovery activity.
type RecoveryStats struct {
	Recoveries      int64 // completed recovery protocol runs
	ReopenedFiles   int64 // per-file re-registrations sent
	ReopenedHandles int64 // handles covered by those re-registrations
	ReplayedBytes   int64 // dirty bytes replayed to restarted servers
	Retries         int64 // backoff retries against down servers
	GaveUp          int64 // recovery attempts abandoned after the retry limit
	Crashes         int64 // times this workstation crashed
	LostDirtyBytes  int64 // dirty bytes destroyed by those crashes
	MaxLostDirtyAge time.Duration
}

// RecoveryStats returns a snapshot of the client's recovery counters.
func (c *Client) RecoveryStats() RecoveryStats { return c.rec }

// RecoveryResult describes one recovery protocol run.
type RecoveryResult struct {
	Files         int // distinct files re-registered
	Reopened      int // handles re-registered
	ReplayedBytes int64
	Retries       int
	GaveUp        bool
	Latency       time.Duration // protocol cost: RPCs, replay, backoff
}

// maybeRecover checks the server's epoch against the one last seen and runs
// the recovery protocol on a mismatch. Called from Open and Close — the
// operations that register state at the server — so a restart is always
// detected before new state lands on the rebuilt tables.
func (c *Client) maybeRecover(srv *server.Server) time.Duration {
	last, seen := c.epochs[srv.ID()]
	cur := srv.Epoch()
	if !seen || last == cur {
		c.epochs[srv.ID()] = cur
		return 0
	}
	return c.RecoverServer(srv).Latency
}

// RecoverServer runs the Sprite recovery protocol against one server:
// bounded-backoff wait while the server is down, then re-registration of
// every open handle (one control RPC per file), cacheability relearning,
// and replay of all dirty blocks this cache holds for the server's files.
// Safe to call when nothing was lost; re-registration is idempotent at the
// server, so duplicate runs cannot corrupt open counts.
func (c *Client) RecoverServer(srv *server.Server) RecoveryResult {
	var r RecoveryResult
	sid := srv.ID()

	backoff := RecoveryBackoff
	for r.Retries < RecoveryRetryLimit && srv.Down() {
		r.Retries++
		c.rec.Retries++
		r.Latency += backoff
		backoff *= 2
	}
	if srv.Down() {
		// Give up for now; the epoch stays unsynced, so the next contact
		// retries the whole protocol.
		r.GaveUp = true
		c.rec.GaveUp++
		return r
	}
	epoch := srv.Epoch()
	if last, seen := c.epochs[sid]; seen && last == epoch {
		return r // no restart since we last synced; nothing was lost
	}
	now := c.sim.Now()

	// Re-register open handles, aggregated per file the way the server
	// tracks them: a write-mode handle registers as a writer, everything
	// else as a reader (mirroring Open/Close).
	counts := make(map[uint64][2]int)
	for _, h := range c.handles {
		if c.route(h.file) != srv {
			continue
		}
		n := counts[h.file]
		if h.write {
			n[1]++
		} else {
			n[0]++
		}
		counts[h.file] = n
	}
	files := make([]uint64, 0, len(counts))
	for f := range counts {
		files = append(files, f)
	}
	slices.Sort(files)

	for _, file := range files {
		n := counts[file]
		r.Latency += c.net.RPCTo(sid, c.cfg.ID, netsim.Control, 0)
		reply, err := srv.Recover(file, c.cfg.ID, n[0], n[1], now)
		if err != nil {
			// Deleted while we were cut off: the cached copy is garbage and
			// the handles will no-op from here on.
			c.Cache.Invalidate(file)
			delete(c.versions, file)
			continue
		}
		r.Files++
		r.Reopened += n[0] + n[1]
		if v, ok := c.versions[file]; ok && v != reply.Version {
			if c.Cache.Invalidate(file) > 0 {
				srv.NoteInvalidation()
			}
		}
		c.versions[file] = reply.Version
		if c.cfg.Consistency == ConsistencySprite && len(reply.DisableOn) > 0 && c.coord != nil {
			c.coord.DisableCaching(reply.DisableOn, file)
		}
		if !reply.Cacheable {
			for _, h := range c.handles {
				if h.file == file {
					h.shared = true
				}
			}
		}
	}

	// Replay dirty blocks: the restarted server lost every un-synced block
	// in its own cache, so the client's delayed-write data must go back —
	// including for files no longer open (dirty-at-close is the norm under
	// a 30-second delay).
	for _, file := range c.Cache.DirtyFiles() {
		if c.route(file) != srv {
			continue
		}
		for _, wb := range c.Cache.RecoverFlush(file, now) {
			r.Latency += c.shipOne(srv, wb, now)
			r.ReplayedBytes += wb.Bytes
		}
	}

	c.epochs[sid] = epoch
	c.rec.Recoveries++
	c.rec.ReopenedFiles += int64(r.Files)
	c.rec.ReopenedHandles += int64(r.Reopened)
	c.rec.ReplayedBytes += r.ReplayedBytes
	return r
}

// Crash models a workstation crash: the cache's resident blocks, all open
// handles, and all consistency bookkeeping vanish. Counters survive (they
// are the measurement infrastructure). The caller is responsible for the
// server side — Disconnect on each server — since a crashed machine cannot
// announce its own death.
func (c *Client) Crash(now time.Duration) fscache.CrashLoss {
	loss := c.Cache.DiscardAll(now)
	c.handles = make(map[uint64]*handle)
	c.versions = make(map[uint64]uint64)
	c.validated = make(map[uint64]time.Duration)
	c.epochs = make(map[int16]uint64)
	c.rec.Crashes++
	c.rec.LostDirtyBytes += loss.DirtyBytes
	if loss.MaxDirtyAge > c.rec.MaxLostDirtyAge {
		c.rec.MaxLostDirtyAge = loss.MaxDirtyAge
	}
	return loss
}

// HandleCounts returns the client's open handles per file — index 0
// read-mode, index 1 write-mode — as the recovery protocol would
// re-register them. The invariant checker compares this against the
// server's open tables.
func (c *Client) HandleCounts() map[uint64][2]int {
	counts := make(map[uint64][2]int)
	for _, h := range c.handles {
		n := counts[h.file]
		if h.write {
			n[1]++
		} else {
			n[0]++
		}
		counts[h.file] = n
	}
	return counts
}

// TrackedVersion returns the version the client last learned for file and
// whether one is tracked (the invariant checker's view into version sync).
func (c *Client) TrackedVersion(file uint64) (uint64, bool) {
	v, ok := c.versions[file]
	return v, ok
}
