package netsim

import (
	"fmt"
	"slices"
	"time"
)

// Class attributes a transfer to one of the paper's traffic categories.
type Class uint8

// Traffic classes. FileRead/FileWrite are cache-mediated block transfers;
// Paging classes carry VM traffic (which in Sprite is file traffic to
// executable and backing files); Shared classes are the uncacheable
// pass-through operations on write-shared files; DirRead is naming traffic;
// Control covers opens, closes, consistency callbacks and other small RPCs.
const (
	FileRead Class = iota
	FileWrite
	PagingRead
	PagingWrite
	SharedRead
	SharedWrite
	DirRead
	Control
	NumClasses
)

var classNames = [NumClasses]string{
	"file-read", "file-write", "paging-read", "paging-write",
	"shared-read", "shared-write", "dir-read", "control",
}

// String returns the class name.
func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsRead reports whether the class moves bytes from server to client.
func (c Class) IsRead() bool {
	switch c {
	case FileRead, PagingRead, SharedRead, DirRead:
		return true
	}
	return false
}

// Traffic accumulates bytes and operation counts per class.
type Traffic struct {
	Bytes [NumClasses]int64
	Ops   [NumClasses]int64
}

// Add merges other into t.
func (t *Traffic) Add(other *Traffic) {
	for c := Class(0); c < NumClasses; c++ {
		t.Bytes[c] += other.Bytes[c]
		t.Ops[c] += other.Ops[c]
	}
}

// TotalBytes returns the sum of bytes over all classes.
func (t *Traffic) TotalBytes() int64 {
	var sum int64
	for _, b := range t.Bytes {
		sum += b
	}
	return sum
}

// TotalOps returns the sum of operations over all classes.
func (t *Traffic) TotalOps() int64 {
	var sum int64
	for _, o := range t.Ops {
		sum += o
	}
	return sum
}

// ReadBytes returns bytes moved server-to-client.
func (t *Traffic) ReadBytes() int64 {
	var sum int64
	for c := Class(0); c < NumClasses; c++ {
		if c.IsRead() {
			sum += t.Bytes[c]
		}
	}
	return sum
}

// WriteBytes returns bytes moved client-to-server.
func (t *Traffic) WriteBytes() int64 { return t.TotalBytes() - t.ReadBytes() }

// Config holds the interconnect parameters.
type Config struct {
	// BandwidthBps is wire bandwidth in bytes/second. The measured
	// cluster's Ethernet was 10 Mbit/s = 1.25e6 B/s.
	BandwidthBps float64
	// BaseLatency is fixed per-RPC overhead (protocol processing plus
	// server handling). Tuned so a 4 KB block fetch costs ~6.5 ms, the
	// figure the paper quotes for Sprite.
	BaseLatency time.Duration
}

// DefaultConfig returns the parameters of the measured 1991 cluster.
func DefaultConfig() Config {
	return Config{
		BandwidthBps: 1.25e6,
		BaseLatency:  3 * time.Millisecond,
	}
}

// AnyServer marks an RPC whose destination server is unknown or
// irrelevant (e.g. VM backing traffic). Fault hooks see it verbatim and
// apply only client-scoped faults to such transfers.
const AnyServer int16 = -1

// Outcome is a fault hook's verdict on one RPC: how many times the packet
// was lost and retransmitted before succeeding, and how much extra time
// the transfer stalled (retransmission timeouts, partition waits, injected
// link delay). The RPC always completes — the simulator is analytic, so
// faults surface as latency and counters, never as lost state.
type Outcome struct {
	Dropped    int // retransmissions before the RPC got through
	ExtraDelay time.Duration
}

// Hook inspects every RPC and returns the fault-induced perturbation.
// internal/faults installs one to drive partitions, drop windows and
// delay windows from the simulation clock; a nil hook means a healthy
// network. server is AnyServer when the destination is not modeled.
type Hook interface {
	Outcome(server int16, client int32, class Class, payload int64) Outcome
}

// FaultStats counts the perturbations a hook applied at the wire.
type FaultStats struct {
	DroppedOps int64         // RPCs that lost at least one packet
	Retransmit int64         // total retransmissions
	StalledOps int64         // RPCs that incurred extra delay
	StallTime  time.Duration // total extra delay added by faults
}

// farID bounds the dense per-client tables. Ids within (-farID, farID)
// index slices directly; anything beyond (hand-written traces can carry
// arbitrary ids) falls back to a map so a single huge id cannot force a
// gigantic sparse slice.
const farID = 1 << 16

// Network is the shared interconnect. It is passive: callers ask for the
// cost of an RPC and schedule their own delays on the simulator clock;
// Network records the byte accounting and cumulative busy time.
//
// Per-client accounting is slice-backed: real clients get small
// non-negative ids and gateway pseudo-clients small negative ones, so the
// hot RPCTo path indexes a dense slice instead of hashing a map key, and
// steady-state accounting performs zero allocations.
type Network struct {
	cfg    Config
	total  Traffic
	pos    []Traffic          // per-client accounting for id >= 0, indexed by id
	neg    []Traffic          // for id < 0 (gateway pseudo-clients), indexed by -id-1
	far    map[int32]*Traffic // fallback for |id| >= farID
	busy   time.Duration
	hook   Hook
	faults FaultStats
}

// New returns a network with the given configuration. A zero bandwidth is
// a configuration error and panics.
func New(cfg Config) *Network {
	if cfg.BandwidthBps <= 0 {
		panic("netsim: non-positive bandwidth")
	}
	if cfg.BaseLatency < 0 {
		panic("netsim: negative base latency")
	}
	return &Network{cfg: cfg}
}

// traffic returns the accounting slot for id, growing the dense tables on
// first sight of a new id. Steady state is a bounds check and an index.
func (n *Network) traffic(id int32) *Traffic {
	if id >= 0 {
		if int(id) < len(n.pos) {
			return &n.pos[id]
		}
		if id < farID {
			n.pos = append(n.pos, make([]Traffic, int(id)+1-len(n.pos))...)
			return &n.pos[id]
		}
	} else if j := int(-(id + 1)); j < farID {
		if j < len(n.neg) {
			return &n.neg[j]
		}
		n.neg = append(n.neg, make([]Traffic, j+1-len(n.neg))...)
		return &n.neg[j]
	}
	t := n.far[id]
	if t == nil {
		if n.far == nil {
			n.far = make(map[int32]*Traffic)
		}
		t = &Traffic{}
		n.far[id] = t
	}
	return t
}

// SetHook installs (or, with nil, removes) the fault hook consulted on
// every RPC.
func (n *Network) SetHook(h Hook) { n.hook = h }

// FaultStats returns a snapshot of the fault perturbation counters.
func (n *Network) FaultStats() FaultStats { return n.faults }

// RPC accounts one remote procedure call of the given class carrying
// payload bytes on behalf of client, and returns its service time.
// Negative payloads are a programming error and panic.
func (n *Network) RPC(client int32, class Class, payload int64) time.Duration {
	return n.RPCTo(AnyServer, client, class, payload)
}

// RPCTo is RPC with the destination server named, so fault hooks can
// scope outages to one server. Wire-busy time excludes fault stalls (the
// wire is idle while a client waits out a partition or retransmission
// timeout); StallTime accumulates them separately.
func (n *Network) RPCTo(server int16, client int32, class Class, payload int64) time.Duration {
	if payload < 0 {
		panic(fmt.Sprintf("netsim: negative payload %d", payload))
	}
	if class >= NumClasses {
		panic(fmt.Sprintf("netsim: bad class %d", class))
	}
	t := n.traffic(client)
	t.Bytes[class] += payload
	t.Ops[class]++
	n.total.Bytes[class] += payload
	n.total.Ops[class]++
	d := n.cfg.BaseLatency + time.Duration(float64(payload)/n.cfg.BandwidthBps*float64(time.Second))
	n.busy += d
	if n.hook != nil {
		o := n.hook.Outcome(server, client, class, payload)
		if o.Dropped > 0 {
			n.faults.DroppedOps++
			n.faults.Retransmit += int64(o.Dropped)
		}
		if o.ExtraDelay > 0 {
			n.faults.StalledOps++
			n.faults.StallTime += o.ExtraDelay
			d += o.ExtraDelay
		}
	}
	return d
}

// Total returns a copy of the cluster-wide traffic accounting.
func (n *Network) Total() Traffic { return n.total }

// Client returns a copy of one client's traffic accounting.
func (n *Network) Client(id int32) Traffic {
	if id >= 0 {
		if int(id) < len(n.pos) {
			return n.pos[id]
		}
	} else if j := int(-(id + 1)); j < len(n.neg) {
		return n.neg[j]
	}
	if t := n.far[id]; t != nil {
		return *t
	}
	return Traffic{}
}

// Clients returns the ids of all clients that have issued RPCs, in
// ascending id order. (The dense tables may hold zero-valued slots for
// ids below the high-water mark that never issued; those are skipped.)
func (n *Network) Clients() []int32 {
	out := make([]int32, 0, len(n.pos)+len(n.neg)+len(n.far))
	for j := len(n.neg) - 1; j >= 0; j-- {
		if n.neg[j].TotalOps() > 0 {
			out = append(out, int32(-j-1))
		}
	}
	for id := range n.pos {
		if n.pos[id].TotalOps() > 0 {
			out = append(out, int32(id))
		}
	}
	if len(n.far) > 0 {
		for id, t := range n.far {
			if t.TotalOps() > 0 {
				out = append(out, id)
			}
		}
		slices.Sort(out)
	}
	return out
}

// Busy returns cumulative wire-busy time; divided by elapsed virtual time
// it gives utilization (the paper's "four percent of the bandwidth of an
// Ethernet" check).
func (n *Network) Busy() time.Duration { return n.busy }

// Utilization returns the fraction of the elapsed window the wire was busy.
func (n *Network) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n.busy) / float64(elapsed)
}
