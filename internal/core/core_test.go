package core

import (
	"strings"
	"testing"

	"spritefs/internal/workload"
)

func workloadDefault() workload.Params { return workload.Default(1) }

// quickOpts keeps core tests fast: tiny cluster, one simulated hour.
var quickOpts = TraceOptions{Hours: 1, Scale: 0.15}

func TestRunTraceProducesAllAnalyses(t *testing.T) {
	r, err := RunTrace(1, quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Records == 0 {
		t.Fatal("empty trace")
	}
	if r.Overall.Opens == 0 || r.Overall.Users == 0 {
		t.Errorf("overall: %+v", r.Overall)
	}
	if r.Access.OpenTimes.N() == 0 {
		t.Error("no open-time samples")
	}
	if r.Activity.TenMinAll.AvgActiveUsers <= 0 {
		t.Error("no user activity")
	}
	if r.Overhead.ByteRatio(0) != 0 && r.Overhead.ByteRatio(0) != 1 {
		t.Errorf("sprite byte ratio = %g, want 0 (no sharing) or 1", r.Overhead.ByteRatio(0))
	}
}

func TestRunTraceRejectsBadNumber(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for trace 9")
		}
	}()
	RunTrace(9, quickOpts)
}

func TestRunTraceDeterministic(t *testing.T) {
	a, err := RunTrace(2, quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrace(2, quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Records != b.Records || a.Overall.Opens != b.Overall.Opens ||
		a.Overall.MBReadFiles != b.Overall.MBReadFiles {
		t.Errorf("nondeterministic: %d/%d records, %d/%d opens",
			a.Records, b.Records, a.Overall.Opens, b.Overall.Opens)
	}
	// A different seed offset must actually change the run.
	c, err := RunTrace(2, TraceOptions{Hours: 1, Scale: 0.15, SeedOffset: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Overall.Opens == a.Overall.Opens && c.Records == a.Records {
		t.Error("seed offset had no effect")
	}
}

func TestRunCounterStudy(t *testing.T) {
	r := RunCounterStudy(CounterOptions{Days: 0.05, Scale: 0.15})
	if r.Table4.AvgSizeKB <= 0 {
		t.Errorf("avg cache size = %g", r.Table4.AvgSizeKB)
	}
	if r.Table5.TotalBytes == 0 {
		t.Error("no raw traffic recorded")
	}
	if r.Table10.FileOpens == 0 {
		t.Error("no opens at servers")
	}
	if r.NetUtilization <= 0 || r.NetUtilization >= 1 {
		t.Errorf("utilization = %g", r.NetUtilization)
	}
}

func TestReportsRenderAllTables(t *testing.T) {
	r, err := RunTrace(1, quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	results := []*TraceResult{r}
	out := TraceReport(results)
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Figures 1-4", "Table 10", "Table 11", "Table 12"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace report missing %q", want)
		}
	}
	cr := RunCounterStudy(CounterOptions{Days: 0.05, Scale: 0.15})
	cout := CounterTables(cr)
	for _, want := range []string{"Table 4", "Table 5", "Table 6", "Table 7", "Table 8", "Table 9", "Network utilization"} {
		if !strings.Contains(cout, want) {
			t.Errorf("counter report missing %q", want)
		}
	}
}

func TestScaleParams(t *testing.T) {
	p := scaleParams(workloadDefault(), 0.5)
	if p.NumClients != 20 || p.DailyUsers != 15 || p.OccasionalUsers != 20 {
		t.Errorf("half scale: %d clients %d+%d users", p.NumClients, p.DailyUsers, p.OccasionalUsers)
	}
	full := scaleParams(workloadDefault(), 1.0)
	if full.NumClients != 40 {
		t.Errorf("scale 1.0 changed the cluster: %d", full.NumClients)
	}
	tiny := scaleParams(workloadDefault(), 0.01)
	if tiny.NumClients < 2 {
		t.Errorf("scale floor violated: %d clients", tiny.NumClients)
	}
}
