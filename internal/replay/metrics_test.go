package replay

import (
	"strings"
	"testing"
	"time"

	"spritefs/internal/trace"
)

// dumpAll renders one result's registry in every export format plus its
// sampled series, concatenated — the byte string the invariance tests pin.
func dumpAll(t *testing.T, r *Result) string {
	t.Helper()
	var b strings.Builder
	for _, format := range []string{"prom", "tsv", "jsonl"} {
		if err := r.Metrics.Registry().Dump(&b, format); err != nil {
			t.Fatal(err)
		}
	}
	if r.Series != nil {
		for _, format := range []string{"prom", "tsv", "jsonl"} {
			if err := r.Series.Dump(&b, format); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.String()
}

// metricsSweepConfigs is the invariance grid with the registry sampler on,
// so the series dumps are exercised too.
func metricsSweepConfigs() []Config {
	cfgs := sweepConfigs()
	for i := range cfgs {
		cfgs[i].MetricsSample = time.Minute
	}
	return cfgs
}

// TestMetricsDumpDeterminism: the same trace replayed twice under the same
// configuration yields byte-identical registry and series dumps in every
// format — the property that makes metric dumps diffable artifacts.
func TestMetricsDumpDeterminism(t *testing.T) {
	live := capturedTrace(t)
	cfg := replayCfg("determinism")
	cfg.MetricsSample = time.Minute
	run := func() string {
		res, err := RunSweep(live.recs, []Config{cfg}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return dumpAll(t, res[0])
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("empty metrics dump")
	}
	if a != b {
		t.Fatal("metric dumps differ across identical runs")
	}
}

// TestMetricsDumpWorkerInvariance extends the sweep acceptance criterion
// from reports to raw metric dumps: every configuration's registry dump
// (and sampled time series) is byte-identical whether one goroutine or
// eight replayed the grid. Each worker owns a hermetic engine and a
// private registry, so scheduling cannot leak into the counters.
func TestMetricsDumpWorkerInvariance(t *testing.T) {
	live := capturedTrace(t)
	cfgs := metricsSweepConfigs()

	serial, err := RunSweep(live.recs, cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(live.recs, cfgs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		a, b := dumpAll(t, serial[i]), dumpAll(t, parallel[i])
		if a == "" {
			t.Fatalf("config %q: empty metrics dump", cfgs[i].Name)
		}
		if a != b {
			t.Errorf("config %q: metric dumps diverge across worker counts", cfgs[i].Name)
		}
	}
}

// TestReportIsRegistryProjection pins the tentpole refactor: the sum-shaped
// report tables must read exactly what the registry sums say, and the
// registry must actually contain the per-client families behind them.
func TestReportIsRegistryProjection(t *testing.T) {
	live := capturedTrace(t)
	res, err := Run(replayCfg("projection"), trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	reg := res.Metrics.Registry()
	if got := res.Report.Table10.FileOpens; got != reg.SumInt("spritefs_server_file_opens_total") {
		t.Errorf("Table10.FileOpens=%d != registry sum %d",
			got, reg.SumInt("spritefs_server_file_opens_total"))
	}
	if got := res.Report.Table7.TotalBytes; got != reg.SumInt("spritefs_net_bytes_total") {
		t.Errorf("Table7.TotalBytes=%d != registry sum %d",
			got, reg.SumInt("spritefs_net_bytes_total"))
	}
	if reg.SumInt("spritefs_replay_records_applied_total") != res.Stats.Applied {
		t.Errorf("replay stats not registered: applied %d vs %d",
			reg.SumInt("spritefs_replay_records_applied_total"), res.Stats.Applied)
	}
	// Per-client cache families exist for every materialized client.
	for _, f := range reg.Families() {
		if f.Desc.Name == "spritefs_cache_read_bytes_total" {
			if f.Instances() < 2*len(res.Metrics.Clients) { // scope=all + scope=migrated
				t.Errorf("cache family has %d instances for %d clients",
					f.Instances(), len(res.Metrics.Clients))
			}
			return
		}
	}
	t.Error("spritefs_cache_read_bytes_total family missing from registry")
}
