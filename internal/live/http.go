package live

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"time"

	"spritefs/internal/metrics"
)

// HTTPServer exposes the metric registry live over HTTP: GET /metrics in
// Prometheus text format and GET /healthz. Snapshots are marshalled onto
// the dispatcher loop (registry value closures read cluster state only the
// loop may touch), so a scrape observes one consistent instant of the
// service.
type HTTPServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeHTTP binds addr (e.g. "127.0.0.1:0") and starts serving. Addr
// reports the bound address.
func ServeHTTP(addr string, wc *WallClock, reg *metrics.Registry) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		var werr error
		if err := wc.Call(func() { werr = reg.WritePrometheus(&buf) }); err != nil {
			http.Error(w, "service draining", http.StatusServiceUnavailable)
			return
		}
		if werr != nil {
			http.Error(w, werr.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", metrics.PrometheusContentType)
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if err := wc.Call(func() {}); err != nil {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	s := &HTTPServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close gracefully shuts the HTTP server down, waiting briefly for
// in-flight scrapes.
func (s *HTTPServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
