package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("final time = %v", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.At(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(time.Millisecond, func() {})
}

func TestAfterNegativeClamped(t *testing.T) {
	s := New(1)
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Error("After with negative delay never ran")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, d := range []Time{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Errorf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	// Advancing with no events still moves the clock.
	s.RunUntil(10 * time.Second)
	if s.Now() != 10*time.Second || s.Pending() != 0 {
		t.Errorf("Now = %v Pending = %d", s.Now(), s.Pending())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New(1)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			s.After(time.Second, chain)
		}
	}
	s.After(0, chain)
	s.Run()
	if count != 5 {
		t.Errorf("chain ran %d times, want 5", count)
	}
	if s.Now() != 4*time.Second {
		t.Errorf("Now = %v, want 4s", s.Now())
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = s.Every(0, time.Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	s.RunUntil(time.Minute)
	if n != 3 {
		t.Errorf("ticker fired %d times, want 3", n)
	}
}

func TestTickerStopBeforeFirstFire(t *testing.T) {
	s := New(1)
	n := 0
	tk := s.Every(time.Second, time.Second, func() { n++ })
	tk.Stop()
	s.RunUntil(time.Minute)
	if n != 0 {
		t.Errorf("stopped ticker fired %d times", n)
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero period")
		}
	}()
	New(1).Every(0, 0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		s := New(42)
		var vals []float64
		s.Every(0, time.Second, func() { vals = append(vals, s.Rand().Float64()) })
		s.RunUntil(10 * time.Second)
		return vals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %g vs %g", i, a[i], b[i])
		}
	}
}
