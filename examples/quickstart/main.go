// Quickstart: assemble the measured system in miniature, run two hours of
// the default workload, and print the headline numbers of both halves of
// the study — the Section 4 trace analysis and the Section 5 cache
// behavior.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"spritefs/internal/analysis"
	"spritefs/internal/cluster"
	"spritefs/internal/trace"
	"spritefs/internal/workload"
)

func main() {
	// A quarter-size cluster keeps the example fast: 10 workstations,
	// 2 file servers, ~17 users.
	p := workload.Default(7)
	p.NumClients = 10
	p.DailyUsers = 8
	p.OccasionalUsers = 9

	cfg := cluster.DefaultConfig(p)
	cfg.NumServers = 2
	c := cluster.New(cfg)

	fmt.Printf("running %v for 2 simulated hours...\n", c)
	start := time.Now()
	c.Run(2 * time.Hour)
	fmt.Printf("done in %.1fs of wall time\n\n", time.Since(start).Seconds())

	// --- Section 4 in miniature: analyze the merged trace. ---
	ov := analysis.NewOverall()
	ap := analysis.NewAccessPatterns()
	lt := analysis.NewLifetimes()
	if err := analysis.Run(trace.Merge(c.PerServerStreams()...), ov, ap, lt); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Trace analysis (the Section 4 study):")
	fmt.Printf("  %d opens by %d users; %.1f MB read, %.1f MB written\n",
		ov.Opens, ov.Users, ov.MBReadFiles, ov.MBWrittenFiles)
	roAcc, roBytes := ap.ClassPct(analysis.ReadOnly)
	wf, _ := ap.SeqPct(analysis.ReadOnly, analysis.WholeFile)
	fmt.Printf("  %.0f%% of accesses are read-only (%.0f%% of bytes); %.0f%% of read-only accesses are whole-file\n",
		roAcc, roBytes, wf)
	fmt.Printf("  %.0f%% of opens last under 0.25s; %.0f%% of deleted files lived under 30s\n",
		100*ap.OpenTimes.FracAtOrBelow(0.25), lt.PctFilesUnder30s())

	// --- Section 5 in miniature: read the kernel counters. ---
	t6 := c.Table6Report()
	t10 := c.Table10Report()
	fmt.Println("\nCache behavior (the Section 5 study):")
	fmt.Printf("  file read miss ratio %.1f%%; writeback traffic %.1f%% of written bytes\n",
		t6.All.ReadMissPct, t6.All.WritebackPct)
	fmt.Printf("  %.1f%% of written bytes died in the cache before reaching a server\n",
		t6.BytesSavedByDeletePct)
	fmt.Printf("  consistency: %.2f%% of opens hit concurrent write-sharing, %.2f%% forced a recall\n",
		t10.CWSPct, t10.RecallPct)

	total := c.Net.Total()
	fmt.Printf("\nServer traffic: %.1f MB across the wire (%.2f%% Ethernet utilization)\n",
		float64(total.TotalBytes())/(1<<20), 100*c.Net.Utilization(2*time.Hour))
}
