package cluster

import (
	"time"

	"spritefs/internal/client"
	"spritefs/internal/fscache"
	"spritefs/internal/metrics"
	"spritefs/internal/netsim"
	"spritefs/internal/server"
	"spritefs/internal/stats"
)

// This file computes the Section 5 tables from kernel counters, mirroring
// the paper's post-processing of the two-week counter files. The
// computation lives on Metrics — a counter-bearing view over a set of
// clients, servers and a network — so that anything that drives the same
// component stack (the live Cluster, the trace-replay engine in
// internal/replay) produces reports of identical shape.

// Metrics is the counter-bearing view of an experiment: whatever assembled
// the clients/servers/network (live cluster or trace replay), the Section 5
// tables are computed the same way from the same counters.
type Metrics struct {
	Clients []*client.Client
	Servers []*server.Server
	Net     *netsim.Network
	Samples []Sample
	// Reg is the central metric registry the components registered into at
	// construction time. Sum-shaped tables (5, 7, 10, staleness, storage,
	// recovery) are projections of it — see Registry in metrics.go.
	Reg *metrics.Registry
}

// Metrics returns the cluster's counter view, from which every table
// report is computed.
func (c *Cluster) Metrics() *Metrics {
	return &Metrics{Clients: c.Clients, Servers: c.Servers, Net: c.Net, Samples: c.samples, Reg: c.Reg}
}

// Report aggregates every counter-derived table of the Section 5 study in
// one value, so live runs and trace replays can be compared field by field.
type Report struct {
	Table4   Table4
	Table5   Table5
	Table6   Table6
	Table7   Table7
	Table8   Table8
	Table9   Table9
	Table10  Table10
	Storage  ServerStorage
	Stale    LiveStale
	Recovery Recovery
}

// Report computes all counter tables at once.
func (m *Metrics) Report() Report {
	return Report{
		Table4:   m.Table4Report(),
		Table5:   m.Table5Report(),
		Table6:   m.Table6Report(),
		Table7:   m.Table7Report(),
		Table8:   m.Table8Report(),
		Table9:   m.Table9Report(),
		Table10:  m.Table10Report(),
		Storage:  m.ServerStorageReport(),
		Stale:    m.LiveStaleReport(),
		Recovery: m.RecoveryReport(),
	}
}

// Report computes all counter tables from the cluster's counters.
func (c *Cluster) Report() Report { return c.Metrics().Report() }

// Table4 is the client cache size study.
type Table4 struct {
	AvgSizeKB float64 // average cache size over active machine-intervals
	SDSizeKB  float64 // standard deviation over 15-minute intervals
	MaxSizeKB float64
	// Cache size change (max-min within an interval), 15- and 60-minute.
	Change15MaxKB, Change15AvgKB, Change15SDKB float64
	Change60MaxKB, Change60AvgKB, Change60SDKB float64
	ActiveIntervals15                          int64
}

// Table4Report aggregates the sampler's observations. Only intervals in
// which a machine was active are included, and the first interval after a
// client's cold start is screened out, as in the paper.
func (c *Cluster) Table4Report() Table4 { return c.Metrics().Table4Report() }

// Table4Report aggregates the sampler's observations.
func (m *Metrics) Table4Report() Table4 {
	var t Table4
	sizes15, ch15 := m.intervalChanges(15 * time.Minute)
	_, ch60 := m.intervalChanges(60 * time.Minute)

	var sizeW, c15, c60 stats.Welford
	for _, s := range sizes15 {
		sizeW.Add(s / 1024)
	}
	for _, v := range ch15 {
		c15.Add(v / 1024)
	}
	for _, v := range ch60 {
		c60.Add(v / 1024)
	}
	t.AvgSizeKB = sizeW.Mean()
	t.SDSizeKB = sizeW.Stddev()
	t.MaxSizeKB = sizeW.Max()
	t.Change15MaxKB, t.Change15AvgKB, t.Change15SDKB = c15.Max(), c15.Mean(), c15.Stddev()
	t.Change60MaxKB, t.Change60AvgKB, t.Change60SDKB = c60.Max(), c60.Mean(), c60.Stddev()
	t.ActiveIntervals15 = sizeW.N()
	return t
}

// intervalChanges buckets samples into fixed windows per client and
// returns the mean size and the size change of each active window.
func (m *Metrics) intervalChanges(width time.Duration) (sizes, changes []float64) {
	type key struct {
		client int32
		win    int64
	}
	type agg struct {
		min, max, sum float64
		n             int
		active        bool
	}
	wins := make(map[key]*agg)
	for _, s := range m.Samples {
		k := key{s.Client, int64(s.Time / width)}
		a := wins[k]
		if a == nil {
			a = &agg{min: float64(s.CacheSize), max: float64(s.CacheSize)}
			wins[k] = a
		}
		v := float64(s.CacheSize)
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
		a.sum += v
		a.n++
		if s.Active {
			a.active = true
		}
	}
	for k, a := range wins {
		// Screen out the cold-start window (window 0 always begins at the
		// minimum size and "almost always grows immediately").
		if !a.active || k.win == 0 {
			continue
		}
		sizes = append(sizes, a.sum/float64(a.n))
		changes = append(changes, a.max-a.min)
	}
	return sizes, changes
}

// Table5 is the raw traffic-source breakdown: percentages of all bytes
// presented by applications to the client operating systems, before any
// cache filtering.
type Table5 struct {
	FileReadPct            float64 // cacheable file reads
	FileWritePct           float64
	PagingCacheableReadPct float64 // code and initialized-data faults
	PagingBackingReadPct   float64
	PagingBackingWritePct  float64
	SharedReadPct          float64 // uncacheable write-shared pass-through
	SharedWritePct         float64
	DirReadPct             float64
	PagingPct              float64 // all paging classes combined
	UncacheablePct         float64
	TotalBytes             int64
}

// Table5Report sums the per-client application-level traffic.
func (c *Cluster) Table5Report() Table5 { return c.Metrics().Table5Report() }

// Table5Report sums the per-client application-level traffic, as a
// projection of the central registry: the client caches' spritefs_cache
// families (the server stores' internal caches live under a distinct
// prefix, so the sums cover exactly the clients), the per-class VM paging
// counters, and the write-sharing pass-through counters.
func (m *Metrics) Table5Report() Table5 {
	r := m.Registry()
	all := metrics.L("scope", "all")
	fileRead := r.SumInt("spritefs_cache_read_bytes_total", all) -
		r.SumInt("spritefs_cache_paging_read_bytes_total", all)
	fileWrite := r.SumInt("spritefs_cache_write_bytes_total", all)
	pagingCache := r.SumInt("spritefs_cache_paging_read_bytes_total", all)
	backIn := r.SumInt("spritefs_vm_paged_in_bytes_total", metrics.L("class", "heap")) +
		r.SumInt("spritefs_vm_paged_in_bytes_total", metrics.L("class", "stack"))
	backOut := r.SumInt("spritefs_vm_paged_out_bytes_total", metrics.L("class", "heap")) +
		r.SumInt("spritefs_vm_paged_out_bytes_total", metrics.L("class", "stack"))
	shR := r.SumInt("spritefs_client_shared_read_bytes_total")
	shW := r.SumInt("spritefs_client_shared_write_bytes_total")
	dirB := r.SumInt("spritefs_client_dir_read_bytes_total")
	total := fileRead + fileWrite + pagingCache + backIn + backOut + shR + shW + dirB
	var t Table5
	t.TotalBytes = total
	if total == 0 {
		return t
	}
	pct := func(n int64) float64 { return 100 * float64(n) / float64(total) }
	t.FileReadPct = pct(fileRead)
	t.FileWritePct = pct(fileWrite)
	t.PagingCacheableReadPct = pct(pagingCache)
	t.PagingBackingReadPct = pct(backIn)
	t.PagingBackingWritePct = pct(backOut)
	t.SharedReadPct = pct(shR)
	t.SharedWritePct = pct(shW)
	t.DirReadPct = pct(dirB)
	t.PagingPct = t.PagingCacheableReadPct + t.PagingBackingReadPct + t.PagingBackingWritePct
	t.UncacheablePct = t.PagingBackingReadPct + t.PagingBackingWritePct +
		t.SharedReadPct + t.SharedWritePct + t.DirReadPct
	return t
}

// Table6Col is one column of the cache-effectiveness table.
type Table6Col struct {
	ReadMissPct        float64 // cache read ops not satisfied in the cache
	ReadMissTrafficPct float64 // bytes fetched / bytes read by apps
	WritebackPct       float64 // bytes written back / bytes written
	WriteFetchPct      float64 // write ops needing a block fetch
	PagingReadMissPct  float64
	// Standard deviations of the per-machine values.
	SDReadMissPct, SDReadMissTrafficPct, SDWritebackPct float64
}

// Table6 is client cache effectiveness, for all traffic and for migrated
// processes only.
type Table6 struct {
	All      Table6Col
	Migrated Table6Col
	// BytesSavedByDeletePct: share of written bytes that died in the cache.
	BytesSavedByDeletePct float64
}

// Table6Report aggregates the cache counters across clients.
func (c *Cluster) Table6Report() Table6 { return c.Metrics().Table6Report() }

// Table6Report aggregates the cache counters across clients.
func (m *Metrics) Table6Report() Table6 {
	var all, mig fscache.OpStats
	var wbAll, savedAll, writtenAll int64
	var perMachineMiss, perMachineTraffic, perMachineWB stats.Welford
	for _, cl := range m.Clients {
		st := cl.Cache.Stats()
		addOps(&all, &st.All)
		addOps(&mig, &st.Migrated)
		wbAll += st.BytesWrittenBack
		savedAll += st.BytesSavedByDelete
		writtenAll += st.All.BytesWritten
		if st.All.ReadOps > 0 {
			perMachineMiss.Add(stats.Ratio(st.All.ReadMisses, st.All.ReadOps))
		}
		if st.All.BytesRead > 0 {
			perMachineTraffic.Add(stats.Ratio(st.All.BytesReadMissed, st.All.BytesRead))
		}
		if st.All.BytesWritten > 0 {
			perMachineWB.Add(stats.Ratio(st.BytesWrittenBack, st.All.BytesWritten))
		}
	}
	// File rows exclude paging, which gets its own row — as in the paper,
	// where "file read misses" and "paging read misses" are separate.
	col := func(o *fscache.OpStats) Table6Col {
		return Table6Col{
			ReadMissPct:        stats.Ratio(o.ReadMisses-o.PagingReadMiss, o.ReadOps-o.PagingReadOps),
			ReadMissTrafficPct: stats.Ratio(o.BytesReadMissed-o.PagingBytesMiss, o.BytesRead-o.PagingBytesRead),
			WriteFetchPct:      stats.Ratio(o.WriteFetches, o.WriteOps),
			PagingReadMissPct:  stats.Ratio(o.PagingReadMiss, o.PagingReadOps),
		}
	}
	t := Table6{All: col(&all), Migrated: col(&mig)}
	t.All.WritebackPct = stats.Ratio(wbAll, writtenAll)
	t.All.SDReadMissPct = perMachineMiss.Stddev()
	t.All.SDReadMissTrafficPct = perMachineTraffic.Stddev()
	t.All.SDWritebackPct = perMachineWB.Stddev()
	t.BytesSavedByDeletePct = stats.Ratio(savedAll, writtenAll)
	return t
}

func addOps(dst, src *fscache.OpStats) {
	dst.ReadOps += src.ReadOps
	dst.ReadMisses += src.ReadMisses
	dst.BytesRead += src.BytesRead
	dst.BytesReadMissed += src.BytesReadMissed
	dst.WriteOps += src.WriteOps
	dst.WriteFetches += src.WriteFetches
	dst.BytesWritten += src.BytesWritten
	dst.PagingReadOps += src.PagingReadOps
	dst.PagingReadMiss += src.PagingReadMiss
	dst.PagingBytesRead += src.PagingBytesRead
	dst.PagingBytesMiss += src.PagingBytesMiss
}

// Table7 is the client-to-server (network) traffic breakdown.
type Table7 struct {
	ClassPct       [netsim.NumClasses]float64
	PagingPct      float64
	SharedPct      float64
	ReadPct        float64 // server-to-client share of bytes
	WritePct       float64
	ReadWriteRatio float64 // non-paging read:write byte ratio
	TotalBytes     int64
}

// Table7Report reads the network accounting.
func (c *Cluster) Table7Report() Table7 { return c.Metrics().Table7Report() }

// Table7Report reads the network accounting as a projection of the
// registry's per-class spritefs_net families.
func (m *Metrics) Table7Report() Table7 {
	r := m.Registry()
	var total netsim.Traffic
	for cl := netsim.Class(0); cl < netsim.NumClasses; cl++ {
		sel := metrics.L("class", cl.String())
		total.Bytes[cl] = r.SumInt("spritefs_net_bytes_total", sel)
		total.Ops[cl] = r.SumInt("spritefs_net_ops_total", sel)
	}
	var t Table7
	t.TotalBytes = total.TotalBytes()
	if t.TotalBytes == 0 {
		return t
	}
	for cl := netsim.Class(0); cl < netsim.NumClasses; cl++ {
		t.ClassPct[cl] = 100 * float64(total.Bytes[cl]) / float64(t.TotalBytes)
	}
	t.PagingPct = t.ClassPct[netsim.PagingRead] + t.ClassPct[netsim.PagingWrite]
	t.SharedPct = t.ClassPct[netsim.SharedRead] + t.ClassPct[netsim.SharedWrite]
	t.ReadPct = 100 * float64(total.ReadBytes()) / float64(t.TotalBytes)
	t.WritePct = 100 - t.ReadPct
	nonPagingRead := total.Bytes[netsim.FileRead] + total.Bytes[netsim.SharedRead] + total.Bytes[netsim.DirRead]
	nonPagingWrite := total.Bytes[netsim.FileWrite] + total.Bytes[netsim.SharedWrite]
	if nonPagingWrite > 0 {
		t.ReadWriteRatio = float64(nonPagingRead) / float64(nonPagingWrite)
	}
	return t
}

// Table8 is cache block replacement.
type Table8 struct {
	FilePct   float64 // replaced to hold another file block
	VMPct     float64 // page handed to the VM system
	AvgAgeMin float64 // minutes unreferenced at replacement
}

// Table8Report aggregates replacement counters.
func (c *Cluster) Table8Report() Table8 { return c.Metrics().Table8Report() }

// Table8Report aggregates replacement counters.
func (m *Metrics) Table8Report() Table8 {
	var file, vmn int64
	var age stats.Welford
	for _, cl := range m.Clients {
		st := cl.Cache.Stats()
		file += st.ReplacedFile
		vmn += st.ReplacedVM
		age.Merge(st.ReplacementAge)
	}
	return Table8{
		FilePct:   stats.Ratio(file, file+vmn),
		VMPct:     stats.Ratio(vmn, file+vmn),
		AvgAgeMin: time.Duration(age.Mean()).Minutes(),
	}
}

// Table9 is dirty block cleaning: why blocks were written back and how
// long after their last write.
type Table9 struct {
	Pct    [fscache.NumCleanReasons]float64
	AgeSec [fscache.NumCleanReasons]float64
}

// Table9Report aggregates cleaning counters.
func (c *Cluster) Table9Report() Table9 { return c.Metrics().Table9Report() }

// Table9Report aggregates cleaning counters.
func (m *Metrics) Table9Report() Table9 {
	var counts [fscache.NumCleanReasons]int64
	var ages [fscache.NumCleanReasons]stats.Welford
	var total int64
	for _, cl := range m.Clients {
		st := cl.Cache.Stats()
		for r := fscache.CleanReason(0); r < fscache.NumCleanReasons; r++ {
			counts[r] += st.Cleaned[r]
			total += st.Cleaned[r]
			ages[r].Merge(st.CleanAge[r])
		}
	}
	var t Table9
	for r := fscache.CleanReason(0); r < fscache.NumCleanReasons; r++ {
		t.Pct[r] = stats.Ratio(counts[r], total)
		t.AgeSec[r] = time.Duration(ages[r].Mean()).Seconds()
	}
	return t
}

// ServerStorage summarizes the servers' cache and disk behavior — the
// instrumentation behind the paper's note that "the cache on the server
// would further reduce the ratio of read traffic seen by the server's
// disk" (Table 7's commentary).
type ServerStorage struct {
	ReadHitPct float64 // server-cache hit rate for client block fetches
	DiskReads  int64
	DiskWrites int64
	DiskBusy   time.Duration
}

// ServerStorageReport aggregates server storage counters.
func (c *Cluster) ServerStorageReport() ServerStorage { return c.Metrics().ServerStorageReport() }

// ServerStorageReport aggregates server storage counters as a projection
// of the registry's spritefs_server_store families.
func (m *Metrics) ServerStorageReport() ServerStorage {
	r := m.Registry()
	blocks := r.SumInt("spritefs_server_store_read_blocks_total")
	missBlocks := r.SumInt("spritefs_server_store_read_miss_blocks_total")
	return ServerStorage{
		ReadHitPct: stats.Ratio(blocks-missBlocks, blocks),
		DiskReads:  r.SumInt("spritefs_server_store_disk_reads_total"),
		DiskWrites: r.SumInt("spritefs_server_store_disk_writes_total"),
		DiskBusy:   r.SumSeconds("spritefs_server_store_disk_busy_seconds"),
	}
}

// LiveStale reports the stale reads actually served when the cluster runs
// under the weak polling consistency (client.ConsistencyPoll) — the live
// counterpart of the paper's Table 11 trace-driven estimate.
type LiveStale struct {
	StaleReads int64
	StaleBytes int64
	PollRPCs   int64
}

// LiveStaleReport sums the clients' stale-read counters.
func (c *Cluster) LiveStaleReport() LiveStale { return c.Metrics().LiveStaleReport() }

// LiveStaleReport sums the clients' stale-read counters from the registry.
func (m *Metrics) LiveStaleReport() LiveStale {
	r := m.Registry()
	return LiveStale{
		StaleReads: r.SumInt("spritefs_client_stale_reads_total"),
		StaleBytes: r.SumInt("spritefs_client_stale_bytes_total"),
		PollRPCs:   r.SumInt("spritefs_client_poll_rpcs_total"),
	}
}

// Recovery summarizes the fault-injection and crash-recovery study: what
// crashes destroyed (the paper's "at most 30 seconds of work" reliability
// claim, measured), the reopen storms restarted servers absorbed, and the
// network-level fault perturbations.
type Recovery struct {
	ServerCrashes    int64
	ClientCrashes    int64
	OpensLostInCrash int64 // open registrations discarded by server crashes
	// DirtyBytesLost counts un-synced bytes destroyed on both sides:
	// client delayed-write caches and server caches.
	DirtyBytesLost int64
	MaxDirtyAge    time.Duration // oldest lost dirty byte — bounded by the
	// writeback delay plus one cleaner period when the daemons are healthy.

	Recoveries      int64 // recovery protocol runs completed by clients
	RecoveryOpens   int64 // handle re-registrations served (reopen storm)
	RecoveryCWS     int64 // write-sharing re-detected during recovery
	ReplayedBytes   int64 // dirty bytes replayed to restarted servers
	RecoveryRetries int64 // backoff retries against down servers
	GaveUp          int64 // recovery attempts abandoned at the retry limit
	// MaxTimeToReconsistency is the worst crash-to-recovered interval.
	MaxTimeToReconsistency time.Duration

	// Network fault accounting (from the wire's hook counters).
	DroppedOps  int64
	Retransmits int64
	StalledOps  int64
	StallTime   time.Duration
}

// RecoveryReport aggregates the crash/recovery counters.
func (c *Cluster) RecoveryReport() Recovery { return c.Metrics().RecoveryReport() }

// RecoveryReport aggregates the crash/recovery counters as a projection of
// the registry's client-recovery, server-crash and network-fault families.
func (m *Metrics) RecoveryReport() Recovery {
	r := m.Registry()
	maxAge := r.MaxSeconds("spritefs_client_max_lost_dirty_age_seconds")
	if v := r.MaxSeconds("spritefs_server_store_max_lost_dirty_age_seconds"); v > maxAge {
		maxAge = v
	}
	return Recovery{
		ServerCrashes:    r.SumInt("spritefs_server_crashes_total"),
		ClientCrashes:    r.SumInt("spritefs_client_crashes_total"),
		OpensLostInCrash: r.SumInt("spritefs_server_opens_lost_in_crash_total"),
		DirtyBytesLost: r.SumInt("spritefs_client_lost_dirty_bytes_total") +
			r.SumInt("spritefs_server_store_lost_dirty_bytes_total"),
		MaxDirtyAge: maxAge,

		Recoveries:             r.SumInt("spritefs_client_recoveries_total"),
		RecoveryOpens:          r.SumInt("spritefs_server_recovery_opens_total"),
		RecoveryCWS:            r.SumInt("spritefs_server_recovery_cws_total"),
		ReplayedBytes:          r.SumInt("spritefs_client_replayed_bytes_total"),
		RecoveryRetries:        r.SumInt("spritefs_client_recovery_retries_total"),
		GaveUp:                 r.SumInt("spritefs_client_recovery_gave_up_total"),
		MaxTimeToReconsistency: r.MaxSeconds("spritefs_server_max_recovery_seconds"),

		DroppedOps:  r.SumInt("spritefs_net_fault_dropped_ops_total"),
		Retransmits: r.SumInt("spritefs_net_fault_retransmits_total"),
		StalledOps:  r.SumInt("spritefs_net_fault_stalled_ops_total"),
		StallTime:   r.SumSeconds("spritefs_net_fault_stall_seconds"),
	}
}

// Table10 is consistency action frequency, from the servers' counters.
type Table10 struct {
	CWSPct    float64
	RecallPct float64
	FileOpens int64
}

// Table10Report sums the servers' consistency counters.
func (c *Cluster) Table10Report() Table10 { return c.Metrics().Table10Report() }

// Table10Report sums the servers' consistency counters from the registry.
func (m *Metrics) Table10Report() Table10 {
	r := m.Registry()
	opens := r.SumInt("spritefs_server_file_opens_total")
	cws := r.SumInt("spritefs_server_cws_events_total")
	recalls := r.SumInt("spritefs_server_recalls_total")
	return Table10{
		CWSPct:    stats.Ratio(cws, opens),
		RecallPct: stats.Ratio(recalls, opens),
		FileOpens: opens,
	}
}
