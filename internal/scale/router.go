package scale

import (
	"fmt"
	"time"

	"spritefs/internal/sim"
)

// MsgKind tags a cross-shard message.
type MsgKind uint8

// Message kinds: a remote read request, a remote write request, and the
// reply completing either.
const (
	RemoteRead MsgKind = iota
	RemoteWrite
	RemoteReply
)

var msgKindNames = [...]string{"remote-read", "remote-write", "remote-reply"}

// String returns the kind name.
func (k MsgKind) String() string {
	if int(k) < len(msgKindNames) {
		return msgKindNames[k]
	}
	return fmt.Sprintf("msg(%d)", uint8(k))
}

// Message is one unit of cross-shard communication. Messages are created
// inside a shard's round, routed at the exchange, and delivered into the
// destination shard's simulator at Arrive. The (Arrive, From, Seq) triple
// totally orders deliveries, which is what makes the parallel executor's
// exchange deterministic.
type Message struct {
	Send   sim.Time // virtual time the source emitted it
	Arrive sim.Time // Send + link latency + payload transmission
	From   int      // source shard
	To     int      // destination shard
	Seq    uint64   // per-source sequence number (tie-break)

	Kind MsgKind
	// Op is the original operation kind a RemoteReply completes.
	Op MsgKind
	// Client is the originating client id within the source segment.
	Client int32
	// File is the placed file operated on (destination shard's id space).
	File uint64
	// Server is the destination server within the target shard.
	Server int16
	// Bytes is the logical operation size (bytes read or written).
	Bytes int64
	// Payload is what this particular message carries across the
	// backbone: requests carry control bytes (plus the data for writes),
	// replies carry the read data (or a control-sized ack).
	Payload int64
	// Issued is when the original request left its client, preserved in
	// the reply so the source shard can record end-to-end latency.
	Issued sim.Time
}

// ctrlBytes is the backbone cost of a request/ack frame without data.
const ctrlBytes = 128

// LinkStats accounts one directed inter-segment link.
type LinkStats struct {
	Msgs  int64
	Bytes int64
}

// Router is the inter-segment backbone: it prices every cross-shard
// message and accounts per-link traffic. Each directed link has its own
// store-and-forward latency (uniform RouterConfig.Latency unless
// RouterConfig.LinkLatency differentiates them), which is also the
// channel-clock executor's per-link lookahead. Routing happens only at
// round exchanges on the coordinator goroutine, so Router needs no
// locking.
type Router struct {
	cfg   RouterConfig
	lat   [][]time.Duration // [from][to] store-and-forward latency
	links [][]LinkStats     // [from][to]

	msgs  int64
	bytes int64
	busy  time.Duration
}

// NewRouter returns a router joining n segments.
func NewRouter(cfg RouterConfig, n int) *Router {
	links := make([][]LinkStats, n)
	lat := make([][]time.Duration, n)
	for i := range links {
		links[i] = make([]LinkStats, n)
		lat[i] = make([]time.Duration, n)
		for j := range lat[i] {
			l := cfg.Latency
			if cfg.LinkLatency != nil && i != j {
				l = cfg.LinkLatency(i, j)
			}
			lat[i][j] = l
		}
	}
	return &Router{cfg: cfg, lat: lat, links: links}
}

// MinLatency is the directed link's store-and-forward latency: the floor
// on how long a message from one shard takes to reach another, and so the
// executor's per-link lookahead. Payload transmission only adds to it.
func (r *Router) MinLatency(from, to int) time.Duration { return r.lat[from][to] }

// Route prices m, stamps its arrival time, and accounts the transfer.
func (r *Router) Route(m *Message) {
	if m.Payload < 0 {
		panic(fmt.Sprintf("scale: negative payload %d", m.Payload))
	}
	xmit := time.Duration(float64(m.Payload) / r.cfg.BandwidthBps * float64(time.Second))
	m.Arrive = m.Send + r.lat[m.From][m.To] + xmit
	r.links[m.From][m.To].Msgs++
	r.links[m.From][m.To].Bytes += m.Payload
	r.msgs++
	r.bytes += m.Payload
	r.busy += xmit
}

// Msgs returns the total messages routed.
func (r *Router) Msgs() int64 { return r.msgs }

// Bytes returns the total payload bytes routed.
func (r *Router) Bytes() int64 { return r.bytes }

// Busy returns cumulative backbone transmission time; against elapsed
// virtual time it gives backbone utilization.
func (r *Router) Busy() time.Duration { return r.busy }

// Link returns a copy of one directed link's accounting.
func (r *Router) Link(from, to int) LinkStats { return r.links[from][to] }
