package workload

import (
	"time"
)

// Host is the slice of the client kernel interface the workload drives.
// *client.Client satisfies it; the indirection keeps the workload free of
// any dependency on the cluster machinery so it can be unit-tested against
// a fake host.
type Host interface {
	ID() int32
	Create(user, proc int32, dir, migrated bool) uint64
	Open(user, proc int32, file uint64, read, write, migrated bool) (uint64, time.Duration, error)
	Read(handle uint64, n int64) (int64, time.Duration)
	Write(handle uint64, n int64) time.Duration
	Seek(handle uint64, pos int64) time.Duration
	Fsync(handle uint64) time.Duration
	Close(handle uint64) (time.Duration, error)
	Delete(user, proc int32, file uint64, migrated bool)
	Truncate(user, proc int32, file uint64, migrated bool)
	ExecProcess(pid int32, execFile uint64, codePages, dataPages, stackPages int, migrated bool)
	TouchProcess(pid int32, growHeap int)
	ExitProcess(pid int32)
	EvictMigrated(pid int32)
	// FileSize returns the current size of a file (0 if unknown); the
	// engine uses it to resolve append and random seek positions.
	FileSize(file uint64) int64
}

// fileRef names a file either statically (a pre-existing file id) or by a
// runtime slot (a file the program itself creates).
type fileRef struct {
	id   uint64
	slot int
}

func staticFile(id uint64) fileRef { return fileRef{id: id, slot: -1} }
func slotFile(s int) fileRef       { return fileRef{slot: s} }

type opKind uint8

const (
	opExec opKind = iota
	opOpen
	opRead
	opWrite
	opSeek
	opFsync
	opClose
	opCreate
	opDelete
	opTruncate
	opThink
	opTouch
	opExit
	// opDeletePrev deletes the output file registered by the user's
	// previous run of the same application (build outputs are replaced by
	// the next build, not removed by their producer — this is what gives
	// deleted bytes their minutes-long lifetimes in Figure 4).
	opDeletePrev
	// opRegister records a created file as the run's output for the next
	// run's opDeletePrev.
	opRegister
)

// op is one step of an application program. Programs are generated up
// front (sizes and sequences drawn from the parameter distributions) and
// interpreted one event at a time by the engine, so every kernel call
// lands at a distinct virtual time.
type op struct {
	kind   opKind
	slot   int // handle slot
	file   fileRef
	read   bool
	write  bool
	dir    bool
	bytes  int64
	offset int64
	dur    time.Duration
	codeP  int
	dataP  int
	stackP int
	grow   int
}

// progBuilder assembles op programs.
type progBuilder struct {
	ops       []op
	handles   int
	fileSlots int
	chunk     int64
}

func newBuilder(chunk int64) *progBuilder {
	if chunk <= 0 {
		chunk = 256 * 1024
	}
	return &progBuilder{chunk: chunk}
}

func (b *progBuilder) exec(bin Binary, stackP int) *progBuilder {
	b.ops = append(b.ops, op{kind: opExec, file: staticFile(bin.File), codeP: bin.CodePages, dataP: bin.DataPages, stackP: stackP})
	return b
}

func (b *progBuilder) open(f fileRef, read, write bool) int {
	s := b.handles
	b.handles++
	b.ops = append(b.ops, op{kind: opOpen, slot: s, file: f, read: read, write: write})
	return s
}

// readSeq reads total bytes sequentially in chunk-sized kernel calls.
func (b *progBuilder) readSeq(slot int, total int64) *progBuilder {
	for total > 0 {
		n := total
		if n > b.chunk {
			n = b.chunk
		}
		b.ops = append(b.ops, op{kind: opRead, slot: slot, bytes: n})
		total -= n
	}
	return b
}

// readAll reads from the current position to end of file, chunked at
// runtime (the file's size is not known at generation time).
func (b *progBuilder) readAll(slot int) *progBuilder {
	b.ops = append(b.ops, op{kind: opRead, slot: slot, bytes: readToEOF})
	return b
}

// Sentinel byte counts and seek positions resolved by the engine at
// runtime.
const (
	readToEOF  = -1 // opRead: read chunk-by-chunk until EOF
	seekEnd    = -1 // opSeek: position at end of file (append)
	seekRandom = -2 // opSeek: uniform random position within the file
)

// writeSeq writes total bytes sequentially in chunk-sized kernel calls.
func (b *progBuilder) writeSeq(slot int, total int64) *progBuilder {
	for total > 0 {
		n := total
		if n > b.chunk {
			n = b.chunk
		}
		b.ops = append(b.ops, op{kind: opWrite, slot: slot, bytes: n})
		total -= n
	}
	return b
}

func (b *progBuilder) read(slot int, n int64) *progBuilder {
	b.ops = append(b.ops, op{kind: opRead, slot: slot, bytes: n})
	return b
}

func (b *progBuilder) write(slot int, n int64) *progBuilder {
	b.ops = append(b.ops, op{kind: opWrite, slot: slot, bytes: n})
	return b
}

func (b *progBuilder) seek(slot int, pos int64) *progBuilder {
	b.ops = append(b.ops, op{kind: opSeek, slot: slot, offset: pos})
	return b
}

func (b *progBuilder) fsync(slot int) *progBuilder {
	b.ops = append(b.ops, op{kind: opFsync, slot: slot})
	return b
}

func (b *progBuilder) close(slot int) *progBuilder {
	b.ops = append(b.ops, op{kind: opClose, slot: slot})
	return b
}

func (b *progBuilder) create(dir bool) int {
	s := b.fileSlots
	b.fileSlots++
	b.ops = append(b.ops, op{kind: opCreate, slot: s, dir: dir})
	return s
}

func (b *progBuilder) deleteFile(f fileRef) *progBuilder {
	b.ops = append(b.ops, op{kind: opDelete, file: f})
	return b
}

func (b *progBuilder) truncate(f fileRef) *progBuilder {
	b.ops = append(b.ops, op{kind: opTruncate, file: f})
	return b
}

func (b *progBuilder) deletePrev() *progBuilder {
	b.ops = append(b.ops, op{kind: opDeletePrev})
	return b
}

func (b *progBuilder) register(fileSlot int) *progBuilder {
	b.ops = append(b.ops, op{kind: opRegister, slot: fileSlot})
	return b
}

func (b *progBuilder) think(d time.Duration) *progBuilder {
	if d > 0 {
		b.ops = append(b.ops, op{kind: opThink, dur: d})
	}
	return b
}

func (b *progBuilder) touch(growHeap int) *progBuilder {
	b.ops = append(b.ops, op{kind: opTouch, grow: growHeap})
	return b
}

func (b *progBuilder) exit() []op {
	b.ops = append(b.ops, op{kind: opExit})
	return b.ops
}

// program is a running application instance.
type program struct {
	user     int32
	pid      int32
	app      AppKind
	host     Host
	rate     float64 // processing rate, bytes/second
	migrated bool

	// Image parameters, kept for re-exec after migration eviction.
	execFile             uint64
	codeP, dataP, stackP int

	ops     []op
	idx     int
	handles []uint64
	files   []uint64
	aborted bool
	done    func()
	// stepFn is the engine-step closure for this program, allocated once
	// when the program object is created and reused across recycles so
	// rescheduling a step allocates nothing.
	stepFn func()
}
