// Determinism tests for the synthetic community: the whole reproduction
// (golden experiment outputs, replay worker invariance, the scale-out
// executor's byte-identity guarantee) rests on equal seeds producing
// identical op streams. These tests pin that down at the workload layer:
// same seed → same trace, different seeds → different traces, and a
// shard's stream depending only on (base seed, shard index), not on the
// shard count's other members. They run under -race in `make race`, so a
// latent data race in the generators would surface here.
package workload_test

import (
	"fmt"
	"testing"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/trace"
	"spritefs/internal/workload"
)

// runTrace runs a small community and returns its collected trace.
func runTrace(t *testing.T, p workload.Params, hours float64) []trace.Record {
	t.Helper()
	cfg := cluster.DefaultConfig(p)
	cfg.SamplePeriod = 0
	cfg.NumServers = 2
	c := cluster.New(cfg)
	c.Run(time.Duration(hours * float64(time.Hour)))
	return c.Trace()
}

func smallParams(seed int64) workload.Params {
	p := workload.Default(seed)
	p.NumClients = 6
	p.DailyUsers = 4
	p.OccasionalUsers = 4
	p.EmitBackupNoise = false
	return p
}

// TestEqualSeedsIdenticalStreams: two runs with the same seed produce the
// identical op stream, record for record.
func TestEqualSeedsIdenticalStreams(t *testing.T) {
	a := runTrace(t, smallParams(42), 1)
	b := runTrace(t, smallParams(42), 1)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
	// A different seed must actually change the stream (guards against a
	// generator that ignores its seed and trivially passes the test above).
	c := runTrace(t, smallParams(43), 1)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical op streams")
	}
}

// TestSplitStreamInvariance: shard i's op stream is a pure function of
// (base params, shard index) — running shard 0's community alone yields
// the same stream whether the split was into 2 or into 3 shards of a
// larger base, and repeat runs of the same shard are identical. This is
// the property the scale-out executor's byte-identity rests on.
func TestSplitStreamInvariance(t *testing.T) {
	base := smallParams(7)
	base.NumClients = 12
	base.DailyUsers = 8
	base.OccasionalUsers = 8

	p0 := workload.Split(base, 4, 0)
	again := workload.Split(base, 4, 0)
	if p0 != again {
		t.Fatalf("Split not deterministic: %+v vs %+v", p0, again)
	}
	a := runTrace(t, p0, 1)
	b := runTrace(t, workload.Split(base, 4, 0), 1)
	if len(a) != len(b) {
		t.Fatalf("shard-0 trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard-0 record %d differs across runs", i)
		}
	}

	// Shares sum exactly to the base population.
	var clients, daily, occ int
	for i := 0; i < 4; i++ {
		pi := workload.Split(base, 4, i)
		clients += pi.NumClients
		daily += pi.DailyUsers
		occ += pi.OccasionalUsers
	}
	if clients != base.NumClients || daily != base.DailyUsers || occ != base.OccasionalUsers {
		t.Fatalf("split shares do not sum: clients %d/%d daily %d/%d occasional %d/%d",
			clients, base.NumClients, daily, base.DailyUsers, occ, base.OccasionalUsers)
	}

	// Distinct shards get distinct seeds (independent streams).
	if workload.Split(base, 4, 1).Seed == workload.Split(base, 4, 2).Seed {
		t.Fatal("distinct shards share a seed")
	}
}

// TestSplitSiteInvariance pins the site-major level of hierarchical
// community splitting: shares sum exactly, the degenerate single-site
// split is the identity, and composed (site, segment) seed pairs are
// globally unique.
func TestSplitSiteInvariance(t *testing.T) {
	base := smallParams(11)
	base.NumClients = 24
	base.DailyUsers = 15
	base.OccasionalUsers = 8

	if got := workload.SplitSite(base, 1, 0); got != base {
		t.Fatalf("SplitSite(p, 1, 0) must be identity, got %+v", got)
	}

	var clients, daily, occ, big int
	for s := 0; s < 3; s++ {
		ps := workload.SplitSite(base, 3, s)
		clients += ps.NumClients
		daily += ps.DailyUsers
		occ += ps.OccasionalUsers
		big += ps.BigSimUsers
	}
	if clients != base.NumClients || daily != base.DailyUsers || occ != base.OccasionalUsers || big != base.BigSimUsers {
		t.Fatalf("site shares do not sum: clients %d/%d daily %d/%d occasional %d/%d big %d/%d",
			clients, base.NumClients, daily, base.DailyUsers, occ, base.OccasionalUsers, big, base.BigSimUsers)
	}

	// Every (site, segment) pair in a 3×2 grid gets a distinct seed: the
	// site stride and the segment stride must not collide anywhere on the
	// grid (they are different odd constants, so sums of small multiples
	// cannot coincide).
	seen := map[int64]string{}
	for s := 0; s < 3; s++ {
		for j := 0; j < 2; j++ {
			p := workload.Split(workload.SplitSite(base, 3, s), 2, j)
			key := fmt.Sprintf("site=%d seg=%d", s, j)
			if prev, dup := seen[p.Seed]; dup {
				t.Fatalf("seed collision: %s and %s both got seed %d", prev, key, p.Seed)
			}
			seen[p.Seed] = key
		}
	}
}

// TestScaleCommunity pins the population arithmetic the scale study uses.
func TestScaleCommunity(t *testing.T) {
	p := workload.Default(1)
	g := workload.ScaleCommunity(p, 25)
	if g.NumClients != 1000 || g.DailyUsers != 750 || g.OccasionalUsers != 1000 {
		t.Fatalf("25x community = %d/%d/%d, want 1000/750/1000",
			g.NumClients, g.DailyUsers, g.OccasionalUsers)
	}
	if got := workload.ScaleCommunity(p, 1); got != p {
		t.Fatal("factor 1 must be the identity")
	}
	if got := workload.ScaleCommunity(p, 0); got != p {
		t.Fatal("factor 0 must be the identity")
	}
	half := workload.ScaleCommunity(p, 0.5)
	if half.NumClients != 20 {
		t.Fatalf("0.5x clients = %d, want 20", half.NumClients)
	}
}
