package fscache

import (
	"fmt"
	"slices"
	"time"

	"spritefs/internal/stats"
)

// BlockSize is the cache block size: 4 Kbytes, as in Sprite.
const BlockSize = 4096

// CleanReason says why a dirty block was written back (Table 9's rows),
// plus the internal eviction case the paper notes "almost never" happens.
type CleanReason uint8

// Cleaning reasons.
const (
	CleanDelay   CleanReason = iota // 30-second delayed-write expiry
	CleanFsync                      // application requested write-through
	CleanRecall                     // server recalled dirty data for another client
	CleanVM                         // page handed to the virtual memory system
	CleanEvict                      // LRU evicted a dirty block (rare)
	CleanRecover                    // dirty data replayed to a restarted server
	NumCleanReasons
)

var cleanNames = [NumCleanReasons]string{"delay", "fsync", "recall", "vm", "evict", "recover"}

// String returns the reason name.
func (r CleanReason) String() string {
	if r < NumCleanReasons {
		return cleanNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// Attr describes the context of a cache access for the per-category
// counters: paging accesses are VM traffic routed through the file cache
// (code and initialized-data pages), and migrated accesses are performed
// by migrated processes (Table 6's right column).
type Attr struct {
	Paging   bool
	Migrated bool
}

// Writeback describes one dirty block the caller must ship to the server.
type Writeback struct {
	File   uint64
	Block  int64 // block index within the file
	Bytes  int64 // bytes to transfer (block start through high-water mark)
	Reason CleanReason
	Age    time.Duration // time since the block was last written
}

// ReadResult reports the server traffic a read implies. The MissIdx and
// Evicted slices alias per-cache scratch buffers: they are valid until
// the next Read or Write on the same cache and must be consumed (or
// copied) before then.
type ReadResult struct {
	MissBytes  int64   // bytes that must be fetched from the server
	MissBlocks int     // number of blocks fetched
	MissIdx    []int64 // block indexes fetched (drives the server cache model)
	Evicted    []Writeback
}

// WriteResult reports the server traffic a write implies. The FetchIdx
// and Evicted slices alias per-cache scratch buffers, like ReadResult's.
type WriteResult struct {
	FetchBytes  int64 // write-fetch bytes (partial writes of non-resident blocks)
	FetchBlocks int
	FetchIdx    []int64 // block indexes write-fetched
	Evicted     []Writeback
}

// OpStats is the per-category counter block. One instance counts all
// traffic; a second counts the migrated-process subset.
type OpStats struct {
	ReadOps         int64 // block-granularity cache read operations
	ReadMisses      int64
	BytesRead       int64 // bytes requested by applications
	BytesReadMissed int64 // bytes fetched from the server to satisfy reads
	WriteOps        int64
	WriteFetches    int64
	BytesWritten    int64 // bytes written into the cache by applications
	PagingReadOps   int64
	PagingReadMiss  int64
	PagingBytesRead int64 // portion of BytesRead that was paging traffic
	PagingBytesMiss int64 // portion of BytesReadMissed that was paging
}

// Stats is a snapshot of all cache counters.
type Stats struct {
	All      OpStats
	Migrated OpStats

	BytesWrittenBack   int64 // dirty bytes shipped to the server
	BytesSavedByDelete int64 // dirty bytes discarded before writeback

	ReplacedFile   int64         // LRU victims replaced by other file data
	ReplacedVM     int64         // blocks handed to the virtual memory system
	ReplacementAge stats.Welford // time since last reference, at replacement

	Cleaned  [NumCleanReasons]int64
	CleanAge [NumCleanReasons]stats.Welford // time since last write, at cleaning

	SizeBytes  int64
	DirtyBytes int64
}

// Blocks live by value in a free-list arena (Cache.blocks) and are
// referred to by int32 arena slots everywhere: the LRU list is intrusive
// (prev/next slot links, front = most recent) and the per-file index maps
// block index -> slot. Steady-state Read/Write therefore performs zero
// allocations: a miss pops a recycled slot, an eviction pushes one back.
type block struct {
	file  uint64
	index int64
	prev  int32 // LRU link toward the front (more recent)
	next  int32 // LRU link toward the back; doubles as the free-list link

	dirty   bool
	dirtyAt time.Duration // when the block first became dirty
	lastWr  time.Duration // when the block was last written
	lastRef time.Duration // when the block was last referenced
	validHi int64         // valid bytes from block start (watermark)
	dirtyHi int64         // dirty bytes from block start (writeback size)
}

// fiDenseMax bounds the dense per-file index: files up to 32k blocks
// (128 MB) index a slice directly; rarer huge offsets fall back to a map.
const fiDenseMax = 1 << 15

// fileIndex maps one file's block indices to arena slots.
type fileIndex struct {
	dense  []int32         // slot+1 per block index, 0 = absent
	sparse map[int64]int32 // slots for block indices >= fiDenseMax
	n      int             // resident blocks of this file
	dirty  int             // dirty resident blocks of this file
}

// get returns the arena slot holding block idx, or -1.
func (fi *fileIndex) get(idx int64) int32 {
	if idx < int64(len(fi.dense)) {
		return fi.dense[idx] - 1
	}
	if idx < fiDenseMax {
		return -1
	}
	s, ok := fi.sparse[idx]
	if !ok {
		return -1
	}
	return s
}

// set records block idx at arena slot s. idx must be absent.
func (fi *fileIndex) set(idx int64, s int32) {
	if idx < fiDenseMax {
		if idx >= int64(len(fi.dense)) {
			fi.dense = append(fi.dense, make([]int32, idx+1-int64(len(fi.dense)))...)
		}
		fi.dense[idx] = s + 1
	} else {
		if fi.sparse == nil {
			fi.sparse = make(map[int64]int32)
		}
		fi.sparse[idx] = s
	}
	fi.n++
}

// del removes block idx from the index. idx must be present.
func (fi *fileIndex) del(idx int64) {
	if idx < fiDenseMax {
		fi.dense[idx] = 0
	} else {
		delete(fi.sparse, idx)
	}
	fi.n--
}

// appendIndices appends the file's resident block indices to buf in
// ascending order. The dense part is already ordered; sparse indices are
// all larger, so sorting the appended tail suffices.
func (fi *fileIndex) appendIndices(buf []int64) []int64 {
	for idx, v := range fi.dense {
		if v != 0 {
			buf = append(buf, int64(idx))
		}
	}
	if len(fi.sparse) > 0 {
		start := len(buf)
		for idx := range fi.sparse {
			buf = append(buf, idx)
		}
		slices.Sort(buf[start:])
	}
	return buf
}

// Cache is one client's (or server's) block cache.
type Cache struct {
	capacity   int     // blocks
	blocks     []block // arena; blocks referenced by slot index
	freeB      int32   // free-slot list head through next, -1 when empty
	lruFront   int32   // most recently used, -1 when empty
	lruBack    int32   // least recently used
	files      map[uint64]*fileIndex
	fiFree     []*fileIndex // recycled (emptied) file indexes
	nblocks    int
	ndirty     int
	dirtyBytes int64
	wbDelay    time.Duration // 0 = default WritebackDelay
	prefetch   int           // extra sequential blocks fetched per miss

	// dirtyFiles holds the id of every file with at least one dirty
	// resident block, maintained incrementally at the dirty/clean
	// transitions. The cleaner sweep iterates this set instead of scanning
	// every resident file, making sweep cost proportional to the dirty
	// population rather than the cache population.
	dirtyFiles map[uint64]struct{}

	// Reusable result buffers for the hot Read/Write paths. The slices in
	// a returned ReadResult/WriteResult alias these and are valid until
	// the next Read or Write on this cache.
	idxScratch []int64
	wbScratch  []Writeback

	// Reusable buffers for the cleaner-family paths. The slice returned by
	// Clean/Fsync/Recall/RecoverFlush aliases cleanScratch and is valid
	// until the next such call on this cache; every caller consumes (or
	// ships) the batch before triggering another flush, which is what keeps
	// steady-state sweeps allocation-free.
	dirtyIDScratch []uint64
	cleanIdxScr    []int64
	cleanScratch   []Writeback

	st Stats
}

// SetPrefetch makes every read miss also fetch up to n following blocks
// (the prefetch ablation — the paper argues prefetching cannot reduce
// server traffic, only latency, and this knob lets the benchmark verify
// that claim). Prefetched blocks do not count as read operations.
func (c *Cache) SetPrefetch(n int) {
	if n < 0 {
		n = 0
	}
	c.prefetch = n
}

// New returns a cache bounded at capacityBlocks blocks. Capacity must be
// positive.
func New(capacityBlocks int) *Cache {
	if capacityBlocks <= 0 {
		panic("fscache: non-positive capacity")
	}
	return &Cache{
		capacity:   capacityBlocks,
		freeB:      -1,
		lruFront:   -1,
		lruBack:    -1,
		files:      make(map[uint64]*fileIndex),
		dirtyFiles: make(map[uint64]struct{}),
	}
}

// slot returns the arena slot of the given block, or -1 if not resident.
func (c *Cache) slot(file uint64, index int64) int32 {
	fi := c.files[file]
	if fi == nil {
		return -1
	}
	return fi.get(index)
}

// allocBlock pops a recycled arena slot (or grows the arena).
func (c *Cache) allocBlock() int32 {
	s := c.freeB
	if s >= 0 {
		c.freeB = c.blocks[s].next
	} else {
		c.blocks = append(c.blocks, block{})
		s = int32(len(c.blocks) - 1)
	}
	return s
}

// lruPushFront links slot s at the most-recent end.
func (c *Cache) lruPushFront(s int32) {
	b := &c.blocks[s]
	b.prev = -1
	b.next = c.lruFront
	if c.lruFront >= 0 {
		c.blocks[c.lruFront].prev = s
	}
	c.lruFront = s
	if c.lruBack < 0 {
		c.lruBack = s
	}
}

// lruUnlink removes slot s from the LRU list.
func (c *Cache) lruUnlink(s int32) {
	b := &c.blocks[s]
	if b.prev >= 0 {
		c.blocks[b.prev].next = b.next
	} else {
		c.lruFront = b.next
	}
	if b.next >= 0 {
		c.blocks[b.next].prev = b.prev
	} else {
		c.lruBack = b.prev
	}
}

// Capacity returns the current capacity in blocks.
func (c *Cache) Capacity() int { return c.capacity }

// NumBlocks returns the number of resident blocks.
func (c *Cache) NumBlocks() int { return c.nblocks }

// SizeBytes returns the resident size in bytes.
func (c *Cache) SizeBytes() int64 { return int64(c.nblocks) * BlockSize }

// DirtyBytes returns the number of dirty bytes awaiting writeback.
func (c *Cache) DirtyBytes() int64 { return c.dirtyBytes }

// Stats returns a snapshot of all counters.
func (c *Cache) Stats() Stats {
	s := c.st
	s.SizeBytes = c.SizeBytes()
	s.DirtyBytes = c.dirtyBytes
	return s
}

// Contains reports whether the given block of file is resident.
func (c *Cache) Contains(file uint64, index int64) bool {
	return c.slot(file, index) >= 0
}

func (c *Cache) touch(s int32, now time.Duration) {
	c.blocks[s].lastRef = now
	if c.lruFront != s {
		c.lruUnlink(s)
		c.lruPushFront(s)
	}
}

// insert adds a new resident block and returns its arena slot. The slot
// may be invalidated by later inserts (the arena can move); callers must
// not hold *block pointers across inserts.
func (c *Cache) insert(file uint64, index int64, now time.Duration) int32 {
	fi := c.files[file]
	if fi == nil {
		if n := len(c.fiFree); n > 0 {
			// Recycled indexes were emptied before release, so the dense
			// slice is all zeros (= all absent) at whatever length it
			// reached; it can be reused as-is.
			fi = c.fiFree[n-1]
			c.fiFree = c.fiFree[:n-1]
		} else {
			fi = &fileIndex{}
		}
		c.files[file] = fi
	}
	s := c.allocBlock()
	c.blocks[s] = block{file: file, index: index, lastRef: now}
	c.lruPushFront(s)
	fi.set(index, s)
	c.nblocks++
	return s
}

// remove unlinks the block at slot s from all structures and recycles the
// slot. Dirty accounting is adjusted for dirty blocks.
func (c *Cache) remove(s int32) {
	b := &c.blocks[s]
	c.lruUnlink(s)
	fi := c.files[b.file]
	fi.del(b.index)
	if b.dirty {
		c.ndirty--
		c.dirtyBytes -= b.dirtyHi
		c.noteCleaned(fi, b.file)
	}
	if fi.n == 0 {
		delete(c.files, b.file)
		c.fiFree = append(c.fiFree, fi)
	}
	c.nblocks--
	b.next = c.freeB
	c.freeB = s
}

// noteDirtied records a clean->dirty block transition on file, keeping the
// dirty-file set in step.
func (c *Cache) noteDirtied(file uint64) {
	fi := c.files[file]
	fi.dirty++
	if fi.dirty == 1 {
		c.dirtyFiles[file] = struct{}{}
	}
}

// noteCleaned records a dirty->clean block transition on fi (file's index).
func (c *Cache) noteCleaned(fi *fileIndex, file uint64) {
	fi.dirty--
	if fi.dirty == 0 {
		delete(c.dirtyFiles, file)
	}
}

// cleanScanDepth bounds how far from the LRU tail the replacement scan
// looks for a clean victim before giving up and evicting a dirty block.
const cleanScanDepth = 512

// evictOne removes the least-recently-used block to make room, returning a
// writeback if it was dirty. Clean blocks near the LRU tail are preferred
// — Sprite's cleaner normally retires dirty data long before it reaches
// the tail, so dirty evictions are the rare forced case the paper notes
// ("usually only clean blocks are replaced"). vmTake marks the eviction as
// a page handoff to the VM system rather than replacement by file data.
func (c *Cache) evictOne(now time.Duration, vmTake bool) (Writeback, bool) {
	s := c.lruBack
	if s < 0 {
		return Writeback{}, false
	}
	for cand, depth := s, 0; cand >= 0 && depth < cleanScanDepth; cand, depth = c.blocks[cand].prev, depth+1 {
		if !c.blocks[cand].dirty {
			s = cand
			break
		}
	}
	b := &c.blocks[s]
	c.st.ReplacementAge.Add(float64(now - b.lastRef))
	if vmTake {
		c.st.ReplacedVM++
	} else {
		c.st.ReplacedFile++
	}
	var wb Writeback
	dirty := b.dirty
	if dirty {
		reason := CleanEvict
		if vmTake {
			reason = CleanVM
		}
		wb = c.makeWriteback(b, reason, now)
	}
	c.remove(s)
	return wb, dirty
}

func (c *Cache) makeWriteback(b *block, reason CleanReason, now time.Duration) Writeback {
	c.st.Cleaned[reason]++
	c.st.CleanAge[reason].Add(float64(now - b.lastWr))
	c.st.BytesWrittenBack += b.dirtyHi
	return Writeback{File: b.file, Block: b.index, Bytes: b.dirtyHi, Reason: reason, Age: now - b.lastWr}
}

// ensureRoom evicts until a new block can be inserted, appending any dirty
// writebacks to out.
func (c *Cache) ensureRoom(now time.Duration, out *[]Writeback) {
	for c.nblocks >= c.capacity {
		wb, dirty := c.evictOne(now, false)
		if dirty {
			*out = append(*out, wb)
		}
		if c.lruBack < 0 && c.nblocks >= c.capacity {
			return // capacity zero-ish; nothing more to do
		}
	}
}

// blockSpan returns the first and last block indices touched by
// [offset, offset+length).
func blockSpan(offset, length int64) (first, last int64) {
	first = offset / BlockSize
	last = (offset + length - 1) / BlockSize
	return
}

// Read performs a cache read of [offset, offset+length) of file, whose
// current size is fileSize bytes. Missing blocks are fetched (the returned
// MissBytes must be transferred from the server) and installed. Reads
// beyond fileSize are a programming error and panic; the client layer
// clamps application reads to the file size first.
func (c *Cache) Read(file uint64, offset, length, fileSize int64, attr Attr, now time.Duration) ReadResult {
	var res ReadResult
	if length <= 0 {
		return res
	}
	if offset < 0 || offset+length > fileSize {
		panic(fmt.Sprintf("fscache: read [%d,%d) beyond size %d", offset, offset+length, fileSize))
	}
	res.MissIdx = c.idxScratch[:0]
	res.Evicted = c.wbScratch[:0]
	first, last := blockSpan(offset, length)
	for idx := first; idx <= last; idx++ {
		c.countRead(attr)
		s := c.slot(file, idx)
		if s >= 0 && c.blockCovers(&c.blocks[s], idx, offset, length) {
			c.touch(s, now)
			continue
		}
		// Miss: fetch the valid portion of the block from the server.
		c.countReadMiss(attr)
		blockStart := idx * BlockSize
		validEnd := fileSize - blockStart
		if validEnd > BlockSize {
			validEnd = BlockSize
		}
		if s < 0 {
			c.ensureRoom(now, &res.Evicted)
			s = c.insert(file, idx, now)
		} else {
			c.touch(s, now)
		}
		b := &c.blocks[s]
		fetch := validEnd - b.validHi
		if fetch < 0 {
			fetch = 0
		}
		// A partially valid block is refreshed in full for simplicity;
		// fetching the tail only is what Sprite did and what we model.
		if b.validHi < validEnd {
			b.validHi = validEnd
		}
		res.MissBytes += fetch
		res.MissBlocks++
		res.MissIdx = append(res.MissIdx, idx)
		// Sequential prefetch (ablation): pull the following blocks too.
		for p := int64(1); p <= int64(c.prefetch); p++ {
			pi := idx + p
			if pi*BlockSize >= fileSize || c.slot(file, pi) >= 0 {
				break
			}
			c.ensureRoom(now, &res.Evicted)
			ps := c.insert(file, pi, now)
			end := fileSize - pi*BlockSize
			if end > BlockSize {
				end = BlockSize
			}
			c.blocks[ps].validHi = end
			res.MissBytes += end
			res.MissBlocks++
			res.MissIdx = append(res.MissIdx, pi)
		}
	}
	c.addBytesRead(attr, length)
	c.idxScratch = res.MissIdx[:0]
	c.wbScratch = res.Evicted[:0]
	return res
}

// blockCovers reports whether resident block b holds all bytes of the
// request that fall inside block idx.
func (c *Cache) blockCovers(b *block, idx, offset, length int64) bool {
	blockStart := idx * BlockSize
	reqEnd := offset + length - blockStart
	if reqEnd > BlockSize {
		reqEnd = BlockSize
	}
	return b.validHi >= reqEnd
}

// Write performs a cache write of [offset, offset+length) of file, whose
// size before the write is fileSizeBefore. A partial write to a
// non-resident block that already exists on the server requires a write
// fetch (the returned FetchBytes). Blocks become dirty; the 30-second
// delayed-write clock starts at the first dirtying write.
func (c *Cache) Write(file uint64, offset, length, fileSizeBefore int64, attr Attr, now time.Duration) WriteResult {
	var res WriteResult
	if length <= 0 {
		return res
	}
	if offset < 0 {
		panic("fscache: negative write offset")
	}
	res.FetchIdx = c.idxScratch[:0]
	res.Evicted = c.wbScratch[:0]
	first, last := blockSpan(offset, length)
	for idx := first; idx <= last; idx++ {
		c.st.All.WriteOps++
		if attr.Migrated {
			c.st.Migrated.WriteOps++
		}
		blockStart := idx * BlockSize
		// Portion of the request inside this block.
		lo := offset - blockStart
		if lo < 0 {
			lo = 0
		}
		hi := offset + length - blockStart
		if hi > BlockSize {
			hi = BlockSize
		}
		s := c.slot(file, idx)
		partial := lo > 0 || (hi < BlockSize && blockStart+hi < fileSizeBefore)
		if s < 0 {
			// Write fetch: the block exists on the server (it holds bytes
			// below fileSizeBefore), the write is partial, and the block is
			// not resident — it must be fetched before modification.
			existingEnd := fileSizeBefore - blockStart
			if existingEnd > BlockSize {
				existingEnd = BlockSize
			}
			needFetch := partial && existingEnd > 0 && lo < existingEnd
			c.ensureRoom(now, &res.Evicted)
			s = c.insert(file, idx, now)
			if needFetch {
				c.st.All.WriteFetches++
				if attr.Migrated {
					c.st.Migrated.WriteFetches++
				}
				res.FetchBytes += existingEnd
				res.FetchBlocks++
				res.FetchIdx = append(res.FetchIdx, idx)
				c.blocks[s].validHi = existingEnd
			}
		} else {
			c.touch(s, now)
		}
		b := &c.blocks[s]
		if !b.dirty {
			b.dirty = true
			b.dirtyAt = now
			c.ndirty++
			c.noteDirtied(file)
		}
		b.lastWr = now
		if hi > b.validHi {
			b.validHi = hi
		}
		if hi > b.dirtyHi {
			c.dirtyBytes += hi - b.dirtyHi
			b.dirtyHi = hi
		}
	}
	c.st.All.BytesWritten += length
	if attr.Migrated {
		c.st.Migrated.BytesWritten += length
	}
	c.idxScratch = res.FetchIdx[:0]
	c.wbScratch = res.Evicted[:0]
	return res
}

func (c *Cache) countRead(attr Attr) {
	c.st.All.ReadOps++
	if attr.Paging {
		c.st.All.PagingReadOps++
	}
	if attr.Migrated {
		c.st.Migrated.ReadOps++
		if attr.Paging {
			c.st.Migrated.PagingReadOps++
		}
	}
}

func (c *Cache) countReadMiss(attr Attr) {
	c.st.All.ReadMisses++
	if attr.Paging {
		c.st.All.PagingReadMiss++
	}
	if attr.Migrated {
		c.st.Migrated.ReadMisses++
		if attr.Paging {
			c.st.Migrated.PagingReadMiss++
		}
	}
}

func (c *Cache) addBytesRead(attr Attr, n int64) {
	c.st.All.BytesRead += n
	if attr.Paging {
		c.st.All.PagingBytesRead += n
	}
	if attr.Migrated {
		c.st.Migrated.BytesRead += n
		if attr.Paging {
			c.st.Migrated.PagingBytesRead += n
		}
	}
}

// note: BytesReadMissed is accumulated by the client after the RPC, via
// AddMissBytes, so that clamping at the server (e.g. concurrent truncate)
// can be reflected; in the current simulator the two always agree.

// AddMissBytes records n bytes fetched from the server to satisfy reads.
func (c *Cache) AddMissBytes(attr Attr, n int64) {
	c.st.All.BytesReadMissed += n
	if attr.Paging {
		c.st.All.PagingBytesMiss += n
	}
	if attr.Migrated {
		c.st.Migrated.BytesReadMissed += n
		if attr.Paging {
			c.st.Migrated.PagingBytesMiss += n
		}
	}
}
