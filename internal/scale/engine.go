package scale

import (
	"fmt"
	"runtime"
	"strconv"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/metrics"
	"spritefs/internal/sim"
	"spritefs/internal/stats"
	"spritefs/internal/workload"
)

// ExecStats counts what the epoch executor did. Every field is a pure
// function of the topology and seeds — wall-clock time lives in RunStats,
// not here — so ExecStats participates in the byte-identity guarantee.
type ExecStats struct {
	// Epochs is the number of barrier rounds executed.
	Epochs int64
	// Routed is the number of cross-shard messages exchanged at barriers.
	Routed int64
	// RoutedBytes is their total backbone payload.
	RoutedBytes int64
	// Undelivered counts messages still in flight when the drain window
	// closed (they arrive after the simulation's end and are dropped).
	Undelivered int64
}

// RunOptions selects the executor. The default (zero value) is the
// sequential executor: every epoch runs its shards in index order on the
// calling goroutine. Parallel fans each epoch out over Workers goroutines
// with a barrier at every epoch boundary; reports and metric dumps are
// byte-identical either way.
type RunOptions struct {
	// Horizon is the measured duration (0 = one hour). The clock then
	// advances cluster.DrainTime further so in-flight work settles, as in
	// a single-segment run.
	Horizon time.Duration
	// Parallel selects the parallel shard executor.
	Parallel bool
	// Workers bounds the parallel executor's goroutines (0 = GOMAXPROCS,
	// capped at the shard count). Ignored when Parallel is false.
	Workers int
}

// RunStats reports a finished run. Wall is measured host time and so is
// the one field that varies run to run; everything else is deterministic.
type RunStats struct {
	Wall    time.Duration
	Workers int // goroutines actually used (0 = sequential)
	Exec    ExecStats
}

// Engine is an instantiated sharded topology plus its executor state.
type Engine struct {
	Cfg       Config
	Shards    []*Shard
	Router    *Router
	Placement *Placement
	// Reg is the topology-wide metric registry: every shard's component
	// stack registered under a shard="N" label, plus the router and
	// executor families.
	Reg *metrics.Registry

	exec    ExecStats
	now     sim.Time
	horizon time.Duration
	ran     bool
}

// New instantiates the topology: the community is scaled to Factor× the
// paper's population, split across Shards segments, and each segment gets
// a hermetic cluster. The placement map and router are built, and every
// component registers into the engine-wide metric registry.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	total := workload.ScaleCommunity(cfg.Base, cfg.Factor)
	e := &Engine{Cfg: cfg, Router: NewRouter(cfg.Router, cfg.Shards)}
	for i := 0; i < cfg.Shards; i++ {
		p := workload.Split(total, cfg.Shards, i)
		ccfg := cluster.DefaultConfig(p)
		ccfg.CollectTrace = false
		ccfg.SamplePeriod = 0
		ccfg.NumServers = cfg.ServersPerShard
		ccfg.Net = cfg.Segment
		if cfg.Tune != nil {
			cfg.Tune(i, &ccfg)
		}
		sh := &Shard{
			ID:  i,
			C:   cluster.New(ccfg),
			rng: sim.NewRand(p.Seed ^ remoteSeedSalt),
			eng: e,
		}
		e.Shards = append(e.Shards, sh)
	}
	e.Placement = buildPlacement(e.Shards)
	e.Reg = metrics.New()
	e.registerMetrics()
	return e, nil
}

// MustNew is New for tests and examples with known-good configurations.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Clients returns the total client count across shards.
func (e *Engine) Clients() int {
	n := 0
	for _, sh := range e.Shards {
		n += len(sh.C.Clients)
	}
	return n
}

// epochJob is one shard's slice of an epoch.
type epochJob struct {
	sh  *Shard
	end sim.Time
}

// Run executes the topology to opts.Horizon plus the drain window and
// returns the run's statistics. An engine runs once; reuse is a bug.
func (e *Engine) Run(opts RunOptions) RunStats {
	if e.ran {
		panic("scale: engine already ran")
	}
	e.ran = true
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = time.Hour
	}
	e.horizon = horizon

	workers := 0
	if opts.Parallel {
		workers = opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(e.Shards) {
			workers = len(e.Shards)
		}
	}

	start := time.Now()
	for _, sh := range e.Shards {
		sh.C.Start(horizon)
		sh.startRemote(horizon)
	}

	var jobs chan epochJob
	var done chan struct{}
	if workers > 0 {
		jobs = make(chan epochJob, len(e.Shards))
		done = make(chan struct{}, len(e.Shards))
		for w := 0; w < workers; w++ {
			go func() {
				for j := range jobs {
					j.sh.runEpoch(j.end)
					done <- struct{}{}
				}
			}()
		}
		defer close(jobs)
	}
	round := func(end sim.Time) {
		if workers > 0 {
			for _, sh := range e.Shards {
				jobs <- epochJob{sh, end}
			}
			for range e.Shards {
				<-done
			}
		} else {
			for _, sh := range e.Shards {
				sh.runEpoch(end)
			}
		}
		e.barrier()
	}

	// Phase 1: the measured window.
	e.runPhase(horizon, round)
	// Phase 2: daemons and samplers stop at the horizon, exactly as in a
	// single-segment run, then in-flight work drains.
	for _, sh := range e.Shards {
		sh.C.Finish()
	}
	e.runPhase(horizon+cluster.DrainTime, round)
	for _, sh := range e.Shards {
		e.exec.Undelivered += int64(len(sh.inbox))
	}
	return RunStats{Wall: time.Since(start), Workers: workers, Exec: e.exec}
}

// runPhase executes epochs until no shard has work at or before `until`,
// then aligns every shard's clock to exactly `until`.
//
// The epoch boundary is conservative but not fixed-width: a shard can emit
// a cross-shard message only when its remote generator fires or when it
// serves an inbound request, and both of those next occurrence times are
// known ahead of running. Any message sent at or after bound arrives at or
// after bound+lookahead, so every shard may safely run to that point. When
// no shard can ever send (one shard, remote traffic disabled, generators
// past the horizon) the phase collapses to a single epoch.
func (e *Engine) runPhase(until sim.Time, round func(end sim.Time)) {
	lookahead := e.Router.Lookahead()
	for {
		var next sim.Time
		found := false
		bound := never
		for _, sh := range e.Shards {
			if t, ok := sh.nextAt(); ok && (!found || t < next) {
				next, found = t, true
			}
			if t := sh.earliestSend(); t < bound {
				bound = t
			}
		}
		if !found || next > until {
			break
		}
		end := until
		if bound != never && bound+lookahead < end {
			end = bound + lookahead
		}
		round(end)
		e.now = end
	}
	for _, sh := range e.Shards {
		sh.C.Sim.RunUntil(until)
	}
	e.now = until
}

// barrier routes every outbox emitted during the epoch and delivers the
// messages to their destination inboxes. Iteration is in shard order and
// per-shard emission order, and destinations re-sort by (Arrive, From,
// Seq), so the exchange is identical regardless of which goroutines ran
// the epoch.
func (e *Engine) barrier() {
	e.exec.Epochs++
	var byDest [][]*Message
	for _, sh := range e.Shards {
		for _, m := range sh.takeOutbox() {
			if m.To < 0 || m.To >= len(e.Shards) {
				panic(fmt.Sprintf("scale: message to unknown shard %d", m.To))
			}
			e.Router.Route(m)
			e.exec.Routed++
			e.exec.RoutedBytes += m.Payload
			if byDest == nil {
				byDest = make([][]*Message, len(e.Shards))
			}
			byDest[m.To] = append(byDest[m.To], m)
		}
	}
	for i, msgs := range byDest {
		e.Shards[i].enqueue(msgs)
	}
}

// registerMetrics builds the engine-wide registry: per-shard component
// stacks under shard="N", per-shard remote-traffic counters, and the
// router/executor families.
func (e *Engine) registerMetrics() {
	for i, sh := range e.Shards {
		sh := sh
		scoped := e.Reg.Scoped(metrics.L("shard", strconv.Itoa(i)))
		cluster.RegisterComponents(scoped, sh.C.Sim, sh.C.Clients, sh.C.Servers, sh.C.Net, sh.C.Injector)

		rctr := func(name, unit, help string, fn func() int64) {
			scoped.Int(metrics.Desc{Name: name, Unit: unit, Help: help, Kind: metrics.Counter}, nil, fn)
		}
		rctr("spritefs_scale_remote_ops_issued_total", "ops",
			"Cross-segment operations this shard's clients issued.",
			func() int64 { return sh.remote.OpsIssued })
		rctr("spritefs_scale_remote_ops_served_total", "ops",
			"Cross-segment operations this shard's servers answered.",
			func() int64 { return sh.remote.OpsServed })
		rctr("spritefs_scale_remote_replies_total", "ops",
			"Remote-operation completions received back at this shard.",
			func() int64 { return sh.remote.Replies })
		rctr("spritefs_scale_remote_read_bytes_total", "bytes",
			"Logical bytes read from remote shards by this shard's clients.",
			func() int64 { return sh.remote.BytesIn })
		rctr("spritefs_scale_remote_write_bytes_total", "bytes",
			"Logical bytes written to remote shards by this shard's clients.",
			func() int64 { return sh.remote.BytesOut })
		scoped.HistSeconds(metrics.Desc{Name: "spritefs_scale_remote_latency_seconds",
			Help: "End-to-end remote operation latency (request issue to reply arrival)."},
			nil, func() stats.Welford { return sh.remote.Latency })
	}

	ctr := func(name, unit, help string, fn func() int64) {
		e.Reg.Int(metrics.Desc{Name: name, Unit: unit, Help: help, Kind: metrics.Counter}, nil, fn)
	}
	ctr("spritefs_scale_router_msgs_total", "msgs",
		"Messages carried by the inter-segment router.",
		func() int64 { return e.Router.Msgs() })
	ctr("spritefs_scale_router_bytes_total", "bytes",
		"Payload bytes carried by the inter-segment router.",
		func() int64 { return e.Router.Bytes() })
	e.Reg.Seconds(metrics.Desc{Name: "spritefs_scale_router_busy_seconds",
		Help: "Cumulative backbone transmission time; against elapsed virtual time it gives backbone utilization.",
		Kind: metrics.Counter},
		nil, func() time.Duration { return e.Router.Busy() })
	ctr("spritefs_scale_epochs_total", "epochs",
		"Barrier rounds the conservative executor ran.",
		func() int64 { return e.exec.Epochs })
	ctr("spritefs_scale_barrier_msgs_total", "msgs",
		"Cross-shard messages exchanged at epoch barriers.",
		func() int64 { return e.exec.Routed })
	ctr("spritefs_scale_barrier_bytes_total", "bytes",
		"Backbone payload bytes exchanged at epoch barriers.",
		func() int64 { return e.exec.RoutedBytes })
	ctr("spritefs_scale_undelivered_msgs_total", "msgs",
		"Messages still in flight when the drain window closed.",
		func() int64 { return e.exec.Undelivered })
}
