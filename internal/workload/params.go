// Package workload generates the synthetic cluster workload that stands in
// for the 1991 Berkeley user community (the paper's original traces are
// irreproducible; see DESIGN.md). It models the paper's four user groups —
// operating-systems researchers, architecture researchers running I/O
// simulations, a VLSI/parallel-processing class, and miscellaneous staff —
// running the applications the paper names: interactive editing, program
// development with pmake (which migrates compilations to idle hosts),
// electronic mail, document production, and multi-megabyte simulation
// runs. Every distributional knob is centralized in Params so the eight
// trace configurations are explicit and auditable.
package workload

import "time"

// Group identifies a user community segment.
type Group uint8

// The paper's four user groups, roughly equal in size.
const (
	GroupOS Group = iota
	GroupArch
	GroupVLSI
	GroupMisc
	NumGroups
)

var groupNames = [NumGroups]string{"os", "arch", "vlsi", "misc"}

// String returns the group name.
func (g Group) String() string {
	if g < NumGroups {
		return groupNames[g]
	}
	return "group?"
}

// AppKind enumerates the application generators.
type AppKind uint8

// Applications, matching the paper's workload description.
const (
	AppEdit AppKind = iota
	AppCompile
	AppPmake
	AppMail
	AppDoc
	AppSim
	AppBigSim
	AppRandomDB
	AppDirList
	AppSharedLog
	// AppGrep is the utility burst: shell pipelines (grep, wc, find -exec)
	// that open dozens of small files in a second or two — the source of
	// the traces' enormous open counts at tiny byte volumes.
	AppGrep
	// AppStream is a media-streaming client (post-1991 workload): large
	// sequential ReadAt playback at a paced bitrate, with seek bursts
	// when the viewer scrubs. Disabled unless Params.MediaFiles > 0.
	AppStream
	// AppBuildFarm is a package-build farm (post-1991 workload): a worker
	// pool over a seeded dependency DAG, pmake-style, each package build
	// migrated to an idle host. Disabled unless Params.FarmPackages > 0.
	AppBuildFarm
	NumApps
)

var appNames = [NumApps]string{
	"edit", "compile", "pmake", "mail", "doc", "sim", "bigsim",
	"randomdb", "dirlist", "sharedlog", "grep", "stream", "buildfarm",
}

// String returns the application name.
func (a AppKind) String() string {
	if a < NumApps {
		return appNames[a]
	}
	return "app?"
}

// Params holds every knob of the synthetic workload. The defaults are
// calibrated so the Section 4 analyses reproduce the paper's shapes; the
// per-trace constructors below apply the deviations the paper describes
// for traces 3-4 (large-file class projects) and 7-8 (heavy simulation and
// sharing).
type Params struct {
	Seed int64

	// Population.
	NumClients      int // diskless workstations (paper: ~40)
	DailyUsers      int // day-to-day users (paper: ~30)
	OccasionalUsers int // occasional users (paper: ~40)

	// Session structure.
	SessionMedian            time.Duration // active session length (log-normal median)
	SessionSigma             float64
	GapMedian                time.Duration // idle gap between sessions
	GapSigma                 float64
	ThinkMean                time.Duration // think time between application runs
	OccasionalSessionsPerDay float64

	// Application mix per group, indexed [group][app].
	AppMix [NumGroups][NumApps]float64

	// File size distributions (bytes).
	SmallMedian float64 // editor/source files (log-normal median)
	SmallSigma  float64
	ObjMin      float64 // compiler outputs (bounded Pareto)
	ObjMax      float64
	ObjAlpha    float64
	BinMin      float64 // linked binaries / kernel images
	BinMax      float64
	BinAlpha    float64
	DocMedian   float64
	DocSigma    float64
	MailMedian  float64
	MailSigma   float64
	SimInputMB  float64 // big-sim input size (mean, MB)
	SimOutputMB float64

	// Processing rates: how fast applications consume/produce bytes
	// (models CPU-bound throughput; I/O latency adds on top).
	EditRate    float64 // bytes/second
	CompileRate float64
	SimRate     float64

	// Chunking of large transfers into separate kernel calls.
	ChunkBytes int64

	// pmake / migration.
	PmakeTargetsMin, PmakeTargetsMax int
	MigrationReuseBias               float64
	MigrationUserFrac                float64 // fraction of daily users who use pmake migration

	// Sharing.
	SharedLogOpenHold time.Duration // how long a shared-log writer keeps the file open
	SharedReadSoonP   float64       // probability a group member reads a shared file soon after a write
	// AwaySessionProb is the chance a session happens on a workstation
	// other than the user's own — the same-user cross-machine access that
	// produces most dirty-data recalls and stale-data exposure.
	AwaySessionProb float64

	// Virtual memory footprints (pages).
	CodePagesMin, CodePagesMax int
	DataPagesMin, DataPagesMax int
	StackPages                 int
	HeapGrowMax                int // heap pages dirtied per activity burst

	// Big-file users (traces 3-4): class-project simulators with 20 MB
	// inputs and 10 MB postprocessed-and-deleted outputs.
	BigSimUsers int

	// Backup noise: nightly backup reads flagged FlagSelfTrace, which the
	// merger must scrub (exercises the paper's merge step).
	EmitBackupNoise bool

	// Media streaming (AppStream). All zero by default: the paper's
	// community predates streaming, and zero keeps both the bootstrap
	// population and the calibrated RNG sequences untouched.
	MediaFiles       int     // media library size (0 disables the app)
	MediaFileMB      float64 // mean media object size, MB
	MediaBitrate     float64 // playback consumption rate, bytes/second
	StreamSeekBurstP float64 // chance of a scrub (seek burst) between playback segments
	StreamRandomP    float64 // chance an entire session is random-access scrubbing

	// Package build farm (AppBuildFarm). Zero FarmPackages disables it.
	FarmPackages int // dependency-DAG size per farm run
	FarmFaninMax int // max dependencies per package
	FarmWorkers  int // concurrent package builds farmed to idle hosts
}

// Default returns the baseline parameter set (traces 1-2 and 5-6 use it
// with different seeds).
func Default(seed int64) Params {
	p := Params{
		Seed:            seed,
		NumClients:      40,
		DailyUsers:      30,
		OccasionalUsers: 40,

		SessionMedian:            15 * time.Minute,
		SessionSigma:             0.8,
		GapMedian:                75 * time.Minute,
		GapSigma:                 0.9,
		ThinkMean:                40 * time.Second,
		OccasionalSessionsPerDay: 0.7,

		SmallMedian: 2 * 1024,
		SmallSigma:  1.0,
		ObjMin:      4 * 1024,
		ObjMax:      256 * 1024,
		ObjAlpha:    1.2,
		BinMin:      512 * 1024,
		BinMax:      3 << 20,
		BinAlpha:    1.1,
		DocMedian:   16 * 1024,
		DocSigma:    1.2,
		MailMedian:  64 * 1024,
		MailSigma:   0.9,
		SimInputMB:  4,
		SimOutputMB: 1.0,

		EditRate:    150 * 1024,
		CompileRate: 1 << 20,
		SimRate:     8 << 20,

		ChunkBytes: 256 * 1024,

		PmakeTargetsMin:    4,
		PmakeTargetsMax:    12,
		MigrationReuseBias: 0.7,
		MigrationUserFrac:  0.35,

		SharedLogOpenHold: 6 * time.Second,
		SharedReadSoonP:   0.8,
		AwaySessionProb:   0.22,

		CodePagesMin: 32,
		CodePagesMax: 160,
		DataPagesMin: 8,
		DataPagesMax: 64,
		StackPages:   4,
		HeapGrowMax:  256,

		BigSimUsers:     0,
		EmitBackupNoise: true,
	}
	// Application mixes. Weights are relative within a group.
	// Reads dominate everywhere (the 4:1 raw read:write ratio and the
	// 88% read-only access mix emerge from these).
	p.AppMix[GroupOS] = [NumApps]float64{
		AppEdit: 30, AppCompile: 18, AppPmake: 10, AppMail: 12,
		AppDoc: 4, AppSim: 2, AppRandomDB: 4, AppDirList: 10, AppSharedLog: 20, AppGrep: 90,
	}
	p.AppMix[GroupArch] = [NumApps]float64{
		AppEdit: 20, AppCompile: 10, AppPmake: 8, AppMail: 10,
		AppDoc: 4, AppSim: 6, AppRandomDB: 4, AppDirList: 8, AppSharedLog: 20, AppGrep: 80,
	}
	p.AppMix[GroupVLSI] = [NumApps]float64{
		AppEdit: 24, AppCompile: 12, AppPmake: 8, AppMail: 8,
		AppDoc: 6, AppSim: 5, AppRandomDB: 4, AppDirList: 8, AppSharedLog: 20, AppGrep: 80,
	}
	p.AppMix[GroupMisc] = [NumApps]float64{
		AppEdit: 30, AppMail: 22, AppDoc: 14, AppDirList: 16,
		AppCompile: 4, AppRandomDB: 4, AppSharedLog: 12, AppGrep: 70,
	}
	return p
}

// TraceParams returns the parameter set for trace n in 1..8, mirroring the
// paper's description: traces 3-4 add the two class-project users with
// 20 MB simulator inputs and 10 MB postprocessed outputs; traces 7-8 have
// heavier simulation activity and more write-sharing.
func TraceParams(n int) Params {
	if n < 1 || n > 8 {
		panic("workload: trace number out of range 1..8")
	}
	p := Default(1000 + int64(n)*7919)
	switch n {
	case 3, 4:
		p.BigSimUsers = 2
		p.SimInputMB = 20
		p.SimOutputMB = 10
	case 7, 8:
		// Heavier shared activity and simulation load.
		for g := Group(0); g < NumGroups; g++ {
			p.AppMix[g][AppSharedLog] *= 3
			p.AppMix[g][AppSim] *= 1.5
		}
		p.SharedReadSoonP = 0.7
	}
	return p
}

// ScaleCommunity multiplies the user community by factor: workstations,
// daily and occasional users, and the big-file class projects all grow
// together, while the per-user behavioural knobs stay at the paper's
// calibration. factor 25 turns the measured 40-workstation cluster into
// the 1000-client population the scale-out study runs. Factors <= 0 or
// == 1 return p unchanged.
func ScaleCommunity(p Params, factor float64) Params {
	if factor <= 0 || factor == 1 {
		return p
	}
	grow := func(n int) int {
		v := int(float64(n)*factor + 0.5)
		if v < 1 && n > 0 {
			v = 1
		}
		return v
	}
	p.NumClients = grow(p.NumClients)
	p.DailyUsers = grow(p.DailyUsers)
	p.OccasionalUsers = grow(p.OccasionalUsers)
	p.BigSimUsers = grow(p.BigSimUsers)
	return p
}

// seedStride separates shard seeds far enough that per-shard random
// streams share no obvious structure. Any large odd constant works; what
// matters is that it is fixed, so shard i's community is a pure function
// of (base seed, shard index) regardless of how many other shards exist.
const seedStride = 0x3e3779b97f4a7c15

// Split carves the community into shards equal segments and returns shard
// i's slice: an independent Params whose population is the i-th
// near-equal share (earlier shards get the remainders) and whose seed is
// derived from the base seed and the shard index alone. Two properties
// matter for the scale-out engine: the shares sum exactly to the original
// population, and shard i's parameters do not depend on the contents of
// any other shard — which is what makes per-shard op streams invariant
// across shard assignments (TestSplitStreamInvariance). shards must be in
// [1, NumClients]; Split panics otherwise.
func Split(p Params, shards, shard int) Params {
	if shards < 1 || shards > p.NumClients {
		panic("workload: shard count out of range [1, NumClients]")
	}
	if shard < 0 || shard >= shards {
		panic("workload: shard index out of range")
	}
	share := func(n int) int {
		v := n / shards
		if shard < n%shards {
			v++
		}
		return v
	}
	p.NumClients = share(p.NumClients)
	p.DailyUsers = share(p.DailyUsers)
	p.OccasionalUsers = share(p.OccasionalUsers)
	p.BigSimUsers = share(p.BigSimUsers)
	if shards > 1 {
		p.Seed += int64(shard) * seedStride
	}
	return p
}

// siteSeedStride salts the site level of a hierarchical split. It must
// differ from seedStride so that (site i, segment j) and (site j, segment
// i) never derive the same seed: a community split site-major and then
// segment-wise gets Seed + i*siteSeedStride + j*seedStride, which is
// unique per (i, j) pair for any grid the population can support.
const siteSeedStride = 0x5851f42d4c957f2d

// SplitSite carves the community into near-equal site shares — the upper
// level of the segment → site → WAN hierarchy. It obeys the same two
// invariants as Split (shares sum exactly to the original population;
// site i's parameters depend only on the base seed and i), but salts the
// seed with a different stride, so composing SplitSite with Split yields
// a distinct deterministic community per (site, segment) pair:
//
//	seg := workload.Split(workload.SplitSite(total, sites, s), segs, j)
//
// sites must be in [1, NumClients]; SplitSite panics otherwise.
func SplitSite(p Params, sites, site int) Params {
	if sites < 1 || sites > p.NumClients {
		panic("workload: site count out of range [1, NumClients]")
	}
	if site < 0 || site >= sites {
		panic("workload: site index out of range")
	}
	share := func(n int) int {
		v := n / sites
		if site < n%sites {
			v++
		}
		return v
	}
	p.NumClients = share(p.NumClients)
	p.DailyUsers = share(p.DailyUsers)
	p.OccasionalUsers = share(p.OccasionalUsers)
	p.BigSimUsers = share(p.BigSimUsers)
	if sites > 1 {
		p.Seed += int64(site) * siteSeedStride
	}
	return p
}

// BSD1985 returns a parameter set approximating the 1985 BSD study's
// world, the baseline against which the paper measures its "factor of 20"
// throughput growth: a few 1-MIPS time-shared VAXes instead of personal
// 10-MIPS workstations (many users per machine, processing rates an order
// of magnitude lower), 1985-sized files (large files an order of magnitude
// smaller — the paper's central observation is that they grew 10x by
// 1991), and no process migration. Running Default and BSD1985 through the
// same Table 2 analysis reproduces the growth factor as a measurement
// rather than a citation.
func BSD1985(seed int64) Params {
	p := Default(seed)
	// Three time-shared VAXes serve the whole community.
	p.NumClients = 3
	p.DailyUsers = 24
	p.OccasionalUsers = 30

	// 1-MIPS processing: everything is ~10x slower.
	p.EditRate /= 10
	p.CompileRate /= 10
	p.SimRate /= 10

	// 1985-sized files: the big end of every distribution shrinks 8-10x.
	p.SmallMedian /= 2
	p.ObjMax /= 8
	p.BinMin /= 8
	p.BinMax /= 8
	p.DocMedian /= 4
	p.MailMedian /= 4
	p.SimInputMB = 0.5
	p.SimOutputMB = 0.15
	p.BigSimUsers = 0

	// No Sprite: no migration, and sessions compete for shared CPUs, so
	// users get less done per session.
	p.MigrationUserFrac = 0
	p.ThinkMean *= 3
	for g := Group(0); g < NumGroups; g++ {
		p.AppMix[g][AppPmake] = 0
	}
	return p
}

// StreamingParams returns a media-streaming-heavy community: the 1991
// population plus a shared media library, with every group spending most
// of its time in playback sessions. The "does the Sprite cache model hold
// on a workload its designers never saw?" configuration — single-open,
// huge sequential reads, near-zero writes.
func StreamingParams(seed int64) Params {
	p := Default(seed)
	p.MediaFiles = 36
	p.MediaFileMB = 48
	p.MediaBitrate = 1.5 * (1 << 20) // ~12 Mbit/s video
	p.StreamSeekBurstP = 0.25
	p.StreamRandomP = 0.15
	for g := Group(0); g < NumGroups; g++ {
		// Streaming dominates but the background community stays on, so
		// the caches still see metadata and small-file traffic.
		p.AppMix[g][AppStream] = 150
	}
	return p
}

// BuildFarmParams returns a package-build-farm-heavy community: most
// daily users run pmake-style farm builds over seeded dependency DAGs,
// fanned out to idle workstations through process migration — the
// heaviest migration load any configuration generates.
func BuildFarmParams(seed int64) Params {
	p := Default(seed)
	p.FarmPackages = 24
	p.FarmFaninMax = 3
	p.FarmWorkers = 8
	p.MigrationUserFrac = 0.9
	for g := Group(0); g < NumGroups; g++ {
		p.AppMix[g][AppBuildFarm] = 80
	}
	return p
}
