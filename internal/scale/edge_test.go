package scale_test

import (
	"testing"
	"time"

	"spritefs/internal/scale"
	"spritefs/internal/workload"
)

// chattyConfig is a small topology with enough remote traffic that every
// pricing edge case actually moves messages.
func chattyConfig(seed int64, shards int) scale.Config {
	cfg := testConfig(seed, shards)
	cfg.Remote = scale.DefaultRemote()
	cfg.Remote.OpsPerClientHour = 300
	return cfg
}

// assertConserved checks that the remote-traffic flow balanced: every
// issued operation was served and completed, so nothing deadlocked or was
// delivered out of its lookahead window.
func assertConserved(t *testing.T, e *scale.Engine) {
	t.Helper()
	rep := e.Report()
	var issued, served, replies int64
	for _, s := range rep.PerShard {
		issued += s.Remote.OpsIssued
		served += s.Remote.OpsServed
		replies += s.Remote.Replies
	}
	if issued == 0 {
		t.Fatal("no remote operations issued; the test exercises nothing")
	}
	if served != issued || replies != issued {
		t.Errorf("flow not conserved: issued %d, served %d, replied %d (undelivered %d)",
			issued, served, replies, rep.Exec.Undelivered)
	}
}

// assertExecutorInvariant runs the same config sequentially and at
// several worker counts and requires byte-identical output.
func assertExecutorInvariant(t *testing.T, cfg scale.Config, horizon time.Duration) *scale.Engine {
	t.Helper()
	ref := scale.MustNew(cfg)
	ref.Run(scale.RunOptions{Horizon: horizon})
	want := fingerprint(t, ref)
	for _, w := range []int{1, 4} {
		e := scale.MustNew(cfg)
		e.Run(scale.RunOptions{Horizon: horizon, Parallel: true, Workers: w})
		if got := fingerprint(t, e); got != want {
			t.Errorf("workers=%d output differs from sequential\n%s", w, firstDiff(want, got))
		}
	}
	return ref
}

// TestZeroLatencyLink prices one directed link at exactly zero: the
// channel clock on that link offers no lookahead, so the executor must
// fall back to strictly-bounded advances without deadlocking or
// reordering delivery.
func TestZeroLatencyLink(t *testing.T) {
	cfg := chattyConfig(21, 3)
	cfg.Router.Latency = time.Millisecond
	cfg.Router.BandwidthBps = 12.5e6
	cfg.Router.LinkLatency = func(from, to int) time.Duration {
		if from == 0 && to == 1 {
			return 0
		}
		return time.Millisecond
	}
	e := assertExecutorInvariant(t, cfg, 30*time.Minute)
	assertConserved(t, e)
}

// TestAllLinksZeroLatency is the degenerate extreme: every link offers
// zero lookahead, so the executor's only safe mode is the serialized
// stall-breaker. The run must still terminate, conserve traffic, and be
// byte-identical at every worker count.
func TestAllLinksZeroLatency(t *testing.T) {
	cfg := chattyConfig(22, 3)
	cfg.Router.Latency = time.Millisecond // default floor; every link overridden
	cfg.Router.BandwidthBps = 12.5e6
	cfg.Router.LinkLatency = func(from, to int) time.Duration { return 0 }
	e := assertExecutorInvariant(t, cfg, 20*time.Minute)
	assertConserved(t, e)
	if e.Report().Exec.Rescues == 0 {
		t.Error("all-zero-latency topology ran without stall rescues; the stall-breaker was not exercised")
	}
}

// TestSubTickLinkLatency prices links far below the timer wheel's ~4.2ms
// bucket resolution: event delivery must stay exact (the wheel only
// batches recurring daemons), so lookahead windows much smaller than a
// tick cannot reorder or lose messages.
func TestSubTickLinkLatency(t *testing.T) {
	cfg := chattyConfig(23, 3)
	cfg.Router.Latency = 50 * time.Microsecond
	cfg.Router.BandwidthBps = 1e9
	e := assertExecutorInvariant(t, cfg, 30*time.Minute)
	assertConserved(t, e)
}

// TestSingleShardDegenerate pins the one-shard topology: no links, no
// lookahead to compute, no remote traffic — the executor must collapse
// to a handful of whole-phase rounds rather than deadlock on an empty
// link set.
func TestSingleShardDegenerate(t *testing.T) {
	p := workload.Default(24)
	p.NumClients = 8
	p.DailyUsers = 6
	p.OccasionalUsers = 1
	p.BigSimUsers = 1
	cfg := scale.Config{Base: p, Shards: 1, ServersPerShard: 2}
	e := scale.MustNew(cfg)
	st := e.Run(scale.RunOptions{Horizon: 30 * time.Minute, Parallel: true})
	if st.Exec.Routed != 0 || st.Exec.NullAdvances != 0 || st.Exec.Rescues != 0 {
		t.Errorf("single-shard run touched the router: %+v", st.Exec)
	}
	if st.Exec.Rounds > 2 {
		t.Errorf("single-shard run took %d rounds; want at most one per phase", st.Exec.Rounds)
	}
}

// TestNegativeLinkLatencyRejected pins validation of per-link pricing.
func TestNegativeLinkLatencyRejected(t *testing.T) {
	cfg := testConfig(25, 2)
	cfg.Router.Latency = time.Millisecond
	cfg.Router.BandwidthBps = 12.5e6
	cfg.Router.LinkLatency = func(from, to int) time.Duration { return -time.Microsecond }
	if _, err := scale.New(cfg); err == nil {
		t.Error("negative per-link latency accepted")
	}
}

// TestHeterogeneousLinksBeatUniformBound pins the point of per-link
// clocks: with one slow link and otherwise fast ones, shards that only
// hear from fast links must not be throttled to the slow link's pace.
// The deterministic rounds counter is the executor-efficiency measure:
// the same traffic under per-link clocks must need no more rounds than
// under a uniform worst-case latency, and the advance histogram must
// show wider windows.
func TestHeterogeneousLinksBeatUniformBound(t *testing.T) {
	base := chattyConfig(26, 4)
	base.Router.Latency = time.Millisecond
	base.Router.BandwidthBps = 12.5e6

	uniform := base
	het := base
	het.Router.LinkLatency = func(from, to int) time.Duration {
		if from == 0 || to == 0 {
			return time.Millisecond
		}
		return 20 * time.Millisecond // shards 1..3 are mutually distant
	}

	eu := scale.MustNew(uniform)
	su := eu.Run(scale.RunOptions{Horizon: 30 * time.Minute})
	eh := scale.MustNew(het)
	sh := eh.Run(scale.RunOptions{Horizon: 30 * time.Minute})

	if sh.Exec.Rounds >= su.Exec.Rounds {
		t.Errorf("heterogeneous links took %d rounds, uniform floor took %d; per-link lookahead bought nothing",
			sh.Exec.Rounds, su.Exec.Rounds)
	}
	assertConserved(t, eh)
}
