package scale_test

import (
	"fmt"
	"testing"
	"time"

	"spritefs/internal/scale"
	"spritefs/internal/workload"
)

// benchHorizon keeps one iteration of the 1000-client macro benchmark in
// the single-digit seconds on commodity hardware.
const benchHorizon = 15 * time.Minute

// BenchmarkScaleEngine is the throughput-vs-shards macro benchmark behind
// BENCH_scale.json: the same 1000-client community run as one segment and
// as eight. The shards=1 row is the sequential executor; multi-shard rows
// use the parallel executor, so the ratio between them is the wall-clock
// speedup sharding buys on this host (bounded by usable cores — on a
// single-core host expect ~1x).
func BenchmarkScaleEngine(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("clients=1000/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := scale.MustNew(scale.Config{
					Base:   workload.Default(42),
					Factor: 25,
					Shards: shards,
				})
				e.Run(scale.RunOptions{Horizon: benchHorizon, Parallel: shards > 1})
			}
		})
	}
}

// BenchmarkScaleBarrier isolates the executor overhead: a small community
// where remote messages (and so epochs) dominate the per-shard work.
func BenchmarkScaleBarrier(b *testing.B) {
	p := workload.Default(7)
	p.NumClients = 16
	p.DailyUsers = 12
	p.OccasionalUsers = 4
	cfg := scale.Config{Base: p, Shards: 4, ServersPerShard: 1}
	cfg.Remote = scale.DefaultRemote()
	cfg.Remote.OpsPerClientHour = 600 // one remote op per client every 6s
	for i := 0; i < b.N; i++ {
		e := scale.MustNew(cfg)
		e.Run(scale.RunOptions{Horizon: 10 * time.Minute, Parallel: true})
	}
}
