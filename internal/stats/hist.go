package stats

import (
	"fmt"
	"math"
	"sort"
)

// Hist is a log-bucketed histogram over positive values. It is the engine
// behind the cumulative-distribution figures in the paper: every sample may
// carry an arbitrary weight, so the same histogram type serves both the
// "weighted by number of runs/files" and the "weighted by bytes" variants
// of Figures 1, 2 and 4.
//
// Buckets are geometric: perDecade buckets per factor of ten between lo and
// hi. Samples below lo fall into an underflow bucket; samples above hi into
// an overflow bucket. The zero value is not usable; construct with NewHist.
type Hist struct {
	lo, hi    float64
	perDecade int
	logLo     float64
	scale     float64 // buckets per unit of log10
	weights   []float64
	total     float64
	n         int64
}

// NewHist returns a histogram spanning [lo, hi] with perDecade geometric
// buckets per decade. It panics if lo <= 0, hi <= lo, or perDecade < 1,
// since these are programming errors in the analysis code.
func NewHist(lo, hi float64, perDecade int) *Hist {
	if lo <= 0 || hi <= lo || perDecade < 1 {
		panic(fmt.Sprintf("stats: invalid histogram bounds lo=%g hi=%g perDecade=%d", lo, hi, perDecade))
	}
	decades := math.Log10(hi / lo)
	nb := int(math.Ceil(decades*float64(perDecade))) + 1
	return &Hist{
		lo:        lo,
		hi:        hi,
		perDecade: perDecade,
		logLo:     math.Log10(lo),
		scale:     float64(perDecade),
		// +2 for underflow and overflow buckets.
		weights: make([]float64, nb+2),
	}
}

func (h *Hist) bucket(v float64) int {
	if v < h.lo {
		return 0
	}
	if v >= h.hi {
		return len(h.weights) - 1
	}
	b := int((math.Log10(v)-h.logLo)*h.scale) + 1
	if b >= len(h.weights)-1 {
		b = len(h.weights) - 2
	}
	return b
}

// upper returns the upper bound of bucket index b (1-based interior).
func (h *Hist) upper(b int) float64 {
	if b == 0 {
		return h.lo
	}
	if b >= len(h.weights)-1 {
		return math.Inf(1)
	}
	u := h.lo * math.Pow(10, float64(b)/h.scale)
	if u > h.hi {
		u = h.hi
	}
	return u
}

// Add records value v with weight w. Non-positive weights are ignored;
// non-positive values are counted in the underflow bucket.
func (h *Hist) Add(v, w float64) {
	if w <= 0 {
		return
	}
	h.weights[h.bucket(v)] += w
	h.total += w
	h.n++
}

// Add1 records value v with weight 1.
func (h *Hist) Add1(v float64) { h.Add(v, 1) }

// N returns the number of samples added.
func (h *Hist) N() int64 { return h.n }

// Total returns the sum of weights added.
func (h *Hist) Total() float64 { return h.total }

// CDFPoint is one point of a cumulative distribution: the cumulative
// fraction of total weight at values <= X.
type CDFPoint struct {
	X    float64
	Frac float64
}

// CDF returns the cumulative distribution as a sequence of points at bucket
// upper bounds, skipping empty leading buckets. The final point has
// Frac == 1 (if any weight was added).
func (h *Hist) CDF() []CDFPoint {
	var out []CDFPoint
	if h.total == 0 {
		return out
	}
	cum := 0.0
	started := false
	for b := 0; b < len(h.weights); b++ {
		cum += h.weights[b]
		if !started && h.weights[b] == 0 {
			continue
		}
		started = true
		x := h.upper(b)
		if math.IsInf(x, 1) {
			x = h.hi
		}
		out = append(out, CDFPoint{X: x, Frac: cum / h.total})
	}
	return out
}

// FracAtOrBelow returns the fraction of total weight recorded at values
// less than or equal to x.
func (h *Hist) FracAtOrBelow(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	b := h.bucket(x)
	cum := 0.0
	for i := 0; i <= b; i++ {
		cum += h.weights[i]
	}
	return cum / h.total
}

// Quantile returns the smallest bucket upper bound at which the cumulative
// fraction reaches p (0 < p <= 1). With no samples it returns 0.
func (h *Hist) Quantile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	target := p * h.total
	cum := 0.0
	for b := 0; b < len(h.weights); b++ {
		cum += h.weights[b]
		if cum >= target {
			u := h.upper(b)
			if math.IsInf(u, 1) {
				return h.hi
			}
			return u
		}
	}
	return h.hi
}

// Merge folds other into h. Both histograms must have identical geometry;
// Merge panics otherwise (a programming error).
func (h *Hist) Merge(other *Hist) {
	if h.lo != other.lo || h.hi != other.hi || h.perDecade != other.perDecade {
		panic("stats: merging histograms with different geometry")
	}
	for i, w := range other.weights {
		h.weights[i] += w
	}
	h.total += other.total
	h.n += other.n
}

// ExactCDF computes a CDF from explicit (value, weight) samples without
// bucketing. It is used by tests to validate Hist and by small analyses
// where exactness matters (e.g. per-trace min/max columns).
type ExactCDF struct {
	vals    []float64
	weights []float64
	total   float64
	sorted  bool
}

// Add records one weighted sample.
func (e *ExactCDF) Add(v, w float64) {
	if w <= 0 {
		return
	}
	e.vals = append(e.vals, v)
	e.weights = append(e.weights, w)
	e.total += w
	e.sorted = false
}

func (e *ExactCDF) sort() {
	if e.sorted {
		return
	}
	idx := make([]int, len(e.vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return e.vals[idx[a]] < e.vals[idx[b]] })
	nv := make([]float64, len(e.vals))
	nw := make([]float64, len(e.vals))
	for i, j := range idx {
		nv[i], nw[i] = e.vals[j], e.weights[j]
	}
	e.vals, e.weights = nv, nw
	e.sorted = true
}

// FracAtOrBelow returns the fraction of weight at values <= x.
func (e *ExactCDF) FracAtOrBelow(x float64) float64 {
	if e.total == 0 {
		return 0
	}
	e.sort()
	cum := 0.0
	for i, v := range e.vals {
		if v > x {
			break
		}
		cum += e.weights[i]
	}
	return cum / e.total
}

// Quantile returns the smallest sample value at which the cumulative weight
// fraction reaches p.
func (e *ExactCDF) Quantile(p float64) float64 {
	if e.total == 0 {
		return 0
	}
	e.sort()
	target := p * e.total
	cum := 0.0
	for i, v := range e.vals {
		cum += e.weights[i]
		if cum >= target {
			return v
		}
	}
	return e.vals[len(e.vals)-1]
}

// Total returns the sum of weights.
func (e *ExactCDF) Total() float64 { return e.total }
