package faults

import (
	"time"

	"spritefs/internal/metrics"
)

// RegisterMetrics registers the injector's fault-schedule accounting into
// the central registry: what was injected, what data it destroyed, and how
// the recovery protocol fared. One injector drives the whole cluster, so
// these families are unlabeled singletons.
func (inj *Injector) RegisterMetrics(r *metrics.Registry) {
	ctr := func(name, unit, help string, v *int64) {
		r.Int(metrics.Desc{Name: name, Unit: unit, Help: help, Kind: metrics.Counter},
			nil, func() int64 { return *v })
	}
	ctr("spritefs_faults_server_crashes_total", "crashes",
		"Server crash+restart events fired by the schedule.", &inj.st.ServerCrashes)
	ctr("spritefs_faults_client_crashes_total", "crashes",
		"Workstation crash events fired by the schedule.", &inj.st.ClientCrashes)
	ctr("spritefs_faults_partitions_total", "events",
		"Network partition windows opened.", &inj.st.Partitions)
	ctr("spritefs_faults_delay_windows_total", "events",
		"Latency-inflation windows opened.", &inj.st.DelayWindows)
	ctr("spritefs_faults_drop_windows_total", "events",
		"Packet-drop windows opened.", &inj.st.DropWindows)
	ctr("spritefs_faults_skipped_total", "events",
		"Scheduled events whose target did not exist at fire time.", &inj.st.Skipped)
	ctr("spritefs_faults_server_dirty_lost_bytes_total", "bytes",
		"Un-synced server-cache bytes destroyed by server crashes.", &inj.st.ServerDirtyLost)
	ctr("spritefs_faults_client_dirty_lost_bytes_total", "bytes",
		"Client delayed-write bytes destroyed by workstation crashes.", &inj.st.ClientDirtyLost)
	ctr("spritefs_faults_replayed_bytes_total", "bytes",
		"Dirty bytes replayed to restarted servers during driven recovery sweeps.", &inj.st.ReplayedBytes)
	r.Seconds(metrics.Desc{Name: "spritefs_faults_max_dirty_age_seconds",
		Help: "Age of the oldest dirty byte any injected crash destroyed — the delayed-write exposure bound.",
		Kind: metrics.Gauge},
		nil, func() time.Duration { return inj.st.MaxDirtyAge })
	r.Int(metrics.Desc{Name: "spritefs_faults_max_reopen_storm", Unit: "handles",
		Help: "Most handles re-registered against one server after a single restart.",
		Kind: metrics.Gauge},
		nil, func() int64 { return int64(inj.st.MaxReopenStorm) })
	r.Seconds(metrics.Desc{Name: "spritefs_faults_max_reconsistency_seconds",
		Help: "Worst crash-to-reconsistency interval across all injected server crashes.",
		Kind: metrics.Gauge},
		nil, func() time.Duration { return inj.st.MaxTimeToReconsistency })
}
