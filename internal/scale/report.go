package scale

import (
	"fmt"
	"time"

	"spritefs/internal/metrics"
	"spritefs/internal/stats"
)

// ShardSummary is one segment's row of the scale report.
type ShardSummary struct {
	Shard     int
	Site      int
	Clients   int
	FileOpens int64
	Recalls   int64
	CWSEvents int64
	NetBytes  int64
	// CacheHit is the segment's client read hit ratio, computed directly
	// from the client caches (not the metric registry) so it is available
	// in LeanMetrics runs too.
	CacheHit float64
	// NetUtil is the segment wire's busy fraction over the horizon — the
	// paper's "four percent of an Ethernet" check, per segment.
	NetUtil float64
	// ServerUtil is the server group's disk busy fraction over the
	// horizon, the closest thing the model has to server CPU saturation.
	ServerUtil float64
	Remote     RemoteStats
}

// Report is the deterministic summary of a finished run: identical bytes
// for equal seeds whatever the executor, worker count or GOMAXPROCS.
type Report struct {
	Shards   int
	Sites    int
	Clients  int
	Horizon  time.Duration
	PerShard []ShardSummary

	TotalOpens    int64
	TotalRecalls  int64
	TotalCWS      int64
	TotalNetBytes int64
	// CacheHit is the community-wide client read hit ratio.
	CacheHit float64
	// OpensPerSec is aggregate open throughput over the horizon — the
	// scale study's headline throughput number.
	OpensPerSec float64
	// RecallsPerHour is the aggregate dirty-data recall rate, the paper
	// mechanism that grows superlinearly when one community is not
	// sharded.
	RecallsPerHour float64

	RouterMsgs  int64
	RouterBytes int64
	RouterUtil  float64
	// WAN totals: traffic that crossed the inter-site trunk (all zero in
	// a flat topology).
	WANMsgs      int64
	WANBytes     int64
	WANUtil      float64
	CrossSiteOps int64
	Exec         ExecStats
}

// Report summarizes the finished run from the engine-wide registry and
// the component state the registry does not carry in lean runs.
func (e *Engine) Report() Report {
	if e.horizon <= 0 {
		panic("scale: Report before Run")
	}
	hours := e.horizon.Hours()
	secs := e.horizon.Seconds()
	r := Report{
		Shards:  len(e.Shards),
		Sites:   e.topo.Sites,
		Clients: e.Clients(),
		Horizon: e.horizon,
		Exec:    e.exec,
	}
	var reads, misses int64
	for i, sh := range e.Shards {
		sel := metrics.L("shard", fmt.Sprintf("%d", i))
		s := ShardSummary{
			Shard:     i,
			Site:      e.topo.SiteOf(i),
			Clients:   len(sh.C.Clients),
			FileOpens: e.Reg.SumInt("spritefs_server_file_opens_total", sel),
			Recalls:   e.Reg.SumInt("spritefs_server_recalls_total", sel),
			CWSEvents: e.Reg.SumInt("spritefs_server_cws_events_total", sel),
			NetBytes:  e.Reg.SumInt("spritefs_net_bytes_total", sel),
			Remote:    sh.remote,
		}
		var sr, sm int64
		for _, cl := range sh.C.Clients {
			st := cl.Cache.Stats()
			sr += st.All.ReadOps
			sm += st.All.ReadMisses
		}
		if sr > 0 {
			s.CacheHit = 1 - float64(sm)/float64(sr)
		}
		reads += sr
		misses += sm
		s.NetUtil = sh.C.Net.Busy().Seconds() / secs
		var diskBusy time.Duration
		for _, srv := range sh.C.Servers {
			if srv.Store != nil {
				diskBusy += srv.Store.Stats().DiskBusy
			}
		}
		s.ServerUtil = diskBusy.Seconds() / secs / float64(len(sh.C.Servers))
		r.PerShard = append(r.PerShard, s)

		r.TotalOpens += s.FileOpens
		r.TotalRecalls += s.Recalls
		r.TotalCWS += s.CWSEvents
		r.TotalNetBytes += s.NetBytes
		r.CrossSiteOps += sh.remote.CrossSiteOps
	}
	if reads > 0 {
		r.CacheHit = 1 - float64(misses)/float64(reads)
	}
	r.OpensPerSec = float64(r.TotalOpens) / secs
	r.RecallsPerHour = float64(r.TotalRecalls) / hours
	r.RouterMsgs = e.Router.Msgs()
	r.RouterBytes = e.Router.Bytes()
	r.RouterUtil = e.Router.Busy().Seconds() / secs
	wm, wb, wbusy := e.Router.TierTraffic(true)
	r.WANMsgs = wm
	r.WANBytes = wb
	r.WANUtil = wbusy.Seconds() / secs
	return r
}

// Table renders the report one row per shard plus a totals row.
func (r *Report) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Sharded cluster: %d clients over %d segments in %d sites, %v",
			r.Clients, r.Shards, r.Sites, r.Horizon),
		"shard", "site", "clients", "opens", "recalls", "cws", "hit%", "netMB", "net%", "disk%",
		"remote", "xsite", "rlat-ms")
	for _, s := range r.PerShard {
		var latMS float64
		if s.Remote.Latency.N() > 0 {
			latMS = s.Remote.Latency.Mean() / 1e6
		}
		t.AddRow(
			fmt.Sprintf("%d", s.Shard),
			fmt.Sprintf("%d", s.Site),
			fmt.Sprintf("%d", s.Clients),
			fmt.Sprintf("%d", s.FileOpens),
			fmt.Sprintf("%d", s.Recalls),
			fmt.Sprintf("%d", s.CWSEvents),
			fmt.Sprintf("%.1f", s.CacheHit*100),
			fmt.Sprintf("%.1f", float64(s.NetBytes)/(1<<20)),
			fmt.Sprintf("%.1f", s.NetUtil*100),
			fmt.Sprintf("%.1f", s.ServerUtil*100),
			fmt.Sprintf("%d", s.Remote.OpsIssued),
			fmt.Sprintf("%d", s.Remote.CrossSiteOps),
			fmt.Sprintf("%.2f", latMS))
	}
	var remoteOps, latN int64
	var latSum float64
	for _, s := range r.PerShard {
		remoteOps += s.Remote.OpsIssued
		latN += s.Remote.Latency.N()
		latSum += float64(s.Remote.Latency.N()) * s.Remote.Latency.Mean()
	}
	var latMS float64
	if latN > 0 {
		latMS = latSum / float64(latN) / 1e6
	}
	t.AddRow("all", "",
		fmt.Sprintf("%d", r.Clients),
		fmt.Sprintf("%d", r.TotalOpens),
		fmt.Sprintf("%d", r.TotalRecalls),
		fmt.Sprintf("%d", r.TotalCWS),
		fmt.Sprintf("%.1f", r.CacheHit*100),
		fmt.Sprintf("%.1f", float64(r.TotalNetBytes)/(1<<20)),
		"", "",
		fmt.Sprintf("%d", remoteOps),
		fmt.Sprintf("%d", r.CrossSiteOps),
		fmt.Sprintf("%.2f", latMS))
	return t
}

// ExecTable renders the executor/router bookkeeping.
func (r *Report) ExecTable() *stats.Table {
	t := stats.NewTable("Channel-clock executor", "counter", "value")
	t.AddRow("rounds", fmt.Sprintf("%d", r.Exec.Rounds))
	t.AddRow("messages routed", fmt.Sprintf("%d", r.Exec.Routed))
	t.AddRow("backbone bytes", fmt.Sprintf("%d", r.Exec.RoutedBytes))
	t.AddRow("null advances", fmt.Sprintf("%d", r.Exec.NullAdvances))
	t.AddRow("stall rescues", fmt.Sprintf("%d", r.Exec.Rescues))
	t.AddRow("message allocs", fmt.Sprintf("%d", r.Exec.MsgAllocs))
	t.AddRow("undelivered at end", fmt.Sprintf("%d", r.Exec.Undelivered))
	t.AddRow("router messages", fmt.Sprintf("%d", r.RouterMsgs))
	t.AddRow("router utilization %", fmt.Sprintf("%.2f", r.RouterUtil*100))
	t.AddRow("wan messages", fmt.Sprintf("%d", r.WANMsgs))
	t.AddRow("wan bytes", fmt.Sprintf("%d", r.WANBytes))
	t.AddRow("wan utilization %", fmt.Sprintf("%.2f", r.WANUtil*100))
	return t
}
