// Package stats provides the statistical machinery used throughout the
// reproduction: streaming mean/standard-deviation accumulators, log-bucketed
// histograms and CDFs (count- and byte-weighted, as used by Figures 1-4 of
// the paper), fixed-width interval aggregation (Table 2), named counter sets
// (the "approximately 50 kernel counters" of Section 3), and plain-text
// table rendering for the experiment reports.
package stats

import "math"

// Welford accumulates a running mean and variance using Welford's
// online algorithm. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddN incorporates the observation x with integer weight k (k identical
// observations). k <= 0 is a no-op.
func (w *Welford) AddN(x float64, k int64) {
	for i := int64(0); i < k; i++ {
		w.Add(x)
	}
}

// Merge folds the observations of other into w.
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n := w.n + other.n
	d := other.mean - w.mean
	mean := w.mean + d*float64(other.n)/float64(n)
	m2 := w.m2 + other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	mn, mx := w.min, w.max
	if other.min < mn {
		mn = other.min
	}
	if other.max > mx {
		mx = other.max
	}
	*w = Welford{n: n, mean: mean, m2: m2, min: mn, max: mx}
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Sum returns the sum of all observations.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// Var returns the population variance, or 0 with fewer than two observations.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation, or 0 with no observations.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 with no observations.
func (w *Welford) Max() float64 { return w.max }
