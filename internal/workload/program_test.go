package workload

import (
	"testing"
	"time"

	"spritefs/internal/server"
	"spritefs/internal/sim"
)

// genRig builds an engine solely to exercise the program generators.
func genRig(t *testing.T, seed int64) (*Engine, *userState) {
	t.Helper()
	p := smallParams(seed)
	p.BigSimUsers = 1
	srv := server.New(0)
	s := sim.New(seed)
	hosts := map[int32]Host{}
	for i := 0; i < p.NumClients; i++ {
		hosts[int32(i)] = newFakeHost(int32(i), srv, s)
	}
	reg := Bootstrap(p, []*server.Server{srv}, sim.NewRand(seed+1))
	e := NewEngine(s, p, reg, hosts)
	return e, e.users[0]
}

// checkProgram validates the structural invariants every generated op
// program must satisfy.
func checkProgram(t *testing.T, name string, ops []op) {
	t.Helper()
	if len(ops) == 0 {
		t.Fatalf("%s: empty program", name)
	}
	if ops[0].kind != opExec {
		t.Errorf("%s: does not start with exec", name)
	}
	if ops[len(ops)-1].kind != opExit {
		t.Errorf("%s: does not end with exit", name)
	}
	open := map[int]bool{}
	created := map[int]bool{}
	for i, o := range ops {
		switch o.kind {
		case opOpen:
			if open[o.slot] {
				t.Errorf("%s: op %d reopens live handle slot %d", name, i, o.slot)
			}
			open[o.slot] = true
			if o.file.slot >= 0 && !created[o.file.slot] {
				t.Errorf("%s: op %d opens file slot %d before create", name, i, o.file.slot)
			}
		case opClose:
			if !open[o.slot] {
				t.Errorf("%s: op %d closes slot %d that is not open", name, i, o.slot)
			}
			open[o.slot] = false
		case opRead, opWrite, opSeek, opFsync:
			if !open[o.slot] {
				t.Errorf("%s: op %d (%d) on closed slot %d", name, i, o.kind, o.slot)
			}
			if o.kind == opRead && o.bytes == 0 {
				t.Errorf("%s: op %d zero-byte read", name, i)
			}
			if o.kind == opWrite && o.bytes <= 0 {
				t.Errorf("%s: op %d non-positive write", name, i)
			}
		case opCreate:
			created[o.slot] = true
		case opDelete, opTruncate:
			if o.file.slot >= 0 && !created[o.file.slot] {
				t.Errorf("%s: op %d deletes file slot %d before create", name, i, o.file.slot)
			}
		case opThink:
			if o.dur < 0 {
				t.Errorf("%s: op %d negative think", name, i)
			}
		}
	}
	for slot, isOpen := range open {
		if isOpen {
			t.Errorf("%s: handle slot %d left open at exit", name, slot)
		}
	}
}

func TestGeneratorsProduceWellFormedPrograms(t *testing.T) {
	e, u := genRig(t, 5)
	sharedFile, _ := e.reg.RandomShared(e.rng, u.group)
	gens := map[string]func() ([]op, float64){
		"edit":       func() ([]op, float64) { return e.genEdit(u) },
		"compile":    func() ([]op, float64) { return e.genCompile(u, true) },
		"compileNL":  func() ([]op, float64) { return e.genCompile(u, false) },
		"kernelread": func() ([]op, float64) { return e.genKernelRead(u) },
		"mail":       func() ([]op, float64) { return e.genMail(u) },
		"doc":        func() ([]op, float64) { return e.genDoc(u) },
		"sim":        func() ([]op, float64) { return e.genSim(u, 1) },
		"bigsim":     func() ([]op, float64) { return e.genBigSim(u, e.reg.BigInputs[0]) },
		"randomdb":   func() ([]op, float64) { return e.genRandomDB(u) },
		"dirlist":    func() ([]op, float64) { return e.genDirList(u) },
		"grep":       func() ([]op, float64) { return e.genGrep(u) },
		"sharedw":    func() ([]op, float64) { return e.genSharedLogWrite(u, sharedFile) },
		"sharedr":    func() ([]op, float64) { return e.genSharedRead(u, sharedFile) },
	}
	for name, gen := range gens {
		// Draw several programs per generator: sizes and branches vary.
		for rep := 0; rep < 25; rep++ {
			ops, rate := gen()
			if rate <= 0 {
				t.Fatalf("%s: non-positive rate", name)
			}
			checkProgram(t, name, ops)
		}
	}
}

func TestBuilderSlotAccounting(t *testing.T) {
	b := newBuilder(0)
	if b.chunk <= 0 {
		t.Fatal("default chunk not set")
	}
	f := b.create(false)
	h := b.open(slotFile(f), true, true)
	b.readSeq(h, 3*256*1024) // chunked into 3 reads
	b.write(h, 100)
	b.close(h)
	b.deleteFile(slotFile(f))
	ops := b.exit()
	if countSlots(ops) != 1 || countFileSlots(ops) != 1 {
		t.Errorf("slots: handles=%d files=%d", countSlots(ops), countFileSlots(ops))
	}
	reads := 0
	for _, o := range ops {
		if o.kind == opRead {
			reads++
		}
	}
	if reads != 3 {
		t.Errorf("readSeq produced %d reads, want 3", reads)
	}
}

func TestReadSeqChunking(t *testing.T) {
	b := newBuilder(1000)
	h := b.open(staticFile(1), true, false)
	b.readSeq(h, 2500)
	var sizes []int64
	for _, o := range b.ops {
		if o.kind == opRead {
			sizes = append(sizes, o.bytes)
		}
	}
	if len(sizes) != 3 || sizes[0] != 1000 || sizes[2] != 500 {
		t.Errorf("chunks = %v", sizes)
	}
}

func TestFileRefResolution(t *testing.T) {
	pr := &program{files: []uint64{0, 42}}
	if got := pr.resolve(staticFile(7)); got != 7 {
		t.Errorf("static resolve = %d", got)
	}
	if got := pr.resolve(slotFile(1)); got != 42 {
		t.Errorf("slot resolve = %d", got)
	}
}

func TestEngineHeavySharingStillBalanced(t *testing.T) {
	// Sanity at the engine level with a sharing-heavy mix and away
	// sessions: opens and closes must balance through aborts, evictions
	// and truncations.
	p := smallParams(21)
	p.AwaySessionProb = 0.5
	for g := Group(0); g < NumGroups; g++ {
		p.AppMix[g][AppSharedLog] = 50
	}
	srv := server.New(0)
	s := sim.New(p.Seed)
	hosts := map[int32]Host{}
	fakes := []*fakeHost{}
	for i := 0; i < p.NumClients; i++ {
		fh := newFakeHost(int32(i), srv, s)
		fakes = append(fakes, fh)
		hosts[int32(i)] = fh
	}
	reg := Bootstrap(p, []*server.Server{srv}, sim.NewRand(p.Seed+1))
	e := NewEngine(s, p, reg, hosts)
	e.Run(2 * time.Hour)
	s.RunUntil(3 * time.Hour)
	opens, closes := 0, 0
	for _, f := range fakes {
		opens += f.opens
		closes += f.closes
	}
	if opens == 0 || opens != closes {
		t.Errorf("opens=%d closes=%d", opens, closes)
	}
}
