package sim

import (
	"math"
	"math/rand"
	"time"
)

// Rand wraps math/rand with the distributions the workload model needs:
// exponential inter-arrival times, log-normal file sizes, bounded Pareto
// tails for the multi-megabyte files the paper highlights, and weighted
// discrete choices for application and access-type mixes.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent deterministic stream from this one. Used to
// give each simulated client its own stream so that adding a client does
// not perturb the others' sequences.
func (g *Rand) Fork() *Rand { return NewRand(g.r.Int63()) }

// Float64 returns a uniform value in [0,1).
func (g *Rand) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform int in [0,n). n must be positive.
func (g *Rand) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform int64 in [0,n). n must be positive.
func (g *Rand) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Bool returns true with probability p.
func (g *Rand) Bool(p float64) bool { return g.r.Float64() < p }

// Range returns a uniform value in [lo, hi).
func (g *Rand) Range(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Exp returns an exponentially distributed value with the given mean.
func (g *Rand) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// ExpDur returns an exponentially distributed duration with the given mean.
func (g *Rand) ExpDur(mean time.Duration) time.Duration {
	return time.Duration(g.Exp(float64(mean)))
}

// LogNormal returns a log-normal value with the given median and log-space
// standard deviation sigma (natural log). The mean is median*exp(sigma²/2).
func (g *Rand) LogNormal(median, sigma float64) float64 {
	return median * math.Exp(sigma*g.r.NormFloat64())
}

// Pareto returns a Pareto-distributed value with scale xm (minimum) and
// shape alpha. Smaller alpha gives heavier tails; the paper's large-file
// regime corresponds to alpha near 1.
func (g *Rand) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto returns a Pareto(xm, alpha) value truncated to [xm, max]
// by inverse-CDF sampling of the bounded distribution.
func (g *Rand) BoundedPareto(xm, max, alpha float64) float64 {
	if max <= xm {
		return xm
	}
	u := g.r.Float64()
	ha := math.Pow(xm/max, alpha)
	return xm / math.Pow(1-u*(1-ha), 1/alpha)
}

// Normal returns a normal value with the given mean and standard deviation.
func (g *Rand) Normal(mean, sd float64) float64 {
	return mean + sd*g.r.NormFloat64()
}

// Pick returns an index in [0,len(weights)) chosen with probability
// proportional to the weights. All-zero or empty weights return 0.
func (g *Rand) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0,n).
func (g *Rand) Perm(n int) []int { return g.r.Perm(n) }

// Jitter returns d scaled by a uniform factor in [1-f, 1+f]. It keeps
// periodic behaviours (think-times, daemon offsets) from phase-locking.
func (g *Rand) Jitter(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * g.Range(1-f, 1+f))
}
