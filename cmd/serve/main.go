// Command serve runs the reproduction as a live service: the simulated
// Sprite server group on wall-clock time, a fleet of client agents driving
// open/read/write/close/getattr traffic at a target rate, and the metric
// registry exported live over HTTP in Prometheus text format.
//
// A 10-second soak with 64 agents at 200 requests/second:
//
//	serve -clients 64 -rate 200 -duration 10s
//
// Serve until SIGINT, scraping metrics from another terminal:
//
//	serve -clients 16 -rate 50 -listen 127.0.0.1:9100
//	curl http://127.0.0.1:9100/metrics
//
// Replay a captured trace's shape instead of generated load, over the TCP
// transport:
//
//	serve -clients 8 -rate 100 -duration 30s -trace trace1.srv0 -transport tcp
//
// The run ends with a per-verb latency/throughput report (wall-clock
// p50/p95/p99). -bench-json additionally writes the headline numbers as a
// JSON record for the perf-trajectory files.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"spritefs/internal/live"
	"spritefs/internal/prof"
	"spritefs/internal/shutdown"
	"spritefs/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

// validTransports lists the -transport values, flagScope-style: the flag
// check fails fast on anything else instead of silently defaulting.
var validTransports = []string{"inproc", "tcp"}

// validateFlags rejects contradictory or out-of-range flag combinations
// before anything is built (the cmd/experiments flagScope discipline).
func validateFlags(clients int, rate float64, duration, deadline time.Duration,
	transport string, set map[string]bool) error {
	if clients < 1 {
		return fmt.Errorf("-clients must be at least 1 (got %d)", clients)
	}
	if rate <= 0 {
		return fmt.Errorf("-rate must be positive (got %g)", rate)
	}
	if duration < 0 {
		return fmt.Errorf("-duration must be non-negative (0 = run until SIGINT, got %v)", duration)
	}
	if deadline <= 0 {
		return fmt.Errorf("-deadline must be positive (got %v)", deadline)
	}
	known := false
	for _, t := range validTransports {
		if transport == t {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown -transport %q (want %s)", transport, strings.Join(validTransports, " or "))
	}
	if set["bench-json"] && duration == 0 {
		return fmt.Errorf("-bench-json needs a bounded run; set -duration")
	}
	return nil
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		clients   = fs.Int("clients", 8, "client agents driving load")
		rate      = fs.Float64("rate", 50, "aggregate request rate (requests/second across the fleet)")
		duration  = fs.Duration("duration", 0, "soak length; 0 runs until SIGINT/SIGTERM")
		listen    = fs.String("listen", "127.0.0.1:0", "HTTP listen address for /metrics and /healthz")
		tracePath = fs.String("trace", "", "replay this trace file's shape instead of generated load")
		transport = fs.String("transport", "inproc", "agent transport: inproc | tcp")
		deadline  = fs.Duration("deadline", 2*time.Second, "per-request deadline (retries included)")
		seed      = fs.Int64("seed", 1, "file-population and agent RNG seed")
		benchJSON = fs.String("bench-json", "", "write headline throughput/latency numbers to this JSON file")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the soak to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile (taken at drain) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlags(*clients, *rate, *duration, *deadline, *transport, set); err != nil {
		return err
	}

	var replayRecs []trace.Record
	if *tracePath != "" {
		replayRecs, err = loadTrace(*tracePath)
		if err != nil {
			return err
		}
		if len(replayRecs) == 0 {
			return fmt.Errorf("-trace %s holds no records", *tracePath)
		}
	}

	pp, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if serr := pp.Stop(); err == nil {
			err = serr
		}
	}()

	svc, err := live.NewService(live.ServiceConfig{Agents: *clients, Seed: *seed})
	if err != nil {
		return err
	}
	counters := live.NewCounters(*clients)
	counters.RegisterMetrics(svc.Cluster.Reg)
	if err := svc.Start(); err != nil {
		return err
	}
	drained := false
	defer func() {
		if !drained {
			svc.Drain()
		}
	}()

	httpSrv, err := live.ServeHTTP(*listen, svc.WC, svc.Cluster.Reg)
	if err != nil {
		return err
	}
	defer httpSrv.Close()
	fmt.Fprintf(out, "serve: metrics on http://%s/metrics  (healthz: /healthz)\n", httpSrv.Addr())

	fleet := live.NewFleet(live.FleetConfig{
		Agents:   *clients,
		Rate:     *rate,
		Deadline: *deadline,
		Seed:     *seed,
		Replay:   replayRecs,
	}, svc, counters)
	var tcpSrv *live.TCPServer
	if *transport == "tcp" {
		d := live.NewDispatcher(svc.WC, svc.Exec)
		d.OnRetry(counters.Retry)
		tcpSrv, err = live.ServeTCP("127.0.0.1:0", d)
		if err != nil {
			return err
		}
		defer tcpSrv.Close()
		addr := tcpSrv.Addr()
		fmt.Fprintf(out, "serve: rpc on tcp://%s\n", addr)
		fleet.DialVia(func(int) (live.Transport, error) { return live.DialTCP(addr) })
	}

	mode := "generated"
	if len(replayRecs) > 0 {
		mode = fmt.Sprintf("replay of %d records", len(replayRecs))
	}
	fmt.Fprintf(out, "serve: %d agents, %.0f req/s (%s load, %s transport)\n",
		*clients, *rate, mode, *transport)

	start := time.Now()
	if err := fleet.Start(); err != nil {
		return err
	}

	// Graceful drain: a signal or the -duration timer ends the soak; the
	// fleet finishes in-flight requests, the report prints, and the
	// deferred profile stop still runs (a -cpuprofile of an interrupted
	// soak stays loadable).
	sig, stopSig := shutdown.Notify()
	defer stopSig()
	var timerC <-chan time.Time
	if *duration > 0 {
		t := time.NewTimer(*duration)
		defer t.Stop()
		timerC = t.C
	}
	select {
	case <-timerC:
	case s := <-sig:
		fmt.Fprintf(out, "serve: %v — draining\n", s)
	}
	fleet.Stop()
	elapsed := time.Since(start)

	rep := live.BuildReport(counters, elapsed)
	fmt.Fprintln(out, rep.Table())

	httpSrv.Close()
	if tcpSrv != nil {
		tcpSrv.Close()
	}
	svc.Drain()
	drained = true

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *clients, *rate, rep); err != nil {
			return err
		}
	}
	return nil
}

// benchRecord is the machine-readable soak summary, shaped like the other
// BENCH_*.json perf-trajectory files.
type benchRecord struct {
	Name           string  `json:"name"`
	Clients        int     `json:"clients"`
	TargetRate     float64 `json:"target_rate_rps"`
	DurationS      float64 `json:"duration_s"`
	Requests       int64   `json:"requests"`
	Errors         int64   `json:"errors"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P99Ns          int64   `json:"p99_ns"`
}

func writeBenchJSON(path string, clients int, rate float64, rep *live.Report) error {
	rec := benchRecord{
		Name:           "live_soak",
		Clients:        clients,
		TargetRate:     rate,
		DurationS:      rep.Elapsed.Seconds(),
		Requests:       rep.Requests,
		Errors:         rep.Errors,
		RequestsPerSec: rep.Throughput(),
		P99Ns:          rep.P99().Nanoseconds(),
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// loadTrace reads one trace file (binary or text, sniffed from the first
// byte like cmd/replay) fully into memory.
func loadTrace(path string) ([]trace.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var s trace.Stream
	if first[0] == '#' {
		s, err = trace.NewTextReader(br)
	} else {
		s, err = trace.NewReader(br)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	recs, err := trace.Collect(s)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}
