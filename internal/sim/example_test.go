package sim_test

import (
	"fmt"
	"time"

	"spritefs/internal/sim"
)

// Demonstrates the deterministic event loop that every cluster runs on:
// events fire in virtual-time order, periodic daemons via Every, and the
// whole run is a pure function of the seed.
func ExampleSim() {
	s := sim.New(42)
	s.After(2*time.Second, func() { fmt.Println("writeback at", s.Now()) })
	ticker := s.Every(0, time.Second, func() { fmt.Println("daemon at", s.Now()) })
	s.RunUntil(2 * time.Second)
	ticker.Stop()
	// Output:
	// daemon at 0s
	// daemon at 1s
	// writeback at 2s
	// daemon at 2s
}
