package live

import (
	"fmt"
	"time"

	"spritefs/internal/stats"
)

// Report summarizes a finished soak: per-verb counts, error counts, and
// wall-latency mean/p50/p95/p99, plus aggregate throughput.
type Report struct {
	Elapsed  time.Duration
	Requests int64
	Errors   int64
	Timeouts int64
	Retries  int64
	// PerVerb rows in verb order; verbs with no traffic are omitted.
	PerVerb []VerbStats
}

// VerbStats is one verb's latency summary. Latencies are wall-clock.
type VerbStats struct {
	Verb   Verb
	Count  int64
	Errors int64
	Mean   time.Duration
	P50    time.Duration
	P95    time.Duration
	P99    time.Duration
}

// Throughput returns completed requests per second over the elapsed window.
func (r *Report) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// P99 returns the worst per-verb p99 (the headline tail number; zero with
// no traffic).
func (r *Report) P99() time.Duration {
	var worst time.Duration
	for _, v := range r.PerVerb {
		if v.P99 > worst {
			worst = v.P99
		}
	}
	return worst
}

// BuildReport snapshots the counters after elapsed wall time of load.
func BuildReport(c *Counters, elapsed time.Duration) *Report {
	r := &Report{
		Elapsed:  elapsed,
		Requests: c.Requests(),
		Errors:   c.Errors(),
		Timeouts: c.timeouts.Load(),
		Retries:  c.retries.Load(),
	}
	for v := Verb(0); v < NumVerbs; v++ {
		n := c.requests[v].Load()
		if n == 0 {
			continue
		}
		w, h := c.wallSnapshot(v)
		r.PerVerb = append(r.PerVerb, VerbStats{
			Verb:   v,
			Count:  n,
			Errors: c.errors[v].Load(),
			Mean:   time.Duration(w.Mean()),
			P50:    time.Duration(h.Quantile(0.50)),
			P95:    time.Duration(h.Quantile(0.95)),
			P99:    time.Duration(h.Quantile(0.99)),
		})
	}
	return r
}

// fmtLat renders a latency with sub-millisecond resolution kept readable.
func fmtLat(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

// Table renders the report as a paper-style text table.
func (r *Report) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Live soak: %d requests in %.1fs (%.1f req/s, %d errors, %d timeouts, %d retries)",
			r.Requests, r.Elapsed.Seconds(), r.Throughput(), r.Errors, r.Timeouts, r.Retries),
		"verb", "count", "errors", "mean", "p50", "p95", "p99")
	for _, v := range r.PerVerb {
		t.AddRow(v.Verb.String(),
			fmt.Sprintf("%d", v.Count),
			fmt.Sprintf("%d", v.Errors),
			fmtLat(v.Mean), fmtLat(v.P50), fmtLat(v.P95), fmtLat(v.P99))
	}
	return t
}
