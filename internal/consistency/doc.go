// Package consistency implements the paper's two trace-driven consistency
// studies: the Section 5.5 stale-data simulator, which estimates how many
// errors a weaker, NFS-style polling scheme would have produced (Table 11),
// and the Section 5.6 overhead simulator, which compares Sprite's
// disable-caching scheme with a modified variant and a token-based scheme
// on the write-shared portion of the traces (Table 12).
package consistency
