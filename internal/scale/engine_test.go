package scale_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/scale"
	"spritefs/internal/workload"
)

// testConfig is a small sharded topology that still exercises every code
// path: multiple shards, remote traffic, barriers.
func testConfig(seed int64, shards int) scale.Config {
	p := workload.Default(seed)
	p.NumClients = 8 * shards
	p.DailyUsers = 6 * shards
	p.OccasionalUsers = 2 * shards
	p.BigSimUsers = 1
	return scale.Config{
		Base:            p,
		Shards:          shards,
		ServersPerShard: 2,
	}
}

// fingerprint renders everything the byte-identity guarantee covers: the
// report tables and the full Prometheus metrics dump.
func fingerprint(t *testing.T, e *scale.Engine) string {
	t.Helper()
	r := e.Report()
	var buf bytes.Buffer
	buf.WriteString(r.Table().String())
	buf.WriteString(r.ExecTable().String())
	if err := e.Reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

// TestParallelMatchesSequential pins the tentpole guarantee: the parallel
// executor produces byte-identical reports and metric dumps to the
// sequential executor for equal seeds, at 1, 4 and 8 workers. `make
// scalecheck` runs this under -race.
func TestParallelMatchesSequential(t *testing.T) {
	const horizon = 30 * time.Minute
	seq := scale.MustNew(testConfig(42, 4))
	seqStats := seq.Run(scale.RunOptions{Horizon: horizon})
	if seqStats.Workers != 0 {
		t.Fatalf("sequential run reported %d workers", seqStats.Workers)
	}
	want := fingerprint(t, seq)
	if seqStats.Exec.Routed == 0 {
		t.Fatal("no cross-shard messages were exchanged; the test exercises nothing")
	}

	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			par := scale.MustNew(testConfig(42, 4))
			st := par.Run(scale.RunOptions{Horizon: horizon, Parallel: true, Workers: workers})
			if st.Workers < 1 {
				t.Fatalf("parallel run reported %d workers", st.Workers)
			}
			if got := fingerprint(t, par); got != want {
				t.Errorf("parallel (workers=%d) output differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
					workers, want, got)
			}
			if st.Exec != seqStats.Exec {
				t.Errorf("exec stats differ: sequential %+v parallel %+v", seqStats.Exec, st.Exec)
			}
		})
	}
}

// TestDeterministicAcrossRuns pins run-to-run determinism of the whole
// stack for a fixed executor.
func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		e := scale.MustNew(testConfig(7, 3))
		e.Run(scale.RunOptions{Horizon: 20 * time.Minute, Parallel: true})
		return fingerprint(t, e)
	}
	if a, b := run(), run(); a != b {
		t.Error("two runs with equal seeds produced different output")
	}
	e := scale.MustNew(testConfig(8, 3))
	e.Run(scale.RunOptions{Horizon: 20 * time.Minute, Parallel: true})
	if fingerprint(t, e) == run() {
		t.Error("different seeds produced identical output; fingerprint is insensitive")
	}
}

// TestSingleShardMatchesCluster pins that a 1-shard topology is the plain
// cluster: no remote traffic is generated, no extra rng draws happen, and
// the per-shard aggregates equal a direct cluster.Run with the same
// parameters.
func TestSingleShardMatchesCluster(t *testing.T) {
	const horizon = 30 * time.Minute
	p := workload.Default(11)
	p.NumClients = 10
	p.DailyUsers = 7
	p.OccasionalUsers = 2
	p.BigSimUsers = 1

	e := scale.MustNew(scale.Config{Base: p, Shards: 1, ServersPerShard: 2})
	e.Run(scale.RunOptions{Horizon: horizon})
	rep := e.Report()
	if rep.RouterMsgs != 0 || rep.PerShard[0].Remote.OpsIssued != 0 {
		t.Fatalf("single-shard run generated remote traffic: %+v", rep.PerShard[0].Remote)
	}

	ccfg := cluster.DefaultConfig(workload.Split(p, 1, 0))
	ccfg.CollectTrace = false
	ccfg.SamplePeriod = 0
	ccfg.NumServers = 2
	c := cluster.New(ccfg)
	c.Run(horizon)

	var opens, recalls int64
	for _, srv := range c.Servers {
		st := srv.Stats()
		opens += st.FileOpens
		recalls += st.Recalls
	}
	if rep.TotalOpens != opens {
		t.Errorf("opens: scale %d, cluster %d", rep.TotalOpens, opens)
	}
	if rep.TotalRecalls != recalls {
		t.Errorf("recalls: scale %d, cluster %d", rep.TotalRecalls, recalls)
	}
}

// TestConfigValidation pins the declarative config's guard rails.
func TestConfigValidation(t *testing.T) {
	if _, err := scale.New(scale.Config{Base: workload.Default(1)}); err == nil {
		t.Error("Shards=0 accepted")
	}
	bad := testConfig(1, 2)
	bad.Router.Latency = -time.Millisecond
	bad.Router.BandwidthBps = 1e6
	if _, err := scale.New(bad); err == nil {
		t.Error("negative router latency accepted")
	}
	tiny := testConfig(1, 2)
	tiny.Base.NumClients = 1
	tiny.Base.DailyUsers = 1
	tiny.Base.OccasionalUsers = 0
	tiny.Base.BigSimUsers = 0
	if _, err := scale.New(tiny); err == nil {
		t.Error("fewer clients than shards accepted")
	}
}

// TestRemoteTrafficFlows sanity-checks the remote path end to end: ops
// issued are served and replied to, bytes move, latency is recorded.
func TestRemoteTrafficFlows(t *testing.T) {
	e := scale.MustNew(testConfig(3, 2))
	e.Run(scale.RunOptions{Horizon: time.Hour})
	rep := e.Report()

	var issued, served, replies int64
	for _, s := range rep.PerShard {
		issued += s.Remote.OpsIssued
		served += s.Remote.OpsServed
		replies += s.Remote.Replies
	}
	if issued == 0 {
		t.Fatal("no remote operations issued in an hour")
	}
	if served != issued {
		t.Errorf("issued %d but served %d", issued, served)
	}
	if replies != issued {
		t.Errorf("issued %d but completed %d (undelivered: %d)", issued, replies, rep.Exec.Undelivered)
	}
	if rep.RouterMsgs != issued+replies {
		t.Errorf("router carried %d messages, want %d", rep.RouterMsgs, issued+replies)
	}
	for _, s := range rep.PerShard {
		if s.Remote.Replies > 0 && s.Remote.Latency.Mean() <= 0 {
			t.Errorf("shard %d: replies recorded but latency mean %v", s.Shard, s.Remote.Latency.Mean())
		}
	}
}

// TestEngineRunsOnce pins single-use enforcement.
func TestEngineRunsOnce(t *testing.T) {
	e := scale.MustNew(testConfig(5, 2))
	e.Run(scale.RunOptions{Horizon: 10 * time.Minute})
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	e.Run(scale.RunOptions{Horizon: 10 * time.Minute})
}
