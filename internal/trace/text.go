package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Text codec: a tab-separated, line-oriented rendering of the binary
// format, for debugging, grepping and interoperability with external
// tooling (awk, gnuplot). One record per line:
//
//	time_ns  kind  flags  server  client  user  proc  file  handle  offset  length  size
//
// The first line is a header beginning with '#'. Fields are decimal except
// file and handle, which are hex.

// textHeader identifies a text-format trace. Version-1 streams use the
// bare header (backward compatible); higher versions append "\tv<N>".
const textHeader = "#sprtrc\ttime_ns\tkind\tflags\tserver\tclient\tuser\tproc\tfile\thandle\toffset\tlength\tsize"

// TextWriter encodes records as text lines.
type TextWriter struct {
	w   *bufio.Writer
	n   int64
	ver uint16
	err error
}

// NewTextWriter writes the version-1 header line and returns a text encoder.
func NewTextWriter(w io.Writer) (*TextWriter, error) {
	return NewTextWriterVersion(w, version)
}

// NewTextWriterVersion is NewTextWriter with an explicit header version in
// [1, MaxVersion]. Versions above 1 append a "v<N>" column to the header
// line; the record lines are identical across versions.
func NewTextWriterVersion(w io.Writer, ver uint16) (*TextWriter, error) {
	if ver < 1 || ver > MaxVersion {
		return nil, fmt.Errorf("trace: cannot write version %d (supported: 1..%d)", ver, MaxVersion)
	}
	hdr := textHeader
	if ver > 1 {
		hdr += fmt.Sprintf("\tv%d", ver)
	}
	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.WriteString(hdr + "\n"); err != nil {
		return nil, fmt.Errorf("trace: writing text header: %w", err)
	}
	return &TextWriter{w: bw, ver: ver}, nil
}

// Version returns the header version this writer stamped.
func (t *TextWriter) Version() uint16 { return t.ver }

// Write appends one record as a line. Errors are sticky.
func (t *TextWriter) Write(r *Record) error {
	if t.err != nil {
		return t.err
	}
	_, err := fmt.Fprintf(t.w, "%d\t%s\t%d\t%d\t%d\t%d\t%d\t%x\t%x\t%d\t%d\t%d\n",
		r.Time.Nanoseconds(), r.Kind, r.Flags, r.Server, r.Client, r.User, r.Proc,
		r.File, r.Handle, r.Offset, r.Length, r.Size)
	if err != nil {
		t.err = fmt.Errorf("trace: writing text record: %w", err)
	}
	t.n++
	return t.err
}

// Count returns records written.
func (t *TextWriter) Count() int64 { return t.n }

// Flush flushes buffered output.
func (t *TextWriter) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// kindByName inverts the Kind names for parsing.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, int(kindMax))
	for k := Kind(1); k < kindMax; k++ {
		m[k.String()] = k
	}
	return m
}()

// TextReader decodes text-format traces. It implements Stream.
type TextReader struct {
	s    *bufio.Scanner
	ver  uint16
	line int
}

// NewTextReader validates the header and returns a reader.
func NewTextReader(r io.Reader) (*TextReader, error) {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !s.Scan() {
		if err := s.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty text trace")
	}
	if !strings.HasPrefix(s.Text(), "#sprtrc") {
		return nil, fmt.Errorf("trace: not a text trace (header %q)", s.Text())
	}
	ver := version
	fields := strings.Split(strings.TrimRight(s.Text(), "\n"), "\t")
	if last := fields[len(fields)-1]; len(last) > 1 && last[0] == 'v' {
		v, err := strconv.ParseUint(last[1:], 10, 16)
		if err != nil || v < 1 || uint16(v) > MaxVersion {
			return nil, fmt.Errorf("trace: unsupported text-trace version %q", last)
		}
		ver = uint16(v)
	}
	return &TextReader{s: s, ver: ver, line: 1}, nil
}

// Version returns the header version declared by the stream.
func (t *TextReader) Version() uint16 { return t.ver }

// Next returns the next record or io.EOF.
func (t *TextReader) Next() (Record, error) {
	for {
		if !t.s.Scan() {
			if err := t.s.Err(); err != nil {
				return Record{}, err
			}
			return Record{}, io.EOF
		}
		t.line++
		line := strings.TrimSpace(t.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseTextRecord(line)
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: %w", t.line, err)
		}
		return rec, nil
	}
}

func parseTextRecord(line string) (Record, error) {
	fields := strings.Split(line, "\t")
	if len(fields) != 12 {
		return Record{}, fmt.Errorf("want 12 fields, got %d", len(fields))
	}
	var rec Record
	ns, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("time: %w", err)
	}
	rec.Time = time.Duration(ns)
	kind, ok := kindByName[fields[1]]
	if !ok {
		return Record{}, fmt.Errorf("unknown kind %q", fields[1])
	}
	rec.Kind = kind
	flags, err := strconv.ParseUint(fields[2], 10, 8)
	if err != nil {
		return Record{}, fmt.Errorf("flags: %w", err)
	}
	rec.Flags = uint8(flags)
	ints := [6]struct {
		idx  int
		bits int
		dst  func(int64)
	}{
		{3, 16, func(v int64) { rec.Server = int16(v) }},
		{4, 32, func(v int64) { rec.Client = int32(v) }},
		{5, 32, func(v int64) { rec.User = int32(v) }},
		{6, 32, func(v int64) { rec.Proc = int32(v) }},
		{9, 64, func(v int64) { rec.Offset = v }},
		{10, 64, func(v int64) { rec.Length = v }},
	}
	for _, f := range ints {
		v, err := strconv.ParseInt(fields[f.idx], 10, f.bits)
		if err != nil {
			return Record{}, fmt.Errorf("field %d: %w", f.idx, err)
		}
		f.dst(v)
	}
	if rec.File, err = strconv.ParseUint(fields[7], 16, 64); err != nil {
		return Record{}, fmt.Errorf("file: %w", err)
	}
	if rec.Handle, err = strconv.ParseUint(fields[8], 16, 64); err != nil {
		return Record{}, fmt.Errorf("handle: %w", err)
	}
	if rec.Size, err = strconv.ParseInt(fields[11], 10, 64); err != nil {
		return Record{}, fmt.Errorf("size: %w", err)
	}
	return rec, nil
}
