package analysis

import (
	"time"

	"spritefs/internal/stats"
	"spritefs/internal/trace"
)

// ActivityRow is one column-group of Table 2 for one interval width.
type ActivityRow struct {
	AvgActiveUsers float64
	SDActiveUsers  float64
	MaxActiveUsers int
	// Per-active-user throughput in Kbytes/second averaged over
	// user-intervals, with the standard deviation across user-intervals.
	AvgThroughputKBs float64
	SDThroughputKBs  float64
	PeakUserKBs      float64
	PeakTotalKBs     float64
}

// UserActivity reproduces Table 2: the traces are divided into 10-minute
// and 10-second intervals; a user is active in an interval if any trace
// record appeared for them, and throughput is the bytes they transferred.
// The Migrated rows consider only activity from migrated processes.
type UserActivity struct {
	TenMinAll      ActivityRow
	TenMinMigrated ActivityRow
	TenSecAll      ActivityRow
	TenSecMigrated ActivityRow

	aggs [4]*stats.IntervalAgg
}

// Interval widths used by the paper.
const (
	LongInterval  = 10 * time.Minute
	ShortInterval = 10 * time.Second
)

// NewUserActivity returns a Table 2 analyzer.
func NewUserActivity() *UserActivity {
	return &UserActivity{aggs: [4]*stats.IntervalAgg{
		stats.NewIntervalAgg(LongInterval),
		stats.NewIntervalAgg(LongInterval),
		stats.NewIntervalAgg(ShortInterval),
		stats.NewIntervalAgg(ShortInterval),
	}}
}

// Observe implements Sink.
func (u *UserActivity) Observe(r *trace.Record) {
	var bytes int64
	switch r.Kind {
	case trace.KindRead, trace.KindWrite, trace.KindDirRead:
		bytes = r.Length
	}
	key := int(r.User)
	u.aggs[0].Add(r.Time, key, float64(bytes))
	u.aggs[2].Add(r.Time, key, float64(bytes))
	if r.IsMigrated() {
		u.aggs[1].Add(r.Time, key, float64(bytes))
		u.aggs[3].Add(r.Time, key, float64(bytes))
	}
}

// Finish implements Sink.
func (u *UserActivity) Finish() {
	rows := [4]*ActivityRow{&u.TenMinAll, &u.TenMinMigrated, &u.TenSecAll, &u.TenSecMigrated}
	for i, agg := range u.aggs {
		s := agg.Summarize()
		secs := agg.Width().Seconds()
		row := rows[i]
		row.AvgActiveUsers = s.ActiveUsers.Mean()
		row.SDActiveUsers = s.ActiveUsers.Stddev()
		row.MaxActiveUsers = s.MaxActive
		row.AvgThroughputKBs = s.PerUser.Mean() / 1024 / secs
		row.SDThroughputKBs = s.PerUser.Stddev() / 1024 / secs
		row.PeakUserKBs = s.PeakUser / 1024 / secs
		row.PeakTotalKBs = s.PeakTotal / 1024 / secs
	}
}
