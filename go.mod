module spritefs

go 1.22
