package workload

import (
	"spritefs/internal/metrics"
)

// RegisterMetrics exposes the engine's community-level accounting as
// spritefs_workload_* families: how many programs of each application
// kind ran, the bytes they moved, and the migration traffic. These sit
// above the per-client cache/VM counters — they describe the offered
// load, not the system's response to it.
func (e *Engine) RegisterMetrics(r *metrics.Registry) {
	progs := metrics.Desc{Name: "spritefs_workload_programs_total", Unit: "programs",
		Help: "Programs launched by the community engine, by application kind.",
		Kind: metrics.Counter}
	reads := metrics.Desc{Name: "spritefs_workload_read_bytes_total", Unit: "bytes",
		Help: "Bytes read by community programs, by application kind.",
		Kind: metrics.Counter}
	writes := metrics.Desc{Name: "spritefs_workload_write_bytes_total", Unit: "bytes",
		Help: "Bytes written by community programs, by application kind.",
		Kind: metrics.Counter}
	for a := AppKind(0); a < NumApps; a++ {
		ls := metrics.Labels{metrics.L("app", a.String())}
		r.IntVar(progs, ls, &e.st.RunsByApp[a])
		r.IntVar(reads, ls, &e.st.ReadByApp[a])
		r.IntVar(writes, ls, &e.st.WriteByApp[a])
	}
	r.IntVar(metrics.Desc{Name: "spritefs_workload_sessions_total", Unit: "sessions",
		Help: "Login sessions started by community users.",
		Kind: metrics.Counter},
		nil, &e.st.SessionsRun)
	r.IntVar(metrics.Desc{Name: "spritefs_workload_migrations_total", Unit: "migrations",
		Help: "Programs farmed to another workstation via process migration.",
		Kind: metrics.Counter},
		nil, &e.st.Migrations)
	r.IntVar(metrics.Desc{Name: "spritefs_workload_evictions_total", Unit: "evictions",
		Help: "Migrated programs evicted when their host's owner returned.",
		Kind: metrics.Counter},
		nil, &e.st.Evictions)
	r.IntVar(metrics.Desc{Name: "spritefs_workload_aborted_ops_total", Unit: "ops",
		Help: "Program operations skipped after an unrecoverable error (e.g. open of a deleted file).",
		Kind: metrics.Counter},
		nil, &e.st.AbortedOps)
}
