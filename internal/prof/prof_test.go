package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartStopWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	s, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	sink := 0
	for i := 0; i < 1000; i++ {
		sink += i
	}
	_ = sink
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// Stop is idempotent.
	if err := s.Stop(); err != nil {
		t.Errorf("second Stop: %v", err)
	}
}

func TestStartFailsFastOnBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no/such/dir/cpu"), ""); err == nil {
		t.Error("bad -cpuprofile path accepted")
	}
	if _, err := Start("", filepath.Join(t.TempDir(), "no/such/dir/mem")); err == nil {
		t.Error("bad -memprofile path accepted")
	}
	// A bad mem path must not leave the CPU profiler running.
	cpu := filepath.Join(t.TempDir(), "cpu.pprof")
	if _, err := Start(cpu, filepath.Join(t.TempDir(), "no/such/dir/mem")); err == nil {
		t.Error("bad -memprofile path accepted alongside a good -cpuprofile")
	}
	s, err := Start(cpu, "")
	if err != nil {
		t.Fatalf("CPU profiler left running by failed Start: %v", err)
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroValueAndEmptyPaths(t *testing.T) {
	var zero Session
	if err := zero.Stop(); err != nil {
		t.Errorf("zero-value Stop: %v", err)
	}
	s, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(); err != nil {
		t.Errorf("empty-path Stop: %v", err)
	}
}
