package sim

import (
	"testing"
	"time"
)

func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	var next func()
	count := 0
	next = func() {
		count++
		if count < b.N {
			s.After(time.Microsecond, next)
		}
	}
	b.ResetTimer()
	s.After(0, next)
	s.Run()
}

func BenchmarkHeapChurn(b *testing.B) {
	// Many pending events at once: heap operations dominate.
	s := New(1)
	for i := 0; i < 10000; i++ {
		s.At(time.Duration(i)*time.Second+time.Hour, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Millisecond, func() {})
		s.Step()
	}
}

func BenchmarkRandDistributions(b *testing.B) {
	g := NewRand(1)
	b.Run("lognormal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.LogNormal(4096, 1.1)
		}
	})
	b.Run("boundedpareto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.BoundedPareto(1024, 1<<20, 1.1)
		}
	})
	b.Run("pick", func(b *testing.B) {
		w := []float64{1, 2, 3, 4, 5, 6, 7, 8}
		for i := 0; i < b.N; i++ {
			g.Pick(w)
		}
	})
}
