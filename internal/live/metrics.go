package live

import (
	"sync"
	"sync/atomic"
	"time"

	"spritefs/internal/metrics"
	"spritefs/internal/stats"
)

// Counters is the fleet's observation state. Agents record into it from
// their own goroutines: plain counts are atomics, distributions sit behind
// a mutex. Registry snapshot closures read it too — the live /metrics
// handler runs those on the dispatcher loop, which is just another reader
// goroutine here.
type Counters struct {
	agents   int64 // configured fleet size (constant)
	inflight atomic.Int64
	timeouts atomic.Int64
	retries  atomic.Int64

	requests [NumVerbs]atomic.Int64
	errors   [NumVerbs]atomic.Int64

	mu sync.Mutex
	// wall[v] accumulates real request latencies (nanoseconds) for verb v;
	// hist[v] is the log-bucketed distribution the percentile report reads.
	wall [NumVerbs]stats.Welford
	hist [NumVerbs]*stats.Hist
	// sim accumulates the simulated service time the model charged, for
	// comparing modeled cost against measured wall latency.
	sim stats.Welford
}

// histLo/histHi bound the latency histograms: 1µs to 100s, 20 buckets per
// decade (≈12% quantile resolution).
const (
	histLo = 1e3  // 1µs in ns
	histHi = 1e11 // 100s in ns
)

// NewCounters returns counters for a fleet of the given size.
func NewCounters(agents int) *Counters {
	c := &Counters{agents: int64(agents)}
	for v := range c.hist {
		c.hist[v] = stats.NewHist(histLo, histHi, 20)
	}
	return c
}

// Begin marks a request in flight.
func (c *Counters) Begin() { c.inflight.Add(1) }

// Done records one finished request: its verb, real wall latency, the
// simulated service time from the reply, and whether it failed.
func (c *Counters) Done(v Verb, wall time.Duration, simLat time.Duration, failed bool) {
	c.inflight.Add(-1)
	c.requests[v].Add(1)
	if failed {
		c.errors[v].Add(1)
		return
	}
	c.mu.Lock()
	c.wall[v].Add(float64(wall))
	c.hist[v].Add1(float64(wall))
	c.sim.Add(float64(simLat))
	c.mu.Unlock()
}

// Timeout counts a deadline expiry (also recorded as an error by Done).
func (c *Counters) Timeout() { c.timeouts.Add(1) }

// Retry counts one backoff retry attempt.
func (c *Counters) Retry() { c.retries.Add(1) }

// Requests returns the total completed request count.
func (c *Counters) Requests() int64 {
	var n int64
	for v := range c.requests {
		n += c.requests[v].Load()
	}
	return n
}

// Errors returns the total failed request count.
func (c *Counters) Errors() int64 {
	var n int64
	for v := range c.errors {
		n += c.errors[v].Load()
	}
	return n
}

// wallSnapshot returns copies of verb v's accumulators, taken under the
// lock so Welford/Hist internals are consistent.
func (c *Counters) wallSnapshot(v Verb) (stats.Welford, *stats.Hist) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.wall[v]
	h := stats.NewHist(histLo, histHi, 20)
	h.Merge(c.hist[v])
	return w, h
}

// RegisterMetrics registers the spritefs_live_ families into r. The value
// closures only touch atomics and the mutex-guarded accumulators, so the
// registry may be snapshotted from any goroutine that owns the registry
// itself (the live exporter snapshots on the dispatcher loop, where the
// cluster's own closures are also safe).
func (c *Counters) RegisterMetrics(r *metrics.Registry) {
	r.Int(metrics.Desc{
		Name: "spritefs_live_agents",
		Unit: "agents", Help: "Configured client-agent fleet size.", Kind: metrics.Gauge,
	}, nil, func() int64 { return c.agents })
	r.Int(metrics.Desc{
		Name: "spritefs_live_inflight",
		Unit: "requests", Help: "Requests currently in flight across the fleet.", Kind: metrics.Gauge,
	}, nil, func() int64 { return c.inflight.Load() })
	r.Int(metrics.Desc{
		Name: "spritefs_live_timeouts_total",
		Unit: "requests", Help: "Requests abandoned at their deadline.", Kind: metrics.Counter,
	}, nil, func() int64 { return c.timeouts.Load() })
	r.Int(metrics.Desc{
		Name: "spritefs_live_retries_total",
		Unit: "requests", Help: "Backoff retries issued after retryable failures.", Kind: metrics.Counter,
	}, nil, func() int64 { return c.retries.Load() })
	for v := Verb(0); v < NumVerbs; v++ {
		v := v
		ls := metrics.Labels{metrics.L("verb", v.String())}
		r.Int(metrics.Desc{
			Name: "spritefs_live_requests_total",
			Unit: "requests", Help: "Completed live requests by verb.", Kind: metrics.Counter,
		}, ls, func() int64 { return c.requests[v].Load() })
		r.Int(metrics.Desc{
			Name: "spritefs_live_errors_total",
			Unit: "requests", Help: "Failed live requests by verb.", Kind: metrics.Counter,
		}, ls, func() int64 { return c.errors[v].Load() })
		r.HistSeconds(metrics.Desc{
			Name: "spritefs_live_request_wall_seconds",
			Unit: "seconds", Help: "Real (wall-clock) request latency by verb.",
		}, ls, func() stats.Welford {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.wall[v]
		})
	}
	r.HistSeconds(metrics.Desc{
		Name: "spritefs_live_request_sim_seconds",
		Unit: "seconds", Help: "Simulated service time charged per successful request.",
	}, nil, func() stats.Welford {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.sim
	})
}
