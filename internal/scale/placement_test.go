package scale

import (
	"testing"

	"spritefs/internal/sim"
	"spritefs/internal/workload"
)

// placementBase builds a small community sized for n clients.
func placementBase(clients int, seed int64) workload.Params {
	p := workload.Default(seed)
	p.NumClients = clients
	p.DailyUsers = clients - clients/4 - 1
	p.OccasionalUsers = clients / 4
	p.BigSimUsers = 1
	return p
}

// TestRingStabilityUnderSiteChange pins the consistent-hash property the
// placement layer exists for: growing the ring from n to n+1 sites moves
// only the keys the new site captured — every moved key lands on the new
// site, and the moved fraction stays near 1/(n+1).
func TestRingStabilityUnderSiteChange(t *testing.T) {
	const keys = 8192
	for _, n := range []int{2, 4, 8, 16} {
		before := newRing(n)
		after := newRing(n + 1)
		moved := 0
		for i := 0; i < keys; i++ {
			h := hash64(uint64(i) * 0x9e3779b97f4a7c15)
			a, b := before.lookup(h), after.lookup(h)
			if a == b {
				continue
			}
			moved++
			if b != n {
				t.Fatalf("sites %d->%d: key %d moved %d->%d, not to the new site %d", n, n+1, i, a, b, n)
			}
		}
		if moved == 0 {
			t.Fatalf("sites %d->%d: no keys moved to the new site", n, n+1)
		}
		frac := float64(moved) / keys
		want := 1.0 / float64(n+1)
		if frac > 3*want {
			t.Errorf("sites %d->%d: %.1f%% of keys moved, want about %.1f%%", n, n+1, frac*100, want*100)
		}
	}
}

// TestRingBalance checks the virtual nodes spread keys across sites
// within a reasonable factor of fair share.
func TestRingBalance(t *testing.T) {
	const sites, keys = 8, 65536
	r := newRing(sites)
	counts := make([]int, sites)
	for i := 0; i < keys; i++ {
		counts[r.lookup(hash64(uint64(i)*0x9e3779b97f4a7c15))]++
	}
	fair := float64(keys) / sites
	for s, c := range counts {
		if float64(c) < 0.4*fair || float64(c) > 2.0*fair {
			t.Errorf("site %d owns %d of %d keys (fair share %.0f): ring imbalanced", s, c, keys, fair)
		}
	}
}

// TestPlacementMemoryIndependentOfClients pins the O(1)-at-1M-clients
// property: the catalog size is a function of the artifact classes, not
// the client population, and the ring is a function of the site count
// alone. Growing the community must not grow placement state.
func TestPlacementMemoryIndependentOfClients(t *testing.T) {
	build := func(clients int) *Engine {
		return MustNew(Config{
			Base:   placementBase(clients, 99),
			Shards: 4,
			Sites:  2,
		})
	}
	small := build(16)
	big := build(64)
	// The catalog is bounded by the artifact-class constants (24 binaries
	// + 6 kernels + 4..7 shared files per group), whatever the community
	// size.
	lo := 30 + 4*int(workload.NumGroups)
	hi := 30 + 7*int(workload.NumGroups)
	// The shared-file counts are bootstrap draws in [4, 7] per group, so
	// two communities may differ by a few entries — but both must stay in
	// the class-constant band whatever the population.
	for _, e := range []*Engine{small, big} {
		if n := e.Placement.Len(); n < lo || n > hi {
			t.Errorf("catalog size %d outside the class-constant band [%d, %d]", n, lo, hi)
		}
	}
	if got, want := len(newRing(2).points), 2*ringVnodes; got != want {
		t.Errorf("ring points = %d, want %d (sites × vnodes, independent of clients)", got, want)
	}
}

// TestPickRemoteNeverLocal asserts the picker's contract: whatever the
// affinity, the artifact returned is never homed on the calling shard,
// and full site affinity keeps the pick inside the caller's site whenever
// the site has remote artifacts to offer.
func TestPickRemoteNeverLocal(t *testing.T) {
	e := MustNew(Config{
		Base:   placementBase(16, 7),
		Shards: 4,
		Sites:  2,
	})
	p := e.Placement
	for from := 0; from < 4; from++ {
		// Does the caller's site have artifacts on its other segment?
		siteHasRemote := false
		for _, pf := range p.SiteFiles(p.topo.SiteOf(from)) {
			if pf.Shard != from {
				siteHasRemote = true
				break
			}
		}
		for _, affinity := range []float64{0, 0.5, 1} {
			rng := sim.NewRand(int64(from)*1000 + int64(affinity*10))
			for i := 0; i < 500; i++ {
				pf, ok := p.PickRemote(rng, from, affinity)
				if !ok {
					t.Fatalf("from=%d affinity=%g: no remote artifact found", from, affinity)
				}
				if pf.Shard == from {
					t.Fatalf("from=%d affinity=%g: picked a local artifact (shard %d)", from, affinity, pf.Shard)
				}
				if affinity == 1 && siteHasRemote && !p.topo.SameSite(from, pf.Shard) {
					t.Fatalf("from=%d affinity=1: picked cross-site shard %d with site-local artifacts available", from, pf.Shard)
				}
			}
		}
	}
}

// TestPlacementDeterministic pins that two engines built from one config
// place every artifact identically — placement feeds the remote-traffic
// streams, so any instability here would break run-to-run byte-identity.
func TestPlacementDeterministic(t *testing.T) {
	cfg := Config{Base: placementBase(16, 3), Shards: 4, Sites: 2}
	a, b := MustNew(cfg), MustNew(cfg)
	if a.Placement.Len() != b.Placement.Len() {
		t.Fatalf("catalog sizes differ: %d vs %d", a.Placement.Len(), b.Placement.Len())
	}
	for i := range a.Placement.homes {
		if a.Placement.homes[i] != b.Placement.homes[i] {
			t.Fatalf("catalog entry %d differs: %+v vs %+v", i, a.Placement.homes[i], b.Placement.homes[i])
		}
	}
}
