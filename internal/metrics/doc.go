// Package metrics is the reproduction's central, self-describing metric
// registry — the single place where every kernel counter the study reads
// is named, typed, unit-tagged and documented.
//
// The paper's instrument was "approximately 50 counters" added to the
// Sprite kernels, read periodically by a user-level process and
// post-processed into the Section 5 tables. This package makes that
// instrument explicit and machine-readable: each subsystem (fscache,
// server, client, netsim, faults, replay, consistency) registers views
// over its counters at construction time, with a name, a unit and a help
// string, and everything downstream — the cluster report tables, the
// Prometheus/TSV/JSONL dumps, the generated docs/METRICS.md — is a
// projection of this one store.
//
// Registered metrics are closures over the owning subsystem's counter
// fields, read only at snapshot time, so registration adds no bookkeeping
// to the hot paths and the registry can never disagree with the
// authoritative counters. Snapshots and exports are deterministic: metric
// instances are emitted sorted by (name, labels), integers stay exact, and
// floats render with strconv's shortest round-trip form, so identical
// seeds produce byte-identical dumps regardless of registration order or
// sweep worker count.
//
// The Sampler turns the registry into time series: driven by the
// simulation clock at a configurable interval, it appends one row of
// selected metric values per tick into a bounded ring buffer, exportable
// as TSV, JSONL, or Prometheus text with timestamps. This is what lets a
// single run answer interval-contrast questions (Table 2's 10-second
// versus 10-minute activity) instead of only end-of-run totals.
package metrics
