// Command benchjson converts `go test -bench` output into machine-readable
// JSON so the performance trajectory can be tracked across commits.
//
// It reads benchmark output on stdin (or -in), keeps every benchmark line,
// parses the /clients=N/shards=N name components the scale benchmarks
// embed, and derives the wall-clock speedup of the highest shard count
// over shards=1 for each client population:
//
//	go test -bench='ScaleEngine|RecoveryStorm' -benchmem ./... | benchjson -o BENCH_scale.json
//
// With -baseline pointing at an earlier benchjson output, a vs_baseline
// section records the ns/op speedup and the allocs/op before and after
// for every benchmark the two files share:
//
//	benchjson -in bench_output.txt -baseline BENCH_simcore_baseline.json -o BENCH_simcore.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	Clients     int     `json:"clients,omitempty"`
	Shards      int     `json:"shards,omitempty"`
}

// Speedup compares two shard counts of the same benchmark and community.
type Speedup struct {
	Benchmark  string  `json:"benchmark"`
	Clients    int     `json:"clients"`
	Shards     int     `json:"shards"`
	OverShards int     `json:"over_shards"`
	WallClock  float64 `json:"wall_clock_speedup"`
}

// Delta compares one benchmark against the same-named benchmark in a
// baseline file. Speedup is baseline-over-current ns/op, so 2.0 means
// the code got twice as fast.
type Delta struct {
	Name            string  `json:"name"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	NsPerOp         float64 `json:"ns_per_op"`
	Speedup         float64 `json:"speedup"`
	BaselineAllocs  int64   `json:"baseline_allocs_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
}

// Output is the file layout.
type Output struct {
	Benchmarks []Entry   `json:"benchmarks"`
	Speedups   []Speedup `json:"scale_speedups,omitempty"`
	Baseline   string    `json:"baseline,omitempty"`
	VsBaseline []Delta   `json:"vs_baseline,omitempty"`
}

func main() {
	in := flag.String("in", "", "benchmark output file (default stdin)")
	out := flag.String("o", "", "JSON output file (default stdout)")
	baseline := flag.String("baseline", "", "earlier benchjson output to compare against (adds a vs_baseline section)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	o, err := Convert(r)
	if err != nil {
		fatal(err)
	}
	if *baseline != "" {
		if err := o.compareBaseline(*baseline); err != nil {
			fatal(err)
		}
	}
	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(o.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// Convert parses benchmark output and derives the scale speedups.
func Convert(r io.Reader) (*Output, error) {
	o := &Output{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		e, ok := parseLine(line)
		if ok {
			o.Benchmarks = append(o.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(o.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input")
	}
	o.Speedups = deriveSpeedups(o.Benchmarks)
	return o, nil
}

// compareBaseline reads an earlier benchjson output and records, for
// every benchmark present in both files (matched by name, sub-benchmark
// path included), the ns/op speedup and the allocs/op before and after.
func (o *Output) compareBaseline(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	var base Output
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-baseline %s: %w", path, err)
	}
	byName := make(map[string]Entry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		byName[e.Name] = e
	}
	o.Baseline = path
	for _, e := range o.Benchmarks {
		b, ok := byName[e.Name]
		if !ok || b.NsPerOp == 0 {
			continue
		}
		o.VsBaseline = append(o.VsBaseline, Delta{
			Name:            e.Name,
			BaselineNsPerOp: b.NsPerOp,
			NsPerOp:         e.NsPerOp,
			Speedup:         b.NsPerOp / e.NsPerOp,
			BaselineAllocs:  b.AllocsPerOp,
			AllocsPerOp:     e.AllocsPerOp,
		})
	}
	if len(o.VsBaseline) == 0 {
		return fmt.Errorf("-baseline %s: no benchmark names in common", path)
	}
	return nil
}

// parseLine decodes one testing-package benchmark line:
//
//	BenchmarkX/clients=1000/shards=8-4  1  2900000000 ns/op  12 B/op  3 allocs/op
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, false
	}
	var e Entry
	e.Name = fields[0]
	// Strip the -GOMAXPROCS suffix the harness appends.
	if i := strings.LastIndex(e.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(e.Name[i+1:]); err == nil {
			e.Name = e.Name[:i]
		}
	}
	iter, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e.Iterations = iter
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			if e.NsPerOp, err = strconv.ParseFloat(v, 64); err != nil {
				return Entry{}, false
			}
		case "B/op":
			e.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			e.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	if e.NsPerOp == 0 {
		return Entry{}, false
	}
	for _, part := range strings.Split(e.Name, "/") {
		if v, ok := strings.CutPrefix(part, "clients="); ok {
			e.Clients, _ = strconv.Atoi(v)
		}
		if v, ok := strings.CutPrefix(part, "shards="); ok {
			e.Shards, _ = strconv.Atoi(v)
		}
	}
	return e, true
}

// deriveSpeedups computes, per (benchmark root, clients) group, the
// wall-clock speedup of the highest shard count over shards=1.
func deriveSpeedups(entries []Entry) []Speedup {
	type key struct {
		root    string
		clients int
	}
	groups := map[key][]Entry{}
	var order []key
	for _, e := range entries {
		if e.Shards == 0 {
			continue
		}
		k := key{strings.SplitN(e.Name, "/", 2)[0], e.Clients}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], e)
	}
	var out []Speedup
	for _, k := range order {
		var base, best *Entry
		for i := range groups[k] {
			e := &groups[k][i]
			if e.Shards == 1 {
				base = e
			} else if best == nil || e.Shards > best.Shards {
				best = e
			}
		}
		if base == nil || best == nil {
			continue
		}
		out = append(out, Speedup{
			Benchmark:  k.root,
			Clients:    k.clients,
			Shards:     best.Shards,
			OverShards: 1,
			WallClock:  base.NsPerOp / best.NsPerOp,
		})
	}
	return out
}
