package main

import (
	"strings"
	"testing"
)

// TestValidateFlags pins fail-fast behavior for unknown experiments and
// flags the chosen experiment would silently ignore.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		exp  string
		set  []string
		fmt  string
		want string // "" = valid; otherwise a substring of the error
	}{
		{"default all", "all", nil, "tsv", ""},
		{"unknown exp", "bogus", nil, "tsv", "unknown experiment"},
		{"traces for section5", "section5", []string{"traces"}, "tsv", "-traces does not apply"},
		{"days for scale", "scale", []string{"days"}, "tsv", "-days does not apply"},
		{"shards for faults", "faults", []string{"shards"}, "tsv", "-shards does not apply"},
		{"format without out", "timeseries", []string{"metrics-format"}, "prom", "-metrics-out"},
		{"bad format", "timeseries", []string{"metrics-out", "metrics-format"}, "xml", "xml"},
		{"scale flags ok", "scale", []string{"shards", "clients", "hours", "workers"}, "tsv", ""},
		{"timeseries ok", "timeseries", []string{"metrics-out", "metrics-sample", "hours"}, "tsv", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := map[string]bool{}
			for _, f := range tc.set {
				set[f] = true
			}
			err := validateFlags(tc.exp, set, tc.fmt)
			if tc.want == "" {
				if err != nil {
					t.Errorf("validateFlags(%q, %v) = %v, want nil", tc.exp, tc.set, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("validateFlags(%q, %v) = %v, want substring %q", tc.exp, tc.set, err, tc.want)
			}
		})
	}
}

// TestProfileFlagsApplyEverywhere pins that -cpuprofile/-memprofile,
// like -seed, are valid for every experiment (they are deliberately
// absent from flagScope).
func TestProfileFlagsApplyEverywhere(t *testing.T) {
	set := map[string]bool{"cpuprofile": true, "memprofile": true}
	for _, exp := range validExps {
		if err := validateFlags(exp, set, "tsv"); err != nil {
			t.Errorf("profile flags rejected for -exp %s: %v", exp, err)
		}
	}
}

// TestParseShards pins the -shards list parser.
func TestParseShards(t *testing.T) {
	if got, err := parseShards("1, 2,8"); err != nil || len(got) != 3 || got[2] != 8 {
		t.Errorf("parseShards(\"1, 2,8\") = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "-1"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q) succeeded", bad)
		}
	}
}

func TestParseTraces(t *testing.T) {
	got, err := parseTraces("1, 3,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 8 {
		t.Errorf("parsed %v", got)
	}
	for _, bad := range []string{"", "0", "9", "x", "1,,y"} {
		if _, err := parseTraces(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	// Trailing commas and spaces are tolerated.
	got, err = parseTraces("2,")
	if err != nil || len(got) != 1 || got[0] != 2 {
		t.Errorf("trailing comma: %v %v", got, err)
	}
}
