package metrics

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"spritefs/internal/stats"
)

// TestPrometheusContentType pins the exact Content-Type the live /metrics
// endpoint must declare; Prometheus rejects scrapes with a different
// version token.
func TestPrometheusContentType(t *testing.T) {
	const want = "text/plain; version=0.0.4; charset=utf-8"
	if PrometheusContentType != want {
		t.Fatalf("PrometheusContentType = %q, want %q", PrometheusContentType, want)
	}
}

func promDump(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// TestPrometheusLabelEscaping covers the three escapes the exposition
// format defines for label values — backslash, double quote, newline —
// and checks that other bytes (tab, unicode) pass through untouched.
func TestPrometheusLabelEscaping(t *testing.T) {
	cases := []struct {
		raw, escaped string
	}{
		{`plain`, `plain`},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{"tab\there", "tab\there"}, // tabs are NOT escaped in label values
		{`all"three\of` + "\nthem", `all\"three\\of\nthem`},
		{"μnicode", "μnicode"},
	}
	r := New()
	for i, c := range cases {
		i, c := i, c
		r.Int(Desc{Name: "esc_test_total", Unit: "ops", Help: "escape cases", Kind: Counter},
			Labels{L("case", strconv.Itoa(i)), L("value", c.raw)},
			func() int64 { return int64(i) })
	}
	out := promDump(t, r)
	for i, c := range cases {
		want := `esc_test_total{case="` + strconv.Itoa(i) + `",value="` + c.escaped + `"} ` + strconv.Itoa(i)
		if !strings.Contains(out, want+"\n") {
			t.Errorf("case %d: output missing %q\ngot:\n%s", i, want, out)
		}
	}
}

// TestPrometheusHelpTypeOrdering checks the family-header discipline: each
// family emits exactly one # HELP line immediately followed by its # TYPE
// line, both before any of its samples, and no header repeats.
func TestPrometheusHelpTypeOrdering(t *testing.T) {
	r := New()
	r.Int(Desc{Name: "bbb_gauge", Unit: "x", Help: "a gauge", Kind: Gauge}, nil, func() int64 { return 1 })
	for _, c := range []string{"0", "1", "2"} {
		c := c
		r.Int(Desc{Name: "aaa_total", Unit: "ops", Help: "a counter", Kind: Counter},
			Labels{L("client", c)}, func() int64 { return 7 })
	}
	r.Seconds(Desc{Name: "ccc_seconds", Help: "a duration", Kind: Gauge}, nil,
		func() time.Duration { return time.Second })

	lines := strings.Split(strings.TrimRight(promDump(t, r), "\n"), "\n")
	helpSeen := map[string]bool{}
	sampleSeen := map[string]bool{}
	var lastHelp string
	for i, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "# HELP "):
			name := strings.Fields(ln)[2]
			if helpSeen[name] {
				t.Errorf("line %d: repeated # HELP for %s", i, name)
			}
			if sampleSeen[name] {
				t.Errorf("line %d: # HELP for %s after its samples", i, name)
			}
			helpSeen[name] = true
			lastHelp = name
		case strings.HasPrefix(ln, "# TYPE "):
			name := strings.Fields(ln)[2]
			if name != lastHelp {
				t.Errorf("line %d: # TYPE %s does not immediately follow its # HELP (last was %s)", i, name, lastHelp)
			}
		default:
			name := ln
			if j := strings.IndexAny(ln, "{ "); j >= 0 {
				name = ln[:j]
			}
			if !helpSeen[name] {
				t.Errorf("line %d: sample %q before its # HELP", i, name)
			}
			sampleSeen[name] = true
		}
	}
	// Families must appear in sorted order: aaa samples before bbb before ccc.
	a, b, c := strings.Index(promDump(t, r), "aaa_total"), strings.Index(promDump(t, r), "bbb_gauge"), strings.Index(promDump(t, r), "ccc_seconds")
	if !(a < b && b < c) {
		t.Errorf("families not sorted: offsets aaa=%d bbb=%d ccc=%d", a, b, c)
	}
}

// Exposition-format grammar (version 0.0.4), used to validate whole dumps
// rather than string-diffing expected output.
var (
	promMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	promTypes      = map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
)

// validatePromLine checks one non-comment sample line against the grammar:
// metric_name[{label="value",...}] value. Returns the metric name.
func validatePromLine(t *testing.T, ln string) string {
	t.Helper()
	rest := ln
	nameEnd := strings.IndexAny(rest, "{ ")
	if nameEnd < 0 {
		t.Errorf("sample line %q: no value", ln)
		return ""
	}
	name := rest[:nameEnd]
	if !promMetricName.MatchString(name) {
		t.Errorf("sample line %q: invalid metric name %q", ln, name)
	}
	rest = rest[nameEnd:]
	if rest[0] == '{' {
		end := -1
		inQuote, esc := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case esc:
				if c != '\\' && c != '"' && c != 'n' {
					t.Errorf("sample line %q: invalid escape \\%c", ln, c)
				}
				esc = false
			case inQuote && c == '\\':
				esc = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			t.Errorf("sample line %q: unterminated label set", ln)
			return name
		}
		for _, pair := range splitPromLabels(rest[1:end]) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				t.Errorf("sample line %q: label %q has no =", ln, pair)
				continue
			}
			if !promLabelName.MatchString(pair[:eq]) {
				t.Errorf("sample line %q: invalid label name %q", ln, pair[:eq])
			}
			v := pair[eq+1:]
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Errorf("sample line %q: label value %q not quoted", ln, v)
			}
		}
		rest = rest[end+1:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		t.Errorf("sample line %q: expected space before value", ln)
		return name
	}
	val := rest[1:]
	if _, err := strconv.ParseFloat(val, 64); err != nil {
		// The format also allows +Inf/-Inf/NaN, which ParseFloat accepts.
		t.Errorf("sample line %q: unparseable value %q: %v", ln, val, err)
	}
	return name
}

// splitPromLabels splits `a="x",b="y"` on commas outside quotes.
func splitPromLabels(s string) []string {
	var out []string
	start, inQuote, esc := 0, false, false
	for i := 0; i < len(s); i++ {
		switch {
		case esc:
			esc = false
		case inQuote && s[i] == '\\':
			esc = true
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestPrometheusGrammar validates a dump with every metric shape — counter,
// gauge, duration, labeled instances, summary expansion, hostile label
// values — line by line against the exposition grammar.
func TestPrometheusGrammar(t *testing.T) {
	r := New()
	r.Int(Desc{Name: "g_things", Unit: "things", Help: "gauge", Kind: Gauge}, nil, func() int64 { return -3 })
	r.Int(Desc{Name: "c_ops_total", Unit: "ops", Help: "counter", Kind: Counter},
		Labels{L("verb", "open"), L("path", `C:\tmp "x"`+"\n")}, func() int64 { return 42 })
	r.Seconds(Desc{Name: "d_seconds", Help: "duration", Kind: Gauge}, nil,
		func() time.Duration { return 1500 * time.Millisecond })
	var w stats.Welford
	w.Add(1e6)
	w.Add(3e6)
	r.HistSeconds(Desc{Name: "lat_seconds", Help: "latency"}, Labels{L("verb", "read")},
		func() stats.Welford { return w })

	out := promDump(t, r)
	if out == "" {
		t.Fatal("empty dump")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	samples := 0
	for i, ln := range lines {
		if ln == "" {
			t.Errorf("line %d: empty line inside dump", i)
			continue
		}
		if strings.HasPrefix(ln, "#") {
			f := strings.SplitN(ln, " ", 4)
			if len(f) < 4 || (f[1] != "HELP" && f[1] != "TYPE") {
				t.Errorf("line %d: malformed comment %q", i, ln)
				continue
			}
			if !promMetricName.MatchString(f[2]) {
				t.Errorf("line %d: invalid family name %q", i, f[2])
			}
			if f[1] == "TYPE" && !promTypes[f[3]] {
				t.Errorf("line %d: invalid type %q", i, f[3])
			}
			continue
		}
		validatePromLine(t, ln)
		samples++
	}
	if samples == 0 {
		t.Fatal("dump contained no sample lines")
	}
	// Summary expansion must carry the whole suffix set.
	for _, suf := range []string{"_count", "_sum", "_mean", "_stddev", "_min", "_max"} {
		if !strings.Contains(out, "lat_seconds"+suf+`{verb="read"}`) {
			t.Errorf("summary expansion missing lat_seconds%s", suf)
		}
	}
	// The nanosecond samples must export in seconds (scale 1e-9).
	if !strings.Contains(out, `lat_seconds_mean{verb="read"} 0.002`) {
		t.Errorf("summary scale wrong; dump:\n%s", out)
	}
}
