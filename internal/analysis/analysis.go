// Package analysis recomputes every Section 4 table and figure of the
// paper from a merged trace stream: overall trace statistics (Table 1),
// user activity over 10-minute and 10-second intervals (Table 2), file
// access patterns (Table 3), sequential run lengths (Figure 1), dynamic
// file sizes (Figure 2), open durations (Figure 3), and file lifetimes
// (Figure 4). It also recomputes the trace-derived consistency action
// frequencies (Table 10) so the live cluster's server counters can be
// cross-checked against the trace.
//
// Analyzers implement Sink and are driven in a single pass over the
// stream by Run, exactly how the paper's post-processing scanned its
// trace files.
package analysis

import (
	"io"

	"spritefs/internal/trace"
)

// Sink consumes trace records one at a time. Finish is called once after
// the last record so handle-tracking analyzers can close out state.
type Sink interface {
	Observe(r *trace.Record)
	Finish()
}

// Run drives every sink over the stream in one pass.
func Run(s trace.Stream, sinks ...Sink) error {
	for {
		r, err := s.Next()
		if err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		for _, sink := range sinks {
			sink.Observe(&r)
		}
	}
	for _, sink := range sinks {
		sink.Finish()
	}
	return nil
}
