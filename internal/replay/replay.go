// Package replay re-executes captured trace streams against the cluster's
// client caches, servers and consistency machinery — the trace-driven
// methodology of the paper's Section 5 simulations, which evaluated
// cache-consistency alternatives by feeding kernel traces through cache
// models rather than re-running the user community.
//
// The engine consumes a time-ordered trace.Record stream (binary or text,
// merged across per-server files with trace.Merge) and replaces the
// generative workload as the event source on the deterministic sim event
// loop: every open/read/write/close/seek/create/delete/truncate is issued
// to a real client kernel, flowing through the block cache, the shared
// network, the servers and the consistency coordinator exactly as live
// traffic does. Because the components and their counters are the same,
// a replay produces a cluster.Report of identical shape to a live run, so
// all downstream tables work unchanged.
//
// What replay cannot reproduce is traffic the paper's tracing never
// logged: virtual-memory paging and the resident system processes. Their
// absence perturbs cache contents slightly, which is why replayed
// cache-hit ratios match live runs within a small tolerance rather than
// exactly (the fidelity tests document the bound); record-level quantities
// — opens, application bytes presented, write-sharing events — match
// exactly.
package replay

import (
	"errors"
	"io"
	"slices"
	"time"

	"spritefs/internal/client"
	"spritefs/internal/cluster"
	"spritefs/internal/faults"
	"spritefs/internal/fscache"
	"spritefs/internal/metrics"
	"spritefs/internal/netsim"
	"spritefs/internal/server"
	"spritefs/internal/sim"
	"spritefs/internal/trace"
	"spritefs/internal/vm"
)

// Config selects one replay experiment: the cluster shape the trace is
// replayed against plus the replay controls (time scaling, filtering).
// The zero value replays at recorded speed against the paper's defaults.
type Config struct {
	// Name labels the configuration in sweep reports.
	Name string
	// NumServers is the number of file servers (default 4, as the paper).
	// Traces referencing higher server indices fall back to server 0, the
	// same clamp the live cluster applies.
	NumServers int
	// Speed is the virtual-time scale: 2 replays the trace at twice the
	// recorded rate (inter-record gaps halved), stressing the fixed-period
	// machinery (30-second delayed writes, cleaner daemons, poll windows)
	// with denser traffic. Zero or negative defaults to 1 (recorded speed).
	Speed float64
	// AsFastAsPossible ignores record timestamps entirely: records apply
	// back-to-back with virtual time frozen at the start, so time-dependent
	// daemons only run in the final drain. Use it for pure reference-string
	// experiments where timing fidelity does not matter.
	AsFastAsPossible bool
	// Seed seeds the engine's simulator (replay itself draws no random
	// numbers; the seed exists so latency models that jitter in the future
	// stay reproducible).
	Seed int64
	// SamplePeriod enables the Table 4 cache-size sampler (zero disables).
	SamplePeriod time.Duration
	// MemoryPagesPerClient overrides the default 24 MB workstations. When
	// zero, every third client gets 32 MB — the same mix the live cluster
	// builds, so replayed cache sizing matches.
	MemoryPagesPerClient int
	// FixedCachePages pins every client cache at a constant size.
	FixedCachePages int
	// WritebackDelay overrides the 30-second delayed-write interval.
	WritebackDelay time.Duration
	// PrefetchBlocks enables sequential prefetch of that many blocks.
	PrefetchBlocks int
	// Consistency selects the cache-consistency scheme under replay —
	// the knob the paper's Section 5.5 trace simulations existed to turn.
	Consistency client.ConsistencyMode
	// PollInterval is the validity window under ConsistencyPoll.
	PollInterval time.Duration
	// Keep, when set, drops records for which it returns false (after the
	// engine's own scrub of self-trace records). Use KeepClients /
	// KeepServers / KeepKinds / And to build filters.
	Keep func(*trace.Record) bool
	// Faults injects crashes, partitions and network perturbations into
	// the replay on the virtual clock — replaying the same trace with and
	// without a mid-run server crash isolates exactly what the fault cost.
	Faults faults.Schedule
	// MetricsSample enables the registry time-series sampler at this
	// interval on the virtual clock (zero disables); the collected series
	// are on Engine.MetricSampler after Run.
	MetricsSample time.Duration
	// MetricsSampleCap bounds the sampler ring in rows; zero = default.
	MetricsSampleCap int
	// MetricsMatch restricts sampling to families for which it returns
	// true; nil samples every non-summary family.
	MetricsMatch func(name string) bool
}

// Stats counts what the engine did with the stream.
type Stats struct {
	Read          int64 // records pulled from the stream
	Applied       int64 // records re-executed
	Filtered      int64 // dropped by Config.Keep
	Scrubbed      int64 // self-trace or clientless records dropped
	UnknownHandle int64 // ops referencing a handle with no replayed open
	Errors        int64 // open/close errors tolerated and skipped
	Bootstrapped  int64 // files materialized on first reference
	Creates       int64 // creations replayed
	Migrations    int64 // migration markers (no file-system effect)
}

// Result is one replay's outcome: the bookkeeping counters and the full
// counter-table report, shaped exactly like a live cluster's.
type Result struct {
	Config  Config
	Stats   Stats
	Report  cluster.Report
	Faults  faults.Stats  // what the schedule injected (zero when empty)
	Horizon time.Duration // virtual time of the last applied record
	End     time.Duration // virtual time after the drain
	// Metrics is the counter view (with its central registry) the report
	// was computed from; Metrics.Registry().Dump exports every counter,
	// and Series carries the time series when Config.MetricsSample is set.
	Metrics *cluster.Metrics
	// Series is the ring-buffered time-series sampler, nil unless
	// Config.MetricsSample was set.
	Series *metrics.Sampler
}

// liveHandle maps a trace open-instance to the replayed client handle.
type liveHandle struct {
	cl  *client.Client
	hid uint64
}

// Engine replays one trace stream against one cluster configuration.
type Engine struct {
	cfg     Config
	Sim     *sim.Sim
	Net     *netsim.Network
	Servers []*server.Server

	clients map[int32]*client.Client
	handles map[uint64]liveHandle

	// Injector drives cfg.Faults; nil when the schedule is empty.
	Injector *faults.Injector

	// Reg is the central metric registry; servers and the network register
	// at construction, clients as they materialize.
	Reg *metrics.Registry
	// MetricSampler holds the time series collected when
	// Config.MetricsSample is set; nil otherwise.
	MetricSampler *metrics.Sampler

	samples []cluster.Sample
	lastOps map[int32]int64
	tickers []*sim.Ticker

	stats Stats
	ran   bool
}

// New assembles an idle replay engine. Servers exist up front (their
// identity is baked into file ids); clients materialize lazily at the
// first record that names them, mirroring how the trace itself only
// mentions workstations that did something.
func New(cfg Config) *Engine {
	if cfg.NumServers <= 0 {
		cfg.NumServers = 4
	}
	if cfg.Speed <= 0 {
		cfg.Speed = 1
	}
	e := &Engine{
		cfg:     cfg,
		Sim:     sim.New(cfg.Seed),
		Net:     netsim.New(netsim.DefaultConfig()),
		clients: make(map[int32]*client.Client),
		handles: make(map[uint64]liveHandle),
		lastOps: make(map[int32]int64),
	}
	for i := 0; i < cfg.NumServers; i++ {
		srv := server.New(int16(i))
		// Same storage split as the live cluster: the main Sun 4 with
		// 128 MB of cache, smaller secondaries.
		if i == 0 {
			srv.AttachStorage(128 << 20 / 4096)
		} else {
			srv.AttachStorage(64 << 20 / 4096)
		}
		e.Servers = append(e.Servers, srv)
	}
	if !cfg.Faults.Empty() {
		e.Injector = faults.Attach(e, cfg.Faults)
	}
	e.Reg = metrics.New()
	cluster.RegisterComponents(e.Reg, e.Sim, nil, e.Servers, e.Net, e.Injector)
	e.registerMetrics(e.Reg)
	return e
}

// registerMetrics registers the engine's own stream bookkeeping, so a
// metrics dump states what the replay did with the trace alongside what
// the components did with the replayed operations.
func (e *Engine) registerMetrics(r *metrics.Registry) {
	ctr := func(name, unit, help string, v *int64) {
		r.Int(metrics.Desc{Name: name, Unit: unit, Help: help, Kind: metrics.Counter},
			nil, func() int64 { return *v })
	}
	ctr("spritefs_replay_records_read_total", "records",
		"Records pulled from the trace stream.", &e.stats.Read)
	ctr("spritefs_replay_records_applied_total", "records",
		"Records re-executed against the replayed cluster.", &e.stats.Applied)
	ctr("spritefs_replay_records_filtered_total", "records",
		"Records dropped by the configured Keep filter.", &e.stats.Filtered)
	ctr("spritefs_replay_records_scrubbed_total", "records",
		"Self-trace or clientless records scrubbed, as the paper's merge step scrubbed backup noise.", &e.stats.Scrubbed)
	ctr("spritefs_replay_unknown_handle_total", "records",
		"Operations referencing a handle whose open was never replayed.", &e.stats.UnknownHandle)
	ctr("spritefs_replay_errors_total", "records",
		"Open/close errors tolerated and skipped.", &e.stats.Errors)
	ctr("spritefs_replay_bootstrapped_files_total", "files",
		"Files materialized on first reference — the source run's pre-existing population.", &e.stats.Bootstrapped)
	ctr("spritefs_replay_creates_total", "records",
		"File creations replayed.", &e.stats.Creates)
	ctr("spritefs_replay_migrations_total", "records",
		"Process-migration markers seen (no file-system effect).", &e.stats.Migrations)
}

// Clock implements faults.System.
func (e *Engine) Clock() *sim.Sim { return e.Sim }

// Wire implements faults.System.
func (e *Engine) Wire() *netsim.Network { return e.Net }

// FileServers implements faults.System.
func (e *Engine) FileServers() []*server.Server { return e.Servers }

// Workstations implements faults.System: the clients materialized so far,
// in id order. Consulted at fault-fire time, so a crash only ever hits
// workstations the trace has already brought up.
func (e *Engine) Workstations() []*client.Client {
	ids := e.sortedIDs()
	out := make([]*client.Client, 0, len(ids))
	for _, id := range ids {
		out = append(out, e.clients[id])
	}
	return out
}

// route maps file ids to servers, identically to the live cluster.
func (e *Engine) route(file uint64) *server.Server {
	idx := int(file >> 48)
	if idx >= len(e.Servers) {
		idx = 0
	}
	return e.Servers[idx]
}

// clientFor returns the workstation with the given id, building it (and
// starting its cleaner daemon) on first reference.
func (e *Engine) clientFor(id int32) *client.Client {
	if cl, ok := e.clients[id]; ok {
		return cl
	}
	ccfg := client.DefaultConfig(id)
	if e.cfg.MemoryPagesPerClient > 0 {
		ccfg.MemoryPages = e.cfg.MemoryPagesPerClient
	} else if id%3 == 0 {
		// Memory sizes vary 24-32 MB across the cluster, as in the live run.
		ccfg.MemoryPages = 32 << 20 / vm.PageSize
	}
	ccfg.FixedCachePages = e.cfg.FixedCachePages
	ccfg.Consistency = e.cfg.Consistency
	ccfg.PollInterval = e.cfg.PollInterval
	cl := client.New(ccfg, e.Sim, e.Net, e.route, e.Servers[0], client.NopTracer{})
	cl.SetCoordinator(e)
	if e.cfg.WritebackDelay > 0 {
		cl.Cache.SetWritebackDelay(e.cfg.WritebackDelay)
	}
	if e.cfg.PrefetchBlocks > 0 {
		cl.Cache.SetPrefetch(e.cfg.PrefetchBlocks)
	}
	cl.StartCleaner()
	cl.RegisterMetrics(e.Reg)
	e.clients[id] = cl
	return cl
}

// RecallFrom implements client.Coordinator.
func (e *Engine) RecallFrom(clientID int32, file uint64) {
	if cl, ok := e.clients[clientID]; ok {
		cl.FlushForRecall(file)
	}
}

// DisableCaching implements client.Coordinator.
func (e *Engine) DisableCaching(ids []int32, file uint64) {
	for _, id := range ids {
		if cl, ok := e.clients[id]; ok {
			cl.DisableFor(file)
		}
	}
}

// sortedIDs returns the materialized client ids in ascending order, so
// every aggregate over clients is deterministic.
func (e *Engine) sortedIDs() []int32 {
	ids := make([]int32, 0, len(e.clients))
	for id := range e.clients {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// Metrics returns the counter view of the replayed components; its Report
// is shaped identically to a live cluster's.
func (e *Engine) Metrics() *cluster.Metrics {
	ids := e.sortedIDs()
	cls := make([]*client.Client, 0, len(ids))
	for _, id := range ids {
		cls = append(cls, e.clients[id])
	}
	return &cluster.Metrics{Clients: cls, Servers: e.Servers, Net: e.Net, Samples: e.samples, Reg: e.Reg}
}

// sample records each client's cache size, as the live counter sampler does.
func (e *Engine) sample() {
	now := e.Sim.Now()
	for _, id := range e.sortedIDs() {
		cl := e.clients[id]
		st := cl.Cache.Stats()
		ops := st.All.ReadOps + st.All.WriteOps
		active := ops != e.lastOps[id]
		e.lastOps[id] = ops
		e.samples = append(e.samples, cluster.Sample{
			Time: now, Client: id, CacheSize: cl.Cache.SizeBytes(), Active: active,
		})
	}
}

// scaledTime maps a record timestamp to replay virtual time.
func (e *Engine) scaledTime(t time.Duration) time.Duration {
	if e.cfg.AsFastAsPossible {
		return e.Sim.Now()
	}
	if e.cfg.Speed == 1 {
		return t
	}
	return time.Duration(float64(t) / e.cfg.Speed)
}

// Run replays the stream to exhaustion, drains the delayed-write pipeline,
// and returns the replay's report. An engine runs once.
func (e *Engine) Run(s trace.Stream) (*Result, error) {
	if e.ran {
		return nil, errors.New("replay: engine already ran")
	}
	e.ran = true

	// Server-side cleaners, staggered as in the live cluster: writebacks
	// reach the disk after the server's own 30-second delay.
	for i, srv := range e.Servers {
		srv := srv
		e.tickers = append(e.tickers, e.Sim.Every(time.Duration(i)*time.Second, 5*time.Second, func() {
			srv.Store.Clean(e.Sim.Now())
		}))
	}
	if e.cfg.SamplePeriod > 0 {
		e.tickers = append(e.tickers, e.Sim.Every(e.cfg.SamplePeriod, e.cfg.SamplePeriod, e.sample))
	}
	if e.cfg.MetricsSample > 0 {
		e.MetricSampler = metrics.NewSampler(e.Reg, e.cfg.MetricsSampleCap, e.cfg.MetricsMatch)
		e.tickers = append(e.tickers, e.Sim.Every(e.cfg.MetricsSample, e.cfg.MetricsSample, func() {
			e.MetricSampler.Sample(e.Sim.Now())
		}))
	}

	for {
		rec, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		e.stats.Read++
		// Scrub what the paper's merge step scrubs, plus records with no
		// issuing workstation (raw per-server files fed in without Merge).
		if rec.Flags&trace.FlagSelfTrace != 0 || rec.Client < 0 {
			e.stats.Scrubbed++
			continue
		}
		if e.cfg.Keep != nil && !e.cfg.Keep(&rec) {
			e.stats.Filtered++
			continue
		}
		// Advance the cluster (daemons, delayed writes, samplers) to the
		// record's moment, then re-execute it. Out-of-order timestamps are
		// tolerated by applying at the current clock.
		if at := e.scaledTime(rec.Time); at > e.Sim.Now() {
			e.Sim.RunUntil(at)
		}
		e.apply(&rec)
		e.stats.Applied++
	}
	horizon := e.Sim.Now()

	// Drain: let the cleaner daemons age out and flush the delayed writes
	// accumulated at the horizon, then stop all periodic machinery.
	maxDelay := 30 * time.Second
	for _, id := range e.sortedIDs() {
		if d := e.clients[id].Cache.WriteDelay(); d > maxDelay {
			maxDelay = d
		}
	}
	e.Sim.RunUntil(horizon + maxDelay + 2*fscache.CleanerPeriod + time.Minute)
	for _, id := range e.sortedIDs() {
		e.clients[id].StopCleaner()
	}
	for _, tk := range e.tickers {
		tk.Stop()
	}

	m := e.Metrics()
	res := &Result{
		Config:  e.cfg,
		Stats:   e.stats,
		Report:  m.Report(),
		Horizon: horizon,
		End:     e.Sim.Now(),
		Metrics: m,
		Series:  e.MetricSampler,
	}
	if e.Injector != nil {
		res.Faults = e.Injector.Stats()
	}
	return res, nil
}

// ensureFile materializes a file the trace references but never created
// inside the captured window — the pre-existing population of the source
// run. sizeHint is the best lower bound the referencing record implies.
func (e *Engine) ensureFile(file uint64, sizeHint int64, directory bool) *server.File {
	srv := e.route(file)
	if f := srv.Lookup(file); f != nil {
		if f.Size < sizeHint {
			srv.Grow(file, sizeHint, e.Sim.Now())
		}
		return f
	}
	e.stats.Bootstrapped++
	if sizeHint < 0 {
		sizeHint = 0
	}
	return srv.Install(file, sizeHint, directory, e.Sim.Now())
}

// apply re-executes one record against the replayed cluster.
func (e *Engine) apply(rec *trace.Record) {
	switch rec.Kind {
	case trace.KindOpen:
		// Size at open re-syncs any drift in the bootstrap estimate.
		e.ensureFile(rec.File, rec.Size, rec.IsDirectory())
		cl := e.clientFor(rec.Client)
		read := rec.Flags&trace.FlagReadMode != 0
		write := rec.Flags&trace.FlagWriteMode != 0
		if !read && !write {
			read = true // hand-written traces may omit modes
		}
		hid, _, err := cl.Open(rec.User, rec.Proc, rec.File, read, write, rec.IsMigrated())
		if err != nil {
			e.stats.Errors++
			return
		}
		if rec.Handle != 0 {
			e.handles[rec.Handle] = liveHandle{cl: cl, hid: hid}
		}

	case trace.KindClose:
		h, ok := e.handles[rec.Handle]
		if !ok {
			e.stats.UnknownHandle++
			return
		}
		delete(e.handles, rec.Handle)
		if _, err := h.cl.Close(h.hid); err != nil {
			e.stats.Errors++
		}

	case trace.KindRead, trace.KindDirRead:
		h, ok := e.handles[rec.Handle]
		if !ok {
			e.stats.UnknownHandle++
			return
		}
		e.ensureFile(rec.File, rec.Offset+rec.Length, rec.IsDirectory())
		h.cl.ReadAt(h.hid, rec.Offset, rec.Length)

	case trace.KindWrite:
		h, ok := e.handles[rec.Handle]
		if !ok {
			e.stats.UnknownHandle++
			return
		}
		e.ensureFile(rec.File, 0, false)
		h.cl.WriteAt(h.hid, rec.Offset, rec.Length)

	case trace.KindReposition:
		h, ok := e.handles[rec.Handle]
		if !ok {
			e.stats.UnknownHandle++
			return
		}
		h.cl.Seek(h.hid, rec.Offset)

	case trace.KindCreate:
		srv := e.route(rec.File)
		if srv.Lookup(rec.File) == nil {
			srv.Install(rec.File, 0, rec.IsDirectory(), e.Sim.Now())
		}
		e.stats.Creates++
		e.clientFor(rec.Client)
		e.Net.RPC(rec.Client, netsim.Control, 0)

	case trace.KindDelete:
		cl := e.clientFor(rec.Client)
		cl.Delete(rec.User, rec.Proc, rec.File, rec.IsMigrated())

	case trace.KindTruncate:
		cl := e.clientFor(rec.Client)
		cl.Truncate(rec.User, rec.Proc, rec.File, rec.IsMigrated())

	case trace.KindMigrate:
		// Process migration markers carry no file-system state; the
		// migrated flag on subsequent records is what matters.
		e.stats.Migrations++
	}
}

// Run is the one-shot convenience: build an engine for cfg and replay s.
func Run(cfg Config, s trace.Stream) (*Result, error) {
	return New(cfg).Run(s)
}

// --- Record filters ---

// KeepClients keeps only records issued by the given workstations.
func KeepClients(ids ...int32) func(*trace.Record) bool {
	set := make(map[int32]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(r *trace.Record) bool { return set[r.Client] }
}

// KeepServers keeps only records logged by the given servers.
func KeepServers(ids ...int16) func(*trace.Record) bool {
	set := make(map[int16]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(r *trace.Record) bool { return set[r.Server] }
}

// KeepKinds keeps only records of the given kinds. Note that dropping
// opens orphans the dropped handles' reads and closes; kind filters are
// for analyses that tolerate that (the engine counts the orphans).
func KeepKinds(kinds ...trace.Kind) func(*trace.Record) bool {
	var set [32]bool
	for _, k := range kinds {
		if int(k) < len(set) {
			set[k] = true
		}
	}
	return func(r *trace.Record) bool { return int(r.Kind) < len(set) && set[r.Kind] }
}

// And composes filters conjunctively.
func And(fs ...func(*trace.Record) bool) func(*trace.Record) bool {
	return func(r *trace.Record) bool {
		for _, f := range fs {
			if !f(r) {
				return false
			}
		}
		return true
	}
}
