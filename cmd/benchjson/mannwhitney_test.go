package main

import (
	"math"
	"os"
	"strings"
	"testing"
)

func TestUTestExact(t *testing.T) {
	// Complete separation at 3v3: U=0, p = 2/C(6,3) = 0.1 — the smallest
	// p-value three runs a side can produce (benchstat's count=3 floor).
	p, ok := uTest([]float64{1, 2, 3}, []float64{4, 5, 6})
	if !ok || math.Abs(p-0.1) > 1e-12 {
		t.Errorf("3v3 separation: p=%v ok=%v, want 0.1", p, ok)
	}
	// Complete separation at 5v5: p = 2/C(10,5) = 2/252.
	p, ok = uTest([]float64{1, 2, 3, 4, 5}, []float64{6, 7, 8, 9, 10})
	if !ok || math.Abs(p-2.0/252) > 1e-12 {
		t.Errorf("5v5 separation: p=%v ok=%v, want %v", p, ok, 2.0/252)
	}
	// Direction must not matter.
	q, _ := uTest([]float64{6, 7, 8, 9, 10}, []float64{1, 2, 3, 4, 5})
	if math.Abs(p-q) > 1e-12 {
		t.Errorf("asymmetric p: %v vs %v", p, q)
	}
	// Fully interleaved samples are indistinguishable: p must be large.
	p, _ = uTest([]float64{1, 3, 5, 7}, []float64{2, 4, 6, 8})
	if p < 0.5 {
		t.Errorf("interleaved samples look significant: p=%v", p)
	}
	// p is a probability.
	if p > 1 {
		t.Errorf("p=%v > 1", p)
	}
}

func TestUTestTiesAndDegenerate(t *testing.T) {
	// Too few samples on either side: no verdict.
	if _, ok := uTest([]float64{1}, []float64{2, 3}); ok {
		t.Error("single-sample side produced a p-value")
	}
	if _, ok := uTest(nil, []float64{2, 3}); ok {
		t.Error("empty side produced a p-value")
	}
	// All pooled values identical: maximal p, not a crash.
	p, ok := uTest([]float64{5, 5, 5}, []float64{5, 5, 5})
	if !ok || p != 1 {
		t.Errorf("identical samples: p=%v ok=%v, want 1", p, ok)
	}
	// Ties fall back to the normal approximation and stay in range.
	p, ok = uTest([]float64{1, 1, 2, 3}, []float64{3, 4, 4, 5})
	if !ok || p <= 0 || p > 1 {
		t.Errorf("tied samples: p=%v ok=%v", p, ok)
	}
}

// TestAggregateKeepsSamples pins that -count repetitions retain their
// sorted per-run samples for the significance test.
func TestAggregateKeepsSamples(t *testing.T) {
	const in = `
BenchmarkHot-4  10  300.0 ns/op
BenchmarkHot-4  10  100.0 ns/op
BenchmarkHot-4  10  200.0 ns/op
`
	o, err := Convert(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	e := o.Benchmarks[0]
	if len(e.NsSamples) != 3 || e.NsSamples[0] != 100 || e.NsSamples[2] != 300 {
		t.Errorf("samples not kept sorted: %+v", e.NsSamples)
	}
}

// TestCheckGateSignificance pins the Mann–Whitney gating: a below-gate
// median shift with an insignificant p-value is noise and passes; the
// same shift with strong significance (or no samples at all) fails.
func TestCheckGateSignificance(t *testing.T) {
	noisy := &Output{VsBaseline: []Delta{
		{Name: "BenchmarkNoisy", BaselineNsPerOp: 100, NsPerOp: 125, Speedup: 0.8, PValue: 0.7},
	}}
	if err := noisy.checkGate(0.85, 0.1); err != nil {
		t.Errorf("insignificant regression failed the gate: %v", err)
	}
	real := &Output{VsBaseline: []Delta{
		{Name: "BenchmarkReal", BaselineNsPerOp: 100, NsPerOp: 125, Speedup: 0.8, PValue: 0.008},
	}}
	err := real.checkGate(0.85, 0.1)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkReal") {
		t.Errorf("significant regression passed the gate: %v", err)
	}
	// No samples on either side: median-only gating, as before samples
	// existed.
	legacy := &Output{VsBaseline: []Delta{
		{Name: "BenchmarkLegacy", BaselineNsPerOp: 100, NsPerOp: 125, Speedup: 0.8},
	}}
	if err := legacy.checkGate(0.85, 0.1); err == nil {
		t.Error("sample-less regression passed the gate")
	}
}

// TestSummarizeHistory pins the trend-table rendering: one row per
// benchmark, '-' for runs it was absent from, last-over-first trend.
func TestSummarizeHistory(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/hist.jsonl"
	content := `{"time":"2026-01-01T00:00:00Z","source":"a","ns_per_op":{"BenchmarkA":100,"BenchmarkB":50}}
{"time":"2026-01-02T00:00:00Z","source":"b","ns_per_op":{"BenchmarkA":200}}
`
	if err := writeFile(path, content); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := summarizeHistory(path, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "BenchmarkA\t100\t200\t2.00x") {
		t.Errorf("trend row wrong:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkB\t50\t-\t1.00x") {
		t.Errorf("absent-run cell wrong:\n%s", out)
	}
	if err := summarizeHistory(dir+"/missing.jsonl", &b); err == nil {
		t.Error("missing history file accepted")
	}
	if err := writeFile(dir+"/empty.jsonl", "\n"); err != nil {
		t.Fatal(err)
	}
	if err := summarizeHistory(dir+"/empty.jsonl", &b); err == nil {
		t.Error("empty history file accepted")
	}
}

// TestCompareBaselinePValue pins the end-to-end wiring: sampled entries
// on both sides produce a p-value in the delta.
func TestCompareBaselinePValue(t *testing.T) {
	base, err := Convert(strings.NewReader(`
BenchmarkX-4  1  100.0 ns/op
BenchmarkX-4  1  101.0 ns/op
BenchmarkX-4  1  102.0 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Convert(strings.NewReader(`
BenchmarkX-4  1  200.0 ns/op
BenchmarkX-4  1  201.0 ns/op
BenchmarkX-4  1  202.0 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Entry{base.Benchmarks[0].Name: base.Benchmarks[0]}
	b := byName["BenchmarkX"]
	p, ok := uTest(b.NsSamples, cur.Benchmarks[0].NsSamples)
	if !ok || math.Abs(p-0.1) > 1e-12 {
		t.Errorf("3v3 separated runs: p=%v ok=%v, want 0.1", p, ok)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
