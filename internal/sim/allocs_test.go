package sim

import (
	"testing"
	"time"
)

// The scheduler's hot paths are required to be allocation-free in steady
// state: once the event arena, heap slice and wheel arena have grown to
// their high-water marks, At/After/Step and ticker firings must not touch
// the garbage collector. `make allocscheck` runs these gates.

func TestAfterZeroAllocSteadyState(t *testing.T) {
	s := New(1)
	fn := func() {}
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(time.Microsecond, fn)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("After+Step allocated %.1f/op in steady state, want 0", allocs)
	}
}

func TestEveryTickZeroAllocSteadyState(t *testing.T) {
	s := New(1)
	ticks := 0
	tk := s.Every(0, time.Millisecond, func() { ticks++ })
	defer tk.Stop()
	allocs := testing.AllocsPerRun(1000, func() {
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("ticker firing allocated %.1f/op in steady state, want 0", allocs)
	}
	if ticks == 0 {
		t.Fatal("ticker never fired")
	}
}

// TestTickerStopRecyclesEvent pins the Ticker.Stop contract: stopping a
// ticker unlinks its pending wheel entry immediately — no tombstone is
// left in any queue — and the arena slot is recycled, so repeated
// start/stop cycles neither grow Pending nor leak pool slots.
func TestTickerStopRecyclesEvent(t *testing.T) {
	s := New(1)
	base := s.Pending()
	for i := 0; i < 1000; i++ {
		tk := s.Every(s.Now()+time.Second, time.Second, func() {})
		if got := s.Pending(); got != base+1 {
			t.Fatalf("cycle %d: pending = %d after start, want %d", i, got, base+1)
		}
		tk.Stop()
		if got := s.Pending(); got != base {
			t.Fatalf("cycle %d: pending = %d after stop, want %d (tombstone left behind?)", i, got, base)
		}
		tk.Stop() // double-stop must be a no-op
	}
	if got := len(s.wheel.pool); got != 1 {
		t.Fatalf("wheel arena grew to %d slots over 1000 start/stop cycles, want 1 (slot not recycled)", got)
	}
	if got := s.wheel.freeLen(); got != 1 {
		t.Fatalf("wheel free list has %d slots, want 1", got)
	}
	if got := s.WheelTimers(); got != 0 {
		t.Fatalf("WheelTimers = %d after all tickers stopped, want 0", got)
	}
}

// TestTickerStopFromOtherEvent stops an armed ticker from an unrelated
// one-shot event and checks the cancelled firing never happens.
func TestTickerStopFromOtherEvent(t *testing.T) {
	s := New(1)
	fired := 0
	tk := s.Every(10*time.Millisecond, 10*time.Millisecond, func() { fired++ })
	s.At(25*time.Millisecond, func() { tk.Stop() })
	s.RunUntil(time.Second)
	if fired != 2 {
		t.Fatalf("ticker fired %d times, want 2 (at 10ms and 20ms, stopped at 25ms)", fired)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("pending = %d after stop, want 0", got)
	}
}

// TestWheelOverflowAndRefile mixes wheel timers across levels with a
// one-shot event and checks the merged firing order stays exact; the
// "far" ticker's re-arm lands beyond the wheel horizon, exercising the
// overflow list in the minimum scan.
func TestWheelOverflowAndRefile(t *testing.T) {
	s := New(1)
	var order []string
	s.Every(3*time.Hour, 100000*time.Hour, func() { order = append(order, "far") })
	s.Every(time.Hour, time.Hour, func() { order = append(order, "hourly") })
	s.At(30*time.Minute, func() { order = append(order, "oneshot") })
	s.RunUntil(3 * time.Hour)
	want := []string{"oneshot", "hourly", "hourly", "far", "hourly"}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("firing %d: got %q, want %q (full order %v)", i, order[i], want[i], order)
		}
	}
}

// TestWheelOverflowFire arms a ticker whose first firing is beyond the
// wheel's ~9-year horizon, so it is parked on the overflow list, and
// checks it still fires at its exact time and re-files into the wheel.
func TestWheelOverflowFire(t *testing.T) {
	s := New(1)
	far := 11 * 365 * 24 * time.Hour
	fired := 0
	tk := s.Every(far, 24*time.Hour, func() { fired++ })
	s.RunUntil(far)
	if fired != 1 {
		t.Fatalf("overflow ticker fired %d times by %v, want 1", fired, far)
	}
	if at, ok := s.NextAt(); !ok || at != far+24*time.Hour {
		t.Fatalf("re-arm at %v (ok=%v), want %v", at, ok, far+24*time.Hour)
	}
	tk.Stop()
}
