package consistency

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"spritefs/internal/trace"
)

// randomSharedTrace generates a random but well-formed multi-client access
// pattern over a handful of files.
func randomSharedTrace(seed int64, nEvents int) SharedTrace {
	return CollectShared(randomRecords(seed, nEvents))
}

// randomRecords builds the raw trace records behind randomSharedTrace.
func randomRecords(seed int64, nEvents int) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	var recs []trace.Record
	type openState struct {
		handle uint64
		write  bool
	}
	open := map[[2]int64]*openState{} // (client,file) -> state
	var handle uint64
	now := time.Duration(0)
	for i := 0; i < nEvents; i++ {
		now += time.Duration(rng.Intn(5000)) * time.Millisecond
		client := int32(rng.Intn(4))
		file := uint64(rng.Intn(3) + 1)
		key := [2]int64{int64(client), int64(file)}
		st := open[key]
		switch {
		case st == nil:
			handle++
			write := rng.Intn(2) == 0
			st = &openState{handle: handle, write: write}
			open[key] = st
			flags := uint8(trace.FlagReadMode)
			if write {
				flags |= trace.FlagWriteMode
			}
			recs = append(recs, trace.Record{Time: now, Kind: trace.KindOpen,
				Client: client, User: client + 10, File: file, Handle: st.handle, Flags: flags})
		case rng.Intn(4) == 0: // close
			flags := uint8(trace.FlagReadMode)
			if st.write {
				flags |= trace.FlagWriteMode
			}
			recs = append(recs, trace.Record{Time: now, Kind: trace.KindClose,
				Client: client, User: client + 10, File: file, Handle: st.handle, Flags: flags})
			delete(open, key)
		default: // read or write
			kind := trace.KindRead
			if st.write && rng.Intn(2) == 0 {
				kind = trace.KindWrite
			}
			recs = append(recs, trace.Record{Time: now, Kind: kind,
				Client: client, User: client + 10, File: file, Handle: st.handle,
				Flags:  trace.FlagShared, // mark as CWS-window ops for the overhead sim
				Offset: int64(rng.Intn(64 * 1024)), Length: int64(rng.Intn(8000) + 1)})
		}
	}
	return recs
}

// Property: the Sprite algorithm moves exactly the application bytes and
// issues exactly one RPC per op, on any input.
func TestOverheadSpriteExactInvariant(t *testing.T) {
	f := func(seed int64) bool {
		st := randomSharedTrace(seed, 300)
		o := SimulateOverhead(st)
		return o.Bytes[AlgSprite] == o.AppBytes && o.RPCs[AlgSprite] == o.AppOps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: no algorithm reports negative traffic, and with zero app ops
// every algorithm is silent.
func TestOverheadNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		st := randomSharedTrace(seed, 200)
		o := SimulateOverhead(st)
		for a := 0; a < NumAlgs; a++ {
			if o.Bytes[a] < 0 || o.RPCs[a] < 0 {
				return false
			}
		}
		if o.AppOps == 0 && (o.Bytes[AlgModified] != 0 || o.Bytes[AlgToken] != 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: stale errors never exceed the number of shared reads, and a
// zero-length validity window produces no errors (every read revalidates).
func TestStaleBounds(t *testing.T) {
	f := func(seed int64) bool {
		st := randomSharedTrace(seed, 300)
		reads := int64(0)
		for _, ev := range st.Events {
			if ev.Kind == EvRead {
				reads++
			}
		}
		r := SimulateStale(st, 60*time.Second)
		if r.Errors < 0 || r.Errors > reads {
			return false
		}
		if r.OpensWithError > r.Errors {
			return false
		}
		zero := SimulateStale(st, 0)
		return zero.Errors == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: widening the polling interval never reduces errors (more
// staleness exposure), on traces where reads poll repeatedly.
func TestStaleMonotoneInInterval(t *testing.T) {
	f := func(seed int64) bool {
		st := randomSharedTrace(seed, 400)
		prev := int64(0)
		for _, iv := range []time.Duration{time.Second, 10 * time.Second, 100 * time.Second} {
			r := SimulateStale(st, iv)
			if r.Errors < prev {
				return false
			}
			prev = r.Errors
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
