package sim

import "math/bits"

// Hierarchical timer wheel for the recurring timers created by Every.
//
// The periodic daemons — the 5-second cache cleaners, the consistency
// lease ticks, the counter and metric samplers — used to re-enter the
// one-shot event heap on every firing, churning O(log n) sift work and
// (before the arena rewrite) one allocation per tick. The wheel gives
// them their own container: six levels of 64 slots each, level L slots
// spanning 64^L ticks of ~4ms resolution, so an armed timer is one O(1)
// intrusive-list insert and its removal (Ticker.Stop) is an O(1) unlink —
// no tombstones are left behind in any queue.
//
// Exactness is preserved: the wheel only *buckets* timers by coarse
// resolution, every entry keeps its exact (at, seq) key, and the
// scheduler merges the wheel's minimum with the one-shot heap's minimum
// by that key, so firing order — and therefore every simulated report
// byte — is identical to the single-heap implementation.
//
// Because virtual time never passes a pending event (the simulator always
// advances to the global minimum), slot placement never goes stale and no
// cascading between levels is needed: an entry's rotational distance from
// the current slot equals its true slot distance, except in the current
// slot itself, which may also hold entries one full rotation ahead. The
// minimum is therefore found by scanning, per level, the current slot
// plus the first occupied slot after it — at most two short lists per
// level — and the result is cached until the minimum entry fires or is
// stopped.

const (
	// wheelResShift is the bucket resolution: 2^22 ns ≈ 4.2 ms per tick.
	// Resolution affects only bucketing density, never firing times.
	wheelResShift = 22
	wheelBits     = 6
	wheelSlots    = 1 << wheelBits // 64 slots per level
	wheelLevels   = 6              // 64^6 ticks ≈ 9 years of horizon

	wheelLocNone     = -1 // entry not linked (firing, free, or stopped)
	wheelLocOverflow = -2 // entry on the beyond-horizon overflow list
)

// wentry is one armed recurring timer.
type wentry struct {
	at     Time
	seq    uint64
	period Time
	fn     func()
	tk     *Ticker
	prev   int32 // intrusive slot-list links; prev < 0 at the head,
	next   int32 // next < 0 at the tail; next doubles as the free link
	loc    int16 // level<<wheelBits|slot, wheelLocOverflow, or wheelLocNone
}

// wheel is the recurring-timer scheduler state.
type wheel struct {
	pool     []wentry
	free     int32 // free-slot list head through next, -1 when empty
	slots    [wheelLevels * wheelSlots]int32
	occ      [wheelLevels]uint64 // per-level slot-occupancy bitmaps
	overflow int32               // beyond-horizon list head
	count    int
	minIdx   int32 // cached minimum entry, -1 when it must be recomputed
}

func newWheel() wheel {
	w := wheel{free: -1, overflow: -1, minIdx: -1}
	for i := range w.slots {
		w.slots[i] = -1
	}
	return w
}

// alloc takes an arena slot for a new timer.
func (w *wheel) alloc(at Time, seq uint64, period Time, fn func(), tk *Ticker) int32 {
	i := w.free
	if i >= 0 {
		w.free = w.pool[i].next
	} else {
		w.pool = append(w.pool, wentry{})
		i = int32(len(w.pool) - 1)
	}
	e := &w.pool[i]
	e.at = at
	e.seq = seq
	e.period = period
	e.fn = fn
	e.tk = tk
	e.loc = wheelLocNone
	return i
}

// release returns an arena slot to the free list, dropping the callback
// and ticker references.
func (w *wheel) release(i int32) {
	e := &w.pool[i]
	e.fn = nil
	e.tk = nil
	e.next = w.free
	w.free = i
}

// insert links entry i into the wheel for its at time. now is the current
// virtual time; at must not be in the past.
func (w *wheel) insert(now Time, i int32) {
	e := &w.pool[i]
	delta := int64(e.at>>wheelResShift) - int64(now>>wheelResShift)
	if delta>>(wheelBits*wheelLevels) != 0 {
		// Beyond the last level's horizon: park on the overflow list.
		e.loc = wheelLocOverflow
		e.prev = -1
		e.next = w.overflow
		if w.overflow >= 0 {
			w.pool[w.overflow].prev = i
		}
		w.overflow = i
	} else {
		level := 0
		for delta>>(wheelBits*(level+1)) != 0 {
			level++
		}
		slot := int((int64(e.at>>wheelResShift) >> (wheelBits * level)) & (wheelSlots - 1))
		loc := level<<wheelBits | slot
		e.loc = int16(loc)
		e.prev = -1
		e.next = w.slots[loc]
		if e.next >= 0 {
			w.pool[e.next].prev = i
		}
		w.slots[loc] = i
		w.occ[level] |= 1 << slot
	}
	w.count++
	// Keep the cached minimum exact when it is cheap to do so.
	if w.minIdx >= 0 {
		m := &w.pool[w.minIdx]
		if e.at < m.at || (e.at == m.at && e.seq < m.seq) {
			w.minIdx = i
		}
	} else if w.count == 1 {
		w.minIdx = i
	}
}

// unlink removes entry i from whichever list holds it. The arena slot
// stays allocated (the caller re-inserts or releases it).
func (w *wheel) unlink(i int32) {
	e := &w.pool[i]
	switch {
	case e.loc == wheelLocNone:
		return
	case e.loc == wheelLocOverflow:
		if e.prev >= 0 {
			w.pool[e.prev].next = e.next
		} else {
			w.overflow = e.next
		}
		if e.next >= 0 {
			w.pool[e.next].prev = e.prev
		}
	default:
		loc := int(e.loc)
		if e.prev >= 0 {
			w.pool[e.prev].next = e.next
		} else {
			w.slots[loc] = e.next
		}
		if e.next >= 0 {
			w.pool[e.next].prev = e.prev
		}
		if w.slots[loc] < 0 {
			w.occ[loc>>wheelBits] &^= 1 << (loc & (wheelSlots - 1))
		}
	}
	e.loc = wheelLocNone
	w.count--
	if w.minIdx == i {
		w.minIdx = -1
	}
}

// scanList folds a slot list into the running minimum, carrying the
// current minimum's key in registers rather than re-reading the pool.
func (w *wheel) scanList(head, best int32) int32 {
	if head < 0 {
		return best
	}
	pool := w.pool
	var bestAt Time
	var bestSeq uint64
	if best >= 0 {
		bestAt, bestSeq = pool[best].at, pool[best].seq
	}
	for i := head; i >= 0; i = pool[i].next {
		e := &pool[i]
		if best < 0 || e.at < bestAt || (e.at == bestAt && e.seq < bestSeq) {
			best, bestAt, bestSeq = i, e.at, e.seq
		}
	}
	return best
}

// min returns the earliest armed timer's key and arena slot. now is the
// current virtual time (never past any pending entry).
func (w *wheel) min(now Time) (at Time, seq uint64, idx int32, ok bool) {
	if w.count == 0 {
		return 0, 0, -1, false
	}
	if w.minIdx < 0 {
		w.minIdx = w.recomputeMin(now)
	}
	e := &w.pool[w.minIdx]
	return e.at, e.seq, w.minIdx, true
}

// recomputeMin scans the candidate slots. Per level only two lists can
// hold the minimum: the current slot (which may mix this rotation with
// the next) and the first occupied slot after it in rotation order (whose
// entries all precede every later slot's). Overflow entries are compared
// exactly as well.
func (w *wheel) recomputeMin(now Time) int32 {
	nowTick := int64(now >> wheelResShift)
	best := int32(-1)
	for level := 0; level < wheelLevels; level++ {
		bm := w.occ[level]
		if bm == 0 {
			continue
		}
		c := int((nowTick >> (wheelBits * level)) & (wheelSlots - 1))
		if bm&(1<<c) != 0 {
			best = w.scanList(w.slots[level<<wheelBits|c], best)
		}
		// First occupied slot strictly after c, wrapping around.
		rest := bm &^ (1 << c)
		if rest != 0 {
			var slot int
			if hi := rest &^ ((1 << (c + 1)) - 1); hi != 0 {
				slot = bits.TrailingZeros64(hi)
			} else {
				slot = bits.TrailingZeros64(rest)
			}
			best = w.scanList(w.slots[level<<wheelBits|slot], best)
		}
	}
	best = w.scanList(w.overflow, best)
	return best
}

// freeLen counts free arena slots (pool-occupancy introspection).
func (w *wheel) freeLen() int {
	n := 0
	for i := w.free; i >= 0; i = w.pool[i].next {
		n++
	}
	return n
}
