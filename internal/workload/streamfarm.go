package workload

import (
	"sort"
	"time"
)

// Post-1991 application generators: the media-streaming client and the
// package-build farm (ROADMAP item 3). Both are disabled at the default
// parameters — their AppMix weights are zero and their populations empty —
// so the paper's calibrated traces are untouched; StreamingParams and
// BuildFarmParams turn them on.

// genStream models one playback session: open a media object, then
// alternate seek bursts (the viewer scrubbing for a scene) with long
// paced sequential reads (the player filling its buffer at the stream
// bitrate). Random-access sessions model thumbnail scrubbing — every
// segment starts with a jump.
func (e *Engine) genStream(u *userState) ([]op, float64) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	f, ok := e.reg.RandomMedia(e.rng)
	if !ok {
		// No media library (mis-configured mix): fall back to the largest
		// files the 1991 population has.
		if len(e.reg.KernelImages) == 0 {
			return b.exit(), e.p.EditRate
		}
		f = e.reg.KernelImages[e.rng.Intn(len(e.reg.KernelImages))]
	}
	h := b.open(staticFile(f), true, false)
	random := e.rng.Bool(e.p.StreamRandomP)
	segments := 4 + e.rng.Intn(12)
	for s := 0; s < segments; s++ {
		if random || (s > 0 && e.rng.Bool(e.p.StreamSeekBurstP)) {
			// Scrub: a burst of repositions as the player hunts for the
			// nearest keyframe before settling.
			hunts := 1 + e.rng.Intn(3)
			for j := 0; j < hunts; j++ {
				b.seek(h, seekRandom)
			}
		}
		// One buffer fill: a multi-chunk sequential burst. The playback
		// rate paces the transfer (xfer in doOp), so a segment plays for
		// seconds of virtual time.
		chunks := int64(2 + e.rng.Intn(6))
		b.readSeq(h, chunks*e.p.ChunkBytes)
		if e.rng.Bool(0.08) {
			// The viewer pauses; the handle stays open, stretching the
			// open-duration tail far beyond anything in the 1991 traces.
			b.think(e.rng.ExpDur(10 * time.Second))
		}
	}
	b.close(h)
	rate := e.p.MediaBitrate
	if rate <= 0 {
		rate = 1 << 20
	}
	return b.exit(), rate
}

// farmRun is one pmake-style build-farm invocation: a seeded dependency
// DAG of packages, built by a bounded worker pool that farms each ready
// package out to an idle workstation via process migration, then links
// the artifacts at home.
type farmRun struct {
	u         *userState
	deps      [][]int  // deps[i] lists packages i depends on (all < i)
	artifacts []uint64 // file id of package i's built artifact (0 until built)
	built     []bool
	started   []bool
	inflight  int
	remaining int
	cont      func()
}

func (fr *farmRun) ready(i int) bool {
	for _, d := range fr.deps[i] {
		if !fr.built[d] {
			return false
		}
	}
	return true
}

// runBuildFarm seeds the DAG and starts dispatching. Packages only
// depend on lower-numbered packages, so the graph is acyclic by
// construction and a topological frontier always exists.
func (e *Engine) runBuildFarm(u *userState, cont func()) {
	n := e.p.FarmPackages
	if n <= 0 {
		cont()
		return
	}
	fr := &farmRun{
		u:         u,
		deps:      make([][]int, n),
		artifacts: make([]uint64, n),
		built:     make([]bool, n),
		started:   make([]bool, n),
		remaining: n,
		cont:      cont,
	}
	for i := 1; i < n; i++ {
		fanin := e.p.FarmFaninMax
		if fanin > i {
			fanin = i
		}
		k := e.rng.Intn(fanin + 1)
		seen := make(map[int]bool, k)
		for j := 0; j < k; j++ {
			d := e.rng.Intn(i)
			if !seen[d] {
				seen[d] = true
				fr.deps[i] = append(fr.deps[i], d)
			}
		}
		sort.Ints(fr.deps[i])
	}
	e.farmDispatch(fr)
}

// farmDispatch launches every ready package while worker slots remain.
// Each completion records the artifact, frees the slot and re-dispatches;
// the final link runs when the whole DAG is built.
func (e *Engine) farmDispatch(fr *farmRun) {
	workers := e.p.FarmWorkers
	if workers <= 0 {
		workers = 4
	}
	for i := 0; i < len(fr.deps) && fr.inflight < workers; i++ {
		if fr.started[i] || !fr.ready(i) {
			continue
		}
		fr.started[i] = true
		fr.inflight++
		var depFiles []uint64
		for _, d := range fr.deps[i] {
			if fr.artifacts[d] != 0 {
				depFiles = append(depFiles, fr.artifacts[d])
			}
		}
		ops, rate, artSlot := e.genFarmBuild(fr.u, depFiles)
		// Farm the build out: prefer any idle host (parallelism over
		// cache warmth — the farm wants breadth), falling back to the
		// sticky target, then to building at home.
		host, migrated := e.hosts[fr.u.sessHost], false
		var target int32
		var ok bool
		if e.rng.Bool(0.7) {
			target, ok = e.pool.Select(fr.u.sessHost)
		} else {
			target, ok = e.selectSticky(fr.u)
		}
		if ok {
			host, migrated = e.hosts[target], true
		}
		pkg := i
		var pr *program
		done := func() {
			fr.artifacts[pkg] = pr.files[artSlot]
			fr.built[pkg] = true
			fr.inflight--
			fr.remaining--
			if fr.remaining == 0 {
				e.farmLink(fr)
				return
			}
			e.farmDispatch(fr)
		}
		pr = e.launch(fr.u, AppBuildFarm, host, ops, rate, migrated, done)
	}
}

// genFarmBuild is one package build: read the dependency artifacts
// (exported headers/libraries), read the package sources, write the
// package's own artifact.
func (e *Engine) genFarmBuild(u *userState, deps []uint64) ([]op, float64, int) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	e.configReads(b, u)
	for _, d := range deps {
		h := b.open(staticFile(d), true, false)
		b.readAll(h)
		b.close(h)
	}
	nSrc := 2 + e.rng.Intn(4)
	for i := 0; i < nSrc; i++ {
		src, ok := e.reg.RandomSmall(e.rng, u.id)
		if !ok {
			break
		}
		h := b.open(staticFile(src), true, false)
		b.readAll(h)
		b.close(h)
	}
	b.touch(e.rng.Intn(e.p.HeapGrowMax + 1))
	art := b.create(false)
	h := b.open(slotFile(art), false, true)
	size := int64(e.rng.BoundedPareto(e.p.ObjMin, e.p.ObjMax, e.p.ObjAlpha))
	b.writeSeq(h, size)
	b.fsync(h)
	b.close(h)
	return b.exit(), e.p.CompileRate, art
}

// farmLink is the install step at the user's own workstation: read every
// artifact back, write the linked image (replacing the previous farm
// run's output), and clean the intermediate artifacts — the short-lived
// temporaries that keep the lifetime distribution honest.
func (e *Engine) farmLink(fr *farmRun) {
	u := fr.u
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	for _, a := range fr.artifacts {
		if a == 0 {
			continue
		}
		h := b.open(staticFile(a), true, false)
		b.readAll(h)
		b.close(h)
	}
	out := b.create(false)
	h := b.open(slotFile(out), false, true)
	b.writeSeq(h, int64(e.rng.BoundedPareto(e.p.BinMin, e.p.BinMax, e.p.BinAlpha)))
	b.close(h)
	for _, a := range fr.artifacts {
		if a != 0 {
			b.deleteFile(staticFile(a))
		}
	}
	b.deletePrev()
	b.register(out)
	e.launch(u, AppBuildFarm, e.hosts[u.sessHost], b.exit(), e.p.CompileRate, false, fr.cont)
}
