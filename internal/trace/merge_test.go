package trace

import (
	"io"
	"reflect"
	"sort"
	"testing"
	"time"
)

// Edge-case coverage for the k-way merge: degenerate input shapes and the
// contract when an input stream violates its own ordering.

func TestMergeNoStreams(t *testing.T) {
	m := Merge()
	if _, err := m.Next(); err != io.EOF {
		t.Fatalf("Next on empty merge = %v, want io.EOF", err)
	}
	// EOF must be sticky.
	if _, err := m.Next(); err != io.EOF {
		t.Fatalf("second Next = %v, want io.EOF", err)
	}
}

func TestMergeAllStreamsEmpty(t *testing.T) {
	m := Merge(NewSliceStream(nil), NewSliceStream([]Record{}), NewSliceStream(nil))
	got, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d records from empty streams", len(got))
	}
}

func TestMergeOnlyScrubbedRecords(t *testing.T) {
	// A stream that is entirely self-trace noise behaves like an empty one.
	recs := []Record{
		{Time: 1, Kind: KindWrite, Flags: FlagSelfTrace},
		{Time: 2, Kind: KindWrite, Flags: FlagSelfTrace},
	}
	got, err := Collect(Merge(NewSliceStream(recs), NewSliceStream(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("scrubbed-only merge produced %d records", len(got))
	}
}

func TestMergeSingleStreamPassthrough(t *testing.T) {
	recs := []Record{
		{Time: 1 * time.Millisecond, Kind: KindOpen, File: 1, Handle: 10},
		{Time: 2 * time.Millisecond, Kind: KindRead, File: 1, Handle: 10, Length: 4096},
		{Time: 2 * time.Millisecond, Kind: KindRead, File: 1, Handle: 10, Offset: 4096, Length: 512},
		{Time: 9 * time.Millisecond, Kind: KindClose, File: 1, Handle: 10},
	}
	got, err := Collect(Merge(NewSliceStream(recs)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("single-stream merge altered the stream:\n got %+v\nwant %+v", got, recs)
	}
}

// TestMergeEqualTimestampTies pins the full tie contract: at one shared
// timestamp, records come out grouped by stream index, and each stream's
// own FIFO order is preserved within the group.
func TestMergeEqualTimestampTies(t *testing.T) {
	const at = 5 * time.Millisecond
	mk := func(srv int16, files ...uint64) Stream {
		var recs []Record
		for _, f := range files {
			recs = append(recs, Record{Time: at, Kind: KindOpen, Server: srv, File: f})
		}
		return NewSliceStream(recs)
	}
	got, err := Collect(Merge(mk(0, 1, 2), mk(1, 3), mk(2, 4, 5)))
	if err != nil {
		t.Fatal(err)
	}
	var files []uint64
	for _, r := range got {
		if r.Time != at {
			t.Fatalf("timestamp changed: %v", r.Time)
		}
		files = append(files, r.File)
	}
	want := []uint64{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(files, want) {
		t.Fatalf("tie order %v, want %v (stream index, then FIFO)", files, want)
	}
}

// TestMergeOutOfOrderWithinStream documents the contract when an input
// violates its ordering guarantee (a corrupt or hand-edited trace file):
// the merge does not reorder within a stream or lose records — the output
// is the full multiset, and other streams still interleave by the rogue
// stream's head timestamp.
func TestMergeOutOfOrderWithinStream(t *testing.T) {
	rogue := []Record{
		{Time: 7 * time.Millisecond, Kind: KindOpen, File: 1},
		{Time: 3 * time.Millisecond, Kind: KindOpen, File: 2}, // out of order
		{Time: 9 * time.Millisecond, Kind: KindOpen, File: 3},
	}
	clean := []Record{
		{Time: 4 * time.Millisecond, Kind: KindOpen, File: 4},
		{Time: 8 * time.Millisecond, Kind: KindOpen, File: 5},
	}
	got, err := Collect(Merge(NewSliceStream(rogue), NewSliceStream(clean)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rogue)+len(clean) {
		t.Fatalf("lost records: got %d, want %d", len(got), len(rogue)+len(clean))
	}
	var files []int
	for _, r := range got {
		files = append(files, int(r.File))
	}
	sort.Ints(files)
	if !reflect.DeepEqual(files, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("multiset not preserved: %v", files)
	}
	// The rogue stream's records must still appear in their stream order.
	var rogueOrder []int
	for _, r := range got {
		if r.File <= 3 {
			rogueOrder = append(rogueOrder, int(r.File))
		}
	}
	if !reflect.DeepEqual(rogueOrder, []int{1, 2, 3}) {
		t.Fatalf("rogue stream reordered: %v", rogueOrder)
	}
}
