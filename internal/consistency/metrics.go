package consistency

import "spritefs/internal/metrics"

// RegisterMetrics registers a Table 12 overhead result into the central
// registry, one instance per algorithm (alg label). The consistency
// simulators are offline — they run over a SharedTrace after the fact — so
// unlike the live subsystems this registers a finished result, letting the
// overhead comparison ride the same export formats as everything else.
func (o *Overhead) RegisterMetrics(r *metrics.Registry) {
	r.Int(metrics.Desc{Name: "spritefs_consistency_app_bytes_total", Unit: "bytes",
		Help: "Bytes applications requested on write-shared files during sharing (Table 12 normalization base).",
		Kind: metrics.Counter},
		nil, func() int64 { return o.AppBytes })
	r.Int(metrics.Desc{Name: "spritefs_consistency_app_ops_total", Unit: "ops",
		Help: "Application read/write events during sharing.",
		Kind: metrics.Counter},
		nil, func() int64 { return o.AppOps })
	for a := 0; a < NumAlgs; a++ {
		a := a
		ls := metrics.Labels{metrics.L("alg", AlgNames[a])}
		r.Int(metrics.Desc{Name: "spritefs_consistency_bytes_total", Unit: "bytes",
			Help: "Bytes each consistency algorithm transferred for the same shared accesses (Table 12 second column, unnormalized).",
			Kind: metrics.Counter},
			ls, func() int64 { return o.Bytes[a] })
		r.Int(metrics.Desc{Name: "spritefs_consistency_rpcs_total", Unit: "ops",
			Help: "RPCs each consistency algorithm issued (Table 12 third column, unnormalized).",
			Kind: metrics.Counter},
			ls, func() int64 { return o.RPCs[a] })
	}
}
