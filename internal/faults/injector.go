package faults

import (
	"time"

	"spritefs/internal/client"
	"spritefs/internal/netsim"
	"spritefs/internal/server"
)

// Stats aggregates what a schedule's injection actually did and destroyed.
type Stats struct {
	ServerCrashes int64
	ClientCrashes int64
	Partitions    int64
	DelayWindows  int64
	DropWindows   int64
	Skipped       int64 // events whose target did not exist at fire time

	// Data destroyed, per the crash accounting in fscache/crash.go.
	ServerDirtyLost int64 // un-synced server-cache bytes lost to crashes
	ClientDirtyLost int64 // client delayed-write bytes lost to crashes
	MaxDirtyAge     time.Duration

	// Recovery-protocol outcomes.
	ReplayedBytes          int64 // dirty bytes replayed during driven sweeps
	MaxReopenStorm         int   // most handles re-registered after one restart
	MaxTimeToReconsistency time.Duration
}

// Injector drives one Schedule against one System. Create with Attach.
type Injector struct {
	sys  System
	hook *hook
	st   Stats
}

// Attach installs the fault hook on the system's network and schedules
// every event on its clock. Events whose time has already passed fire
// immediately. The injector shares the system's determinism: same seed,
// same schedule, same run.
func Attach(sys System, sched Schedule) *Injector {
	inj := &Injector{
		sys: sys,
		hook: &hook{
			clock:   sys.Clock(),
			srvHeal: make(map[int16]time.Duration),
			cliHeal: make(map[int32]time.Duration),
		},
	}
	sys.Wire().SetHook(inj.hook)
	clock := sys.Clock()
	for _, ev := range sched.Events {
		ev := ev
		clock.After(ev.At-clock.Now(), func() { inj.fire(ev) })
	}
	return inj
}

// Stats returns a snapshot of the injection counters.
func (inj *Injector) Stats() Stats { return inj.st }

func (inj *Injector) fire(ev Event) {
	clock := inj.sys.Clock()
	now := clock.Now()
	switch ev.Kind {
	case ServerCrash:
		servers := inj.sys.FileServers()
		if ev.Target >= len(servers) {
			inj.st.Skipped++
			return
		}
		srv := servers[ev.Target]
		out := srv.Crash(now)
		// Logical restart at the crash instant: the outage manifests as
		// stalled RPC latency via the hook window, while state semantics
		// (epoch bump, volatile-state loss) take effect immediately.
		srv.Restart(now)
		inj.st.ServerCrashes++
		inj.st.ServerDirtyLost += out.DirtyBytesLost
		if out.MaxDirtyAge > inj.st.MaxDirtyAge {
			inj.st.MaxDirtyAge = out.MaxDirtyAge
		}
		if ev.Duration > 0 {
			heal := now + ev.Duration
			if heal > inj.hook.srvHeal[srv.ID()] {
				inj.hook.srvHeal[srv.ID()] = heal
			}
		}
		// The recovery sweep — every workstation runs the protocol — fires
		// when the outage heals (a client that opens a file sooner recovers
		// lazily and pays the stall; the sweep is then a no-op for it).
		clock.After(ev.Duration, func() { inj.recoverAll(srv, now) })

	case ClientCrash:
		ws := inj.findWorkstation(int32(ev.Target))
		if ws == nil {
			inj.st.Skipped++
			return
		}
		loss := ws.Crash(now)
		for _, srv := range inj.sys.FileServers() {
			srv.Disconnect(ws.ID(), now)
		}
		inj.st.ClientCrashes++
		inj.st.ClientDirtyLost += loss.DirtyBytes
		if loss.MaxDirtyAge > inj.st.MaxDirtyAge {
			inj.st.MaxDirtyAge = loss.MaxDirtyAge
		}

	case Partition:
		heal := now + ev.Duration
		if heal > inj.hook.cliHeal[int32(ev.Target)] {
			inj.hook.cliHeal[int32(ev.Target)] = heal
		}
		inj.st.Partitions++

	case Delay:
		inj.hook.delays = append(inj.hook.delays, window{now, now + ev.Duration, ev.Extra})
		inj.st.DelayWindows++

	case Drop:
		inj.hook.drops = append(inj.hook.drops, &dropWindow{
			from: now, to: now + ev.Duration, every: ev.Every, retry: ev.Extra,
		})
		inj.st.DropWindows++
	}
}

// recoverAll is the post-restart reopen storm: every live workstation runs
// the recovery protocol against srv. Time-to-reconsistency is measured
// from the crash to the slowest client's protocol completion.
func (inj *Injector) recoverAll(srv *server.Server, crashedAt time.Duration) {
	storm := 0
	var slowest time.Duration
	for _, ws := range inj.sys.Workstations() {
		res := ws.RecoverServer(srv)
		storm += res.Reopened
		inj.st.ReplayedBytes += res.ReplayedBytes
		if res.Latency > slowest {
			slowest = res.Latency
		}
	}
	ttr := inj.sys.Clock().Now() - crashedAt + slowest
	srv.NoteRecovery(ttr)
	if ttr > inj.st.MaxTimeToReconsistency {
		inj.st.MaxTimeToReconsistency = ttr
	}
	if storm > inj.st.MaxReopenStorm {
		inj.st.MaxReopenStorm = storm
	}
}

func (inj *Injector) findWorkstation(id int32) *client.Client {
	for _, ws := range inj.sys.Workstations() {
		if ws.ID() == id {
			return ws
		}
	}
	return nil
}

// window is a [from, to) interval adding extra latency to every RPC.
type window struct {
	from, to time.Duration
	extra    time.Duration
}

// dropWindow loses every every-th RPC in [from, to), charging retry per loss.
type dropWindow struct {
	from, to time.Duration
	every    int
	retry    time.Duration
	count    int
}

// hook implements netsim.Hook from the injector's active fault windows.
// Partitions and outages stall an RPC until the window heals; the wire's
// accounting keeps stall time out of utilization (waiting is not transfer).
type hook struct {
	clock   interface{ Now() time.Duration }
	srvHeal map[int16]time.Duration
	cliHeal map[int32]time.Duration
	delays  []window
	drops   []*dropWindow
}

func (h *hook) Outcome(srv int16, cli int32, class netsim.Class, payload int64) netsim.Outcome {
	now := h.clock.Now()
	var o netsim.Outcome
	if heal, ok := h.srvHeal[srv]; ok && now < heal {
		o.ExtraDelay += heal - now
	}
	if heal, ok := h.cliHeal[cli]; ok && now < heal {
		o.ExtraDelay += heal - now
	}
	for _, w := range h.delays {
		if now >= w.from && now < w.to {
			o.ExtraDelay += w.extra
		}
	}
	for _, d := range h.drops {
		if now >= d.from && now < d.to {
			d.count++
			if d.count%d.every == 0 {
				o.Dropped++
				o.ExtraDelay += d.retry
			}
		}
	}
	return o
}
