package vm

import "time"

// PageSize is the machine page size, equal to the cache block size (4 KB).
const PageSize = 4096

// IdleThreshold is how long a VM page must be unreferenced before the file
// cache may claim it (20 minutes in Sprite, chosen after benchmarking).
const IdleThreshold = 20 * time.Minute

// Memory arbitrates one client's physical pages between the virtual memory
// system and the file cache. The file cache's capacity always equals the
// fs share; the client glue keeps fscache.Cache in sync via GrowBy /
// TakeForVM.
type Memory struct {
	total int
	vm    int
	fs    int
	free  int
	fsMin int
}

// NewMemory returns an arbiter over totalPages pages of which the file
// cache initially owns fsInitial (with a floor of fsMin, which the cache
// never drops below — Sprite keeps a minimal cache even under VM pressure).
func NewMemory(totalPages, fsInitial, fsMin int) *Memory {
	if totalPages <= 0 || fsInitial < fsMin || fsMin < 1 || fsInitial > totalPages {
		panic("vm: invalid memory configuration")
	}
	return &Memory{total: totalPages, fs: fsInitial, free: totalPages - fsInitial, fsMin: fsMin}
}

// Total returns total physical pages.
func (m *Memory) Total() int { return m.total }

// VMPages returns pages owned by the virtual memory system.
func (m *Memory) VMPages() int { return m.vm }

// FSPages returns pages owned by the file cache.
func (m *Memory) FSPages() int { return m.fs }

// FreePages returns unowned pages.
func (m *Memory) FreePages() int { return m.free }

// AcquireVM grants up to n pages to the VM system, taking free pages first
// and then file-cache pages (VM has preference) down to the cache floor.
// It returns the pages granted and how many must be surrendered by the
// file cache (the caller evicts that many blocks via fscache.TakeForVM).
func (m *Memory) AcquireVM(n int) (granted, fromFS int) {
	if n <= 0 {
		return 0, 0
	}
	take := n
	if take > m.free {
		fromFS = take - m.free
		if avail := m.fs - m.fsMin; fromFS > avail {
			fromFS = avail
		}
		take = m.free + fromFS
	}
	m.free -= take - fromFS
	m.fs -= fromFS
	m.vm += take
	return take, fromFS
}

// ReleaseVM returns n pages from the VM system to the free pool.
func (m *Memory) ReleaseVM(n int) {
	if n <= 0 {
		return
	}
	if n > m.vm {
		n = m.vm
	}
	m.vm -= n
	m.free += n
}

// AcquireFS grants up to n pages to the file cache: free pages first, then
// — only if idleVM pages are available (VM pages unreferenced for at least
// IdleThreshold, as reported by the VM system) — idle VM pages. It returns
// pages granted and how many came out of VM (the caller informs the VM
// system so it can drop those pages).
func (m *Memory) AcquireFS(n, idleVM int) (granted, fromVM int) {
	if n <= 0 {
		return 0, 0
	}
	take := n
	if take > m.free {
		fromVM = take - m.free
		if fromVM > idleVM {
			fromVM = idleVM
		}
		if fromVM > m.vm {
			fromVM = m.vm
		}
		take = m.free + fromVM
	}
	m.free -= take - fromVM
	m.vm -= fromVM
	m.fs += take
	return take, fromVM
}

// ReleaseFS returns n pages from the file cache to the free pool (used on
// client "reboot" style resets; normal shrinking goes through AcquireVM).
func (m *Memory) ReleaseFS(n int) {
	if n <= 0 {
		return
	}
	if n > m.fs-m.fsMin {
		n = m.fs - m.fsMin
	}
	if n < 0 {
		n = 0
	}
	m.fs -= n
	m.free += n
}

// check verifies the page conservation invariant; exported for tests via
// Consistent.
func (m *Memory) Consistent() bool {
	return m.vm >= 0 && m.fs >= m.fsMin && m.free >= 0 && m.vm+m.fs+m.free == m.total
}
