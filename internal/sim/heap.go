package sim

// One-shot event storage and ordering: a free-list arena of event values
// plus an inlined, monomorphic 4-ary index min-heap over arena slots.
//
// The previous implementation used container/heap over a []*event, which
// heap-allocated one boxed event per Schedule call and paid an interface
// dispatch per comparison. Here events live by value in a reusable arena
// (`pool`); the heap orders int32 slot indices, so pushes and pops move
// 4-byte indices instead of 40-byte structs, sift compares are direct
// field loads, and steady-state At/After performs zero allocations once
// the arena and heap slices have grown to the high-water mark.
//
// A 4-ary layout halves tree depth versus binary: sift-down does more
// comparisons per level but far fewer cache-missing level hops, which is
// the right trade for the simulator's deep (10k+ event) queues.

// event is one scheduled callback. Events are ordered by (at, seq):
// virtual time first, then FIFO among events scheduled for the same time.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among same-time events
	fn   func()
	next int32 // free-list link while the slot is unused
}

// eventQueue is the one-shot event scheduler state.
type eventQueue struct {
	pool []event
	free int32   // head of the free-slot list, -1 when empty
	heap []int32 // 4-ary min-heap of pool indices
}

func newEventQueue() eventQueue {
	return eventQueue{free: -1}
}

// alloc takes a slot from the free list (or grows the arena) and fills it.
func (q *eventQueue) alloc(at Time, seq uint64, fn func()) int32 {
	i := q.free
	if i >= 0 {
		q.free = q.pool[i].next
	} else {
		q.pool = append(q.pool, event{})
		i = int32(len(q.pool) - 1)
	}
	e := &q.pool[i]
	e.at = at
	e.seq = seq
	e.fn = fn
	return i
}

// release returns a slot to the free list. The callback reference is
// cleared so the arena does not pin dead closures.
func (q *eventQueue) release(i int32) {
	e := &q.pool[i]
	e.fn = nil
	e.next = q.free
	q.free = i
}

// freeLen counts free-listed slots (pool-occupancy introspection; the
// spritefs_sim_event_pool_free gauge reads it).
func (q *eventQueue) freeLen() int {
	n := 0
	for i := q.free; i >= 0; i = q.pool[i].next {
		n++
	}
	return n
}

func (q *eventQueue) len() int { return len(q.heap) }

// min returns the earliest pending event's ordering key without
// disturbing the heap.
func (q *eventQueue) min() (at Time, seq uint64, ok bool) {
	if len(q.heap) == 0 {
		return 0, 0, false
	}
	e := &q.pool[q.heap[0]]
	return e.at, e.seq, true
}

// less orders two arena slots by (at, seq).
func (q *eventQueue) less(a, b int32) bool {
	ea, eb := &q.pool[a], &q.pool[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// push inserts slot i into the heap.
func (q *eventQueue) push(i int32) {
	q.heap = append(q.heap, i)
	// Sift up.
	c := len(q.heap) - 1
	for c > 0 {
		p := (c - 1) >> 2
		if !q.less(q.heap[c], q.heap[p]) {
			break
		}
		q.heap[c], q.heap[p] = q.heap[p], q.heap[c]
		c = p
	}
}

// popMin removes and returns the minimum slot.
func (q *eventQueue) popMin() int32 {
	h := q.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	q.heap = h[:last]
	if last > 1 {
		q.siftDown(0)
	}
	return top
}

// siftDown restores heap order below position p.
func (q *eventQueue) siftDown(p int) {
	h := q.heap
	n := len(h)
	for {
		first := p<<2 + 1
		if first >= n {
			return
		}
		// Find the smallest of up to four children.
		m := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.less(h[c], h[m]) {
				m = c
			}
		}
		if !q.less(h[m], h[p]) {
			return
		}
		h[p], h[m] = h[m], h[p]
		p = m
	}
}
