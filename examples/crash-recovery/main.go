// crash-recovery demonstrates the fault-injection subsystem: run a busy
// community, crash a file server mid-run, and read what the crash cost
// straight off the recovery counters. The paper's delayed-write bargain
// — "users can lose at most 30 seconds of work" — becomes a measured
// number: the oldest dirty byte destroyed is never older than the
// writeback delay plus one cleaner period.
//
//	go run ./examples/crash-recovery
package main

import (
	"fmt"
	"log"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/faults"
	"spritefs/internal/fscache"
	"spritefs/internal/workload"
)

func main() {
	// Server 0 crashes an hour in and stays unreachable for 30 seconds;
	// ten minutes later the clients sharing it lose their network for 20s.
	sched, err := faults.Parse("server-crash:0@1h/30s,partition:2@1h10m/20s")
	if err != nil {
		log.Fatal(err)
	}

	p := workload.Default(42)
	p.NumClients = 10
	p.DailyUsers = 8
	p.OccasionalUsers = 4
	cfg := cluster.DefaultConfig(p)
	cfg.NumServers = 2
	cfg.Faults = sched

	c := cluster.New(cfg)
	fmt.Printf("running 10 workstations for 2 simulated hours under schedule:\n  %s\n\n", sched)
	c.Run(2 * time.Hour)

	rec := c.RecoveryReport()
	fmt.Println("What the crash cost:")
	fmt.Printf("  server crashes            %d\n", rec.ServerCrashes)
	fmt.Printf("  open registrations lost   %d\n", rec.OpensLostInCrash)
	fmt.Printf("  dirty bytes destroyed     %d\n", rec.DirtyBytesLost)
	fmt.Printf("  oldest destroyed byte     %v old\n", rec.MaxDirtyAge.Round(time.Millisecond))
	fmt.Printf("  (bound: writeback delay %v + cleaner period %v)\n\n",
		fscache.WritebackDelay, fscache.CleanerPeriod)

	fmt.Println("What recovery repaired:")
	fmt.Printf("  recovery protocol runs    %d\n", rec.Recoveries)
	fmt.Printf("  handles re-registered     %d\n", rec.RecoveryOpens)
	fmt.Printf("  dirty bytes replayed      %d\n", rec.ReplayedBytes)
	fmt.Printf("  write-sharing re-detected %d\n", rec.RecoveryCWS)
	fmt.Printf("  time to reconsistency     %v\n\n", rec.MaxTimeToReconsistency.Round(time.Millisecond))

	fmt.Println("What the network faults looked like on the wire:")
	fmt.Printf("  stalled RPCs              %d (total stall %v)\n",
		rec.StalledOps, rec.StallTime.Round(time.Millisecond))

	if rec.MaxDirtyAge <= fscache.WritebackDelay+fscache.CleanerPeriod+time.Second {
		fmt.Println("\nThe 30-second bound held: everything older was already on the server.")
	} else {
		fmt.Println("\nBOUND VIOLATED — this should never print; file a bug.")
	}
}
