package check

import (
	"fmt"
	"testing"

	"spritefs/internal/client"
	"spritefs/internal/netsim"
	"spritefs/internal/server"
	"spritefs/internal/sim"
)

// BenchmarkRecoveryStorm measures the reopen storm a restarted server
// absorbs: N workstations, each holding an open write handle with dirty
// cached data, all running the recovery protocol back to back.
func BenchmarkRecoveryStorm(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("clients=%d", n), func(b *testing.B) {
			clock := sim.New(1)
			net := netsim.New(netsim.DefaultConfig())
			srv := server.New(0)
			srv.AttachStorage(64 << 10)
			route := func(uint64) *server.Server { return srv }

			clients := make([]*client.Client, n)
			handles := make([]uint64, n)
			for i := range clients {
				c := client.New(client.DefaultConfig(int32(i)), clock, net, route, srv, nil)
				clients[i] = c
				file := c.Create(1, 1, false, false)
				h, _, err := c.Open(1, 1, file, false, true, false)
				if err != nil {
					b.Fatal(err)
				}
				handles[i] = h
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, c := range clients {
					c.Write(handles[j], 4096)
				}
				now := clock.Now()
				srv.Crash(now)
				srv.Restart(now)
				storm := 0
				for _, c := range clients {
					storm += c.RecoverServer(srv).Reopened
				}
				if storm != n {
					b.Fatalf("storm re-registered %d handles, want %d", storm, n)
				}
			}
		})
	}
}
