package analysis

import (
	"time"

	"spritefs/internal/trace"
)

// Overall reproduces Table 1: the per-trace summary statistics.
type Overall struct {
	Duration       time.Duration
	Users          int
	MigrationUsers int
	MBReadFiles    float64
	MBWrittenFiles float64
	MBReadDirs     float64
	Opens          int64
	Closes         int64
	Repositions    int64
	Deletes        int64
	Truncates      int64
	SharedReads    int64
	SharedWrites   int64

	users    map[int32]bool
	migUsers map[int32]bool
}

// NewOverall returns a Table 1 analyzer.
func NewOverall() *Overall {
	return &Overall{users: make(map[int32]bool), migUsers: make(map[int32]bool)}
}

// Observe implements Sink.
func (o *Overall) Observe(r *trace.Record) {
	if r.Time > o.Duration {
		o.Duration = r.Time
	}
	o.users[r.User] = true
	if r.IsMigrated() {
		o.migUsers[r.User] = true
	}
	const mb = 1 << 20
	switch r.Kind {
	case trace.KindOpen:
		o.Opens++
	case trace.KindClose:
		o.Closes++
	case trace.KindReposition:
		o.Repositions++
	case trace.KindDelete:
		o.Deletes++
	case trace.KindTruncate:
		o.Truncates++
	case trace.KindRead:
		o.MBReadFiles += float64(r.Length) / mb
		if r.Flags&trace.FlagShared != 0 {
			o.SharedReads++
		}
	case trace.KindWrite:
		o.MBWrittenFiles += float64(r.Length) / mb
		if r.Flags&trace.FlagShared != 0 {
			o.SharedWrites++
		}
	case trace.KindDirRead:
		o.MBReadDirs += float64(r.Length) / mb
	}
}

// Finish implements Sink.
func (o *Overall) Finish() {
	o.Users = len(o.users)
	o.MigrationUsers = len(o.migUsers)
}
