package fscache

import (
	"testing"
	"time"
)

func TestWritebackDelayOverride(t *testing.T) {
	c := New(16)
	c.SetWritebackDelay(5 * time.Second)
	if c.WriteDelay() != 5*time.Second {
		t.Fatalf("delay = %v", c.WriteDelay())
	}
	c.Write(1, 0, 4096, 0, Attr{}, 0)
	if wbs := c.Clean(4 * time.Second); len(wbs) != 0 {
		t.Error("cleaned before the shortened delay")
	}
	if wbs := c.Clean(6 * time.Second); len(wbs) != 1 {
		t.Error("did not clean after the shortened delay")
	}
	// Non-positive restores the default.
	c.SetWritebackDelay(0)
	if c.WriteDelay() != WritebackDelay {
		t.Errorf("delay = %v, want default", c.WriteDelay())
	}
}

func TestPrefetchFillsFollowingBlocks(t *testing.T) {
	c := New(64)
	c.SetPrefetch(3)
	const fileSize = 10 * BlockSize
	res := c.Read(1, 0, 100, fileSize, Attr{}, 0)
	// One demanded block plus three prefetched.
	if res.MissBlocks != 4 {
		t.Fatalf("miss blocks = %d, want 4", res.MissBlocks)
	}
	if res.MissBytes != 4*BlockSize {
		t.Errorf("miss bytes = %d", res.MissBytes)
	}
	for b := int64(0); b < 4; b++ {
		if !c.Contains(1, b) {
			t.Errorf("block %d not resident after prefetch", b)
		}
	}
	// Reading the prefetched range now hits entirely.
	res = c.Read(1, BlockSize, 3*BlockSize, fileSize, Attr{}, time.Second)
	if res.MissBytes != 0 {
		t.Errorf("prefetched read missed %d bytes", res.MissBytes)
	}
	// Only the demanded block counted as a read op; prefetches do not
	// inflate the op statistics.
	st := c.Stats()
	if st.All.ReadMisses != 1 {
		t.Errorf("read misses = %d, want 1", st.All.ReadMisses)
	}
}

func TestPrefetchStopsAtEOFAndResidentBlocks(t *testing.T) {
	c := New(64)
	c.SetPrefetch(8)
	// Two-block file: at most one prefetch possible.
	res := c.Read(1, 0, 100, 2*BlockSize, Attr{}, 0)
	if res.MissBlocks != 2 {
		t.Errorf("miss blocks = %d, want 2 (EOF bound)", res.MissBlocks)
	}
	// Partial tail block prefetches only the valid bytes.
	c2 := New(64)
	c2.SetPrefetch(2)
	res = c2.Read(2, 0, 100, BlockSize+500, Attr{}, 0)
	if res.MissBytes != BlockSize+500 {
		t.Errorf("miss bytes = %d, want %d", res.MissBytes, BlockSize+500)
	}
	// A resident next block stops the prefetch scan.
	c3 := New(64)
	c3.Read(3, BlockSize, 10, 4*BlockSize, Attr{}, 0) // block 1 resident
	c3.SetPrefetch(4)
	res = c3.Read(3, 0, 10, 4*BlockSize, Attr{}, time.Second)
	if res.MissBlocks != 1 {
		t.Errorf("prefetch ran past a resident block: %d misses", res.MissBlocks)
	}
	// Negative prefetch is clamped off.
	c3.SetPrefetch(-5)
	res = c3.Read(3, 2*BlockSize, 10, 4*BlockSize, Attr{}, 2*time.Second)
	if res.MissBlocks != 1 {
		t.Errorf("negative prefetch fetched extra: %d", res.MissBlocks)
	}
}

func TestPrefetchEvictsUnderPressure(t *testing.T) {
	c := New(4)
	c.SetPrefetch(8)
	res := c.Read(1, 0, 100, 100*BlockSize, Attr{}, 0)
	if c.NumBlocks() > c.Capacity() {
		t.Fatalf("over capacity: %d > %d", c.NumBlocks(), c.Capacity())
	}
	_ = res
}

func TestCleanScanPrefersCleanVictims(t *testing.T) {
	c := New(4)
	// Fill with: dirty (LRU tail), then three clean blocks.
	c.Write(1, 0, BlockSize, 0, Attr{}, 0)
	for f := uint64(2); f <= 4; f++ {
		c.Read(f, 0, BlockSize, BlockSize, Attr{}, time.Duration(f)*time.Second)
	}
	// Next insert evicts: the dirty tail must be skipped in favour of the
	// oldest clean block (file 2).
	res := c.Read(5, 0, BlockSize, BlockSize, Attr{}, 10*time.Second)
	if len(res.Evicted) != 0 {
		t.Errorf("dirty block evicted despite clean candidates: %+v", res.Evicted)
	}
	if !c.Contains(1, 0) {
		t.Error("dirty block was the victim")
	}
	if c.Contains(2, 0) {
		t.Error("oldest clean block survived")
	}
}

func TestReadRefreshesPartiallyValidBlock(t *testing.T) {
	// A block resident with only a valid prefix (from a short write) must
	// fetch its tail when a read wants more of it.
	c := New(16)
	c.Write(1, 0, 1000, 0, Attr{}, 0) // block 0 valid to 1000
	c.Fsync(1, 0)                     // clean it
	// The file has grown to 3000 bytes at the server meanwhile.
	res := c.Read(1, 0, 3000, 3000, Attr{}, sec(1))
	if res.MissBytes != 2000 {
		t.Errorf("tail fetch = %d bytes, want 2000", res.MissBytes)
	}
	// Now fully valid: no more fetches.
	res = c.Read(1, 0, 3000, 3000, Attr{}, sec(2))
	if res.MissBytes != 0 {
		t.Errorf("refetch after refresh: %d", res.MissBytes)
	}
}

func TestTruncateToSameSizeKeepsData(t *testing.T) {
	c := New(16)
	c.Write(1, 0, 2*BlockSize, 0, Attr{}, 0)
	saved := c.Truncate(1, 2*BlockSize)
	if saved != 0 {
		t.Errorf("no-op truncate saved %d", saved)
	}
	if c.NumBlocks() != 2 {
		t.Errorf("blocks = %d", c.NumBlocks())
	}
}

func TestStatsSnapshotsSizeAndDirty(t *testing.T) {
	c := New(16)
	c.Write(1, 0, 1000, 0, Attr{}, 0)
	st := c.Stats()
	if st.SizeBytes != BlockSize || st.DirtyBytes != 1000 {
		t.Errorf("snapshot size=%d dirty=%d", st.SizeBytes, st.DirtyBytes)
	}
}

func TestWriteNegativeOffsetPanics(t *testing.T) {
	c := New(16)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	c.Write(1, -1, 10, 0, Attr{}, 0)
}
