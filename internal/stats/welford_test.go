package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	if d <= eps {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= eps*m
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Stddev() != 0 || w.Sum() != 0 {
		t.Fatalf("zero-value Welford not all-zero: %+v", w)
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.N() != 1 {
		t.Errorf("N = %d, want 1", w.N())
	}
	if w.Mean() != 42 {
		t.Errorf("Mean = %g, want 42", w.Mean())
	}
	if w.Stddev() != 0 {
		t.Errorf("Stddev = %g, want 0", w.Stddev())
	}
	if w.Min() != 42 || w.Max() != 42 {
		t.Errorf("Min/Max = %g/%g, want 42/42", w.Min(), w.Max())
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if got := w.Mean(); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := w.Stddev(); got != 2 {
		t.Errorf("Stddev = %g, want 2", got)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %g/%g, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordAddN(t *testing.T) {
	var a, b Welford
	a.AddN(3, 4)
	for i := 0; i < 4; i++ {
		b.Add(3)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Var() != b.Var() {
		t.Errorf("AddN mismatch: %+v vs %+v", a, b)
	}
	a.AddN(5, 0)
	if a.N() != 4 {
		t.Errorf("AddN with k=0 changed N to %d", a.N())
	}
}

// Property: Welford matches the naive two-pass computation.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%50) + 2
		xs := make([]float64, k)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 10
			w.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(k)
		varsum := 0.0
		for _, x := range xs {
			varsum += (x - mean) * (x - mean)
		}
		varsum /= float64(k)
		return almostEqual(w.Mean(), mean, 1e-9) && almostEqual(w.Var(), varsum, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestWelfordMergeEquivalence(t *testing.T) {
	f := func(seed int64, na, nb uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b, all Welford
		for i := 0; i < int(na); i++ {
			x := rng.Float64() * 1000
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(nb); i++ {
			x := rng.Float64() * 1000
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			almostEqual(a.Mean(), all.Mean(), 1e-9) &&
			almostEqual(a.Var(), all.Var(), 1e-6) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	want := a
	a.Merge(b) // merging empty is a no-op
	if a != want {
		t.Errorf("merge with empty changed accumulator: %+v != %+v", a, want)
	}
	b.Merge(a) // merging into empty copies
	if b != want {
		t.Errorf("merge into empty: %+v != %+v", b, want)
	}
}
