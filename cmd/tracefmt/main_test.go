package main

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"

	"spritefs/internal/trace"
)

// allKindsTrace builds one record of every valid kind, with flags and
// field values chosen to exercise every column (hex fields, negative
// offsets from repositions are not legal, but negative client ids are).
func allKindsTrace() []trace.Record {
	kinds := []trace.Kind{
		trace.KindOpen, trace.KindClose, trace.KindRead, trace.KindWrite,
		trace.KindReposition, trace.KindCreate, trace.KindDelete,
		trace.KindTruncate, trace.KindMigrate, trace.KindDirRead,
	}
	flags := []uint8{
		trace.FlagReadMode, trace.FlagWriteMode, 0, trace.FlagMigrated,
		0, trace.FlagDirectory, 0, 0, trace.FlagSelfTrace, trace.FlagDirectory,
	}
	recs := make([]trace.Record, 0, len(kinds))
	for i, k := range kinds {
		recs = append(recs, trace.Record{
			Time:   time.Duration(i+1) * 73 * time.Millisecond,
			Kind:   k,
			Flags:  flags[i],
			Server: int16(i % 4),
			Client: int32(i - 2), // includes negative (system) clients
			User:   int32(100 + i),
			Proc:   int32(7000 + i),
			File:   uint64(i%4)<<48 | uint64(i+1),
			Handle: uint64(i)<<40 | uint64(i+11),
			Offset: int64(i) * 4096,
			Length: int64(i) * 512,
			Size:   int64(i) * 8192,
		})
	}
	return recs
}

// TestRoundTripAllKinds drives the tool's own conversion path through
// text -> binary -> text and binary -> text -> binary for every record
// kind, checking both byte-level and record-level equality.
func TestRoundTripAllKinds(t *testing.T) {
	recs := allKindsTrace()

	// Author the canonical binary form.
	var bin bytes.Buffer
	w, err := trace.NewWriter(&bin)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// binary -> text -> binary must reproduce the bytes exactly.
	var text, bin2 bytes.Buffer
	if err := convert(bytes.NewReader(bin.Bytes()), &text, false); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := convert(bytes.NewReader(text.Bytes()), &bin2, true); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(bin.Bytes(), bin2.Bytes()) {
		t.Fatal("binary -> text -> binary is not byte-identical")
	}

	// text -> binary -> text likewise.
	var text2 bytes.Buffer
	if err := convert(bytes.NewReader(bin2.Bytes()), &text2, false); err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if !bytes.Equal(text.Bytes(), text2.Bytes()) {
		t.Fatal("text -> binary -> text is not byte-identical")
	}

	// And the decoded records must equal the originals field for field.
	r, err := trace.NewReader(bytes.NewReader(bin2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("records mutated in round trip:\n got %+v\nwant %+v", got, recs)
	}
}

func TestConvertRejectsWrongFormat(t *testing.T) {
	recs := allKindsTrace()
	var bin bytes.Buffer
	w, err := trace.NewWriter(&bin)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Feeding binary to the text decoder (and vice versa) must error, not
	// silently emit garbage.
	if err := convert(bytes.NewReader(bin.Bytes()), io.Discard, true); err == nil {
		t.Error("encoding binary input as text did not error")
	}
	if err := convert(bytes.NewReader([]byte("#nottrace\n")), io.Discard, true); err == nil {
		t.Error("bad text header accepted")
	}
	if err := convert(bytes.NewReader([]byte("#sprtrc\n1\tbogus\t0\t0\t0\t0\t0\t0\t0\t0\t0\t0\n")), io.Discard, true); err == nil {
		t.Error("bad kind name accepted")
	}
}
