package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type a scrape endpoint must declare
// when serving WritePrometheus output (text exposition format version
// 0.0.4). The live HTTP frontend sets it on /metrics responses.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// formatFloat renders a float deterministically: the shortest decimal that
// round-trips, so identical values produce identical bytes everywhere.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the current snapshot in the Prometheus text
// exposition format: one # HELP / # TYPE pair per family followed by its
// instances sorted by labels. Summaries render as untyped expanded points
// (the _count/_sum/... suffixes carry the distribution).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastFam string
	for _, p := range r.Snapshot() {
		fam := familyOf(p)
		if fam.name != lastFam {
			lastFam = fam.name
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				fam.name, fam.help, fam.name, fam.promType); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", p.Name, p.Labels, p.Value()); err != nil {
			return err
		}
	}
	return nil
}

// famMeta is the per-family header a Prometheus dump needs, recovered from
// a point (summaries expand to suffixed names that share a family).
type famMeta struct{ name, help, promType string }

var summarySuffixes = []string{"_count", "_sum", "_mean", "_stddev", "_min", "_max"}

func familyOf(p Point) famMeta {
	name := p.Name
	if p.Kind == Summary {
		for _, s := range summarySuffixes {
			if strings.HasSuffix(name, s) {
				name = strings.TrimSuffix(name, s)
				break
			}
		}
		return famMeta{name: name, help: "(summary; see docs/METRICS.md)", promType: "untyped"}
	}
	t := "gauge"
	if p.Kind == Counter {
		t = "counter"
	}
	return famMeta{name: name, help: "(unit: " + p.Unit + "; see docs/METRICS.md)", promType: t}
}

// WriteTSV renders the snapshot as one "name labels unit value" row per
// point, tab-separated with a header line. Empty label sets render as "-".
func (r *Registry) WriteTSV(w io.Writer) error {
	if _, err := io.WriteString(w, "metric\tlabels\tunit\tvalue\n"); err != nil {
		return err
	}
	for _, p := range r.Snapshot() {
		labels := p.Labels
		if labels == "" {
			labels = "-"
		}
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", p.Name, labels, p.Unit, p.Value()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL renders the snapshot as one JSON object per line. The JSON is
// hand-assembled so integer counters stay exact and key order is fixed.
func (r *Registry) WriteJSONL(w io.Writer) error {
	for _, p := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "{\"name\":%q,\"labels\":%q,\"unit\":%q,\"value\":%s}\n",
			p.Name, p.Labels, p.Unit, p.Value()); err != nil {
			return err
		}
	}
	return nil
}

// Dump renders the snapshot in the named format: "prom", "tsv" or "jsonl".
func (r *Registry) Dump(w io.Writer, format string) error {
	switch format {
	case "prom", "prometheus":
		return r.WritePrometheus(w)
	case "tsv":
		return r.WriteTSV(w)
	case "jsonl", "json":
		return r.WriteJSONL(w)
	default:
		return fmt.Errorf("metrics: unknown dump format %q (prom, tsv, jsonl)", format)
	}
}
