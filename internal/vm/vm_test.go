package vm

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestMemoryConfigValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMemory(0, 0, 1) },
		func() { NewMemory(100, 0, 1) },   // fsInitial < fsMin
		func() { NewMemory(100, 10, 0) },  // fsMin < 1
		func() { NewMemory(100, 200, 1) }, // fsInitial > total
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMemoryAcquireVMPrefersFreeThenFS(t *testing.T) {
	m := NewMemory(100, 40, 10)
	if m.FreePages() != 60 {
		t.Fatalf("free = %d", m.FreePages())
	}
	granted, fromFS := m.AcquireVM(50)
	if granted != 50 || fromFS != 0 {
		t.Errorf("granted=%d fromFS=%d", granted, fromFS)
	}
	// 10 free left, 40 FS (floor 10): asking for 30 takes 10 free + 20 FS.
	granted, fromFS = m.AcquireVM(30)
	if granted != 30 || fromFS != 20 {
		t.Errorf("granted=%d fromFS=%d", granted, fromFS)
	}
	// FS at 20 with floor 10: only 10 more available.
	granted, fromFS = m.AcquireVM(50)
	if granted != 10 || fromFS != 10 {
		t.Errorf("granted=%d fromFS=%d", granted, fromFS)
	}
	if m.FSPages() != 10 {
		t.Errorf("FS fell below floor: %d", m.FSPages())
	}
	if !m.Consistent() {
		t.Error("inconsistent shares")
	}
}

func TestMemoryAcquireFSRespectsIdleLimit(t *testing.T) {
	m := NewMemory(100, 20, 10)
	m.AcquireVM(80) // all free pages to VM
	// FS wants 30 but only 5 VM pages are idle.
	granted, fromVM := m.AcquireFS(30, 5)
	if granted != 5 || fromVM != 5 {
		t.Errorf("granted=%d fromVM=%d", granted, fromVM)
	}
	if m.FSPages() != 25 || !m.Consistent() {
		t.Errorf("fs=%d consistent=%v", m.FSPages(), m.Consistent())
	}
	// With free pages available FS takes them without touching VM.
	m.ReleaseVM(10)
	granted, fromVM = m.AcquireFS(8, 0)
	if granted != 8 || fromVM != 0 {
		t.Errorf("granted=%d fromVM=%d", granted, fromVM)
	}
}

func TestMemoryReleaseClamps(t *testing.T) {
	m := NewMemory(100, 20, 10)
	m.AcquireVM(5)
	m.ReleaseVM(50) // only 5 owned
	if m.VMPages() != 0 || !m.Consistent() {
		t.Errorf("vm=%d", m.VMPages())
	}
	m.ReleaseFS(50) // floor is 10
	if m.FSPages() != 10 || !m.Consistent() {
		t.Errorf("fs=%d", m.FSPages())
	}
	m.ReleaseVM(-3)
	m.ReleaseFS(-3)
	if !m.Consistent() {
		t.Error("negative releases broke invariant")
	}
}

// Property: the ownership invariant holds across random arbiter traffic.
func TestMemoryInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMemory(1000, 300, 16)
		for i := 0; i < 500; i++ {
			n := rng.Intn(100)
			switch rng.Intn(4) {
			case 0:
				m.AcquireVM(n)
			case 1:
				m.ReleaseVM(n)
			case 2:
				m.AcquireFS(n, rng.Intn(50))
			case 3:
				m.ReleaseFS(n)
			}
			if !m.Consistent() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// --- System tests ---

type ioLog struct {
	codeIn, dataIn, backIn, backOut int64
}

func testIO(l *ioLog) IO {
	return IO{
		CodeIn:     func(_ uint64, _, b int64, _ bool) { l.codeIn += b },
		DataIn:     func(_ uint64, _, b int64, _ bool) { l.dataIn += b },
		BackingIn:  func(b int64, _ bool) { l.backIn += b },
		BackingOut: func(b int64, _ bool) { l.backOut += b },
	}
}

func newSys(totalPages int) (*System, *Memory, *ioLog) {
	m := NewMemory(totalPages, totalPages/4, 8)
	l := &ioLog{}
	return NewSystem(m, testIO(l)), m, l
}

func TestSystemNilCallbackPanics(t *testing.T) {
	m := NewMemory(100, 20, 10)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewSystem(m, IO{})
}

func TestStartFaultsCodeAndData(t *testing.T) {
	s, m, l := newSys(1000)
	s.Start(1, 100, 10, 5, 2, false, 0)
	if l.codeIn != 10*PageSize {
		t.Errorf("code in = %d", l.codeIn)
	}
	if l.dataIn != 5*PageSize {
		t.Errorf("data in = %d", l.dataIn)
	}
	if l.backIn != 0 || l.backOut != 0 {
		t.Errorf("backing traffic on start: %d/%d", l.backIn, l.backOut)
	}
	if s.ResidentPages() != 17 {
		t.Errorf("resident = %d", s.ResidentPages())
	}
	if m.VMPages() != 17 || !m.Consistent() {
		t.Errorf("vm pages = %d", m.VMPages())
	}
}

func TestDuplicatePidPanics(t *testing.T) {
	s, _, _ := newSys(1000)
	s.Start(1, 100, 1, 1, 1, false, 0)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	s.Start(1, 100, 1, 1, 1, false, 0)
}

func TestCodeRetentionAcrossRuns(t *testing.T) {
	s, _, l := newSys(1000)
	s.Start(1, 100, 10, 2, 1, false, 0)
	s.Exit(1, time.Second)
	firstCode := l.codeIn
	// Re-run the same program: code pages come from the retained pool.
	s.Start(2, 100, 10, 2, 1, false, 2*time.Second)
	if l.codeIn != firstCode {
		t.Errorf("second run faulted code: %d -> %d", firstCode, l.codeIn)
	}
	if got := s.Stats().CodeReuse; got != 10 {
		t.Errorf("CodeReuse = %d", got)
	}
	// A different program still faults.
	s.Start(3, 200, 4, 1, 1, false, 3*time.Second)
	if l.codeIn != firstCode+4*PageSize {
		t.Errorf("different program code in = %d", l.codeIn)
	}
}

func TestExitDiscardsDataRetainsCode(t *testing.T) {
	s, m, l := newSys(1000)
	s.Start(1, 100, 10, 5, 2, false, 0)
	s.Touch(1, 8, time.Second) // grow heap by 8 dirty pages
	before := m.VMPages()
	if before != 25 {
		t.Fatalf("vm pages = %d", before)
	}
	s.Exit(1, 2*time.Second)
	// Heap/stack/data discarded with NO writeback; code retained.
	if l.backOut != 0 {
		t.Errorf("exit wrote %d backing bytes", l.backOut)
	}
	if m.VMPages() != 10 {
		t.Errorf("vm pages after exit = %d (retained code only)", m.VMPages())
	}
	if s.ResidentPages() != 10 {
		t.Errorf("resident = %d", s.ResidentPages())
	}
}

func TestEvictProcessWritesDirtyPages(t *testing.T) {
	s, m, l := newSys(1000)
	s.Start(1, 100, 2, 1, 3, true, 0)
	s.Touch(1, 5, time.Second) // 5 dirty heap pages
	s.EvictProcess(1, 2*time.Second)
	// 5 heap + 3 stack dirty pages go to the backing file.
	if l.backOut != 8*PageSize {
		t.Errorf("backing out = %d, want %d", l.backOut, 8*PageSize)
	}
	if m.VMPages() != 0 {
		t.Errorf("vm pages after eviction = %d", m.VMPages())
	}
	// Touch after eviction refaults the dirty pages from backing store.
	s.Touch(1, 0, 3*time.Second)
	if l.backIn != 8*PageSize {
		t.Errorf("backing in = %d, want %d", l.backIn, 8*PageSize)
	}
	if got := s.Stats().Refaults; got != 8 {
		t.Errorf("refaults = %d", got)
	}
}

func TestMemoryPressureEvictsRetainedThenPagesOut(t *testing.T) {
	// 64 pages total, fsMin 8: VM can own at most 56.
	m := NewMemory(64, 8, 8)
	l := &ioLog{}
	s := NewSystem(m, testIO(l))
	// Fill with a big idle process (40 pages incl. 20 dirty heap).
	s.Start(1, 100, 10, 10, 0, false, 0)
	s.Touch(1, 20, time.Second)
	// Second process demands 30 pages: free pool has 64-8-40=16, so ~14
	// must come from evicting process 1 (code/init first, then dirty).
	s.Start(2, 200, 20, 10, 0, false, 2*time.Second)
	if !m.Consistent() {
		t.Fatal("arbiter inconsistent")
	}
	if s.Stats().Evictions == 0 {
		t.Error("no evictions under pressure")
	}
	// 30 demanded - 16 free = 14 evicted; 10 code + ... wait, code of the
	// *requester* is protected; victim is process 1: 10 code + 10 init
	// clean drops cover 14 only partially -> some dirty pageout possible.
	if l.backOut < 0 {
		t.Error("impossible")
	}
}

func TestIdlePagesAndDropIdle(t *testing.T) {
	s, m, _ := newSys(1000)
	s.Start(1, 100, 10, 2, 1, false, 0)
	s.Exit(1, 0) // 10 retained code pages, lastUse 0
	s.Start(2, 200, 5, 1, 1, false, 0)
	// At t=10min nothing is idle yet (threshold 20 min).
	if got := s.IdlePages(10 * time.Minute); got != 0 {
		t.Errorf("idle at 10min = %d", got)
	}
	// At t=25min the retained code AND the untouched process are idle.
	at := 25 * time.Minute
	if got := s.IdlePages(at); got != 17 {
		t.Errorf("idle at 25min = %d, want 17", got)
	}
	// With ample free memory the FS claim never touches VM pages.
	granted, fromVM := m.AcquireFS(12, s.IdlePages(at))
	if granted != 12 || fromVM != 0 {
		t.Fatalf("granted = %d fromVM = %d", granted, fromVM)
	}
	if !m.Consistent() {
		t.Error("arbiter inconsistent after FS claim")
	}
	// DropIdle surrenders retained code first.
	if dropped := s.DropIdle(4, at); dropped != 4 {
		t.Errorf("dropped = %d, want 4", dropped)
	}
	if got := s.IdlePages(at); got != 13 {
		t.Errorf("idle after drop = %d, want 13", got)
	}
	// Touching process 2 makes it non-idle; only retained code remains.
	s.Touch(2, 0, at)
	if got := s.IdlePages(at); got != 6 {
		t.Errorf("idle after touch = %d, want 6 (remaining retained code)", got)
	}
}

func TestTouchUnknownPidIgnored(t *testing.T) {
	s, _, _ := newSys(100)
	s.Touch(99, 5, 0) // must not panic
	s.Exit(99, 0)
	s.EvictProcess(99, 0)
}

func TestPageClassString(t *testing.T) {
	if PageCode.String() != "code" || PageStack.String() != "stack" {
		t.Error("class names wrong")
	}
	if PageClass(77).String() != "pageclass(77)" {
		t.Error("unknown class name wrong")
	}
}

// Property: arbiter consistency and non-negative resident counts across
// random process lifecycles.
func TestSystemInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMemory(256, 64, 8)
		l := &ioLog{}
		s := NewSystem(m, testIO(l))
		live := map[int32]bool{}
		next := int32(1)
		now := time.Duration(0)
		for i := 0; i < 300; i++ {
			now += time.Duration(rng.Intn(60)) * time.Second
			switch rng.Intn(5) {
			case 0, 1:
				pid := next
				next++
				live[pid] = true
				s.Start(pid, uint64(rng.Intn(5)+1), rng.Intn(20), rng.Intn(10), rng.Intn(4), rng.Intn(2) == 0, now)
			case 2:
				for pid := range live {
					s.Touch(pid, rng.Intn(10), now)
					break
				}
			case 3:
				for pid := range live {
					s.Exit(pid, now)
					delete(live, pid)
					break
				}
			case 4:
				for pid := range live {
					s.EvictProcess(pid, now)
					break
				}
			}
			if !m.Consistent() || s.ResidentPages() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFreeReleasesHeapWithoutIO(t *testing.T) {
	s, m, l := newSys(1000)
	s.Start(1, 100, 2, 1, 1, false, 0)
	s.Touch(1, 50, time.Second)
	before := m.VMPages()
	n := s.Free(1, 20, 2*time.Second)
	if n != 20 {
		t.Errorf("freed %d, want 20", n)
	}
	if m.VMPages() != before-20 {
		t.Errorf("vm pages = %d, want %d", m.VMPages(), before-20)
	}
	if l.backOut != 0 || l.backIn != 0 {
		t.Error("Free caused backing I/O")
	}
	// Free clamps at the heap size and tolerates unknown pids.
	if n := s.Free(1, 1000, 3*time.Second); n != 30 {
		t.Errorf("clamped free = %d, want 30", n)
	}
	if n := s.Free(99, 5, 0); n != 0 {
		t.Errorf("free on unknown pid = %d", n)
	}
}

func TestPageOutWritesBackingAndRefaults(t *testing.T) {
	s, m, l := newSys(1000)
	s.Start(1, 100, 2, 1, 1, false, 0)
	s.Touch(1, 40, time.Second)
	n := s.PageOut(1, 25, 2*time.Second)
	if n != 25 {
		t.Fatalf("paged out %d, want 25", n)
	}
	if l.backOut != 25*PageSize {
		t.Errorf("backing out = %d", l.backOut)
	}
	if !m.Consistent() {
		t.Error("arbiter inconsistent after pageout")
	}
	// Touch refaults everything.
	s.Touch(1, 0, 3*time.Second)
	if l.backIn != 25*PageSize {
		t.Errorf("backing in = %d", l.backIn)
	}
	// Degenerate calls.
	if s.PageOut(1, 0, 0) != 0 || s.PageOut(99, 5, 0) != 0 {
		t.Error("degenerate pageout moved pages")
	}
	// Clamped at heap size.
	if n := s.PageOut(1, 10000, 4*time.Second); n != 40+25-25 {
		t.Errorf("clamped pageout = %d, want 40", n)
	}
}
