// Shard-aware sweep driver: replay one trace as a sharded community.
//
// Where RunSweep holds the trace fixed and varies the configuration,
// RunSharded holds the configuration fixed and varies the topology: the
// trace's clients are partitioned across shards and each shard replays its
// sub-trace against a hermetic engine, exactly how internal/scale splits a
// live community across segments. Results are merged in shard order, so
// the aggregate table is byte-identical for any worker count.
package replay

import (
	"fmt"
	"sync"

	"spritefs/internal/stats"
	"spritefs/internal/trace"
)

// PartitionByClient splits a trace into shard sub-traces by client id
// (client mod shards). Each sub-trace preserves record order, so every
// shard sees a time-ordered subsequence of the original reference string.
func PartitionByClient(recs []trace.Record, shards int) [][]trace.Record {
	if shards < 1 {
		panic(fmt.Sprintf("replay: PartitionByClient with %d shards", shards))
	}
	parts := make([][]trace.Record, shards)
	for _, r := range recs {
		s := int(r.Client) % shards
		if s < 0 {
			s += shards
		}
		parts[s] = append(parts[s], r)
	}
	return parts
}

// RunSharded partitions recs by client across shards and replays each
// partition under base (hermetically, in parallel over workers). The
// result slice is indexed by shard — independent of completion order.
func RunSharded(recs []trace.Record, base Config, shards, workers int) ([]*Result, error) {
	parts := PartitionByClient(recs, shards)
	cfgs := make([]Config, shards)
	for i := range cfgs {
		cfgs[i] = base
		name := base.Name
		if name == "" {
			name = "base"
		}
		cfgs[i].Name = fmt.Sprintf("%s/shard%d", name, i)
	}

	if workers < 1 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}
	results := make([]*Result, shards)
	errs := make([]error, shards)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = Run(cfgs[i], trace.NewSliceStream(parts[i]))
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("replay shard %d: %w", i, err)
		}
	}
	return results, nil
}

// ShardedTable summarizes a sharded replay one row per shard plus a
// totals row, mirroring the scale engine's report shape: record and open
// counts per shard, cache-effectiveness ratios, and wire traffic.
func ShardedTable(results []*Result) *stats.Table {
	t := stats.NewTable("Sharded trace replay",
		"shard", "records", "opens", "miss%", "wb%", "netMB", "cws%", "recall%")
	var recs, opens int64
	var netBytes int64
	for i, r := range results {
		t6 := r.Report.Table6
		t10 := r.Report.Table10
		t.AddRow(
			fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", r.Stats.Applied),
			fmt.Sprintf("%d", t10.FileOpens),
			fmt.Sprintf("%.1f", t6.All.ReadMissPct),
			fmt.Sprintf("%.1f", t6.All.WritebackPct),
			fmt.Sprintf("%.1f", float64(r.Report.Table7.TotalBytes)/(1<<20)),
			fmt.Sprintf("%.1f", t10.CWSPct),
			fmt.Sprintf("%.1f", t10.RecallPct))
		recs += r.Stats.Applied
		opens += t10.FileOpens
		netBytes += r.Report.Table7.TotalBytes
	}
	t.AddRow("all",
		fmt.Sprintf("%d", recs),
		fmt.Sprintf("%d", opens),
		"", "",
		fmt.Sprintf("%.1f", float64(netBytes)/(1<<20)),
		"", "")
	return t
}
