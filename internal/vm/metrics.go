package vm

import "spritefs/internal/metrics"

// RegisterMetrics registers the VM system's paging counters into the
// central registry. Per-class byte counters carry a class label
// (code/init-data/heap/stack) and a direction in the name, feeding the
// paging rows of Tables 5 and 7.
func (s *System) RegisterMetrics(r *metrics.Registry, ls metrics.Labels) {
	for c := PageClass(0); c < NumPageClasses; c++ {
		cls := append(append(metrics.Labels{}, ls...), metrics.L("class", c.String()))
		r.IntVar(metrics.Desc{Name: "spritefs_vm_paged_in_bytes_total", Unit: "bytes",
			Help: "Bytes paged in, by page class: code and init-data arrive through the file cache, heap and stack from backing files (Table 5 paging rows).",
			Kind: metrics.Counter},
			cls, &s.st.BytesIn[c])
		r.IntVar(metrics.Desc{Name: "spritefs_vm_paged_out_bytes_total", Unit: "bytes",
			Help: "Bytes paged out to backing files, by page class (Table 5 backing-write row).",
			Kind: metrics.Counter},
			cls, &s.st.BytesOut[c])
	}
	ctr := func(name, unit, help string, v *int64) {
		r.IntVar(metrics.Desc{Name: name, Unit: unit, Help: help, Kind: metrics.Counter}, ls, v)
	}
	ctr("spritefs_vm_evictions_total", "pages",
		"Pages evicted under memory pressure.", &s.st.Evictions)
	ctr("spritefs_vm_refaults_total", "pages",
		"Backing pages faulted back in after eviction (the steady Section 5.3 backing traffic).", &s.st.Refaults)
	ctr("spritefs_vm_code_reuse_total", "pages",
		"Code pages reused from the retained pool without I/O.", &s.st.CodeReuse)
}
