package faults

import (
	"testing"
	"time"

	"spritefs/internal/client"
	"spritefs/internal/netsim"
	"spritefs/internal/server"
	"spritefs/internal/sim"
)

func TestParseStringRoundTrip(t *testing.T) {
	const text = "server-crash:0@10m0s/30s,partition:3@5m0s/20s,client-crash:2@15m0s," +
		"delay@0s/1h0m0s/20ms,drop@0s/1h0m0s/500ms/2"
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 5 {
		t.Fatalf("parsed %d events, want 5", len(s.Events))
	}
	// Events come back sorted by time; re-parse of String must be identical.
	if s.Events[0].Kind != Delay || s.Events[1].Kind != Drop || s.Events[2].Kind != Partition {
		t.Errorf("events not time-sorted: %v", s)
	}
	again, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s.String(), err)
	}
	if again.String() != s.String() {
		t.Errorf("round trip changed schedule:\n  %s\n  %s", s, again)
	}
	crash := s.Events[3]
	if crash.Kind != ServerCrash || crash.Target != 0 || crash.At != 10*time.Minute || crash.Duration != 30*time.Second {
		t.Errorf("server crash parsed as %+v", crash)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"server-crash@10m/30s",     // missing target
		"delay:1@0s/1m/5ms",        // spurious target
		"explode:0@10m/30s",        // unknown kind
		"server-crash:0@10m",       // missing outage duration
		"drop@0s/1m/500ms/0",       // drop period < 1
		"partition:-1@5m/20s",      // negative target
		"server-crash:0@tenmin/1s", // unparseable duration
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestRandomIsDeterministicAndSorted(t *testing.T) {
	a := Random(sim.NewRand(42), time.Hour, 50, 4, 10)
	b := Random(sim.NewRand(42), time.Hour, 50, 4, 10)
	if a.String() != b.String() {
		t.Fatal("same seed produced different schedules")
	}
	if Random(sim.NewRand(7), time.Hour, 50, 4, 10).String() == a.String() {
		t.Fatal("different seeds produced identical schedules")
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Fatalf("events unsorted at %d: %v after %v", i, a.Events[i].At, a.Events[i-1].At)
		}
	}
	for _, ev := range a.Events {
		if ev.At <= 0 || ev.At >= time.Hour {
			t.Errorf("event time %v outside (0, horizon)", ev.At)
		}
	}
}

// rig is a minimal System: one clock, one wire, two servers, two clients.
type rig struct {
	clock   *sim.Sim
	net     *netsim.Network
	servers []*server.Server
	clients []*client.Client
}

func (r *rig) Clock() *sim.Sim                  { return r.clock }
func (r *rig) Wire() *netsim.Network            { return r.net }
func (r *rig) FileServers() []*server.Server    { return r.servers }
func (r *rig) Workstations() []*client.Client   { return r.clients }
func (r *rig) RecallFrom(cl int32, file uint64) { r.clients[cl].FlushForRecall(file) }
func (r *rig) DisableCaching(cls []int32, file uint64) {
	for _, id := range cls {
		r.clients[id].DisableFor(file)
	}
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{clock: sim.New(1), net: netsim.New(netsim.DefaultConfig())}
	for i := 0; i < 2; i++ {
		s := server.New(int16(i))
		s.AttachStorage(1024)
		r.servers = append(r.servers, s)
	}
	route := func(file uint64) *server.Server { return r.servers[file>>48] }
	for i := 0; i < 2; i++ {
		c := client.New(client.DefaultConfig(int32(i)), r.clock, r.net, route, r.servers[0], nil)
		c.SetCoordinator(r)
		r.clients = append(r.clients, c)
	}
	return r
}

func TestInjectorServerCrashDrivesRecovery(t *testing.T) {
	r := newRig(t)
	c := r.clients[0]
	file := c.Create(1, 1, false, false)
	h, _, err := c.Open(1, 1, file, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	c.Write(h, 8000)

	sched, err := Parse("server-crash:0@10s/5s")
	if err != nil {
		t.Fatal(err)
	}
	inj := Attach(r, sched)
	r.clock.RunUntil(time.Minute)

	st := inj.Stats()
	if st.ServerCrashes != 1 {
		t.Fatalf("stats = %+v, want 1 server crash", st)
	}
	if st.ReplayedBytes != 8000 {
		t.Errorf("replayed %d bytes, want 8000 (dirty data must come back)", st.ReplayedBytes)
	}
	if st.MaxReopenStorm != 1 {
		t.Errorf("reopen storm = %d, want 1", st.MaxReopenStorm)
	}
	// Time-to-reconsistency covers at least the 5s outage window.
	if st.MaxTimeToReconsistency < 5*time.Second {
		t.Errorf("time-to-reconsistency %v < outage 5s", st.MaxTimeToReconsistency)
	}
	if got := r.servers[0].Stats().MaxRecoveryTime; got != st.MaxTimeToReconsistency {
		t.Errorf("server recovery time %v != injector's %v", got, st.MaxTimeToReconsistency)
	}
	// Registration is exact after the storm: the close balances.
	if _, err := c.Close(h); err != nil {
		t.Errorf("close after recovery: %v", err)
	}
	if c.Cache.FileDirty(file) {
		t.Error("dirty data still cached after recovery replay")
	}
}

func TestInjectorOutageStallsRPCs(t *testing.T) {
	r := newRig(t)
	sched, _ := Parse("server-crash:0@10s/30s")
	Attach(r, sched)
	r.clock.RunUntil(20 * time.Second) // mid-outage

	healthy := r.net.RPCTo(1, 0, netsim.Control, 0)
	stalled := r.net.RPCTo(0, 0, netsim.Control, 0)
	if want := healthy + 20*time.Second; stalled != want {
		t.Errorf("mid-outage RPC latency = %v, want %v", stalled, want)
	}
	if st := r.net.FaultStats(); st.StalledOps != 1 {
		t.Errorf("stalled ops = %d, want 1", st.StalledOps)
	}
}

func TestInjectorClientCrashDisconnects(t *testing.T) {
	r := newRig(t)
	c := r.clients[1]
	file := c.Create(1, 1, false, false)
	if _, _, err := c.Open(1, 1, file, false, true, false); err != nil {
		t.Fatal(err)
	}
	c.Write(0, 0) // no-op; keep handle open

	sched, _ := Parse("client-crash:1@10s")
	inj := Attach(r, sched)
	r.clock.RunUntil(time.Minute)

	if st := inj.Stats(); st.ClientCrashes != 1 {
		t.Fatalf("stats = %+v, want 1 client crash", st)
	}
	f := r.servers[0].Lookup(file)
	if rd, wr := f.Registration(1); rd != 0 || wr != 0 {
		t.Errorf("crashed client still registered: r=%d w=%d", rd, wr)
	}
}

func TestInjectorPartitionIsClientScoped(t *testing.T) {
	r := newRig(t)
	sched, _ := Parse("partition:0@10s/20s")
	Attach(r, sched)
	r.clock.RunUntil(15 * time.Second)

	healthy := r.net.RPCTo(0, 1, netsim.Control, 0)
	cut := r.net.RPCTo(0, 0, netsim.Control, 0)
	if want := healthy + 15*time.Second; cut != want {
		t.Errorf("partitioned client latency = %v, want %v", cut, want)
	}
}

func TestInjectorSkipsMissingTargets(t *testing.T) {
	r := newRig(t)
	sched, _ := Parse("server-crash:9@10s/5s,client-crash:9@10s")
	inj := Attach(r, sched)
	r.clock.RunUntil(time.Minute)
	if st := inj.Stats(); st.Skipped != 2 || st.ServerCrashes != 0 || st.ClientCrashes != 0 {
		t.Errorf("stats = %+v, want 2 skipped", st)
	}
}
