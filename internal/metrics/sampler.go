package metrics

import (
	"cmp"
	"fmt"
	"io"
	"math"
	"slices"
	"strings"
	"time"
)

// Sampler turns the registry into time series: each Sample(now) call
// appends one row of metric values into a bounded ring buffer. The owner
// drives it from the simulation clock (cluster and replay schedule it at
// Config.SamplePeriod), which is what keeps sampled series deterministic:
// virtual time, not wall time, indexes every row.
//
// Summary metrics are skipped — series of expanded summary points are
// rarely what an interval study wants, and skipping them keeps rows
// compact. Use Match to restrict sampling further (e.g. only the
// per-client traffic counters for a Table 2 style activity study).
type Sampler struct {
	reg *Registry
	// match selects which metric instances are sampled (nil = all
	// non-summary instances).
	match func(name string) bool

	cols   []seriesCol
	colIdx map[string]int

	capPoints int
	rows      []row
	start     int   // ring start index when full
	dropped   int64 // rows overwritten by the ring
}

type seriesCol struct {
	name   string
	labels string
	unit   string
}

func (c seriesCol) id() string { return c.name + c.labels }

type row struct {
	t time.Duration
	v []float64
}

// NewSampler returns a sampler over reg holding at most capPoints rows
// (the ring buffer bound; <= 0 selects the 4096-row default). match, when
// non-nil, restricts sampling to metric families it accepts.
func NewSampler(reg *Registry, capPoints int, match func(name string) bool) *Sampler {
	if capPoints <= 0 {
		capPoints = 4096
	}
	return &Sampler{reg: reg, match: match, capPoints: capPoints, colIdx: make(map[string]int)}
}

// Sample reads every selected metric now and appends one row stamped with
// the given virtual time. New metric instances (replay materializes
// clients lazily) extend the column set; earlier rows read as NaN in the
// missing columns.
func (s *Sampler) Sample(now time.Duration) {
	vals := make([]float64, len(s.cols))
	for i := range vals {
		vals[i] = nan()
	}
	for _, f := range s.reg.s.fams {
		if f.Desc.Kind == Summary {
			continue
		}
		if s.match != nil && !s.match(f.Desc.Name) {
			continue
		}
		for _, m := range f.instances {
			col := seriesCol{name: f.Desc.Name, labels: m.key, unit: f.Desc.Unit}
			idx, ok := s.colIdx[col.id()]
			if !ok {
				idx = len(s.cols)
				s.cols = append(s.cols, col)
				s.colIdx[col.id()] = idx
				vals = append(vals, nan())
			}
			if m.isInt() {
				vals[idx] = float64(m.intVal())
			} else {
				vals[idx] = m.durVal().Seconds()
			}
		}
	}
	if len(s.rows) < s.capPoints {
		s.rows = append(s.rows, row{t: now, v: vals})
		return
	}
	// Ring full: overwrite the oldest row.
	s.rows[s.start] = row{t: now, v: vals}
	s.start = (s.start + 1) % s.capPoints
	s.dropped++
}

// Len returns the number of retained rows.
func (s *Sampler) Len() int { return len(s.rows) }

// Dropped returns how many rows the ring buffer has overwritten.
func (s *Sampler) Dropped() int64 { return s.dropped }

// Series is one sampled metric's full time series, in time order.
type Series struct {
	Name   string
	Labels string
	Unit   string
	Times  []time.Duration
	Values []float64 // NaN where the instance did not exist yet
}

// orderedRows returns the retained rows oldest first.
func (s *Sampler) orderedRows() []row {
	out := make([]row, 0, len(s.rows))
	for i := 0; i < len(s.rows); i++ {
		out = append(out, s.rows[(s.start+i)%len(s.rows)])
	}
	return out
}

// sortedCols returns column indices sorted by (name, labels), the
// deterministic export order.
func (s *Sampler) sortedCols() []int {
	idx := make([]int, len(s.cols))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		ca, cb := s.cols[a], s.cols[b]
		if c := cmp.Compare(ca.name, cb.name); c != 0 {
			return c
		}
		return cmp.Compare(ca.labels, cb.labels)
	})
	return idx
}

// All returns every sampled series sorted by (name, labels).
func (s *Sampler) All() []Series {
	rows := s.orderedRows()
	var out []Series
	for _, ci := range s.sortedCols() {
		c := s.cols[ci]
		ser := Series{Name: c.name, Labels: c.labels, Unit: c.unit}
		for _, r := range rows {
			ser.Times = append(ser.Times, r.t)
			if ci < len(r.v) {
				ser.Values = append(ser.Values, r.v[ci])
			} else {
				ser.Values = append(ser.Values, nan())
			}
		}
		out = append(out, ser)
	}
	return out
}

// Get returns the series for one metric instance (labels as rendered by
// Labels.String, "" for none), or an empty series if never sampled.
func (s *Sampler) Get(name, labels string) Series {
	for _, ser := range s.All() {
		if ser.Name == name && ser.Labels == labels {
			return ser
		}
	}
	return Series{Name: name, Labels: labels}
}

// WriteTSV renders the series as a matrix: one row per sample time, one
// column per metric instance, columns sorted by (name, labels). Missing
// values render as "-".
func (s *Sampler) WriteTSV(w io.Writer) error {
	cols := s.sortedCols()
	var b strings.Builder
	b.WriteString("time_seconds")
	for _, ci := range cols {
		b.WriteByte('\t')
		b.WriteString(s.cols[ci].name)
		b.WriteString(s.cols[ci].labels)
	}
	b.WriteByte('\n')
	for _, r := range s.orderedRows() {
		b.WriteString(formatFloat(r.t.Seconds()))
		for _, ci := range cols {
			b.WriteByte('\t')
			if ci < len(r.v) && !isNaN(r.v[ci]) {
				b.WriteString(formatFloat(r.v[ci]))
			} else {
				b.WriteByte('-')
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSONL renders one JSON object per (time, metric) value.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	cols := s.sortedCols()
	for _, r := range s.orderedRows() {
		for _, ci := range cols {
			if ci >= len(r.v) || isNaN(r.v[ci]) {
				continue
			}
			c := s.cols[ci]
			if _, err := fmt.Fprintf(w, "{\"t\":%s,\"name\":%q,\"labels\":%q,\"value\":%s}\n",
				formatFloat(r.t.Seconds()), c.name, c.labels, formatFloat(r.v[ci])); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus renders the series in Prometheus text format with
// millisecond timestamps — a scrape archive a TSDB can ingest directly.
func (s *Sampler) WritePrometheus(w io.Writer) error {
	cols := s.sortedCols()
	for _, ci := range cols {
		c := s.cols[ci]
		for _, r := range s.orderedRows() {
			if ci >= len(r.v) || isNaN(r.v[ci]) {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s %d\n",
				c.name, c.labels, formatFloat(r.v[ci]), r.t.Milliseconds()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Dump renders the sampled series in the named format.
func (s *Sampler) Dump(w io.Writer, format string) error {
	switch format {
	case "prom", "prometheus":
		return s.WritePrometheus(w)
	case "tsv":
		return s.WriteTSV(w)
	case "jsonl", "json":
		return s.WriteJSONL(w)
	default:
		return fmt.Errorf("metrics: unknown series format %q (prom, tsv, jsonl)", format)
	}
}

func nan() float64 { return math.NaN() }

func isNaN(v float64) bool { return math.IsNaN(v) }
