package fscache

import (
	"sync"

	"spritefs/internal/metrics"
)

// cacheDescs is the full Desc set for one registration prefix. Descs are
// built once per prefix and cached: a scale-out topology registers
// thousands of per-client caches under the same two prefixes, and
// rebuilding every name by concatenation per cache was a measurable slice
// of registration-time allocation.
type cacheDescs struct {
	writebackBytes metrics.Desc
	deleteSaved    metrics.Desc
	replacedFile   metrics.Desc
	replacedVM     metrics.Desc
	replacementAge metrics.Desc
	cleaned        metrics.Desc
	cleanAge       metrics.Desc
	sizeBytes      metrics.Desc
	dirtyBytes     metrics.Desc
	capacity       metrics.Desc
	ops            [11]metrics.Desc
}

var (
	descMu    sync.Mutex
	descCache = map[string]*cacheDescs{}
)

func descsFor(prefix string) *cacheDescs {
	descMu.Lock()
	defer descMu.Unlock()
	if d := descCache[prefix]; d != nil {
		return d
	}
	ctr := func(name, unit, help string) metrics.Desc {
		return metrics.Desc{Name: prefix + name, Unit: unit, Help: help, Kind: metrics.Counter}
	}
	gauge := func(name, unit, help string) metrics.Desc {
		return metrics.Desc{Name: prefix + name, Unit: unit, Help: help, Kind: metrics.Gauge}
	}
	d := &cacheDescs{
		writebackBytes: ctr("_writeback_bytes_total", "bytes",
			"Dirty bytes shipped to servers by cleaning (all reasons; Table 6 writeback traffic)."),
		deleteSaved: ctr("_delete_saved_bytes_total", "bytes",
			"Dirty bytes discarded before writeback because the file was deleted or truncated (Table 6 bytes-saved row)."),
		replacedFile: ctr("_replaced_file_total", "blocks",
			"LRU victims replaced to hold another file block (Table 8 file row)."),
		replacedVM: ctr("_replaced_vm_total", "blocks",
			"Cache blocks handed to the virtual memory system (Table 8 VM row)."),
		replacementAge: metrics.Desc{Name: prefix + "_replacement_age_seconds",
			Help: "Time since last reference when a block was replaced (Table 8 age column)."},
		cleaned: ctr("_cleaned_total", "blocks",
			"Dirty blocks written back, by cleaning reason (Table 9 rows)."),
		cleanAge: metrics.Desc{Name: prefix + "_clean_age_seconds",
			Help: "Time since last write when a dirty block was cleaned, by reason (Table 9 age columns)."},
		sizeBytes: gauge("_size_bytes", "bytes",
			"Resident cache size (the Table 4 sampled quantity)."),
		dirtyBytes: gauge("_dirty_bytes", "bytes",
			"Dirty bytes awaiting writeback (the delayed-write exposure the fault study measures)."),
		capacity: gauge("_capacity_blocks", "blocks",
			"Current cache capacity negotiated with the VM system."),
		ops: [11]metrics.Desc{
			ctr("_read_ops_total", "ops", "Block-granularity cache read operations."),
			ctr("_read_misses_total", "ops", "Read operations not satisfied in the cache (Table 6 miss ratio numerator)."),
			ctr("_read_bytes_total", "bytes", "Bytes requested from the cache by applications (Table 5 file-read traffic)."),
			ctr("_read_miss_bytes_total", "bytes", "Bytes fetched from servers to satisfy reads (Table 6 miss traffic)."),
			ctr("_write_ops_total", "ops", "Block-granularity cache write operations."),
			ctr("_write_fetches_total", "ops", "Partial writes of non-resident blocks that forced a fetch (Table 6 write-fetch row)."),
			ctr("_write_bytes_total", "bytes", "Bytes written into the cache by applications (Table 5 file-write traffic)."),
			ctr("_paging_read_ops_total", "ops", "Cache read operations issued by the VM system (code and initialized-data faults)."),
			ctr("_paging_read_misses_total", "ops", "Paging read operations that missed (Table 6 paging row)."),
			ctr("_paging_read_bytes_total", "bytes", "Portion of read bytes that was paging traffic (Table 5 cacheable-paging row)."),
			ctr("_paging_read_miss_bytes_total", "bytes", "Portion of missed bytes that was paging traffic."),
		},
	}
	descCache[prefix] = d
	return d
}

// RegisterMetrics registers every cache counter into the central registry
// under the given family prefix ("spritefs_cache" for client caches,
// "spritefs_server_cache" for the server stores' internal caches) with the
// given instance labels (e.g. client="7"). Counters and distributions are
// registered as direct pointers into the live Stats block, so the registry
// is always exactly as current as Stats() and increments stay plain field
// bumps; only the derived gauges read through closures.
//
// The per-category OpStats pair registers twice under a scope label:
// scope="all" counts every access, scope="migrated" the migrated-process
// subset (Table 6's two columns).
func (c *Cache) RegisterMetrics(r *metrics.Registry, prefix string, ls metrics.Labels) {
	d := descsFor(prefix)
	c.registerOps(r, d, ls, "all", &c.st.All)
	c.registerOps(r, d, ls, "migrated", &c.st.Migrated)

	r.IntVar(d.writebackBytes, ls, &c.st.BytesWrittenBack)
	r.IntVar(d.deleteSaved, ls, &c.st.BytesSavedByDelete)
	r.IntVar(d.replacedFile, ls, &c.st.ReplacedFile)
	r.IntVar(d.replacedVM, ls, &c.st.ReplacedVM)

	r.HistSecondsVar(d.replacementAge, ls, &c.st.ReplacementAge)

	for reason := CleanReason(0); reason < NumCleanReasons; reason++ {
		rls := withLabel(ls, "reason", reason.String())
		r.IntVar(d.cleaned, rls, &c.st.Cleaned[reason])
		r.HistSecondsVar(d.cleanAge, rls, &c.st.CleanAge[reason])
	}

	r.Int(d.sizeBytes, ls, c.SizeBytes)
	r.IntVar(d.dirtyBytes, ls, &c.dirtyBytes)
	r.Int(d.capacity, ls, func() int64 { return int64(c.capacity) })
}

// registerOps registers one OpStats counter block under a scope label.
func (c *Cache) registerOps(r *metrics.Registry, d *cacheDescs, ls metrics.Labels, scope string, o *OpStats) {
	sls := withLabel(ls, "scope", scope)
	vars := [11]*int64{
		&o.ReadOps, &o.ReadMisses, &o.BytesRead, &o.BytesReadMissed,
		&o.WriteOps, &o.WriteFetches, &o.BytesWritten,
		&o.PagingReadOps, &o.PagingReadMiss, &o.PagingBytesRead, &o.PagingBytesMiss,
	}
	for i := range vars {
		r.IntVar(d.ops[i], sls, vars[i])
	}
}

// withLabel returns ls plus one more label, without aliasing ls's backing
// array (registrations share the caller's base label set).
func withLabel(ls metrics.Labels, key, value string) metrics.Labels {
	out := make(metrics.Labels, 0, len(ls)+1)
	out = append(out, ls...)
	return append(out, metrics.L(key, value))
}
