package metrics

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
	"time"

	"spritefs/internal/stats"
)

// Kind classifies a metric family.
type Kind uint8

// Metric kinds.
const (
	// Counter is a monotonically non-decreasing count (ops, bytes).
	Counter Kind = iota
	// Gauge is an instantaneous value that may go up and down (cache
	// size) or a running maximum (worst dirty age).
	Gauge
	// Summary is a streaming distribution (count/sum/mean/stddev/min/max),
	// backed by a stats.Welford accumulator.
	Summary
)

var kindNames = [...]string{"counter", "gauge", "summary"}

// String returns the kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Label is one key="value" pair attached to a metric instance.
type Label struct{ Key, Value string }

// Labels is an ordered label set. Order is preserved in rendered output,
// so register instances of one family with the same key order.
type Labels []Label

// L is the Label constructor: L("client", "7").
func L(key, value string) Label { return Label{Key: key, Value: value} }

// String renders the set as {k="v",...}, or "" when empty. Label values
// are escaped per the Prometheus text exposition format: backslash, double
// quote and newline get a backslash escape, every other byte — including
// tabs and other control characters, which the grammar permits raw — is
// written as-is. For the plain alphanumeric values the simulators use this
// matches Go's %q byte for byte, which is what keeps the golden dumps
// stable; it diverges only on inputs %q would over-escape into sequences a
// strict exposition-format parser rejects.
func (ls Labels) String() string {
	if len(ls) == 0 {
		return ""
	}
	return string(appendLabelSet(nil, nil, ls))
}

// appendLabelSet renders the concatenation of two label sets into buf —
// the same bytes Labels.String produces for the combined set, without
// allocating. Registration renders scope+instance labels through this
// into the store's scratch buffer and interns the result.
func appendLabelSet(buf []byte, scope, ls Labels) []byte {
	if len(scope)+len(ls) == 0 {
		return buf
	}
	buf = append(buf, '{')
	for i, l := range scope {
		buf = appendLabel(buf, l, i > 0)
	}
	for i, l := range ls {
		buf = appendLabel(buf, l, len(scope)+i > 0)
	}
	return append(buf, '}')
}

func appendLabel(buf []byte, l Label, comma bool) []byte {
	if comma {
		buf = append(buf, ',')
	}
	buf = append(buf, l.Key...)
	buf = append(buf, '=', '"')
	buf = appendEscapedLabelValue(buf, l.Value)
	return append(buf, '"')
}

// appendEscapedLabelValue writes v with the three escapes the exposition
// format defines for label values: \\ for backslash, \" for double quote,
// \n for line feed.
func appendEscapedLabelValue(buf []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, c)
		}
	}
	return buf
}

// Desc is a metric family's self-description: everything docs/METRICS.md
// needs to document it and everything an export needs to render it.
type Desc struct {
	// Name is the full metric name, e.g. "spritefs_cache_read_ops_total".
	// Counter names end in _total by convention.
	Name string
	// Unit is the value's unit: "ops", "bytes", "blocks", "seconds", ...
	Unit string
	// Help is the one-line human description emitted as # HELP and into
	// the generated documentation.
	Help string
	// Kind is the family's metric kind.
	Kind Kind
}

// metric is one registered instance: a family member with a concrete
// label set and a read-at-snapshot-time view over the owner's counter.
// The value source is either a direct pointer into the owner's counter
// (the Var registrations — the hot path stays a plain field increment and
// the registry costs nothing per event) or a closure (for values that
// must be computed at snapshot time).
type metric struct {
	labels Labels
	key    string // rendered labels, the within-family identity

	// Exactly one of the six is set, fixing the instance's value type.
	intPtr *int64
	durPtr *time.Duration
	sumPtr *stats.Welford
	intFn  func() int64
	durFn  func() time.Duration
	sumFn  func() stats.Welford
	// scale multiplies summary sample values at export (e.g. 1e-9 for
	// Welford accumulators that collected nanoseconds but export seconds).
	scale float64
}

func (m *metric) isInt() bool { return m.intPtr != nil || m.intFn != nil }
func (m *metric) isDur() bool { return m.durPtr != nil || m.durFn != nil }

func (m *metric) intVal() int64 {
	if m.intPtr != nil {
		return *m.intPtr
	}
	return m.intFn()
}

func (m *metric) durVal() time.Duration {
	if m.durPtr != nil {
		return *m.durPtr
	}
	return m.durFn()
}

func (m *metric) sumVal() stats.Welford {
	if m.sumPtr != nil {
		return *m.sumPtr
	}
	return m.sumFn()
}

// Family is one named metric with all its registered instances.
type Family struct {
	Desc      Desc
	instances []*metric
	// byKey indexes instances by their rendered label set. Registration
	// must stay O(1) per instance: the scale-out topology registers one
	// instance per client per family, so a linear duplicate scan would
	// make constructing a million-client registry quadratic (hours of
	// wall-clock before the first event runs).
	byKey map[string]*metric
}

// Instances returns the number of registered instances.
func (f *Family) Instances() int { return len(f.instances) }

// LabelKeys returns the label key sets in use by the family's instances,
// deduplicated and sorted (normally a single entry, e.g. "client,scope").
func (f *Family) LabelKeys() []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range f.instances {
		keys := make([]string, len(m.labels))
		for i, l := range m.labels {
			keys[i] = l.Key
		}
		k := strings.Join(keys, ",")
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	slices.Sort(out)
	return out
}

// Registry is the central metric store. It is not safe for concurrent
// mutation; the simulators are single-threaded per run, and sweep workers
// each own a private registry (which is what keeps dumps worker-count
// invariant). A Registry is a view onto a shared family store plus a
// label scope; Scoped derives views that stamp extra labels onto every
// registration, which is how the scale-out engine gives each shard's
// component stack a shard="N" label without the components knowing.
type Registry struct {
	s     *store
	scope Labels
}

// labelSet is one interned rendered label set shared by every instance
// registered with the same effective (scope + instance) labels. A
// thousand families with a client="7" instance share one key string and
// one canonical Labels slice instead of re-rendering a thousand copies.
type labelSet struct {
	key    string
	labels Labels
}

// store is the family set shared by a registry and all its scoped views.
type store struct {
	fams   []*Family
	byName map[string]*Family
	// keys interns rendered label sets by their rendered form. Label keys
	// are trusted identifiers (they are not escaped in the rendered form),
	// so the rendered bytes identify the set.
	keys map[string]*labelSet
	// slab batches metric allocations: registration is the dominant
	// allocation site when a scale-out topology builds thousands of
	// per-client component stacks, and one bump-pointer chunk replaces
	// hundreds of individual heap objects.
	slab    []metric
	scratch []byte
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{s: &store{
		byName: make(map[string]*Family),
		keys:   make(map[string]*labelSet),
	}}
}

// Scoped returns a view of the same registry that prepends the given
// labels to every instance registered through it. Families are shared:
// a family registered through any view appears once, with instances from
// every scope. Scopes nest (scoping a scoped view concatenates labels).
func (r *Registry) Scoped(ls ...Label) *Registry {
	scope := make(Labels, 0, len(r.scope)+len(ls))
	scope = append(scope, r.scope...)
	scope = append(scope, ls...)
	return &Registry{s: r.s, scope: scope}
}

// family fetches or creates the named family, enforcing that every
// registration of the same name agrees on unit, help and kind — the
// property that makes the generated documentation trustworthy.
func (r *Registry) family(d Desc) *Family {
	if d.Name == "" {
		panic("metrics: empty metric name")
	}
	if f := r.s.byName[d.Name]; f != nil {
		if f.Desc != d {
			panic(fmt.Sprintf("metrics: %s re-registered with conflicting description (%+v vs %+v)",
				d.Name, f.Desc, d))
		}
		return f
	}
	f := &Family{Desc: d}
	r.s.fams = append(r.s.fams, f)
	r.s.byName[d.Name] = f
	return f
}

func (s *store) intern(scope, ls Labels) *labelSet {
	s.scratch = appendLabelSet(s.scratch[:0], scope, ls)
	if set, ok := s.keys[string(s.scratch)]; ok {
		return set
	}
	merged := make(Labels, 0, len(scope)+len(ls))
	merged = append(merged, scope...)
	merged = append(merged, ls...)
	set := &labelSet{key: string(s.scratch), labels: merged}
	s.keys[set.key] = set
	return set
}

func (s *store) newMetric() *metric {
	if len(s.slab) == 0 {
		s.slab = make([]metric, 512)
	}
	m := &s.slab[0]
	s.slab = s.slab[1:]
	return m
}

func (r *Registry) add(d Desc, ls Labels) *metric {
	f := r.family(d)
	set := r.s.intern(r.scope, ls)
	m := r.s.newMetric()
	m.labels = set.labels
	m.key = set.key
	if f.byKey == nil {
		f.byKey = make(map[string]*metric)
	}
	if f.byKey[m.key] != nil {
		panic(fmt.Sprintf("metrics: duplicate instance %s%s", d.Name, m.key))
	}
	f.byKey[m.key] = m
	f.instances = append(f.instances, m)
	return m
}

// Int registers an integer-valued instance (counter or gauge) whose value
// is read from fn at snapshot time.
func (r *Registry) Int(d Desc, ls Labels, fn func() int64) {
	if d.Kind == Summary {
		panic("metrics: Int registration with Summary kind")
	}
	r.add(d, ls).intFn = fn
}

// IntVar registers an integer-valued instance read directly from *v at
// snapshot time. This is the handle form: the owner keeps incrementing
// its own field and the registry never touches the hot path.
func (r *Registry) IntVar(d Desc, ls Labels, v *int64) {
	if d.Kind == Summary {
		panic("metrics: IntVar registration with Summary kind")
	}
	r.add(d, ls).intPtr = v
}

// Seconds registers a duration-valued instance exported in seconds. The
// raw nanosecond integer is preserved internally, so sums and maxima over
// instances stay exact.
func (r *Registry) Seconds(d Desc, ls Labels, fn func() time.Duration) {
	if d.Kind == Summary {
		panic("metrics: Seconds registration with Summary kind")
	}
	if d.Unit == "" {
		d.Unit = "seconds"
	}
	r.add(d, ls).durFn = fn
}

// SecondsVar registers a duration-valued instance read directly from *v
// at snapshot time (see IntVar).
func (r *Registry) SecondsVar(d Desc, ls Labels, v *time.Duration) {
	if d.Kind == Summary {
		panic("metrics: SecondsVar registration with Summary kind")
	}
	if d.Unit == "" {
		d.Unit = "seconds"
	}
	r.add(d, ls).durPtr = v
}

// Hist registers a distribution instance backed by a stats.Welford
// accumulator; exports expand it into _count/_sum/_mean/_stddev/_min/_max.
func (r *Registry) Hist(d Desc, ls Labels, fn func() stats.Welford) {
	d.Kind = Summary
	m := r.add(d, ls)
	m.sumFn = fn
	m.scale = 1
}

// HistVar registers a distribution instance read directly from *w at
// snapshot time (see IntVar).
func (r *Registry) HistVar(d Desc, ls Labels, w *stats.Welford) {
	d.Kind = Summary
	m := r.add(d, ls)
	m.sumPtr = w
	m.scale = 1
}

// HistSeconds registers a distribution whose Welford accumulator collected
// nanosecond samples (the simulators store time.Duration as float64);
// exported values are scaled to seconds.
func (r *Registry) HistSeconds(d Desc, ls Labels, fn func() stats.Welford) {
	d.Kind = Summary
	if d.Unit == "" {
		d.Unit = "seconds"
	}
	m := r.add(d, ls)
	m.sumFn = fn
	m.scale = 1e-9
}

// HistSecondsVar registers a nanosecond-sample distribution read directly
// from *w at snapshot time (see HistSeconds and IntVar).
func (r *Registry) HistSecondsVar(d Desc, ls Labels, w *stats.Welford) {
	d.Kind = Summary
	if d.Unit == "" {
		d.Unit = "seconds"
	}
	m := r.add(d, ls)
	m.sumPtr = w
	m.scale = 1e-9
}

// Families returns every family sorted by name (the documentation and
// export order).
func (r *Registry) Families() []*Family {
	out := make([]*Family, len(r.s.fams))
	copy(out, r.s.fams)
	slices.SortFunc(out, func(a, b *Family) int { return cmp.Compare(a.Desc.Name, b.Desc.Name) })
	return out
}

// Len returns the number of registered instances across all families.
func (r *Registry) Len() int {
	n := 0
	for _, f := range r.s.fams {
		n += len(f.instances)
	}
	return n
}

// matches reports whether the instance carries every selector pair.
func (m *metric) matches(sel []Label) bool {
	for _, s := range sel {
		found := false
		for _, l := range m.labels {
			if l.Key == s.Key && l.Value == s.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// SumInt sums the named family's integer instances matching every selector
// label. Summing raw int64 values keeps registry projections bit-exact
// with direct counter loops, which is what lets the report tables read
// through the registry without perturbing golden outputs. Missing families
// sum to zero (a subsystem that never constructed is a subsystem with all
// counters at zero).
func (r *Registry) SumInt(name string, sel ...Label) int64 {
	f := r.s.byName[name]
	if f == nil {
		return 0
	}
	var sum int64
	for _, m := range f.instances {
		if !m.isInt() || !m.matches(sel) {
			continue
		}
		sum += m.intVal()
	}
	return sum
}

// SumSeconds sums a duration family's instances matching the selectors.
func (r *Registry) SumSeconds(name string, sel ...Label) time.Duration {
	f := r.s.byName[name]
	if f == nil {
		return 0
	}
	var sum time.Duration
	for _, m := range f.instances {
		if !m.isDur() || !m.matches(sel) {
			continue
		}
		sum += m.durVal()
	}
	return sum
}

// MaxSeconds returns the maximum over a duration family's matching
// instances (zero when none match).
func (r *Registry) MaxSeconds(name string, sel ...Label) time.Duration {
	f := r.s.byName[name]
	if f == nil {
		return 0
	}
	var max time.Duration
	for _, m := range f.instances {
		if !m.isDur() || !m.matches(sel) {
			continue
		}
		if v := m.durVal(); v > max {
			max = v
		}
	}
	return max
}

// Point is one exported value: a flat (name, labels, value) triple with
// summary instances already expanded into suffixed points.
type Point struct {
	Name   string
	Labels string
	Unit   string
	Kind   Kind
	// IsInt selects which of Int/Float carries the value. Integer points
	// print without a decimal point, keeping counter dumps exact.
	IsInt bool
	Int   int64
	Float float64
}

// Value renders the point's value deterministically.
func (p Point) Value() string {
	if p.IsInt {
		return fmt.Sprintf("%d", p.Int)
	}
	return formatFloat(p.Float)
}

// Snapshot reads every instance now and returns the flat point list,
// sorted by (name, labels) — summaries expanded, durations in seconds.
func (r *Registry) Snapshot() []Point {
	var out []Point
	for _, f := range r.Families() {
		insts := make([]*metric, len(f.instances))
		copy(insts, f.instances)
		slices.SortFunc(insts, func(a, b *metric) int { return cmp.Compare(a.key, b.key) })
		for _, m := range insts {
			out = append(out, m.points(f.Desc)...)
		}
	}
	return out
}

// points expands one instance into its exported points.
func (m *metric) points(d Desc) []Point {
	base := Point{Name: d.Name, Labels: m.key, Unit: d.Unit, Kind: d.Kind}
	switch {
	case m.isInt():
		base.IsInt = true
		base.Int = m.intVal()
		return []Point{base}
	case m.isDur():
		base.Float = m.durVal().Seconds()
		return []Point{base}
	default:
		w := m.sumVal()
		mk := func(suffix, unit string, isInt bool, iv int64, fv float64) Point {
			return Point{Name: d.Name + suffix, Labels: m.key, Unit: unit, Kind: d.Kind,
				IsInt: isInt, Int: iv, Float: fv}
		}
		s := m.scale
		pts := []Point{
			mk("_count", "samples", true, w.N(), 0),
			mk("_sum", d.Unit, false, 0, w.Sum()*s),
			mk("_mean", d.Unit, false, 0, w.Mean()*s),
			mk("_stddev", d.Unit, false, 0, w.Stddev()*s),
		}
		if w.N() > 0 {
			pts = append(pts,
				mk("_min", d.Unit, false, 0, w.Min()*s),
				mk("_max", d.Unit, false, 0, w.Max()*s))
		}
		return pts
	}
}
