package live

import (
	"errors"
	"sync"
	"time"

	"spritefs/internal/sim"
	"spritefs/internal/trace"
)

// FleetConfig selects the client-agent fleet.
type FleetConfig struct {
	Agents int
	// Rate is the target aggregate request rate (requests/second across
	// the whole fleet). Inter-arrival times are exponential, so the offered
	// load is Poisson at this rate.
	Rate float64
	// Deadline bounds each request (retries included).
	Deadline time.Duration
	// Seed derives every agent's private RNG stream.
	Seed int64
	// Replay, when non-empty, drives agents from these trace records (file
	// ids remapped into the live population) instead of the generative
	// session model. Records are partitioned by trace client id and cycled
	// for the run's duration.
	Replay []trace.Record
}

// source produces an agent's next request and observes replies (to track
// open handles).
type source interface {
	next() (Request, bool)
	observe(req *Request, resp *Response, err error)
}

// Fleet drives a Service (or a remote TCP frontend) with FleetConfig.Agents
// concurrent agents.
type Fleet struct {
	cfg      FleetConfig
	svc      *Service
	counters *Counters
	// dial builds agent transports; defaults to the in-process dispatcher.
	dial func(agent int) (Transport, error)

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewFleet builds a fleet over svc using the in-process transport. The
// dispatcher's retry counter is wired into the fleet's counters.
func NewFleet(cfg FleetConfig, svc *Service, counters *Counters) *Fleet {
	f := &Fleet{cfg: cfg, svc: svc, counters: counters, stop: make(chan struct{})}
	f.dial = func(int) (Transport, error) {
		d := NewDispatcher(svc.WC, svc.Exec)
		d.onRetry = counters.Retry
		return d, nil
	}
	return f
}

// DialVia replaces the transport factory (the TCP mode dials the server
// address per agent).
func (f *Fleet) DialVia(dial func(agent int) (Transport, error)) { f.dial = dial }

// Start launches the agent goroutines.
func (f *Fleet) Start() error {
	for a := 0; a < f.cfg.Agents; a++ {
		tr, err := f.dial(a)
		if err != nil {
			f.Stop()
			return err
		}
		var src source
		if len(f.cfg.Replay) > 0 {
			src = newReplaySource(a, &f.cfg, f.svc)
		} else {
			src = newGenSource(a, &f.cfg, f.svc)
		}
		f.wg.Add(1)
		go f.agentLoop(a, tr, src)
	}
	return nil
}

// Stop signals every agent to finish its current request and exit, then
// waits for them.
func (f *Fleet) Stop() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	f.wg.Wait()
}

// agentLoop paces one agent: exponential inter-arrival at the agent's
// share of the aggregate rate, one request at a time.
func (f *Fleet) agentLoop(id int, tr Transport, src source) {
	defer f.wg.Done()
	defer tr.Close()
	rng := sim.NewRand(f.cfg.Seed ^ int64(uint64(id+1)*0x9e3779b97f4a7c15>>1))
	mean := time.Duration(float64(f.cfg.Agents) / f.cfg.Rate * float64(time.Second))
	for {
		timer := time.NewTimer(rng.ExpDur(mean))
		select {
		case <-f.stop:
			timer.Stop()
			return
		case <-timer.C:
		}
		req, ok := src.next()
		if !ok {
			return
		}
		f.counters.Begin()
		t0 := time.Now()
		resp, err := tr.Do(req, f.cfg.Deadline)
		wall := time.Since(t0)
		if errors.Is(err, ErrDeadline) {
			f.counters.Timeout()
		}
		failed := err != nil || !resp.OK()
		f.counters.Done(req.Verb, wall, resp.SimLat, failed)
		src.observe(&req, &resp, err)
		if errors.Is(err, ErrStopped) {
			return // service drained under us
		}
	}
}

// genSource is the generative per-agent session model: open a file (mostly
// from the agent's private working set, sometimes a group-shared file),
// run a handful of sequential-ish reads or writes through it, close it,
// with occasional getattr probes between sessions — the paper's short
// sequential whole-file access pattern in miniature.
type genSource struct {
	agent   int32
	rng     *sim.Rand
	private []FileRef
	shared  []FileRef

	// session state
	handle  uint64
	file    FileRef
	writing bool
	opsLeft int
	pos     int64
}

func newGenSource(agent int, cfg *FleetConfig, svc *Service) *genSource {
	return &genSource{
		agent:   int32(agent),
		rng:     sim.NewRand(cfg.Seed ^ 0x11ee ^ int64(agent)<<20),
		private: svc.AgentFiles(agent),
		shared:  svc.SharedFiles(),
	}
}

func (g *genSource) pickFile() FileRef {
	if len(g.shared) > 0 && (len(g.private) == 0 || g.rng.Bool(0.2)) {
		return g.shared[g.rng.Intn(len(g.shared))]
	}
	return g.private[g.rng.Intn(len(g.private))]
}

func (g *genSource) next() (Request, bool) {
	if g.handle == 0 {
		// Between sessions: occasional getattr, otherwise open.
		if g.rng.Bool(0.1) {
			return Request{Verb: VerbGetattr, Agent: g.agent, File: g.pickFile().ID}, true
		}
		g.file = g.pickFile()
		g.writing = g.rng.Bool(0.25) // the paper's ~1/4 write share of traffic
		g.opsLeft = 2 + g.rng.Intn(6)
		g.pos = 0
		return Request{Verb: VerbOpen, Agent: g.agent, File: g.file.ID, Write: g.writing}, true
	}
	if g.opsLeft <= 0 {
		h := g.handle
		g.handle = 0
		return Request{Verb: VerbClose, Agent: g.agent, Handle: h}, true
	}
	g.opsLeft--
	// Mostly sequential, short transfers; whole small files in one op.
	n := int64(4096)
	if g.file.Size > 0 && g.file.Size < n {
		n = g.file.Size
	}
	off := g.pos
	if g.file.Size > n && g.rng.Bool(0.15) { // occasional seek
		off = g.rng.Int63n(g.file.Size - n)
	}
	g.pos = off + n
	if g.file.Size > 0 && g.pos >= g.file.Size {
		g.pos = 0
	}
	verb := VerbRead
	if g.writing {
		verb = VerbWrite
	}
	return Request{Verb: verb, Agent: g.agent, Handle: g.handle, Offset: off, Length: n}, true
}

func (g *genSource) observe(req *Request, resp *Response, err error) {
	switch req.Verb {
	case VerbOpen:
		if err == nil && resp.OK() {
			g.handle = resp.Handle
			if resp.Size > 0 {
				g.file.Size = resp.Size
			}
		} else {
			g.handle = 0 // session aborted
		}
	case VerbRead, VerbWrite:
		if err != nil || !resp.OK() {
			g.opsLeft = 0 // finish the session early; next step closes
		}
	case VerbClose:
		// handle already cleared in next(); nothing to track
	}
}

// replaySource drives an agent from its partition of a recorded trace: the
// records whose trace client id maps onto this agent, with trace file ids
// remapped deterministically into the live bootstrap population and trace
// handles mapped to the live handles the opens actually returned. The
// replay preserves the trace's shape (verb mix, transfer sizes, offsets),
// not its absolute file identities; pacing comes from the fleet's rate,
// not the trace timestamps.
type replaySource struct {
	agent   int32
	recs    []trace.Record
	pos     int
	files   []FileRef         // remap target population
	handles map[uint64]uint64 // trace handle -> live handle
	pending map[uint64]uint64 // trace handle whose open is in flight -> 1
}

func newReplaySource(agent int, cfg *FleetConfig, svc *Service) *replaySource {
	var mine []trace.Record
	n := int32(cfg.Agents)
	for _, r := range cfg.Replay {
		if r.Flags&trace.FlagSelfTrace != 0 {
			continue
		}
		switch r.Kind {
		case trace.KindOpen, trace.KindClose, trace.KindRead, trace.KindWrite:
		default:
			continue
		}
		c := r.Client
		if c < 0 {
			c = 0
		}
		if c%n == int32(agent) {
			mine = append(mine, r)
		}
	}
	files := append([]FileRef(nil), svc.AgentFiles(agent)...)
	files = append(files, svc.SharedFiles()...)
	return &replaySource{
		agent:   int32(agent),
		recs:    mine,
		files:   files,
		handles: make(map[uint64]uint64),
	}
}

// remap folds a trace file id onto the live population.
func (r *replaySource) remap(file uint64) uint64 {
	if len(r.files) == 0 {
		return file
	}
	h := file * 0x9e3779b97f4a7c15
	return r.files[h%uint64(len(r.files))].ID
}

func (r *replaySource) next() (Request, bool) {
	for tries := 0; tries < len(r.recs); tries++ {
		if len(r.recs) == 0 {
			return Request{}, false
		}
		rec := r.recs[r.pos]
		r.pos = (r.pos + 1) % len(r.recs)
		switch rec.Kind {
		case trace.KindOpen:
			r.pending = map[uint64]uint64{rec.Handle: 1}
			return Request{
				Verb: VerbOpen, Agent: r.agent,
				File:  r.remap(rec.File),
				Write: rec.Flags&trace.FlagWriteMode != 0,
			}, true
		case trace.KindRead, trace.KindWrite:
			live, ok := r.handles[rec.Handle]
			if !ok {
				continue // open lost to an error or a wrapped-around cycle
			}
			verb := VerbRead
			if rec.Kind == trace.KindWrite {
				verb = VerbWrite
			}
			n := rec.Length
			if n <= 0 {
				n = 4096
			}
			return Request{Verb: verb, Agent: r.agent, Handle: live, Offset: rec.Offset, Length: n}, true
		case trace.KindClose:
			live, ok := r.handles[rec.Handle]
			if !ok {
				continue
			}
			delete(r.handles, rec.Handle)
			return Request{Verb: VerbClose, Agent: r.agent, Handle: live}, true
		}
	}
	// A full cycle with nothing issuable means the partition has no opens
	// (and so can never build a handle); the agent retires.
	return Request{}, false
}

func (r *replaySource) observe(req *Request, resp *Response, err error) {
	if req.Verb != VerbOpen || r.pending == nil {
		return
	}
	for th := range r.pending {
		if err == nil && resp.OK() {
			r.handles[th] = resp.Handle
		}
	}
	r.pending = nil
}
