package replay

import (
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/trace"
	"spritefs/internal/workload"
)

// fixedCache pins live and replayed caches at the same size so the replay
// comparison is not confounded by dynamic FS/VM page trading (the live
// run's untraced paging traffic shifts the cache boundary).
const fixedCache = 2048 // 8 MB

// liveCapture is one live run and its merged trace, shared across tests
// (generating it dominates the package's test time).
type liveCapture struct {
	report cluster.Report
	recs   []trace.Record
}

var (
	captureOnce sync.Once
	capture     liveCapture
)

// capturedTrace runs the short live cluster once with tracing on and
// returns its report plus the merged, scrubbed trace — the same pipeline
// as tracegen | Merge.
func capturedTrace(t testing.TB) liveCapture {
	t.Helper()
	captureOnce.Do(func() {
		p := workload.Default(1)
		p.NumClients = 8
		p.DailyUsers = 6
		p.OccasionalUsers = 4
		p.SessionMedian = 8 * time.Minute
		p.GapMedian = 10 * time.Minute
		p.ThinkMean = 5 * time.Second
		cfg := cluster.DefaultConfig(p)
		cfg.NumServers = 2
		cfg.SamplePeriod = 0
		cfg.FixedCachePages = fixedCache
		c := cluster.New(cfg)
		c.Run(2 * time.Hour)
		recs, err := trace.Collect(trace.Merge(c.PerServerStreams()...))
		if err != nil {
			panic(err)
		}
		capture = liveCapture{report: c.Report(), recs: recs}
	})
	if len(capture.recs) == 0 {
		t.Fatal("live capture produced no trace records")
	}
	return capture
}

// replayCfg mirrors the capture cluster's configuration.
func replayCfg(name string) Config {
	return Config{Name: name, NumServers: 2, Seed: 1, FixedCachePages: fixedCache}
}

// TestReplayReproducesLiveRun is the fidelity bound the subsystem promises:
// record-level quantities replay exactly, cache ratios within the tolerance
// that the untraced paging traffic accounts for (see the package comment
// and README).
func TestReplayReproducesLiveRun(t *testing.T) {
	live := capturedTrace(t)
	res, err := Run(replayCfg("fidelity"), trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Applied == 0 || res.Stats.Applied != res.Stats.Read-res.Stats.Scrubbed {
		t.Fatalf("stats don't add up: %+v", res.Stats)
	}
	if res.Stats.Errors != 0 || res.Stats.UnknownHandle != 0 {
		t.Fatalf("replay of a live trace must be clean: %+v", res.Stats)
	}

	// Exact: every open the live servers saw is re-issued.
	if got, want := res.Report.Table10.FileOpens, live.report.Table10.FileOpens; got != want {
		t.Errorf("file opens: replay %d, live %d", got, want)
	}
	// Exact: concurrent write-sharing is a pure function of the replayed
	// open/close/write order.
	if got, want := res.Report.Table10.CWSPct, live.report.Table10.CWSPct; math.Abs(got-want) > 1e-9 {
		t.Errorf("CWS rate: replay %g, live %g", got, want)
	}

	// Tolerance: cache ratios shift slightly because the live cache also
	// held untraced paging pages. Documented bound: 5 percentage points.
	const tol = 5.0
	type ratio struct {
		name       string
		got, want  float64
	}
	for _, r := range []ratio{
		{"read miss %", res.Report.Table6.All.ReadMissPct, live.report.Table6.All.ReadMissPct},
		{"read miss traffic %", res.Report.Table6.All.ReadMissTrafficPct, live.report.Table6.All.ReadMissTrafficPct},
		{"writeback %", res.Report.Table6.All.WritebackPct, live.report.Table6.All.WritebackPct},
	} {
		t.Logf("%s: replay %.2f, live %.2f", r.name, r.got, r.want)
		if math.Abs(r.got-r.want) > tol {
			t.Errorf("%s: replay %.2f vs live %.2f exceeds %.1f-point tolerance", r.name, r.got, r.want, tol)
		}
	}
}

func TestReplayIsDeterministic(t *testing.T) {
	live := capturedTrace(t)
	a, err := Run(replayCfg("a"), trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(replayCfg("a"), trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverge:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if !reflect.DeepEqual(a.Report, b.Report) {
		t.Fatal("reports diverge between identical replays")
	}
	if ReplayTable(a).String() != ReplayTable(b).String() {
		t.Fatal("rendered reports diverge")
	}
}

func TestSpeedScalesVirtualTime(t *testing.T) {
	live := capturedTrace(t)
	base, err := Run(replayCfg("base"), trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	cfg := replayCfg("fast")
	cfg.Speed = 60
	fast, err := Run(cfg, trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Stats.Applied != base.Stats.Applied {
		t.Errorf("speed changed the record count: %d vs %d", fast.Stats.Applied, base.Stats.Applied)
	}
	// 2 hours of trace at 60x lands near 2 minutes of virtual time.
	if fast.Horizon <= 0 || fast.Horizon > base.Horizon/30 {
		t.Errorf("horizon %v not compressed from %v", fast.Horizon, base.Horizon)
	}
	// Compressing time compresses the 30-second delayed-write windows, so
	// less data should die in the cache — but the replayed ops are identical.
	if fast.Report.Table10.FileOpens != base.Report.Table10.FileOpens {
		t.Errorf("opens differ under speed scaling")
	}
}

func TestAsFastAsPossible(t *testing.T) {
	live := capturedTrace(t)
	cfg := replayCfg("afap")
	cfg.AsFastAsPossible = true
	res, err := Run(cfg, trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Horizon != 0 {
		t.Errorf("AFAP should freeze virtual time at 0, horizon %v", res.Horizon)
	}
	base, err := Run(replayCfg("base"), trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Applied != base.Stats.Applied {
		t.Errorf("AFAP changed the record count: %d vs %d", res.Stats.Applied, base.Stats.Applied)
	}
	if res.Report.Table10.FileOpens != base.Report.Table10.FileOpens {
		t.Errorf("AFAP changed the open count")
	}
}

func TestRecordFilters(t *testing.T) {
	live := capturedTrace(t)

	cfg := replayCfg("clients")
	cfg.Keep = KeepClients(0, 1)
	res, err := Run(cfg, trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Filtered == 0 {
		t.Fatal("client filter dropped nothing")
	}
	if got := res.Stats.Read - res.Stats.Scrubbed - res.Stats.Filtered; got != res.Stats.Applied {
		t.Fatalf("filter accounting: %+v", res.Stats)
	}
	cfg = replayCfg("kinds")
	cfg.Keep = And(KeepKinds(trace.KindOpen, trace.KindClose, trace.KindRead,
		trace.KindWrite, trace.KindReposition), KeepServers(0, 1))
	res2, err := Run(cfg, trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Applied == 0 || res2.Stats.Applied >= res.Stats.Read {
		t.Fatalf("kind filter accounting: %+v", res2.Stats)
	}
}

func TestReplayEngineRunsOnce(t *testing.T) {
	e := New(replayCfg("once"))
	if _, err := e.Run(trace.NewSliceStream(nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(trace.NewSliceStream(nil)); err == nil {
		t.Fatal("second Run should fail")
	}
}
