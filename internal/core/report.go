package core

import (
	"fmt"
	"strings"
	"time"

	"spritefs/internal/analysis"
	"spritefs/internal/consistency"
	"spritefs/internal/fscache"
	"spritefs/internal/stats"
)

// Paper reference values, transcribed from the published tables. Where a
// value is a range, the paper's (min-max) across the eight traces is kept;
// a few cells lost to scan noise are marked with the paper's prose figure
// instead. These drive the paper-vs-measured columns of EXPERIMENTS.md.
var paper = struct {
	table1Users  [8]float64
	table1MBRead [8]float64
	table1Opens  [8]float64

	t2TenMinActive, t2TenMinThr, t2TenMinThrMig float64
	t2TenSecActive, t2TenSecThr, t2TenSecThrMig float64
	t2PeakUser10m, t2PeakUser10s                float64
	t2BSDTenMinThr, t2BSDTenSecThr              float64

	t3AccRO, t3AccWO, t3AccRW    float64
	t3BytesRO, t3BytesWO         float64
	t3ROWholeAcc, t3ROWholeBytes float64
	t3WOWholeAcc, t3WOWholeBytes float64

	fig1RunsUnder10K, fig1BytesOverMB        float64
	fig3OpensUnderQuarterSec                 float64
	fig4FilesUnder30sLo, fig4FilesUnder30sHi float64
	fig4BytesUnder30sLo, fig4BytesUnder30sHi float64

	t4AvgSizeKB, t4Change15AvgKB, t4Change60AvgKB float64

	t5UncacheablePct, t5PagingPct, t5ReadWriteRatio float64

	t6ReadMiss, t6ReadMissMig, t6MissTraffic, t6MissTrafficMig float64
	t6Writeback, t6WriteFetch, t6PagingMiss, t6PagingMissMig   float64

	t7PagingPct, t7NonPagingRW float64

	t8FilePct, t8VMPct, t8AgeFileMin, t8AgeVMMin float64

	t9DelayPct, t9FsyncPct, t9RecallPct, t9VMPct float64
	t9DelayAge, t9FsyncAge, t9RecallAge          float64

	t10CWS, t10Recall float64

	t11ErrPerHour60, t11UsersPct60, t11OpensPct60 float64
	t11ErrPerHour3, t11OpensPct3                  float64

	t12TokenBytesGain, t12TokenRPCGain float64
}{
	table1Users:  [8]float64{44, 48, 47, 33, 48, 50, 46, 36},
	table1MBRead: [8]float64{1282, 1608, 13064, 17754, 822, 1489, 1292, 2320},
	table1Opens:  [8]float64{149254, 224102, 149898, 115929, 124508, 184863, 133846, 275140},

	t2TenMinActive: 9.1, t2TenMinThr: 8.0, t2TenMinThrMig: 50.7,
	t2TenSecActive: 1.6, t2TenSecThr: 47.0, t2TenSecThrMig: 316,
	t2PeakUser10m: 458, t2PeakUser10s: 9871,
	t2BSDTenMinThr: 0.40, t2BSDTenSecThr: 1.5,

	t3AccRO: 88, t3AccWO: 11, t3AccRW: 1,
	t3BytesRO: 80, t3BytesWO: 19,
	t3ROWholeAcc: 78, t3ROWholeBytes: 89,
	t3WOWholeAcc: 67, t3WOWholeBytes: 69,

	fig1RunsUnder10K: 80, fig1BytesOverMB: 10,
	fig3OpensUnderQuarterSec: 75,
	fig4FilesUnder30sLo:      65, fig4FilesUnder30sHi: 80,
	fig4BytesUnder30sLo: 4, fig4BytesUnder30sHi: 27,

	t4AvgSizeKB: 7168, t4Change15AvgKB: 493, t4Change60AvgKB: 1049,

	t5UncacheablePct: 20, t5PagingPct: 35, t5ReadWriteRatio: 4,

	t6ReadMiss: 41.4, t6ReadMissMig: 22.2, t6MissTraffic: 37.1, t6MissTrafficMig: 31.7,
	t6Writeback: 88.4, t6WriteFetch: 1.2, t6PagingMiss: 28.7, t6PagingMissMig: 8.8,

	t7PagingPct: 35, t7NonPagingRW: 2,

	t8FilePct: 79.4, t8VMPct: 20.6, t8AgeFileMin: 71.1, t8AgeVMMin: 27.2,

	t9DelayPct: 75, t9FsyncPct: 12, t9RecallPct: 12, t9VMPct: 1.3,
	t9DelayAge: 47.6, t9FsyncAge: 16.2, t9RecallAge: 11.9,

	t10CWS: 0.34, t10Recall: 1.7,

	t11ErrPerHour60: 18, t11UsersPct60: 48, t11OpensPct60: 0.34,
	t11ErrPerHour3: 0.59, t11OpensPct3: 0.011,

	t12TokenBytesGain: 2, t12TokenRPCGain: 20,
}

// Table1 renders the overall trace statistics for a set of trace results.
func Table1(results []*TraceResult) *stats.Table {
	t := stats.NewTable("Table 1. Overall trace statistics (measured | paper where legible)", "Metric")
	for _, r := range results {
		t.Headers = append(t.Headers, fmt.Sprintf("T%d", r.TraceNum))
	}
	row := func(label string, f func(*TraceResult) string) {
		cells := []string{label}
		for _, r := range results {
			cells = append(cells, f(r))
		}
		t.AddRow(cells...)
	}
	row("Duration (hours)", func(r *TraceResult) string { return fmt.Sprintf("%.1f", r.Hours) })
	row("Different users", func(r *TraceResult) string {
		return fmt.Sprintf("%d|%g", r.Overall.Users, paper.table1Users[r.TraceNum-1])
	})
	row("Users of migration", func(r *TraceResult) string { return fmt.Sprintf("%d", r.Overall.MigrationUsers) })
	row("MB read from files", func(r *TraceResult) string {
		return fmt.Sprintf("%.0f|%g", r.Overall.MBReadFiles, paper.table1MBRead[r.TraceNum-1])
	})
	row("MB written to files", func(r *TraceResult) string { return fmt.Sprintf("%.0f", r.Overall.MBWrittenFiles) })
	row("MB read from dirs", func(r *TraceResult) string { return fmt.Sprintf("%.1f", r.Overall.MBReadDirs) })
	row("Open events", func(r *TraceResult) string {
		return fmt.Sprintf("%d|%g", r.Overall.Opens, paper.table1Opens[r.TraceNum-1])
	})
	row("Close events", func(r *TraceResult) string { return fmt.Sprintf("%d", r.Overall.Closes) })
	row("Reposition events", func(r *TraceResult) string { return fmt.Sprintf("%d", r.Overall.Repositions) })
	row("Delete events", func(r *TraceResult) string { return fmt.Sprintf("%d", r.Overall.Deletes) })
	row("Truncate events", func(r *TraceResult) string { return fmt.Sprintf("%d", r.Overall.Truncates) })
	row("Shared read events", func(r *TraceResult) string { return fmt.Sprintf("%d", r.Overall.SharedReads) })
	row("Shared write events", func(r *TraceResult) string { return fmt.Sprintf("%d", r.Overall.SharedWrites) })
	return t
}

// avgOver averages a per-trace metric.
func avgOver(results []*TraceResult, f func(*TraceResult) float64) float64 {
	if len(results) == 0 {
		return 0
	}
	var w stats.Welford
	for _, r := range results {
		w.Add(f(r))
	}
	return w.Mean()
}

// rangeOver renders "mean (min-max)" across traces, the paper's
// parenthetical per-trace spread.
func rangeOver(results []*TraceResult, format string, f func(*TraceResult) float64) string {
	if len(results) == 0 {
		return "-"
	}
	var w stats.Welford
	for _, r := range results {
		w.Add(f(r))
	}
	if len(results) == 1 {
		return fmt.Sprintf(format, w.Mean())
	}
	return fmt.Sprintf(format+" ("+format+"-"+format+")", w.Mean(), w.Min(), w.Max())
}

// Table2 renders user activity vs the paper's averages.
func Table2(results []*TraceResult) *stats.Table {
	t := stats.NewTable("Table 2. User activity", "Metric", "Measured", "Paper")
	add := func(label string, measured, paperVal float64) {
		t.AddRow(label, fmt.Sprintf("%.2f", measured), fmt.Sprintf("%.2f", paperVal))
	}
	add("10-min avg active users",
		avgOver(results, func(r *TraceResult) float64 { return r.Activity.TenMinAll.AvgActiveUsers }),
		paper.t2TenMinActive)
	add("10-min avg throughput/user (KB/s)",
		avgOver(results, func(r *TraceResult) float64 { return r.Activity.TenMinAll.AvgThroughputKBs }),
		paper.t2TenMinThr)
	add("10-min migrated throughput (KB/s)",
		avgOver(results, func(r *TraceResult) float64 { return r.Activity.TenMinMigrated.AvgThroughputKBs }),
		paper.t2TenMinThrMig)
	add("10-min peak user (KB/s)",
		avgOver(results, func(r *TraceResult) float64 { return r.Activity.TenMinAll.PeakUserKBs }),
		paper.t2PeakUser10m)
	add("10-sec avg active users",
		avgOver(results, func(r *TraceResult) float64 { return r.Activity.TenSecAll.AvgActiveUsers }),
		paper.t2TenSecActive)
	add("10-sec avg throughput/user (KB/s)",
		avgOver(results, func(r *TraceResult) float64 { return r.Activity.TenSecAll.AvgThroughputKBs }),
		paper.t2TenSecThr)
	add("10-sec migrated throughput (KB/s)",
		avgOver(results, func(r *TraceResult) float64 { return r.Activity.TenSecMigrated.AvgThroughputKBs }),
		paper.t2TenSecThrMig)
	add("10-sec peak user (KB/s)",
		avgOver(results, func(r *TraceResult) float64 { return r.Activity.TenSecAll.PeakUserKBs }),
		paper.t2PeakUser10s)
	t.AddRow("BSD-study 10-min throughput", "-", fmt.Sprintf("%.2f", paper.t2BSDTenMinThr))
	return t
}

// Table3 renders the access-pattern mix.
func Table3(results []*TraceResult) *stats.Table {
	t := stats.NewTable("Table 3. File access patterns (percent)", "Metric", "Measured", "Paper")
	add := func(label string, m, p float64) {
		t.AddRow(label, fmt.Sprintf("%.1f", m), fmt.Sprintf("%.1f", p))
	}
	accClass := func(class int) float64 {
		return avgOver(results, func(r *TraceResult) float64 { a, _ := r.Access.ClassPct(class); return a })
	}
	bytesClass := func(class int) float64 {
		return avgOver(results, func(r *TraceResult) float64 { _, b := r.Access.ClassPct(class); return b })
	}
	add("read-only accesses", accClass(analysis.ReadOnly), paper.t3AccRO)
	add("write-only accesses", accClass(analysis.WriteOnly), paper.t3AccWO)
	add("read-write accesses", accClass(analysis.ReadWrite), paper.t3AccRW)
	add("read-only bytes", bytesClass(analysis.ReadOnly), paper.t3BytesRO)
	add("write-only bytes", bytesClass(analysis.WriteOnly), paper.t3BytesWO)
	add("RO whole-file (accesses)",
		avgOver(results, func(r *TraceResult) float64 { a, _ := r.Access.SeqPct(analysis.ReadOnly, analysis.WholeFile); return a }),
		paper.t3ROWholeAcc)
	add("RO whole-file (bytes)",
		avgOver(results, func(r *TraceResult) float64 { _, b := r.Access.SeqPct(analysis.ReadOnly, analysis.WholeFile); return b }),
		paper.t3ROWholeBytes)
	add("WO whole-file (accesses)",
		avgOver(results, func(r *TraceResult) float64 {
			a, _ := r.Access.SeqPct(analysis.WriteOnly, analysis.WholeFile)
			return a
		}),
		paper.t3WOWholeAcc)
	add("WO whole-file (bytes)",
		avgOver(results, func(r *TraceResult) float64 {
			_, b := r.Access.SeqPct(analysis.WriteOnly, analysis.WholeFile)
			return b
		}),
		paper.t3WOWholeBytes)
	return t
}

// Figures renders the headline quantiles of Figures 1-4.
func Figures(results []*TraceResult) *stats.Table {
	t := stats.NewTable("Figures 1-4. Distribution checkpoints (percent)", "Metric", "Measured", "Paper")
	add := func(label string, m float64, p string) {
		t.AddRow(label, fmt.Sprintf("%.1f", m), p)
	}
	add("Fig1: runs <= 10 KB (by runs)",
		100*avgOver(results, func(r *TraceResult) float64 { return r.Access.RunsByCount.FracAtOrBelow(10 * 1024) }),
		fmt.Sprintf("~%.0f", paper.fig1RunsUnder10K))
	add("Fig1: bytes in runs > 1 MB",
		100*avgOver(results, func(r *TraceResult) float64 { return 1 - r.Access.RunsByBytes.FracAtOrBelow(1<<20) }),
		fmt.Sprintf(">=%.0f", paper.fig1BytesOverMB))
	add("Fig2: accesses to files <= 10 KB",
		100*avgOver(results, func(r *TraceResult) float64 { return r.Access.SizeByFiles.FracAtOrBelow(10 * 1024) }),
		"~80")
	add("Fig2: bytes from files >= 1 MB",
		100*avgOver(results, func(r *TraceResult) float64 { return 1 - r.Access.SizeByBytes.FracAtOrBelow(1<<20) }),
		"~40 (trace 1)")
	add("Fig3: opens <= 0.25 s",
		100*avgOver(results, func(r *TraceResult) float64 { return r.Access.OpenTimes.FracAtOrBelow(0.25) }),
		fmt.Sprintf("~%.0f", paper.fig3OpensUnderQuarterSec))
	add("Fig4: files living < 30 s",
		avgOver(results, func(r *TraceResult) float64 { return r.Lifetime.PctFilesUnder30s() }),
		fmt.Sprintf("%.0f-%.0f", paper.fig4FilesUnder30sLo, paper.fig4FilesUnder30sHi))
	add("Fig4: bytes living < 30 s",
		avgOver(results, func(r *TraceResult) float64 { return r.Lifetime.PctBytesUnder30s() }),
		fmt.Sprintf("%.0f-%.0f", paper.fig4BytesUnder30sLo, paper.fig4BytesUnder30sHi))
	return t
}

// Table10 renders consistency action frequency from the traces, with the
// paper's per-trace spread.
func Table10(results []*TraceResult) *stats.Table {
	t := stats.NewTable("Table 10. Consistency actions (percent of file opens)", "Action", "Measured", "Paper")
	t.AddRow("concurrent write-sharing",
		rangeOver(results, "%.2f", func(r *TraceResult) float64 { return r.Actions.PctCWS() }),
		"0.34 (0.18-0.56)")
	t.AddRow("server recall",
		rangeOver(results, "%.2f", func(r *TraceResult) float64 { return r.Actions.PctRecalls() }),
		"1.7 (0.79-3.35)")
	return t
}

// Table11 renders the stale-data simulation.
func Table11(results []*TraceResult) *stats.Table {
	t := stats.NewTable("Table 11. Stale data errors under polling consistency", "Metric", "Measured", "Paper")
	add := func(label string, m float64, p float64, format string) {
		t.AddRow(label, fmt.Sprintf(format, m), fmt.Sprintf(format, p))
	}
	add("60-s: errors/hour", avgOver(results, func(r *TraceResult) float64 { return r.Stale60.ErrorsPerHour }), paper.t11ErrPerHour60, "%.2f")
	add("60-s: users affected (%)", avgOver(results, func(r *TraceResult) float64 { return r.Stale60.PctUsersAffected() }), paper.t11UsersPct60, "%.1f")
	add("60-s: opens with error (%)", avgOver(results, func(r *TraceResult) float64 { return r.Stale60.PctOpensWithError() }), paper.t11OpensPct60, "%.3f")
	add("3-s: errors/hour", avgOver(results, func(r *TraceResult) float64 { return r.Stale3.ErrorsPerHour }), paper.t11ErrPerHour3, "%.2f")
	add("3-s: opens with error (%)", avgOver(results, func(r *TraceResult) float64 { return r.Stale3.PctOpensWithError() }), paper.t11OpensPct3, "%.3f")
	return t
}

// Table12 renders the consistency-overhead comparison.
func Table12(results []*TraceResult) *stats.Table {
	t := stats.NewTable("Table 12. Consistency overheads (ratios to application traffic)",
		"Algorithm", "Bytes (measured)", "RPCs (measured)", "Paper note")
	notes := [consistency.NumAlgs]string{
		"exactly 1.0 by construction",
		"~same as Sprite",
		fmt.Sprintf("~%.0f%% fewer bytes, ~%.0f%% fewer RPCs", paper.t12TokenBytesGain, paper.t12TokenRPCGain),
	}
	for a := 0; a < consistency.NumAlgs; a++ {
		bytes := avgOver(results, func(r *TraceResult) float64 { return r.Overhead.ByteRatio(a) })
		rpcs := avgOver(results, func(r *TraceResult) float64 { return r.Overhead.RPCRatio(a) })
		t.AddRow(consistency.AlgNames[a], fmt.Sprintf("%.3f", bytes), fmt.Sprintf("%.3f", rpcs), notes[a])
	}
	return t
}

// CounterTables renders Tables 4-9 (and the servers' Table 10 cross-check)
// from a counter study.
func CounterTables(r *CounterResult) string {
	var b strings.Builder

	t4 := stats.NewTable("Table 4. Client cache sizes", "Metric", "Measured", "Paper")
	t4.AddRow("avg cache size (KB)", fmt.Sprintf("%.0f", r.Table4.AvgSizeKB), fmt.Sprintf("~%.0f", paper.t4AvgSizeKB))
	t4.AddRow("stddev over 15-min intervals (KB)", fmt.Sprintf("%.0f", r.Table4.SDSizeKB), "-")
	t4.AddRow("15-min change avg (KB)", fmt.Sprintf("%.0f", r.Table4.Change15AvgKB), fmt.Sprintf("%.0f", paper.t4Change15AvgKB))
	t4.AddRow("15-min change max (KB)", fmt.Sprintf("%.0f", r.Table4.Change15MaxKB), "21904")
	t4.AddRow("60-min change avg (KB)", fmt.Sprintf("%.0f", r.Table4.Change60AvgKB), fmt.Sprintf("%.0f", paper.t4Change60AvgKB))
	b.WriteString(t4.String())
	b.WriteString("\n")

	t5 := stats.NewTable("Table 5. Raw traffic sources (percent of bytes)", "Source", "Measured", "Paper")
	t5.AddRow("cacheable file reads", fmt.Sprintf("%.1f", r.Table5.FileReadPct), "~32")
	t5.AddRow("cacheable file writes", fmt.Sprintf("%.1f", r.Table5.FileWritePct), "~10")
	t5.AddRow("paging (all classes)", fmt.Sprintf("%.1f", r.Table5.PagingPct), fmt.Sprintf("~%.0f", paper.t5PagingPct))
	t5.AddRow("uncacheable (paging+shared+dirs)", fmt.Sprintf("%.1f", r.Table5.UncacheablePct), fmt.Sprintf("~%.0f", paper.t5UncacheablePct))
	t5.AddRow("write-shared", fmt.Sprintf("%.2f", r.Table5.SharedReadPct+r.Table5.SharedWritePct), "<1")
	t5.AddRow("directory reads", fmt.Sprintf("%.2f", r.Table5.DirReadPct), "~1")
	b.WriteString(t5.String())
	b.WriteString("\n")

	t6 := stats.NewTable("Table 6. Client cache effectiveness (percent)", "Metric", "Measured", "Paper", "Measured-migrated", "Paper-migrated")
	t6.AddRow("file read misses",
		fmt.Sprintf("%.1f", r.Table6.All.ReadMissPct), fmt.Sprintf("%.1f", paper.t6ReadMiss),
		fmt.Sprintf("%.1f", r.Table6.Migrated.ReadMissPct), fmt.Sprintf("%.1f", paper.t6ReadMissMig))
	t6.AddRow("read miss traffic",
		fmt.Sprintf("%.1f", r.Table6.All.ReadMissTrafficPct), fmt.Sprintf("%.1f", paper.t6MissTraffic),
		fmt.Sprintf("%.1f", r.Table6.Migrated.ReadMissTrafficPct), fmt.Sprintf("%.1f", paper.t6MissTrafficMig))
	t6.AddRow("writeback traffic",
		fmt.Sprintf("%.1f", r.Table6.All.WritebackPct), fmt.Sprintf("%.1f", paper.t6Writeback), "-", "-")
	t6.AddRow("write fetches",
		fmt.Sprintf("%.1f", r.Table6.All.WriteFetchPct), fmt.Sprintf("%.1f", paper.t6WriteFetch),
		fmt.Sprintf("%.1f", r.Table6.Migrated.WriteFetchPct), "1.6")
	t6.AddRow("paging read misses",
		fmt.Sprintf("%.1f", r.Table6.All.PagingReadMissPct), fmt.Sprintf("%.1f", paper.t6PagingMiss),
		fmt.Sprintf("%.1f", r.Table6.Migrated.PagingReadMissPct), fmt.Sprintf("%.1f", paper.t6PagingMissMig))
	b.WriteString(t6.String())
	b.WriteString("\n")

	t7 := stats.NewTable("Table 7. Server traffic", "Metric", "Measured", "Paper")
	t7.AddRow("paging share (%)", fmt.Sprintf("%.1f", r.Table7.PagingPct), fmt.Sprintf("~%.0f", paper.t7PagingPct))
	t7.AddRow("write-shared share (%)", fmt.Sprintf("%.2f", r.Table7.SharedPct), "~1")
	t7.AddRow("non-paging read:write ratio", fmt.Sprintf("%.2f", r.Table7.ReadWriteRatio), fmt.Sprintf("~%.0f", paper.t7NonPagingRW))
	b.WriteString(t7.String())
	b.WriteString("\n")

	t8 := stats.NewTable("Table 8. Cache block replacement", "Metric", "Measured", "Paper")
	t8.AddRow("replaced by file data (%)", fmt.Sprintf("%.1f", r.Table8.FilePct), fmt.Sprintf("%.1f", paper.t8FilePct))
	t8.AddRow("given to VM (%)", fmt.Sprintf("%.1f", r.Table8.VMPct), fmt.Sprintf("%.1f", paper.t8VMPct))
	t8.AddRow("avg age at replacement (min)", fmt.Sprintf("%.1f", r.Table8.AvgAgeMin), fmt.Sprintf("%.0f (file) / %.0f (vm)", paper.t8AgeFileMin, paper.t8AgeVMMin))
	b.WriteString(t8.String())
	b.WriteString("\n")

	t9 := stats.NewTable("Table 9. Dirty block cleaning", "Reason", "Measured %", "Paper %", "Measured age (s)", "Paper age (s)")
	paperPct := [fscache.NumCleanReasons]float64{paper.t9DelayPct, paper.t9FsyncPct, paper.t9RecallPct, paper.t9VMPct, 0}
	paperAge := [fscache.NumCleanReasons]float64{paper.t9DelayAge, paper.t9FsyncAge, paper.t9RecallAge, 0, 0}
	for reason := fscache.CleanReason(0); reason < fscache.NumCleanReasons; reason++ {
		t9.AddRow(reason.String(),
			fmt.Sprintf("%.1f", r.Table9.Pct[reason]),
			fmt.Sprintf("%.1f", paperPct[reason]),
			fmt.Sprintf("%.1f", r.Table9.AgeSec[reason]),
			fmt.Sprintf("%.1f", paperAge[reason]))
	}
	b.WriteString(t9.String())
	b.WriteString("\n")

	t10 := stats.NewTable("Table 10 (server counters cross-check)", "Action", "Measured %", "Paper %")
	t10.AddRow("concurrent write-sharing", fmt.Sprintf("%.2f", r.Table10.CWSPct), fmt.Sprintf("%.2f", paper.t10CWS))
	t10.AddRow("server recall", fmt.Sprintf("%.2f", r.Table10.RecallPct), fmt.Sprintf("%.2f", paper.t10Recall))
	b.WriteString(t10.String())

	fmt.Fprintf(&b, "\nNetwork utilization: %.2f%% of the Ethernet (paper: ~4%% from paging alone)\n",
		100*r.NetUtilization)
	fmt.Fprintf(&b, "Server caches: %.1f%% hit rate on client fetches; %d disk reads, %d disk writes\n",
		r.Storage.ReadHitPct, r.Storage.DiskReads, r.Storage.DiskWrites)
	return b.String()
}

// TraceReport renders every Section 4 table/figure plus Tables 10-12 for a
// set of trace results.
func TraceReport(results []*TraceResult) string {
	var b strings.Builder
	for _, t := range []*stats.Table{
		Table1(results), Table2(results), Table3(results), Figures(results),
		Table10(results), Table11(results), Table12(results),
	} {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// FaultTables renders the data-at-risk study: one row per writeback-delay
// setting, the Section 6 reliability argument as measured numbers. The
// "max dirty age" column is the claim itself — no destroyed byte was dirty
// longer than the delayed-write window plus one cleaner period.
func FaultTables(r *FaultResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault schedule (%0.1fh run): %s\n\n", r.Hours, r.Schedule)
	t := stats.NewTable("Data at risk under server crashes, by delayed-write window",
		"writeback", "crashes", "dirty bytes lost", "max dirty age", "replayed", "reopen storm", "reconsistency")
	for _, row := range r.Rows {
		rec := row.Recovery
		t.AddRow(row.WritebackDelay.String(),
			fmt.Sprintf("%d", rec.ServerCrashes+rec.ClientCrashes),
			stats.FmtBytes(rec.DirtyBytesLost),
			rec.MaxDirtyAge.Round(time.Millisecond).String(),
			stats.FmtBytes(rec.ReplayedBytes),
			fmt.Sprintf("%d", rec.RecoveryOpens),
			rec.MaxTimeToReconsistency.Round(time.Millisecond).String())
	}
	b.WriteString(t.String())
	b.WriteString("\nBound: max dirty age <= max(client writeback delay, server 30s delay) + 5s cleaner period.\n" +
		"Shrinking the client window shifts risk to the server cache (lost bytes stay flat);\n" +
		"growing it moves dirty data back to clients, where recovery replay can save it.\n")
	return b.String()
}
