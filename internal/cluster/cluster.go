// Package cluster assembles the full measured system: four file servers,
// a shared Ethernet, forty diskless client workstations with dynamic file
// caches and virtual memory, the cache-consistency coordinator, the user
// community workload, the kernel tracing machinery (per-server trace
// streams with nightly-backup noise), and the periodic counter sampler
// behind the Section 5 tables. One Cluster is one experiment run.
package cluster

import (
	"fmt"
	"time"

	"spritefs/internal/client"
	"spritefs/internal/faults"
	"spritefs/internal/metrics"
	"spritefs/internal/netsim"
	"spritefs/internal/server"
	"spritefs/internal/sim"
	"spritefs/internal/trace"
	"spritefs/internal/vm"
	"spritefs/internal/workload"
)

// Config selects a cluster experiment.
type Config struct {
	Params workload.Params
	// NumServers is the number of file servers (the paper's cluster had 4,
	// with most traffic on one Sun 4).
	NumServers int
	// Net overrides the segment's wire parameters when BandwidthBps is
	// non-zero; the zero value keeps the paper's 10 Mbit/s Ethernet. The
	// scale-out topology uses this to give each shard its own segment
	// configuration.
	Net netsim.Config
	// CollectTrace enables trace-record collection (Section 4 study).
	CollectTrace bool
	// TraceSink, when set with CollectTrace, receives records instead of
	// the in-memory buffer (cmd/tracegen writes per-server files).
	TraceSink func(trace.Record)
	// SamplePeriod is the kernel-counter sampling interval (Section 5
	// study); zero disables sampling. The paper's user-level process read
	// the counters "at regular intervals".
	SamplePeriod time.Duration
	// MemoryPagesPerClient overrides the default 24 MB of client memory
	// when non-zero.
	MemoryPagesPerClient int
	// FixedCachePages pins every client cache at a constant size
	// (cache-size sweep ablation). Zero keeps Sprite's dynamic sizing.
	FixedCachePages int
	// WritebackDelay overrides the 30-second delayed-write interval
	// (writeback-delay ablation). Zero keeps the default.
	WritebackDelay time.Duration
	// PrefetchBlocks enables sequential prefetch of that many blocks per
	// miss (prefetch ablation). Zero disables prefetch, as in Sprite.
	PrefetchBlocks int
	// Consistency selects the cache-consistency scheme for every client
	// (live weak-consistency runs; the paper could only simulate this
	// from traces).
	Consistency client.ConsistencyMode
	// PollInterval is the validity window under ConsistencyPoll.
	PollInterval time.Duration
	// Faults is the fault-injection schedule (crashes, partitions, drop
	// and delay windows) driven against the run. Empty injects nothing.
	Faults faults.Schedule
	// MetricsSample enables the registry time-series sampler at this
	// interval on the virtual clock; zero disables it. The per-client
	// counter sampler behind Table 4 (SamplePeriod) is separate.
	MetricsSample time.Duration
	// MetricsSampleCap bounds the sampler's ring buffer in sample rows
	// (oldest rows are overwritten); zero uses the sampler's default.
	MetricsSampleCap int
	// MetricsMatch restricts sampling to metric families for which it
	// returns true; nil samples every non-summary family.
	MetricsMatch func(name string) bool
	// LeanMetrics skips the per-client metric families in this cluster's
	// registry: servers, the network, the simulator and the injector
	// still register, but the client stacks do not. The scale-out
	// topology sets this for very large communities, where per-client
	// instances would dominate memory; Report tables that project client
	// families read as zero in a lean run.
	LeanMetrics bool
}

// DefaultConfig returns the paper's cluster: 4 servers, 40 clients.
func DefaultConfig(p workload.Params) Config {
	return Config{
		Params:       p,
		NumServers:   4,
		CollectTrace: true,
		SamplePeriod: time.Minute,
	}
}

// Sample is one counter-sampler observation of one client.
type Sample struct {
	Time      time.Duration
	Client    int32
	CacheSize int64
	Active    bool // user activity since the previous sample
}

// Cluster is one assembled experiment.
type Cluster struct {
	Cfg      Config
	Sim      *sim.Sim
	Net      *netsim.Network
	Servers  []*server.Server
	Clients  []*client.Client
	Engine   *workload.Engine
	Registry *workload.Registry
	// Injector drives Cfg.Faults; nil when the schedule is empty.
	Injector *faults.Injector
	// Reg is the central metric registry every component registered into
	// at construction; Report reads its sum-shaped tables from here.
	Reg *metrics.Registry
	// MetricSampler holds the time series collected when Cfg.MetricsSample
	// is set; nil otherwise.
	MetricSampler *metrics.Sampler

	recs    []trace.Record
	sink    func(trace.Record)
	tracing bool

	samples  []Sample
	lastOps  map[int32]int64
	sampler  *sim.Ticker
	tickers  []*sim.Ticker
	backupAt time.Duration
}

// New builds a cluster. The workload is bootstrapped (file population
// created) but not started; call Run.
func New(cfg Config) *Cluster {
	if cfg.NumServers < 1 {
		panic("cluster: need at least one server")
	}
	p := cfg.Params
	ncfg := cfg.Net
	if ncfg.BandwidthBps == 0 {
		ncfg = netsim.DefaultConfig()
	}
	c := &Cluster{
		Cfg:     cfg,
		Sim:     sim.New(p.Seed),
		Net:     netsim.New(ncfg),
		lastOps: make(map[int32]int64),
	}
	c.tracing = cfg.CollectTrace
	c.sink = cfg.TraceSink
	for i := 0; i < cfg.NumServers; i++ {
		srv := server.New(int16(i))
		// The main server (a Sun 4 with 128 MB) carries most traffic; the
		// others are smaller. Server caches fill nearly all of memory.
		if i == 0 {
			srv.AttachStorage(128 << 20 / 4096)
		} else {
			srv.AttachStorage(64 << 20 / 4096)
		}
		c.Servers = append(c.Servers, srv)
	}
	route := func(file uint64) *server.Server {
		idx := int(file >> 48)
		if idx >= len(c.Servers) {
			idx = 0
		}
		return c.Servers[idx]
	}

	bootRng := sim.NewRand(p.Seed ^ 0x5eed)
	c.Registry = workload.Bootstrap(p, c.Servers, bootRng)

	hosts := make(map[int32]workload.Host, p.NumClients)
	for i := 0; i < p.NumClients; i++ {
		ccfg := client.DefaultConfig(int32(i))
		if cfg.MemoryPagesPerClient > 0 {
			ccfg.MemoryPages = cfg.MemoryPagesPerClient
		}
		// Memory sizes vary 24-32 MB across the cluster, as in the paper.
		if cfg.MemoryPagesPerClient == 0 && i%3 == 0 {
			ccfg.MemoryPages = 32 << 20 / vm.PageSize
		}
		ccfg.FixedCachePages = cfg.FixedCachePages
		ccfg.Consistency = cfg.Consistency
		ccfg.PollInterval = cfg.PollInterval
		// Most traffic lands on server 0; creations go there.
		cl := client.New(ccfg, c.Sim, c.Net, route, c.Servers[0], c)
		cl.SetCoordinator(c)
		if cfg.WritebackDelay > 0 {
			cl.Cache.SetWritebackDelay(cfg.WritebackDelay)
		}
		if cfg.PrefetchBlocks > 0 {
			cl.Cache.SetPrefetch(cfg.PrefetchBlocks)
		}
		c.Clients = append(c.Clients, cl)
		hosts[int32(i)] = cl
	}
	if !cfg.Faults.Empty() {
		c.Injector = faults.Attach(c, cfg.Faults)
	}
	c.Reg = metrics.New()
	regClients := c.Clients
	if cfg.LeanMetrics {
		regClients = nil
	}
	RegisterComponents(c.Reg, c.Sim, regClients, c.Servers, c.Net, c.Injector)
	c.Engine = workload.NewEngine(c.Sim, p, c.Registry, hosts)
	c.Engine.RegisterMetrics(c.Reg)
	c.Engine.OnMigrate = func(user, pid, from, to int32) {
		c.Emit(trace.Record{
			Time:   c.Sim.Now(),
			Kind:   trace.KindMigrate,
			Flags:  trace.FlagMigrated,
			Client: to,
			User:   user,
			Proc:   pid,
		})
	}
	return c
}

// Emit implements client.Tracer: records flow to the sink or buffer while
// tracing is enabled.
func (c *Cluster) Emit(rec trace.Record) {
	if !c.tracing {
		return
	}
	if c.sink != nil {
		c.sink(rec)
		return
	}
	c.recs = append(c.recs, rec)
}

// RecallFrom implements client.Coordinator.
func (c *Cluster) RecallFrom(clientID int32, file uint64) {
	if int(clientID) < len(c.Clients) {
		c.Clients[clientID].FlushForRecall(file)
	}
}

// DisableCaching implements client.Coordinator.
func (c *Cluster) DisableCaching(clients []int32, file uint64) {
	for _, id := range clients {
		if int(id) < len(c.Clients) {
			c.Clients[id].DisableFor(file)
		}
	}
}

// Clock implements faults.System.
func (c *Cluster) Clock() *sim.Sim { return c.Sim }

// Wire implements faults.System.
func (c *Cluster) Wire() *netsim.Network { return c.Net }

// FileServers implements faults.System.
func (c *Cluster) FileServers() []*server.Server { return c.Servers }

// Workstations implements faults.System.
func (c *Cluster) Workstations() []*client.Client { return c.Clients }

// Trace returns the collected records (empty when a sink was used).
func (c *Cluster) Trace() []trace.Record { return c.recs }

// Samples returns the counter-sampler observations.
func (c *Cluster) Samples() []Sample { return c.samples }

// Run executes the experiment for the given duration: cleaner daemons and
// the counter sampler start, the community runs, and the clock advances
// past the horizon until all activity drains.
func (c *Cluster) Run(duration time.Duration) {
	c.Start(duration)
	c.Sim.RunUntil(duration)
	c.Finish()
	c.Sim.RunUntil(duration + DrainTime)
}

// DrainTime is how far past the measurement horizon the clock advances so
// in-flight programs and final writebacks settle (Run and the scale-out
// executor both use it).
const DrainTime = 10 * time.Minute

// Start schedules everything a run needs — system processes, cleaner
// daemons, samplers, backups, and the user community — without advancing
// the clock. Callers that drive the clock themselves (the epoch-stepped
// scale-out executor) pair it with Finish; Run wraps the whole sequence.
func (c *Cluster) Start(duration time.Duration) {
	c.StartDaemons()
	if c.Cfg.Params.EmitBackupNoise && c.tracing {
		c.scheduleBackups(duration)
	}
	c.Engine.Run(duration)
}

// StartDaemons schedules the standing machinery only — system processes,
// client and server cleaners, and the samplers — without the user
// community or backups. The live-service frontend uses this: its agent
// fleet replaces the synthetic community, but delayed writes, consistency
// and the VM balance still need their daemons. The scheduling order is
// exactly Start's (event sequence numbers, and so replay determinism,
// depend on it).
func (c *Cluster) StartDaemons() {
	c.startSystemProcs()
	for _, cl := range c.Clients {
		cl.StartCleaner()
	}
	// Server-side cleaners: writebacks reach the disk after the server's
	// own 30-second delay ("an additional 30 seconds later it is written
	// to disk").
	for i, srv := range c.Servers {
		srv := srv
		c.tickers = append(c.tickers, c.Sim.Every(time.Duration(i)*time.Second, 5*time.Second, func() {
			srv.Store.Clean(c.Sim.Now())
		}))
	}
	if c.Cfg.SamplePeriod > 0 {
		c.sampler = c.Sim.Every(c.Cfg.SamplePeriod, c.Cfg.SamplePeriod, c.sample)
	}
	if c.Cfg.MetricsSample > 0 {
		c.MetricSampler = metrics.NewSampler(c.Reg, c.Cfg.MetricsSampleCap, c.Cfg.MetricsMatch)
		c.tickers = append(c.tickers, c.Sim.Every(c.Cfg.MetricsSample, c.Cfg.MetricsSample, func() {
			c.MetricSampler.Sample(c.Sim.Now())
		}))
	}
}

// Finish stops the daemons and samplers at measurement end. The caller
// then advances the clock (by DrainTime past the horizon) so in-flight
// programs and final writebacks drain.
func (c *Cluster) Finish() {
	for _, cl := range c.Clients {
		cl.StopCleaner()
	}
	if c.sampler != nil {
		c.sampler.Stop()
	}
	for _, tk := range c.tickers {
		tk.Stop()
	}
}

// startSystemProcs gives every workstation its long-lived resident memory
// consumers — the window system, shell, and daemons that occupy a third
// or so of physical memory and are touched continuously. They are what
// keeps the virtual memory system's preference meaningful: without them
// the file cache would swallow nearly all of memory, instead of the
// quarter-to-third the paper measures (Table 4).
func (c *Cluster) startSystemProcs() {
	if len(c.Registry.Binaries) == 0 {
		return
	}
	rng := c.Sim.Rand()
	for i, cl := range c.Clients {
		cl := cl
		bin := c.Registry.Binaries[i%len(c.Registry.Binaries)]
		pid := int32(-1000 - i)
		// Mostly anonymous (stack/heap) pages: zero-fill, no start-up I/O.
		resident := 1900 + rng.Intn(400) // stack/anonymous share
		cl.ExecProcess(pid, bin.File, bin.CodePages, bin.DataPages, resident, false)
		// Seed the heap so working-set trimming has pages to cycle from
		// the start of the run.
		cl.TouchProcess(pid, 400+rng.Intn(200))
		// Touched regularly so the 20-minute idle rule never lets the
		// file cache steal these pages; a balanced grow/free random walk
		// keeps the FS/VM boundary moving (Table 4's size changes).
		c.tickers = append(c.tickers, c.Sim.Every(time.Duration(i%180)*time.Second, 3*time.Minute, func() {
			switch {
			case rng.Bool(0.25):
				cl.TouchProcess(pid, rng.Intn(64))
			case rng.Bool(0.35):
				cl.VM.Free(pid, rng.Intn(96), c.Sim.Now())
				cl.TouchProcess(pid, 0)
			case rng.Bool(0.5):
				// Working-set trimming: part of the heap goes to the
				// backing file and faults back on the next touch — the
				// steady backing-store traffic of Section 5.3 (about one
				// 4 KB page every few seconds per workstation).
				cl.VM.PageOut(pid, rng.Intn(90), c.Sim.Now())
			default:
				cl.TouchProcess(pid, 0)
			}
		}))
	}
}

// sample records each client's cache size and whether it was active since
// the last sample (the paper screened out inactive machine-intervals).
func (c *Cluster) sample() {
	now := c.Sim.Now()
	for _, cl := range c.Clients {
		st := cl.Cache.Stats()
		ops := st.All.ReadOps + st.All.WriteOps
		active := ops != c.lastOps[cl.ID()]
		c.lastOps[cl.ID()] = ops
		c.samples = append(c.samples, Sample{
			Time:      now,
			Client:    cl.ID(),
			CacheSize: cl.Cache.SizeBytes(),
			Active:    active,
		})
	}
}

// scheduleBackups emits the nightly tape backup's trace noise: a burst of
// self-trace-flagged reads of every file, which the merge step must scrub
// (the paper's merger removed backup records the same way).
func (c *Cluster) scheduleBackups(duration time.Duration) {
	first := 2 * time.Hour
	if first >= duration {
		first = duration / 2 // short runs still exercise the scrub path
	}
	for at := first; at < duration; at += 24 * time.Hour {
		at := at
		c.Sim.At(at, func() {
			now := c.Sim.Now()
			for _, f := range c.Registry.AllFiles {
				srv := int16(f >> 48)
				c.Emit(trace.Record{
					Time:   now,
					Kind:   trace.KindRead,
					Flags:  trace.FlagSelfTrace,
					Server: srv,
					Client: -1,
					User:   -1,
					File:   f,
					Length: 4096,
				})
			}
		})
	}
}

// PerServerStreams splits the collected trace by logging server, modelling
// the paper's per-server trace files; merging them back with trace.Merge
// reconstructs the analysis input.
func (c *Cluster) PerServerStreams() []trace.Stream {
	buckets := make([][]trace.Record, len(c.Servers))
	for _, r := range c.recs {
		idx := int(r.Server)
		if idx < 0 || idx >= len(buckets) {
			idx = 0
		}
		buckets[idx] = append(buckets[idx], r)
	}
	out := make([]trace.Stream, len(buckets))
	for i, b := range buckets {
		out[i] = trace.NewSliceStream(b)
	}
	return out
}

// String summarizes the cluster configuration.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{clients=%d servers=%d users=%d+%d}",
		len(c.Clients), len(c.Servers),
		c.Cfg.Params.DailyUsers, c.Cfg.Params.OccasionalUsers)
}
