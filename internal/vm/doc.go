// Package vm models the Sprite client virtual memory system as it matters
// to the file-system study (Section 5.3 of the paper): physical memory is
// traded between the VM system and the file cache, with VM receiving
// preference — a VM page cannot be converted to a file-cache page unless it
// has been unreferenced for at least twenty minutes. Paging traffic is
// divided into the paper's four page classes (code, initialized data,
// modified data, stack); code and initialized-data faults are serviced
// through the file cache, while backing-file traffic bypasses client
// caching entirely ("pages of backing files are never present in the file
// caches of clients").
package vm
