// Package sim provides the deterministic discrete-event simulation engine
// underlying the whole reproduction. All the cluster machinery (clients,
// servers, caches, daemons, the workload generators) runs on one virtual
// clock driven by an event heap, so a run with a fixed seed is exactly
// reproducible — the property that lets the experiment harness regenerate
// the paper's tables bit-for-bit across machines.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is virtual time measured from the start of the simulation.
type Time = time.Duration

// Sim is a discrete-event simulator. It is not safe for concurrent use;
// each simulated cluster owns one Sim and runs single-threaded (parallel
// experiments run independent Sims).
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *Rand
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Sim) Rand() *Rand { return s.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is a programming error and panics.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative d is
// clamped to zero.
func (s *Sim) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Ticker is a cancellable periodic event created by Every.
type Ticker struct {
	stopped bool
}

// Stop cancels future firings of the ticker.
func (t *Ticker) Stop() { t.stopped = true }

// Every schedules fn to run at start and then every period thereafter,
// until the returned Ticker is stopped or the simulation ends. It models
// the paper's daemons (the 5-second cache cleaner, the counter sampler).
// period must be positive.
func (s *Sim) Every(start, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	tk := &Ticker{}
	var tick func()
	tick = func() {
		if tk.stopped {
			return
		}
		fn()
		if !tk.stopped {
			s.After(period, tick)
		}
	}
	s.At(start, tick)
	return tk
}

// Step runs the single earliest pending event, advancing the clock to its
// time. It reports whether an event was run.
func (s *Sim) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	e.fn()
	return true
}

// Run executes events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to exactly t. Events scheduled after t remain pending.
func (s *Sim) RunUntil(t Time) {
	for s.events.Len() > 0 && s.events[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending returns the number of events still scheduled.
func (s *Sim) Pending() int { return s.events.Len() }

// NextAt returns the time of the earliest pending event. ok is false when
// no events are scheduled. The conservative parallel executor uses this to
// pick each epoch's start without disturbing the heap.
func (s *Sim) NextAt() (t Time, ok bool) {
	if s.events.Len() == 0 {
		return 0, false
	}
	return s.events[0].at, true
}

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among same-time events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
