package replay

import (
	"testing"

	"spritefs/internal/trace"
)

// TestPartitionByClient pins the partition invariants: every record lands
// in exactly one shard, shard assignment depends only on the client id,
// and per-shard order is preserved.
func TestPartitionByClient(t *testing.T) {
	live := capturedTrace(t)
	parts := PartitionByClient(live.recs, 3)
	total := 0
	for s, part := range parts {
		total += len(part)
		var last trace.Record
		for i, r := range part {
			want := int(r.Client) % 3
			if want < 0 {
				want += 3
			}
			if want != s {
				t.Fatalf("client %d record in shard %d, want %d", r.Client, s, want)
			}
			if i > 0 && r.Time < last.Time {
				t.Fatalf("shard %d order broken at %d", s, i)
			}
			last = r
		}
	}
	if total != len(live.recs) {
		t.Errorf("partition lost records: %d of %d", total, len(live.recs))
	}
	one := PartitionByClient(live.recs, 1)
	if len(one[0]) != len(live.recs) {
		t.Errorf("1-shard partition dropped records")
	}
}

// TestShardedWorkerCountInvariance pins the driver's determinism: the
// aggregate sharded report is byte-identical whether one goroutine or
// eight replay the shards.
func TestShardedWorkerCountInvariance(t *testing.T) {
	live := capturedTrace(t)
	base := replayCfg("sharded")
	base.AsFastAsPossible = true

	render := func(results []*Result) string {
		s := ShardedTable(results).String()
		for _, r := range results {
			s += "\n" + r.Config.Name
		}
		return s
	}

	serial, err := RunSharded(live.recs, base, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := render(serial)
	for _, workers := range []int{4, 8} {
		par, err := RunSharded(live.recs, base, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := render(par); got != want {
			t.Errorf("workers=%d sharded report differs\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestShardedConservesRecords checks nothing is lost end to end: the
// shards together apply every record a single replay applies.
func TestShardedConservesRecords(t *testing.T) {
	live := capturedTrace(t)
	base := replayCfg("conserve")
	base.AsFastAsPossible = true

	single, err := Run(base, trace.NewSliceStream(live.recs))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunSharded(live.recs, base, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var applied int64
	for _, r := range sharded {
		applied += r.Stats.Applied
	}
	if applied != single.Stats.Applied {
		t.Errorf("sharded replay applied %d records, single replay %d", applied, single.Stats.Applied)
	}
}
