package live

import (
	"errors"
	"fmt"

	"spritefs/internal/cluster"
	"spritefs/internal/faults"
	"spritefs/internal/server"
	"spritefs/internal/workload"
)

// ServiceConfig selects the live server group.
type ServiceConfig struct {
	// Agents is the client-agent population; agents map onto the cluster's
	// workstations round-robin (agent % NumClients).
	Agents int
	// Seed drives the file-population bootstrap and the cluster's RNG.
	Seed int64
	// Faults optionally injects crashes/partitions into the live run, the
	// same schedule format the batch experiments use.
	Faults faults.Schedule
}

// FileRef is one file an agent may target, with its bootstrap size (live
// writes may grow it; agents only need a plausible offset range).
type FileRef struct {
	ID   uint64
	Size int64
}

// Service is the live server group: the paper's cluster — servers, caches,
// consistency, recovery — owned by a WallClock dispatcher loop and exposed
// through an in-process RPC executor. The synthetic user community is NOT
// started; the agent fleet is the community.
type Service struct {
	WC      *WallClock
	Cluster *cluster.Cluster

	agents int
	// perAgent[i] is agent i's private working set; shared is visible to
	// every agent (the write-sharing files that exercise consistency).
	// Built at construction, immutable afterwards — safe to read from any
	// goroutine.
	perAgent [][]FileRef
	shared   []FileRef
}

// maxWorkstations caps the number of simulated workstations; beyond the
// paper's 40, extra agents share machines (several users per workstation
// was the reality of the traced cluster too).
const maxWorkstations = 40

// NewService assembles the cluster and wraps its simulator in a WallClock.
// Nothing runs until Start.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Agents < 1 {
		return nil, fmt.Errorf("live: need at least one agent, got %d", cfg.Agents)
	}
	p := workload.Default(cfg.Seed)
	p.NumClients = cfg.Agents
	if p.NumClients > maxWorkstations {
		p.NumClients = maxWorkstations
	}
	// One bootstrap "user" per agent so every agent has a private working
	// set; no occasional users, no backup noise — the fleet is the load.
	p.DailyUsers = cfg.Agents
	p.OccasionalUsers = 0
	p.EmitBackupNoise = false
	ccfg := cluster.Config{
		Params:     p,
		NumServers: 4,
		Faults:     cfg.Faults,
		// No trace collection and no virtual-time samplers: the live
		// metrics endpoint observes the run instead.
	}
	c := cluster.New(ccfg)
	s := &Service{
		WC:      New(c.Sim),
		Cluster: c,
		agents:  cfg.Agents,
	}
	s.buildWorkingSets()
	return s, nil
}

// buildWorkingSets flattens the bootstrap registry into per-agent and
// shared target lists (construction-time only: the cluster is still
// single-threaded here).
func (s *Service) buildWorkingSets() {
	reg := s.Cluster.Registry
	size := func(id uint64) int64 {
		for _, srv := range s.Cluster.Servers {
			if f := srv.Lookup(id); f != nil {
				return f.Size
			}
		}
		return 0
	}
	ref := func(id uint64) FileRef { return FileRef{ID: id, Size: size(id)} }
	s.perAgent = make([][]FileRef, s.agents)
	for a := 0; a < s.agents; a++ {
		user := int32(a)
		var set []FileRef
		for _, id := range reg.UserSmall[user] {
			set = append(set, ref(id))
		}
		for _, id := range reg.UserData[user] {
			set = append(set, ref(id))
		}
		if mb, ok := reg.Mailboxes[user]; ok {
			set = append(set, ref(mb))
		}
		s.perAgent[a] = set
	}
	for g := 0; g < int(workload.NumGroups); g++ {
		for _, id := range reg.GroupShared[workload.Group(g)] {
			s.shared = append(s.shared, ref(id))
		}
	}
}

// AgentFiles returns agent a's private working set. The returned slice is
// immutable; callers must not modify it.
func (s *Service) AgentFiles(a int) []FileRef { return s.perAgent[a%s.agents] }

// SharedFiles returns the cross-agent shared files. Immutable.
func (s *Service) SharedFiles() []FileRef { return s.shared }

// Start schedules the cluster's standing daemons (cleaners, system
// processes, samplers) at virtual time zero — the simulator is still
// exclusively ours here — and then launches the dispatcher loop, which
// takes ownership.
func (s *Service) Start() error {
	s.Cluster.StartDaemons()
	s.WC.Start()
	return s.WC.Call(func() {})
}

// Drain stops the cluster daemons, lets delayed writes flush, and shuts
// the dispatcher loop down. After Drain the service accepts no requests.
func (s *Service) Drain() {
	// Best-effort: the clock may already be stopped (double signal).
	s.WC.Call(func() {
		s.Cluster.Finish()
		// Push every client's dirty blocks out now rather than waiting the
		// 30-second delayed-write period that will never elapse.
		for _, cl := range s.Cluster.Clients {
			for _, f := range cl.Cache.DirtyFiles() {
				cl.FlushForRecall(f)
			}
		}
	})
	s.WC.Stop()
}

// Exec runs one request against the cluster. Loop-only: the Dispatcher
// invokes it from the WallClock goroutine.
func (s *Service) Exec(req *Request) Response {
	cl := s.Cluster.Clients[int(req.Agent)%len(s.Cluster.Clients)]
	user := req.Agent
	proc := 10000 + req.Agent // one synthetic process per agent
	switch req.Verb {
	case VerbOpen:
		hid, lat, err := cl.Open(user, proc, req.File, true, req.Write, false)
		if err != nil {
			return Response{Err: err.Error(), Retryable: errors.Is(err, server.ErrDown), SimLat: lat}
		}
		var size int64
		if f := s.Cluster.Servers[int(req.File>>48)%len(s.Cluster.Servers)].Lookup(req.File); f != nil {
			size = f.Size
		}
		return Response{Handle: hid, Size: size, SimLat: lat}
	case VerbRead:
		if !cl.HasHandle(req.Handle) {
			return Response{Err: "live: read on unknown handle"}
		}
		n, lat := cl.ReadAt(req.Handle, req.Offset, req.Length)
		return Response{N: n, SimLat: lat}
	case VerbWrite:
		if !cl.HasHandle(req.Handle) {
			return Response{Err: "live: write on unknown handle"}
		}
		lat := cl.WriteAt(req.Handle, req.Offset, req.Length)
		return Response{N: req.Length, SimLat: lat}
	case VerbClose:
		lat, err := cl.Close(req.Handle)
		if err != nil {
			return Response{Err: err.Error(), SimLat: lat}
		}
		return Response{SimLat: lat}
	case VerbGetattr:
		// Attribute reads hit the server's name cache; the paper charges
		// them a control RPC, which FileSize's routing already models as
		// free lookup — charge no extra simulated latency.
		return Response{Size: cl.FileSize(req.File)}
	default:
		return Response{Err: fmt.Sprintf("live: unknown verb %d", req.Verb)}
	}
}
