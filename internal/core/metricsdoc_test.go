package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMetricsDocDeterministic: the generator must emit identical bytes on
// every invocation, or the -check drift gate would flap.
func TestMetricsDocDeterministic(t *testing.T) {
	if MetricsDoc() != MetricsDoc() {
		t.Fatal("MetricsDoc output is not deterministic")
	}
}

// TestMetricsDocGolden is the drift gate in test form: the committed
// docs/METRICS.md must match what the registry generates. Regenerate with
// `go run ./cmd/metricsdoc` after adding or changing a metric.
func TestMetricsDocGolden(t *testing.T) {
	path := filepath.Join("..", "..", "docs", "METRICS.md")
	have, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run `go run ./cmd/metricsdoc`)", err)
	}
	want := MetricsDoc()
	if string(have) != want {
		t.Fatalf("docs/METRICS.md is stale; run `go run ./cmd/metricsdoc` to regenerate")
	}
}

// TestMetricsDocCoversReportCounters: every counter family the Report
// projections read must appear in the generated reference — the issue's
// acceptance criterion that the docs cover cache, traffic, consistency and
// recovery counters.
func TestMetricsDocCoversReportCounters(t *testing.T) {
	doc := MetricsDoc()
	for _, name := range []string{
		// Table 5 / 6 cache families.
		"spritefs_cache_read_bytes_total",
		"spritefs_cache_write_bytes_total",
		"spritefs_cache_paging_read_bytes_total",
		// Table 7 traffic.
		"spritefs_net_bytes_total",
		"spritefs_net_ops_total",
		// Table 10 / consistency.
		"spritefs_server_file_opens_total",
		"spritefs_server_cws_events_total",
		"spritefs_server_recalls_total",
		"spritefs_consistency_bytes_total",
		"spritefs_client_stale_reads_total",
		// Recovery.
		"spritefs_client_recoveries_total",
		"spritefs_server_crashes_total",
		"spritefs_faults_server_crashes_total",
		"spritefs_client_max_lost_dirty_age_seconds",
		// Storage and VM.
		"spritefs_server_store_disk_reads_total",
		"spritefs_vm_paged_in_bytes_total",
		// Replay bookkeeping.
		"spritefs_replay_records_applied_total",
	} {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("generated METRICS.md is missing %s", name)
		}
	}
}

// TestReferenceFamiliesHaveHelpAndUnits enforces the self-description
// contract: every family registers a non-empty help string, and every
// non-summary family a unit.
func TestReferenceFamiliesHaveHelpAndUnits(t *testing.T) {
	for _, f := range ReferenceFamilies() {
		if f.Desc.Help == "" {
			t.Errorf("%s has no help string", f.Desc.Name)
		}
		if f.Desc.Unit == "" {
			t.Errorf("%s has no unit", f.Desc.Name)
		}
	}
}
