package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecord(i int) Record {
	return Record{
		Time:   time.Duration(i) * time.Millisecond,
		Kind:   KindOpen,
		Flags:  FlagReadMode,
		Server: int16(i % 4),
		Client: int32(i % 40),
		User:   int32(i % 30),
		Proc:   int32(1000 + i),
		File:   uint64(i * 7),
		Handle: uint64(i),
		Offset: int64(i * 11),
		Length: int64(i * 13),
		Size:   int64(i * 17),
	}
}

func TestKindString(t *testing.T) {
	if KindOpen.String() != "open" || KindDirRead.String() != "dirread" {
		t.Error("kind names wrong")
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("unknown kind string = %q", Kind(200).String())
	}
	if KindInvalid.Valid() || Kind(200).Valid() {
		t.Error("invalid kinds reported valid")
	}
	if !KindClose.Valid() {
		t.Error("KindClose reported invalid")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 100; i++ {
		r := sampleRecord(i)
		r.Kind = Kind(1 + i%(int(kindMax)-1))
		want = append(want, r)
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 100 {
		t.Errorf("Count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("round trip mismatch")
	}
}

func TestCodecNegativeFields(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	rec := Record{Kind: KindWrite, Offset: -5, Length: -7, Size: -9, Client: -1, User: -2, Server: -3}
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, _ := NewReader(&buf)
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Errorf("negative fields corrupted: %+v != %+v", got, rec)
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTMAGIC"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	rec := sampleRecord(1)
	w.Write(&rec)
	w.Flush()
	b := buf.Bytes()
	r, err := NewReader(bytes.NewReader(b[:len(b)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated record not reported")
	}
}

func TestReaderCorruptKind(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	rec := sampleRecord(1)
	w.Write(&rec)
	w.Flush()
	b := buf.Bytes()
	b[8+8] = 99 // kind byte of first record (after 8-byte header)
	r, _ := NewReader(bytes.NewReader(b))
	if _, err := r.Next(); err == nil {
		t.Error("corrupt kind not reported")
	}
}

func TestSliceStream(t *testing.T) {
	recs := []Record{sampleRecord(0), sampleRecord(1)}
	s := NewSliceStream(recs)
	got, err := Collect(s)
	if err != nil || len(got) != 2 {
		t.Fatalf("Collect: %v, %d records", err, len(got))
	}
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("drained stream error = %v, want EOF", err)
	}
}

func TestMergeOrdersByTime(t *testing.T) {
	mk := func(times ...int) Stream {
		var recs []Record
		for _, ms := range times {
			recs = append(recs, Record{Time: time.Duration(ms) * time.Millisecond, Kind: KindOpen})
		}
		return NewSliceStream(recs)
	}
	merged, err := Collect(Merge(mk(1, 4, 9), mk(2, 3, 10), mk(), mk(5)))
	if err != nil {
		t.Fatal(err)
	}
	var times []int
	for _, r := range merged {
		times = append(times, int(r.Time/time.Millisecond))
	}
	if !sort.IntsAreSorted(times) {
		t.Errorf("merged times not sorted: %v", times)
	}
	if len(times) != 7 {
		t.Errorf("got %d records, want 7", len(times))
	}
}

func TestMergeScrubsSelfTrace(t *testing.T) {
	recs := []Record{
		{Time: 1, Kind: KindOpen},
		{Time: 2, Kind: KindWrite, Flags: FlagSelfTrace},
		{Time: 3, Kind: KindClose},
	}
	got, err := Collect(Merge(NewSliceStream(recs)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("self-trace record not scrubbed: %d records", len(got))
	}
	for _, r := range got {
		if r.Flags&FlagSelfTrace != 0 {
			t.Error("self-trace record leaked through merge")
		}
	}
}

func TestMergeTieBreakDeterministic(t *testing.T) {
	a := []Record{{Time: 5, Kind: KindOpen, Server: 0}}
	b := []Record{{Time: 5, Kind: KindOpen, Server: 1}}
	got, _ := Collect(Merge(NewSliceStream(a), NewSliceStream(b)))
	if got[0].Server != 0 || got[1].Server != 1 {
		t.Error("tie-break not by stream index")
	}
}

// Property: merging randomly split sorted streams reproduces the original.
func TestMergeSplitRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		total := int(n)%200 + 1
		var all []Record
		tm := time.Duration(0)
		for i := 0; i < total; i++ {
			tm += time.Duration(rng.Intn(1000)) * time.Microsecond
			all = append(all, Record{Time: tm, Kind: KindOpen, File: uint64(i)})
		}
		k := rng.Intn(4) + 1
		parts := make([][]Record, k)
		for _, r := range all {
			i := rng.Intn(k)
			parts[i] = append(parts[i], r)
		}
		streams := make([]Stream, k)
		for i := range parts {
			streams[i] = NewSliceStream(parts[i])
		}
		merged, err := Collect(Merge(streams...))
		if err != nil || len(merged) != total {
			return false
		}
		for i := 1; i < len(merged); i++ {
			if merged[i].Time < merged[i-1].Time {
				return false
			}
		}
		// Same multiset of file ids.
		seen := make(map[uint64]int)
		for _, r := range merged {
			seen[r.File]++
		}
		for _, r := range all {
			seen[r.File]--
		}
		for _, c := range seen {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFilterAndExcludeUsers(t *testing.T) {
	recs := []Record{
		{Time: 1, Kind: KindOpen, User: 1},
		{Time: 2, Kind: KindOpen, User: 2},
		{Time: 3, Kind: KindOpen, User: 3},
	}
	got, _ := Collect(ExcludeUsers(NewSliceStream(recs), 2))
	if len(got) != 2 || got[0].User != 1 || got[1].User != 3 {
		t.Errorf("ExcludeUsers wrong: %v", got)
	}
	onlyOpens, _ := Collect(Filter(NewSliceStream(recs), func(r *Record) bool { return r.User > 2 }))
	if len(onlyOpens) != 1 {
		t.Errorf("Filter wrong: %v", onlyOpens)
	}
}

func TestMergeThroughCodec(t *testing.T) {
	// End-to-end: write two per-server binary traces, read them back,
	// merge, verify ordering — the cmd/traceanalyze pipeline in miniature.
	var bufs [2]bytes.Buffer
	for srv := 0; srv < 2; srv++ {
		w, _ := NewWriter(&bufs[srv])
		for i := 0; i < 50; i++ {
			r := Record{Time: time.Duration(i*2+srv) * time.Second, Kind: KindOpen, Server: int16(srv)}
			w.Write(&r)
		}
		w.Flush()
	}
	r0, _ := NewReader(&bufs[0])
	r1, _ := NewReader(&bufs[1])
	got, err := Collect(Merge(r0, r1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d records", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatal("merged codec streams out of order")
		}
	}
}
