package workload

import (
	"fmt"
	"time"

	"spritefs/internal/migrate"
	"spritefs/internal/sim"
)

// perOpCPU is the fixed kernel-call overhead added to every operation's
// latency (system-call and library time on a 10-MIPS workstation).
const perOpCPU = 2 * time.Millisecond

// execOverhead is process startup cost beyond paging.
const execOverhead = 60 * time.Millisecond

// userState is one member of the user community.
type userState struct {
	id       int32
	group    Group
	daily    bool
	home     int32
	sessHost int32 // workstation of the current session (usually home)
	migrates bool  // uses pmake migration
	bigSim   int   // >=0: index into Registry.BigInputs; -1 otherwise
	active   bool
	// stickyTarget is the user's last migration target; reusing it keeps
	// the target's cache warm — the locality effect behind migrated
	// processes' better-than-average hit ratios (Table 6).
	stickyTarget int32
	hasSticky    bool
}

// Stats summarizes a workload run.
type Stats struct {
	ProgramsRun int64
	OpsExecuted int64
	Migrations  int64
	Evictions   int64
	AbortedOps  int64 // ops skipped after an error (e.g. open of a deleted file)
	SessionsRun int64
	// Per-application byte accounting (reads/writes issued), for
	// calibration and the workload-mix ablations.
	ReadByApp  [NumApps]int64
	WriteByApp [NumApps]int64
	RunsByApp  [NumApps]int64
}

// Engine drives the user community against the cluster's client hosts.
type Engine struct {
	sim  *sim.Sim
	rng  *sim.Rand
	p    Params
	reg  *Registry
	pool *migrate.Pool

	hosts map[int32]Host
	users []*userState

	// OnMigrate, if set, is invoked when a process is placed on a remote
	// host (the cluster layer emits the KindMigrate trace record).
	OnMigrate func(user, pid, from, to int32)

	nextPid int32
	pidProg map[int32]*program
	// progFree recycles finished program objects (and their handle/file
	// slot arrays and step closures); the engine launches hundreds of
	// thousands of short programs per simulated hour, so per-launch
	// allocation is a hot path.
	progFree []*program
	// prevOutput maps (user, app) to the output file of the user's last
	// run of the app, deleted by the next run (opDeletePrev).
	prevOutput map[outKey]uint64
	stopAt     time.Duration
	st         Stats
}

type outKey struct {
	user int32
	app  AppKind
}

// NewEngine builds an engine over the given hosts. The hosts map must
// contain an entry for every workstation id in [0, NumClients).
func NewEngine(s *sim.Sim, p Params, reg *Registry, hosts map[int32]Host) *Engine {
	if len(hosts) < p.NumClients {
		panic(fmt.Sprintf("workload: %d hosts for %d clients", len(hosts), p.NumClients))
	}
	rng := sim.NewRand(p.Seed)
	hostIDs := make([]int32, 0, p.NumClients)
	for i := 0; i < p.NumClients; i++ {
		if hosts[int32(i)] == nil {
			panic(fmt.Sprintf("workload: missing host %d", i))
		}
		hostIDs = append(hostIDs, int32(i))
	}
	e := &Engine{
		sim:        s,
		rng:        rng,
		p:          p,
		reg:        reg,
		pool:       migrate.NewPool(hostIDs, p.MigrationReuseBias, rng.Fork()),
		hosts:      hosts,
		pidProg:    make(map[int32]*program),
		prevOutput: make(map[outKey]uint64),
		nextPid:    1000,
	}
	e.buildUsers()
	return e
}

// Stats returns a snapshot of the run counters.
func (e *Engine) Stats() Stats { return e.st }

// Pool exposes the migration pool (for tests and the cluster's counters).
func (e *Engine) Pool() *migrate.Pool { return e.pool }

func (e *Engine) buildUsers() {
	total := e.p.DailyUsers + e.p.OccasionalUsers
	bigAssigned := 0
	for i := 0; i < total; i++ {
		u := &userState{
			id:     int32(i),
			group:  Group(i % int(NumGroups)),
			daily:  i < e.p.DailyUsers,
			bigSim: -1,
		}
		if u.daily {
			// Daily users get dedicated workstations.
			u.home = int32(i % e.p.NumClients)
			u.migrates = e.rng.Bool(e.p.MigrationUserFrac)
		} else {
			// Occasional users share the remaining machines.
			base := e.p.DailyUsers
			span := e.p.NumClients - base
			if span <= 0 {
				span, base = e.p.NumClients, 0
			}
			u.home = int32(base + (i-e.p.DailyUsers)%span)
		}
		// The big-simulation users of traces 3-4 are daily VLSI-group
		// users running their class projects all day — through pmake, so
		// their runs migrate ("pmake is used ... also for simulations").
		if u.daily && bigAssigned < e.p.BigSimUsers && u.group == GroupVLSI {
			u.bigSim = bigAssigned
			u.migrates = true
			bigAssigned++
		}
		e.users = append(e.users, u)
	}
}

// Run schedules the whole community and returns immediately; the caller
// advances the simulator (sim.RunUntil) to execute the day. Activity stops
// at the given duration.
func (e *Engine) Run(duration time.Duration) {
	e.stopAt = duration
	for _, u := range e.users {
		u := u
		var first time.Duration
		if u.daily {
			// Staggered morning arrivals.
			first = e.rng.ExpDur(e.p.GapMedian / 2)
		} else {
			// Occasional users appear OccasionalSessionsPerDay times per
			// day on average, independent of run length — some never show
			// up in a 24-hour trace, as in the paper's user counts.
			first = e.rng.ExpDur(time.Duration(float64(24*time.Hour) / e.p.OccasionalSessionsPerDay))
		}
		if first < duration {
			e.sim.At(first, func() { e.startSession(u) })
		}
	}
}

func (e *Engine) startSession(u *userState) {
	if e.sim.Now() >= e.stopAt || u.active {
		return
	}
	u.active = true
	e.st.SessionsRun++
	// Some sessions happen away from the user's own workstation (a lab
	// machine, a colleague's office). The user's files then get written
	// from one client and read from another — the sequential write-
	// sharing behind the paper's recall rate and stale-data exposure.
	u.sessHost = u.home
	if e.rng.Bool(e.p.AwaySessionProb) && e.p.NumClients > 1 {
		for {
			h := int32(e.rng.Intn(e.p.NumClients))
			if h != u.home {
				u.sessHost = h
				break
			}
		}
	}
	evicted := e.pool.SetOwnerActive(u.sessHost, true)
	e.handleEvictions(evicted)
	dur := time.Duration(e.rng.LogNormal(float64(e.p.SessionMedian), e.p.SessionSigma))
	end := e.sim.Now() + dur
	if end > e.stopAt {
		end = e.stopAt
	}
	e.nextApp(u, end)
}

func (e *Engine) endSession(u *userState) {
	u.active = false
	e.pool.SetOwnerActive(u.sessHost, false)
	var gap time.Duration
	if u.daily {
		gap = time.Duration(e.rng.LogNormal(float64(e.p.GapMedian), e.p.GapSigma))
	} else {
		gap = e.rng.ExpDur(4 * e.p.GapMedian)
	}
	next := e.sim.Now() + gap
	if next < e.stopAt {
		e.sim.At(next, func() { e.startSession(u) })
	}
}

// nextApp picks and launches the user's next application run; when it
// completes, the loop continues after a think time until the session ends.
func (e *Engine) nextApp(u *userState, end time.Duration) {
	if e.sim.Now() >= end || e.sim.Now() >= e.stopAt {
		e.endSession(u)
		return
	}
	cont := func() {
		think := e.rng.ExpDur(e.p.ThinkMean)
		e.sim.After(think, func() { e.nextApp(u, end) })
	}
	if u.bigSim >= 0 {
		// Class-project users run their simulators back to back, farmed
		// out to idle hosts whenever one is available.
		ops, rate := e.genBigSim(u, e.reg.BigInputs[u.bigSim])
		host, migrated := e.hosts[u.home], false
		if target, ok := e.selectSticky(u); ok {
			host, migrated = e.hosts[target], true
		}
		e.launch(u, AppBigSim, host, ops, rate, migrated, cont)
		return
	}
	app := AppKind(e.rng.Pick(e.p.AppMix[u.group][:]))
	switch app {
	case AppPmake:
		if u.migrates {
			e.runPmake(u, cont)
			return
		}
		app = AppCompile
		fallthrough
	case AppCompile:
		var ops []op
		var rate float64
		if u.group == GroupOS && e.rng.Bool(0.08) {
			ops, rate = e.genKernelRead(u)
		} else {
			ops, rate = e.genCompile(u, e.rng.Bool(0.45))
		}
		e.launch(u, AppCompile, e.hosts[u.sessHost], ops, rate, false, cont)
	case AppEdit:
		ops, rate := e.genEdit(u)
		e.launch(u, AppEdit, e.hosts[u.sessHost], ops, rate, false, cont)
	case AppMail:
		ops, rate := e.genMail(u)
		e.launch(u, AppMail, e.hosts[u.sessHost], ops, rate, false, cont)
	case AppDoc:
		ops, rate := e.genDoc(u)
		e.launch(u, AppDoc, e.hosts[u.sessHost], ops, rate, false, cont)
	case AppSim:
		// Simulations are the other big migration customer ("pmake is
		// used for all compilations ... and also for simulations").
		ops, rate := e.genSim(u, e.p.SimOutputMB)
		host, migrated := e.hosts[u.sessHost], false
		if u.migrates {
			if target, ok := e.selectSticky(u); ok {
				host, migrated = e.hosts[target], true
			}
		}
		e.launch(u, AppSim, host, ops, rate, migrated, cont)
	case AppRandomDB:
		ops, rate := e.genRandomDB(u)
		e.launch(u, AppRandomDB, e.hosts[u.sessHost], ops, rate, false, cont)
	case AppDirList:
		ops, rate := e.genDirList(u)
		e.launch(u, AppDirList, e.hosts[u.sessHost], ops, rate, false, cont)
	case AppGrep:
		ops, rate := e.genGrep(u)
		e.launch(u, AppGrep, e.hosts[u.sessHost], ops, rate, false, cont)
	case AppSharedLog:
		e.runSharedLog(u, cont)
	case AppStream:
		ops, rate := e.genStream(u)
		e.launch(u, AppStream, e.hosts[u.sessHost], ops, rate, false, cont)
	case AppBuildFarm:
		e.runBuildFarm(u, cont)
	default:
		cont()
	}
}

// selectSticky picks a migration target, strongly preferring the user's
// previous target while it remains idle.
func (e *Engine) selectSticky(u *userState) (int32, bool) {
	if u.hasSticky && u.stickyTarget != u.sessHost && e.pool.IdleHosts() > 0 {
		if target := u.stickyTarget; e.isIdle(target) {
			return target, true
		}
	}
	target, ok := e.pool.Select(u.sessHost)
	if ok {
		u.stickyTarget, u.hasSticky = target, true
	}
	return target, ok
}

func (e *Engine) isIdle(host int32) bool {
	for _, uu := range e.users {
		if uu.active && uu.sessHost == host {
			return false
		}
	}
	return true
}

// runSharedLog appends to a group-shared file and, with probability
// SharedReadSoonP, has another group member read the file a few seconds
// later from their own workstation — the sequential write-sharing that
// drives server recalls (and would cause stale reads under weaker
// consistency).
func (e *Engine) runSharedLog(u *userState, cont func()) {
	file, ok := e.reg.RandomShared(e.rng, u.group)
	if !ok {
		cont()
		return
	}
	ops, rate := e.genSharedLogWrite(u, file)
	e.launch(u, AppSharedLog, e.hosts[u.sessHost], ops, rate, false, cont)
	nReaders := 0
	if e.rng.Bool(e.p.SharedReadSoonP) {
		nReaders = 1
	}
	for i := 0; i < nReaders; i++ {
		// Pick a different, currently present group member as the reader.
		var reader *userState
		for tries := 0; tries < 12; tries++ {
			cand := e.users[e.rng.Intn(len(e.users))]
			if cand.group == u.group && cand.id != u.id && cand.active {
				reader = cand
				break
			}
		}
		if reader == nil {
			continue
		}
		delay := e.rng.ExpDur(4 * time.Second)
		e.sim.After(delay, func() {
			if e.sim.Now() >= e.stopAt {
				return
			}
			rops, rrate := e.genSharedRead(reader, file)
			e.launch(reader, AppSharedLog, e.hosts[reader.sessHost], rops, rrate, false, func() {})
		})
	}
}

// runPmake farms compile targets out to idle workstations via process
// migration, then links at home when all targets finish.
func (e *Engine) runPmake(u *userState, cont func()) {
	targets := e.p.PmakeTargetsMin + e.rng.Intn(e.p.PmakeTargetsMax-e.p.PmakeTargetsMin+1)
	remaining := targets
	link := func() {
		ops, rate := e.genCompile(u, true)
		e.launch(u, AppPmake, e.hosts[u.sessHost], ops, rate, false, cont)
	}
	for i := 0; i < targets; i++ {
		host := e.hosts[u.sessHost]
		migrated := false
		// Most targets pile onto the user's usual (cache-warm) machine;
		// the rest spread for parallelism.
		var target int32
		var ok bool
		if e.rng.Bool(0.6) {
			target, ok = e.selectSticky(u)
		} else {
			target, ok = e.pool.Select(u.sessHost)
		}
		if ok {
			host = e.hosts[target]
			migrated = true
		}
		ops, rate := e.genCompile(u, false)
		done := func() {
			remaining--
			if remaining == 0 {
				link()
			}
		}
		e.launch(u, AppPmake, host, ops, rate, migrated, done)
	}
}

// launch starts a program on a host and registers it for migration
// bookkeeping. It returns the program so callers can read results
// (created-file slots) from their done callbacks; the first op always
// charges exec overhead, so done can never fire before launch returns.
// The program object is recycled after its done callback returns, so it
// must not be read after that point.
func (e *Engine) launch(u *userState, app AppKind, host Host, ops []op, rate float64, migrated bool, done func()) *program {
	e.nextPid++
	pr := e.takeProgram()
	pr.user = u.id
	pr.pid = e.nextPid
	pr.app = app
	pr.host = host
	pr.rate = rate
	pr.migrated = migrated
	pr.execFile, pr.codeP, pr.dataP, pr.stackP = 0, 0, 0, 0
	pr.ops = ops
	pr.idx = 0
	pr.handles = resizeZero(pr.handles, countSlots(ops))
	pr.files = resizeZero(pr.files, countFileSlots(ops))
	pr.aborted = false
	pr.done = done
	e.pidProg[pr.pid] = pr
	e.st.ProgramsRun++
	e.st.RunsByApp[app]++
	if migrated {
		e.pool.AddMigrant(host.ID(), pr.pid)
		e.st.Migrations++
		if e.OnMigrate != nil {
			e.OnMigrate(u.id, pr.pid, u.sessHost, host.ID())
		}
	}
	e.step(pr)
	return pr
}

// takeProgram pops a recycled program object or builds a fresh one. The
// per-program step closure is allocated exactly once per object and
// survives recycling.
func (e *Engine) takeProgram() *program {
	if n := len(e.progFree); n > 0 {
		pr := e.progFree[n-1]
		e.progFree = e.progFree[:n-1]
		return pr
	}
	pr := &program{}
	pr.stepFn = func() { e.step(pr) }
	return pr
}

// resizeZero returns s resized to n zeroed entries, reusing its backing
// array when it is large enough.
func resizeZero(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func countSlots(ops []op) int {
	n := 0
	for _, o := range ops {
		if o.kind == opOpen && o.slot >= n {
			n = o.slot + 1
		}
	}
	return n
}

func countFileSlots(ops []op) int {
	n := 0
	for _, o := range ops {
		if o.kind == opCreate && o.slot >= n {
			n = o.slot + 1
		}
	}
	return n
}

// resolve maps a fileRef to a concrete file id.
func (pr *program) resolve(f fileRef) uint64 {
	if f.slot >= 0 {
		return pr.files[f.slot]
	}
	return f.id
}

// step executes ops until one imposes a delay, then reschedules itself.
func (e *Engine) step(pr *program) {
	for pr.idx < len(pr.ops) {
		o := pr.ops[pr.idx]
		delay, repeat := e.doOp(pr, &o)
		if !repeat {
			pr.idx++
		}
		e.st.OpsExecuted++
		if delay > 0 {
			e.sim.After(delay, pr.stepFn)
			return
		}
	}
	e.finish(pr)
}

// doOp executes one op, returning its latency and whether the same op
// should run again (chunked read-to-EOF).
func (e *Engine) doOp(pr *program, o *op) (time.Duration, bool) {
	if pr.aborted && o.kind != opClose && o.kind != opExit {
		e.st.AbortedOps++
		return 0, false
	}
	h := pr.host
	xfer := func(n int64) time.Duration {
		if pr.rate <= 0 {
			return 0
		}
		return time.Duration(float64(n) / pr.rate * float64(time.Second))
	}
	switch o.kind {
	case opExec:
		pr.execFile = pr.resolve(o.file)
		pr.codeP, pr.dataP, pr.stackP = o.codeP, o.dataP, o.stackP
		h.ExecProcess(pr.pid, pr.execFile, o.codeP, o.dataP, o.stackP, pr.migrated)
		return execOverhead, false
	case opOpen:
		hd, lat, err := h.Open(pr.user, pr.pid, pr.resolve(o.file), o.read, o.write, pr.migrated)
		if err != nil {
			pr.aborted = true
			return perOpCPU, false
		}
		pr.handles[o.slot] = hd
		return lat + perOpCPU, false
	case opRead:
		hd := pr.handles[o.slot]
		if hd == 0 {
			return 0, false
		}
		n := o.bytes
		repeat := false
		if n == readToEOF {
			n = e.p.ChunkBytes
			repeat = true
		}
		got, lat := h.Read(hd, n)
		if got == 0 {
			return perOpCPU, false // EOF: stop repeating
		}
		e.st.ReadByApp[pr.app] += got
		if repeat && got < n {
			repeat = false
		}
		return lat + xfer(got) + perOpCPU, repeat
	case opWrite:
		hd := pr.handles[o.slot]
		if hd == 0 {
			return 0, false
		}
		lat := h.Write(hd, o.bytes)
		e.st.WriteByApp[pr.app] += o.bytes
		return lat + xfer(o.bytes) + perOpCPU, false
	case opSeek:
		hd := pr.handles[o.slot]
		if hd == 0 {
			return 0, false
		}
		pos := o.offset
		switch pos {
		case seekEnd:
			pos = e.sizeOfHandleFile(pr, o.slot)
		case seekRandom:
			if size := e.sizeOfHandleFile(pr, o.slot); size > 0 {
				pos = e.rng.Int63n(size)
			} else {
				pos = 0
			}
		}
		lat := h.Seek(hd, pos)
		return lat + perOpCPU, false
	case opFsync:
		hd := pr.handles[o.slot]
		if hd == 0 {
			return 0, false
		}
		return h.Fsync(hd) + perOpCPU, false
	case opClose:
		hd := pr.handles[o.slot]
		if hd == 0 {
			return 0, false
		}
		lat, _ := h.Close(hd)
		pr.handles[o.slot] = 0
		return lat + perOpCPU, false
	case opCreate:
		pr.files[o.slot] = h.Create(pr.user, pr.pid, o.dir, pr.migrated)
		return perOpCPU, false
	case opDelete:
		h.Delete(pr.user, pr.pid, pr.resolve(o.file), pr.migrated)
		return perOpCPU, false
	case opTruncate:
		h.Truncate(pr.user, pr.pid, pr.resolve(o.file), pr.migrated)
		return perOpCPU, false
	case opThink:
		h.TouchProcess(pr.pid, 0)
		return o.dur, false
	case opTouch:
		h.TouchProcess(pr.pid, o.grow)
		return 10 * time.Millisecond, false
	case opDeletePrev:
		k := outKey{pr.user, pr.app}
		if id := e.prevOutput[k]; id != 0 {
			h.Delete(pr.user, pr.pid, id, pr.migrated)
			delete(e.prevOutput, k)
		}
		return perOpCPU, false
	case opRegister:
		e.prevOutput[outKey{pr.user, pr.app}] = pr.files[o.slot]
		return 0, false
	case opExit:
		e.teardown(pr)
		return 0, false
	}
	return 0, false
}

// sizeOfHandleFile finds the file a handle slot refers to (scanning the
// program's ops) and asks the host for its size.
func (e *Engine) sizeOfHandleFile(pr *program, slot int) int64 {
	for _, o := range pr.ops {
		if o.kind == opOpen && o.slot == slot {
			return pr.host.FileSize(pr.resolve(o.file))
		}
	}
	return 0
}

// teardown closes any handles leaked by an abort and exits the process.
func (e *Engine) teardown(pr *program) {
	for i, hd := range pr.handles {
		if hd != 0 {
			pr.host.Close(hd)
			pr.handles[i] = 0
		}
	}
	pr.host.ExitProcess(pr.pid)
	if pr.migrated {
		e.pool.RemoveMigrant(pr.host.ID(), pr.pid)
	}
}

func (e *Engine) finish(pr *program) {
	delete(e.pidProg, pr.pid)
	done := pr.done
	pr.done = nil
	if done != nil {
		done()
	}
	// Recycle only after done has returned: done closures read created-file
	// slots (pr.files) and may launch follow-on programs, which must not
	// reuse this object while the callback can still see it.
	pr.ops = nil
	pr.host = nil
	e.progFree = append(e.progFree, pr)
}

// handleEvictions relocates migrated processes whose host's owner
// returned: their dirty pages flush on the old host (the paging burst of
// Section 5.3) and the process re-executes on its owner's home machine.
func (e *Engine) handleEvictions(pids []int32) {
	for _, pid := range pids {
		pr := e.pidProg[pid]
		if pr == nil {
			continue
		}
		e.st.Evictions++
		old := pr.host
		// Open files do not survive the relocation in this model: close
		// them so the server's open state stays balanced.
		for i, hd := range pr.handles {
			if hd != 0 {
				old.Close(hd)
				pr.handles[i] = 0
			}
		}
		old.EvictMigrated(pid)
		old.ExitProcess(pid)
		home := e.hosts[e.users[pr.user].home]
		pr.host = home
		home.ExecProcess(pid, pr.execFile, pr.codeP, pr.dataP, pr.stackP, pr.migrated)
	}
}
