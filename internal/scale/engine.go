package scale

import (
	"fmt"
	"runtime"
	"strconv"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/metrics"
	"spritefs/internal/sim"
	"spritefs/internal/stats"
	"spritefs/internal/workload"
)

// ExecStats counts what the channel-clock executor did. Every field is a
// pure function of the topology and seeds — wall-clock time lives in
// RunStats, not here — so ExecStats participates in the byte-identity
// guarantee.
type ExecStats struct {
	// Rounds is the number of channel-clock synchronization rounds: one
	// bound computation, shard advance and message exchange each.
	Rounds int64
	// Routed is the number of cross-shard messages exchanged.
	Routed int64
	// RoutedBytes is their total backbone payload.
	RoutedBytes int64
	// Undelivered counts messages still in flight when the drain window
	// closed (they arrive after the simulation's end and are dropped).
	Undelivered int64
	// NullAdvances counts per-link channel-clock advances that carried no
	// payload message — the protocol's null messages. They are what keeps
	// idle links from stalling the pipeline.
	NullAdvances int64
	// Rescues counts stall-breaker rounds: when zero-latency links leave
	// the executor no lookahead at all, the globally earliest shard is
	// serialized one event forward to restore progress.
	Rescues int64
	// MsgAllocs counts cross-shard message allocations that missed the
	// per-shard free lists (steady state recycles everything).
	MsgAllocs int64
}

// RunOptions selects the executor. The default (zero value) is the
// sequential executor: every round runs its shards in index order on the
// calling goroutine. Parallel fans each round out over Workers goroutines
// with an exchange at every round boundary; reports and metric dumps are
// byte-identical either way.
type RunOptions struct {
	// Horizon is the measured duration (0 = one hour). The clock then
	// advances cluster.DrainTime further so in-flight work settles, as in
	// a single-segment run.
	Horizon time.Duration
	// Parallel selects the parallel shard executor.
	Parallel bool
	// Workers bounds the parallel executor's goroutines (0 = GOMAXPROCS,
	// capped at the shard count). Ignored when Parallel is false.
	Workers int
}

// RunStats reports a finished run. Wall is measured host time and so is
// the one field that varies run to run; everything else is deterministic.
type RunStats struct {
	Wall    time.Duration
	Workers int // goroutines actually used (0 = sequential)
	Exec    ExecStats
}

// Engine is an instantiated sharded topology plus its executor state.
type Engine struct {
	Cfg       Config
	Shards    []*Shard
	Router    *Router
	Placement *Placement
	// topo is the shard grid (sites × segments-per-site).
	topo Topology
	// Reg is the topology-wide metric registry: every shard's component
	// stack registered under a shard="N" label, plus the router and
	// executor families.
	Reg *metrics.Registry

	exec    ExecStats
	now     sim.Time
	horizon time.Duration
	ran     bool

	// Executor scratch, sized at Run so rounds allocate nothing.
	dist     []sim.Time   // [n*n] cheapest multi-hop latency (diag 0)
	es       []sim.Time   // per-shard earliest-send snapshot
	floor    []sim.Time   // per-shard future-send infimum (fixpoint over dist)
	prevCC   []sim.Time   // [n*n] last advertised per-link channel clock
	sentLink []bool       // [n*n] links that carried payload this round
	byDest   [][]*Message // per-destination delivery batches
	jobs     []shardJob
	// advance records per-shard virtual-time advance widths, one sample
	// per shard per round it ran; a deterministic measure of how much
	// lookahead the channel clocks actually bought.
	advance stats.Welford
	// minLook is the smallest directed-link latency — the tightest
	// lookahead anywhere in the topology.
	minLook time.Duration
}

// New instantiates the topology: the community is scaled to Factor× the
// paper's population, split site-major across the shard grid (SplitSite
// then Split, so a segment's community is a pure function of the base
// seed, its site and its index), and each segment gets a hermetic
// cluster. The placement ring and tiered router are built, and every
// component registers into the engine-wide metric registry.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	topo := cfg.topology()
	total := workload.ScaleCommunity(cfg.Base, cfg.Factor)
	e := &Engine{Cfg: cfg, topo: topo, Router: NewRouter(cfg.Router, cfg.Tiers, topo)}
	for i := 0; i < cfg.Shards; i++ {
		site, seg := topo.SiteOf(i), i%topo.SegsPerSite
		p := workload.Split(workload.SplitSite(total, topo.Sites, site), topo.SegsPerSite, seg)
		ccfg := cluster.DefaultConfig(p)
		ccfg.CollectTrace = false
		ccfg.SamplePeriod = 0
		ccfg.NumServers = cfg.ServersPerShard
		ccfg.Net = cfg.Segment
		ccfg.LeanMetrics = cfg.LeanMetrics
		if cfg.Tune != nil {
			cfg.Tune(i, &ccfg)
		}
		sh := &Shard{
			ID:  i,
			C:   cluster.New(ccfg),
			rng: sim.NewRand(p.Seed ^ remoteSeedSalt),
			eng: e,
		}
		if i < len(cfg.SeedMessages) {
			sh.msgFree = cfg.SeedMessages[i]
		}
		e.Shards = append(e.Shards, sh)
	}
	e.Placement = buildPlacement(topo, e.Shards)
	e.Reg = metrics.New()
	e.registerMetrics()
	return e, nil
}

// Topology returns the engine's shard grid.
func (e *Engine) Topology() Topology { return e.topo }

// MustNew is New for tests and examples with known-good configurations.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Clients returns the total client count across shards.
func (e *Engine) Clients() int {
	n := 0
	for _, sh := range e.Shards {
		n += len(sh.C.Clients)
	}
	return n
}

// DrainMessagePools removes and returns every shard's recycled-message
// free list, entry i from shard i. Feeding the result to a subsequent
// engine's Config.SeedMessages lets benchmarks measure the executor's
// steady-state allocation behavior across engine lifetimes.
func (e *Engine) DrainMessagePools() [][]*Message {
	pools := make([][]*Message, len(e.Shards))
	for i, sh := range e.Shards {
		pools[i] = sh.msgFree
		sh.msgFree = nil
	}
	return pools
}

// shardJob is one shard's slice of a round: advance to the bound its
// inbound channel clocks permit.
type shardJob struct {
	sh  *Shard
	end sim.Time
}

// satAdd adds a non-negative delay to a virtual time, saturating at the
// never sentinel instead of overflowing.
func satAdd(t sim.Time, d time.Duration) sim.Time {
	if t >= never-d {
		return never
	}
	return t + d
}

// Run executes the topology to opts.Horizon plus the drain window and
// returns the run's statistics. An engine runs once; reuse is a bug.
func (e *Engine) Run(opts RunOptions) RunStats {
	if e.ran {
		panic("scale: engine already ran")
	}
	e.ran = true
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = time.Hour
	}
	e.horizon = horizon

	workers := 0
	if opts.Parallel {
		workers = opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(e.Shards) {
			workers = len(e.Shards)
		}
	}

	start := time.Now()
	e.initExecutor()
	for _, sh := range e.Shards {
		sh.C.Start(horizon)
		sh.startRemote(horizon)
	}

	var jobsCh chan shardJob
	var done chan struct{}
	if workers > 0 {
		jobsCh = make(chan shardJob, len(e.Shards))
		done = make(chan struct{}, len(e.Shards))
		for w := 0; w < workers; w++ {
			go func() {
				for j := range jobsCh {
					j.sh.advanceTo(j.end)
					done <- struct{}{}
				}
			}()
		}
		defer close(jobsCh)
	}
	run := func(jobs []shardJob) {
		if workers > 0 && len(jobs) > 1 {
			for _, j := range jobs {
				jobsCh <- j
			}
			for range jobs {
				<-done
			}
		} else {
			for _, j := range jobs {
				j.sh.advanceTo(j.end)
			}
		}
	}

	// Phase 1: the measured window.
	e.runPhase(horizon, run)
	// Phase 2: daemons and samplers stop at the horizon, exactly as in a
	// single-segment run, then in-flight work drains.
	for _, sh := range e.Shards {
		sh.C.Finish()
	}
	e.runPhase(horizon+cluster.DrainTime, run)
	for _, sh := range e.Shards {
		e.exec.Undelivered += int64(len(sh.inbox))
		e.exec.MsgAllocs += sh.msgAllocs
	}
	return RunStats{Wall: time.Since(start), Workers: workers, Exec: e.exec}
}

// initExecutor sizes the per-round scratch and precomputes the all-pairs
// cheapest-latency matrix the channel clocks relax over. A future send
// can be a reply at the end of a request chain, so the safe lower bound
// on a link is the cheapest multi-hop path, not the direct latency —
// Floyd-Warshall over the link matrix covers topologies where a relay
// path undercuts a direct link.
func (e *Engine) initExecutor() {
	n := len(e.Shards)
	e.es = make([]sim.Time, n)
	e.floor = make([]sim.Time, n)
	e.prevCC = make([]sim.Time, n*n)
	e.sentLink = make([]bool, n*n)
	e.byDest = make([][]*Message, n)
	e.jobs = make([]shardJob, 0, n)

	e.dist = make([]sim.Time, n*n)
	e.minLook = 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			l := e.Router.MinLatency(i, j)
			e.dist[i*n+j] = sim.Time(l)
			if e.minLook == 0 || l < e.minLook {
				e.minLook = l
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if i == k {
				continue
			}
			dik := e.dist[i*n+k]
			for j := 0; j < n; j++ {
				if j == k || i == j {
					continue
				}
				if d := satAdd(dik, e.dist[k*n+j]); d < e.dist[i*n+j] {
					e.dist[i*n+j] = d
				}
			}
		}
	}
}

// runPhase executes channel-clock rounds until no shard has work at or
// before `until`, then aligns every shard's clock to exactly `until`.
//
// Each round the coordinator snapshots every shard's earliest possible
// send (the remote generator's next fire or the inbox head — both known
// ahead of running), relaxes those floors through the cheapest-latency
// matrix so reply chains are bounded too, and derives each shard's safe
// bound from its inbound channel clocks alone: a shard may advance while
// min over links of (sender's floor + link latency) exceeds its next
// event. Shards far (in latency) from the current bottleneck therefore
// run far ahead of it instead of marching in lockstep to the global
// minimum, which is what the old epoch barrier forced. Only shards with
// work at or before their bound are dispatched; the rest cost nothing.
func (e *Engine) runPhase(until sim.Time, run func(jobs []shardJob)) {
	n := len(e.Shards)
	for {
		// Channel-clock floors: es is what each shard's pending state can
		// send; floor folds in the earliest reply any future request chain
		// could force out of it.
		for i, sh := range e.Shards {
			e.es[i] = sh.earliestSend()
		}
		for i := 0; i < n; i++ {
			f := e.es[i]
			for k := 0; k < n; k++ {
				if k == i {
					continue
				}
				if c := satAdd(e.es[k], time.Duration(e.dist[k*n+i])); c < f {
					f = c
				}
			}
			e.floor[i] = f
		}

		jobs := e.jobs[:0]
		stalled := false
		for j, sh := range e.Shards {
			t, ok := sh.nextAt()
			if !ok || t > until {
				continue
			}
			bound := until
			for i := 0; i < n; i++ {
				if i == j {
					continue
				}
				// Strictly before the clock: an arrival exactly at the
				// channel clock (zero-latency link, zero transmission
				// time) must not be missed.
				if cc := satAdd(e.floor[i], e.Router.MinLatency(i, j)) - 1; cc < bound {
					bound = cc
				}
			}
			if t <= bound {
				jobs = append(jobs, shardJob{sh, bound})
			} else {
				stalled = true
			}
		}

		if len(jobs) == 0 {
			if !stalled {
				break
			}
			// Zero-lookahead stall: some link offers no window at all.
			// The globally earliest event is still safe to run — nothing
			// can arrive strictly before it — so serialize that one shard
			// (lowest shard id on ties) exactly one event time forward.
			var best *Shard
			var bt sim.Time
			for _, sh := range e.Shards {
				if t, ok := sh.nextAt(); ok && t <= until && (best == nil || t < bt) {
					best, bt = sh, t
				}
			}
			jobs = append(jobs, shardJob{best, bt})
			e.exec.Rescues++
		}

		for _, j := range jobs {
			e.advance.Add(float64(j.end - j.sh.ranTo))
			j.sh.ranTo = j.end
		}
		run(jobs)
		e.exchange()
	}
	for _, sh := range e.Shards {
		sh.C.Sim.RunUntil(until)
	}
	e.now = until
}

// exchange routes every outbox emitted during the round and delivers the
// messages to their destination inboxes. Iteration is in shard order and
// per-shard emission order, and destinations re-sort by (Arrive, From,
// Seq), so the exchange is identical regardless of which goroutines ran
// the round. Links whose channel clock advanced without carrying a
// payload message are counted as null advances — the protocol's null
// messages.
func (e *Engine) exchange() {
	e.exec.Rounds++
	n := len(e.Shards)
	for i := range e.sentLink {
		e.sentLink[i] = false
	}
	for _, sh := range e.Shards {
		for _, m := range sh.takeOutbox() {
			if m.To < 0 || m.To >= n {
				panic(fmt.Sprintf("scale: message to unknown shard %d", m.To))
			}
			e.Router.Route(m)
			e.exec.Routed++
			e.exec.RoutedBytes += m.Payload
			e.sentLink[m.From*n+m.To] = true
			e.byDest[m.To] = append(e.byDest[m.To], m)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			cc := satAdd(e.floor[i], e.Router.MinLatency(i, j))
			if cc > e.prevCC[i*n+j] {
				e.prevCC[i*n+j] = cc
				if !e.sentLink[i*n+j] {
					e.exec.NullAdvances++
				}
			}
		}
	}
	for i, msgs := range e.byDest {
		e.Shards[i].enqueue(msgs)
		e.byDest[i] = e.byDest[i][:0]
	}
}

// registerMetrics builds the engine-wide registry: per-shard component
// stacks under shard="N", per-shard remote-traffic counters, and the
// router/executor families. With LeanMetrics the per-client families are
// skipped — a million clients would register tens of millions of metric
// instances nobody scrapes at that scale — while everything aggregated
// (servers, networks, simulators, scale families) still registers.
func (e *Engine) registerMetrics() {
	for i, sh := range e.Shards {
		sh := sh
		scoped := e.Reg.Scoped(metrics.L("shard", strconv.Itoa(i)))
		clients := sh.C.Clients
		if e.Cfg.LeanMetrics {
			clients = nil
		}
		cluster.RegisterComponents(scoped, sh.C.Sim, clients, sh.C.Servers, sh.C.Net, sh.C.Injector)

		rctr := func(name, unit, help string, fn func() int64) {
			scoped.Int(metrics.Desc{Name: name, Unit: unit, Help: help, Kind: metrics.Counter}, nil, fn)
		}
		rctr("spritefs_scale_remote_ops_issued_total", "ops",
			"Cross-segment operations this shard's clients issued.",
			func() int64 { return sh.remote.OpsIssued })
		rctr("spritefs_scale_remote_ops_served_total", "ops",
			"Cross-segment operations this shard's servers answered.",
			func() int64 { return sh.remote.OpsServed })
		rctr("spritefs_scale_remote_replies_total", "ops",
			"Remote-operation completions received back at this shard.",
			func() int64 { return sh.remote.Replies })
		rctr("spritefs_scale_remote_read_bytes_total", "bytes",
			"Logical bytes read from remote shards by this shard's clients.",
			func() int64 { return sh.remote.BytesIn })
		rctr("spritefs_scale_remote_write_bytes_total", "bytes",
			"Logical bytes written to remote shards by this shard's clients.",
			func() int64 { return sh.remote.BytesOut })
		scoped.HistSeconds(metrics.Desc{Name: "spritefs_scale_remote_latency_seconds",
			Help: "End-to-end remote operation latency (request issue to reply arrival)."},
			nil, func() stats.Welford { return sh.remote.Latency })
		if e.topo.Sites > 1 {
			rctr("spritefs_scale_cross_site_ops_total", "ops",
				"Cross-site operations this shard's clients issued (requests that traverse the WAN tier).",
				func() int64 { return sh.remote.CrossSiteOps })
			scoped.HistSeconds(metrics.Desc{Name: "spritefs_scale_wan_latency_seconds",
				Help: "End-to-end latency of remote operations whose replies crossed the WAN tier."},
				nil, func() stats.Welford { return sh.remote.WANLatency })
		}
	}

	ctr := func(name, unit, help string, fn func() int64) {
		e.Reg.Int(metrics.Desc{Name: name, Unit: unit, Help: help, Kind: metrics.Counter}, nil, fn)
	}
	ctr("spritefs_scale_router_msgs_total", "msgs",
		"Messages carried by the inter-segment router.",
		func() int64 { return e.Router.Msgs() })
	ctr("spritefs_scale_router_bytes_total", "bytes",
		"Payload bytes carried by the inter-segment router.",
		func() int64 { return e.Router.Bytes() })
	e.Reg.Seconds(metrics.Desc{Name: "spritefs_scale_router_busy_seconds",
		Help: "Cumulative backbone transmission time; against elapsed virtual time it gives backbone utilization.",
		Kind: metrics.Counter},
		nil, func() time.Duration { return e.Router.Busy() })
	e.Reg.Int(metrics.Desc{Name: "spritefs_scale_sites", Unit: "sites",
		Help: "Sites in the hierarchical topology (1 = flat single-site).",
		Kind: metrics.Gauge},
		nil, func() int64 { return int64(e.topo.Sites) })
	for _, tier := range []struct {
		label string
		wan   bool
	}{{"site", false}, {"wan", true}} {
		tier := tier
		lbl := metrics.Labels{metrics.L("tier", tier.label)}
		e.Reg.Int(metrics.Desc{Name: "spritefs_scale_tier_msgs_total", Unit: "msgs",
			Help: "Messages carried per topology tier (site = intra-site backbone, wan = inter-site trunk).",
			Kind: metrics.Counter},
			lbl, func() int64 { m, _, _ := e.Router.TierTraffic(tier.wan); return m })
		e.Reg.Int(metrics.Desc{Name: "spritefs_scale_tier_bytes_total", Unit: "bytes",
			Help: "Payload bytes carried per topology tier.",
			Kind: metrics.Counter},
			lbl, func() int64 { _, b, _ := e.Router.TierTraffic(tier.wan); return b })
		e.Reg.Seconds(metrics.Desc{Name: "spritefs_scale_tier_busy_seconds",
			Help: "Cumulative transmission time per topology tier; against elapsed virtual time it gives tier utilization.",
			Kind: metrics.Counter},
			lbl, func() time.Duration { _, _, d := e.Router.TierTraffic(tier.wan); return d })
	}
	ctr("spritefs_scale_rounds_total", "rounds",
		"Channel-clock synchronization rounds the executor ran.",
		func() int64 { return e.exec.Rounds })
	ctr("spritefs_scale_exchange_msgs_total", "msgs",
		"Cross-shard messages exchanged at round boundaries.",
		func() int64 { return e.exec.Routed })
	ctr("spritefs_scale_exchange_bytes_total", "bytes",
		"Backbone payload bytes exchanged at round boundaries.",
		func() int64 { return e.exec.RoutedBytes })
	ctr("spritefs_scale_null_advances_total", "advances",
		"Per-link channel-clock advances that carried no payload message (null messages).",
		func() int64 { return e.exec.NullAdvances })
	ctr("spritefs_scale_rescues_total", "rounds",
		"Stall-breaker rounds serializing the earliest shard past a zero-lookahead link.",
		func() int64 { return e.exec.Rescues })
	ctr("spritefs_scale_msg_allocs_total", "msgs",
		"Cross-shard message allocations that missed the per-shard free lists.",
		func() int64 {
			var total int64
			for _, sh := range e.Shards {
				total += sh.msgAllocs
			}
			return total
		})
	ctr("spritefs_scale_undelivered_msgs_total", "msgs",
		"Messages still in flight when the drain window closed.",
		func() int64 { return e.exec.Undelivered })
	e.Reg.Seconds(metrics.Desc{Name: "spritefs_scale_min_link_lookahead_seconds",
		Help: "Smallest directed-link latency in the topology — the tightest lookahead the channel clocks work with.",
		Kind: metrics.Gauge},
		nil, func() time.Duration { return e.minLook })
	e.Reg.HistSeconds(metrics.Desc{Name: "spritefs_scale_advance_seconds",
		Help: "Virtual time a shard advanced per round it ran — how much lookahead the per-link channel clocks bought."},
		nil, func() stats.Welford { return e.advance })
}
