// Package spritefs reproduces "Measurements of a Distributed File System"
// (Baker, Hartman, Kupfer, Shirriff, Ousterhout; SOSP 1991) as a runnable
// system: a deterministic discrete-event simulation of the measured Sprite
// cluster — forty diskless workstations with dynamic block caches and
// virtual memory, four file servers, a shared Ethernet, process migration,
// and a synthetic user community standing in for the 1991 Berkeley
// workload — plus the kernel tracing, counter collection, analysis and
// consistency-simulation machinery that regenerates every table and figure
// in the paper's evaluation.
//
// Layout:
//
//	internal/core         the study façade: RunTrace / RunCounterStudy / reports
//	internal/cluster      the assembled system (clients+servers+net+workload)
//	internal/client       the Sprite client kernel (FS call layer)
//	internal/fscache      the 4 KB block cache with 30 s delayed writes
//	internal/vm           virtual memory and FS/VM page trading
//	internal/server       file servers and consistency state
//	internal/netsim       the 10 Mbit/s Ethernet + RPC model
//	internal/migrate      pmake-style process migration
//	internal/workload     the parameterized user community
//	internal/trace        trace format, codecs, k-way merge
//	internal/analysis     the Section 4 table/figure analyzers
//	internal/consistency  the Section 5.5-5.6 simulators
//	internal/sim          discrete-event engine + deterministic RNG
//	internal/stats        histograms, CDFs, Welford, interval stats
//
// The benchmarks in bench_test.go regenerate each table and figure at
// reduced scale; cmd/experiments runs the full-scale campaign behind
// EXPERIMENTS.md.
package spritefs
