// Command tracegen generates the synthetic 24-hour traces: it runs the
// full cluster simulation for one of the eight trace configurations and
// writes one binary trace file per file server, exactly as the paper's
// instrumented kernels logged to per-server trace files.
//
// Usage:
//
//	tracegen -trace 1 -hours 24 -out /tmp/traces
//
// produces /tmp/traces/trace1.srv0 ... trace1.srv3, which cmd/traceanalyze
// merges and analyzes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/trace"
	"spritefs/internal/workload"
)

func main() {
	var (
		traceNum = flag.Int("trace", 1, "trace configuration 1-8")
		hours    = flag.Float64("hours", 24, "simulated hours")
		out      = flag.String("out", ".", "output directory")
		servers  = flag.Int("servers", 4, "number of file servers")
	)
	flag.Parse()
	if err := run(*traceNum, *hours, *out, *servers); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(traceNum int, hours float64, out string, servers int) error {
	if traceNum < 1 || traceNum > 8 {
		return fmt.Errorf("trace number %d out of range 1-8", traceNum)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	p := workload.TraceParams(traceNum)
	cfg := cluster.DefaultConfig(p)
	cfg.NumServers = servers
	cfg.SamplePeriod = 0

	// One writer per server, fed through the trace sink.
	files := make([]*os.File, servers)
	writers := make([]*trace.Writer, servers)
	for i := range writers {
		path := filepath.Join(out, fmt.Sprintf("trace%d.srv%d", traceNum, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w, err := trace.NewWriter(f)
		if err != nil {
			return err
		}
		files[i], writers[i] = f, w
	}
	cfg.TraceSink = func(rec trace.Record) {
		idx := int(rec.Server)
		if idx < 0 || idx >= servers {
			idx = 0
		}
		if err := writers[idx].Write(&rec); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen: write:", err)
			os.Exit(1)
		}
	}

	c := cluster.New(cfg)
	start := time.Now()
	c.Run(time.Duration(hours * float64(time.Hour)))

	var total int64
	for i, w := range writers {
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Printf("server %d: %d records -> %s\n", i, w.Count(), files[i].Name())
		total += w.Count()
	}
	fmt.Printf("trace %d: %.0f simulated hours, %d records, %.1fs wall time\n",
		traceNum, hours, total, time.Since(start).Seconds())
	return nil
}
