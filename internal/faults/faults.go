package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"spritefs/internal/client"
	"spritefs/internal/netsim"
	"spritefs/internal/server"
	"spritefs/internal/sim"
)

// System is the slice of a simulated cluster the injector needs. Both the
// live cluster and the trace-replay engine satisfy it. Workstations is
// consulted at event-fire time, not at attach time, because replay
// materializes clients lazily as trace records mention them; it must
// return a deterministic order.
type System interface {
	Clock() *sim.Sim
	Wire() *netsim.Network
	FileServers() []*server.Server
	Workstations() []*client.Client
}

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// ServerCrash crashes file server Target at At: volatile state (open
	// tables, sharing decisions, un-synced cache blocks) is discarded, the
	// server restarts under a new epoch, and RPCs to it stall for Duration
	// (the outage window). Clients recover per the Sprite protocol.
	ServerCrash Kind = iota
	// ClientCrash crashes the workstation whose id is Target: its cache,
	// handles and bookkeeping vanish and every server disconnects it.
	ClientCrash
	// Partition cuts workstation Target off: its RPCs (to any server)
	// stall until the partition heals Duration later.
	Partition
	// Delay adds Extra latency to every RPC issued during [At, At+Duration).
	Delay
	// Drop loses every Every-th RPC in [At, At+Duration); each loss costs
	// one retransmit charged at the Extra retry timeout.
	Drop
)

var kindNames = [...]string{"server-crash", "client-crash", "partition", "delay", "drop"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one scheduled fault.
type Event struct {
	At       time.Duration
	Kind     Kind
	Target   int           // server index (ServerCrash) or workstation id
	Duration time.Duration // outage / partition / window length
	Extra    time.Duration // Delay: added latency; Drop: retry timeout
	Every    int           // Drop: lose every Every-th RPC
}

// String renders the event in the parseable schedule syntax.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	switch e.Kind {
	case ServerCrash, ClientCrash, Partition:
		fmt.Fprintf(&b, ":%d", e.Target)
	}
	fmt.Fprintf(&b, "@%s", e.At)
	switch e.Kind {
	case ClientCrash:
	case Drop:
		fmt.Fprintf(&b, "/%s/%s/%d", e.Duration, e.Extra, e.Every)
	case Delay:
		fmt.Fprintf(&b, "/%s/%s", e.Duration, e.Extra)
	default:
		fmt.Fprintf(&b, "/%s", e.Duration)
	}
	return b.String()
}

// Schedule is a fault schedule: events ordered by firing time.
type Schedule struct {
	Events []Event
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Events) == 0 }

// String renders the schedule in the syntax Parse accepts.
func (s Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// sortEvents orders by firing time, stably, so schedules built from
// unordered sources inject identically.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
}

// Parse reads a comma-separated fault schedule, e.g.
//
//	server-crash:0@10m/30s,partition:3@5m/20s,client-crash:2@15m,
//	delay@0s/1h/20ms,drop@0s/1h/500ms/2
//
// Grammar per event: kind[:target]@at[/duration[/extra[/every]]], with all
// times in Go duration syntax. server-crash, client-crash and partition
// require a target; delay and drop apply to all traffic.
func Parse(text string) (Schedule, error) {
	var s Schedule
	for _, raw := range strings.Split(text, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		ev, err := parseEvent(raw)
		if err != nil {
			return Schedule{}, fmt.Errorf("faults: %q: %w", raw, err)
		}
		s.Events = append(s.Events, ev)
	}
	sortEvents(s.Events)
	return s, nil
}

func parseEvent(raw string) (Event, error) {
	head, tail, ok := strings.Cut(raw, "@")
	if !ok {
		return Event{}, fmt.Errorf("missing @time")
	}
	kindStr, targetStr, hasTarget := strings.Cut(head, ":")
	var ev Event
	kind := -1
	for i, n := range kindNames {
		if kindStr == n {
			kind = i
		}
	}
	if kind < 0 {
		return Event{}, fmt.Errorf("unknown fault kind %q", kindStr)
	}
	ev.Kind = Kind(kind)

	needsTarget := ev.Kind == ServerCrash || ev.Kind == ClientCrash || ev.Kind == Partition
	if needsTarget != hasTarget {
		if needsTarget {
			return Event{}, fmt.Errorf("%s requires a :target", ev.Kind)
		}
		return Event{}, fmt.Errorf("%s takes no :target", ev.Kind)
	}
	if hasTarget {
		t, err := strconv.Atoi(targetStr)
		if err != nil || t < 0 {
			return Event{}, fmt.Errorf("bad target %q", targetStr)
		}
		ev.Target = t
	}

	parts := strings.Split(tail, "/")
	want := map[Kind]int{ServerCrash: 2, ClientCrash: 1, Partition: 2, Delay: 3, Drop: 4}[ev.Kind]
	if len(parts) != want {
		return Event{}, fmt.Errorf("%s wants %d time field(s) after @, got %d", ev.Kind, want, len(parts))
	}
	durs := make([]time.Duration, 0, 3)
	for i, p := range parts {
		if ev.Kind == Drop && i == 3 {
			break // last field is the integer drop period
		}
		d, err := time.ParseDuration(p)
		if err != nil || d < 0 {
			return Event{}, fmt.Errorf("bad duration %q", p)
		}
		durs = append(durs, d)
	}
	ev.At = durs[0]
	if len(durs) > 1 {
		ev.Duration = durs[1]
	}
	if len(durs) > 2 {
		ev.Extra = durs[2]
	}
	if ev.Kind == Drop {
		n, err := strconv.Atoi(parts[3])
		if err != nil || n < 1 {
			return Event{}, fmt.Errorf("bad drop period %q", parts[3])
		}
		ev.Every = n
	}
	return ev, nil
}

// Random generates a schedule of n events uniformly spread over
// (0, horizon), drawn deterministically from rng: crash, partition and
// perturbation mixes weighted toward the cases the paper's reliability
// discussion cares about (server crashes and their recovery). servers and
// clients bound the targets.
func Random(rng *sim.Rand, horizon time.Duration, n, servers, clients int) Schedule {
	if servers < 1 || clients < 1 || n < 1 || horizon <= time.Second {
		return Schedule{}
	}
	var s Schedule
	for i := 0; i < n; i++ {
		var ev Event
		ev.At = time.Second + time.Duration(rng.Int63n(int64(horizon-time.Second)))
		switch rng.Pick([]float64{0.35, 0.20, 0.25, 0.10, 0.10}) {
		case 0:
			ev.Kind = ServerCrash
			ev.Target = rng.Intn(servers)
			ev.Duration = 5*time.Second + time.Duration(rng.Int63n(int64(55*time.Second)))
		case 1:
			ev.Kind = ClientCrash
			ev.Target = rng.Intn(clients)
		case 2:
			ev.Kind = Partition
			ev.Target = rng.Intn(clients)
			ev.Duration = 5*time.Second + time.Duration(rng.Int63n(int64(40*time.Second)))
		case 3:
			ev.Kind = Delay
			ev.Duration = time.Minute + time.Duration(rng.Int63n(int64(4*time.Minute)))
			ev.Extra = 5*time.Millisecond + time.Duration(rng.Int63n(int64(45*time.Millisecond)))
		case 4:
			ev.Kind = Drop
			ev.Duration = time.Minute + time.Duration(rng.Int63n(int64(4*time.Minute)))
			ev.Extra = 200*time.Millisecond + time.Duration(rng.Int63n(int64(600*time.Millisecond)))
			ev.Every = 2 + rng.Intn(4)
		}
		s.Events = append(s.Events, ev)
	}
	sortEvents(s.Events)
	return s
}
