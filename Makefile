# Convenience targets for the spritefs reproduction.

GO ?= go

.PHONY: all check build vet pkgdoc metricscheck docs test race faults faultsmoke bench experiments experiments-diff section4 section5 clean

all: check

# The gate every change must pass: compile, static checks, package-doc
# and metrics-doc drift gates, tests, the race detector over the full
# module, and the fault-injection suite (twice under race, plus a
# randomized-schedule smoke with a fixed seed).
check: build vet pkgdoc metricscheck test race faults faultsmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	@if $(GO) vet -vettool=$$(command -v shadow) ./internal/faults/... 2>/dev/null; then \
		echo "shadow: ok"; \
	else \
		echo "shadow: tool not installed, skipping"; \
	fi

# Every package must carry a package comment (go doc has something to
# say about every import path in the module).
pkgdoc:
	@missing=$$($(GO) list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...); \
	if [ -n "$$missing" ]; then \
		echo "packages missing a package comment:"; \
		echo "$$missing"; \
		exit 1; \
	fi; \
	echo "pkgdoc: every package documented"

# docs/METRICS.md is generated from the metric registry; fail if it has
# drifted from the code (regenerate with `go run ./cmd/metricsdoc`).
metricscheck:
	$(GO) run ./cmd/metricsdoc -check

# Regenerate the generated documentation and vet the hand-written kind:
# rewrite docs/METRICS.md from the registry, then require every package
# to carry a package comment.
docs: pkgdoc
	$(GO) run ./cmd/metricsdoc

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The crash-recovery subsystem, twice under the race detector: the fault
# hook and recovery sweeps are exactly the code where a latent data race
# would corrupt the determinism guarantees.
faults:
	$(GO) test -race -count=2 ./internal/faults/...

# Quick randomized-schedule audit with a pinned seed (15 schedules in
# -short mode; the full 100-schedule run happens under `make test`).
faultsmoke:
	$(GO) test -short -run TestFaultSchedules ./internal/faults/check -faultseed 7

# One iteration of every table/figure benchmark (reduced scale).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Full-scale regeneration of the paper's evaluation, then a diff against
# the committed results: determinism means any difference is a real
# behaviour change, not noise.
experiments: section4 section5 experiments-diff

experiments-diff:
	@git --no-pager diff --exit-code results_section4.txt results_section5.txt \
		&& echo "experiments: results match the committed files" \
		|| { echo "experiments: results drifted from the committed files (see diff above)"; exit 1; }

section4:
	$(GO) run ./cmd/experiments -exp section4 -hours 24 | tee results_section4.txt

section5:
	$(GO) run ./cmd/experiments -exp section5 -days 2 | tee results_section5.txt

clean:
	rm -f results_section4.txt results_section5.txt test_output.txt bench_output.txt
