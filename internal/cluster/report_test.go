package cluster

import (
	"testing"
	"time"
)

// mkSamples builds a cluster shell with hand-crafted sampler observations
// so the Table 4 aggregation can be verified exactly.
func mkSamples(samples []Sample) *Cluster {
	return &Cluster{samples: samples}
}

func TestIntervalChangesAggregation(t *testing.T) {
	const mb = 1 << 20
	samples := []Sample{
		// Window 0 is always screened out (cold start).
		{Time: 1 * time.Minute, Client: 0, CacheSize: 1 * mb, Active: true},
		// Window 1 (15-30 min): sizes 2,4,6 MB -> mean 4 MB, change 4 MB.
		{Time: 16 * time.Minute, Client: 0, CacheSize: 2 * mb, Active: true},
		{Time: 20 * time.Minute, Client: 0, CacheSize: 4 * mb, Active: false},
		{Time: 25 * time.Minute, Client: 0, CacheSize: 6 * mb, Active: false},
		// Window 2: inactive throughout -> screened out.
		{Time: 31 * time.Minute, Client: 0, CacheSize: 9 * mb, Active: false},
		// Client 1, window 1: constant size, active -> change 0.
		{Time: 17 * time.Minute, Client: 1, CacheSize: 3 * mb, Active: true},
		{Time: 28 * time.Minute, Client: 1, CacheSize: 3 * mb, Active: true},
	}
	c := mkSamples(samples)
	sizes, changes := c.Metrics().intervalChanges(15 * time.Minute)
	if len(sizes) != 2 || len(changes) != 2 {
		t.Fatalf("got %d sizes, %d changes, want 2 each", len(sizes), len(changes))
	}
	// Order over map iteration is unspecified; check as a set.
	want := map[float64]float64{4 * mb: 4 * mb, 3 * mb: 0}
	for i, s := range sizes {
		ch, ok := want[s]
		if !ok {
			t.Errorf("unexpected mean size %g", s)
			continue
		}
		if changes[i] != ch {
			t.Errorf("size %g: change %g, want %g", s, changes[i], ch)
		}
	}
}

func TestTable4ReportFromSyntheticSamples(t *testing.T) {
	const mb = 1 << 20
	var samples []Sample
	// Two clients, steady 8 MB caches, active, spanning windows 1-4.
	for cl := int32(0); cl < 2; cl++ {
		for m := 16; m <= 70; m += 5 {
			samples = append(samples, Sample{
				Time: time.Duration(m) * time.Minute, Client: cl,
				CacheSize: 8 * mb, Active: true,
			})
		}
	}
	c := mkSamples(samples)
	t4 := c.Table4Report()
	if t4.AvgSizeKB != 8*1024 {
		t.Errorf("avg = %g KB", t4.AvgSizeKB)
	}
	if t4.SDSizeKB != 0 || t4.Change15AvgKB != 0 {
		t.Errorf("steady caches show variation: sd=%g change=%g", t4.SDSizeKB, t4.Change15AvgKB)
	}
	if t4.ActiveIntervals15 == 0 {
		t.Error("no active intervals")
	}
}

func TestTable5PercentagesSumToHundred(t *testing.T) {
	c := ablationRun(t, func(cfg *Config) {})
	t5 := c.Table5Report()
	sum := t5.FileReadPct + t5.FileWritePct + t5.PagingCacheableReadPct +
		t5.PagingBackingReadPct + t5.PagingBackingWritePct +
		t5.SharedReadPct + t5.SharedWritePct + t5.DirReadPct
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("sum = %g", sum)
	}
	if t5.UncacheablePct > 100 || t5.PagingPct > 100 {
		t.Errorf("derived pcts out of range: %+v", t5)
	}
}

func TestTable9PercentagesAndAges(t *testing.T) {
	c := ablationRun(t, func(cfg *Config) {})
	t9 := c.Table9Report()
	var sum float64
	for r, p := range t9.Pct {
		if p < 0 || p > 100 {
			t.Errorf("reason %d pct = %g", r, p)
		}
		sum += p
		if t9.AgeSec[r] < 0 {
			t.Errorf("reason %d negative age", r)
		}
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("reasons sum to %g", sum)
	}
	// Delayed writes must have ages at or past the 30-second policy window
	// minus the cleaning granularity.
	if t9.Pct[0] > 0 && t9.AgeSec[0] < 25 {
		t.Errorf("delay cleanings at %g s, policy is 30 s", t9.AgeSec[0])
	}
}

func TestEmptyClusterReportsAreZero(t *testing.T) {
	c := mkSamples(nil)
	t4 := c.Table4Report()
	if t4.AvgSizeKB != 0 || t4.ActiveIntervals15 != 0 {
		t.Errorf("empty samples produced %+v", t4)
	}
}
