package analysis

import (
	"time"

	"spritefs/internal/stats"
	"spritefs/internal/trace"
)

// Lifetimes reproduces Figure 4: the distribution of file lifetimes,
// measured when files are deleted or truncated to zero length. Lifetimes
// are estimated from the ages of the oldest and newest bytes (delete
// records carry both timestamps): by files, the lifetime is the average of
// the two ages; by bytes, the file is assumed written sequentially so each
// byte's age is interpolated by its offset.
type Lifetimes struct {
	// ByFiles weights each deleted file once; ByBytes weights by the
	// bytes deleted.
	ByFiles *stats.Hist
	ByBytes *stats.Hist

	// Live30s / Deleted count files whose lifetime fell under Sprite's
	// 30-second writeback delay — the headline "65% to 80% live less than
	// 30 seconds" statistic.
	Deleted int64
	Live30s int64
	// Bytes30s / BytesDeleted: the same by bytes ("only about 4 to 27% of
	// all new bytes are deleted or overwritten within 30 seconds").
	BytesDeleted int64
	Bytes30s     int64
}

// byteSegments is the interpolation resolution for the byte-weighted
// distribution.
const byteSegments = 10

// NewLifetimes returns a Figure 4 analyzer.
func NewLifetimes() *Lifetimes {
	return &Lifetimes{
		ByFiles: stats.NewHist(0.1, 1e7, 8),
		ByBytes: stats.NewHist(0.1, 1e7, 8),
	}
}

// Observe implements Sink.
func (l *Lifetimes) Observe(r *trace.Record) {
	if r.IsDirectory() {
		return
	}
	if r.Kind != trace.KindDelete && r.Kind != trace.KindTruncate {
		return
	}
	// Delete/truncate records encode the oldest byte's creation time in
	// Offset and the newest byte's write time in Length (see client).
	oldest := time.Duration(r.Offset)
	newest := time.Duration(r.Length)
	if newest < oldest {
		newest = oldest
	}
	if newest > r.Time {
		newest = r.Time
	}
	if oldest > r.Time {
		oldest = r.Time
	}
	ageOld := (r.Time - oldest).Seconds()
	ageNew := (r.Time - newest).Seconds()

	l.Deleted++
	lifeFile := (ageOld + ageNew) / 2
	l.ByFiles.Add1(lifeFile)
	if lifeFile < 30 {
		l.Live30s++
	}

	size := r.Size
	if size <= 0 {
		return
	}
	l.BytesDeleted += size
	// Bytes age linearly from ageOld (offset 0) to ageNew (last byte).
	seg := float64(size) / byteSegments
	for i := 0; i < byteSegments; i++ {
		frac := (float64(i) + 0.5) / byteSegments
		age := ageOld + (ageNew-ageOld)*frac
		l.ByBytes.Add(age, seg)
		if age < 30 {
			l.Bytes30s += int64(seg)
		}
	}
}

// Finish implements Sink.
func (l *Lifetimes) Finish() {}

// PctFilesUnder30s returns the fraction of deleted files that lived less
// than the 30-second writeback delay.
func (l *Lifetimes) PctFilesUnder30s() float64 { return stats.Ratio(l.Live30s, l.Deleted) }

// PctBytesUnder30s returns the fraction of deleted bytes younger than 30
// seconds at deletion.
func (l *Lifetimes) PctBytesUnder30s() float64 { return stats.Ratio(l.Bytes30s, l.BytesDeleted) }
