package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Wire format: every frame is a uint32 big-endian payload length followed
// by the payload. Request payloads are fixed-size; response payloads carry
// a trailing error string. One request is in flight per connection at a
// time (each agent owns a connection), so no request ids are needed.
const (
	reqPayloadLen  = 1 + 1 + 4 + 8 + 8 + 8 + 8 + 8 // verb,write,agent,file,handle,offset,length,deadline
	respFixedLen   = 1 + 8 + 8 + 8 + 8             // retryable,handle,n,size,simlat
	maxRespPayload = respFixedLen + 4096           // bounds the error string
)

func encodeRequest(buf []byte, req *Request, deadline time.Duration) []byte {
	buf = binary.BigEndian.AppendUint32(buf, reqPayloadLen)
	buf = append(buf, byte(req.Verb), b2u8(req.Write))
	buf = binary.BigEndian.AppendUint32(buf, uint32(req.Agent))
	buf = binary.BigEndian.AppendUint64(buf, req.File)
	buf = binary.BigEndian.AppendUint64(buf, req.Handle)
	buf = binary.BigEndian.AppendUint64(buf, uint64(req.Offset))
	buf = binary.BigEndian.AppendUint64(buf, uint64(req.Length))
	buf = binary.BigEndian.AppendUint64(buf, uint64(deadline))
	return buf
}

func decodeRequest(p []byte) (req Request, deadline time.Duration, err error) {
	if len(p) != reqPayloadLen {
		return req, 0, fmt.Errorf("live: bad request frame length %d", len(p))
	}
	req.Verb = Verb(p[0])
	if req.Verb >= NumVerbs {
		return req, 0, fmt.Errorf("live: unknown verb %d", p[0])
	}
	req.Write = p[1] != 0
	req.Agent = int32(binary.BigEndian.Uint32(p[2:]))
	req.File = binary.BigEndian.Uint64(p[6:])
	req.Handle = binary.BigEndian.Uint64(p[14:])
	req.Offset = int64(binary.BigEndian.Uint64(p[22:]))
	req.Length = int64(binary.BigEndian.Uint64(p[30:]))
	deadline = time.Duration(binary.BigEndian.Uint64(p[38:]))
	return req, deadline, nil
}

func encodeResponse(buf []byte, resp *Response) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(respFixedLen+len(resp.Err)))
	buf = append(buf, b2u8(resp.Retryable))
	buf = binary.BigEndian.AppendUint64(buf, resp.Handle)
	buf = binary.BigEndian.AppendUint64(buf, uint64(resp.N))
	buf = binary.BigEndian.AppendUint64(buf, uint64(resp.Size))
	buf = binary.BigEndian.AppendUint64(buf, uint64(resp.SimLat))
	buf = append(buf, resp.Err...)
	return buf
}

func decodeResponse(p []byte) (resp Response, err error) {
	if len(p) < respFixedLen {
		return resp, fmt.Errorf("live: bad response frame length %d", len(p))
	}
	resp.Retryable = p[0] != 0
	resp.Handle = binary.BigEndian.Uint64(p[1:])
	resp.N = int64(binary.BigEndian.Uint64(p[9:]))
	resp.Size = int64(binary.BigEndian.Uint64(p[17:]))
	resp.SimLat = time.Duration(binary.BigEndian.Uint64(p[25:]))
	resp.Err = string(p[respFixedLen:])
	return resp, nil
}

func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// readFrame reads one length-prefixed payload into a fresh slice.
func readFrame(r io.Reader, maxLen uint32) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxLen {
		return nil, fmt.Errorf("live: frame length %d exceeds limit %d", n, maxLen)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, err
	}
	return p, nil
}

// TCPServer accepts connections and serves the wire protocol by delegating
// each decoded request to an inner Transport (normally the in-process
// *Dispatcher).
type TCPServer struct {
	inner Transport
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServeTCP starts a TCP frontend on addr (e.g. "127.0.0.1:0") that
// forwards requests to inner. It returns once the listener is bound; use
// Addr for the chosen address.
func ServeTCP(addr string, inner Transport) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{inner: inner, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's bound address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every connection, and waits for the
// handler goroutines to drain.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var out []byte
	for {
		p, err := readFrame(conn, reqPayloadLen)
		if err != nil {
			return
		}
		req, deadline, err := decodeRequest(p)
		if err != nil {
			return // protocol error: drop the connection
		}
		resp, err := s.inner.Do(req, deadline)
		if err != nil {
			// Deadline expiry or shutdown surfaces as an error reply; the
			// client applies its own (slightly earlier) deadline too.
			resp = Response{Err: err.Error(), Retryable: errors.Is(err, ErrStopped)}
		}
		out = encodeResponse(out[:0], &resp)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

// TCPClient is the agent-side Transport over one TCP connection. It is not
// safe for concurrent use — each agent owns its own client. A request that
// times out poisons the connection (the late reply would desynchronise the
// stream), so the client drops it and redials on the next call.
type TCPClient struct {
	addr string
	conn net.Conn
	buf  []byte
}

// DialTCP connects a client transport to a TCPServer address.
func DialTCP(addr string) (*TCPClient, error) {
	c := &TCPClient{addr: addr}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *TCPClient) redial() error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	return nil
}

// tcpGrace pads the client-side socket deadline past the request deadline
// so the server's own deadline reply normally wins the race.
const tcpGrace = 50 * time.Millisecond

// Do sends one request and waits for its reply.
func (c *TCPClient) Do(req Request, deadline time.Duration) (Response, error) {
	if c.conn == nil {
		if err := c.redial(); err != nil {
			return Response{}, err
		}
	}
	c.buf = encodeRequest(c.buf[:0], &req, deadline)
	c.conn.SetDeadline(time.Now().Add(deadline + tcpGrace))
	if _, err := c.conn.Write(c.buf); err != nil {
		c.drop()
		return Response{}, err
	}
	p, err := readFrame(c.conn, maxRespPayload)
	if err != nil {
		c.drop()
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return Response{}, ErrDeadline
		}
		return Response{}, err
	}
	resp, err := decodeResponse(p)
	if err != nil {
		c.drop()
		return Response{}, err
	}
	if resp.Err == ErrDeadline.Error() {
		return Response{}, ErrDeadline
	}
	return resp, nil
}

func (c *TCPClient) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Close releases the connection.
func (c *TCPClient) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

var _ Transport = (*TCPClient)(nil)
