package scale

import (
	"fmt"
	"time"

	"spritefs/internal/sim"
)

// MsgKind tags a cross-shard message.
type MsgKind uint8

// Message kinds: a remote read request, a remote write request, and the
// reply completing either.
const (
	RemoteRead MsgKind = iota
	RemoteWrite
	RemoteReply
)

var msgKindNames = [...]string{"remote-read", "remote-write", "remote-reply"}

// String returns the kind name.
func (k MsgKind) String() string {
	if int(k) < len(msgKindNames) {
		return msgKindNames[k]
	}
	return fmt.Sprintf("msg(%d)", uint8(k))
}

// Message is one unit of cross-shard communication. Messages are created
// inside a shard's epoch, routed at the barrier, and delivered into the
// destination shard's simulator at Arrive. The (Arrive, From, Seq) triple
// totally orders deliveries, which is what makes the parallel executor's
// exchange deterministic.
type Message struct {
	Send   sim.Time // virtual time the source emitted it
	Arrive sim.Time // Send + router latency + payload transmission
	From   int      // source shard
	To     int      // destination shard
	Seq    uint64   // per-source sequence number (tie-break)

	Kind MsgKind
	// Op is the original operation kind a RemoteReply completes.
	Op MsgKind
	// Client is the originating client id within the source segment.
	Client int32
	// File is the placed file operated on (destination shard's id space).
	File uint64
	// Server is the destination server within the target shard.
	Server int16
	// Bytes is the logical operation size (bytes read or written).
	Bytes int64
	// Payload is what this particular message carries across the
	// backbone: requests carry control bytes (plus the data for writes),
	// replies carry the read data (or a control-sized ack).
	Payload int64
	// Issued is when the original request left its client, preserved in
	// the reply so the source shard can record end-to-end latency.
	Issued sim.Time
}

// ctrlBytes is the backbone cost of a request/ack frame without data.
const ctrlBytes = 128

// LinkStats accounts one directed inter-segment link.
type LinkStats struct {
	Msgs  int64
	Bytes int64
}

// Router is the inter-segment backbone: it prices every cross-shard
// message and accounts per-link traffic. Routing happens only at epoch
// barriers on the coordinator goroutine, so Router needs no locking.
type Router struct {
	cfg   RouterConfig
	links [][]LinkStats // [from][to]

	msgs  int64
	bytes int64
	busy  time.Duration
}

// NewRouter returns a router joining n segments.
func NewRouter(cfg RouterConfig, n int) *Router {
	links := make([][]LinkStats, n)
	for i := range links {
		links[i] = make([]LinkStats, n)
	}
	return &Router{cfg: cfg, links: links}
}

// Lookahead is the executor's safe window: no message can arrive sooner
// than this after it is sent.
func (r *Router) Lookahead() time.Duration { return r.cfg.Latency }

// Route prices m, stamps its arrival time, and accounts the transfer.
func (r *Router) Route(m *Message) {
	if m.Payload < 0 {
		panic(fmt.Sprintf("scale: negative payload %d", m.Payload))
	}
	xmit := time.Duration(float64(m.Payload) / r.cfg.BandwidthBps * float64(time.Second))
	m.Arrive = m.Send + r.cfg.Latency + xmit
	r.links[m.From][m.To].Msgs++
	r.links[m.From][m.To].Bytes += m.Payload
	r.msgs++
	r.bytes += m.Payload
	r.busy += xmit
}

// Msgs returns the total messages routed.
func (r *Router) Msgs() int64 { return r.msgs }

// Bytes returns the total payload bytes routed.
func (r *Router) Bytes() int64 { return r.bytes }

// Busy returns cumulative backbone transmission time; against elapsed
// virtual time it gives backbone utilization.
func (r *Router) Busy() time.Duration { return r.busy }

// Link returns a copy of one directed link's accounting.
func (r *Router) Link(from, to int) LinkStats { return r.links[from][to] }
