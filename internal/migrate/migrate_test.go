package migrate

import (
	"testing"

	"spritefs/internal/sim"
)

func hosts(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

func TestNewPoolValidation(t *testing.T) {
	rng := sim.NewRand(1)
	for _, fn := range []func(){
		func() { NewPool(hosts(3), 0.5, nil) },
		func() { NewPool(hosts(3), -0.1, rng) },
		func() { NewPool(hosts(3), 1.1, rng) },
		func() { NewPool([]int32{1, 1}, 0.5, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSelectNeverPicksRequesterOrActiveHost(t *testing.T) {
	p := NewPool(hosts(4), 0.5, sim.NewRand(1))
	p.SetOwnerActive(1, true)
	p.SetOwnerActive(2, true)
	for i := 0; i < 100; i++ {
		h, ok := p.Select(0)
		if !ok {
			t.Fatal("no host found")
		}
		if h == 0 || h == 1 || h == 2 {
			t.Fatalf("selected %d (requester or active)", h)
		}
	}
}

func TestSelectNoIdleHosts(t *testing.T) {
	p := NewPool(hosts(2), 0.5, sim.NewRand(1))
	p.SetOwnerActive(1, true)
	if _, ok := p.Select(0); ok {
		t.Error("selected a host with none idle")
	}
}

func TestReuseBias(t *testing.T) {
	// With bias 1.0, once a host is picked it is always re-picked while
	// idle — the locality that boosts migrated processes' hit ratios.
	p := NewPool(hosts(10), 1.0, sim.NewRand(7))
	first, ok := p.Select(0)
	if !ok {
		t.Fatal("no pick")
	}
	for i := 0; i < 50; i++ {
		h, _ := p.Select(0)
		if h != first {
			t.Fatalf("bias 1.0 switched host: %d -> %d", first, h)
		}
	}
	if p.Stats().Reuses != 50 {
		t.Errorf("reuses = %d, want 50", p.Stats().Reuses)
	}
	// When the favourite goes busy, selection moves on.
	p.SetOwnerActive(first, true)
	h, ok := p.Select(0)
	if !ok || h == first {
		t.Errorf("picked busy favourite %d", h)
	}
}

func TestZeroBiasSpreadsLoad(t *testing.T) {
	p := NewPool(hosts(8), 0, sim.NewRand(3))
	seen := map[int32]bool{}
	for i := 0; i < 300; i++ {
		h, _ := p.Select(-1)
		seen[h] = true
	}
	if len(seen) != 8 {
		t.Errorf("zero bias used only %d hosts", len(seen))
	}
}

func TestOwnerReturnEvictsMigrants(t *testing.T) {
	p := NewPool(hosts(3), 0.5, sim.NewRand(1))
	p.AddMigrant(1, 100)
	p.AddMigrant(1, 101)
	p.AddMigrant(2, 102)

	evicted := p.SetOwnerActive(1, true)
	if len(evicted) != 2 || evicted[0] != 100 || evicted[1] != 101 {
		t.Errorf("evicted = %v", evicted)
	}
	if got := p.Stats().Evictions; got != 2 {
		t.Errorf("evictions = %d", got)
	}
	if got := p.Migrants(1); len(got) != 0 {
		t.Errorf("migrants after eviction = %v", got)
	}
	if got := p.Migrants(2); len(got) != 1 || got[0] != 102 {
		t.Errorf("unrelated host disturbed: %v", got)
	}
	// Owner going away again evicts nothing.
	if ev := p.SetOwnerActive(1, false); len(ev) != 0 {
		t.Errorf("owner departure evicted %v", ev)
	}
}

func TestMigrantLifecycle(t *testing.T) {
	p := NewPool(hosts(2), 0.5, sim.NewRand(1))
	p.AddMigrant(0, 7)
	if p.Stats().Migrations != 1 {
		t.Error("migration not counted")
	}
	p.RemoveMigrant(0, 7)
	if len(p.Migrants(0)) != 0 {
		t.Error("migrant not removed")
	}
	p.RemoveMigrant(99, 7) // unknown host tolerated
	if p.Migrants(99) != nil {
		t.Error("unknown host has migrants")
	}
}

func TestAddMigrantUnknownHostPanics(t *testing.T) {
	p := NewPool(hosts(2), 0.5, sim.NewRand(1))
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	p.AddMigrant(42, 1)
}

func TestIdleHosts(t *testing.T) {
	p := NewPool(hosts(5), 0.5, sim.NewRand(1))
	if p.IdleHosts() != 5 {
		t.Errorf("idle = %d", p.IdleHosts())
	}
	p.SetOwnerActive(0, true)
	p.SetOwnerActive(1, true)
	if p.IdleHosts() != 3 {
		t.Errorf("idle = %d", p.IdleHosts())
	}
}

func TestDeterministicSelection(t *testing.T) {
	run := func() []int32 {
		p := NewPool(hosts(6), 0.6, sim.NewRand(42))
		var picks []int32
		for i := 0; i < 40; i++ {
			h, _ := p.Select(0)
			picks = append(picks, h)
		}
		return picks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("selection not deterministic")
		}
	}
}
