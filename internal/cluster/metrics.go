package cluster

import (
	"spritefs/internal/client"
	"spritefs/internal/faults"
	"spritefs/internal/metrics"
	"spritefs/internal/netsim"
	"spritefs/internal/server"
)

// RegisterComponents registers a full component stack into one registry.
// Both assemblers (the live Cluster and the replay Engine) call this — or,
// for lazily materialized clients, its per-component pieces — so that any
// run exposes the identical metric families and Report projections read
// from one store regardless of who built the components.
func RegisterComponents(r *metrics.Registry, clients []*client.Client, servers []*server.Server, net *netsim.Network, inj *faults.Injector) {
	if net != nil {
		net.RegisterMetrics(r)
	}
	for _, s := range servers {
		s.RegisterMetrics(r)
	}
	for _, cl := range clients {
		cl.RegisterMetrics(r)
	}
	if inj != nil {
		inj.RegisterMetrics(r)
	}
}

// Registry returns the central metric registry behind this view. Views
// built by a Cluster or replay Engine carry the registry those assemblers
// populated at construction time; a hand-assembled Metrics (tests, ad-hoc
// tools) gets one built on first use from its component slices.
func (m *Metrics) Registry() *metrics.Registry {
	if m.Reg == nil {
		m.Reg = metrics.New()
		RegisterComponents(m.Reg, m.Clients, m.Servers, m.Net, nil)
	}
	return m.Reg
}
