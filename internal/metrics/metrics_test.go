package metrics

import (
	"strings"
	"testing"
	"time"

	"spritefs/internal/stats"
)

func testRegistry() (*Registry, *int64, *int64) {
	r := New()
	a, b := new(int64), new(int64)
	d := Desc{Name: "spritefs_test_ops_total", Unit: "ops", Help: "test ops", Kind: Counter}
	r.Int(d, Labels{L("client", "0")}, func() int64 { return *a })
	r.Int(d, Labels{L("client", "1")}, func() int64 { return *b })
	r.Seconds(Desc{Name: "spritefs_test_busy_seconds", Help: "busy", Kind: Gauge},
		nil, func() time.Duration { return 1500 * time.Millisecond })
	return r, a, b
}

func TestSumAndSelectors(t *testing.T) {
	r, a, b := testRegistry()
	*a, *b = 3, 4
	if got := r.SumInt("spritefs_test_ops_total"); got != 7 {
		t.Fatalf("SumInt = %d, want 7", got)
	}
	if got := r.SumInt("spritefs_test_ops_total", L("client", "1")); got != 4 {
		t.Fatalf("SumInt{client=1} = %d, want 4", got)
	}
	if got := r.SumInt("spritefs_test_ops_total", L("client", "9")); got != 0 {
		t.Fatalf("SumInt{client=9} = %d, want 0", got)
	}
	if got := r.SumInt("no_such_family"); got != 0 {
		t.Fatalf("SumInt(missing) = %d, want 0", got)
	}
}

func TestSnapshotDeterminismAndLiveness(t *testing.T) {
	r, a, b := testRegistry()
	*a, *b = 1, 2
	var s1, s2 strings.Builder
	if err := r.WritePrometheus(&s1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatalf("two snapshots of unchanged registry differ:\n%s\n---\n%s", s1.String(), s2.String())
	}
	if !strings.Contains(s1.String(), `spritefs_test_ops_total{client="0"} 1`) {
		t.Fatalf("missing instance line in:\n%s", s1.String())
	}
	*a = 10 // closures read live values: a later dump must see the change
	var s3 strings.Builder
	if err := r.WritePrometheus(&s3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s3.String(), `spritefs_test_ops_total{client="0"} 10`) {
		t.Fatalf("snapshot did not pick up counter change:\n%s", s3.String())
	}
}

func TestRegistrationOrderDoesNotChangeDump(t *testing.T) {
	build := func(reverse bool) string {
		r := New()
		d := Desc{Name: "x_total", Unit: "ops", Help: "h", Kind: Counter}
		ids := []string{"0", "1", "2"}
		if reverse {
			ids = []string{"2", "1", "0"}
		}
		for _, id := range ids {
			id := id
			r.Int(d, Labels{L("i", id)}, func() int64 { return int64(len(id)) })
		}
		var b strings.Builder
		if err := r.WriteTSV(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if build(false) != build(true) {
		t.Fatal("dump depends on registration order")
	}
}

func TestConflictingRedescriptionPanics(t *testing.T) {
	r := New()
	d := Desc{Name: "y_total", Unit: "ops", Help: "h", Kind: Counter}
	r.Int(d, Labels{L("i", "0")}, func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	d.Help = "different"
	r.Int(d, Labels{L("i", "1")}, func() int64 { return 0 })
}

func TestDuplicateInstancePanics(t *testing.T) {
	r := New()
	d := Desc{Name: "z_total", Unit: "ops", Help: "h", Kind: Counter}
	r.Int(d, Labels{L("i", "0")}, func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate instance did not panic")
		}
	}()
	r.Int(d, Labels{L("i", "0")}, func() int64 { return 0 })
}

func TestSummaryExpansion(t *testing.T) {
	r := New()
	var w stats.Welford
	w.Add(float64(2 * time.Second))
	w.Add(float64(4 * time.Second))
	r.HistSeconds(Desc{Name: "age_seconds", Help: "age"}, nil, func() stats.Welford { return w })
	pts := r.Snapshot()
	byName := map[string]Point{}
	for _, p := range pts {
		byName[p.Name] = p
	}
	if p := byName["age_seconds_count"]; !p.IsInt || p.Int != 2 {
		t.Fatalf("count = %+v", p)
	}
	if p := byName["age_seconds_mean"]; p.Float != 3 {
		t.Fatalf("mean = %v, want 3 (seconds)", p.Float)
	}
	if p := byName["age_seconds_max"]; p.Float != 4 {
		t.Fatalf("max = %v, want 4", p.Float)
	}
}

func TestMaxSeconds(t *testing.T) {
	r := New()
	d := Desc{Name: "worst_seconds", Help: "worst", Kind: Gauge}
	r.Seconds(d, Labels{L("i", "0")}, func() time.Duration { return 2 * time.Second })
	r.Seconds(d, Labels{L("i", "1")}, func() time.Duration { return 5 * time.Second })
	if got := r.MaxSeconds("worst_seconds"); got != 5*time.Second {
		t.Fatalf("MaxSeconds = %v", got)
	}
	if got := r.SumSeconds("worst_seconds"); got != 7*time.Second {
		t.Fatalf("SumSeconds = %v", got)
	}
}

func TestScopedRegistry(t *testing.T) {
	r := New()
	var a, b int64 = 3, 5
	d := Desc{Name: "x_total", Unit: "ops", Help: "x.", Kind: Counter}
	r.Scoped(L("shard", "0")).Int(d, Labels{L("client", "1")}, func() int64 { return a })
	r.Scoped(L("shard", "1")).Int(d, Labels{L("client", "1")}, func() int64 { return b })
	if got := r.SumInt("x_total"); got != 8 {
		t.Fatalf("SumInt over scopes = %d, want 8", got)
	}
	if got := r.SumInt("x_total", L("shard", "1")); got != 5 {
		t.Fatalf("SumInt shard=1 = %d, want 5", got)
	}
	fams := r.Families()
	if len(fams) != 1 || fams[0].Instances() != 2 {
		t.Fatalf("want one family with two instances, got %d families", len(fams))
	}
	if keys := fams[0].LabelKeys(); len(keys) != 1 || keys[0] != "shard,client" {
		t.Fatalf("label keys = %v, want [shard,client]", keys)
	}
	// Same name+labels in the same scope is still a duplicate.
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate scoped instance did not panic")
		}
	}()
	r.Scoped(L("shard", "0")).Int(d, Labels{L("client", "1")}, func() int64 { return 0 })
}
