// Command cachesim runs the Section 5 counter study (Tables 4-9) and the
// design-choice what-ifs the paper discusses: the local-disk paging
// argument of Section 5.3, a fixed-cache-size sweep (the BSD study's
// prediction of 10% misses at 4 MB versus Sprite's measured ~40%), a
// writeback-delay sweep (the paper's "longer writeback intervals" future
// work), and the prefetch question ("prefetching could reduce latencies,
// but it would not reduce the read miss ratio... server traffic").
//
// Usage:
//
//	cachesim -days 1                        # Tables 4-9
//	cachesim -whatif localdisk -days 1
//	cachesim -whatif cachesize -days 0.5
//	cachesim -whatif delay -days 0.5
//	cachesim -whatif prefetch -days 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spritefs/internal/client"
	"spritefs/internal/cluster"
	"spritefs/internal/core"
	"spritefs/internal/netsim"
	"spritefs/internal/stats"
	"spritefs/internal/vm"
	"spritefs/internal/workload"
)

func main() {
	var (
		days   = flag.Float64("days", 1, "simulated days")
		scale  = flag.Float64("scale", 1.0, "community scale factor")
		seed   = flag.Int64("seed", 424242, "workload seed")
		whatif = flag.String("whatif", "", "what-if analysis: localdisk, cachesize, delay, prefetch, consistency")
	)
	flag.Parse()

	switch *whatif {
	case "":
		r := core.RunCounterStudy(core.CounterOptions{Days: *days, Scale: *scale, Seed: *seed})
		fmt.Println(core.CounterTables(r))
	case "localdisk":
		localDisk(*days, *seed)
	case "cachesize":
		cacheSizeSweep(*days, *seed)
	case "delay":
		delaySweep(*days, *seed)
	case "prefetch":
		prefetchSweep(*days, *seed)
	case "consistency":
		consistencyModes(*days, *seed)
	default:
		fmt.Fprintf(os.Stderr, "cachesim: unknown what-if %q\n", *whatif)
		os.Exit(2)
	}
}

// baseParams mirrors core.RunCounterStudy's workload.
func baseParams(seed int64) workload.Params {
	p := workload.Default(seed)
	p.EmitBackupNoise = false
	p.BigSimUsers = 1
	p.SimInputMB = 6
	p.SimOutputMB = 2
	return p
}

func runCluster(cfg cluster.Config, days float64) *cluster.Cluster {
	cfg.CollectTrace = false
	c := cluster.New(cfg)
	c.Run(time.Duration(days * 24 * float64(time.Hour)))
	return c
}

// localDisk evaluates Section 5.3's claim: putting backing files on local
// disks would reduce server traffic by only ~20%, and would *hurt*
// latency, since a 4 KB network fetch (6-7 ms) beats a 1991 local disk
// access (20-30 ms).
func localDisk(days float64, seed int64) {
	cfg := cluster.DefaultConfig(baseParams(seed))
	c := runCluster(cfg, days)

	total := c.Net.Total()
	// Backing-file traffic (heap/stack pages) is the portion a local disk
	// could absorb; code and initialized-data paging still comes from the
	// shared executables on the servers.
	var backing int64
	for _, cl := range c.Clients {
		st := cl.VM.Stats()
		backing += st.BytesIn[vm.PageHeap] + st.BytesOut[vm.PageHeap] +
			st.BytesIn[vm.PageStack] + st.BytesOut[vm.PageStack]
	}
	serverBytes := total.TotalBytes()
	reduction := stats.Ratio(backing, serverBytes)

	netFetch := netsim.New(netsim.DefaultConfig()).RPC(0, netsim.PagingRead, 4096)
	const localDiskAccess = 25 * time.Millisecond // 20-30 ms in 1991

	t := stats.NewTable("What-if: backing files on local disks (Section 5.3)", "Metric", "Value", "Paper")
	t.AddRow("server traffic that is backing-file paging", fmt.Sprintf("%.1f%%", reduction), "~20%")
	t.AddRow("4KB fetch over network", netFetch.String(), "6-7ms")
	t.AddRow("4KB fetch from local disk", localDiskAccess.String(), "20-30ms")
	verdict := "local disks would SLOW paging down"
	if localDiskAccess < netFetch {
		verdict = "local disks would speed paging up"
	}
	t.AddRow("verdict", verdict, "agrees: \"we disagree\" with local disks")
	fmt.Println(t)
}

// cacheSizeSweep pins the client caches at fixed sizes and reports miss
// ratios — the experiment behind the BSD study's (over-optimistic)
// prediction that a 4 MB cache would miss only 10% of the time.
func cacheSizeSweep(days float64, seed int64) {
	t := stats.NewTable("What-if: fixed cache sizes (BSD-study prediction check)",
		"Cache size", "File read miss %", "Read miss traffic %", "Server/raw bytes %")
	for _, mb := range []int{1, 2, 4, 8, 16} {
		cfg := cluster.DefaultConfig(baseParams(seed))
		cfg.FixedCachePages = mb << 20 / vm.PageSize
		c := runCluster(cfg, days)
		t6 := c.Table6Report()
		t5 := c.Table5Report()
		t7 := c.Table7Report()
		filter := stats.RatioF(float64(t7.TotalBytes), float64(t5.TotalBytes))
		t.AddRow(fmt.Sprintf("%d MB", mb),
			fmt.Sprintf("%.1f", t6.All.ReadMissPct),
			fmt.Sprintf("%.1f", t6.All.ReadMissTrafficPct),
			fmt.Sprintf("%.1f", filter))
	}
	fmt.Println(t)
	fmt.Println("Paper: the BSD study predicted ~10% misses at 4 MB; Sprite measured ~40%,")
	fmt.Println("blamed on much larger files. The sweep shows the same large-file floor.")
}

// delaySweep varies the delayed-write interval — the paper's suggested
// future direction once reads are fully absorbed ("longer writeback
// intervals ... will become attractive").
func delaySweep(days float64, seed int64) {
	t := stats.NewTable("What-if: writeback delay sweep (Section 6 future work)",
		"Delay", "Writeback traffic %", "Bytes saved by delete %")
	for _, d := range []time.Duration{5 * time.Second, 30 * time.Second, 2 * time.Minute, 10 * time.Minute} {
		cfg := cluster.DefaultConfig(baseParams(seed))
		cfg.WritebackDelay = d
		c := runCluster(cfg, days)
		t6 := c.Table6Report()
		t.AddRow(d.String(),
			fmt.Sprintf("%.1f", t6.All.WritebackPct),
			fmt.Sprintf("%.1f", t6.BytesSavedByDeletePct))
	}
	fmt.Println(t)
	fmt.Println("Paper: 30s lets ~10% of new bytes die in the cache; longer delays save more")
	fmt.Println("but leave data more vulnerable to client crashes.")
}

// consistencyModes runs the cluster live under Sprite's perfect
// consistency and under NFS-style polling — the experiment behind the
// paper's Table 11, which the authors could only estimate from traces.
func consistencyModes(days float64, seed int64) {
	t := stats.NewTable("What-if: live consistency schemes (Table 11, measured directly)",
		"Scheme", "Stale reads/hour", "Stale KB/hour", "Validation RPCs/hour")
	hours := days * 24
	modes := []struct {
		name     string
		mode     client.ConsistencyMode
		interval time.Duration
	}{
		{"sprite (perfect)", client.ConsistencySprite, 0},
		{"poll 60s", client.ConsistencyPoll, 60 * time.Second},
		{"poll 3s", client.ConsistencyPoll, 3 * time.Second},
	}
	for _, m := range modes {
		p := baseParams(seed)
		p.AwaySessionProb = 0.3
		p.SharedReadSoonP = 0.9
		cfg := cluster.DefaultConfig(p)
		cfg.Consistency = m.mode
		cfg.PollInterval = m.interval
		c := runCluster(cfg, days)
		st := c.LiveStaleReport()
		t.AddRow(m.name,
			fmt.Sprintf("%.1f", float64(st.StaleReads)/hours),
			fmt.Sprintf("%.1f", float64(st.StaleBytes)/1024/hours),
			fmt.Sprintf("%.0f", float64(st.PollRPCs)/hours))
	}
	fmt.Println(t)
	fmt.Println("Paper (trace-driven estimate): 18 errors/hour at 60s, ~0.6 at 3s; Sprite: zero")
	fmt.Println("by construction. The live run measures the same cliff directly.")
}

// prefetchSweep verifies the paper's §5.2 claim that prefetching cannot
// reduce read-related server traffic (only latency).
func prefetchSweep(days float64, seed int64) {
	t := stats.NewTable("What-if: sequential prefetch (Section 5.2 claim check)",
		"Prefetch blocks", "File read miss %", "Read miss traffic %", "Server read MB")
	for _, n := range []int{0, 2, 8} {
		cfg := cluster.DefaultConfig(baseParams(seed))
		cfg.PrefetchBlocks = n
		c := runCluster(cfg, days)
		t6 := c.Table6Report()
		total := c.Net.Total()
		t.AddRow(fmt.Sprint(n),
			fmt.Sprintf("%.1f", t6.All.ReadMissPct),
			fmt.Sprintf("%.1f", t6.All.ReadMissTrafficPct),
			fmt.Sprintf("%.0f", float64(total.Bytes[netsim.FileRead]+total.Bytes[netsim.PagingRead])/(1<<20)))
	}
	fmt.Println(t)
	fmt.Println("Paper: \"prefetching could reduce latencies, but it would not reduce the")
	fmt.Println("read miss ratio['s] ... server traffic\" — miss ops fall, bytes do not.")
}
