package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFlagValidation pins fail-fast on contradictory flag combinations.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error
	}{
		{"sample without out", []string{"-metrics-sample", "10s", "-trace", "x"}, "-metrics-out"},
		{"format without out", []string{"-metrics-format", "tsv", "-trace", "x"}, "-metrics-out"},
		{"bad format", []string{"-metrics-out", "-", "-metrics-format", "xml", "-trace", "x"}, "xml"},
		{"bad report", []string{"-report", "yaml", "-trace", "x"}, "yaml"},
		{"workers without sweep", []string{"-workers", "4", "-trace", "x"}, "-sweep"},
		{"zero workers", []string{"-workers", "0", "-sweep", "cache=512", "-trace", "x"}, "at least 1"},
		{"poll without poll mode", []string{"-poll", "5s", "-trace", "x"}, "-mode poll"},
		{"no traces", []string{}, "no trace files"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error %q, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestProfileFlagsFailFast pins that an unwritable profile path is
// rejected before any trace is opened, and that a good path produces a
// profile file even when the replay itself fails.
func TestProfileFlagsFailFast(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no/such/dir/out.pprof")
	for _, flag := range []string{"-cpuprofile", "-memprofile"} {
		err := run([]string{flag, bad, "-trace", "/nonexistent"}, io.Discard)
		if err == nil || !strings.Contains(err.Error(), flag) {
			t.Errorf("run(%s=%s) error %v, want %s failure", flag, bad, err, flag)
		}
	}
	cpu := filepath.Join(t.TempDir(), "cpu.pprof")
	err := run([]string{"-cpuprofile", cpu, "-trace", "/nonexistent"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "nonexistent") {
		t.Fatalf("want trace-open error, got %v", err)
	}
	if st, serr := os.Stat(cpu); serr != nil || st.Size() == 0 {
		t.Errorf("CPU profile not written on the error path: %v", serr)
	}
}

// TestValidCombosPassValidation checks validation does not reject the
// documented invocations (they fail later, at trace open).
func TestValidCombosPassValidation(t *testing.T) {
	err := run([]string{"-trace", "/nonexistent", "-sweep", "cache=512", "-workers", "2",
		"-metrics-out", "-", "-metrics-sample", "10s", "-mode", "poll", "-poll", "5s"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "nonexistent") {
		t.Errorf("want trace-open error, got %v", err)
	}
}
