package trace_test

import (
	"bytes"
	"fmt"
	"time"

	"spritefs/internal/trace"
)

// Demonstrates the collect-merge-scrub pipeline: per-server trace streams
// are merged into time order and the tracing machinery's own records
// (nightly backup) are scrubbed, exactly as the paper's post-processing
// merged its four servers' trace files.
func ExampleMerge() {
	srv0 := []trace.Record{
		{Time: 1 * time.Second, Kind: trace.KindOpen, File: 0xA},
		{Time: 3 * time.Second, Kind: trace.KindClose, File: 0xA},
	}
	srv1 := []trace.Record{
		{Time: 2 * time.Second, Kind: trace.KindRead, File: 0xB, Length: 4096},
		{Time: 4 * time.Second, Kind: trace.KindRead, File: 0xB, Flags: trace.FlagSelfTrace}, // backup noise
	}
	merged, _ := trace.Collect(trace.Merge(
		trace.NewSliceStream(srv0), trace.NewSliceStream(srv1)))
	for _, r := range merged {
		fmt.Printf("%v %v f=%x\n", r.Time, r.Kind, r.File)
	}
	// Output:
	// 1s open f=a
	// 2s read f=b
	// 3s close f=a
}

// Demonstrates the binary codec round trip used by cmd/tracegen and
// cmd/traceanalyze.
func ExampleWriter() {
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf)
	rec := trace.Record{Time: time.Second, Kind: trace.KindOpen, File: 7, Flags: trace.FlagReadMode}
	w.Write(&rec)
	w.Flush()

	r, _ := trace.NewReader(&buf)
	got, _ := r.Next()
	fmt.Printf("%v %v file=%d read-mode=%v\n", got.Time, got.Kind, got.File,
		got.Flags&trace.FlagReadMode != 0)
	// Output:
	// 1s open file=7 read-mode=true
}
