package sim

import (
	"testing"
	"time"
)

func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	var next func()
	count := 0
	next = func() {
		count++
		if count < b.N {
			s.After(time.Microsecond, next)
		}
	}
	b.ResetTimer()
	s.After(0, next)
	s.Run()
}

func BenchmarkHeapChurn(b *testing.B) {
	// Many pending events at once: heap operations dominate. A 10k
	// backlog parked in the far future keeps every push/pop working
	// against a deep heap; the churn events themselves are fully
	// drained, so the loop measures steady-state churn rather than
	// unbounded heap growth (each iteration used to leave its event
	// behind whenever an older one fired in its place).
	s := New(1)
	for i := 0; i < 10000; i++ {
		s.At(time.Duration(i)*time.Second+10000*time.Hour, func() {})
	}
	fired := 0
	fn := func() { fired++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%1000)*time.Millisecond, fn)
		s.Step()
	}
	for fired < b.N {
		s.Step()
	}
	b.StopTimer()
	if got := s.Pending(); got != 10000 {
		b.Fatalf("pending = %d after drain, want the 10000-event backlog only", got)
	}
}

// BenchmarkSimCore exercises the scheduler's three steady-state shapes:
// a deep one-shot heap, a population of recurring timers on the wheel,
// and the two mixed. All three must run allocation-free.
func BenchmarkSimCore(b *testing.B) {
	b.Run("oneshot", func(b *testing.B) {
		s := New(1)
		resident := 1024
		if resident > b.N {
			resident = b.N
		}
		scheduled, fired := resident, 0
		var fn func()
		fn = func() {
			fired++
			if scheduled < b.N {
				scheduled++
				s.After(time.Millisecond, fn)
			}
		}
		for i := 0; i < resident; i++ {
			s.After(time.Duration(i)*time.Microsecond, fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for fired < scheduled {
			s.Step()
		}
	})
	b.Run("tickers", func(b *testing.B) {
		s := New(2)
		fired := 0
		tks := make([]*Ticker, 64)
		for i := range tks {
			period := time.Duration(100+7*i) * time.Millisecond
			tks[i] = s.Every(time.Duration(i)*time.Millisecond, period, func() { fired++ })
		}
		b.ReportAllocs()
		b.ResetTimer()
		for fired < b.N {
			s.Step()
		}
		b.StopTimer()
		for _, tk := range tks {
			tk.Stop()
		}
	})
	b.Run("mixed", func(b *testing.B) {
		s := New(3)
		fired := 0
		tks := make([]*Ticker, 32)
		for i := range tks {
			period := time.Duration(50+11*i) * time.Millisecond
			tks[i] = s.Every(time.Duration(i)*time.Millisecond, period, func() { fired++ })
		}
		var chain func()
		chain = func() {
			fired++
			if fired < b.N {
				s.After(300*time.Microsecond, chain)
			}
		}
		s.After(0, chain)
		b.ReportAllocs()
		b.ResetTimer()
		for fired < b.N {
			s.Step()
		}
		b.StopTimer()
		for _, tk := range tks {
			tk.Stop()
		}
	})
}

func BenchmarkRandDistributions(b *testing.B) {
	g := NewRand(1)
	b.Run("lognormal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.LogNormal(4096, 1.1)
		}
	})
	b.Run("boundedpareto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.BoundedPareto(1024, 1<<20, 1.1)
		}
	})
	b.Run("pick", func(b *testing.B) {
		w := []float64{1, 2, 3, 4, 5, 6, 7, 8}
		for i := 0; i < b.N; i++ {
			g.Pick(w)
		}
	})
}
