package main

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestValidateFlags is the flagScope table: every contradictory combination
// must fail fast with a mention of the offending flag.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name      string
		clients   int
		rate      float64
		duration  time.Duration
		deadline  time.Duration
		transport string
		set       map[string]bool
		wantErr   string // empty = valid
	}{
		{"defaults", 8, 50, 0, 2 * time.Second, "inproc", nil, ""},
		{"tcp", 64, 200, 10 * time.Second, time.Second, "tcp", nil, ""},
		{"zero clients", 0, 50, 0, time.Second, "inproc", nil, "-clients"},
		{"negative rate", 8, -1, 0, time.Second, "inproc", nil, "-rate"},
		{"zero rate", 8, 0, 0, time.Second, "inproc", nil, "-rate"},
		{"negative duration", 8, 50, -time.Second, time.Second, "inproc", nil, "-duration"},
		{"zero deadline", 8, 50, 0, 0, "inproc", nil, "-deadline"},
		{"bad transport", 8, 50, 0, time.Second, "carrier-pigeon", nil, "-transport"},
		{"bench without duration", 8, 50, 0, time.Second, "inproc",
			map[string]bool{"bench-json": true}, "-bench-json"},
		{"bench with duration", 8, 50, 5 * time.Second, time.Second, "inproc",
			map[string]bool{"bench-json": true}, ""},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			err := validateFlags(c.clients, c.rate, c.duration, c.deadline, c.transport, c.set)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error mentioning %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// syncBuffer lets the test read run()'s output while the run goroutine is
// still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var metricsAddrRe = regexp.MustCompile(`metrics on http://([^/\s]+)/metrics`)

// TestSoakSmoke is the `make soaksmoke` gate: a real 5-second serve run
// with 8 agents must exit cleanly, serve a valid /metrics scrape while the
// soak is running, and end with a non-empty report.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("5s wall-clock soak; skipped with -short")
	}
	var out syncBuffer
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{
			"-clients", "8", "-rate", "120", "-duration", "5s", "-seed", "7",
		}, &out)
	}()

	// Wait for the HTTP frontend to come up and announce its address.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("no metrics address announced; output so far:\n%s", out.String())
		}
		if m := metricsAddrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(20 * time.Millisecond)
		}
	}

	// Scrape mid-soak: give the fleet a moment to complete some requests.
	time.Sleep(2 * time.Second)
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("mid-soak scrape: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-soak scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("scrape Content-Type = %q", ct)
	}
	if !strings.Contains(string(body), "spritefs_live_requests_total") {
		t.Error("scrape missing spritefs_live_requests_total")
	}
	if !strings.Contains(string(body), "spritefs_cache_") {
		t.Error("scrape missing cluster cache families")
	}

	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not finish")
	}

	final := out.String()
	if !strings.Contains(final, "Live soak:") {
		t.Fatalf("no report in output:\n%s", final)
	}
	// The report must show actual traffic, not an empty table.
	if strings.Contains(final, "Live soak: 0 requests") {
		t.Fatalf("report shows zero requests:\n%s", final)
	}
	for _, verb := range []string{"open", "read", "close"} {
		if !strings.Contains(final, verb) {
			t.Errorf("report missing %s row:\n%s", verb, final)
		}
	}
}

// TestRunRejectsBadFlags checks run() surfaces validation errors without
// starting anything.
func TestRunRejectsBadFlags(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-clients", "0"}, &out); err == nil {
		t.Fatal("run accepted -clients 0")
	}
	if err := run([]string{"-transport", "smoke-signal"}, &out); err == nil {
		t.Fatal("run accepted an unknown transport")
	}
	if err := run([]string{"-trace", "/nonexistent/trace.bin"}, &out); err == nil {
		t.Fatal("run accepted a missing trace file")
	}
}
