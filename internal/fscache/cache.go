package fscache

import (
	"container/list"
	"fmt"
	"time"

	"spritefs/internal/stats"
)

// BlockSize is the cache block size: 4 Kbytes, as in Sprite.
const BlockSize = 4096

// CleanReason says why a dirty block was written back (Table 9's rows),
// plus the internal eviction case the paper notes "almost never" happens.
type CleanReason uint8

// Cleaning reasons.
const (
	CleanDelay   CleanReason = iota // 30-second delayed-write expiry
	CleanFsync                      // application requested write-through
	CleanRecall                     // server recalled dirty data for another client
	CleanVM                         // page handed to the virtual memory system
	CleanEvict                      // LRU evicted a dirty block (rare)
	CleanRecover                    // dirty data replayed to a restarted server
	NumCleanReasons
)

var cleanNames = [NumCleanReasons]string{"delay", "fsync", "recall", "vm", "evict", "recover"}

// String returns the reason name.
func (r CleanReason) String() string {
	if r < NumCleanReasons {
		return cleanNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// Attr describes the context of a cache access for the per-category
// counters: paging accesses are VM traffic routed through the file cache
// (code and initialized-data pages), and migrated accesses are performed
// by migrated processes (Table 6's right column).
type Attr struct {
	Paging   bool
	Migrated bool
}

// Writeback describes one dirty block the caller must ship to the server.
type Writeback struct {
	File   uint64
	Block  int64 // block index within the file
	Bytes  int64 // bytes to transfer (block start through high-water mark)
	Reason CleanReason
	Age    time.Duration // time since the block was last written
}

// ReadResult reports the server traffic a read implies.
type ReadResult struct {
	MissBytes  int64   // bytes that must be fetched from the server
	MissBlocks int     // number of blocks fetched
	MissIdx    []int64 // block indexes fetched (drives the server cache model)
	Evicted    []Writeback
}

// WriteResult reports the server traffic a write implies.
type WriteResult struct {
	FetchBytes  int64 // write-fetch bytes (partial writes of non-resident blocks)
	FetchBlocks int
	FetchIdx    []int64 // block indexes write-fetched
	Evicted     []Writeback
}

// OpStats is the per-category counter block. One instance counts all
// traffic; a second counts the migrated-process subset.
type OpStats struct {
	ReadOps         int64 // block-granularity cache read operations
	ReadMisses      int64
	BytesRead       int64 // bytes requested by applications
	BytesReadMissed int64 // bytes fetched from the server to satisfy reads
	WriteOps        int64
	WriteFetches    int64
	BytesWritten    int64 // bytes written into the cache by applications
	PagingReadOps   int64
	PagingReadMiss  int64
	PagingBytesRead int64 // portion of BytesRead that was paging traffic
	PagingBytesMiss int64 // portion of BytesReadMissed that was paging
}

// Stats is a snapshot of all cache counters.
type Stats struct {
	All      OpStats
	Migrated OpStats

	BytesWrittenBack   int64 // dirty bytes shipped to the server
	BytesSavedByDelete int64 // dirty bytes discarded before writeback

	ReplacedFile   int64         // LRU victims replaced by other file data
	ReplacedVM     int64         // blocks handed to the virtual memory system
	ReplacementAge stats.Welford // time since last reference, at replacement

	Cleaned  [NumCleanReasons]int64
	CleanAge [NumCleanReasons]stats.Welford // time since last write, at cleaning

	SizeBytes  int64
	DirtyBytes int64
}

type block struct {
	file  uint64
	index int64
	elem  *list.Element

	dirty   bool
	dirtyAt time.Duration // when the block first became dirty
	lastWr  time.Duration // when the block was last written
	lastRef time.Duration // when the block was last referenced
	validHi int64         // valid bytes from block start (watermark)
	dirtyHi int64         // dirty bytes from block start (writeback size)
}

type fileBlocks map[int64]*block

// Cache is one client's (or server's) block cache.
type Cache struct {
	capacity   int // blocks
	files      map[uint64]fileBlocks
	lru        *list.List // front = most recent
	nblocks    int
	ndirty     int
	dirtyBytes int64
	wbDelay    time.Duration // 0 = default WritebackDelay
	prefetch   int           // extra sequential blocks fetched per miss

	st Stats
}

// SetPrefetch makes every read miss also fetch up to n following blocks
// (the prefetch ablation — the paper argues prefetching cannot reduce
// server traffic, only latency, and this knob lets the benchmark verify
// that claim). Prefetched blocks do not count as read operations.
func (c *Cache) SetPrefetch(n int) {
	if n < 0 {
		n = 0
	}
	c.prefetch = n
}

// New returns a cache bounded at capacityBlocks blocks. Capacity must be
// positive.
func New(capacityBlocks int) *Cache {
	if capacityBlocks <= 0 {
		panic("fscache: non-positive capacity")
	}
	return &Cache{
		capacity: capacityBlocks,
		files:    make(map[uint64]fileBlocks),
		lru:      list.New(),
	}
}

// Capacity returns the current capacity in blocks.
func (c *Cache) Capacity() int { return c.capacity }

// NumBlocks returns the number of resident blocks.
func (c *Cache) NumBlocks() int { return c.nblocks }

// SizeBytes returns the resident size in bytes.
func (c *Cache) SizeBytes() int64 { return int64(c.nblocks) * BlockSize }

// DirtyBytes returns the number of dirty bytes awaiting writeback.
func (c *Cache) DirtyBytes() int64 { return c.dirtyBytes }

// Stats returns a snapshot of all counters.
func (c *Cache) Stats() Stats {
	s := c.st
	s.SizeBytes = c.SizeBytes()
	s.DirtyBytes = c.dirtyBytes
	return s
}

// Contains reports whether the given block of file is resident.
func (c *Cache) Contains(file uint64, index int64) bool {
	_, ok := c.files[file][index]
	return ok
}

func (c *Cache) touch(b *block, now time.Duration) {
	b.lastRef = now
	c.lru.MoveToFront(b.elem)
}

func (c *Cache) insert(file uint64, index int64, now time.Duration) *block {
	fb := c.files[file]
	if fb == nil {
		fb = make(fileBlocks)
		c.files[file] = fb
	}
	b := &block{file: file, index: index, lastRef: now}
	b.elem = c.lru.PushFront(b)
	fb[index] = b
	c.nblocks++
	return b
}

// remove unlinks a block from all structures. Dirty accounting is the
// caller's responsibility.
func (c *Cache) remove(b *block) {
	c.lru.Remove(b.elem)
	fb := c.files[b.file]
	delete(fb, b.index)
	if len(fb) == 0 {
		delete(c.files, b.file)
	}
	c.nblocks--
	if b.dirty {
		c.ndirty--
		c.dirtyBytes -= b.dirtyHi
	}
}

// cleanScanDepth bounds how far from the LRU tail the replacement scan
// looks for a clean victim before giving up and evicting a dirty block.
const cleanScanDepth = 512

// evictOne removes the least-recently-used block to make room, returning a
// writeback if it was dirty. Clean blocks near the LRU tail are preferred
// — Sprite's cleaner normally retires dirty data long before it reaches
// the tail, so dirty evictions are the rare forced case the paper notes
// ("usually only clean blocks are replaced"). vmTake marks the eviction as
// a page handoff to the VM system rather than replacement by file data.
func (c *Cache) evictOne(now time.Duration, vmTake bool) (Writeback, bool) {
	e := c.lru.Back()
	if e == nil {
		return Writeback{}, false
	}
	for cand, depth := e, 0; cand != nil && depth < cleanScanDepth; cand, depth = cand.Prev(), depth+1 {
		if !cand.Value.(*block).dirty {
			e = cand
			break
		}
	}
	b := e.Value.(*block)
	c.st.ReplacementAge.Add(float64(now - b.lastRef))
	if vmTake {
		c.st.ReplacedVM++
	} else {
		c.st.ReplacedFile++
	}
	var wb Writeback
	dirty := b.dirty
	if dirty {
		reason := CleanEvict
		if vmTake {
			reason = CleanVM
		}
		wb = c.makeWriteback(b, reason, now)
	}
	c.remove(b)
	return wb, dirty
}

func (c *Cache) makeWriteback(b *block, reason CleanReason, now time.Duration) Writeback {
	c.st.Cleaned[reason]++
	c.st.CleanAge[reason].Add(float64(now - b.lastWr))
	c.st.BytesWrittenBack += b.dirtyHi
	return Writeback{File: b.file, Block: b.index, Bytes: b.dirtyHi, Reason: reason, Age: now - b.lastWr}
}

// ensureRoom evicts until a new block can be inserted, appending any dirty
// writebacks to out.
func (c *Cache) ensureRoom(now time.Duration, out *[]Writeback) {
	for c.nblocks >= c.capacity {
		wb, dirty := c.evictOne(now, false)
		if dirty {
			*out = append(*out, wb)
		}
		if c.lru.Len() == 0 && c.nblocks >= c.capacity {
			return // capacity zero-ish; nothing more to do
		}
	}
}

// blockSpan returns the first and last block indices touched by
// [offset, offset+length).
func blockSpan(offset, length int64) (first, last int64) {
	first = offset / BlockSize
	last = (offset + length - 1) / BlockSize
	return
}

// Read performs a cache read of [offset, offset+length) of file, whose
// current size is fileSize bytes. Missing blocks are fetched (the returned
// MissBytes must be transferred from the server) and installed. Reads
// beyond fileSize are a programming error and panic; the client layer
// clamps application reads to the file size first.
func (c *Cache) Read(file uint64, offset, length, fileSize int64, attr Attr, now time.Duration) ReadResult {
	var res ReadResult
	if length <= 0 {
		return res
	}
	if offset < 0 || offset+length > fileSize {
		panic(fmt.Sprintf("fscache: read [%d,%d) beyond size %d", offset, offset+length, fileSize))
	}
	first, last := blockSpan(offset, length)
	for idx := first; idx <= last; idx++ {
		c.countRead(attr)
		b := c.files[file][idx]
		if b != nil && c.blockCovers(b, idx, offset, length) {
			c.touch(b, now)
			continue
		}
		// Miss: fetch the valid portion of the block from the server.
		c.countReadMiss(attr)
		blockStart := idx * BlockSize
		validEnd := fileSize - blockStart
		if validEnd > BlockSize {
			validEnd = BlockSize
		}
		if b == nil {
			c.ensureRoom(now, &res.Evicted)
			b = c.insert(file, idx, now)
		} else {
			c.touch(b, now)
		}
		fetch := validEnd - b.validHi
		if fetch < 0 {
			fetch = 0
		}
		// A partially valid block is refreshed in full for simplicity;
		// fetching the tail only is what Sprite did and what we model.
		if b.validHi < validEnd {
			b.validHi = validEnd
		}
		res.MissBytes += fetch
		res.MissBlocks++
		res.MissIdx = append(res.MissIdx, idx)
		// Sequential prefetch (ablation): pull the following blocks too.
		for p := int64(1); p <= int64(c.prefetch); p++ {
			pi := idx + p
			if pi*BlockSize >= fileSize || c.files[file][pi] != nil {
				break
			}
			c.ensureRoom(now, &res.Evicted)
			pb := c.insert(file, pi, now)
			end := fileSize - pi*BlockSize
			if end > BlockSize {
				end = BlockSize
			}
			pb.validHi = end
			res.MissBytes += end
			res.MissBlocks++
			res.MissIdx = append(res.MissIdx, pi)
		}
	}
	c.addBytesRead(attr, length)
	return res
}

// blockCovers reports whether resident block b holds all bytes of the
// request that fall inside block idx.
func (c *Cache) blockCovers(b *block, idx, offset, length int64) bool {
	blockStart := idx * BlockSize
	reqEnd := offset + length - blockStart
	if reqEnd > BlockSize {
		reqEnd = BlockSize
	}
	return b.validHi >= reqEnd
}

// Write performs a cache write of [offset, offset+length) of file, whose
// size before the write is fileSizeBefore. A partial write to a
// non-resident block that already exists on the server requires a write
// fetch (the returned FetchBytes). Blocks become dirty; the 30-second
// delayed-write clock starts at the first dirtying write.
func (c *Cache) Write(file uint64, offset, length, fileSizeBefore int64, attr Attr, now time.Duration) WriteResult {
	var res WriteResult
	if length <= 0 {
		return res
	}
	if offset < 0 {
		panic("fscache: negative write offset")
	}
	first, last := blockSpan(offset, length)
	for idx := first; idx <= last; idx++ {
		c.st.All.WriteOps++
		if attr.Migrated {
			c.st.Migrated.WriteOps++
		}
		blockStart := idx * BlockSize
		// Portion of the request inside this block.
		lo := offset - blockStart
		if lo < 0 {
			lo = 0
		}
		hi := offset + length - blockStart
		if hi > BlockSize {
			hi = BlockSize
		}
		b := c.files[file][idx]
		partial := lo > 0 || (hi < BlockSize && blockStart+hi < fileSizeBefore)
		if b == nil {
			// Write fetch: the block exists on the server (it holds bytes
			// below fileSizeBefore), the write is partial, and the block is
			// not resident — it must be fetched before modification.
			existingEnd := fileSizeBefore - blockStart
			if existingEnd > BlockSize {
				existingEnd = BlockSize
			}
			needFetch := partial && existingEnd > 0 && lo < existingEnd
			c.ensureRoom(now, &res.Evicted)
			b = c.insert(file, idx, now)
			if needFetch {
				c.st.All.WriteFetches++
				if attr.Migrated {
					c.st.Migrated.WriteFetches++
				}
				res.FetchBytes += existingEnd
				res.FetchBlocks++
				res.FetchIdx = append(res.FetchIdx, idx)
				b.validHi = existingEnd
			}
		} else {
			c.touch(b, now)
		}
		if !b.dirty {
			b.dirty = true
			b.dirtyAt = now
			c.ndirty++
		}
		b.lastWr = now
		if hi > b.validHi {
			b.validHi = hi
		}
		if hi > b.dirtyHi {
			c.dirtyBytes += hi - b.dirtyHi
			b.dirtyHi = hi
		}
	}
	c.st.All.BytesWritten += length
	if attr.Migrated {
		c.st.Migrated.BytesWritten += length
	}
	return res
}

func (c *Cache) countRead(attr Attr) {
	c.st.All.ReadOps++
	if attr.Paging {
		c.st.All.PagingReadOps++
	}
	if attr.Migrated {
		c.st.Migrated.ReadOps++
		if attr.Paging {
			c.st.Migrated.PagingReadOps++
		}
	}
}

func (c *Cache) countReadMiss(attr Attr) {
	c.st.All.ReadMisses++
	if attr.Paging {
		c.st.All.PagingReadMiss++
	}
	if attr.Migrated {
		c.st.Migrated.ReadMisses++
		if attr.Paging {
			c.st.Migrated.PagingReadMiss++
		}
	}
}

func (c *Cache) addBytesRead(attr Attr, n int64) {
	c.st.All.BytesRead += n
	if attr.Paging {
		c.st.All.PagingBytesRead += n
	}
	if attr.Migrated {
		c.st.Migrated.BytesRead += n
		if attr.Paging {
			c.st.Migrated.PagingBytesRead += n
		}
	}
}

// note: BytesReadMissed is accumulated by the client after the RPC, via
// AddMissBytes, so that clamping at the server (e.g. concurrent truncate)
// can be reflected; in the current simulator the two always agree.

// AddMissBytes records n bytes fetched from the server to satisfy reads.
func (c *Cache) AddMissBytes(attr Attr, n int64) {
	c.st.All.BytesReadMissed += n
	if attr.Paging {
		c.st.All.PagingBytesMiss += n
	}
	if attr.Migrated {
		c.st.Migrated.BytesReadMissed += n
		if attr.Paging {
			c.st.Migrated.PagingBytesMiss += n
		}
	}
}
