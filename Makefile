# Convenience targets for the spritefs reproduction.

GO ?= go

.PHONY: all check build vet test bench race experiments section4 section5 clean

all: check

# The gate every change must pass: compile, static checks, tests, and the
# race detector over the full module.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every table/figure benchmark (reduced scale).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Full-scale regeneration of the paper's evaluation.
experiments: section4 section5

section4:
	$(GO) run ./cmd/experiments -exp section4 -hours 24 | tee results_section4.txt

section5:
	$(GO) run ./cmd/experiments -exp section5 -days 2 | tee results_section5.txt

clean:
	rm -f results_section4.txt results_section5.txt test_output.txt bench_output.txt
