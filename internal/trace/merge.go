package trace

import (
	"container/heap"
	"fmt"
	"io"
)

// Versioned is implemented by streams that know which header version they
// were decoded from (Reader and TextReader). Merge uses it to refuse to
// interleave streams from different format lineages; streams that do not
// implement it (in-memory SliceStreams, filters) are compatible with
// anything.
type Versioned interface {
	Version() uint16
}

// Merge combines several time-ordered streams (one per file server, as in
// the paper's per-server trace files) into a single time-ordered stream via
// a k-way merge. Ties are broken by input index so merging is deterministic.
//
// Merge also performs the paper's scrub step: records flagged FlagSelfTrace
// (the tracing machinery's own writes and the nightly backup) are dropped.
//
// Streams that declare a header version (see Versioned) must all declare
// the same one: a version-1 native capture and a version-2 imported trace
// have unrelated timebases and ID spaces, so interleaving them would
// silently produce garbage. Mixing versions yields a stream whose Next
// returns an error immediately.
func Merge(streams ...Stream) Stream {
	m := &merger{}
	seenVer := uint16(0)
	for _, s := range streams {
		v, ok := s.(Versioned)
		if !ok {
			continue
		}
		switch {
		case seenVer == 0:
			seenVer = v.Version()
		case seenVer != v.Version():
			m.err = fmt.Errorf("trace: cannot merge streams with differing header versions %d and %d",
				seenVer, v.Version())
			return m
		}
	}
	for i, s := range streams {
		src := &mergeSrc{stream: s, idx: i}
		if src.advance() {
			m.h = append(m.h, src)
		} else if src.err != nil && src.err != io.EOF {
			m.err = src.err
		}
	}
	heap.Init(&m.h)
	return m
}

type mergeSrc struct {
	stream Stream
	idx    int
	cur    Record
	err    error
}

// advance fetches the next non-scrubbed record; it reports whether one is
// available.
func (s *mergeSrc) advance() bool {
	for {
		r, err := s.stream.Next()
		if err != nil {
			s.err = err
			return false
		}
		if r.Flags&FlagSelfTrace != 0 {
			continue
		}
		s.cur = r
		return true
	}
}

type merger struct {
	h   srcHeap
	err error
}

// Next implements Stream.
func (m *merger) Next() (Record, error) {
	if m.err != nil {
		return Record{}, m.err
	}
	if len(m.h) == 0 {
		return Record{}, io.EOF
	}
	src := m.h[0]
	r := src.cur
	if src.advance() {
		heap.Fix(&m.h, 0)
	} else {
		if src.err != nil && src.err != io.EOF {
			m.err = src.err
			return Record{}, m.err
		}
		heap.Pop(&m.h)
	}
	return r, nil
}

type srcHeap []*mergeSrc

func (h srcHeap) Len() int { return len(h) }
func (h srcHeap) Less(i, j int) bool {
	if h[i].cur.Time != h[j].cur.Time {
		return h[i].cur.Time < h[j].cur.Time
	}
	return h[i].idx < h[j].idx
}
func (h srcHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *srcHeap) Push(x any)   { *h = append(*h, x.(*mergeSrc)) }
func (h *srcHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// Filter returns a stream yielding only records for which keep returns true.
func Filter(s Stream, keep func(*Record) bool) Stream {
	return filterStream{s: s, keep: keep}
}

type filterStream struct {
	s    Stream
	keep func(*Record) bool
}

func (f filterStream) Next() (Record, error) {
	for {
		r, err := f.s.Next()
		if err != nil {
			return Record{}, err
		}
		if f.keep(&r) {
			return r, nil
		}
	}
}

// ExcludeUsers returns a stream with all records of the given users removed.
// The paper used this to re-run the analyses without the kernel-development
// group (Section 4.2).
func ExcludeUsers(s Stream, users ...int32) Stream {
	drop := make(map[int32]bool, len(users))
	for _, u := range users {
		drop[u] = true
	}
	return Filter(s, func(r *Record) bool { return !drop[r.User] })
}
