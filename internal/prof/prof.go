// Package prof starts and stops pprof profile collection for the
// command-line tools. Both output files are created up front so a bad
// path fails before a multi-hour simulation runs, not after; the heap
// profile itself is written at Stop, preceded by a GC so the snapshot
// shows live steady-state memory rather than collectible garbage.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Session is an in-progress profile collection. The zero value is
// inert; Stop on it is a no-op. Stop is safe to call concurrently: a
// signal handler flushing profiles on termination may race the deferred
// Stop on the main path, and exactly one of them does the work.
type Session struct {
	mu  sync.Mutex
	cpu *os.File
	mem *os.File
}

// Start opens the requested profiles. Either path may be empty to skip
// that profile. On error nothing is left running and any file already
// created is closed (the truncated file remains on disk, as with any
// failed write).
func Start(cpuPath, memPath string) (*Session, error) {
	var s Session
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		s.cpu = f
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			s.stopCPU()
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
		s.mem = f
	}
	return &s, nil
}

func (s *Session) stopCPU() error {
	if s.cpu == nil {
		return nil
	}
	pprof.StopCPUProfile()
	err := s.cpu.Close()
	s.cpu = nil
	if err != nil {
		return fmt.Errorf("-cpuprofile: %w", err)
	}
	return nil
}

// Stop finishes collection: the CPU profile is flushed and closed, and
// the heap profile is written. Safe to call more than once and from
// multiple goroutines; later calls are no-ops.
func (s *Session) Stop() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.stopCPU()
	if s.mem != nil {
		f := s.mem
		s.mem = nil
		runtime.GC() // materialize only live allocations in the snapshot
		werr := pprof.WriteHeapProfile(f)
		cerr := f.Close()
		if werr == nil {
			werr = cerr
		}
		if err == nil && werr != nil {
			err = fmt.Errorf("-memprofile: %w", werr)
		}
	}
	return err
}
