package cluster_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_report.prom from this run")

// TestGoldenReport pins the full metric-registry dump of a seeded cluster
// run byte-for-byte. The dump projects every counter the report tables are
// built from, so any change to event ordering, scheduling, caching or
// accounting — however small — shows up here. The file was generated
// before the allocation-free scheduler rewrite; the optimized core must
// reproduce it exactly.
func TestGoldenReport(t *testing.T) {
	p := workload.ScaleCommunity(workload.Default(20260806), 0.25)
	p.EmitBackupNoise = false
	cfg := cluster.DefaultConfig(p)
	cfg.CollectTrace = false
	cfg.SamplePeriod = time.Minute
	c := cluster.New(cfg)
	c.Run(45 * time.Minute)

	var buf bytes.Buffer
	if err := c.Reg.Dump(&buf, "prom"); err != nil {
		t.Fatal(err)
	}
	// The golden file pins the dump of the pre-optimization code. The
	// spritefs_sim_* scheduler gauges are new instrumentation added by the
	// allocation-free core (they did not exist when the file was
	// generated), so they are additive-only and excluded from the pin;
	// every simulated-model family is compared byte-for-byte.
	got := stripSimGauges(buf.String())

	path := filepath.Join("testdata", "golden_report.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	n := len(gl)
	if len(wl) < n {
		n = len(wl)
	}
	for i := 0; i < n; i++ {
		if gl[i] != wl[i] {
			t.Fatalf("report drifted from pre-optimization output at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("report drifted: line counts differ (got %d, want %d)", len(gl), len(wl))
}

// stripSimGauges drops the families added after the golden file was
// generated (and their HELP/TYPE headers) from a prom dump: the
// spritefs_sim_* scheduler gauges and the spritefs_workload_* offered-load
// counters. Both are additive instrumentation over state that already
// existed; the simulated-model families remain pinned byte-for-byte.
func stripSimGauges(s string) string {
	var b strings.Builder
	for _, line := range strings.SplitAfter(s, "\n") {
		if strings.Contains(line, "spritefs_sim_") || strings.Contains(line, "spritefs_workload_") {
			continue
		}
		b.WriteString(line)
	}
	return b.String()
}
