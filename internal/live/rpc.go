package live

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"spritefs/internal/client"
)

// Verb enumerates the file-service operations the live frontend carries —
// the kernel-call surface the paper's traces logged, minus the process
// machinery.
type Verb uint8

// RPC verbs. The numbering is part of the TCP codec; append only.
const (
	VerbOpen Verb = iota
	VerbRead
	VerbWrite
	VerbClose
	VerbGetattr
	NumVerbs
)

var verbNames = [NumVerbs]string{"open", "read", "write", "close", "getattr"}

// String returns the verb's lower-case name.
func (v Verb) String() string {
	if v < NumVerbs {
		return verbNames[v]
	}
	return fmt.Sprintf("verb(%d)", uint8(v))
}

// Request is one agent operation against the server group.
type Request struct {
	Verb   Verb
	Agent  int32  // fleet agent id; the dispatcher maps it to a workstation
	File   uint64 // open/getattr: target file
	Handle uint64 // read/write/close: open-instance handle
	Offset int64  // read/write: byte offset
	Length int64  // read/write: byte count
	Write  bool   // open: request write mode
}

// Response is the reply to one Request.
type Response struct {
	Err       string        // empty on success
	Retryable bool          // the error class worth backing off and retrying (server down)
	Handle    uint64        // open: the new handle
	N         int64         // read: bytes actually read
	Size      int64         // open/getattr: file size
	SimLat    time.Duration // simulated service time charged by the model
}

// OK reports whether the request succeeded.
func (r *Response) OK() bool { return r.Err == "" }

// ErrDeadline is returned when a request's deadline expires before its
// reply is delivered. The operation may still have executed at the server
// — exactly the at-most-once ambiguity a real RPC timeout has.
var ErrDeadline = errors.New("live: request deadline exceeded")

// Transport carries requests from an agent to the server group: the
// in-process *Dispatcher, or a *TCPClient speaking the wire codec to a
// *TCPServer that fronts the same dispatcher.
type Transport interface {
	// Do executes one request with the given deadline.
	Do(req Request, deadline time.Duration) (Response, error)
	// Close releases the transport.
	Close() error
}

// Retry policy: the same bounded doubling backoff the Sprite recovery
// protocol applies against a down server (client.RecoveryBackoff /
// client.RecoveryRetryLimit, introduced with internal/faults), rescaled
// for an interactive request path — a full cycle waits tens of
// milliseconds, not tens of seconds.
const (
	// RetryBackoff is the initial retry delay; it doubles per attempt.
	RetryBackoff = client.RecoveryBackoff / 16 // 6.25ms
	// RetryLimit caps retry attempts per request.
	RetryLimit = client.RecoveryRetryLimit / 2 // 4
)

// Dispatcher is the in-process transport: it marshals requests onto the
// WallClock loop, where exec runs them against the cluster, and delivers
// each reply after the simulated service time has elapsed on the wall —
// so agents measure latencies with the model's service times, real
// queueing, and real scheduling in them.
type Dispatcher struct {
	wc   *WallClock
	exec func(*Request) Response // runs on the dispatcher loop
	// onRetry, when set, counts backoff retries (the fleet's counter).
	onRetry func()
}

// NewDispatcher builds the in-process transport. exec is invoked on the
// WallClock loop and must only touch loop-owned state.
func NewDispatcher(wc *WallClock, exec func(*Request) Response) *Dispatcher {
	return &Dispatcher{wc: wc, exec: exec}
}

// OnRetry installs a callback counting backoff retries. Set before serving
// traffic; fn must be safe for concurrent calls.
func (d *Dispatcher) OnRetry(fn func()) { d.onRetry = fn }

// Do executes req. Retryable failures (a crashed server mid-recovery) are
// retried with bounded doubling backoff inside the deadline; a reply that
// does not arrive in time returns ErrDeadline.
func (d *Dispatcher) Do(req Request, deadline time.Duration) (Response, error) {
	start := time.Now()
	backoff := RetryBackoff
	for attempt := 0; ; attempt++ {
		resp, err := d.once(req, deadline-time.Since(start))
		if err != nil {
			return resp, err
		}
		if resp.OK() || !resp.Retryable || attempt >= RetryLimit {
			return resp, nil
		}
		if time.Since(start)+backoff >= deadline {
			return resp, nil // no room left to retry; surface the error reply
		}
		if d.onRetry != nil {
			d.onRetry()
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// once issues a single attempt.
func (d *Dispatcher) once(req Request, deadline time.Duration) (Response, error) {
	if deadline <= 0 {
		return Response{}, ErrDeadline
	}
	done := make(chan Response, 1)
	var abandoned atomic.Bool
	ok := d.wc.Go(func() {
		resp := d.exec(&req)
		deliver := func() {
			if !abandoned.Load() {
				done <- resp // buffered; the loop never blocks here
			}
		}
		if resp.SimLat > 0 {
			d.wc.Sim().After(resp.SimLat, deliver)
		} else {
			deliver()
		}
	})
	if !ok {
		return Response{}, ErrStopped
	}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case resp := <-done:
		return resp, nil
	case <-timer.C:
		abandoned.Store(true)
		return Response{}, ErrDeadline
	}
}

// Close implements Transport; the in-process dispatcher has nothing to
// release.
func (d *Dispatcher) Close() error { return nil }

var _ Transport = (*Dispatcher)(nil)
