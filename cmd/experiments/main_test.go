package main

import "testing"

func TestParseTraces(t *testing.T) {
	got, err := parseTraces("1, 3,8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 8 {
		t.Errorf("parsed %v", got)
	}
	for _, bad := range []string{"", "0", "9", "x", "1,,y"} {
		if _, err := parseTraces(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	// Trailing commas and spaces are tolerated.
	got, err = parseTraces("2,")
	if err != nil || len(got) != 1 || got[0] != 2 {
		t.Errorf("trailing comma: %v %v", got, err)
	}
}
