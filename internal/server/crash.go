// Crash, restart and recovery: the server half of Sprite's stateful
// recovery protocol. A Sprite server keeps its open-file tables and
// write-sharing state in volatile memory, so a crash discards them; after
// restart, clients re-register their open handles (Recover) and replay
// dirty blocks, and the server rebuilds consistency state from the
// re-registrations. Authoritative file metadata (the files map models the
// on-disk name space) survives; only open registrations, last-writer hints,
// cacheability decisions and un-synced server-cache blocks are lost.

package server

import (
	"errors"
	"fmt"
	"slices"
	"time"
)

// ErrDown is returned by operations attempted while the server is crashed
// and not yet restarted.
var ErrDown = errors.New("server: down")

// CrashOutcome describes what a crash destroyed.
type CrashOutcome struct {
	OpensDropped   int           // open registrations discarded
	DirtyBytesLost int64         // un-synced server-cache bytes lost
	MaxDirtyAge    time.Duration // oldest lost dirty byte's age
}

// Crash discards the server's volatile state: every open registration,
// last-writer hint and write-sharing decision, plus any server-cache
// blocks not yet synced to disk. File metadata survives (it models the
// on-disk name space). The server is down until Restart.
func (s *Server) Crash(now time.Duration) CrashOutcome {
	var out CrashOutcome
	for _, f := range s.files {
		for i := range f.openers {
			out.OpensDropped += int(f.openers[i].reads) + int(f.openers[i].writes)
		}
		f.openers = f.openers[:0]
		f.lastWriter = NoClient
		f.uncacheable = false
	}
	if s.Store != nil {
		loss := s.Store.Crash(now)
		out.DirtyBytesLost = loss.DirtyBytes
		out.MaxDirtyAge = loss.MaxDirtyAge
	}
	s.down = true
	s.st.Crashes++
	s.st.OpensLostInCrash += int64(out.OpensDropped)
	return out
}

// Restart brings a crashed server back up under a new epoch. Clients
// notice the epoch change and run the recovery protocol.
func (s *Server) Restart(now time.Duration) {
	s.down = false
	s.epoch++
}

// Down reports whether the server is crashed and not yet restarted.
func (s *Server) Down() bool { return s.down }

// Epoch returns the restart generation. It changes exactly when volatile
// state has been lost, so a client that cached the epoch at open time can
// detect a restart by comparison alone.
func (s *Server) Epoch() uint64 { return s.epoch }

// Disconnect purges one client's open registrations, as the server does
// when a workstation crashes (Sprite servers detect dead clients and clean
// up their state). It returns the number of registrations dropped.
func (s *Server) Disconnect(client int32, now time.Duration) int {
	dropped := 0
	for _, f := range s.files {
		if o := f.opener(client); o != nil {
			dropped += int(o.reads) + int(o.writes)
			f.removeOpener(client)
		}
		if f.lastWriter == client {
			f.lastWriter = NoClient
		}
		if f.uncacheable && f.Openers() == 0 {
			f.uncacheable = false
		}
	}
	return dropped
}

// Recover re-registers a client's open handles for one file after a server
// restart. readCount and writeCount are the client's authoritative handle
// counts; the server SETS its registration to them rather than adding, so
// recovery is idempotent — a retried or duplicate re-registration cannot
// double-count opens. Write-sharing is re-detected from the rebuilt open
// table; re-detections count as RecoveryCWS, not as new CWS events, so
// Table 10 is not inflated by recovery.
func (s *Server) Recover(id uint64, client int32, readCount, writeCount int, now time.Duration) (OpenReply, error) {
	if s.down {
		return OpenReply{}, ErrDown
	}
	f := s.files[id]
	if f == nil {
		// Deleted while the client was cut off; the client drops the handle.
		return OpenReply{}, fmt.Errorf("server %d: recover of unknown file %#x", s.id, id)
	}
	if readCount > 0 || writeCount > 0 {
		o := f.opener(client)
		if o == nil {
			f.openers = append(f.openers, opener{client: client})
			o = &f.openers[len(f.openers)-1]
		}
		o.reads = int32(readCount)
		o.writes = int32(writeCount)
	} else {
		f.removeOpener(client)
	}
	s.st.RecoveryOpens++

	reply := OpenReply{Version: f.Version, Size: f.Size, Cacheable: true, RecallFrom: NoClient}
	if f.Directory {
		reply.Cacheable = false
		return reply, nil
	}
	if !f.uncacheable && f.Openers() >= 2 && f.WriterCount() >= 1 {
		f.uncacheable = true
		reply.StartedCWS = true
		reply.DisableOn = f.disableList(client)
		s.st.RecoveryCWS++
	}
	if f.uncacheable {
		reply.Cacheable = false
	}
	return reply, nil
}

// disableList returns the clients other than except that cache the file
// and must flush and bypass when write-sharing starts, sorted so the
// disable sequence is deterministic.
func (f *File) disableList(except int32) []int32 {
	// Every openers entry has a positive read or write count, so the list
	// is simply every opening client but the initiator (the same set the
	// old reader/writer maps produced: readers plus writers-only clients).
	var out []int32
	for i := range f.openers {
		if c := f.openers[i].client; c != except {
			out = append(out, c)
		}
	}
	slices.Sort(out)
	return out
}

// Registration returns the server's open registration counts for one
// client on this file (the server half of what the invariant checker
// compares against client handle tables).
func (f *File) Registration(client int32) (readers, writers int) {
	if o := f.opener(client); o != nil {
		return int(o.reads), int(o.writes)
	}
	return 0, 0
}

// FileIDs returns the ids of all live files in ascending order.
func (s *Server) FileIDs() []uint64 {
	out := make([]uint64, 0, len(s.files))
	for id := range s.files {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// NoteRecovery records one client's completed recovery: d is the time from
// crash to that client regaining a consistent view. The maximum across
// clients is the cluster's time-to-reconsistency.
func (s *Server) NoteRecovery(d time.Duration) {
	if d > s.st.MaxRecoveryTime {
		s.st.MaxRecoveryTime = d
	}
}
