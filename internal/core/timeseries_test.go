package core

import (
	"strings"
	"testing"
)

// TestTimeseriesDeterministic: the same seed yields byte-identical sampled
// series in every export format — the acceptance criterion that identical
// seeds produce identical metric dumps.
func TestTimeseriesDeterministic(t *testing.T) {
	run := func() (string, *TimeseriesResult) {
		r := RunTimeseries(TimeseriesOptions{Hours: 0.5, Scale: 0.2})
		var b strings.Builder
		for _, format := range []string{"prom", "tsv", "jsonl"} {
			if err := r.Sampler.Dump(&b, format); err != nil {
				t.Fatal(err)
			}
		}
		return b.String(), r
	}
	a, ra := run()
	b, _ := run()
	if a == "" {
		t.Fatal("empty series dump")
	}
	if a != b {
		t.Fatal("timeseries dumps differ across identical runs")
	}
	if ra.Sampler.Len() == 0 {
		t.Fatal("sampler retained no rows")
	}
	if ra.Short.Intervals <= ra.Long.Intervals {
		t.Fatalf("short windows (%d) not finer than long (%d)",
			ra.Short.Intervals, ra.Long.Intervals)
	}
}

// TestTimeseriesContrast pins the Table 2 phenomenon on a run long enough
// to carry real traffic: averaged over 10-minute windows and 10-second
// windows the series agrees on total volume, but the 10-second peak is
// strictly burstier than the 10-minute peak.
func TestTimeseriesContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour simulated run")
	}
	r := RunTimeseries(TimeseriesOptions{Hours: 2, Scale: 0.5})
	if r.Short.PeakKBs <= 0 || r.Long.PeakKBs <= 0 {
		t.Fatalf("no traffic sampled: short peak %.2f, long peak %.2f",
			r.Short.PeakKBs, r.Long.PeakKBs)
	}
	if r.Short.PeakKBs < r.Long.PeakKBs {
		t.Fatalf("10s peak (%.1f KB/s) below 10m peak (%.1f KB/s): burstiness lost",
			r.Short.PeakKBs, r.Long.PeakKBs)
	}
	out := TimeseriesTables(r)
	if !strings.Contains(out, "Table 2 contrast") {
		t.Fatalf("unexpected table rendering:\n%s", out)
	}
	t.Logf("\n%s", out)
}
