package stats

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := NewTable("Demo", "row", "a", "b")
	tb.AddRow("one", "1", "22")
	tb.AddRowf("two", "%.1f", 3.25, 4)
	out := tb.String()
	if !strings.HasPrefix(out, "Demo\n") {
		t.Errorf("missing title:\n%s", out)
	}
	for _, want := range []string{"row", "one", "22", "3.2", "4.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableTSV(t *testing.T) {
	tb := NewTable("Ignored title", "col1", "col2")
	tb.AddRow("x", "1")
	tb.AddRow("y", "2")
	got := tb.TSV()
	want := "col1\tcol2\nx\t1\ny\t2\n"
	if got != want {
		t.Errorf("TSV:\n got %q\nwant %q", got, want)
	}
	// TSV output must not carry the title or the rule line — it is the
	// machine-diffable form the sweep invariance check compares.
	if strings.Contains(got, "Ignored") || strings.Contains(got, "---") {
		t.Errorf("TSV leaked presentation elements: %q", got)
	}
}

func TestTableTSVEmpty(t *testing.T) {
	if got := (&Table{}).TSV(); got != "" {
		t.Errorf("empty table TSV = %q", got)
	}
}
