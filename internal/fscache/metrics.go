package fscache

import (
	"spritefs/internal/metrics"
	"spritefs/internal/stats"
)

// RegisterMetrics registers every cache counter into the central registry
// under the given family prefix ("spritefs_cache" for client caches,
// "spritefs_server_cache" for the server stores' internal caches) with the
// given instance labels (e.g. client="7"). All values are read from the
// live counters at snapshot time, so the registry is always exactly as
// current as Stats().
//
// The per-category OpStats pair registers twice under a scope label:
// scope="all" counts every access, scope="migrated" the migrated-process
// subset (Table 6's two columns).
func (c *Cache) RegisterMetrics(r *metrics.Registry, prefix string, ls metrics.Labels) {
	c.registerOps(r, prefix, ls, "all", &c.st.All)
	c.registerOps(r, prefix, ls, "migrated", &c.st.Migrated)

	ctr := func(name, unit, help string, v *int64) {
		r.Int(metrics.Desc{Name: prefix + name, Unit: unit, Help: help, Kind: metrics.Counter},
			ls, func() int64 { return *v })
	}
	ctr("_writeback_bytes_total", "bytes",
		"Dirty bytes shipped to servers by cleaning (all reasons; Table 6 writeback traffic).",
		&c.st.BytesWrittenBack)
	ctr("_delete_saved_bytes_total", "bytes",
		"Dirty bytes discarded before writeback because the file was deleted or truncated (Table 6 bytes-saved row).",
		&c.st.BytesSavedByDelete)
	ctr("_replaced_file_total", "blocks",
		"LRU victims replaced to hold another file block (Table 8 file row).", &c.st.ReplacedFile)
	ctr("_replaced_vm_total", "blocks",
		"Cache blocks handed to the virtual memory system (Table 8 VM row).", &c.st.ReplacedVM)

	r.HistSeconds(metrics.Desc{Name: prefix + "_replacement_age_seconds",
		Help: "Time since last reference when a block was replaced (Table 8 age column)."},
		ls, func() stats.Welford { return c.st.ReplacementAge })

	for reason := CleanReason(0); reason < NumCleanReasons; reason++ {
		reason := reason
		rls := withLabel(ls, "reason", reason.String())
		r.Int(metrics.Desc{Name: prefix + "_cleaned_total", Unit: "blocks",
			Help: "Dirty blocks written back, by cleaning reason (Table 9 rows).",
			Kind: metrics.Counter},
			rls, func() int64 { return c.st.Cleaned[reason] })
		r.HistSeconds(metrics.Desc{Name: prefix + "_clean_age_seconds",
			Help: "Time since last write when a dirty block was cleaned, by reason (Table 9 age columns)."},
			rls, func() stats.Welford { return c.st.CleanAge[reason] })
	}

	gauge := func(name, unit, help string, fn func() int64) {
		r.Int(metrics.Desc{Name: prefix + name, Unit: unit, Help: help, Kind: metrics.Gauge}, ls, fn)
	}
	gauge("_size_bytes", "bytes",
		"Resident cache size (the Table 4 sampled quantity).", c.SizeBytes)
	gauge("_dirty_bytes", "bytes",
		"Dirty bytes awaiting writeback (the delayed-write exposure the fault study measures).",
		c.DirtyBytes)
	gauge("_capacity_blocks", "blocks",
		"Current cache capacity negotiated with the VM system.",
		func() int64 { return int64(c.capacity) })
}

// registerOps registers one OpStats counter block under a scope label.
func (c *Cache) registerOps(r *metrics.Registry, prefix string, ls metrics.Labels, scope string, o *OpStats) {
	sls := withLabel(ls, "scope", scope)
	ctr := func(name, unit, help string, v *int64) {
		r.Int(metrics.Desc{Name: prefix + name, Unit: unit, Help: help, Kind: metrics.Counter},
			sls, func() int64 { return *v })
	}
	ctr("_read_ops_total", "ops", "Block-granularity cache read operations.", &o.ReadOps)
	ctr("_read_misses_total", "ops", "Read operations not satisfied in the cache (Table 6 miss ratio numerator).", &o.ReadMisses)
	ctr("_read_bytes_total", "bytes", "Bytes requested from the cache by applications (Table 5 file-read traffic).", &o.BytesRead)
	ctr("_read_miss_bytes_total", "bytes", "Bytes fetched from servers to satisfy reads (Table 6 miss traffic).", &o.BytesReadMissed)
	ctr("_write_ops_total", "ops", "Block-granularity cache write operations.", &o.WriteOps)
	ctr("_write_fetches_total", "ops", "Partial writes of non-resident blocks that forced a fetch (Table 6 write-fetch row).", &o.WriteFetches)
	ctr("_write_bytes_total", "bytes", "Bytes written into the cache by applications (Table 5 file-write traffic).", &o.BytesWritten)
	ctr("_paging_read_ops_total", "ops", "Cache read operations issued by the VM system (code and initialized-data faults).", &o.PagingReadOps)
	ctr("_paging_read_misses_total", "ops", "Paging read operations that missed (Table 6 paging row).", &o.PagingReadMiss)
	ctr("_paging_read_bytes_total", "bytes", "Portion of read bytes that was paging traffic (Table 5 cacheable-paging row).", &o.PagingBytesRead)
	ctr("_paging_read_miss_bytes_total", "bytes", "Portion of missed bytes that was paging traffic.", &o.PagingBytesMiss)
}

// withLabel returns ls plus one more label, without aliasing ls's backing
// array (registrations share the caller's base label set).
func withLabel(ls metrics.Labels, key, value string) metrics.Labels {
	out := make(metrics.Labels, 0, len(ls)+1)
	out = append(out, ls...)
	return append(out, metrics.L(key, value))
}
