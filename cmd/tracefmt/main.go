// Command tracefmt converts traces between the binary and text formats,
// imports foreign trace dumps into the native format, and rescales traces
// with the modernize transform.
//
// Usage:
//
//	tracefmt trace1.srv0 > trace1.srv0.txt         # binary -> text
//	tracefmt -encode trace1.srv0.txt > trace1.bin  # text -> binary
//
//	tracefmt -import csv dump.csv > imported.bin   # foreign -> binary
//	tracefmt -import csv -map 'time=0,client=1,op=2,path=3,offset=4,length=5,unit=ms' dump.csv > t.bin
//	tracefmt -import strace strace.log > imported.bin
//
//	tracefmt -modernize 'size=8,rate=4,clients=4,files=2' trace.bin > scaled.bin
//	tracefmt -import csv -modernize 'size=8,rate=4' dump.csv > scaled.bin
//
// Imports and modernized traces are written as binary at the derived-trace
// header version; the import and rescale reports go to stderr. -import and
// -modernize compose in one invocation, and a plain conversion preserves
// the input's header version.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"spritefs/internal/trace"
	"spritefs/internal/traceio"
)

func main() {
	var (
		encode    = flag.Bool("encode", false, "encode text input back to binary")
		importFmt = flag.String("import", "", "import a foreign dump: csv | strace")
		mapSpec   = flag.String("map", "", "column mapping for -import csv, e.g. 'time=0,op=2,path=3,unit=ms'")
		modSpec   = flag.String("modernize", "", "rescale the trace, e.g. 'size=8,rate=4,clients=4,files=2,skew=5ms'")
		servers   = flag.Int("servers", 4, "server count for -import file placement")
		clients   = flag.Int("clients", 0, "client-id space for -import (0 = importer default)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracefmt [-encode] [-import csv|strace [-map spec]] [-modernize spec] tracefile")
		os.Exit(2)
	}
	if *encode && *importFmt != "" {
		fmt.Fprintln(os.Stderr, "tracefmt: -encode and -import are mutually exclusive")
		os.Exit(2)
	}
	if *mapSpec != "" && *importFmt != "csv" {
		fmt.Fprintln(os.Stderr, "tracefmt: -map only applies to -import csv")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *encode, *importFmt, *mapSpec, *modSpec, *servers, *clients); err != nil {
		fmt.Fprintln(os.Stderr, "tracefmt:", err)
		os.Exit(1)
	}
}

func run(path string, encode bool, importFmt, mapSpec, modSpec string, servers, clients int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	if importFmt != "" {
		recs, err := importForeign(f, importFmt, mapSpec, servers, clients)
		if err != nil {
			return err
		}
		if modSpec != "" {
			if recs, err = modernize(recs, modSpec); err != nil {
				return err
			}
		}
		return writeBinary(os.Stdout, recs, traceio.ImportVersion)
	}
	if modSpec != "" {
		// Modernize a native trace: read (either format), rescale, write
		// binary at the derived-trace version.
		src, err := openNative(f)
		if err != nil {
			return err
		}
		recs, err := trace.Collect(src)
		if err != nil {
			return err
		}
		if recs, err = modernize(recs, modSpec); err != nil {
			return err
		}
		return writeBinary(os.Stdout, recs, traceio.ImportVersion)
	}
	return convert(f, os.Stdout, encode)
}

// importForeign runs the chosen importer and prints its report to stderr.
func importForeign(in io.Reader, format, mapSpec string, servers, clients int) ([]trace.Record, error) {
	opt := traceio.Options{NumServers: servers, Clients: clients}
	var (
		recs []trace.Record
		rep  *traceio.ImportReport
		err  error
	)
	switch format {
	case "csv":
		m := traceio.DefaultCSVMapping()
		if mapSpec != "" {
			if m, err = traceio.ParseCSVMapping(mapSpec); err != nil {
				return nil, err
			}
		}
		recs, rep, err = traceio.ImportCSV(in, m, opt)
	case "strace":
		recs, rep, err = traceio.ImportStrace(in, opt)
	default:
		return nil, fmt.Errorf("unknown import format %q (want csv or strace)", format)
	}
	if err != nil {
		return nil, err
	}
	fmt.Fprint(os.Stderr, rep.String())
	return recs, nil
}

// modernize parses the profile, applies it, and reports to stderr.
func modernize(recs []trace.Record, spec string) ([]trace.Record, error) {
	prof, err := traceio.ParseProfile(spec)
	if err != nil {
		return nil, err
	}
	out, rep := traceio.Modernize(recs, prof)
	fmt.Fprint(os.Stderr, rep.String())
	return out, nil
}

// openNative opens a native trace of either encoding, sniffing text ('#')
// versus binary from the first byte.
func openNative(f io.Reader) (trace.Stream, error) {
	br := bufio.NewReaderSize(f, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		return nil, err
	}
	if first[0] == '#' {
		return trace.NewTextReader(br)
	}
	return trace.NewReader(br)
}

// writeBinary writes records as a binary trace at the given header version.
func writeBinary(out io.Writer, recs []trace.Record, ver uint16) error {
	bw := bufio.NewWriter(out)
	w, err := trace.NewWriterVersion(bw, ver)
	if err != nil {
		return err
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return bw.Flush()
}

// convert copies a whole trace from in to out, decoding binary to text or
// (with encode) text back to binary. The header version travels with the
// records, so a v2 text trace re-encodes as a v2 binary one.
func convert(in io.Reader, out io.Writer, encode bool) error {
	var src trace.Stream
	var sink interface {
		Write(*trace.Record) error
		Flush() error
	}
	if encode {
		r, err := trace.NewTextReader(in)
		if err != nil {
			return err
		}
		w, err := trace.NewWriterVersion(out, r.Version())
		if err != nil {
			return err
		}
		src, sink = r, w
	} else {
		r, err := trace.NewReader(in)
		if err != nil {
			return err
		}
		w, err := trace.NewTextWriterVersion(out, r.Version())
		if err != nil {
			return err
		}
		src, sink = r, w
	}
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := sink.Write(&rec); err != nil {
			return err
		}
	}
	return sink.Flush()
}
