// Package core is the reproduction's public façade: it packages the whole
// measurement study — the paper's primary contribution — as a library.
// A Study runs the two campaigns the paper describes: the eight 24-hour
// trace collections analyzed in Section 4 (Tables 1-3, Figures 1-4, plus
// the trace-driven consistency simulations of Tables 10-12), and the
// multi-day kernel-counter collection behind the Section 5 cache tables
// (Tables 4-9).
//
// Everything is deterministic given the trace number / seed, and every
// run can be scaled down (fewer hours, fewer clients) for quick
// experimentation; cmd/experiments drives full-scale runs.
package core

import (
	"time"

	"spritefs/internal/analysis"
	"spritefs/internal/cluster"
	"spritefs/internal/consistency"
	"spritefs/internal/faults"
	"spritefs/internal/trace"
	"spritefs/internal/workload"
)

// TraceResult bundles every Section 4 analysis of one trace, plus the
// trace-driven consistency simulations of Sections 5.5-5.6.
type TraceResult struct {
	TraceNum int
	Hours    float64

	Overall  *analysis.Overall
	Activity *analysis.UserActivity
	Access   *analysis.AccessPatterns
	Lifetime *analysis.Lifetimes
	Actions  *analysis.ConsistencyActions

	Stale60  consistency.StaleResult
	Stale3   consistency.StaleResult
	Overhead consistency.Overhead

	Records int
}

// TraceOptions scales a trace run.
type TraceOptions struct {
	// Hours of simulated time (the paper's traces are 24-hour).
	Hours float64
	// Scale shrinks the community: 1.0 is the full 40-client cluster;
	// 0.25 runs a quarter-size cluster for quick checks. Values <= 0
	// default to 1.0.
	Scale float64
	// SeedOffset perturbs the trace's seed (repeat runs).
	SeedOffset int64
}

// scaleParams shrinks the community proportionally.
func scaleParams(p workload.Params, scale float64) workload.Params {
	if scale <= 0 || scale >= 1 {
		return p
	}
	shrink := func(n int) int {
		v := int(float64(n) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	p.NumClients = shrink(p.NumClients)
	p.DailyUsers = shrink(p.DailyUsers)
	p.OccasionalUsers = shrink(p.OccasionalUsers)
	return p
}

// RunTrace executes trace configuration n (1..8) and all its analyses.
func RunTrace(n int, opts TraceOptions) (*TraceResult, error) {
	p := workload.TraceParams(n)
	p.Seed += opts.SeedOffset
	p = scaleParams(p, opts.Scale)
	hours := opts.Hours
	if hours <= 0 {
		hours = 24
	}

	cfg := cluster.DefaultConfig(p)
	cfg.SamplePeriod = 0 // Section 4 runs need no counter sampling
	cl := cluster.New(cfg)
	cl.Run(time.Duration(hours * float64(time.Hour)))

	res := &TraceResult{TraceNum: n, Hours: hours}
	res.Overall = analysis.NewOverall()
	res.Activity = analysis.NewUserActivity()
	res.Access = analysis.NewAccessPatterns()
	res.Lifetime = analysis.NewLifetimes()
	res.Actions = analysis.NewConsistencyActions()

	// Merge the per-server streams (scrubbing backup noise) exactly as
	// the paper's post-processing did, then run every analyzer in one
	// pass.
	merged, err := trace.Collect(trace.Merge(cl.PerServerStreams()...))
	if err != nil {
		return nil, err
	}
	res.Records = len(merged)
	if err := analysis.Run(trace.NewSliceStream(merged),
		res.Overall, res.Activity, res.Access, res.Lifetime, res.Actions); err != nil {
		return nil, err
	}

	shared := consistency.CollectShared(merged)
	res.Stale60 = consistency.SimulateStale(shared, 60*time.Second)
	res.Stale3 = consistency.SimulateStale(shared, 3*time.Second)
	res.Overhead = consistency.SimulateOverhead(shared)
	return res, nil
}

// CounterResult bundles the Section 5 counter-study tables.
type CounterResult struct {
	Days float64

	Table4  cluster.Table4
	Table5  cluster.Table5
	Table6  cluster.Table6
	Table7  cluster.Table7
	Table8  cluster.Table8
	Table9  cluster.Table9
	Table10 cluster.Table10
	Storage cluster.ServerStorage

	NetUtilization float64
}

// CounterOptions scales the counter campaign.
type CounterOptions struct {
	// Days of simulated time (the paper collected two weeks).
	Days float64
	// Scale shrinks the community as in TraceOptions.
	Scale float64
	Seed  int64
}

// RunCounterStudy reproduces the Section 5 measurement campaign: the
// cluster runs with counters sampled periodically and no tracing, and the
// tables are computed from the counters.
func RunCounterStudy(opts CounterOptions) *CounterResult {
	days := opts.Days
	if days <= 0 {
		days = 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 424242
	}
	p := workload.Default(seed)
	p.EmitBackupNoise = false
	// The paper's two-week counter window spanned the big-file class
	// projects too; the counter study therefore includes them (their
	// multi-megabyte inputs are what keep read miss ratios high even
	// with multi-megabyte caches — Section 5.2).
	p.BigSimUsers = 1
	p.SimInputMB = 6
	p.SimOutputMB = 2
	p = scaleParams(p, opts.Scale)

	cfg := cluster.DefaultConfig(p)
	cfg.CollectTrace = false
	cfg.SamplePeriod = time.Minute
	cl := cluster.New(cfg)
	dur := time.Duration(days * 24 * float64(time.Hour))
	cl.Run(dur)

	return &CounterResult{
		Days:           days,
		Table4:         cl.Table4Report(),
		Table5:         cl.Table5Report(),
		Table6:         cl.Table6Report(),
		Table7:         cl.Table7Report(),
		Table8:         cl.Table8Report(),
		Table9:         cl.Table9Report(),
		Table10:        cl.Table10Report(),
		Storage:        cl.ServerStorageReport(),
		NetUtilization: cl.Net.Utilization(dur),
	}
}

// FaultOptions configures the data-at-risk campaign.
type FaultOptions struct {
	// Hours of simulated time per run (default 4).
	Hours float64
	// Scale shrinks the community as in TraceOptions.
	Scale float64
	Seed  int64
	// Schedule is the fault schedule text (faults.Parse syntax). Empty
	// picks the default: one server crash per simulated hour, staggered
	// across the servers, each with a 30-second outage.
	Schedule string
	// WritebackDelays are the delayed-write windows swept; empty picks
	// the paper's framing: 5s, 30s (Sprite's choice), and 2m.
	WritebackDelays []time.Duration
}

// FaultRow is one writeback-delay setting's measured crash cost.
type FaultRow struct {
	WritebackDelay time.Duration
	Recovery       cluster.Recovery
}

// FaultResult is the data-at-risk study: the same community and the same
// fault schedule, replayed once per writeback-delay setting. Section 6's
// reliability argument — "users can lose at most 30 seconds of work" —
// reads off the MaxDirtyAge column, and the cost of shrinking that window
// reads off the writeback traffic in the regular tables.
type FaultResult struct {
	Hours    float64
	Schedule faults.Schedule
	Rows     []FaultRow
}

// RunFaultStudy measures data-at-risk under injected crashes across
// delayed-write settings.
func RunFaultStudy(opts FaultOptions) (*FaultResult, error) {
	hours := opts.Hours
	if hours <= 0 {
		hours = 4
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 424242
	}
	delays := opts.WritebackDelays
	if len(delays) == 0 {
		delays = []time.Duration{5 * time.Second, 30 * time.Second, 2 * time.Minute}
	}

	p := workload.Default(seed)
	p.EmitBackupNoise = false
	p = scaleParams(p, opts.Scale)
	nServers := cluster.DefaultConfig(p).NumServers

	var sched faults.Schedule
	if opts.Schedule != "" {
		var err error
		if sched, err = faults.Parse(opts.Schedule); err != nil {
			return nil, err
		}
	} else {
		sched = defaultFaultSchedule(hours, nServers)
	}

	res := &FaultResult{Hours: hours, Schedule: sched}
	for _, wb := range delays {
		cfg := cluster.DefaultConfig(p)
		cfg.CollectTrace = false
		cfg.SamplePeriod = 0
		cfg.WritebackDelay = wb
		cfg.Faults = sched
		cl := cluster.New(cfg)
		cl.Run(time.Duration(hours * float64(time.Hour)))
		res.Rows = append(res.Rows, FaultRow{WritebackDelay: wb, Recovery: cl.RecoveryReport()})
	}
	return res, nil
}

// defaultFaultSchedule crashes one server per simulated hour, round-robin,
// each outage 30 seconds — enough crashes to measure, spaced so every
// recovery completes before the next fault.
func defaultFaultSchedule(hours float64, nServers int) faults.Schedule {
	var s faults.Schedule
	for h := 0; float64(h) < hours; h++ {
		s.Events = append(s.Events, faults.Event{
			At:       time.Duration(h)*time.Hour + 30*time.Minute,
			Kind:     faults.ServerCrash,
			Target:   h % nServers,
			Duration: 30 * time.Second,
		})
	}
	return s
}
