package scale

import (
	"cmp"
	"slices"
	"sort"

	"spritefs/internal/sim"
	"spritefs/internal/workload"
)

// The placement layer decides where the cross-segment visible artifacts
// — system binaries, kernel images, group shared files — live in the
// topology. Homes are assigned by consistent hashing over sites: each
// artifact key hashes onto a ring of site virtual nodes, then onto one
// segment within the winning site. Memory is O(catalog × ring), both
// constants of the artifact classes and the site count — nothing scales
// with the client population, which is what keeps a million-client
// topology's placement at a few kilobytes. Adding or removing a site
// remaps only the ~1/sites of keys whose ring arcs changed hands; every
// other artifact keeps its home (the property that would make data
// migration incremental in a real deployment).

// artifactClass tags the cross-segment visible file classes.
type artifactClass uint8

const (
	classBinary artifactClass = iota
	classKernel
	classShared
)

// hash64 is the splitmix64 finalizer: a cheap, well-distributed stateless
// hash used for ring points and catalog keys. It is fixed for all time —
// placement homes are part of the deterministic simulation output.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// catalogKey identifies one artifact independent of where it lives: the
// class, the owning group (shared files only) and the index within the
// class. Keys, not file ids, are hashed — file ids encode the server a
// bootstrap happened to pick, which must not feed back into placement.
type catalogKey struct {
	class artifactClass
	group int16
	index int32
}

func (k catalogKey) hash() uint64 {
	return hash64(uint64(k.class)<<48 | uint64(uint16(k.group))<<32 | uint64(uint32(k.index)))
}

// ringVnodes is how many virtual nodes each site contributes to the hash
// ring. 64 keeps the per-site share within a few percent of uniform while
// the whole ring for a thousand sites still fits in one L2 cache line
// sweep.
const ringVnodes = 64

type ringPoint struct {
	point uint64
	site  int32
}

// hashRing is a consistent-hash ring over sites: sorted virtual-node
// points, each owning the arc that ends at it.
type hashRing struct {
	points []ringPoint
}

// newRing builds the ring for a site count. Point positions depend only
// on (site, vnode), so growing the ring from n to n+1 sites inserts the
// new site's points without moving anyone else's — the stability property
// the placement tests pin.
func newRing(sites int) hashRing {
	pts := make([]ringPoint, 0, sites*ringVnodes)
	for s := 0; s < sites; s++ {
		for v := 0; v < ringVnodes; v++ {
			pts = append(pts, ringPoint{point: hash64(uint64(s)<<20 | uint64(v)), site: int32(s)})
		}
	}
	slices.SortFunc(pts, func(a, b ringPoint) int {
		if c := cmp.Compare(a.point, b.point); c != 0 {
			return c
		}
		return cmp.Compare(a.site, b.site) // 64-bit collisions are ~impossible; break ties anyway
	})
	return hashRing{points: pts}
}

// lookup returns the site owning the first ring point at or after h,
// wrapping at the top of the ring.
func (r hashRing) lookup(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].point >= h })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].site)
}

// segSalt decorrelates the within-site segment choice from the site
// choice, so a key's segment is not a function of its ring position.
const segSalt = 0xa24baed4963ee407

// PlacedFile is one cross-segment visible artifact and its home.
type PlacedFile struct {
	Shard  int
	Server int16
	File   uint64
	Size   int64
}

// Placement maps the artifact catalog onto the topology by consistent
// hashing. It is built once after bootstrap, before the executor starts,
// and never mutated — shards read it concurrently without
// synchronization.
type Placement struct {
	topo   Topology
	homes  []PlacedFile
	bySite [][]int32 // catalog indices homed in each site
}

// buildPlacement hashes the artifact catalog onto the topology. The
// catalog shape (class counts) is taken from shard 0's registry — binary
// and kernel counts are bootstrap constants, group-shared counts vary a
// little per shard, and a key landing on a shard with fewer artifacts in
// its class wraps by modulo. Each key's home is its ring site, then a
// hash-chosen segment within that site, then whichever server the home
// segment's bootstrap put the artifact on.
func buildPlacement(topo Topology, shards []*Shard) *Placement {
	canon := shards[0].C.Registry
	var keys []catalogKey
	for i := range canon.Binaries {
		keys = append(keys, catalogKey{class: classBinary, index: int32(i)})
	}
	for i := range canon.KernelImages {
		keys = append(keys, catalogKey{class: classKernel, index: int32(i)})
	}
	for g := workload.Group(0); g < workload.NumGroups; g++ {
		for i := range canon.GroupShared[g] {
			keys = append(keys, catalogKey{class: classShared, group: int16(g), index: int32(i)})
		}
	}

	ring := newRing(topo.Sites)
	p := &Placement{
		topo:   topo,
		homes:  make([]PlacedFile, 0, len(keys)),
		bySite: make([][]int32, topo.Sites),
	}
	for _, k := range keys {
		h := k.hash()
		site := ring.lookup(h)
		seg := int(hash64(h^segSalt) % uint64(topo.SegsPerSite))
		shard := site*topo.SegsPerSite + seg
		sh := shards[shard]
		reg := sh.C.Registry
		var f uint64
		switch k.class {
		case classBinary:
			f = reg.Binaries[int(k.index)%len(reg.Binaries)].File
		case classKernel:
			f = reg.KernelImages[int(k.index)%len(reg.KernelImages)]
		default:
			files := reg.GroupShared[k.group]
			f = files[int(k.index)%len(files)]
		}
		srvIdx := int(f >> 48)
		if srvIdx >= len(sh.C.Servers) {
			srvIdx = 0
		}
		var size int64
		if fl := sh.C.Servers[srvIdx].Lookup(f); fl != nil {
			size = fl.Size
		}
		p.bySite[site] = append(p.bySite[site], int32(len(p.homes)))
		p.homes = append(p.homes, PlacedFile{Shard: shard, Server: int16(srvIdx), File: f, Size: size})
	}
	return p
}

// Len returns the catalog size: the number of placed artifacts. It is a
// function of the artifact classes only, not of the client population.
func (p *Placement) Len() int { return len(p.homes) }

// SiteFiles returns the catalog entries homed in one site (read-only).
func (p *Placement) SiteFiles(site int) []PlacedFile {
	out := make([]PlacedFile, 0, len(p.bySite[site]))
	for _, i := range p.bySite[site] {
		out = append(out, p.homes[i])
	}
	return out
}

// pickExcluding draws uniformly from the catalog indices in idxs,
// rejecting entries homed on shard `from`. A handful of retries covers
// the common case; the deterministic wrap-around scan guarantees a hit
// whenever one exists (all draws come from rng, so the sequence is a
// pure function of the shard's stream).
func (p *Placement) pickExcluding(rng *sim.Rand, idxs []int32, from int) (PlacedFile, bool) {
	if len(idxs) == 0 {
		return PlacedFile{}, false
	}
	for try := 0; try < 4; try++ {
		pf := p.homes[idxs[rng.Intn(len(idxs))]]
		if pf.Shard != from {
			return pf, true
		}
	}
	start := rng.Intn(len(idxs))
	for i := 0; i < len(idxs); i++ {
		pf := p.homes[idxs[(start+i)%len(idxs)]]
		if pf.Shard != from {
			return pf, true
		}
	}
	return PlacedFile{}, false
}

// PickRemote draws an artifact homed on any shard but `from`. With a
// hierarchical topology, an affinity-weighted coin first tries the
// caller's own site — crossing only the site tier — and falls back to
// the global catalog (usually crossing the WAN) when the site has
// nothing remote to offer. ok is false when every artifact is homed on
// the calling shard (pathological: a tiny catalog on a tiny topology).
func (p *Placement) PickRemote(rng *sim.Rand, from int, affinity float64) (PlacedFile, bool) {
	if len(p.homes) == 0 {
		return PlacedFile{}, false
	}
	if p.topo.Sites > 1 && affinity > 0 && rng.Bool(affinity) {
		if pf, ok := p.pickExcluding(rng, p.bySite[p.topo.SiteOf(from)], from); ok {
			return pf, true
		}
	}
	return p.pickAll(rng, from)
}

// pickAll draws from the whole catalog, rejecting the caller's shard.
func (p *Placement) pickAll(rng *sim.Rand, from int) (PlacedFile, bool) {
	n := len(p.homes)
	for try := 0; try < 4; try++ {
		pf := p.homes[rng.Intn(n)]
		if pf.Shard != from {
			return pf, true
		}
	}
	start := rng.Intn(n)
	for i := 0; i < n; i++ {
		pf := p.homes[(start+i)%n]
		if pf.Shard != from {
			return pf, true
		}
	}
	return PlacedFile{}, false
}
