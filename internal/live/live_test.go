package live

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"spritefs/internal/metrics"
)

// TestLiveSoakShort is the race-detector mini-soak: a real 2-second run of
// the full live stack — service on the wall clock, 8 agents over the
// in-process transport, live /metrics scrapes from a separate goroutine —
// asserting traffic flowed, nothing errored, and the report carries
// non-zero percentiles. `go test -race -run TestLiveSoakShort` is the
// concurrency gate for the whole package.
func TestLiveSoakShort(t *testing.T) {
	svc, err := NewService(ServiceConfig{Agents: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counters := NewCounters(8)
	counters.RegisterMetrics(svc.Cluster.Reg)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	defer svc.Drain()

	httpSrv, err := ServeHTTP("127.0.0.1:0", svc.WC, svc.Cluster.Reg)
	if err != nil {
		t.Fatal(err)
	}
	defer httpSrv.Close()

	fleet := NewFleet(FleetConfig{
		Agents: 8, Rate: 150, Deadline: 2 * time.Second, Seed: 1,
	}, svc, counters)
	if err := fleet.Start(); err != nil {
		t.Fatal(err)
	}

	// Scrape mid-run: the exporter must serve a consistent snapshot while
	// the cluster is under load.
	time.Sleep(1 * time.Second)
	body, ctype := scrape(t, "http://"+httpSrv.Addr()+"/metrics")
	if ctype != metrics.PrometheusContentType {
		t.Errorf("scrape Content-Type = %q, want %q", ctype, metrics.PrometheusContentType)
	}
	for _, want := range []string{"spritefs_live_agents 8", "spritefs_live_requests_total{verb=\"open\"}"} {
		if !strings.Contains(body, want) {
			t.Errorf("mid-run scrape missing %q", want)
		}
	}
	if hb, _ := scrape(t, "http://"+httpSrv.Addr()+"/healthz"); hb != "ok\n" {
		t.Errorf("healthz = %q, want ok", hb)
	}

	time.Sleep(1 * time.Second)
	fleet.Stop()

	rep := BuildReport(counters, 2*time.Second)
	if rep.Requests < 20 {
		t.Fatalf("soak completed only %d requests", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Errorf("soak saw %d errors:\n%s", rep.Errors, rep.Table())
	}
	var sawLatency bool
	for _, v := range rep.PerVerb {
		if v.Verb == VerbGetattr {
			continue // zero simulated cost; wall latency may round to ~0
		}
		if v.Count > 0 && (v.P50 <= 0 || v.P95 <= 0 || v.P99 <= 0) {
			t.Errorf("verb %s: zero percentile in %+v", v.Verb, v)
		}
		if v.P50 > 0 {
			sawLatency = true
		}
	}
	if !sawLatency {
		t.Error("no verb recorded non-zero latency percentiles")
	}
}

// TestDrainRejectsTraffic checks the shutdown path: after Drain, requests
// fail with ErrStopped and /metrics answers 503.
func TestDrainRejectsTraffic(t *testing.T) {
	svc, err := NewService(ServiceConfig{Agents: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	httpSrv, err := ServeHTTP("127.0.0.1:0", svc.WC, svc.Cluster.Reg)
	if err != nil {
		t.Fatal(err)
	}
	defer httpSrv.Close()

	d := NewDispatcher(svc.WC, svc.Exec)
	file := svc.AgentFiles(0)[0]
	if resp, err := d.Do(Request{Verb: VerbOpen, File: file.ID}, time.Second); err != nil || !resp.OK() {
		t.Fatalf("open before drain: err=%v resp=%+v", err, resp)
	}

	svc.Drain()
	if _, err := d.Do(Request{Verb: VerbGetattr, File: file.ID}, time.Second); err != ErrStopped {
		t.Fatalf("request after drain: err=%v, want ErrStopped", err)
	}
	resp, err := http.Get("http://" + httpSrv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/metrics after drain: status %d, want 503", resp.StatusCode)
	}
}

func scrape(t *testing.T, url string) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b), resp.Header.Get("Content-Type")
}
