package scale

import (
	"fmt"
	"time"

	"spritefs/internal/sim"
)

// MsgKind tags a cross-shard message.
type MsgKind uint8

// Message kinds: a remote read request, a remote write request, and the
// reply completing either.
const (
	RemoteRead MsgKind = iota
	RemoteWrite
	RemoteReply
)

var msgKindNames = [...]string{"remote-read", "remote-write", "remote-reply"}

// String returns the kind name.
func (k MsgKind) String() string {
	if int(k) < len(msgKindNames) {
		return msgKindNames[k]
	}
	return fmt.Sprintf("msg(%d)", uint8(k))
}

// Message is one unit of cross-shard communication. Messages are created
// inside a shard's round, routed at the exchange, and delivered into the
// destination shard's simulator at Arrive. The (Arrive, From, Seq) triple
// totally orders deliveries, which is what makes the parallel executor's
// exchange deterministic.
type Message struct {
	Send   sim.Time // virtual time the source emitted it
	Arrive sim.Time // Send + link latency + payload transmission
	From   int      // source shard
	To     int      // destination shard
	Seq    uint64   // per-source sequence number (tie-break)

	Kind MsgKind
	// Op is the original operation kind a RemoteReply completes.
	Op MsgKind
	// Client is the originating client id within the source segment.
	Client int32
	// File is the placed file operated on (destination shard's id space).
	File uint64
	// Server is the destination server within the target shard.
	Server int16
	// Bytes is the logical operation size (bytes read or written).
	Bytes int64
	// Payload is what this particular message carries across the
	// backbone: requests carry control bytes (plus the data for writes),
	// replies carry the read data (or a control-sized ack).
	Payload int64
	// Issued is when the original request left its client, preserved in
	// the reply so the source shard can record end-to-end latency.
	Issued sim.Time
}

// ctrlBytes is the backbone cost of a request/ack frame without data.
const ctrlBytes = 128

// LinkStats accounts one directed inter-segment link.
type LinkStats struct {
	Msgs  int64
	Bytes int64
}

// Router is the inter-segment backbone: it prices every cross-shard
// message and accounts per-link traffic. Pricing is layered, bottom up:
//
//  1. Flat topology: every link costs RouterConfig.Latency and transmits
//     at RouterConfig.BandwidthBps.
//  2. Hierarchical topology: an intra-site link costs one Site-tier hop;
//     a cross-site link store-and-forwards through source site backbone →
//     WAN trunk → destination site backbone, so its latency is
//     2·Site.Latency + WAN.Latency and its transmission time sums the
//     per-hop Payload/Bandwidth costs.
//  3. RouterConfig.LinkLatency, when set, overrides the latency of any
//     individual directed link (the bandwidth keeps its tier pricing).
//
// Whatever the layers produce becomes the per-link latency matrix the
// channel-clock executor uses as lookahead, so a WAN link's high price is
// also a wide parallelism window. Routing happens only at round exchanges
// on the coordinator goroutine, so Router needs no locking.
type Router struct {
	lat   [][]time.Duration // [from][to] store-and-forward latency
	bw    [][]float64       // [from][to] effective end-to-end bandwidth
	wan   [][]bool          // [from][to] link crosses the WAN tier
	links [][]LinkStats     // [from][to]

	msgs  int64
	bytes int64
	busy  time.Duration

	// Per-tier accounting: index 0 = site tier (intra-site and flat
	// links), 1 = WAN tier (cross-site links).
	tierMsgs  [2]int64
	tierBytes [2]int64
	tierBusy  [2]time.Duration
}

// NewRouter returns a router joining the topology's segments, pricing
// each directed link from the tier table (or uniformly from cfg for a
// flat topology).
func NewRouter(cfg RouterConfig, tiers TiersConfig, topo Topology) *Router {
	n := topo.NumShards()
	r := &Router{
		lat:   make([][]time.Duration, n),
		bw:    make([][]float64, n),
		wan:   make([][]bool, n),
		links: make([][]LinkStats, n),
	}
	for i := 0; i < n; i++ {
		r.lat[i] = make([]time.Duration, n)
		r.bw[i] = make([]float64, n)
		r.wan[i] = make([]bool, n)
		r.links[i] = make([]LinkStats, n)
		for j := 0; j < n; j++ {
			lat := cfg.Latency
			bw := cfg.BandwidthBps
			if topo.Sites > 1 && i != j {
				if topo.SameSite(i, j) {
					lat = tiers.Site.Latency
					bw = tiers.Site.BandwidthBps
				} else {
					// Store-and-forward: site backbone up, WAN trunk
					// across, site backbone down. The effective bandwidth
					// is the harmonic combination of the three hops, so
					// transmission time stays Payload/bw like a flat link.
					lat = 2*tiers.Site.Latency + tiers.WAN.Latency
					bw = 1 / (2/tiers.Site.BandwidthBps + 1/tiers.WAN.BandwidthBps)
					r.wan[i][j] = true
				}
			}
			if cfg.LinkLatency != nil && i != j {
				lat = cfg.LinkLatency(i, j)
			}
			r.lat[i][j] = lat
			r.bw[i][j] = bw
		}
	}
	return r
}

// MinLatency is the directed link's store-and-forward latency: the floor
// on how long a message from one shard takes to reach another, and so the
// executor's per-link lookahead. Payload transmission only adds to it.
func (r *Router) MinLatency(from, to int) time.Duration { return r.lat[from][to] }

// CrossesWAN reports whether the directed link traverses the WAN tier.
func (r *Router) CrossesWAN(from, to int) bool { return r.wan[from][to] }

// Route prices m, stamps its arrival time, and accounts the transfer.
func (r *Router) Route(m *Message) {
	if m.Payload < 0 {
		panic(fmt.Sprintf("scale: negative payload %d", m.Payload))
	}
	xmit := time.Duration(float64(m.Payload) / r.bw[m.From][m.To] * float64(time.Second))
	m.Arrive = m.Send + r.lat[m.From][m.To] + xmit
	r.links[m.From][m.To].Msgs++
	r.links[m.From][m.To].Bytes += m.Payload
	r.msgs++
	r.bytes += m.Payload
	r.busy += xmit
	tier := 0
	if r.wan[m.From][m.To] {
		tier = 1
	}
	r.tierMsgs[tier]++
	r.tierBytes[tier] += m.Payload
	r.tierBusy[tier] += xmit
}

// Msgs returns the total messages routed.
func (r *Router) Msgs() int64 { return r.msgs }

// Bytes returns the total payload bytes routed.
func (r *Router) Bytes() int64 { return r.bytes }

// Busy returns cumulative backbone transmission time; against elapsed
// virtual time it gives backbone utilization.
func (r *Router) Busy() time.Duration { return r.busy }

// TierTraffic returns one tier's accounting: messages, payload bytes and
// cumulative transmission time. wan=false is the site tier (intra-site
// and flat-topology links), wan=true the inter-site WAN trunk.
func (r *Router) TierTraffic(wan bool) (msgs, bytes int64, busy time.Duration) {
	tier := 0
	if wan {
		tier = 1
	}
	return r.tierMsgs[tier], r.tierBytes[tier], r.tierBusy[tier]
}

// Link returns a copy of one directed link's accounting.
func (r *Router) Link(from, to int) LinkStats { return r.links[from][to] }
