package server

import (
	"time"

	"spritefs/internal/fscache"
)

// Storage is a file server's memory cache and disk. The measured cluster's
// main server was a Sun 4 with 128 MB whose cache "automatically adjusts
// ... to fill nearly all of memory"; writebacks arriving from clients sit
// in the server cache and go to disk "an additional 30 seconds later".
// The paper's Table 7 notes that this cache further reduces the read
// traffic the server's *disk* sees — Storage is the instrumentation for
// that claim, plus the disk-latency model behind the Section 5.3
// local-disk comparison (a 1991 server disk access costs 20-30 ms).
type Storage struct {
	cache *fscache.Cache

	// DiskAccess is the modeled access time of the server's disk.
	DiskAccess time.Duration

	st StorageStats
}

// StorageStats counts server cache and disk activity.
type StorageStats struct {
	ReadBlocks     int64 // client block fetches served
	ReadMissBlocks int64 // ... that had to touch the disk
	WriteBlocks    int64 // writeback blocks accepted into the cache
	DiskReads      int64
	DiskWrites     int64
	DiskBusy       time.Duration

	// Crash losses: server-cache bytes that were dirty (not yet synced to
	// disk) when the server crashed, and the oldest such byte's age.
	LostDirtyBytes  int64
	MaxLostDirtyAge time.Duration
}

// ReadHitPct returns the server cache hit rate for client fetches.
func (s *StorageStats) ReadHitPct() float64 {
	if s.ReadBlocks == 0 {
		return 0
	}
	return 100 * float64(s.ReadBlocks-s.ReadMissBlocks) / float64(s.ReadBlocks)
}

// NewStorage returns a server store with the given cache capacity in
// blocks (the paper's main server: ~128 MB ≈ 32768 blocks).
func NewStorage(capacityBlocks int) *Storage {
	return &Storage{
		cache:      fscache.New(capacityBlocks),
		DiskAccess: 25 * time.Millisecond, // 20-30 ms in 1991
	}
}

// Stats returns a snapshot of the counters.
func (s *Storage) Stats() StorageStats { return s.st }

// CacheBlocks returns the number of resident server-cache blocks.
func (s *Storage) CacheBlocks() int { return s.cache.NumBlocks() }

// ServeRead serves one client block fetch: a server-cache hit is free, a
// miss costs one disk read. It returns the disk time incurred.
func (s *Storage) ServeRead(file uint64, block int64, fileSize int64, now time.Duration) time.Duration {
	s.st.ReadBlocks++
	off := block * fscache.BlockSize
	n := fileSize - off
	if n > fscache.BlockSize {
		n = fscache.BlockSize
	}
	if n <= 0 {
		return 0
	}
	res := s.cache.Read(file, off, n, fileSize, fscache.Attr{}, now)
	if res.MissBytes == 0 {
		return 0
	}
	s.st.ReadMissBlocks++
	s.st.DiskReads++
	s.st.DiskBusy += s.DiskAccess
	return s.DiskAccess
}

// AcceptWrite takes one writeback block into the server cache; the block
// becomes dirty and goes to disk when Clean runs after the server's own
// 30-second delay.
func (s *Storage) AcceptWrite(file uint64, block int64, bytes int64, now time.Duration) {
	if bytes <= 0 {
		return
	}
	s.st.WriteBlocks++
	off := block * fscache.BlockSize
	s.cache.Write(file, off, bytes, off, fscache.Attr{}, now)
}

// Clean flushes server-cache blocks dirty past the 30-second server delay
// to disk and returns the disk time spent.
func (s *Storage) Clean(now time.Duration) time.Duration {
	wbs := s.cache.Clean(now)
	var busy time.Duration
	for range wbs {
		s.st.DiskWrites++
		s.st.DiskBusy += s.DiskAccess
		busy += s.DiskAccess
	}
	return busy
}

// Drop discards a deleted file's blocks from the server cache (dirty data
// for a deleted file never reaches the disk — the server-side half of the
// delayed-write savings).
func (s *Storage) Drop(file uint64) {
	s.cache.Delete(file)
}

// Crash discards the server cache — it is volatile memory — and records
// what was lost. Blocks already synced to disk cost only refetches; dirty
// blocks are gone for good, bounded by the server's own 30-second delay.
func (s *Storage) Crash(now time.Duration) fscache.CrashLoss {
	loss := s.cache.DiscardAll(now)
	s.st.LostDirtyBytes += loss.DirtyBytes
	if loss.MaxDirtyAge > s.st.MaxLostDirtyAge {
		s.st.MaxLostDirtyAge = loss.MaxDirtyAge
	}
	return loss
}

// CheckInvariants audits the server cache's internal accounting.
func (s *Storage) CheckInvariants() error {
	return s.cache.CheckInvariants()
}
