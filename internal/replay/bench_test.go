package replay

import (
	"fmt"
	"testing"

	"spritefs/internal/trace"
)

// BenchmarkReplayThroughput measures replay rate in records per second —
// the figure of merit for as-fast-as-possible trace experiments (the
// paper's simulators chewed through multi-day traces; ours should replay
// hours of trace in milliseconds).
func BenchmarkReplayThroughput(b *testing.B) {
	live := capturedTrace(b)
	cfg := replayCfg("bench")
	cfg.AsFastAsPossible = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, trace.NewSliceStream(live.recs))
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Applied == 0 {
			b.Fatal("no records applied")
		}
	}
	b.StopTimer()
	total := float64(b.N) * float64(len(live.recs))
	b.ReportMetric(total/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkShardedReplay partitions the captured trace by client and
// replays every shard hermetically — the end-to-end macro path the
// allocation-free scheduler, pooled caches and pooled messages feed.
func BenchmarkShardedReplay(b *testing.B) {
	live := capturedTrace(b)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := replayCfg("bench-sharded")
			cfg.AsFastAsPossible = true
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := RunSharded(live.recs, cfg, shards, shards)
				if err != nil {
					b.Fatal(err)
				}
				var applied int64
				for _, r := range results {
					applied += r.Stats.Applied
				}
				if applied == 0 {
					b.Fatal("no records applied")
				}
			}
			b.StopTimer()
			total := float64(b.N) * float64(len(live.recs))
			b.ReportMetric(total/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkReplayPaced replays with real timestamps (virtual time advances
// through the full trace horizon), exercising the event-loop pacing path.
func BenchmarkReplayPaced(b *testing.B) {
	live := capturedTrace(b)
	cfg := replayCfg("bench-paced")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, trace.NewSliceStream(live.recs)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := float64(b.N) * float64(len(live.recs))
	b.ReportMetric(total/b.Elapsed().Seconds(), "records/s")
}
