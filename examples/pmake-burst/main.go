// pmake-burst demonstrates the paper's headline migration result: process
// migration multiplies a user's short-term file throughput by roughly a
// factor of six, yet migrated processes cache *better* than average
// because the host-selection policy keeps reusing the same warm machines.
//
// The example runs the same community twice — once with migration-heavy
// pmake users, once with migration disabled — and compares Table 2's
// burst metrics and Table 6's migrated-column hit ratios.
//
//	go run ./examples/pmake-burst
package main

import (
	"fmt"
	"log"
	"time"

	"spritefs/internal/analysis"
	"spritefs/internal/cluster"
	"spritefs/internal/trace"
	"spritefs/internal/workload"
)

func run(migration bool) (*analysis.UserActivity, cluster.Table6, workload.Stats) {
	p := workload.Default(99)
	p.NumClients = 12
	p.DailyUsers = 8
	p.OccasionalUsers = 6
	// Make every daily user a pmake user so bursts are easy to see.
	if migration {
		p.MigrationUserFrac = 1.0
	} else {
		p.MigrationUserFrac = 0
	}
	for g := workload.Group(0); g < workload.NumGroups; g++ {
		p.AppMix[g][workload.AppPmake] *= 4
	}

	cfg := cluster.DefaultConfig(p)
	cfg.NumServers = 2
	c := cluster.New(cfg)
	c.Run(3 * time.Hour)

	ua := analysis.NewUserActivity()
	if err := analysis.Run(trace.Merge(c.PerServerStreams()...), ua); err != nil {
		log.Fatal(err)
	}
	return ua, c.Table6Report(), c.Engine.Stats()
}

func main() {
	fmt.Println("running with process migration...")
	withUA, withT6, withStats := run(true)
	fmt.Println("running without migration...")
	noUA, _, _ := run(false)

	fmt.Printf("\n%d processes migrated; %d evicted when owners returned\n",
		withStats.Migrations, withStats.Evictions)

	fmt.Println("\n10-second interval throughput (Table 2's burst view):")
	fmt.Printf("  all users, with migration:      %6.1f KB/s per active user\n", withUA.TenSecAll.AvgThroughputKBs)
	fmt.Printf("  migrated processes only:        %6.1f KB/s per active user\n", withUA.TenSecMigrated.AvgThroughputKBs)
	fmt.Printf("  all users, migration disabled:  %6.1f KB/s per active user\n", noUA.TenSecAll.AvgThroughputKBs)
	if base := withUA.TenSecAll.AvgThroughputKBs; base > 0 {
		fmt.Printf("  => migration burst factor: %.1fx (paper: ~6x)\n",
			withUA.TenSecMigrated.AvgThroughputKBs/base)
	}

	fmt.Println("\nCache effectiveness for migrated processes (Table 6's surprise):")
	fmt.Printf("  read miss ratio, all traffic:       %5.1f%%\n", withT6.All.ReadMissPct)
	fmt.Printf("  read miss ratio, migrated traffic:  %5.1f%%\n", withT6.Migrated.ReadMissPct)
	fmt.Println("  (the paper found migrated processes MISS LESS than average, thanks")
	fmt.Println("   to the reuse bias in idle-host selection keeping target caches warm)")
}
