// trace-import demonstrates the foreign-trace pipeline end to end:
// import a CSV activity dump into the native trace format, rescale it
// with the modernize transform, and replay the result under a cache
// sweep — twice, at different worker counts, to show that the imported
// trace replays byte-identically regardless of parallelism.
//
// The same pipeline is available from the command line:
//
//	tracefmt -import csv -modernize 'size=4,rate=2,clients=2' dump.csv > t.bin
//	replay -trace t.bin -speed 0 -sweep cache=256,1024
//
//	go run ./examples/trace-import
package main

import (
	"fmt"
	"log"
	"strings"

	"spritefs/internal/replay"
	"spritefs/internal/traceio"
)

// dump is the kind of CSV a site's activity logger might emit: seconds
// since start, a workstation name, an operation, a path, and optional
// offset/length columns. This matches traceio.DefaultCSVMapping.
const dump = `# time,client,op,path,offset,length
0.000,ws1,open,/home/a/thesis.tex,,
0.015,ws1,read,/home/a/thesis.tex,0,8192
0.030,ws1,read,/home/a/thesis.tex,8192,8192
0.045,ws2,open,/home/b/build.log,,
0.060,ws2,write,/home/b/build.log,0,1024
0.075,ws1,close,/home/a/thesis.tex,,
0.090,ws2,write,/home/b/build.log,1024,1024
0.105,ws2,seek,/home/b/build.log,0,
0.120,ws2,read,/home/b/build.log,,512
0.135,ws2,close,/home/b/build.log,,
0.150,ws3,read,/usr/lib/libc.so,0,65536
0.165,ws1,delete,/tmp/scratch.o,,
`

func main() {
	// Import: foreign CSV -> native records, with the importer's report.
	recs, irep, err := traceio.ImportCSV(strings.NewReader(dump),
		traceio.DefaultCSVMapping(), traceio.Options{NumServers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(irep.String())

	// Modernize: 1991-era sizes and rates scaled toward a modern
	// workload — 4x larger transfers, 2x the request rate, twice the
	// client population.
	prof, err := traceio.ParseProfile("size=4,rate=2,clients=2,files=2")
	if err != nil {
		log.Fatal(err)
	}
	recs, mrep := traceio.Modernize(recs, prof)
	fmt.Print(mrep.String())

	// Replay the modernized trace under a cache sweep, once sequentially
	// and once with 4 workers; the channel-clock executor guarantees the
	// reports are identical.
	cfgs := []replay.Config{
		{Name: "cache=256", AsFastAsPossible: true, FixedCachePages: 256},
		{Name: "cache=1024", AsFastAsPossible: true, FixedCachePages: 1024},
		{Name: "nocache", AsFastAsPossible: true, FixedCachePages: -1},
	}
	seq, err := replay.RunSweep(recs, cfgs, 1)
	if err != nil {
		log.Fatal(err)
	}
	par, err := replay.RunSweep(recs, cfgs, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(replay.SweepTable(seq))
	if replay.SweepTable(seq).TSV() != replay.SweepTable(par).TSV() {
		log.Fatal("worker counts disagreed — determinism violated")
	}
	fmt.Printf("replayed %d records; 1-worker and 4-worker sweeps byte-identical\n", len(recs))
}
