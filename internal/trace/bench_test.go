package trace

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func BenchmarkWriterThroughput(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	rec := Record{Time: time.Second, Kind: KindRead, File: 7, Handle: 9, Length: 4096}
	b.SetBytes(recordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(&rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderThroughput(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	rec := Record{Time: time.Second, Kind: KindRead, File: 7, Length: 4096}
	const n = 100000
	for i := 0; i < n; i++ {
		w.Write(&rec)
	}
	w.Flush()
	data := buf.Bytes()
	b.SetBytes(recordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i += n {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkMerge4Way(b *testing.B) {
	const per = 10000
	mk := func(start int) []Record {
		recs := make([]Record, per)
		for i := range recs {
			recs[i] = Record{Time: time.Duration(start+i*4) * time.Millisecond, Kind: KindOpen}
		}
		return recs
	}
	parts := [][]Record{mk(0), mk(1), mk(2), mk(3)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streams := make([]Stream, len(parts))
		for j := range parts {
			streams[j] = NewSliceStream(parts[j])
		}
		m := Merge(streams...)
		for {
			if _, err := m.Next(); err != nil {
				break
			}
		}
	}
}
