// Package client implements the Sprite client kernel as the workload sees
// it: the file-system call layer (open, read, write, seek, close, create,
// delete, truncate, fsync, directory reads) wired to the client block
// cache, the virtual memory system, the shared network and the file
// servers. Every kernel call that the paper's instrumentation logged is
// emitted as a trace record here, and the 5-second cache cleaner daemon,
// the FS/VM memory trading, and the consistency call-backs (recall,
// cache disabling) are all driven from this layer.
package client

import (
	"fmt"
	"time"

	"spritefs/internal/fscache"
	"spritefs/internal/netsim"
	"spritefs/internal/server"
	"spritefs/internal/sim"
	"spritefs/internal/trace"
	"spritefs/internal/vm"
)

// Tracer receives trace records as kernel calls execute. The cluster layer
// provides one that appends to per-server trace files.
type Tracer interface {
	Emit(rec trace.Record)
}

// NopTracer discards records (used when only counters are being collected,
// as in the paper's two-week counter study).
type NopTracer struct{}

// Emit implements Tracer.
func (NopTracer) Emit(trace.Record) {}

// Coordinator performs cross-client consistency actions on behalf of the
// server. The cluster layer implements it.
type Coordinator interface {
	// RecallFrom flushes the named client's dirty data for file to the
	// server (the server recalls dirty data from the last writer).
	RecallFrom(client int32, file uint64)
	// DisableCaching tells clients to flush and bypass their caches for
	// file (concurrent write-sharing began).
	DisableCaching(clients []int32, file uint64)
}

// ConsistencyMode selects how the client keeps its cache consistent.
type ConsistencyMode int

const (
	// ConsistencySprite is the measured system's "perfect" consistency:
	// version timestamps at open, dirty-data recall, cache disabling
	// under concurrent write-sharing.
	ConsistencySprite ConsistencyMode = iota
	// ConsistencyPoll is the weaker NFS-style scheme the paper simulated
	// in Section 5.5: cached data is trusted for a fixed validity window;
	// the first access after expiry revalidates with the server; writes
	// go through to the server almost immediately. Running it LIVE (the
	// paper could only estimate from traces) lets the cluster count the
	// stale reads users would actually have seen.
	ConsistencyPoll
)

// Config sizes one client workstation.
type Config struct {
	ID int32
	// MemoryPages is physical memory in 4 KB pages (24-32 MB in the
	// measured cluster).
	MemoryPages int
	// InitialCachePages is the file cache's starting size.
	InitialCachePages int
	// MinCachePages is the floor below which VM pressure cannot shrink
	// the cache.
	MinCachePages int
	// GrowChunk is how many pages the cache requests per growth attempt.
	GrowChunk int
	// FixedCachePages pins the cache at a constant size, disabling the
	// dynamic FS/VM trading (used by the cache-size sweep, which
	// reproduces the BSD study's fixed-size predictions).
	FixedCachePages int
	// Consistency selects the cache-consistency scheme.
	Consistency ConsistencyMode
	// PollInterval is the validity window under ConsistencyPoll (the
	// paper simulated 3 s and 60 s). Zero defaults to 60 s.
	PollInterval time.Duration
}

// DefaultConfig returns a 24 MB workstation matching the paper's average
// client, with the cache starting small and growing on demand.
func DefaultConfig(id int32) Config {
	return Config{
		ID:                id,
		MemoryPages:       24 << 20 / vm.PageSize,
		InitialCachePages: 256, // 1 MB; grows toward its "natural" size
		MinCachePages:     64,
		GrowChunk:         64,
	}
}

type handle struct {
	id       uint64
	file     uint64
	read     bool
	write    bool
	pos      int64
	user     int32
	proc     int32
	migrated bool
	openedAt time.Duration
	wrote    bool // wrote at least once (dirty-at-close hint for the server)
	shared   bool // opened (or switched) uncacheable due to write-sharing
}

// Client is one diskless workstation.
type Client struct {
	cfg    Config
	sim    *sim.Sim
	net    *netsim.Network
	route  func(file uint64) *server.Server
	home   *server.Server
	coord  Coordinator
	tracer Tracer

	Cache *fscache.Cache
	Mem   *vm.Memory
	VM    *vm.System

	handles    map[uint64]*handle
	nextHandle uint64
	// hFree recycles closed handle structs; opens and closes are among the
	// most frequent kernel calls the workload issues.
	hFree    []*handle
	versions map[uint64]uint64

	// Poll-mode state: when each file's cached data was last validated,
	// and the stale reads the weak scheme served (counted omnisciently).
	validated  map[uint64]time.Duration
	staleReads int64
	staleBytes int64
	pollRPCs   int64

	// Pass-through byte counters (Table 5's uncacheable rows).
	sharedReadBytes  int64
	sharedWriteBytes int64
	dirReadBytes     int64

	// bytesWrittenBack counts every byte shipped to any server via
	// WriteBack — the client side of the conservation invariant the fault
	// harness checks against the servers' WriteBackBytes counters.
	bytesWrittenBack int64

	// epochs tracks the restart generation last seen per server; a
	// mismatch on the next contact triggers the recovery protocol
	// (recovery.go).
	epochs map[int16]uint64
	rec    RecoveryStats

	cleaner *sim.Ticker
}

// New assembles a client. route maps file ids to their server; home is the
// server on which this client creates new files (the measured cluster
// concentrated most traffic on one Sun 4 server). The coordinator may be
// set later via SetCoordinator (the cluster wires clients and coordinator
// together after constructing both).
func New(cfg Config, s *sim.Sim, net *netsim.Network, route func(uint64) *server.Server, home *server.Server, tracer Tracer) *Client {
	if cfg.FixedCachePages > 0 {
		cfg.InitialCachePages = cfg.FixedCachePages
		cfg.MinCachePages = cfg.FixedCachePages
		if cfg.MemoryPages < cfg.FixedCachePages {
			cfg.MemoryPages = cfg.FixedCachePages
		}
	}
	if cfg.MemoryPages <= 0 || cfg.InitialCachePages < cfg.MinCachePages || cfg.MinCachePages < 1 {
		panic(fmt.Sprintf("client: bad config %+v", cfg))
	}
	if cfg.GrowChunk < 1 {
		cfg.GrowChunk = 1
	}
	if tracer == nil {
		tracer = NopTracer{}
	}
	if home == nil {
		panic("client: nil home server")
	}
	c := &Client{
		cfg:       cfg,
		sim:       s,
		net:       net,
		route:     route,
		home:      home,
		tracer:    tracer,
		Cache:     fscache.New(cfg.InitialCachePages),
		Mem:       vm.NewMemory(cfg.MemoryPages, cfg.InitialCachePages, cfg.MinCachePages),
		handles:   make(map[uint64]*handle),
		versions:  make(map[uint64]uint64),
		validated: make(map[uint64]time.Duration),
		epochs:    make(map[int16]uint64),
	}
	if c.cfg.PollInterval <= 0 {
		c.cfg.PollInterval = 60 * time.Second
	}
	c.VM = vm.NewSystem(c.Mem, vm.IO{
		CodeIn:     func(f uint64, off, n int64, mig bool) { c.pageInViaCache(f, off, n, mig) },
		DataIn:     func(f uint64, off, n int64, mig bool) { c.pageInViaCache(f, off, n, mig) },
		BackingIn:  func(n int64, mig bool) { c.net.RPC(c.cfg.ID, netsim.PagingRead, n) },
		BackingOut: func(n int64, mig bool) { c.net.RPC(c.cfg.ID, netsim.PagingWrite, n) },
	})
	return c
}

// ID returns the workstation id.
func (c *Client) ID() int32 { return c.cfg.ID }

// SetCoordinator wires the cross-client consistency callbacks.
func (c *Client) SetCoordinator(coord Coordinator) { c.coord = coord }

// SharedBytes returns pass-through bytes (reads, writes) for write-shared
// files, plus directory read bytes — the uncacheable raw traffic.
func (c *Client) SharedBytes() (readB, writeB, dirB int64) {
	return c.sharedReadBytes, c.sharedWriteBytes, c.dirReadBytes
}

// StartCleaner launches the 5-second delayed-write daemon, jittered so the
// cluster's daemons do not fire in lockstep. The first firing is scheduled
// relative to the current virtual time, so clients brought up mid-run
// (trace replay materializes workstations at their first record) start
// their daemons safely.
func (c *Client) StartCleaner() {
	if c.cleaner != nil {
		return
	}
	offset := time.Duration(c.cfg.ID%5) * time.Second
	c.cleaner = c.sim.Every(c.sim.Now()+offset, fscache.CleanerPeriod, func() {
		c.ship(c.Cache.Clean(c.sim.Now()))
	})
}

// StopCleaner halts the daemon (end of measurement).
func (c *Client) StopCleaner() {
	if c.cleaner != nil {
		c.cleaner.Stop()
		c.cleaner = nil
	}
}

// ship transfers dirty blocks to their servers.
func (c *Client) ship(wbs []fscache.Writeback) {
	for _, wb := range wbs {
		c.shipOne(c.route(wb.File), wb, c.sim.Now())
	}
}

// shipOne sends one writeback block to its server and returns the RPC
// latency. Every WriteBack in the system flows through here, so
// bytesWrittenBack is exact.
func (c *Client) shipOne(srv *server.Server, wb fscache.Writeback, now time.Duration) time.Duration {
	lat := c.net.RPCTo(srv.ID(), c.cfg.ID, netsim.FileWrite, wb.Bytes)
	srv.WriteBack(wb.File, c.cfg.ID, wb.Block, wb.Bytes, now)
	c.bytesWrittenBack += wb.Bytes
	if f := srv.Lookup(wb.File); f != nil {
		c.versions[wb.File] = f.Version
	}
	return lat
}

// BytesWrittenBack returns the total bytes this client has shipped to
// servers via writeback RPCs.
func (c *Client) BytesWrittenBack() int64 { return c.bytesWrittenBack }

// maybeGrow lets the file cache claim more memory when full: free pages
// first, then VM pages idle past the 20-minute threshold.
func (c *Client) maybeGrow() {
	if c.cfg.FixedCachePages > 0 || c.Cache.NumBlocks() < c.Cache.Capacity() {
		return
	}
	now := c.sim.Now()
	granted, fromVM := c.Mem.AcquireFS(c.cfg.GrowChunk, c.VM.IdlePages(now))
	if fromVM > 0 {
		c.VM.DropIdle(fromVM, now)
	}
	if granted > 0 {
		c.Cache.GrowBy(granted)
	}
}

// syncCacheShare shrinks the cache if the VM system claimed pages from it.
func (c *Client) syncCacheShare() {
	target := c.Mem.FSPages()
	if target < c.Cache.Capacity() {
		c.ship(c.Cache.SetCapacity(target, true, c.sim.Now()))
	}
}

// pageInViaCache services a code or initialized-data fault through the
// file cache (Sprite checks the file cache on these faults).
func (c *Client) pageInViaCache(file uint64, offset, n int64, migrated bool) {
	srv := c.route(file)
	f := srv.Lookup(file)
	if f == nil || offset >= f.Size {
		// Unknown executable image: fault straight from the server.
		c.net.RPCTo(srv.ID(), c.cfg.ID, netsim.PagingRead, n)
		return
	}
	if offset+n > f.Size {
		n = f.Size - offset
	}
	if n <= 0 {
		return
	}
	c.maybeGrow()
	attr := fscache.Attr{Paging: true, Migrated: migrated}
	res := c.Cache.Read(file, offset, n, f.Size, attr, c.sim.Now())
	c.ship(res.Evicted)
	if res.MissBytes > 0 {
		c.net.RPCTo(srv.ID(), c.cfg.ID, netsim.PagingRead, res.MissBytes)
		c.Cache.AddMissBytes(attr, res.MissBytes)
		for _, idx := range res.MissIdx {
			srv.ServeBlock(file, idx, c.sim.Now())
		}
	}
}

func (c *Client) emit(kind trace.Kind, h *handle, file uint64, flags uint8, offset, length, size int64, user, proc int32) {
	rec := trace.Record{
		Time:   c.sim.Now(),
		Kind:   kind,
		Flags:  flags,
		Server: c.route(file).ID(),
		Client: c.cfg.ID,
		User:   user,
		Proc:   proc,
		File:   file,
		Offset: offset,
		Length: length,
		Size:   size,
	}
	if h != nil {
		rec.Handle = h.id
	}
	c.tracer.Emit(rec)
}

func migFlag(migrated bool) uint8 {
	if migrated {
		return trace.FlagMigrated
	}
	return 0
}

// Create makes a new file (dir selects a directory) on the client's home
// server and returns its id.
func (c *Client) Create(user, proc int32, dir, migrated bool) uint64 {
	f := c.home.Create(dir, c.sim.Now())
	c.net.RPCTo(c.home.ID(), c.cfg.ID, netsim.Control, 0)
	var flags uint8 = migFlag(migrated)
	if dir {
		flags |= trace.FlagDirectory
	}
	c.emit(trace.KindCreate, nil, f.ID, flags, 0, 0, 0, user, proc)
	return f.ID
}

// Open opens file for the given access modes and returns a handle id and
// the open latency.
func (c *Client) Open(user, proc int32, file uint64, read, write, migrated bool) (uint64, time.Duration, error) {
	srv := c.route(file)
	lat := c.maybeRecover(srv) // lazy restart detection before new state lands
	now := c.sim.Now()
	reply, err := srv.Open(file, c.cfg.ID, write, now)
	if err != nil {
		return 0, lat, err
	}
	lat += c.net.RPCTo(srv.ID(), c.cfg.ID, netsim.Control, 0)

	// Consistency action: recall dirty data from the last writer. The
	// polling scheme has no recall machinery — stale data simply lingers.
	if c.cfg.Consistency == ConsistencySprite &&
		reply.RecallFrom != server.NoClient && reply.RecallFrom != c.cfg.ID && c.coord != nil {
		c.coord.RecallFrom(reply.RecallFrom, file)
		if f := srv.Lookup(file); f != nil {
			reply.Version = f.Version
			reply.Size = f.Size
		}
	}
	// Consistency action: write-sharing began; other clients flush+bypass.
	if c.cfg.Consistency == ConsistencySprite && len(reply.DisableOn) > 0 && c.coord != nil {
		c.coord.DisableCaching(reply.DisableOn, file)
	}

	// Version check: flush stale cached data (Sprite only — the polling
	// scheme revalidates lazily on access instead).
	if c.cfg.Consistency == ConsistencySprite {
		if v, ok := c.versions[file]; ok && v != reply.Version {
			if c.Cache.Invalidate(file) > 0 {
				srv.NoteInvalidation()
			}
		}
		c.versions[file] = reply.Version
	}

	c.nextHandle++
	h := c.takeHandle()
	*h = handle{
		id:       uint64(c.cfg.ID)<<40 | c.nextHandle,
		file:     file,
		read:     read,
		write:    write,
		user:     user,
		proc:     proc,
		migrated: migrated,
		openedAt: now,
		shared:   !reply.Cacheable,
	}
	c.handles[h.id] = h

	flags := migFlag(migrated)
	if read {
		flags |= trace.FlagReadMode
	}
	if write {
		flags |= trace.FlagWriteMode
	}
	if f := srv.Lookup(file); f != nil && f.Directory {
		flags |= trace.FlagDirectory
	}
	c.emit(trace.KindOpen, h, file, flags, 0, 0, reply.Size, user, proc)
	return h.id, lat, nil
}

// Read transfers up to n bytes sequentially from the handle's position.
// It returns the bytes actually read and the I/O latency incurred.
func (c *Client) Read(hid uint64, n int64) (int64, time.Duration) {
	h := c.handles[hid]
	if h == nil || !h.read || n <= 0 {
		return 0, 0
	}
	srv := c.route(h.file)
	f := srv.Lookup(h.file)
	if f == nil {
		return 0, 0
	}
	if avail := f.Size - h.pos; n > avail {
		n = avail
	}
	if n <= 0 {
		return 0, 0
	}
	now := c.sim.Now()
	var lat time.Duration
	var flags = migFlag(h.migrated)
	if f.Directory {
		// Directory reads bypass the cache and are accounted separately.
		lat = c.net.RPCTo(srv.ID(), c.cfg.ID, netsim.DirRead, n)
		c.dirReadBytes += n
		c.emit(trace.KindDirRead, h, h.file, flags|trace.FlagDirectory, h.pos, n, f.Size, h.user, h.proc)
	} else if f.Uncacheable() && c.cfg.Consistency == ConsistencySprite {
		lat = c.net.RPCTo(srv.ID(), c.cfg.ID, netsim.SharedRead, n)
		lat += srv.ServeSpan(h.file, h.pos, n, now)
		c.sharedReadBytes += n
		c.emit(trace.KindRead, h, h.file, flags|trace.FlagShared, h.pos, n, f.Size, h.user, h.proc)
	} else {
		if c.cfg.Consistency == ConsistencyPoll {
			lat += c.pollValidate(h.file, f, now)
		}
		c.maybeGrow()
		attr := fscache.Attr{Migrated: h.migrated}
		res := c.Cache.Read(h.file, h.pos, n, f.Size, attr, now)
		c.ship(res.Evicted)
		if res.MissBytes > 0 {
			lat += c.net.RPCTo(srv.ID(), c.cfg.ID, netsim.FileRead, res.MissBytes)
			c.Cache.AddMissBytes(attr, res.MissBytes)
			for _, idx := range res.MissIdx {
				lat += srv.ServeBlock(h.file, idx, now)
			}
		}
		// Omniscient stale accounting: under the polling scheme, bytes
		// served from the cache while another client's newer version sits
		// at the server are exactly the errors Table 11 estimates.
		if c.cfg.Consistency == ConsistencyPoll && c.versions[h.file] != f.Version {
			if served := n - res.MissBytes; served > 0 {
				c.staleReads++
				c.staleBytes += served
			}
		}
		c.emit(trace.KindRead, h, h.file, flags, h.pos, n, f.Size, h.user, h.proc)
	}
	h.pos += n
	return n, lat
}

// ReadAt repositions the handle to off without charging a seek RPC, then
// reads n bytes. Trace replay uses it to pin each transfer at its recorded
// offset: the source run already logged any repositions as separate
// records, so re-deriving the position here would double-count seeks.
func (c *Client) ReadAt(hid uint64, off, n int64) (int64, time.Duration) {
	h := c.handles[hid]
	if h == nil || off < 0 {
		return 0, 0
	}
	h.pos = off
	return c.Read(hid, n)
}

// WriteAt repositions the handle to off without charging a seek RPC, then
// writes n bytes (the replay counterpart of ReadAt).
func (c *Client) WriteAt(hid uint64, off, n int64) time.Duration {
	h := c.handles[hid]
	if h == nil || off < 0 {
		return 0
	}
	h.pos = off
	return c.Write(hid, n)
}

// Write transfers n bytes sequentially at the handle's position and
// returns the latency incurred (zero for fully cached writes).
func (c *Client) Write(hid uint64, n int64) time.Duration {
	h := c.handles[hid]
	if h == nil || !h.write || n <= 0 {
		return 0
	}
	srv := c.route(h.file)
	f := srv.Lookup(h.file)
	if f == nil {
		return 0
	}
	now := c.sim.Now()
	var lat time.Duration
	flags := migFlag(h.migrated)
	if f.Uncacheable() && !f.Directory && c.cfg.Consistency == ConsistencySprite {
		lat = c.net.RPCTo(srv.ID(), c.cfg.ID, netsim.SharedWrite, n)
		srv.AcceptSpan(h.file, h.pos, n, now)
		c.sharedWriteBytes += n
		srv.Write(h.file, c.cfg.ID, h.pos, n, true, now)
		c.versions[h.file] = f.Version
		c.emit(trace.KindWrite, h, h.file, flags|trace.FlagShared, h.pos, n, f.Size, h.user, h.proc)
	} else {
		c.maybeGrow()
		attr := fscache.Attr{Migrated: h.migrated}
		res := c.Cache.Write(h.file, h.pos, n, f.Size, attr, now)
		c.ship(res.Evicted)
		if res.FetchBytes > 0 {
			lat = c.net.RPCTo(srv.ID(), c.cfg.ID, netsim.FileRead, res.FetchBytes)
			for _, idx := range res.FetchIdx {
				lat += srv.ServeBlock(h.file, idx, now)
			}
		}
		srv.Grow(h.file, h.pos+n, now)
		if c.cfg.Consistency == ConsistencyPoll {
			// "New data is written through to the server almost
			// immediately in order to make it available to other clients."
			for _, wb := range c.Cache.Fsync(h.file, now) {
				lat += c.shipOne(srv, wb, now)
			}
			if cur := srv.Lookup(h.file); cur != nil {
				c.versions[h.file] = cur.Version
			}
			c.validated[h.file] = now
		}
		c.emit(trace.KindWrite, h, h.file, flags, h.pos, n, f.Size, h.user, h.proc)
	}
	h.pos += n
	h.wrote = true
	return lat
}

// pollValidate implements the NFS-style lazy revalidation: on the first
// access after the validity window expires, ask the server for the file's
// current version (one control RPC) and flush the cached copy if stale.
func (c *Client) pollValidate(file uint64, f *server.File, now time.Duration) time.Duration {
	last, seen := c.validated[file]
	if seen && now-last < c.cfg.PollInterval {
		return 0
	}
	c.pollRPCs++
	lat := c.net.RPCTo(c.route(file).ID(), c.cfg.ID, netsim.Control, 0)
	if c.versions[file] != f.Version {
		c.Cache.Invalidate(file)
		c.versions[file] = f.Version
	}
	c.validated[file] = now
	return lat
}

// StaleStats reports the stale reads served under ConsistencyPoll, plus
// the validation RPCs the polling itself cost.
func (c *Client) StaleStats() (reads int64, bytes int64, pollRPCs int64) {
	return c.staleReads, c.staleBytes, c.pollRPCs
}

// Seek repositions the handle. Sprite logged repositions at the server, so
// an extra control RPC is charged, as the paper describes.
func (c *Client) Seek(hid uint64, pos int64) time.Duration {
	h := c.handles[hid]
	if h == nil || pos < 0 {
		return 0
	}
	lat := c.net.RPCTo(c.route(h.file).ID(), c.cfg.ID, netsim.Control, 0)
	h.pos = pos
	f := c.route(h.file).Lookup(h.file)
	var size int64
	if f != nil {
		size = f.Size
	}
	c.emit(trace.KindReposition, h, h.file, migFlag(h.migrated), pos, 0, size, h.user, h.proc)
	return lat
}

// Fsync forces the handle's dirty data to the server synchronously.
func (c *Client) Fsync(hid uint64) time.Duration {
	h := c.handles[hid]
	if h == nil {
		return 0
	}
	wbs := c.Cache.Fsync(h.file, c.sim.Now())
	var lat time.Duration
	for _, wb := range wbs {
		lat += c.shipOne(c.route(wb.File), wb, c.sim.Now())
	}
	return lat
}

// HasHandle reports whether hid names a live open-instance on this
// client. The live RPC executor uses it to distinguish "unknown handle"
// from legitimately free operations (a fully cached write also reports
// zero latency).
func (c *Client) HasHandle(hid uint64) bool {
	_, ok := c.handles[hid]
	return ok
}

// Close releases the handle.
func (c *Client) Close(hid uint64) (time.Duration, error) {
	h := c.handles[hid]
	if h == nil {
		return 0, fmt.Errorf("client %d: close of unknown handle %#x", c.cfg.ID, hid)
	}
	srv := c.route(h.file)
	// Lazy restart detection must run while the handle is still registered
	// locally, or the recovery re-registration misses the very open this
	// close is about to balance.
	lat := c.maybeRecover(srv)
	delete(c.handles, hid)
	dirty := h.wrote && c.Cache.FileDirty(h.file)
	if err := srv.Close(h.file, c.cfg.ID, h.write, dirty, c.sim.Now()); err != nil {
		return lat, err
	}
	lat += c.net.RPCTo(srv.ID(), c.cfg.ID, netsim.Control, 0)
	var size int64
	flags := migFlag(h.migrated)
	if h.read {
		flags |= trace.FlagReadMode
	}
	if h.write {
		flags |= trace.FlagWriteMode
	}
	if h.shared {
		flags |= trace.FlagShared
	}
	if f := srv.Lookup(h.file); f != nil {
		size = f.Size
		if f.Directory {
			flags |= trace.FlagDirectory
		}
	}
	c.emit(trace.KindClose, h, h.file, flags, h.pos, 0, size, h.user, h.proc)
	c.hFree = append(c.hFree, h)
	return lat, nil
}

// takeHandle pops a recycled handle struct or allocates a fresh one; the
// caller overwrites every field. Handles dropped by Crash are simply
// garbage-collected rather than recycled.
func (c *Client) takeHandle() *handle {
	if n := len(c.hFree); n > 0 {
		h := c.hFree[n-1]
		c.hFree = c.hFree[:n-1]
		return h
	}
	return &handle{}
}

// Delete removes the file cluster-wide. Dirty cached bytes are discarded
// (the delayed-write savings), and the deletion is logged for the
// lifetime analyses.
func (c *Client) Delete(user, proc int32, file uint64, migrated bool) {
	srv := c.route(file)
	f := srv.Delete(file, c.sim.Now())
	c.Cache.Delete(file)
	delete(c.versions, file)
	c.net.RPCTo(srv.ID(), c.cfg.ID, netsim.Control, 0)
	var size int64
	var oldest, newest time.Duration
	var flags = migFlag(migrated)
	if f != nil {
		size = f.Size
		oldest = f.OldestByte
		newest = f.LastWrite
		if f.Directory {
			flags |= trace.FlagDirectory
		}
	}
	// Offset carries the creation time of the oldest byte and Length the
	// newest byte's write time, so the lifetime analysis (Figure 4) has
	// both endpoints.
	c.emit(trace.KindDelete, nil, file, flags, int64(oldest), int64(newest), size, user, proc)
}

// Truncate cuts the file to zero length (counted as a delete for
// lifetimes, per the paper).
func (c *Client) Truncate(user, proc int32, file uint64, migrated bool) {
	srv := c.route(file)
	f := srv.Lookup(file)
	var size int64
	var oldest, newest time.Duration
	if f != nil {
		size = f.Size
		oldest = f.OldestByte
		newest = f.LastWrite
	}
	srv.Truncate(file, c.sim.Now())
	c.Cache.Truncate(file, 0)
	c.net.RPCTo(srv.ID(), c.cfg.ID, netsim.Control, 0)
	c.emit(trace.KindTruncate, nil, file, migFlag(migrated), int64(oldest), int64(newest), size, user, proc)
}

// --- Consistency callbacks (invoked by the cluster's Coordinator) ---

// FlushForRecall writes all dirty data for file back to the server (the
// server recalled it for another client's open).
func (c *Client) FlushForRecall(file uint64) {
	wbs := c.Cache.Recall(file, c.sim.Now())
	for _, wb := range wbs {
		c.shipOne(c.route(wb.File), wb, c.sim.Now())
	}
}

// DisableFor flushes and drops cached data for file and marks any local
// handles as bypassing (concurrent write-sharing started elsewhere).
func (c *Client) DisableFor(file uint64) {
	c.FlushForRecall(file)
	c.Cache.Invalidate(file)
	for _, h := range c.handles {
		if h.file == file {
			h.shared = true
		}
	}
}

// --- Process/VM wrappers ---

// ExecProcess starts a process image on this workstation.
func (c *Client) ExecProcess(pid int32, execFile uint64, codePages, dataPages, stackPages int, migrated bool) {
	c.VM.Start(pid, execFile, codePages, dataPages, stackPages, migrated, c.sim.Now())
	c.syncCacheShare()
}

// TouchProcess marks a process active, growing its heap by growHeap pages.
func (c *Client) TouchProcess(pid int32, growHeap int) {
	c.VM.Touch(pid, growHeap, c.sim.Now())
	c.syncCacheShare()
}

// ExitProcess tears the process down.
func (c *Client) ExitProcess(pid int32) {
	c.VM.Exit(pid, c.sim.Now())
}

// EvictMigrated flushes a migrated process's pages (owner returned).
func (c *Client) EvictMigrated(pid int32) {
	c.VM.EvictProcess(pid, c.sim.Now())
}

// FileSize returns the current size of a file, or 0 if it does not exist.
func (c *Client) FileSize(file uint64) int64 {
	if f := c.route(file).Lookup(file); f != nil {
		return f.Size
	}
	return 0
}
