package traceio

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"spritefs/internal/trace"
)

// Profile is the set of modernization knobs: how a captured trace is
// rescaled toward a present-day workload, TraceTracker-style. The zero
// knobs are identity (Normalize applies defaults).
type Profile struct {
	// SizeScale multiplies every offset, length and size, modelling the
	// growth of file and transfer sizes since the capture. 0 or 1 leaves
	// sizes alone.
	SizeScale float64
	// RateScale divides every timestamp: 4 makes the community issue
	// operations four times as fast (per-machine throughput growth).
	RateScale float64
	// ClientScale replicates the whole community N times: each clone gets
	// disjoint client, user, process, handle and file ID ranges, so the
	// modernized trace exercises N times the workstations against the
	// same server count.
	ClientScale int
	// FileScale spreads each file's open/close sessions round-robin
	// across N distinct copies of the file, growing the active file
	// population (and cooling per-file locality) without inventing new
	// access patterns.
	FileScale int
	// CloneSkew offsets each successive clone's start time so replicas
	// do not hammer the servers in lockstep. Default 5ms.
	CloneSkew time.Duration
}

// Normalize fills defaulted knobs.
func (p Profile) Normalize() Profile {
	if p.SizeScale <= 0 {
		p.SizeScale = 1
	}
	if p.RateScale <= 0 {
		p.RateScale = 1
	}
	if p.ClientScale < 1 {
		p.ClientScale = 1
	}
	if p.FileScale < 1 {
		p.FileScale = 1
	}
	if p.CloneSkew <= 0 {
		p.CloneSkew = 5 * time.Millisecond
	}
	return p
}

// ParseProfile builds a Profile from a compact spec of comma-separated
// key=value pairs, e.g. "size=8,rate=4,clients=4,files=2,skew=5ms".
// Keys: size (float ×), rate (float ×), clients (int ×), files (int ×),
// skew (duration). An empty spec is the identity profile.
func ParseProfile(spec string) (Profile, error) {
	var p Profile
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return p, fmt.Errorf("traceio: bad profile entry %q (want key=value)", part)
		}
		key, val := strings.ToLower(strings.TrimSpace(kv[0])), strings.TrimSpace(kv[1])
		var err error
		switch key {
		case "size":
			p.SizeScale, err = strconv.ParseFloat(val, 64)
		case "rate":
			p.RateScale, err = strconv.ParseFloat(val, 64)
		case "clients":
			p.ClientScale, err = strconv.Atoi(val)
		case "files":
			p.FileScale, err = strconv.Atoi(val)
		case "skew":
			p.CloneSkew, err = time.ParseDuration(val)
		default:
			err = fmt.Errorf("traceio: unknown profile key %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("traceio: profile entry %q: %w", part, err)
		}
	}
	return p.Normalize(), nil
}

// ModernizeReport records what Modernize changed, before → after.
type ModernizeReport struct {
	Profile  Profile
	Records  [2]int
	Clients  [2]int
	Files    [2]int
	Bytes    [2]int64 // read+written payload
	Duration [2]time.Duration
}

// String renders the report as an aligned before → after table.
func (r *ModernizeReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "modernize: size ×%g, rate ×%g, clients ×%d, files ×%d, skew %s\n",
		r.Profile.SizeScale, r.Profile.RateScale, r.Profile.ClientScale,
		r.Profile.FileScale, r.Profile.CloneSkew)
	fmt.Fprintf(&b, "records:   %12d -> %d\n", r.Records[0], r.Records[1])
	fmt.Fprintf(&b, "clients:   %12d -> %d\n", r.Clients[0], r.Clients[1])
	fmt.Fprintf(&b, "files:     %12d -> %d\n", r.Files[0], r.Files[1])
	fmt.Fprintf(&b, "payload:   %12d -> %d bytes\n", r.Bytes[0], r.Bytes[1])
	fmt.Fprintf(&b, "duration:  %12s -> %s\n", r.Duration[0], r.Duration[1])
	return b.String()
}

// Modernize rescales recs according to p and returns the transformed
// stream (sorted by time, deterministically tie-broken) plus a report of
// what changed. The input slice is not modified.
func Modernize(recs []trace.Record, p Profile) ([]trace.Record, *ModernizeReport) {
	p = p.Normalize()
	rep := &ModernizeReport{Profile: p}
	rep.Records[0] = len(recs)
	rep.Clients[0], rep.Files[0], rep.Bytes[0], rep.Duration[0] = census(recs)
	if len(recs) == 0 {
		return nil, rep
	}

	// Strides keep every clone's ID ranges disjoint.
	var maxClient, maxUser, maxProc int32
	var maxHandle, maxSeq uint64
	for i := range recs {
		r := &recs[i]
		maxClient = max(maxClient, r.Client)
		maxUser = max(maxUser, r.User)
		maxProc = max(maxProc, r.Proc)
		maxHandle = max(maxHandle, r.Handle)
		maxSeq = max(maxSeq, r.File&((1<<48)-1))
	}
	clientStride := maxClient + 1
	userStride := maxUser + 1
	procStride := maxProc + 1
	handleStride := maxHandle + 1
	seqStride := maxSeq + 1

	// sessionCopy spreads sessions round-robin across FileScale copies:
	// the copy rotates at every open of the file, handle-carrying records
	// follow their open, and bare-file records (create/delete/truncate)
	// follow the file's current copy.
	sessions := make(map[uint64]uint64)    // file → opens seen so far
	handleCopy := make(map[uint64]uint64)  // handle → copy index
	currentCopy := make(map[uint64]uint64) // file → copy of the latest open
	copyOf := func(r *trace.Record) uint64 {
		if p.FileScale == 1 {
			return 0
		}
		if r.Kind == trace.KindOpen {
			c := sessions[r.File] % uint64(p.FileScale)
			sessions[r.File]++
			currentCopy[r.File] = c
			if r.Handle != 0 {
				handleCopy[r.Handle] = c
			}
			return c
		}
		if r.Handle != 0 {
			if c, ok := handleCopy[r.Handle]; ok {
				return c
			}
		}
		return currentCopy[r.File]
	}

	out := make([]trace.Record, 0, len(recs)*p.ClientScale)
	for clone := 0; clone < p.ClientScale; clone++ {
		k := int32(clone)
		sessions = make(map[uint64]uint64)
		handleCopy = make(map[uint64]uint64)
		currentCopy = make(map[uint64]uint64)
		for i := range recs {
			r := recs[i]
			copyIdx := copyOf(&recs[i])
			r.Client += k * clientStride
			r.User += k * userStride
			r.Proc += k * procStride
			if r.Handle != 0 {
				r.Handle += uint64(clone) * handleStride
			}
			seq := r.File & ((1 << 48) - 1)
			seq += (uint64(clone)*uint64(p.FileScale) + copyIdx) * seqStride
			r.File = r.File&^((1<<48)-1) | seq&((1<<48)-1)
			r.Server = int16(r.File >> 48)
			if p.SizeScale != 1 {
				r.Offset = scale(r.Offset, p.SizeScale)
				r.Length = scale(r.Length, p.SizeScale)
				r.Size = scale(r.Size, p.SizeScale)
			}
			r.Time = time.Duration(float64(r.Time)/p.RateScale) + time.Duration(clone)*p.CloneSkew
			out = append(out, r)
		}
	}
	// The interleave of skewed clones must be deterministic: order by
	// time, then clone, then original position (both encoded in the
	// append order, which SliceStable preserves).
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })

	rep.Records[1] = len(out)
	rep.Clients[1], rep.Files[1], rep.Bytes[1], rep.Duration[1] = census(out)
	return out, rep
}

// scale multiplies a byte quantity, preserving sign conventions (negative
// sentinels pass through).
func scale(v int64, f float64) int64 {
	if v <= 0 {
		return v
	}
	return int64(float64(v) * f)
}

// census counts distinct clients and files, total read+write payload and
// the trace duration.
func census(recs []trace.Record) (clients, files int, bytes int64, dur time.Duration) {
	cs := make(map[int32]bool)
	fs := make(map[uint64]bool)
	for i := range recs {
		r := &recs[i]
		cs[r.Client] = true
		fs[r.File] = true
		switch r.Kind {
		case trace.KindRead, trace.KindWrite, trace.KindDirRead:
			bytes += r.Length
		}
		if r.Time > dur {
			dur = r.Time
		}
	}
	return len(cs), len(fs), bytes, dur
}
