// Command replay re-executes captured traces against the simulated
// cluster — the paper's Section 5 methodology as a tool: hold the
// reference string fixed, vary the cache and consistency parameters, and
// read the effect straight off the counter tables.
//
// Replay one trace (all per-server files merged) at recorded speed:
//
//	replay -trace 'trace1.srv0,trace1.srv1,trace1.srv2,trace1.srv3'
//
// Replay as fast as possible and print the full counter tables:
//
//	replay -trace trace1.srv0 -speed 0 -report tables
//
// Sweep cache sizes over 8 worker goroutines, TSV aggregate report:
//
//	replay -trace trace1.srv0 -sweep cache=512,2048,8192 -workers 8 -report tsv
//
// Replay under a fault schedule — crash server 0 an hour in, with the
// recovery counters reported in the summary:
//
//	replay -trace trace1.srv0 -faults 'server-crash:0@1h/30s'
//
// Sweep axes: cache=<pages,...>, wb=<durations,...> (writeback delay),
// mode=<sprite|poll,...> (consistency), poll=<durations,...> (validity
// window, implies mode poll). Trace files may be binary or text; the
// format is auto-detected per file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"spritefs/internal/client"
	"spritefs/internal/faults"
	"spritefs/internal/prof"
	"spritefs/internal/replay"
	"spritefs/internal/shutdown"
	"spritefs/internal/trace"
	"spritefs/internal/traceio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	var (
		tracePaths = fs.String("trace", "", "comma-separated trace files (binary or text; merged in time order)")
		importFmt  = fs.String("import", "", "treat the trace files as foreign dumps: csv | strace (see cmd/tracefmt)")
		mapSpec    = fs.String("map", "", "column mapping for -import csv, e.g. 'time=0,op=2,path=3,unit=ms'")
		speed      = fs.Float64("speed", 1, "time scale: 2 = twice recorded speed, 0 = as fast as possible")
		sweep      = fs.String("sweep", "", "sweep axis, e.g. cache=512,2048,8192 | wb=5s,30s | mode=sprite,poll | poll=5s,30s")
		shardsN    = fs.Int("shards", 0, "partition the trace's clients across N shards and replay each hermetically")
		workers    = fs.Int("workers", runtime.NumCPU(), "worker goroutines for -sweep and -shards")
		report     = fs.String("report", "summary", "report style: summary | tables | tsv")
		servers    = fs.Int("servers", 4, "number of file servers")
		seed       = fs.Int64("seed", 1, "simulator seed")
		cache      = fs.Int("cache", 0, "fixed client cache size in 4 KB pages (0 = dynamic)")
		mode       = fs.String("mode", "sprite", "consistency mode: sprite | poll")
		poll       = fs.Duration("poll", 3*time.Second, "validity window for -mode poll")
		wb         = fs.Duration("wb", 0, "writeback delay override (0 = the 30s default)")
		prefetch   = fs.Int("prefetch", 0, "sequential prefetch blocks")
		clientsCSV = fs.String("clients", "", "replay only these client ids (comma-separated)")
		kindsCSV   = fs.String("kinds", "", "replay only these record kinds (comma-separated names)")
		faultsSpec = fs.String("faults", "", "fault schedule, e.g. 'server-crash:0@10m/30s,drop@0s/1h/500ms/50'")
		metricsOut = fs.String("metrics-out", "", "write the final metric registry dump to this file ('-' = stdout); sweeps append .<config> per configuration")
		metricsFmt = fs.String("metrics-format", "prom", "registry dump format: prom | tsv | jsonl")
		metricsTS  = fs.Duration("metrics-sample", 0, "also sample the registry as time series at this virtual-clock interval (written as <metrics-out>.series)")
		cpuProf    = fs.String("cpuprofile", "", "write a pprof CPU profile of the replay to this file")
		memProf    = fs.String("memprofile", "", "write a pprof heap profile (taken after the replay) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["metrics-sample"] && !set["metrics-out"] {
		return fmt.Errorf("-metrics-sample writes <metrics-out>.series; it needs -metrics-out")
	}
	if set["metrics-format"] && !set["metrics-out"] {
		return fmt.Errorf("-metrics-format without -metrics-out writes nothing; add -metrics-out")
	}
	switch *metricsFmt {
	case "prom", "tsv", "jsonl":
	default:
		return fmt.Errorf("unknown -metrics-format %q (want prom, tsv or jsonl)", *metricsFmt)
	}
	switch *report {
	case "summary", "tables", "tsv":
	default:
		return fmt.Errorf("unknown -report style %q (want summary, tables or tsv)", *report)
	}
	if set["map"] && *importFmt != "csv" {
		return fmt.Errorf("-map only applies to -import csv")
	}
	if set["workers"] && *sweep == "" && *shardsN == 0 {
		return fmt.Errorf("-workers only applies to -sweep and -shards runs")
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be at least 1 (got %d)", *workers)
	}
	if set["shards"] && *shardsN < 1 {
		return fmt.Errorf("-shards must be at least 1 (got %d)", *shardsN)
	}
	if *shardsN > 0 && *sweep != "" {
		return fmt.Errorf("-shards and -sweep are mutually exclusive (one varies topology, the other configuration)")
	}
	if set["poll"] && *mode != "poll" && !strings.Contains(*sweep, "poll") && !strings.Contains(*sweep, "mode") {
		return fmt.Errorf("-poll only applies with -mode poll (or a poll/mode sweep axis)")
	}
	paths := splitCSV(*tracePaths)
	paths = append(paths, fs.Args()...)
	if len(paths) == 0 {
		return fmt.Errorf("no trace files (use -trace)")
	}

	base := replay.Config{
		Name:            "base",
		NumServers:      *servers,
		Seed:            *seed,
		FixedCachePages: *cache,
		WritebackDelay:  *wb,
		PrefetchBlocks:  *prefetch,
		PollInterval:    *poll,
	}
	switch *mode {
	case "sprite":
		base.Consistency = client.ConsistencySprite
	case "poll":
		base.Consistency = client.ConsistencyPoll
	default:
		return fmt.Errorf("unknown consistency mode %q", *mode)
	}
	if *speed <= 0 {
		base.AsFastAsPossible = true
	} else {
		base.Speed = *speed
	}
	keep, err := buildFilter(*clientsCSV, *kindsCSV)
	if err != nil {
		return err
	}
	base.Keep = keep
	base.MetricsSample = *metricsTS
	if *faultsSpec != "" {
		sched, err := faults.Parse(*faultsSpec)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		base.Faults = sched
	}

	// Profile files are created before the replay starts so a bad path
	// fails in milliseconds, not after the full run.
	pp, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if serr := pp.Stop(); err == nil {
			err = serr
		}
	}()

	// SIGINT/SIGTERM mid-run: flush the profiles and dump metrics for
	// whatever configurations have completed instead of losing everything.
	var partial partialResults
	guard := shutdown.NewGuard()
	defer guard.Close()
	guard.Add(func() { pp.Stop() })
	if *metricsOut != "" {
		outPath, outFmt := *metricsOut, *metricsFmt
		guard.Add(func() {
			if rs := partial.snapshot(); len(rs) > 0 {
				fmt.Fprintf(os.Stderr, "replay: interrupted; flushing metrics for %d completed configuration(s)\n", len(rs))
				if err := writeMetrics(rs, outPath, outFmt, os.Stderr); err != nil {
					fmt.Fprintln(os.Stderr, "replay:", err)
				}
			}
		})
	}

	stream, closeAll, err := openTraces(paths, *importFmt, *mapSpec, *servers)
	if err != nil {
		return err
	}
	defer closeAll()

	if *shardsN > 0 {
		// Sharded replays partition a resident record slice by client.
		recs, err := trace.Collect(stream)
		if err != nil {
			return err
		}
		results, err := replay.RunSharded(recs, base, *shardsN, *workers)
		if err != nil {
			return err
		}
		if err := writeMetrics(results, *metricsOut, *metricsFmt, out); err != nil {
			return err
		}
		fmt.Fprintln(out, replay.ShardedTable(results))
		return nil
	}

	if *sweep == "" {
		res, err := replay.Run(base, stream)
		if err != nil {
			return err
		}
		if err := writeMetrics([]*replay.Result{res}, *metricsOut, *metricsFmt, out); err != nil {
			return err
		}
		return printResults(out, []*replay.Result{res}, *report)
	}

	// Sweeps replay the merged trace many times, so it must be resident.
	recs, err := trace.Collect(stream)
	if err != nil {
		return err
	}
	cfgs, err := sweepConfigs(base, *sweep)
	if err != nil {
		return err
	}
	results, err := replay.RunSweepWith(recs, cfgs, *workers, func(_ int, r *replay.Result) {
		partial.add(r)
	})
	if err != nil {
		return err
	}
	if err := writeMetrics(results, *metricsOut, *metricsFmt, out); err != nil {
		return err
	}
	return printResults(out, results, *report)
}

// partialResults collects completed sweep results so the signal handler
// can flush their metrics on an interrupted run.
type partialResults struct {
	mu sync.Mutex
	rs []*replay.Result
}

func (p *partialResults) add(r *replay.Result) {
	p.mu.Lock()
	p.rs = append(p.rs, r)
	p.mu.Unlock()
}

func (p *partialResults) snapshot() []*replay.Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*replay.Result(nil), p.rs...)
}

// writeMetrics dumps each result's metric registry (and sampled series,
// when -metrics-sample was set) in the chosen format. A single replay
// writes to path as-is; sweeps append the configuration name so every
// configuration's dump lands in its own file.
func writeMetrics(results []*replay.Result, path, format string, stdout io.Writer) error {
	if path == "" {
		return nil
	}
	for _, r := range results {
		target := path
		if len(results) > 1 {
			target = path + "." + sanitizeName(r.Config.Name)
		}
		dump := func(p string, write func(io.Writer) error) error {
			if p == "-" {
				return write(stdout)
			}
			f, err := os.Create(p)
			if err != nil {
				return err
			}
			if err := write(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		reg := r.Metrics.Registry()
		if err := dump(target, func(w io.Writer) error { return reg.Dump(w, format) }); err != nil {
			return err
		}
		if r.Series != nil {
			st := target + ".series"
			if target == "-" {
				st = "-"
			}
			if err := dump(st, func(w io.Writer) error { return r.Series.Dump(w, format) }); err != nil {
				return err
			}
		}
	}
	return nil
}

// sanitizeName makes a sweep configuration name filesystem-safe.
func sanitizeName(name string) string {
	if name == "" {
		return "cfg"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.', r == '=':
			return r
		default:
			return '_'
		}
	}, name)
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// openTrace opens one trace file, sniffing binary ('S' of the SPRTRC
// magic) versus text ('#' of the header line) from the first byte.
func openTrace(path string) (trace.Stream, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(f, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	var s trace.Stream
	if first[0] == '#' {
		s, err = trace.NewTextReader(br)
	} else {
		s, err = trace.NewReader(br)
	}
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, f, nil
}

// importTrace runs a foreign dump through the traceio importer, returning
// the records as a resident stream. The import report goes to stderr.
func importTrace(path, format, mapSpec string, servers int) (trace.Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	opt := traceio.Options{NumServers: servers}
	var (
		recs []trace.Record
		rep  *traceio.ImportReport
	)
	switch format {
	case "csv":
		m := traceio.DefaultCSVMapping()
		if mapSpec != "" {
			if m, err = traceio.ParseCSVMapping(mapSpec); err != nil {
				return nil, err
			}
		}
		recs, rep, err = traceio.ImportCSV(bufio.NewReaderSize(f, 64<<10), m, opt)
	case "strace":
		recs, rep, err = traceio.ImportStrace(bufio.NewReaderSize(f, 64<<10), opt)
	default:
		return nil, fmt.Errorf("unknown -import format %q (want csv or strace)", format)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprint(os.Stderr, rep.String())
	return trace.NewSliceStream(recs), nil
}

// openTraces opens every file and merges them into one time-ordered
// stream, as the analysis pipeline merges per-server trace files. With
// importFmt set, each file is a foreign dump converted on the fly.
func openTraces(paths []string, importFmt, mapSpec string, servers int) (trace.Stream, func(), error) {
	var (
		streams []trace.Stream
		closers []io.Closer
	)
	closeAll := func() {
		for _, c := range closers {
			c.Close()
		}
	}
	for _, p := range paths {
		if importFmt != "" {
			s, err := importTrace(p, importFmt, mapSpec, servers)
			if err != nil {
				closeAll()
				return nil, nil, err
			}
			streams = append(streams, s)
			continue
		}
		s, c, err := openTrace(p)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		streams = append(streams, s)
		closers = append(closers, c)
	}
	return trace.Merge(streams...), closeAll, nil
}

func buildFilter(clientsCSV, kindsCSV string) (func(*trace.Record) bool, error) {
	var filters []func(*trace.Record) bool
	if ids := splitCSV(clientsCSV); len(ids) > 0 {
		parsed := make([]int32, 0, len(ids))
		for _, s := range ids {
			n, err := strconv.ParseInt(s, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad client id %q", s)
			}
			parsed = append(parsed, int32(n))
		}
		filters = append(filters, replay.KeepClients(parsed...))
	}
	if names := splitCSV(kindsCSV); len(names) > 0 {
		kinds := make([]trace.Kind, 0, len(names))
		for _, s := range names {
			k, ok := trace.ParseKind(s)
			if !ok {
				return nil, fmt.Errorf("unknown record kind %q", s)
			}
			kinds = append(kinds, k)
		}
		filters = append(filters, replay.KeepKinds(kinds...))
	}
	switch len(filters) {
	case 0:
		return nil, nil
	case 1:
		return filters[0], nil
	default:
		return replay.And(filters...), nil
	}
}

// sweepConfigs expands one "axis=v1,v2,..." spec into a configuration per
// value, each derived from the base flags.
func sweepConfigs(base replay.Config, spec string) ([]replay.Config, error) {
	axis, list, ok := strings.Cut(spec, "=")
	if !ok {
		return nil, fmt.Errorf("bad sweep spec %q (want axis=v1,v2,...)", spec)
	}
	values := splitCSV(list)
	if len(values) == 0 {
		return nil, fmt.Errorf("sweep spec %q has no values", spec)
	}
	cfgs := make([]replay.Config, 0, len(values))
	for _, v := range values {
		c := base
		switch axis {
		case "cache":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad cache pages %q", v)
			}
			c.FixedCachePages = n
			c.Name = "cache=" + v
		case "wb":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("bad writeback delay %q", v)
			}
			c.WritebackDelay = d
			c.Name = "wb=" + v
		case "mode":
			switch v {
			case "sprite":
				c.Consistency = client.ConsistencySprite
			case "poll":
				c.Consistency = client.ConsistencyPoll
			default:
				return nil, fmt.Errorf("unknown consistency mode %q", v)
			}
			c.Name = "mode=" + v
		case "poll":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("bad poll interval %q", v)
			}
			c.Consistency = client.ConsistencyPoll
			c.PollInterval = d
			c.Name = "poll=" + v
		default:
			return nil, fmt.Errorf("unknown sweep axis %q (cache, wb, mode, poll)", axis)
		}
		cfgs = append(cfgs, c)
	}
	return cfgs, nil
}

func printResults(out io.Writer, results []*replay.Result, style string) error {
	switch style {
	case "tsv":
		_, err := io.WriteString(out, replay.SweepTable(results).TSV())
		return err
	case "summary":
		if len(results) == 1 {
			if _, err := fmt.Fprintln(out, replay.ReplayTable(results[0])); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(out, replay.SweepTable(results))
		return err
	case "tables":
		for _, r := range results {
			name := r.Config.Name
			if _, err := fmt.Fprintf(out, "=== %s ===\n%s\n", name, replay.ReplayTable(r)); err != nil {
				return err
			}
			for _, t := range replay.ReportTables(&r.Report) {
				if _, err := fmt.Fprintln(out, t); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown report style %q (summary, tables, tsv)", style)
	}
}
