package core

import (
	"fmt"
	"strings"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/stats"
	"spritefs/internal/workload"
)

// WorkloadOptions configures the modern-workload study.
type WorkloadOptions struct {
	// Hours of simulated time per community (default 2).
	Hours float64
	// Scale shrinks each community as in TraceOptions.
	Scale float64
	Seed  int64
}

// WorkloadRow summarizes one community run: how much of the offered load
// the new application carried, and how the cache and migration machinery
// responded to it.
type WorkloadRow struct {
	Name string
	// App is the headline application of this community.
	App workload.AppKind

	Programs    int64 // programs of the headline app
	AllPrograms int64
	ReadMB      float64 // bytes read by the headline app
	WriteMB     float64
	TotalMB     float64 // all apps, reads+writes

	Migrations int64
	Evictions  int64

	ReadMissPct        float64 // client cache read miss ratio (Table 6 All)
	ReadMissTrafficPct float64
}

// WorkloadResult holds the per-community rows.
type WorkloadResult struct {
	Hours float64
	Rows  []WorkloadRow
}

// RunWorkloadStudy contrasts the paper's 1991 mix with the two post-1991
// generators (ROADMAP item 3): a media-streaming community whose large
// sequential reads defeat whole-file caching, and a package-build farm
// whose migration fan-out stresses the Table 6 "migrated" columns. Each
// community runs on its own cluster with the same seed and horizon, so
// the rows are directly comparable.
func RunWorkloadStudy(opts WorkloadOptions) *WorkloadResult {
	hours := opts.Hours
	if hours <= 0 {
		hours = 2
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 19912026
	}
	dur := time.Duration(hours * float64(time.Hour))

	communities := []struct {
		name string
		app  workload.AppKind
		p    workload.Params
	}{
		{"sprite-1991", workload.AppCompile, workload.Default(seed)},
		{"streaming", workload.AppStream, workload.StreamingParams(seed)},
		{"build-farm", workload.AppBuildFarm, workload.BuildFarmParams(seed)},
	}

	res := &WorkloadResult{Hours: hours}
	for _, c := range communities {
		p := scaleParams(c.p, opts.Scale)
		p.EmitBackupNoise = false
		cfg := cluster.DefaultConfig(p)
		cfg.CollectTrace = false
		cfg.SamplePeriod = 0
		cl := cluster.New(cfg)
		cl.Run(dur)

		st := cl.Engine.Stats()
		t6 := cl.Table6Report()
		row := WorkloadRow{
			Name:               c.name,
			App:                c.app,
			Programs:           st.RunsByApp[c.app],
			AllPrograms:        st.ProgramsRun,
			ReadMB:             float64(st.ReadByApp[c.app]) / (1 << 20),
			WriteMB:            float64(st.WriteByApp[c.app]) / (1 << 20),
			Migrations:         st.Migrations,
			Evictions:          st.Evictions,
			ReadMissPct:        t6.All.ReadMissPct,
			ReadMissTrafficPct: t6.All.ReadMissTrafficPct,
		}
		for a := workload.AppKind(0); a < workload.NumApps; a++ {
			row.TotalMB += float64(st.ReadByApp[a]+st.WriteByApp[a]) / (1 << 20)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// WorkloadTables renders the community comparison.
func WorkloadTables(r *WorkloadResult) string {
	t := stats.NewTable(
		fmt.Sprintf("Modern workloads vs the 1991 mix (%.1fh per community)", r.Hours),
		"community", "app", "runs", "app MB r/w", "total MB", "migrations", "evictions",
		"read miss %", "miss traffic %")
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.App.String(),
			fmt.Sprintf("%d", row.Programs),
			fmt.Sprintf("%.1f/%.1f", row.ReadMB, row.WriteMB),
			fmt.Sprintf("%.1f", row.TotalMB),
			fmt.Sprintf("%d", row.Migrations),
			fmt.Sprintf("%d", row.Evictions),
			fmt.Sprintf("%.1f", row.ReadMissPct),
			fmt.Sprintf("%.1f", row.ReadMissTrafficPct))
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nstreaming reads are paced sequential scans over media-sized files; " +
		"the build farm fans package compiles out via process migration " +
		"(compare its migrations column against the 1991 pmake row).\n")
	return b.String()
}
