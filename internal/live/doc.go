// Package live is the real-time frontend: it runs the simulated Sprite
// cluster — servers, client caches, consistency, crash recovery — as an
// actual concurrent Go service on wall-clock time and serves load from a
// fleet of client agents over a small RPC layer.
//
// The design splits the world in two:
//
//   - One dispatcher goroutine owns the cluster and its *sim.Sim outright.
//     WallClock paces that simulator against the monotonic clock: events
//     fire when their virtual time arrives on the wall, and externally
//     submitted closures are marshalled onto the loop. Because every
//     cluster touch happens on this one goroutine, the existing
//     single-threaded stack runs unmodified — the actor model a
//     single-threaded server (or the Sprite kernel's event loop) uses.
//
//   - N agent goroutines drive open/read/write/close/getattr requests
//     through a Transport (in-process dispatch or a TCP codec) at a target
//     aggregate rate, with per-request deadlines and the same bounded
//     doubling backoff the Sprite recovery protocol uses against a down
//     server. Agents measure real wall-clock latency — queueing on the
//     dispatcher, Go scheduling, and the simulated service time, which the
//     dispatcher converts into real delay by scheduling each reply at
//     virtual-now + simulated-latency.
//
// The existing internal/metrics registry is exported live over HTTP in
// Prometheus text format (plus /healthz), and the fleet registers new
// spritefs_live_ families for request counts and latency distributions.
package live
