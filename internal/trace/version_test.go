package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

func writeVersioned(t *testing.T, ver uint16, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterVersion(&buf, ver)
	if err != nil {
		t.Fatalf("NewWriterVersion(%d): %v", ver, err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

func TestBinaryVersionRoundTrip(t *testing.T) {
	recs := []Record{
		{Time: time.Second, Kind: KindOpen, File: 0x42, Handle: 1},
		{Time: 2 * time.Second, Kind: KindClose, File: 0x42, Handle: 1},
	}
	for _, ver := range []uint16{1, 2} {
		r, err := NewReader(bytes.NewReader(writeVersioned(t, ver, recs)))
		if err != nil {
			t.Fatalf("v%d: NewReader: %v", ver, err)
		}
		if got := r.Version(); got != ver {
			t.Fatalf("Version() = %d, want %d", got, ver)
		}
		got, err := Collect(r)
		if err != nil {
			t.Fatalf("v%d: Collect: %v", ver, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("v%d: got %d records, want %d", ver, len(got), len(recs))
		}
	}
}

func TestWriterRejectsUnknownVersion(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriterVersion(&buf, 0); err == nil {
		t.Fatal("NewWriterVersion(0) succeeded, want error")
	}
	if _, err := NewWriterVersion(&buf, MaxVersion+1); err == nil {
		t.Fatalf("NewWriterVersion(%d) succeeded, want error", MaxVersion+1)
	}
	if _, err := NewTextWriterVersion(io.Discard, MaxVersion+1); err == nil {
		t.Fatalf("NewTextWriterVersion(%d) succeeded, want error", MaxVersion+1)
	}
}

func TestTextVersionRoundTrip(t *testing.T) {
	rec := Record{Time: time.Second, Kind: KindRead, File: 7, Handle: 9, Length: 100}
	for _, ver := range []uint16{1, 2} {
		var buf bytes.Buffer
		w, err := NewTextWriterVersion(&buf, ver)
		if err != nil {
			t.Fatalf("NewTextWriterVersion(%d): %v", ver, err)
		}
		if err := w.Write(&rec); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		r, err := NewTextReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("v%d: NewTextReader: %v", ver, err)
		}
		if got := r.Version(); got != ver {
			t.Fatalf("text Version() = %d, want %d", got, ver)
		}
		got, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if got != rec {
			t.Fatalf("round trip: got %+v, want %+v", got, rec)
		}
	}
}

func TestMergeRejectsMixedVersions(t *testing.T) {
	recs := []Record{{Time: time.Second, Kind: KindOpen, File: 1, Handle: 1}}
	r1, err := NewReader(bytes.NewReader(writeVersioned(t, 1, recs)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewReader(bytes.NewReader(writeVersioned(t, 2, recs)))
	if err != nil {
		t.Fatal(err)
	}
	m := Merge(r1, r2)
	if _, err := m.Next(); err == nil || !strings.Contains(err.Error(), "differing header versions") {
		t.Fatalf("Merge(v1, v2).Next() err = %v, want version-mismatch error", err)
	}
}

func TestMergeAcceptsMatchingAndUnversioned(t *testing.T) {
	recs := []Record{{Time: time.Second, Kind: KindOpen, File: 1, Handle: 1}}
	r1, err := NewReader(bytes.NewReader(writeVersioned(t, 2, recs)))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewReader(bytes.NewReader(writeVersioned(t, 2, recs)))
	if err != nil {
		t.Fatal(err)
	}
	mem := NewSliceStream(recs)
	got, err := Collect(Merge(r1, r2, mem))
	if err != nil {
		t.Fatalf("Merge of matching versions failed: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records, want 3", len(got))
	}
}
