package consistency

import (
	"time"

	"spritefs/internal/trace"
)

// EventKind labels a distilled shared-file event.
type EventKind uint8

// Event kinds.
const (
	EvOpen EventKind = iota
	EvClose
	EvRead
	EvWrite
)

// Event is one access to a shared file, distilled from the trace.
type Event struct {
	Time     time.Duration
	Kind     EventKind
	Client   int32
	User     int32
	File     uint64
	Handle   uint64
	Offset   int64
	Bytes    int64
	Write    bool // open/close mode for EvOpen/EvClose
	Migrated bool
	Shared   bool // the record carried FlagShared (logged during CWS)
}

// SharedTrace is the input to the consistency simulators plus the trace
// totals the tables are normalized by.
type SharedTrace struct {
	Events []Event
	// TotalOpens counts all file opens in the trace (Table 10/11 use it
	// as the denominator).
	TotalOpens int64
	// MigratedOpens counts opens by migrated processes.
	MigratedOpens int64
	// Users is the set of users seen anywhere in the trace.
	Users map[int32]bool
	// Duration is the trace length (time of last record).
	Duration time.Duration
}

// CollectShared distills the events the simulators need from a full trace:
// all opens/closes/reads/writes on *shared* files — files accessed from
// more than one client with at least one writer among them — in time
// order. Directories are excluded, as in the paper.
func CollectShared(recs []trace.Record) SharedTrace {
	st := SharedTrace{Users: make(map[int32]bool)}
	type fileUse struct {
		clients map[int32]bool
		written bool
	}
	uses := make(map[uint64]*fileUse)
	for i := range recs {
		r := &recs[i]
		if r.Time > st.Duration {
			st.Duration = r.Time
		}
		st.Users[r.User] = true
		if r.IsDirectory() {
			continue
		}
		switch r.Kind {
		case trace.KindOpen:
			st.TotalOpens++
			if r.IsMigrated() {
				st.MigratedOpens++
			}
		case trace.KindRead, trace.KindWrite, trace.KindClose:
		default:
			continue
		}
		u := uses[r.File]
		if u == nil {
			u = &fileUse{clients: make(map[int32]bool)}
			uses[r.File] = u
		}
		u.clients[r.Client] = true
		if r.Kind == trace.KindWrite || (r.Kind == trace.KindOpen && r.Flags&trace.FlagWriteMode != 0) {
			u.written = true
		}
	}
	shared := make(map[uint64]bool)
	for f, u := range uses {
		if len(u.clients) >= 2 && u.written {
			shared[f] = true
		}
	}
	for i := range recs {
		r := &recs[i]
		if !shared[r.File] || r.IsDirectory() {
			continue
		}
		ev := Event{
			Time:     r.Time,
			Client:   r.Client,
			User:     r.User,
			File:     r.File,
			Handle:   r.Handle,
			Offset:   r.Offset,
			Bytes:    r.Length,
			Migrated: r.IsMigrated(),
			Shared:   r.Flags&trace.FlagShared != 0,
		}
		switch r.Kind {
		case trace.KindOpen:
			ev.Kind = EvOpen
			ev.Write = r.Flags&trace.FlagWriteMode != 0
		case trace.KindClose:
			ev.Kind = EvClose
			ev.Write = r.Flags&trace.FlagWriteMode != 0
		case trace.KindRead:
			ev.Kind = EvRead
		case trace.KindWrite:
			ev.Kind = EvWrite
		default:
			continue
		}
		st.Events = append(st.Events, ev)
	}
	return st
}
