package scale

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/netsim"
	"spritefs/internal/sim"
	"spritefs/internal/stats"
)

// remoteSeedSalt decorrelates the remote-access generator's stream from
// the shard's workload stream (both derive from the shard seed).
const remoteSeedSalt = 0x7e607e60c0ffee

// never is a sentinel virtual time no event ever reaches.
const never = sim.Time(math.MaxInt64)

// RemoteStats accounts one shard's view of cross-segment traffic.
type RemoteStats struct {
	OpsIssued int64 // remote requests this shard's clients sent
	OpsServed int64 // remote requests this shard's servers answered
	Replies   int64 // completions received back
	BytesOut  int64 // logical bytes written to remote shards
	BytesIn   int64 // logical bytes read from remote shards
	// CrossSiteOps counts the issued requests whose home was in another
	// site — the ones that traverse the WAN tier (always 0 in a flat
	// topology).
	CrossSiteOps int64
	// Latency is the end-to-end remote operation latency distribution
	// (request issue to reply arrival), in nanoseconds.
	Latency stats.Welford
	// WANLatency is the same distribution restricted to operations that
	// crossed the WAN tier.
	WANLatency stats.Welford
}

// Shard is one Ethernet segment: a hermetic cluster plus the executor's
// per-shard message state. All fields are owned by whichever goroutine is
// running the shard's round; the coordinator touches inbox/outbox only at
// round exchanges, with channel synchronization ordering the accesses.
type Shard struct {
	ID int
	C  *cluster.Cluster

	rng *sim.Rand // remote-access generator stream

	inbox   []*Message // pending inbound, sorted by (Arrive, From, Seq)
	outbox  []*Message // collected during the current round
	msgFree []*Message // recycled messages (refilled after delivery)
	seq     uint64
	// msgAllocs counts allocMsg calls that found the free list empty and
	// had to allocate. A pure function of the topology and seeds (the
	// channel-clock protocol is deterministic), so it participates in the
	// byte-identity guarantee.
	msgAllocs int64
	// ranTo is the last bound this shard advanced to (the executor's
	// advance-width accounting).
	ranTo sim.Time
	// nextRemoteAt is the remote generator's next fire time (never when
	// the generator is inactive or has stopped). Together with the inbox
	// head it bounds the shard's earliest possible send, which lets the
	// executor stretch per-link channel clocks far beyond the link
	// latency.
	nextRemoteAt sim.Time

	remote RemoteStats

	eng *Engine // topology backref (placement, router config, counters)
}

// Remote returns a snapshot of the shard's cross-segment accounting.
func (sh *Shard) Remote() RemoteStats { return sh.remote }

// allocMsg pops a recycled message (or allocates one). The caller
// overwrites every field, so stale contents cannot leak. Each shard's
// free list is touched only by the goroutine running that shard's round,
// so no locking is needed; messages recycle into the free list of the
// shard that consumed them, which may differ from the one that sent them.
func (sh *Shard) allocMsg() *Message {
	if n := len(sh.msgFree); n > 0 {
		m := sh.msgFree[n-1]
		sh.msgFree = sh.msgFree[:n-1]
		return m
	}
	sh.msgAllocs++
	return &Message{}
}

// freeMsg recycles a fully consumed message.
func (sh *Shard) freeMsg(m *Message) { sh.msgFree = append(sh.msgFree, m) }

// send stamps m with the shard's identity and sequence number and queues
// it for routing at the next exchange.
func (sh *Shard) send(m *Message) {
	m.From = sh.ID
	sh.seq++
	m.Seq = sh.seq
	sh.outbox = append(sh.outbox, m)
}

// startRemote schedules the shard's cross-segment traffic generator: a
// Poisson process over the shard's client count, stopping at the horizon.
func (sh *Shard) startRemote(horizon time.Duration) {
	sh.nextRemoteAt = never
	cfg := sh.eng.Cfg.Remote
	if cfg.OpsPerClientHour <= 0 || len(sh.eng.Shards) < 2 || len(sh.C.Clients) == 0 {
		return
	}
	mean := time.Duration(float64(time.Hour) / (cfg.OpsPerClientHour * float64(len(sh.C.Clients))))
	if mean <= 0 {
		mean = time.Second
	}
	arm := func() {
		sh.nextRemoteAt = sh.C.Sim.Now() + sh.rng.ExpDur(mean)
	}
	var tick func()
	tick = func() {
		if sh.C.Sim.Now() >= horizon {
			sh.nextRemoteAt = never
			return
		}
		sh.issueRemote()
		arm()
		sh.C.Sim.At(sh.nextRemoteAt, tick)
	}
	arm()
	sh.C.Sim.At(sh.nextRemoteAt, tick)
}

// earliestSend bounds when the shard could next emit a cross-shard
// message: sends happen only from the remote generator's ticks and from
// serving inbound requests, both of whose next occurrence times are known.
func (sh *Shard) earliestSend() sim.Time {
	t := sh.nextRemoteAt
	if len(sh.inbox) > 0 && sh.inbox[0].Arrive < t {
		t = sh.inbox[0].Arrive
	}
	return t
}

// issueRemote emits one cross-segment operation: pick a remote placed
// file (site-affine when the topology has sites), pay the local segment
// hop from the client to the router gateway, and send the request across
// the backbone.
func (sh *Shard) issueRemote() {
	cfg := sh.eng.Cfg.Remote
	pf, ok := sh.eng.Placement.PickRemote(sh.rng, sh.ID, cfg.SiteAffinity)
	if !ok {
		return
	}
	if !sh.eng.topo.SameSite(sh.ID, pf.Shard) {
		sh.remote.CrossSiteOps++
	}
	now := sh.C.Sim.Now()
	client := int32(sh.rng.Intn(len(sh.C.Clients)))
	bytes := int64(sh.rng.LogNormal(cfg.BytesMedian, cfg.BytesSigma)) + 1
	m := sh.allocMsg()
	*m = Message{
		Send:   now,
		To:     pf.Shard,
		Client: client,
		File:   pf.File,
		Server: pf.Server,
		Issued: now,
	}
	if sh.rng.Bool(cfg.ReadFrac) {
		if pf.Size > 0 && bytes > pf.Size {
			bytes = pf.Size
		}
		m.Kind = RemoteRead
		m.Bytes = bytes
		m.Payload = ctrlBytes
		// Client → gateway hop: a small control RPC on the local segment.
		sh.C.Net.RPCTo(netsim.AnyServer, client, netsim.Control, ctrlBytes)
	} else {
		m.Kind = RemoteWrite
		m.Bytes = bytes
		m.Payload = ctrlBytes + bytes
		// The write's data crosses the local segment to the gateway too.
		sh.C.Net.RPCTo(netsim.AnyServer, client, netsim.SharedWrite, bytes)
		sh.remote.BytesOut += bytes
	}
	sh.remote.OpsIssued++
	sh.send(m)
}

// deliver handles one inbound message at its arrival time. The message is
// fully consumed by the handler, so it is recycled into this shard's free
// list afterwards (serve copies every field it forwards into the reply).
func (sh *Shard) deliver(m *Message) {
	switch m.Kind {
	case RemoteRead, RemoteWrite:
		sh.serve(m)
	case RemoteReply:
		sh.complete(m)
	default:
		panic(fmt.Sprintf("scale: shard %d received unknown message kind %v", sh.ID, m.Kind))
	}
	sh.freeMsg(m)
}

// serve answers a remote request against the shard's server group: the
// gateway crosses the local segment to the placed file's server, the
// server's storage is exercised, and the reply goes back across the
// backbone after the service time has elapsed.
func (sh *Shard) serve(m *Message) {
	now := sh.C.Sim.Now()
	srvIdx := int(m.Server)
	if srvIdx < 0 || srvIdx >= len(sh.C.Servers) {
		srvIdx = 0
	}
	srv := sh.C.Servers[srvIdx]
	// The gateway acts on the local segment as a pseudo-client, so remote
	// load is visible in the segment's per-client accounting without
	// colliding with real workstations. Same-site requests arrive through
	// a per-source-segment gateway; cross-site requests funnel through
	// the site's WAN gateway, one pseudo-client per remote site — the
	// concentration point a real site border router would be.
	gw := int32(-100 - m.From)
	if !sh.eng.topo.SameSite(sh.ID, m.From) {
		gw = int32(-1000 - sh.eng.topo.SiteOf(m.From))
	}
	var service time.Duration
	if m.Kind == RemoteRead {
		service += srv.ServeSpan(m.File, 0, m.Bytes, now)
		service += sh.C.Net.RPCTo(srv.ID(), gw, netsim.SharedRead, m.Bytes)
	} else {
		srv.AcceptSpan(m.File, 0, m.Bytes, now)
		service += sh.C.Net.RPCTo(srv.ID(), gw, netsim.SharedWrite, m.Bytes)
	}
	sh.remote.OpsServed++
	payload := int64(ctrlBytes)
	if m.Kind == RemoteRead {
		payload = m.Bytes
	}
	reply := sh.allocMsg()
	*reply = Message{
		Send:    now + service,
		To:      m.From,
		Kind:    RemoteReply,
		Op:      m.Kind,
		Client:  m.Client,
		File:    m.File,
		Server:  m.Server,
		Bytes:   m.Bytes,
		Payload: payload,
		Issued:  m.Issued,
	}
	sh.send(reply)
}

// complete finishes a remote operation at its requesting shard: the data
// (or ack) crosses the local segment from the gateway to the client, and
// the end-to-end latency is recorded.
func (sh *Shard) complete(m *Message) {
	now := sh.C.Sim.Now()
	class := netsim.Control
	if m.Op == RemoteRead {
		class = netsim.SharedRead
		sh.remote.BytesIn += m.Bytes
	}
	sh.C.Net.RPCTo(netsim.AnyServer, m.Client, class, m.Payload)
	sh.remote.Replies++
	sh.remote.Latency.Add(float64(now - m.Issued))
	if !sh.eng.topo.SameSite(sh.ID, m.From) {
		sh.remote.WANLatency.Add(float64(now - m.Issued))
	}
}

// enqueue adds routed messages to the inbox, restoring the (Arrive, From,
// Seq) order. Called only at round exchanges by the coordinator.
func (sh *Shard) enqueue(msgs []*Message) {
	if len(msgs) == 0 {
		return
	}
	sh.inbox = append(sh.inbox, msgs...)
	slices.SortFunc(sh.inbox, func(a, b *Message) int {
		if c := cmp.Compare(a.Arrive, b.Arrive); c != 0 {
			return c
		}
		if c := cmp.Compare(a.From, b.From); c != 0 {
			return c
		}
		return cmp.Compare(a.Seq, b.Seq)
	})
}

// advanceTo runs the shard to its channel-clock bound: due inbound
// messages are scheduled at their arrival times, then the simulator runs
// every event at or before the bound. Messages emitted during the round
// accumulate in the outbox for the exchange.
func (sh *Shard) advanceTo(end sim.Time) {
	n := 0
	for ; n < len(sh.inbox) && sh.inbox[n].Arrive <= end; n++ {
		m := sh.inbox[n]
		if m.Arrive < sh.C.Sim.Now() {
			panic(fmt.Sprintf("scale: shard %d message arrival %v before clock %v (lookahead violated)",
				sh.ID, m.Arrive, sh.C.Sim.Now()))
		}
		sh.C.Sim.At(m.Arrive, func() { sh.deliver(m) })
	}
	sh.inbox = sh.inbox[n:]
	sh.C.Sim.RunUntil(end)
}

// takeOutbox returns the round's outbound messages and resets the outbox,
// keeping its backing array for the next round. The returned slice is
// valid until the shard's next round, which cannot start before the
// coordinator finishes the exchange.
func (sh *Shard) takeOutbox() []*Message {
	out := sh.outbox
	sh.outbox = sh.outbox[:0]
	return out
}

// nextAt returns the earliest pending local event or inbound arrival.
func (sh *Shard) nextAt() (sim.Time, bool) {
	t, ok := sh.C.Sim.NextAt()
	if len(sh.inbox) > 0 && (!ok || sh.inbox[0].Arrive < t) {
		return sh.inbox[0].Arrive, true
	}
	return t, ok
}
