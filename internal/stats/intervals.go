package stats

import "time"

// IntervalAgg divides a time axis into fixed-width intervals and accumulates
// a float64 per (interval, key) pair. It drives Table 2 of the paper, where
// each trace is split into 10-minute and 10-second intervals and per-user
// throughput is computed per interval.
type IntervalAgg struct {
	width time.Duration
	// cells maps interval index -> key -> accumulated value.
	cells map[int64]map[int]float64
}

// NewIntervalAgg returns an aggregator with the given interval width.
// It panics on a non-positive width.
func NewIntervalAgg(width time.Duration) *IntervalAgg {
	if width <= 0 {
		panic("stats: non-positive interval width")
	}
	return &IntervalAgg{width: width, cells: make(map[int64]map[int]float64)}
}

// Index returns the interval index containing time t.
func (a *IntervalAgg) Index(t time.Duration) int64 { return int64(t / a.width) }

// Add accumulates v for key at time t. Keys are small integers (user IDs).
func (a *IntervalAgg) Add(t time.Duration, key int, v float64) {
	idx := a.Index(t)
	m := a.cells[idx]
	if m == nil {
		m = make(map[int]float64)
		a.cells[idx] = m
	}
	m[key] += v
}

// Touch marks (interval, key) as active without adding value. A user with a
// trace record but zero bytes in an interval still counts as active.
func (a *IntervalAgg) Touch(t time.Duration, key int) { a.Add(t, key, 0) }

// NumIntervals returns the number of intervals with at least one active key.
func (a *IntervalAgg) NumIntervals() int { return len(a.cells) }

// Width returns the interval width.
func (a *IntervalAgg) Width() time.Duration { return a.width }

// Summary describes the per-interval activity statistics that Table 2
// reports for one interval width.
type Summary struct {
	// ActiveUsers aggregates the number of active keys per interval.
	ActiveUsers Welford
	// MaxActive is the maximum number of simultaneously active keys.
	MaxActive int
	// PerUser aggregates per-(interval,key) accumulated values: each
	// user-interval is one observation, matching the paper's "standard
	// deviations of each user-interval from the long-term average across
	// all user-intervals".
	PerUser Welford
	// PeakUser is the largest single (interval,key) value.
	PeakUser float64
	// PeakTotal is the largest per-interval sum over keys.
	PeakTotal float64
}

// Summarize computes activity statistics over all populated intervals.
func (a *IntervalAgg) Summarize() Summary {
	var s Summary
	for _, m := range a.cells {
		if len(m) > s.MaxActive {
			s.MaxActive = len(m)
		}
		s.ActiveUsers.Add(float64(len(m)))
		total := 0.0
		for _, v := range m {
			s.PerUser.Add(v)
			if v > s.PeakUser {
				s.PeakUser = v
			}
			total += v
		}
		if total > s.PeakTotal {
			s.PeakTotal = total
		}
	}
	return s
}
