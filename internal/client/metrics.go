package client

import (
	"strconv"

	"spritefs/internal/metrics"
)

// RegisterMetrics registers this workstation's counters — cache, VM,
// write-sharing pass-through, omniscient staleness accounting and crash
// recovery — into the central registry, labeled client="<id>". The cache
// families use the spritefs_cache prefix shared by every client cache, so
// cluster-wide sums are a one-call projection.
func (c *Client) RegisterMetrics(r *metrics.Registry) {
	ls := metrics.Labels{metrics.L("client", strconv.Itoa(int(c.cfg.ID)))}
	c.Cache.RegisterMetrics(r, "spritefs_cache", ls)
	c.VM.RegisterMetrics(r, ls)

	ctr := func(name, unit, help string, v *int64) {
		r.IntVar(metrics.Desc{Name: name, Unit: unit, Help: help, Kind: metrics.Counter}, ls, v)
	}
	ctr("spritefs_client_shared_read_bytes_total", "bytes",
		"Bytes read through the server because the file was write-shared and uncacheable (Table 5 shared row).",
		&c.sharedReadBytes)
	ctr("spritefs_client_shared_write_bytes_total", "bytes",
		"Bytes written through the server for uncacheable write-shared files.",
		&c.sharedWriteBytes)
	ctr("spritefs_client_dir_read_bytes_total", "bytes",
		"Directory bytes read through the server (directories are never client-cached in Sprite).",
		&c.dirReadBytes)
	ctr("spritefs_client_stale_reads_total", "reads",
		"Reads that returned stale data under the polling scheme, counted omnisciently against true versions (Section 8 what-if).",
		&c.staleReads)
	ctr("spritefs_client_stale_bytes_total", "bytes",
		"Bytes of stale data those reads served.", &c.staleBytes)
	ctr("spritefs_client_poll_rpcs_total", "ops",
		"Version-check RPCs issued by the polling consistency scheme.", &c.pollRPCs)
	ctr("spritefs_client_writeback_rpc_bytes_total", "bytes",
		"Bytes this client shipped to servers via WriteBack RPCs — the client side of the conservation invariant.",
		&c.bytesWrittenBack)

	rctr := func(name, unit, help string, v *int64) {
		r.IntVar(metrics.Desc{Name: name, Unit: unit, Help: help, Kind: metrics.Counter}, ls, v)
	}
	rctr("spritefs_client_recoveries_total", "runs",
		"Completed runs of the server-recovery protocol.", &c.rec.Recoveries)
	rctr("spritefs_client_reopened_files_total", "files",
		"Per-file re-registrations sent to restarted servers.", &c.rec.ReopenedFiles)
	rctr("spritefs_client_reopened_handles_total", "handles",
		"Open handles covered by those re-registrations (the reopen storm).", &c.rec.ReopenedHandles)
	rctr("spritefs_client_replayed_bytes_total", "bytes",
		"Dirty delayed-write bytes replayed to restarted servers.", &c.rec.ReplayedBytes)
	rctr("spritefs_client_recovery_retries_total", "ops",
		"Backoff retries against servers that were still down.", &c.rec.Retries)
	rctr("spritefs_client_recovery_gave_up_total", "ops",
		"Recovery attempts abandoned after the retry limit.", &c.rec.GaveUp)
	rctr("spritefs_client_crashes_total", "crashes",
		"Times this workstation crashed (fault injection).", &c.rec.Crashes)
	rctr("spritefs_client_lost_dirty_bytes_total", "bytes",
		"Dirty cache bytes destroyed by those crashes — the delayed-write exposure Section 8.2 quantifies.",
		&c.rec.LostDirtyBytes)
	r.SecondsVar(metrics.Desc{Name: "spritefs_client_max_lost_dirty_age_seconds",
		Help: "Age of the oldest dirty byte a crash destroyed; bounded by the 30-second cleaning delay when the cleaner is healthy.",
		Kind: metrics.Gauge},
		ls, &c.rec.MaxLostDirtyAge)
}
