package core

import (
	"fmt"
	"math"
	"strings"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/metrics"
	"spritefs/internal/stats"
	"spritefs/internal/workload"
)

// TimeseriesOptions configures the registry time-series experiment.
type TimeseriesOptions struct {
	// Hours of simulated time (default 2).
	Hours float64
	// Scale shrinks the community as in TraceOptions.
	Scale float64
	Seed  int64
	// Sample is the sampling interval on the virtual clock (default 10s —
	// the paper's short Table 2 interval, so the long 10-minute windows
	// are exact 60-sample strides of the same series).
	Sample time.Duration
}

// RateRow is cluster-wide application throughput re-derived from the
// sampled series at one averaging width.
type RateRow struct {
	Width     time.Duration
	Intervals int     // non-overlapping windows measured
	AvgKBs    float64 // mean rate over windows
	PeakKBs   float64 // max rate over any window
}

// TimeseriesResult is the Table 2 burstiness contrast, recomputed from one
// run's metric time series instead of from trace records: the same
// cumulative byte counters, differenced at 10-second and 10-minute widths.
type TimeseriesResult struct {
	Hours   float64
	Sample  time.Duration
	Short   RateRow // width = Sample
	Long    RateRow // width = 10 minutes (Table 2's long interval)
	Sampler *metrics.Sampler
}

// tsFamilies are the cumulative counters whose per-sample sum is "bytes
// presented by applications": cache reads and writes plus the uncacheable
// pass-through traffic — the Table 5 numerator, sampled over time.
var tsFamilies = map[string]bool{
	"spritefs_cache_read_bytes_total":          true,
	"spritefs_cache_write_bytes_total":         true,
	"spritefs_client_shared_read_bytes_total":  true,
	"spritefs_client_shared_write_bytes_total": true,
	"spritefs_client_dir_read_bytes_total":     true,
}

// RunTimeseries runs the community once with the registry sampler on and
// re-derives the paper's Table 2 contrast from the stored series: averaged
// over 10-minute windows the cluster looks placid, while the same series
// differenced at 10 seconds exposes the bursts — the paper's point that
// interval width hides or reveals burstiness. One run, one store, two
// projections.
func RunTimeseries(opts TimeseriesOptions) *TimeseriesResult {
	hours := opts.Hours
	if hours <= 0 {
		hours = 2
	}
	sample := opts.Sample
	if sample <= 0 {
		sample = 10 * time.Second
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 424242
	}
	// Same community as the counter study (big-file users included), so
	// the sampled series carries the traffic the Section 5 tables measure.
	p := workload.Default(seed)
	p.EmitBackupNoise = false
	p.BigSimUsers = 1
	p.SimInputMB = 6
	p.SimOutputMB = 2
	p = scaleParams(p, opts.Scale)

	dur := time.Duration(hours * float64(time.Hour))
	cfg := cluster.DefaultConfig(p)
	cfg.CollectTrace = false
	cfg.SamplePeriod = 0
	cfg.MetricsSample = sample
	cfg.MetricsSampleCap = int(dur/sample) + 8
	cfg.MetricsMatch = func(name string) bool { return tsFamilies[name] }
	cl := cluster.New(cfg)
	cl.Run(dur)

	res := &TimeseriesResult{Hours: hours, Sample: sample, Sampler: cl.MetricSampler}
	total := totalSeries(cl.MetricSampler)
	res.Short = rates(total, sample, 1)
	stride := int(10 * time.Minute / sample)
	if stride < 1 {
		stride = 1
	}
	res.Long = rates(total, sample, stride)
	return res
}

// totalSeries sums the sampled cumulative counters row-wise into one
// cluster-wide series. Cache families register a scope label ("all" plus
// the "migrated" subset); only scope="all" columns count, so migrated
// traffic is not double-counted.
func totalSeries(s *metrics.Sampler) []float64 {
	var total []float64
	for _, ser := range s.All() {
		if strings.Contains(ser.Labels, `scope="migrated"`) {
			continue
		}
		if total == nil {
			total = make([]float64, len(ser.Values))
		}
		for i, v := range ser.Values {
			if !math.IsNaN(v) {
				total[i] += v
			}
		}
	}
	return total
}

// rates differences the cumulative series at non-overlapping windows of
// stride samples and returns throughput statistics in Kbytes/second.
func rates(total []float64, sample time.Duration, stride int) RateRow {
	row := RateRow{Width: time.Duration(stride) * sample}
	secs := row.Width.Seconds()
	var w stats.Welford
	for i := stride; i < len(total); i += stride {
		w.Add((total[i] - total[i-stride]) / 1024 / secs)
	}
	row.Intervals = int(w.N())
	row.AvgKBs = w.Mean()
	row.PeakKBs = w.Max()
	return row
}

// TimeseriesTables renders the contrast next to the paper's Table 2
// framing (long intervals average away the bursts short ones expose).
func TimeseriesTables(r *TimeseriesResult) string {
	t := stats.NewTable(
		fmt.Sprintf("Table 2 contrast from one sampled series (%.1fh run, %v samples)",
			r.Hours, r.Sample),
		"interval", "windows", "avg KB/s", "peak KB/s")
	add := func(row RateRow) {
		t.AddRow(row.Width.String(),
			fmt.Sprintf("%d", row.Intervals),
			fmt.Sprintf("%.1f", row.AvgKBs),
			fmt.Sprintf("%.1f", row.PeakKBs))
	}
	add(r.Long)
	add(r.Short)
	var b strings.Builder
	b.WriteString(t.String())
	if r.Long.PeakKBs > 0 {
		fmt.Fprintf(&b, "\npeak %v rate is %.1fx the peak %v rate "+
			"(the paper's burstiness point: long intervals hide what short ones expose)\n",
			r.Short.Width, r.Short.PeakKBs/r.Long.PeakKBs, r.Long.Width)
	}
	return b.String()
}
