// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them side by side with the published values. It is
// the tool behind EXPERIMENTS.md.
//
// Usage:
//
//	experiments -exp section4 -traces 1,2 -hours 4 -scale 0.5
//	experiments -exp section5 -days 1 -scale 0.5
//	experiments -exp all -hours 24 -days 14        # full-scale, slow
//	experiments -exp scale -clients 1000 -shards 1,2,4,8 -hours 0.25
//	experiments -exp wanscale -clients 10000 -segments 8 -sites 1,2,4,8
//	experiments -exp wanscale -clients 1000000 -segments 200 -sites 20 -lean -hours 0.02
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"spritefs/internal/core"
	"spritefs/internal/prof"
	"spritefs/internal/shutdown"
	"spritefs/internal/stats"
)

// flagScope says which experiments each flag applies to; validateFlags
// rejects explicitly-set flags the chosen experiment would silently
// ignore. Flags absent from the map (exp, seed, cpuprofile,
// memprofile) apply everywhere.
var flagScope = map[string][]string{
	"traces":         {"all", "section4"},
	"hours":          {"all", "section4", "faults", "timeseries", "scale", "wanscale", "workloads"},
	"days":           {"all", "section5"},
	"scale":          {"all", "section4", "section5", "faults", "timeseries", "workloads"},
	"cdfdir":         {"all", "section4"},
	"faults":         {"faults"},
	"metrics-out":    {"timeseries"},
	"metrics-format": {"timeseries"},
	"metrics-sample": {"timeseries"},
	"shards":         {"scale"},
	"clients":        {"scale", "wanscale"},
	"sequential":     {"scale", "wanscale"},
	"workers":        {"scale", "wanscale"},
	"sites":          {"wanscale"},
	"segments":       {"wanscale"},
	"lean":           {"wanscale"},
}

var validExps = []string{"all", "section4", "section5", "faults", "timeseries", "scale", "wanscale", "workloads"}

// validateFlags fails fast on unknown -exp names and on contradictory
// combinations instead of silently running the default.
func validateFlags(exp string, set map[string]bool, metricsFmt string) error {
	known := false
	for _, e := range validExps {
		if exp == e {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q (want one of %s)", exp, strings.Join(validExps, ", "))
	}
	for name := range set {
		scope, ok := flagScope[name]
		if !ok {
			continue
		}
		applies := false
		for _, e := range scope {
			if e == exp {
				applies = true
				break
			}
		}
		if !applies {
			return fmt.Errorf("-%s does not apply to -exp %s (valid for: %s)",
				name, exp, strings.Join(scope, ", "))
		}
	}
	if set["metrics-format"] && !set["metrics-out"] {
		return fmt.Errorf("-metrics-format without -metrics-out writes nothing; add -metrics-out")
	}
	switch metricsFmt {
	case "tsv", "prom", "jsonl":
	default:
		return fmt.Errorf("unknown -metrics-format %q (want tsv, prom or jsonl)", metricsFmt)
	}
	return nil
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, section4, section5, faults, timeseries, scale, wanscale, workloads")
		traces  = flag.String("traces", "1,2,3,4,5,6,7,8", "comma-separated trace numbers for section4")
		hours   = flag.Float64("hours", 24, "simulated hours per trace")
		days    = flag.Float64("days", 14, "simulated days for the counter study")
		scale   = flag.Float64("scale", 1.0, "community scale factor (1.0 = 40 clients)")
		seed    = flag.Int64("seed", 0, "seed offset")
		cdfDir  = flag.String("cdfdir", "", "write the Figure 1-4 CDF series as TSV files into this directory")
		sched   = flag.String("faults", "", "fault schedule for -exp faults (default: one server crash per hour)")
		tsOut   = flag.String("metrics-out", "", "for -exp timeseries: also write the sampled series to this file ('-' = stdout)")
		tsFmt   = flag.String("metrics-format", "tsv", "series dump format: tsv | prom | jsonl")
		tsIntv  = flag.Duration("metrics-sample", 10*time.Second, "sampling interval for -exp timeseries")
		shards  = flag.String("shards", "1,2,4,8", "comma-separated shard counts for -exp scale")
		clients = flag.Int("clients", 0, "total community size for -exp scale (default 1000) or wanscale (default 10000)")
		seqExec = flag.Bool("sequential", false, "for -exp scale/wanscale: force the sequential executor")
		workers = flag.Int("workers", 0, "for -exp scale/wanscale: parallel executor goroutines (0 = GOMAXPROCS)")
		sites   = flag.String("sites", "1,2,4,8", "comma-separated site counts for -exp wanscale")
		segs    = flag.Int("segments", 8, "total segment count for -exp wanscale (each site count must divide it)")
		lean    = flag.Bool("lean", false, "for -exp wanscale: skip per-client metric instances (needed for million-client runs)")
		cpuProf = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	)
	flag.Parse()

	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if err := validateFlags(*exp, setFlags, *tsFmt); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		flag.Usage()
		os.Exit(2)
	}
	// Profile files are created before any experiment runs so a bad path
	// fails in milliseconds, not after hours of simulation.
	pp, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	defer func() {
		if err := pp.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}()
	// SIGINT/SIGTERM mid-study: flush the profiles before exiting so a
	// -cpuprofile of an aborted multi-hour run is still loadable.
	guard := shutdown.NewGuard()
	defer guard.Close()
	guard.Add(func() { pp.Stop() })

	if *exp == "all" || *exp == "section4" {
		nums, err := parseTraces(*traces)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		var results []*core.TraceResult
		for _, n := range nums {
			fmt.Fprintf(os.Stderr, "running trace %d (%.1fh, scale %.2f)...\n", n, *hours, *scale)
			r, err := core.RunTrace(n, core.TraceOptions{Hours: *hours, Scale: *scale, SeedOffset: *seed})
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "  %d records\n", r.Records)
			results = append(results, r)
		}
		fmt.Println(core.TraceReport(results))
		if *cdfDir != "" {
			if err := writeCDFs(*cdfDir, results); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}

	if *exp == "all" || *exp == "section5" {
		fmt.Fprintf(os.Stderr, "running counter study (%.1f days, scale %.2f)...\n", *days, *scale)
		r := core.RunCounterStudy(core.CounterOptions{Days: *days, Scale: *scale, Seed: *seed})
		fmt.Println(core.CounterTables(r))
	}

	if *exp == "timeseries" {
		fmt.Fprintf(os.Stderr, "running timeseries study (%.1fh, scale %.2f, sample %v)...\n",
			*hours, *scale, *tsIntv)
		r := core.RunTimeseries(core.TimeseriesOptions{
			Hours: *hours, Scale: *scale, Seed: *seed, Sample: *tsIntv,
		})
		fmt.Println(core.TimeseriesTables(r))
		if *tsOut != "" {
			if err := dumpSeries(r, *tsOut, *tsFmt); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}

	if *exp == "faults" {
		fmt.Fprintf(os.Stderr, "running fault study (%.1fh per writeback setting, scale %.2f)...\n",
			*hours, *scale)
		r, err := core.RunFaultStudy(core.FaultOptions{
			Hours: *hours, Scale: *scale, Seed: *seed, Schedule: *sched,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(core.FaultTables(r))
	}

	if *exp == "scale" {
		counts, err := parseShards(*shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		scaleHours := *hours
		if !setFlags["hours"] {
			scaleHours = 0 // RunScaleStudy's short default, not the trace studies' 24h
		}
		fmt.Fprintf(os.Stderr, "running scale study (%d clients, shards %s)...\n", *clients, *shards)
		r, err := core.RunScaleStudy(core.ScaleOptions{
			Clients: *clients, Shards: counts, Hours: scaleHours,
			Seed: *seed, Sequential: *seqExec, Workers: *workers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(core.ScaleTables(r))
	}

	if *exp == "workloads" {
		wlHours := *hours
		if !setFlags["hours"] {
			wlHours = 0 // RunWorkloadStudy's 2h default, not the trace studies' 24h
		}
		fmt.Fprintf(os.Stderr, "running workload study (%.1fh per community, scale %.2f)...\n",
			wlHours, *scale)
		r := core.RunWorkloadStudy(core.WorkloadOptions{
			Hours: wlHours, Scale: *scale, Seed: *seed,
		})
		fmt.Println(core.WorkloadTables(r))
	}

	if *exp == "wanscale" {
		counts, err := parseShards(*sites)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		wanHours := *hours
		if !setFlags["hours"] {
			wanHours = 0 // RunWANScaleStudy's short default, not the trace studies' 24h
		}
		wanClients := *clients
		if wanClients <= 0 {
			wanClients = 10000 // RunWANScaleStudy's default
		}
		fmt.Fprintf(os.Stderr, "running wanscale study (%d clients, %d segments, sites %s)...\n",
			wanClients, *segs, *sites)
		r, err := core.RunWANScaleStudy(core.WANScaleOptions{
			Clients: *clients, Segments: *segs, Sites: counts, Hours: wanHours,
			Seed: *seed, Sequential: *seqExec, Workers: *workers, Lean: *lean,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(core.WANScaleTables(r))
	}
}

// parseShards parses the -shards list.
func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shard counts selected")
	}
	return out, nil
}

// dumpSeries writes the timeseries study's sampled registry series.
func dumpSeries(r *core.TimeseriesResult, path, format string) error {
	if path == "-" {
		return r.Sampler.Dump(os.Stdout, format)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Sampler.Dump(f, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeCDFs dumps the Figure 1-4 cumulative distributions as TSV series,
// one file per (figure, weighting, trace), ready for gnuplot:
//
//	fig1-runs.t3.tsv   fig1-bytes.t3.tsv   fig2-files.t3.tsv ...
func writeCDFs(dir string, results []*core.TraceResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range results {
		series := map[string]*stats.Hist{
			"fig1-runs":  r.Access.RunsByCount,
			"fig1-bytes": r.Access.RunsByBytes,
			"fig2-files": r.Access.SizeByFiles,
			"fig2-bytes": r.Access.SizeByBytes,
			"fig3-opens": r.Access.OpenTimes,
			"fig4-files": r.Lifetime.ByFiles,
			"fig4-bytes": r.Lifetime.ByBytes,
		}
		for name, h := range series {
			path := filepath.Join(dir, fmt.Sprintf("%s.t%d.tsv", name, r.TraceNum))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			fmt.Fprintf(f, "# %s trace %d: x, cumulative fraction\n", name, r.TraceNum)
			for _, p := range h.CDF() {
				fmt.Fprintf(f, "%g\t%.5f\n", p.X, p.Frac)
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(os.Stderr, "wrote CDF series for %d traces to %s\n", len(results), dir)
	return nil
}

func parseTraces(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 || n > 8 {
			return nil, fmt.Errorf("bad trace number %q (want 1-8)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no traces selected")
	}
	return out, nil
}
