package live

import (
	"sync/atomic"
	"testing"
	"time"

	"spritefs/internal/sim"
)

// TestClockCompliance runs the same scheduling scenario against both
// sim.Clock implementations — the virtual-time simulator and the
// wall-clock pacer — and checks the seam's observable contract: After
// fires once, At in the past is clamped (wall clock) and fires, Every
// recurs until stopped, and Now never goes backwards.
func TestClockCompliance(t *testing.T) {
	cases := []struct {
		name string
		// build returns the clock, a driver that runs it for roughly d of
		// clock time, and a stopper for an Every ticker (the wall clock
		// must marshal Stop onto its loop).
		build func(t *testing.T) (clk sim.Clock, drive func(d sim.Time), stopTicker func(*sim.Ticker), teardown func())
	}{
		{
			name: "sim",
			build: func(t *testing.T) (sim.Clock, func(sim.Time), func(*sim.Ticker), func()) {
				s := sim.New(1)
				return s, func(d sim.Time) { s.RunUntil(s.Now() + d) },
					func(tk *sim.Ticker) { tk.Stop() }, func() {}
			},
		},
		{
			name: "wallclock",
			build: func(t *testing.T) (sim.Clock, func(sim.Time), func(*sim.Ticker), func()) {
				w := New(sim.New(1))
				w.Start()
				return w, func(d sim.Time) { time.Sleep(time.Duration(d)) },
					func(tk *sim.Ticker) { w.Call(func() { tk.Stop() }) },
					w.Stop
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			clk, drive, stopTicker, teardown := tc.build(t)
			defer teardown()

			var afterFired, atFired atomic.Int64
			var ticks atomic.Int64
			clk.After(10*time.Millisecond, func() { afterFired.Add(1) })
			clk.After(-5, func() { afterFired.Add(1) }) // negative clamps to "now"
			clk.At(clk.Now(), func() { atFired.Add(1) })
			tk := clk.Every(20*time.Millisecond, 20*time.Millisecond, func() { ticks.Add(1) })
			if tk == nil {
				t.Fatal("Every returned nil ticker on a running clock")
			}

			before := clk.Now()
			drive(200 * time.Millisecond)
			after := clk.Now()
			if after < before {
				t.Fatalf("Now went backwards: %v -> %v", before, after)
			}

			if got := afterFired.Load(); got != 2 {
				t.Errorf("After callbacks fired %d times, want 2", got)
			}
			if got := atFired.Load(); got != 1 {
				t.Errorf("At callback fired %d times, want 1", got)
			}
			got := ticks.Load()
			if got < 2 {
				t.Errorf("Every fired %d times in 200ms at 20ms period, want >= 2", got)
			}
			stopTicker(tk)
			settled := ticks.Load()
			drive(100 * time.Millisecond)
			// A tick already in flight when Stop lands may still fire once.
			if d := ticks.Load() - settled; d > 1 {
				t.Errorf("Every fired %d times after Stop", d)
			}
		})
	}
}

// TestWallClockEveryTolerance checks that Every daemons keep real-time
// cadence: a 25ms ticker observed for 500ms must land near 20 fires.
// Bounds are generous (CI schedulers stall), but tight enough to catch a
// pacer that free-runs or stalls outright.
func TestWallClockEveryTolerance(t *testing.T) {
	w := New(sim.New(1))
	w.Start()
	defer w.Stop()

	var ticks atomic.Int64
	const period = 25 * time.Millisecond
	w.Every(period, period, func() { ticks.Add(1) })

	const window = 500 * time.Millisecond
	time.Sleep(window)
	got := ticks.Load()
	want := int64(window / period) // 20
	if got < want/2 || got > want*2 {
		t.Fatalf("ticker fired %d times in %v at %v period, want about %d", got, window, period, want)
	}
}

// TestWallClockNowTracksWall checks the shared origin: the loop's virtual
// now and the wall elapsed time stay within scheduling noise of each other.
func TestWallClockNowTracksWall(t *testing.T) {
	w := New(sim.New(1))
	w.Start()
	defer w.Stop()
	time.Sleep(50 * time.Millisecond)
	var virt sim.Time
	if err := w.Call(func() { virt = w.Sim().Now() }); err != nil {
		t.Fatal(err)
	}
	wall := w.Now()
	if virt > wall {
		t.Fatalf("virtual now %v ahead of wall now %v", virt, wall)
	}
	if wall-virt > 2*time.Second {
		t.Fatalf("virtual now %v lags wall now %v by too much", virt, wall)
	}
}

// TestWallClockStop checks the shutdown contract: Call after Stop returns
// ErrStopped, Go is rejected, Every returns nil, and a Call accepted
// before Stop always executes (never hangs, never silently drops).
func TestWallClockStop(t *testing.T) {
	w := New(sim.New(1))
	w.Start()

	ran := false
	if err := w.Call(func() { ran = true }); err != nil || !ran {
		t.Fatalf("Call before Stop: err=%v ran=%v", err, ran)
	}
	w.Stop()
	if err := w.Call(func() {}); err != ErrStopped {
		t.Fatalf("Call after Stop: err=%v, want ErrStopped", err)
	}
	if w.Go(func() {}) {
		t.Fatal("Go accepted after Stop")
	}
	if tk := w.Every(0, time.Millisecond, func() {}); tk != nil {
		t.Fatal("Every returned a ticker after Stop")
	}
}
