package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultConfigBlockFetchLatency(t *testing.T) {
	// The paper: fetching a 4 KB page from a server's cache takes 6-7 ms.
	n := New(DefaultConfig())
	d := n.RPC(1, FileRead, 4096)
	if d < 6*time.Millisecond || d > 7*time.Millisecond {
		t.Errorf("4KB fetch = %v, want 6-7ms", d)
	}
}

func TestRPCAccounting(t *testing.T) {
	n := New(DefaultConfig())
	n.RPC(1, FileRead, 4096)
	n.RPC(1, FileWrite, 4096)
	n.RPC(2, FileRead, 1024)
	n.RPC(2, Control, 0)

	total := n.Total()
	if total.Bytes[FileRead] != 5120 {
		t.Errorf("FileRead bytes = %d", total.Bytes[FileRead])
	}
	if total.Ops[Control] != 1 {
		t.Errorf("Control ops = %d", total.Ops[Control])
	}
	if total.TotalBytes() != 9216 {
		t.Errorf("TotalBytes = %d", total.TotalBytes())
	}
	if total.TotalOps() != 4 {
		t.Errorf("TotalOps = %d", total.TotalOps())
	}
	if total.ReadBytes() != 5120 || total.WriteBytes() != 4096 {
		t.Errorf("read/write split = %d/%d", total.ReadBytes(), total.WriteBytes())
	}

	c1 := n.Client(1)
	if c1.TotalBytes() != 8192 {
		t.Errorf("client 1 bytes = %d", c1.TotalBytes())
	}
	if got := n.Client(99); got.TotalBytes() != 0 {
		t.Errorf("unknown client traffic = %+v", got)
	}
	if len(n.Clients()) != 2 {
		t.Errorf("Clients = %v", n.Clients())
	}
}

func TestTrafficAdd(t *testing.T) {
	var a, b Traffic
	a.Bytes[FileRead] = 10
	a.Ops[FileRead] = 1
	b.Bytes[FileRead] = 5
	b.Bytes[PagingWrite] = 7
	b.Ops[PagingWrite] = 2
	a.Add(&b)
	if a.Bytes[FileRead] != 15 || a.Bytes[PagingWrite] != 7 || a.Ops[PagingWrite] != 2 {
		t.Errorf("Add wrong: %+v", a)
	}
}

func TestClassProperties(t *testing.T) {
	reads := []Class{FileRead, PagingRead, SharedRead, DirRead}
	writes := []Class{FileWrite, PagingWrite, SharedWrite, Control}
	for _, c := range reads {
		if !c.IsRead() {
			t.Errorf("%v should be a read class", c)
		}
	}
	for _, c := range writes {
		if c.IsRead() {
			t.Errorf("%v should not be a read class", c)
		}
	}
	if FileRead.String() != "file-read" {
		t.Errorf("name = %q", FileRead.String())
	}
	if Class(99).String() != "class(99)" {
		t.Errorf("unknown class name = %q", Class(99).String())
	}
}

func TestUtilization(t *testing.T) {
	n := New(Config{BandwidthBps: 1e6, BaseLatency: 0})
	n.RPC(1, FileRead, 500_000) // 0.5 s of wire time
	if got := n.Utilization(time.Second); got < 0.49 || got > 0.51 {
		t.Errorf("utilization = %g, want ~0.5", got)
	}
	if got := n.Utilization(0); got != 0 {
		t.Errorf("utilization over empty window = %g", got)
	}
	if n.Busy() != 500*time.Millisecond {
		t.Errorf("Busy = %v", n.Busy())
	}
}

func TestRPCPanics(t *testing.T) {
	n := New(DefaultConfig())
	for _, fn := range []func(){
		func() { n.RPC(1, FileRead, -1) },
		func() { n.RPC(1, NumClasses, 1) },
		func() { New(Config{BandwidthBps: 0}) },
		func() { New(Config{BandwidthBps: 1, BaseLatency: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: latency is monotone in payload and total bytes are conserved.
func TestRPCMonotoneAndConserving(t *testing.T) {
	f := func(sizes []uint16) bool {
		n := New(DefaultConfig())
		var sum int64
		var prev time.Duration
		prevSize := int64(-1)
		for _, s := range sizes {
			p := int64(s)
			d := n.RPC(1, FileRead, p)
			if prevSize >= 0 && p >= prevSize && d < prev && p > prevSize {
				return false
			}
			_ = prev
			prev, prevSize = d, p
			sum += p
		}
		return n.Total().Bytes[FileRead] == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRPCZeroAllocSteadyState gates the hot accounting path: once a
// client's slot exists in the dense per-client table, one send/receive
// round trip (a read RPC out, a write RPC back) must not allocate.
// `make allocscheck` runs this.
func TestRPCZeroAllocSteadyState(t *testing.T) {
	n := New(DefaultConfig())
	n.RPCTo(0, 3, FileRead, 4096)    // warm the positive table
	n.RPCTo(0, -101, FileRead, 4096) // warm a gateway pseudo-client slot
	allocs := testing.AllocsPerRun(1000, func() {
		n.RPCTo(0, 3, FileRead, 4096)
		n.RPCTo(0, 3, FileWrite, 4096)
		n.RPCTo(0, -101, Control, 64)
	})
	if allocs != 0 {
		t.Fatalf("round trip allocated %.1f/op in steady state, want 0", allocs)
	}
}

// TestFarClientIDs pins the map fallback for ids beyond the dense-table
// bound: accounting stays exact and Clients() reports every issuer in
// ascending order without growing a huge sparse slice.
func TestFarClientIDs(t *testing.T) {
	n := New(DefaultConfig())
	n.RPC(1<<30, FileRead, 100)
	n.RPC(-(1 << 30), FileWrite, 200)
	n.RPC(5, FileRead, 300)
	n.RPC(-101, Control, 0)
	if got := n.Client(1 << 30).Bytes[FileRead]; got != 100 {
		t.Errorf("far client bytes = %d, want 100", got)
	}
	if got := n.Client(-(1 << 30)).Bytes[FileWrite]; got != 200 {
		t.Errorf("far negative client bytes = %d, want 200", got)
	}
	if len(n.pos) > 6 {
		t.Errorf("dense table grew to %d entries for a far id", len(n.pos))
	}
	ids := n.Clients()
	want := []int32{-(1 << 30), -101, 5, 1 << 30}
	if len(ids) != len(want) {
		t.Fatalf("Clients = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Clients = %v, want %v", ids, want)
		}
	}
}
