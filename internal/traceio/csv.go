package traceio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"spritefs/internal/trace"
)

// CSVMapping describes how the columns of a CSV/TSV I/O trace map onto the
// native record fields. Column indexes are zero-based; -1 marks a field the
// dump does not carry. The defaults fit a minimal
// "time,client,op,path,offset,length" dump; SNIA-style layouts are covered
// by remapping indexes and the separator.
type CSVMapping struct {
	Time   int // required: event timestamp
	Client int // workstation/host column (-1: single client 0)
	User   int // user column (-1: user = client)
	Proc   int // process/thread column (-1: proc = client)
	Op     int // required: operation name
	Path   int // required: file path or name
	Offset int // byte offset (-1 or empty cell: sequential)
	Length int // byte count (-1: 0)
	Size   int // file-size hint (-1: inferred from extents)

	// TimeUnit is the duration of 1.0 in the time column (default 1s,
	// i.e. the column holds possibly-fractional seconds; use
	// time.Microsecond for SNIA block traces).
	TimeUnit time.Duration
	// Comma is the field separator (default ','; '\t' for TSV).
	Comma rune
	// SkipRows is the number of leading rows to discard (header lines
	// that are not '#'-comments).
	SkipRows int
	// Ops adds or overrides operation-name → kind mappings, merged over
	// the built-in table (lower-cased names).
	Ops map[string]trace.Kind
}

// DefaultCSVMapping returns the mapping for a minimal
// "time,client,op,path,offset,length" comma-separated dump with float
// second timestamps.
func DefaultCSVMapping() CSVMapping {
	return CSVMapping{
		Time: 0, Client: 1, Op: 2, Path: 3, Offset: 4, Length: 5,
		User: -1, Proc: -1, Size: -1,
		TimeUnit: time.Second, Comma: ',',
	}
}

// defaultOps is the built-in operation-name table. Names are matched
// lower-case after stripping a leading "nfs3_"/"nfs4_" prefix, so NFS
// dump vocabularies fit without custom mappings.
var defaultOps = map[string]trace.Kind{
	"read": trace.KindRead, "rd": trace.KindRead, "r": trace.KindRead,
	"pread": trace.KindRead, "readv": trace.KindRead,
	"write": trace.KindWrite, "wr": trace.KindWrite, "w": trace.KindWrite,
	"pwrite": trace.KindWrite, "writev": trace.KindWrite,
	"open": trace.KindOpen, "o": trace.KindOpen, "openat": trace.KindOpen,
	"close": trace.KindClose, "c": trace.KindClose, "release": trace.KindClose,
	"create": trace.KindCreate, "creat": trace.KindCreate, "mknod": trace.KindCreate,
	"delete": trace.KindDelete, "unlink": trace.KindDelete,
	"remove": trace.KindDelete, "rm": trace.KindDelete,
	"truncate": trace.KindTruncate, "trunc": trace.KindTruncate,
	"seek": trace.KindReposition, "lseek": trace.KindReposition,
	"reposition": trace.KindReposition,
	"readdir":    trace.KindDirRead, "dirread": trace.KindDirRead,
	"getdents": trace.KindDirRead, "readdirplus": trace.KindDirRead,
	"mkdir": trace.KindCreate, "rmdir": trace.KindDelete,
}

// dirOps flags operations that imply the path is a directory.
var dirOps = map[string]bool{
	"readdir": true, "dirread": true, "getdents": true, "readdirplus": true,
	"mkdir": true, "rmdir": true,
}

// ParseCSVMapping builds a CSVMapping from a compact spec string of
// comma-separated key=value pairs, e.g.
//
//	time=0,client=1,op=2,path=3,offset=4,length=5,unit=us,sep=tab,skip=1
//
// Keys: time, client, user, proc, op, path, offset, length, size (column
// indexes, or "-" for absent); unit (s, ms, us, ns); sep (comma, tab,
// semicolon, space); skip (leading rows); and op.<name>=<kind> entries
// that extend the operation table (e.g. op.WRITE_BLOCK=write). An empty
// spec returns DefaultCSVMapping.
func ParseCSVMapping(spec string) (CSVMapping, error) {
	m := DefaultCSVMapping()
	if strings.TrimSpace(spec) == "" {
		return m, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("traceio: bad mapping entry %q (want key=value)", part)
		}
		key, val := strings.ToLower(strings.TrimSpace(kv[0])), strings.TrimSpace(kv[1])
		if op, ok := strings.CutPrefix(key, "op."); ok {
			kind, known := trace.ParseKind(strings.ToLower(val))
			if !known {
				return m, fmt.Errorf("traceio: op mapping %q: unknown kind %q", part, val)
			}
			if m.Ops == nil {
				m.Ops = make(map[string]trace.Kind)
			}
			m.Ops[strings.ToLower(op)] = kind
			continue
		}
		col := func(dst *int) error {
			if val == "-" || val == "" {
				*dst = -1
				return nil
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("traceio: mapping %s=%q: want a column index or -", key, val)
			}
			*dst = n
			return nil
		}
		var err error
		switch key {
		case "time":
			err = col(&m.Time)
		case "client":
			err = col(&m.Client)
		case "user":
			err = col(&m.User)
		case "proc", "pid":
			err = col(&m.Proc)
		case "op":
			err = col(&m.Op)
		case "path", "file":
			err = col(&m.Path)
		case "offset":
			err = col(&m.Offset)
		case "length", "len":
			err = col(&m.Length)
		case "size":
			err = col(&m.Size)
		case "unit":
			switch strings.ToLower(val) {
			case "s", "sec":
				m.TimeUnit = time.Second
			case "ms":
				m.TimeUnit = time.Millisecond
			case "us", "µs":
				m.TimeUnit = time.Microsecond
			case "ns":
				m.TimeUnit = time.Nanosecond
			default:
				err = fmt.Errorf("traceio: unknown time unit %q", val)
			}
		case "sep":
			switch strings.ToLower(val) {
			case "comma":
				m.Comma = ','
			case "tab":
				m.Comma = '\t'
			case "semicolon":
				m.Comma = ';'
			case "space":
				m.Comma = ' '
			default:
				err = fmt.Errorf("traceio: unknown separator %q", val)
			}
		case "skip":
			m.SkipRows, err = strconv.Atoi(val)
		default:
			err = fmt.Errorf("traceio: unknown mapping key %q", key)
		}
		if err != nil {
			return m, err
		}
	}
	if m.Time < 0 || m.Op < 0 || m.Path < 0 {
		return m, fmt.Errorf("traceio: mapping must place the time, op and path columns")
	}
	return m, nil
}

// ImportCSV parses a CSV/TSV I/O trace according to m and synthesizes a
// native record stream. Malformed rows are skipped and counted, not
// fatal; an input with no usable rows at all is an error.
func ImportCSV(r io.Reader, m CSVMapping, opt Options) ([]trace.Record, *ImportReport, error) {
	opt = opt.withDefaults()
	if m.TimeUnit <= 0 {
		m.TimeUnit = time.Second
	}
	if m.Comma == 0 {
		m.Comma = ','
	}
	rep := &ImportReport{}
	b := newBuilder(opt, rep)
	cr := csv.NewReader(r)
	cr.Comma = m.Comma
	cr.Comment = '#'
	cr.FieldsPerRecord = -1
	cr.LazyQuotes = true
	cr.TrimLeadingSpace = true

	ids := newIDInterner()
	var events []event
	row := 0
	for {
		fields, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			rep.Rows++
			rep.Malformed++
			rep.note("row %d: %v", rep.Rows, err)
			continue
		}
		row++
		if row <= m.SkipRows {
			continue
		}
		rep.Rows++
		ev, skip, err := m.parseRow(fields, ids)
		if err != nil {
			rep.Malformed++
			rep.note("row %d: %v", rep.Rows, err)
			continue
		}
		if skip != "" {
			rep.Ignored++
			rep.note("row %d: %s", rep.Rows, skip)
			continue
		}
		ev.seq = len(events)
		events = append(events, ev)
	}
	recs, err := b.build(events)
	if err != nil {
		return nil, rep, err
	}
	return recs, rep, nil
}

// parseRow converts one CSV row into an event. skip is a non-empty reason
// when the row parses but is intentionally not representable.
func (m *CSVMapping) parseRow(fields []string, ids *idInterner) (event, string, error) {
	var ev event
	get := func(idx int) (string, bool) {
		if idx < 0 || idx >= len(fields) {
			return "", false
		}
		return strings.TrimSpace(fields[idx]), true
	}
	ts, ok := get(m.Time)
	if !ok || ts == "" {
		return ev, "", fmt.Errorf("missing time column %d", m.Time)
	}
	sec, err := strconv.ParseFloat(ts, 64)
	if err != nil || sec < 0 {
		return ev, "", fmt.Errorf("bad timestamp %q", ts)
	}
	ev.time = time.Duration(sec * float64(m.TimeUnit))

	opName, ok := get(m.Op)
	if !ok || opName == "" {
		return ev, "", fmt.Errorf("missing op column %d", m.Op)
	}
	opKey := strings.ToLower(opName)
	opKey = strings.TrimPrefix(opKey, "nfs3_")
	opKey = strings.TrimPrefix(opKey, "nfs4_")
	kind, known := m.Ops[opKey]
	if !known {
		kind, known = defaultOps[opKey]
	}
	if !known {
		if _, stat := statOps[opKey]; stat {
			return ev, fmt.Sprintf("metadata-only op %q", opName), nil
		}
		return ev, "", fmt.Errorf("unknown op %q", opName)
	}
	ev.kind = kind
	if dirOps[opKey] {
		ev.flags |= trace.FlagDirectory
	}

	path, ok := get(m.Path)
	if !ok || path == "" {
		return ev, "", fmt.Errorf("missing path column %d", m.Path)
	}
	ev.path = path

	if c, ok := get(m.Client); ok && c != "" {
		ev.client = ids.intern("client", c)
	}
	ev.user, ev.proc = ev.client, ev.client
	if u, ok := get(m.User); ok && u != "" {
		ev.user = ids.intern("user", u)
	}
	if p, ok := get(m.Proc); ok && p != "" {
		ev.proc = ids.intern("proc", p)
	}

	ev.offset = -1
	if o, ok := get(m.Offset); ok && o != "" && o != "-" {
		v, err := strconv.ParseInt(o, 10, 64)
		if err != nil || v < 0 {
			return ev, "", fmt.Errorf("bad offset %q", o)
		}
		ev.offset = v
	}
	if l, ok := get(m.Length); ok && l != "" && l != "-" {
		v, err := strconv.ParseInt(l, 10, 64)
		if err != nil || v < 0 {
			return ev, "", fmt.Errorf("bad length %q", l)
		}
		ev.length = v
	}
	if s, ok := get(m.Size); ok && s != "" && s != "-" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 0 {
			return ev, "", fmt.Errorf("bad size %q", s)
		}
		ev.size = v
	}
	return ev, "", nil
}

// statOps are metadata-only operations common in NFS dumps that have no
// counterpart in the record vocabulary; rows naming them are counted as
// ignored rather than malformed.
var statOps = map[string]bool{
	"stat": true, "fstat": true, "lstat": true, "getattr": true, "lookup": true,
	"setattr": true, "access": true, "fsinfo": true, "fsstat": true,
	"null": true, "readlink": true, "symlink": true, "rename": true,
	"link": true, "flush": true, "fsync": true, "commit": true,
}

// idInterner maps foreign textual identifiers (hostnames, usernames,
// alphanumeric pids) to dense int32 IDs in first-appearance order.
// Numeric identifiers pass through unchanged, so dumps with integer
// client columns keep their numbering.
type idInterner struct {
	m    map[string]int32
	next map[string]int32
}

func newIDInterner() *idInterner {
	return &idInterner{m: make(map[string]int32), next: make(map[string]int32)}
}

func (in *idInterner) intern(space, s string) int32 {
	if n, err := strconv.ParseInt(s, 10, 32); err == nil && n >= 0 {
		return int32(n)
	}
	key := space + "\x00" + s
	if id, ok := in.m[key]; ok {
		return id
	}
	id := in.next[space]
	in.next[space] = id + 1
	in.m[key] = id
	return id
}
