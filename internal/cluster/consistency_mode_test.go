package cluster

import (
	"testing"
	"time"

	"spritefs/internal/client"
	"spritefs/internal/workload"
)

// sharingParams builds a community with plenty of cross-machine sharing.
func sharingParams(seed int64) workload.Params {
	p := workload.Default(seed)
	p.NumClients, p.DailyUsers, p.OccasionalUsers = 8, 6, 4
	p.EmitBackupNoise = false
	p.AwaySessionProb = 0.4
	p.SharedReadSoonP = 0.95
	for g := workload.Group(0); g < workload.NumGroups; g++ {
		p.AppMix[g][workload.AppSharedLog] *= 3
	}
	return p
}

func runMode(t *testing.T, mode client.ConsistencyMode, interval time.Duration) *Cluster {
	t.Helper()
	cfg := DefaultConfig(sharingParams(4242))
	cfg.NumServers = 2
	cfg.CollectTrace = false
	cfg.Consistency = mode
	cfg.PollInterval = interval
	c := New(cfg)
	c.Run(3 * time.Hour)
	return c
}

func TestSpriteModeServesNoStaleData(t *testing.T) {
	c := runMode(t, client.ConsistencySprite, 0)
	st := c.LiveStaleReport()
	if st.StaleReads != 0 {
		t.Errorf("Sprite served %d stale reads; its guarantee is zero", st.StaleReads)
	}
	// And the consistency machinery was actually exercised.
	t10 := c.Table10Report()
	if t10.RecallPct == 0 {
		t.Error("no recalls in a sharing-heavy run")
	}
}

func TestPollModeServesStaleData(t *testing.T) {
	c := runMode(t, client.ConsistencyPoll, 60*time.Second)
	st := c.LiveStaleReport()
	if st.StaleReads == 0 {
		t.Fatal("polling consistency served no stale reads in a sharing-heavy run")
	}
	if st.PollRPCs == 0 {
		t.Error("no validation RPCs issued")
	}
}

func TestShorterPollWindowReducesStaleReads(t *testing.T) {
	long := runMode(t, client.ConsistencyPoll, 60*time.Second)
	short := runMode(t, client.ConsistencyPoll, 3*time.Second)
	ls := long.LiveStaleReport()
	ss := short.LiveStaleReport()
	if ss.StaleReads >= ls.StaleReads {
		t.Errorf("3s window served %d stale reads, 60s served %d; expected fewer",
			ss.StaleReads, ls.StaleReads)
	}
	// Tighter polling costs more validation RPCs.
	if ss.PollRPCs <= ls.PollRPCs {
		t.Errorf("3s window issued %d poll RPCs, 60s issued %d; expected more",
			ss.PollRPCs, ls.PollRPCs)
	}
}

func TestLiveStaleAgreesWithTraceEstimateInMagnitude(t *testing.T) {
	// The live run and the paper's trace-driven method should land within
	// an order of magnitude of each other (both count potential stale
	// uses under a 60-second window).
	c := runMode(t, client.ConsistencyPoll, 60*time.Second)
	st := c.LiveStaleReport()
	perHour := float64(st.StaleReads) / 3.0
	if perHour <= 0 || perHour > 2000 {
		t.Errorf("live stale reads/hour = %.1f, implausible", perHour)
	}
}
