package analysis

import (
	"spritefs/internal/stats"
	"spritefs/internal/trace"
)

// ConsistencyActions recomputes Table 10 from a trace alone, by replaying
// the server's open/close state machine: concurrent write-sharing events
// (a file becomes open on multiple machines with at least one writer) and
// dirty-data recalls (an open finds the file's current data on another
// client), both as fractions of all file opens.
type ConsistencyActions struct {
	FileOpens int64
	CWS       int64
	Recalls   int64

	files map[uint64]*actionFile
}

type actionFile struct {
	readers    map[int32]int
	writers    map[int32]int
	lastWriter int32
	sharing    bool
}

// NewConsistencyActions returns a Table 10 analyzer.
func NewConsistencyActions() *ConsistencyActions {
	return &ConsistencyActions{files: make(map[uint64]*actionFile)}
}

func (a *ConsistencyActions) file(id uint64) *actionFile {
	f := a.files[id]
	if f == nil {
		f = &actionFile{
			readers:    make(map[int32]int),
			writers:    make(map[int32]int),
			lastWriter: -1,
		}
		a.files[id] = f
	}
	return f
}

// Observe implements Sink.
func (a *ConsistencyActions) Observe(r *trace.Record) {
	if r.IsDirectory() {
		return
	}
	switch r.Kind {
	case trace.KindOpen:
		a.FileOpens++
		f := a.file(r.File)
		if f.lastWriter >= 0 && f.lastWriter != r.Client {
			a.Recalls++
			f.lastWriter = -1
		}
		write := r.Flags&trace.FlagWriteMode != 0
		if write {
			f.writers[r.Client]++
		} else {
			f.readers[r.Client]++
		}
		if !f.sharing && openers(f) >= 2 && len(f.writers) >= 1 {
			f.sharing = true
			a.CWS++
		}
	case trace.KindClose:
		f := a.file(r.File)
		write := r.Flags&trace.FlagWriteMode != 0
		m := f.readers
		if write {
			m = f.writers
		}
		if m[r.Client] > 0 {
			m[r.Client]--
			if m[r.Client] == 0 {
				delete(m, r.Client)
			}
		}
		if write {
			f.lastWriter = r.Client
		}
		if f.sharing && openers(f) == 0 {
			f.sharing = false
		}
	case trace.KindDelete, trace.KindTruncate:
		delete(a.files, r.File)
	}
}

func openers(f *actionFile) int {
	n := len(f.readers)
	for c := range f.writers {
		if f.readers[c] == 0 {
			n++
		}
	}
	return n
}

// Finish implements Sink.
func (a *ConsistencyActions) Finish() {}

// PctCWS returns concurrent write-sharing opens as a percentage of file
// opens (Table 10 row 1; the paper measured about 0.34%).
func (a *ConsistencyActions) PctCWS() float64 { return stats.Ratio(a.CWS, a.FileOpens) }

// PctRecalls returns recall-triggering opens as a percentage of file opens
// (Table 10 row 2; the paper measured about 1.7%).
func (a *ConsistencyActions) PctRecalls() float64 { return stats.Ratio(a.Recalls, a.FileOpens) }
