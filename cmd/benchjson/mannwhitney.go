package main

import (
	"math"
	"sort"
)

// uTest computes the two-sided Mann–Whitney U test p-value for two
// independent samples — the benchstat approach to "is this benchmark
// actually slower, or is the machine just noisy?". With tie-free samples
// small enough to enumerate it uses the exact permutation distribution of
// U; with ties or larger samples it falls back to the normal
// approximation with tie correction and continuity correction. ok is
// false when either sample is too small to say anything (fewer than two
// runs).
func uTest(x, y []float64) (p float64, ok bool) {
	n1, n2 := len(x), len(y)
	if n1 < 2 || n2 < 2 {
		return 0, false
	}
	// Rank the pooled samples, mid-ranks for ties.
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range x {
		all = append(all, obs{v, true})
	}
	for _, v := range y {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	var r1 float64     // rank sum of sample x
	var tieSum float64 // Σ(t³-t) over tie groups, for the variance correction
	ties := false
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		if t := j - i; t > 1 {
			ties = true
			tieSum += float64(t*t*t - t)
		}
		rank := float64(i+j+1) / 2 // mid-rank of positions i..j-1 (1-based)
		for k := i; k < j; k++ {
			if all[k].first {
				r1 += rank
			}
		}
		i = j
	}
	u1 := r1 - float64(n1*(n1+1))/2
	u2 := float64(n1*n2) - u1
	uMin := math.Min(u1, u2)

	if !ties && n1 <= 12 && n2 <= 12 {
		return exactU(int(uMin), n1, n2), true
	}
	// Normal approximation: z on the smaller tail with continuity
	// correction, variance corrected for ties.
	n := float64(n1 + n2)
	mu := float64(n1*n2) / 2
	sigma2 := float64(n1*n2) / 12 * ((n + 1) - tieSum/(n*(n-1)))
	if sigma2 <= 0 {
		// Every pooled value identical: no evidence of any difference.
		return 1, true
	}
	z := (uMin - mu + 0.5) / math.Sqrt(sigma2)
	p = math.Erfc(math.Abs(z) / math.Sqrt2)
	if p > 1 {
		p = 1
	}
	return p, true
}

// exactU computes the exact two-sided p-value 2·P(U <= u) by dynamic
// programming on c(i,j,v), the number of interleavings of i x's and j y's
// whose U statistic is v: c(i,j,v) = c(i-1,j,v-j) + c(i,j-1,v) (the last
// element is either an x, which was passed by all j y's, or a y).
func exactU(u, n1, n2 int) float64 {
	umax := n1 * n2
	if u > umax {
		u = umax
	}
	// c[j][v] for the current i; i=0 has a single arrangement with U=0
	// for every j.
	c := make([][]float64, n2+1)
	for j := range c {
		c[j] = make([]float64, umax+1)
		c[j][0] = 1
	}
	for i := 1; i <= n1; i++ {
		next := make([][]float64, n2+1)
		for j := 0; j <= n2; j++ {
			next[j] = make([]float64, umax+1)
			for v := 0; v <= i*j; v++ {
				var sum float64
				if v-j >= 0 {
					sum += c[j][v-j]
				}
				if j > 0 {
					sum += next[j-1][v]
				}
				next[j][v] = sum
			}
		}
		c = next
	}
	total := binom(n1+n2, n1)
	var tail float64
	for v := 0; v <= u; v++ {
		tail += c[n2][v]
	}
	p := 2 * tail / total
	if p > 1 {
		p = 1
	}
	return p
}

// binom computes C(n, k) in floats (exact at the sample sizes used here).
func binom(n, k int) float64 {
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}
