package traceio_test

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"spritefs/internal/replay"
	"spritefs/internal/trace"
	"spritefs/internal/traceio"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// syntheticCSV deterministically fabricates a plausible multi-client
// CSV I/O dump: a few dozen interleaved sessions with sequential reads,
// rewrites, seeks and deletes, including orphaned accesses (sessions
// whose open precedes the capture window).
func syntheticCSV() string {
	rng := rand.New(rand.NewSource(1991))
	var b strings.Builder
	b.WriteString("# synthetic foreign dump: time,client,op,path,offset,length\n")
	t := 0.0
	paths := make([]string, 24)
	for i := range paths {
		paths[i] = fmt.Sprintf("/vol%d/data/file%02d.dat", i%3, i)
	}
	for s := 0; s < 120; s++ {
		client := fmt.Sprintf("host%02d", rng.Intn(10))
		path := paths[rng.Intn(len(paths))]
		t += rng.Float64() * 0.05
		orphan := rng.Intn(5) == 0
		if !orphan {
			fmt.Fprintf(&b, "%.4f,%s,open,%s,,\n", t, client, path)
		}
		off := 0
		for r := 0; r < 1+rng.Intn(6); r++ {
			t += rng.Float64() * 0.01
			n := 1024 * (1 + rng.Intn(64))
			switch rng.Intn(4) {
			case 0:
				fmt.Fprintf(&b, "%.4f,%s,write,%s,%d,%d\n", t, client, path, off, n)
			case 1:
				fmt.Fprintf(&b, "%.4f,%s,seek,%s,%d,\n", t, client, path, rng.Intn(1<<20))
			default:
				fmt.Fprintf(&b, "%.4f,%s,read,%s,%d,%d\n", t, client, path, off, n)
			}
			off += n
		}
		if rng.Intn(4) != 0 { // some sessions never close inside the window
			t += rng.Float64() * 0.01
			fmt.Fprintf(&b, "%.4f,%s,close,%s,,\n", t, client, path)
		}
		if rng.Intn(20) == 0 {
			t += 0.001
			fmt.Fprintf(&b, "%.4f,%s,delete,%s,,\n", t, client, path)
		}
	}
	return b.String()
}

// importedModernized is the pipeline under test: CSV import followed by a
// modernize pass that exercises every knob.
func importedModernized(t *testing.T) []trace.Record {
	t.Helper()
	recs, _, err := traceio.ImportCSV(strings.NewReader(syntheticCSV()),
		traceio.DefaultCSVMapping(), traceio.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := traceio.Modernize(recs, traceio.Profile{
		SizeScale: 4, RateScale: 2, ClientScale: 2, FileScale: 2,
	})
	return out
}

// TestImportGolden pins the text rendering of the imported handwritten
// sample byte-for-byte; regenerate with -update-golden after an
// intentional importer change.
func TestImportGolden(t *testing.T) {
	recs, _, err := traceio.ImportCSV(strings.NewReader(goldenSampleCSV),
		traceio.DefaultCSVMapping(), traceio.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewTextWriterVersion(&buf, traceio.ImportVersion)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sample_imported.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("imported trace drifted from golden (run with -update-golden if intentional)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

const goldenSampleCSV = `# time,client,op,path,offset,length
0.000,ws1,open,/home/a/paper.tex,,
0.010,ws1,read,/home/a/paper.tex,0,4096
0.020,ws1,read,/home/a/paper.tex,4096,4096
0.030,ws2,write,/home/b/out.log,0,512
0.040,ws1,close,/home/a/paper.tex,,
0.050,ws2,write,/home/b/out.log,512,512
0.060,ws2,seek,/home/b/out.log,0,
0.070,ws2,read,/home/b/out.log,,256
0.080,ws2,delete,/tmp/scratch,,
`

// TestImportedTraceWorkerInvariant is the acceptance criterion: an
// imported-then-modernized trace replayed under a config sweep produces
// byte-identical reports at 1, 2, 4 and 8 workers.
func TestImportedTraceWorkerInvariant(t *testing.T) {
	recs := importedModernized(t)
	if len(recs) == 0 {
		t.Fatal("pipeline produced no records")
	}
	cfgs := []replay.Config{
		{Name: "base", AsFastAsPossible: true},
		{Name: "bigcache", AsFastAsPossible: true, FixedCachePages: 4096},
		{Name: "nocache", AsFastAsPossible: true, FixedCachePages: -1},
		{Name: "prefetch", AsFastAsPossible: true, PrefetchBlocks: 2},
	}
	ref, err := replay.RunSweep(recs, cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	refTSV := replay.SweepTable(ref).TSV()
	for _, workers := range []int{2, 4, 8} {
		got, err := replay.RunSweep(recs, cfgs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range cfgs {
			if ref[i].Stats != got[i].Stats {
				t.Errorf("workers=%d config %q: stats diverge", workers, cfgs[i].Name)
			}
			if !reflect.DeepEqual(ref[i].Report, got[i].Report) {
				t.Errorf("workers=%d config %q: reports diverge", workers, cfgs[i].Name)
			}
		}
		if tsv := replay.SweepTable(got).TSV(); tsv != refTSV {
			t.Fatalf("workers=%d: sweep table not byte-identical to workers=1", workers)
		}
	}
}

// TestImportedTraceReplays sanity-checks that the imported stream
// actually drives the cluster: records apply, files bootstrap, no
// unknown handles (the importer's whole job).
func TestImportedTraceReplays(t *testing.T) {
	recs := importedModernized(t)
	res, err := replay.Run(replay.Config{Name: "smoke", AsFastAsPossible: true},
		trace.NewSliceStream(recs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Applied == 0 {
		t.Fatal("nothing applied")
	}
	if res.Stats.UnknownHandle != 0 {
		t.Fatalf("UnknownHandle = %d, want 0 — importer emitted unbracketed accesses", res.Stats.UnknownHandle)
	}
	if res.Stats.Errors != 0 {
		t.Fatalf("replay errors = %d, want 0", res.Stats.Errors)
	}
}
