// Package migrate models Sprite's process migration as the paper's
// workload uses it: pmake farms compilation (and simulation) jobs out to
// idle workstations. The host-selection policy is biased toward reusing
// recently chosen hosts — the behaviour the paper credits for migrated
// processes' unexpectedly *good* cache hit ratios ("the policy used to
// select hosts for migration tends to reuse the same hosts over and over
// again, which may allow some reuse of data in the caches"). When a
// workstation's owner returns, migrated processes are evicted (their dirty
// pages flushing to backing files — the paging-burst scenario of §5.3).
package migrate
