package stats

import (
	"fmt"
	"strings"
)

// Table renders paper-style plain-text tables: a title, a header row, and
// value rows, with columns padded to their widest cell. It is how
// cmd/experiments prints its paper-vs-measured reports.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns an empty table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of pre-formatted cells. Short rows are padded with
// empty cells; long rows extend the column count.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row where each cell after the label is formatted with
// format (e.g. "%.1f").
func (t *Table) AddRowf(label, format string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.AddRow(cells...)
}

// NumRows returns the number of value rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// TSV renders the table as tab-separated values (no title, no rule line):
// one header row, then one line per value row. The format is stable and
// machine-diffable, which is what the sweep driver's byte-identical
// aggregate reports are compared on.
func (t *Table) TSV() string {
	var b strings.Builder
	write := func(r []string) {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		write(t.Headers)
	}
	for _, r := range t.rows {
		write(r)
	}
	return b.String()
}

// FmtBytes renders a byte count in a compact human unit (K/M/G), matching
// the magnitudes quoted in the paper's prose.
func FmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fG", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
