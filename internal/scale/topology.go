package scale

import (
	"fmt"
	"time"

	"spritefs/internal/cluster"
	"spritefs/internal/netsim"
	"spritefs/internal/workload"
)

// RouterConfig parameterizes the inter-segment backbone. Latency is the
// one-way store-and-forward delay a cross-shard message pays; it is also
// the channel-clock executor's per-link lookahead, so a smaller latency
// means tighter coupling and more synchronization rounds per simulated
// second.
type RouterConfig struct {
	// Latency is the uniform one-way inter-segment delay, used for every
	// link neither LinkLatency nor the tier table overrides. Must be
	// positive: it is the default lookahead floor the executor
	// parallelizes over.
	Latency time.Duration
	// BandwidthBps is the backbone bandwidth in bytes/second shared by
	// all links (payload bytes add Payload/Bandwidth to the delay).
	BandwidthBps float64
	// LinkLatency, when set, prices each directed link separately. It is
	// the bottom layer of the pricing stack: a hierarchical topology's
	// tier table is folded into the same per-link matrix, and an explicit
	// LinkLatency overrides the tier-derived latency link by link. It is
	// consulted once per ordered shard pair at construction and must be
	// deterministic. Individual links may be zero-latency — the executor
	// falls back to serialized stall-breaking rounds on links with no
	// lookahead — but must not be negative.
	LinkLatency func(from, to int) time.Duration
}

// DefaultRouter returns a campus-backbone router: 100 Mbit/s trunk and
// 2 ms store-and-forward latency — an order of magnitude faster than the
// measured segments, as the successor systems' backbones were.
func DefaultRouter() RouterConfig {
	return RouterConfig{Latency: 2 * time.Millisecond, BandwidthBps: 12.5e6}
}

// Tier prices one level of the topology hierarchy: the one-way
// store-and-forward latency of a hop through that tier and the tier
// trunk's bandwidth in bytes/second.
type Tier struct {
	Latency      time.Duration
	BandwidthBps float64
}

// TiersConfig prices the two inter-segment tiers of the segment → site →
// WAN hierarchy. An intra-site message pays one Site hop; a cross-site
// message pays Site (up to the source site's gateway) + WAN (the
// inter-site trunk) + Site (down from the destination site's gateway),
// store-and-forward at each hop. The derived per-link latencies feed the
// channel-clock executor's lookahead matrix directly, so cross-site links
// buy the executor wide windows while intra-site links stay tight.
type TiersConfig struct {
	// Site is the intra-site backbone joining a site's segments (zero =
	// the campus DefaultRouter pricing).
	Site Tier
	// WAN is the inter-site trunk (zero = DefaultTiers' 45 Mbit/s, 30 ms
	// long-haul). WAN.Latency may be zero — the zero-lookahead corner the
	// executor's stall rescue covers — but not negative.
	WAN Tier
}

// DefaultTiers returns the wide-area pricing the wanscale study uses: the
// campus backbone within a site (2 ms, 100 Mbit/s) and a T3-class
// long-haul trunk between sites (30 ms, 45 Mbit/s) — the shape of the
// successor systems' wide-area deployments, where the WAN tier is an
// order of magnitude slower than a site backbone in both dimensions.
func DefaultTiers() TiersConfig {
	return TiersConfig{
		Site: Tier{Latency: 2 * time.Millisecond, BandwidthBps: 12.5e6},
		WAN:  Tier{Latency: 30 * time.Millisecond, BandwidthBps: 5.625e6},
	}
}

// Topology describes the shard grid: Sites sites of SegsPerSite Ethernet
// segments each. The flat (pre-hierarchical) topology is one site
// containing every segment.
type Topology struct {
	Sites       int
	SegsPerSite int
}

// SiteOf returns the site a shard belongs to. Shards are numbered
// site-major: site s owns shards [s*SegsPerSite, (s+1)*SegsPerSite).
func (t Topology) SiteOf(shard int) int { return shard / t.SegsPerSite }

// NumShards returns the total segment count.
func (t Topology) NumShards() int { return t.Sites * t.SegsPerSite }

// SameSite reports whether two shards share a site.
func (t Topology) SameSite(a, b int) bool { return t.SiteOf(a) == t.SiteOf(b) }

// RemoteConfig shapes the cross-segment traffic: how often a client
// reaches across the router, and for what.
type RemoteConfig struct {
	// OpsPerClientHour is the mean number of cross-segment operations one
	// client issues per hour. Zero disables remote traffic (shards run
	// fully decoupled; the executor still barriers but exchanges nothing).
	OpsPerClientHour float64
	// ReadFrac is the fraction of remote operations that are reads of a
	// remote shard's shared artifacts; the rest are writes (remote log
	// appends, result drops).
	ReadFrac float64
	// BytesMedian/BytesSigma give the log-normal size of a remote
	// operation's payload.
	BytesMedian float64
	BytesSigma  float64
	// SiteAffinity is the probability that a remote operation is drawn
	// from the artifacts homed in the client's own site (crossing only
	// the site tier); the rest draw from the global catalog and usually
	// cross the WAN. Ignored in flat (single-site) topologies.
	SiteAffinity float64
}

// DefaultRemote returns the cross-segment mix the scale study uses: a
// handful of remote ops per client-hour (the paper's users touched other
// groups' files rarely but measurably), read-mostly, with small-file
// sized payloads, and site-local artifacts strongly preferred when the
// topology has sites.
func DefaultRemote() RemoteConfig {
	return RemoteConfig{
		OpsPerClientHour: 6,
		ReadFrac:         0.8,
		BytesMedian:      8 * 1024,
		BytesSigma:       1.0,
		SiteAffinity:     0.7,
	}
}

// Config declares a sharded cluster. The zero value is not runnable; at
// minimum Base and Shards must be set. New applies defaults to the rest.
type Config struct {
	// Base is the single-segment community the topology multiplies and
	// shards (usually workload.Default(seed)).
	Base workload.Params
	// Factor scales the community to Factor× the paper's population
	// before sharding (1000 clients = Factor 25). <= 0 means 1.
	Factor float64
	// Shards is the total number of Ethernet segments across all sites.
	// Each segment gets its own netsim instance, server group and
	// community slice.
	Shards int
	// Sites groups the segments into sites joined by a priced WAN tier:
	// segment → site → WAN. 0 or 1 keeps the flat single-site topology.
	// Shards must be divisible by Sites. The community is split
	// site-major (workload.SplitSite then workload.Split), so a site's
	// segments are a pure function of (base seed, site, segment).
	Sites int
	// Tiers prices the site and WAN tiers when Sites > 1 (zero =
	// DefaultTiers). Flat topologies price every link from Router.
	Tiers TiersConfig
	// ServersPerShard sizes each shard's server group (0 = the paper's 4).
	ServersPerShard int
	// Segment overrides each segment's wire parameters (zero keeps the
	// measured 10 Mbit/s Ethernet).
	Segment netsim.Config
	// Router is the inter-segment backbone (zero = DefaultRouter). In a
	// hierarchical topology Router.Latency is only the validation floor;
	// per-link prices come from Tiers unless Router.LinkLatency overrides
	// them link by link.
	Router RouterConfig
	// Remote is the cross-segment traffic mix (zero = DefaultRemote; set
	// Remote.OpsPerClientHour < 0 to disable remote traffic entirely).
	Remote RemoteConfig
	// LeanMetrics skips the per-client metric families in every registry
	// (per-segment and engine-wide); servers, networks, simulators and
	// the scale families still register, and the report computes client
	// cache ratios directly from the clients. A million-client topology
	// would otherwise spend gigabytes on tens of millions of per-client
	// metric instances that no one scrapes at that scale.
	LeanMetrics bool
	// Tune, when set, adjusts each shard's cluster configuration after
	// the defaults are applied (ablations on a sharded world).
	Tune func(shard int, cfg *cluster.Config)
	// SeedMessages pre-populates the shards' message free lists, entry i
	// going to shard i. Benchmarks drain a finished engine's pools with
	// DrainMessagePools and seed the next iteration's engine so allocs/op
	// reflects the executor's steady state rather than cold-start pool
	// growth. Message contents are fully overwritten before use, so
	// seeding never changes simulation output.
	SeedMessages [][]*Message
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.Factor <= 0 {
		c.Factor = 1
	}
	if c.ServersPerShard <= 0 {
		c.ServersPerShard = 4
	}
	if c.Router.Latency <= 0 && c.Router.BandwidthBps == 0 {
		c.Router = DefaultRouter()
	}
	if c.Sites <= 0 {
		c.Sites = 1
	}
	if c.Sites > 1 && c.Tiers == (TiersConfig{}) {
		c.Tiers = DefaultTiers()
	}
	if c.Sites > 1 {
		if c.Tiers.Site.BandwidthBps == 0 {
			c.Tiers.Site.BandwidthBps = c.Router.BandwidthBps
		}
		if c.Tiers.WAN.BandwidthBps == 0 {
			c.Tiers.WAN.BandwidthBps = DefaultTiers().WAN.BandwidthBps
		}
	}
	if c.Remote == (RemoteConfig{}) {
		c.Remote = DefaultRemote()
	}
	if c.Remote.OpsPerClientHour < 0 {
		c.Remote.OpsPerClientHour = 0
	}
	return c
}

// topology derives the shard grid from a defaulted config.
func (c Config) topology() Topology {
	return Topology{Sites: c.Sites, SegsPerSite: c.Shards / c.Sites}
}

// validate rejects configurations the executor cannot run correctly.
func (c Config) validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("scale: need at least one shard (got %d)", c.Shards)
	}
	if c.Sites > c.Shards {
		return fmt.Errorf("scale: %d sites cannot be populated by %d segments", c.Sites, c.Shards)
	}
	if c.Shards%c.Sites != 0 {
		return fmt.Errorf("scale: %d segments do not divide evenly into %d sites", c.Shards, c.Sites)
	}
	if c.Router.Latency <= 0 {
		return fmt.Errorf("scale: router latency must be positive (it is the executor's default lookahead)")
	}
	if c.Router.BandwidthBps <= 0 {
		return fmt.Errorf("scale: router bandwidth must be positive")
	}
	if c.Sites > 1 {
		if c.Tiers.Site.Latency < 0 || c.Tiers.WAN.Latency < 0 {
			return fmt.Errorf("scale: tier latencies must be non-negative (site %v, wan %v)",
				c.Tiers.Site.Latency, c.Tiers.WAN.Latency)
		}
		if c.Tiers.Site.BandwidthBps <= 0 || c.Tiers.WAN.BandwidthBps <= 0 {
			return fmt.Errorf("scale: tier bandwidths must be positive (site %g, wan %g)",
				c.Tiers.Site.BandwidthBps, c.Tiers.WAN.BandwidthBps)
		}
	}
	if c.Router.LinkLatency != nil {
		for i := 0; i < c.Shards; i++ {
			for j := 0; j < c.Shards; j++ {
				if i == j {
					continue
				}
				if l := c.Router.LinkLatency(i, j); l < 0 {
					return fmt.Errorf("scale: link %d->%d latency %v is negative", i, j, l)
				}
			}
		}
	}
	total := workload.ScaleCommunity(c.Base, c.Factor)
	if total.NumClients < c.Shards {
		return fmt.Errorf("scale: %d clients cannot populate %d shards", total.NumClients, c.Shards)
	}
	return nil
}
