package workload

import (
	"time"
)

// Application program generators. Each returns the op sequence for one
// process plus its processing rate; sizes are drawn at generation time
// from the Params distributions. The shapes here are what reproduce the
// paper's Section 4 structure: whole-file sequential reads dominate,
// writes create short-lived temporaries, a few applications reposition
// randomly, and the big-sim users move tens of megabytes per run.

// configReads prepends the startup file reads every real program performs
// (rc files, configuration, shared setup) — small, whole-file, read-only
// accesses, which is why read-only dominates the Table 3 access mix.
func (e *Engine) configReads(b *progBuilder, u *userState) {
	n := 2 + e.rng.Intn(3)
	for i := 0; i < n; i++ {
		var f uint64
		var ok bool
		if e.rng.Bool(0.5) {
			f, ok = e.reg.RandomSmall(e.rng, u.id)
		} else {
			f, ok = e.reg.RandomShared(e.rng, u.group)
		}
		if !ok {
			continue
		}
		h := b.open(staticFile(f), true, false)
		if e.rng.Bool(0.3) {
			// Prefix-only read (head, grep with early exit): a sequential
			// but not whole-file access — Table 3's "other sequential".
			b.read(h, int64(e.rng.LogNormal(e.p.SmallMedian/2, e.p.SmallSigma)+1))
		} else {
			b.readAll(h)
		}
		b.close(h)
	}
}

// logAppend appends a small record to the user's build/activity log: a
// write-only access that is sequential but not whole-file. Logs that have
// grown past the rotation threshold are truncated and restarted — without
// rotation the file population would grow without bound and the size
// distributions would drift over the traced day.
func (e *Engine) logAppend(b *progBuilder, u *userState) {
	f, ok := e.reg.RandomSmall(e.rng, u.id)
	if !ok {
		return
	}
	if e.hosts[u.sessHost].FileSize(f) > 48*1024 {
		b.truncate(staticFile(f))
		hw := b.open(staticFile(f), false, true)
		b.writeSeq(hw, int64(e.rng.LogNormal(e.p.SmallMedian, e.p.SmallSigma))+1)
		b.close(hw)
		return
	}
	h := b.open(staticFile(f), false, true)
	b.seek(h, seekEnd)
	b.write(h, int64(e.rng.Range(100, 1200)))
	b.close(h)
}

// genEdit models an interactive editing session: browse a couple of
// files, read the target whole, think, save (truncate + rewrite), with a
// short-lived backup file.
func (e *Engine) genEdit(u *userState) ([]op, float64) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	e.configReads(b, u)
	file, ok := e.reg.RandomSmall(e.rng, u.id)
	if !ok {
		return b.exit(), e.p.EditRate
	}
	h := b.open(staticFile(file), true, false)
	size := int64(e.rng.LogNormal(e.p.SmallMedian, e.p.SmallSigma)) + 1
	b.readSeq(h, size)
	// The editor holds the file open while the user looks at it — the
	// long tail of Figure 3's open-duration distribution.
	b.think(e.rng.ExpDur(4 * time.Second))
	b.close(h)
	b.think(e.rng.ExpDur(e.p.ThinkMean))
	if e.rng.Bool(0.6) {
		// Save: write a backup copy, rewrite the file in place, then
		// remove the backup within seconds — the short-lived files that
		// dominate the Figure 4 lifetime distribution.
		bak := b.create(false)
		hb := b.open(slotFile(bak), false, true)
		b.writeSeq(hb, size)
		b.close(hb)
		b.truncate(staticFile(file))
		hw := b.open(staticFile(file), false, true)
		newSize := size + int64(e.rng.Normal(0, float64(size)/20))
		if newSize < 64 {
			newSize = 64
		}
		b.writeSeq(hw, newSize)
		b.close(hw)
		b.think(e.rng.ExpDur(5 * time.Second))
		b.deleteFile(slotFile(bak))
	}
	return b.exit(), e.p.EditRate
}

// genCompile models one compiler invocation: read sources whole, write an
// object temporary per source, then (link) read the objects back, write a
// binary, and delete the temporaries.
func (e *Engine) genCompile(u *userState, link bool) ([]op, float64) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	nSrc := 1 + e.rng.Intn(4)
	var objs []int
	var objSizes []int64
	for i := 0; i < nSrc; i++ {
		src, ok := e.reg.RandomSmall(e.rng, u.id)
		if !ok {
			break
		}
		hs := b.open(staticFile(src), true, false)
		b.readSeq(hs, int64(e.rng.LogNormal(e.p.SmallMedian, e.p.SmallSigma))+1)
		b.close(hs)
		// The preprocessor reads a pile of headers for every source file.
		nHdr := 2 + e.rng.Intn(6)
		for j := 0; j < nHdr; j++ {
			hdr, ok := e.reg.RandomSmall(e.rng, u.id)
			if e.rng.Bool(0.4) {
				hdr, ok = e.reg.RandomShared(e.rng, u.group)
			}
			if !ok {
				continue
			}
			hh := b.open(staticFile(hdr), true, false)
			b.readAll(hh)
			b.close(hh)
		}
		b.touch(e.rng.Intn(e.p.HeapGrowMax + 1))
		objSize := int64(e.rng.BoundedPareto(e.p.ObjMin, e.p.ObjMax, e.p.ObjAlpha))
		// cc writes an assembler temporary, the assembler reads it and
		// produces the object, and the temporary dies seconds later —
		// the bulk of the bytes that never survive the 30-second
		// delayed-write window.
		asm := b.create(false)
		ha := b.open(slotFile(asm), false, true)
		b.writeSeq(ha, objSize)
		b.close(ha)
		hra := b.open(slotFile(asm), true, false)
		b.readSeq(hra, objSize)
		b.close(hra)
		obj := b.create(false)
		ho := b.open(slotFile(obj), false, true)
		b.writeSeq(ho, objSize)
		b.close(ho)
		b.deleteFile(slotFile(asm))
		objs = append(objs, obj)
		objSizes = append(objSizes, objSize)
	}
	if link && len(objs) > 0 {
		// The OS group links multi-megabyte kernel images; everyone else
		// links ordinary binaries.
		b.think(e.rng.ExpDur(2 * time.Second))
		for i, obj := range objs {
			hr := b.open(slotFile(obj), true, false)
			b.readSeq(hr, objSizes[i])
			b.close(hr)
		}
		// The previous build's binary is replaced (deleted) now — its
		// bytes lived from one build to the next, which is what keeps the
		// byte-weighted lifetime distribution long-tailed.
		b.deletePrev()
		binSize := int64(e.rng.BoundedPareto(e.p.BinMin, e.p.BinMax, e.p.BinAlpha))
		out := b.create(false)
		hb := b.open(slotFile(out), false, true)
		b.writeSeq(hb, binSize)
		if e.rng.Bool(0.25) {
			b.fsync(hb)
		}
		b.close(hb)
		b.register(out)
		// Object temporaries die young.
		for _, obj := range objs {
			b.deleteFile(slotFile(obj))
		}
		// The produced binary is read back (installed, executed, nm'd)
		// once or twice.
		if e.rng.Bool(0.6) {
			ht := b.open(slotFile(out), true, false)
			b.readSeq(ht, binSize)
			b.close(ht)
		}
		e.logAppend(b, u)
	}
	return b.exit(), e.p.CompileRate
}

// genKernelRead models the OS group inspecting kernel images (nm, gdb):
// whole-file reads of 2-10 MB binaries.
func (e *Engine) genKernelRead(u *userState) ([]op, float64) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	if len(e.reg.KernelImages) > 0 {
		img := e.reg.KernelImages[e.rng.Intn(len(e.reg.KernelImages))]
		h := b.open(staticFile(img), true, false)
		if e.rng.Bool(0.3) {
			// Partial inspection (head of the symbol table): a large
			// sequential-but-not-whole-file read.
			b.readSeq(h, int64(e.rng.Range(0.3, 3)*(1<<20)))
		} else {
			b.readAll(h) // clamped to file size at runtime
		}
		b.close(h)
	}
	return b.exit(), e.p.SimRate
}

// genMail models reading the mailbox whole and appending a message.
func (e *Engine) genMail(u *userState) ([]op, float64) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	box := e.reg.Mailboxes[u.id]
	h := b.open(staticFile(box), true, false)
	b.readAll(h)
	// The mail reader keeps the box open while the user reads.
	b.think(e.rng.ExpDur(5 * time.Second))
	b.close(h)
	// Read messages are usually deleted or filed: the mailbox shrinks
	// back, so it does not grow without bound across the day.
	if e.hosts[u.sessHost].FileSize(box) > 128*1024 && e.rng.Bool(0.7) {
		b.truncate(staticFile(box))
		hw := b.open(staticFile(box), false, true)
		b.writeSeq(hw, int64(e.rng.LogNormal(e.p.MailMedian/2, e.p.MailSigma))+1)
		b.close(hw)
	}
	b.think(e.rng.ExpDur(e.p.ThinkMean / 2))
	if e.rng.Bool(0.7) {
		hw := b.open(staticFile(box), false, true)
		b.seek(hw, seekEnd)
		b.write(hw, int64(e.rng.Range(300, 4000)))
		// Mail is precious: the delivery agent forces it to disk.
		if e.rng.Bool(0.9) {
			b.fsync(hw)
		}
		b.close(hw)
	}
	return b.exit(), e.p.EditRate
}

// genDoc models document production: read sources, write a formatted
// output of DocMedian scale, optionally preview it.
func (e *Engine) genDoc(u *userState) ([]op, float64) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	for i := 0; i < 1+e.rng.Intn(3); i++ {
		src, ok := e.reg.RandomSmall(e.rng, u.id)
		if !ok {
			break
		}
		h := b.open(staticFile(src), true, false)
		b.readSeq(h, int64(e.rng.LogNormal(e.p.SmallMedian, e.p.SmallSigma))+1)
		b.close(h)
	}
	b.deletePrev()
	outSize := int64(e.rng.LogNormal(e.p.DocMedian, e.p.DocSigma)) + 1
	out := b.create(false)
	hw := b.open(slotFile(out), false, true)
	b.writeSeq(hw, outSize)
	if e.rng.Bool(0.3) {
		b.fsync(hw)
	}
	b.close(hw)
	b.register(out)
	if e.rng.Bool(0.7) {
		b.think(e.rng.ExpDur(3 * time.Second))
		hp := b.open(slotFile(out), true, false)
		b.readSeq(hp, outSize)
		b.close(hp)
	}
	return b.exit(), e.p.EditRate
}

// genSim models an ordinary simulation run: read an input, compute with
// heap growth, write an output, postprocess (read whole) and delete it.
func (e *Engine) genSim(u *userState, outputMB float64) ([]op, float64) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	// Simulators read their data set whole.
	if in, ok := e.reg.RandomData(e.rng, u.id); ok {
		h := b.open(staticFile(in), true, false)
		b.readAll(h)
		b.close(h)
	}
	// Compute phase with VM pressure.
	for i := 0; i < 3; i++ {
		b.touch(e.rng.Intn(e.p.HeapGrowMax + 1))
		b.think(e.rng.ExpDur(5 * time.Second))
	}
	b.deletePrev()
	outSize := int64(e.rng.Range(0.5, 1.5) * outputMB * (1 << 20))
	if outSize < 4096 {
		outSize = 4096
	}
	out := b.create(false)
	hw := b.open(slotFile(out), false, true)
	b.writeSeq(hw, outSize)
	if e.rng.Bool(0.25) {
		b.fsync(hw)
	}
	b.close(hw)
	b.register(out)
	if e.rng.Bool(0.3) {
		// Append a results chunk to an accumulating data file: a large
		// write-only access that is sequential but not whole-file. Data
		// files past ~2 MB are truncated back (old results archived).
		if res, ok := e.reg.RandomData(e.rng, u.id); ok {
			if e.hosts[u.sessHost].FileSize(res) > 2<<20 {
				b.truncate(staticFile(res))
			}
			ha := b.open(staticFile(res), false, true)
			b.seek(ha, seekEnd)
			b.writeSeq(ha, int64(e.rng.Range(0.2, 0.8)*float64(outSize)))
			b.close(ha)
		}
	}
	if e.rng.Bool(0.7) {
		b.think(e.rng.ExpDur(10 * time.Second))
		hp := b.open(slotFile(out), true, false)
		b.readSeq(hp, outSize)
		b.close(hp)
	}
	return b.exit(), e.p.SimRate
}

// genBigSim is the traces 3-4 class-project workload: a simulator that
// reads ~20 MB input files and a cache simulation producing a ~10 MB file
// that is postprocessed and deleted, run repeatedly all day.
func (e *Engine) genBigSim(u *userState, inputs []uint64) ([]op, float64) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	if len(inputs) > 0 {
		in := inputs[e.rng.Intn(len(inputs))]
		h := b.open(staticFile(in), true, false)
		b.readSeq(h, int64(e.p.SimInputMB*(1<<20)))
		b.close(h)
	}
	for i := 0; i < 5; i++ {
		// Class-project simulators have multi-megabyte heaps: this is the
		// memory pressure that trades pages against the file cache and
		// produces backing-file traffic when the machine is reclaimed.
		b.touch(200 + e.rng.Intn(800))
		b.think(e.rng.ExpDur(10 * time.Second))
	}
	b.deletePrev()
	outSize := int64(e.rng.Range(0.8, 1.2) * e.p.SimOutputMB * (1 << 20))
	out := b.create(false)
	hw := b.open(slotFile(out), false, true)
	b.writeSeq(hw, outSize)
	b.close(hw)
	b.register(out)
	b.think(e.rng.ExpDur(5 * time.Second))
	hp := b.open(slotFile(out), true, false)
	b.readSeq(hp, outSize)
	b.close(hp)
	return b.exit(), e.p.SimRate
}

// genRandomDB models database-style access: seek-read and seek-write of
// small records, the source of the Random rows of Table 3 and of the
// reposition counts in Table 1.
func (e *Engine) genRandomDB(u *userState) ([]op, float64) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	// Databases live in the user's larger data files; in-place record
	// updates of blocks that have fallen out of the cache are what
	// produce Table 6's write fetches.
	file, ok := e.reg.RandomData(e.rng, u.id)
	if !ok {
		return b.exit(), e.p.EditRate
	}
	h := b.open(staticFile(file), true, true)
	nOps := 4 + e.rng.Intn(12)
	dirty := false
	for i := 0; i < nOps; i++ {
		b.seek(h, seekRandom)
		if e.rng.Bool(0.7) {
			b.read(h, int64(e.rng.Range(64, 2048)))
		} else {
			b.write(h, int64(e.rng.Range(64, 1024)))
			dirty = true
		}
		b.think(time.Duration(e.rng.Range(50, 400)) * time.Millisecond)
	}
	if dirty && e.rng.Bool(0.9) {
		// Databases sync their updates for durability.
		b.fsync(h)
	}
	b.close(h)
	return b.exit(), e.p.EditRate
}

// genDirList models ls-style naming traffic: directory reads, which
// bypass client caches entirely in Sprite.
func (e *Engine) genDirList(u *userState) ([]op, float64) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	dirs := []uint64{e.reg.UserDirs[u.id], e.reg.GroupDirs[u.group]}
	for _, d := range dirs {
		if d == 0 {
			continue
		}
		h := b.open(staticFile(d), true, false)
		b.readAll(h)
		b.close(h)
	}
	return b.exit(), e.p.EditRate
}

// genSharedLogWrite appends to a group-shared file, holding it open for a
// few seconds — when two of these (or a write and a read) overlap across
// machines, concurrent write-sharing results.
func (e *Engine) genSharedLogWrite(u *userState, file uint64) ([]op, float64) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	// Shared logs rotate once they pass the threshold, like any log.
	if e.hosts[u.sessHost].FileSize(file) > 64*1024 {
		b.truncate(staticFile(file))
	}
	h := b.open(staticFile(file), true, true)
	b.seek(h, seekEnd)
	// A burst of appends by the same client: under token consistency the
	// first write acquires the token and the rest are free, while Sprite
	// passes every one through — the paper's "token can win" case.
	nApp := 4 + e.rng.Intn(7)
	for i := 0; i < nApp; i++ {
		b.write(h, int64(e.rng.Range(300, 2500)))
		b.think(time.Duration(e.rng.Range(1000, 3000)) * time.Millisecond)
	}
	b.think(e.rng.Jitter(e.p.SharedLogOpenHold, 0.5))
	if e.rng.Bool(0.3) {
		// Occasional fine-grained update pattern — the regime that makes
		// token-based consistency thrash (Section 5.6).
		b.seek(h, seekRandom)
		b.read(h, int64(e.rng.Range(100, 2000)))
		b.write(h, int64(e.rng.Range(100, 1000)))
	}
	b.close(h)
	return b.exit(), e.p.EditRate
}

// genGrep is the utility burst: a shell pipeline sweeping many small
// files, reading each whole or just a prefix, occasionally spilling a tiny
// sort temporary that dies immediately. It contributes most of the trace's
// opens while moving almost no bytes — the burstiness signature of Table 2.
func (e *Engine) genGrep(u *userState) ([]op, float64) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	if e.rng.Bool(0.4) {
		// find(1) walks a directory first.
		d := e.reg.UserDirs[u.id]
		if e.rng.Bool(0.4) {
			d = e.reg.GroupDirs[u.group]
		}
		if d != 0 {
			hd := b.open(staticFile(d), true, false)
			b.readAll(hd)
			b.close(hd)
		}
	}
	n := 8 + e.rng.Intn(10)
	for i := 0; i < n; i++ {
		var f uint64
		var ok bool
		switch e.rng.Intn(3) {
		case 0:
			f, ok = e.reg.RandomShared(e.rng, u.group)
		default:
			f, ok = e.reg.RandomSmall(e.rng, u.id)
		}
		if !ok {
			continue
		}
		h := b.open(staticFile(f), true, false)
		if e.rng.Bool(0.55) {
			b.read(h, int64(e.rng.LogNormal(e.p.SmallMedian/2, e.p.SmallSigma))+1)
		} else {
			b.readAll(h)
		}
		if e.rng.Bool(0.3) {
			// The tool chews on the file before moving on (grep through a
			// big match list, wc, diff): the open outlives a quarter second.
			b.think(time.Duration(e.rng.Range(100, 600)) * time.Millisecond)
		}
		if e.rng.Bool(0.08) {
			// Occasionally the pipeline ends in a pager and the user reads.
			b.think(e.rng.ExpDur(4 * time.Second))
		}
		b.close(h)
	}
	if e.rng.Bool(0.25) {
		// The shell appends to the user's history file.
		e.logAppend(b, u)
	}
	if e.rng.Bool(0.35) {
		// sort(1) spills a temporary and removes it seconds later.
		tmp := b.create(false)
		ht := b.open(slotFile(tmp), false, true)
		b.writeSeq(ht, int64(e.rng.Range(2048, 32768)))
		b.close(ht)
		hr := b.open(slotFile(tmp), true, false)
		b.readAll(hr)
		b.close(hr)
		b.deleteFile(slotFile(tmp))
	}
	return b.exit(), e.p.CompileRate
}

// genSharedRead consumes a group-shared file: a whole-file read followed,
// tail(1)-style, by a few polls of the recent data while the producer may
// still be appending. It is the consumer side of sequential write-sharing
// (forcing recalls within 30 s of a write), the overlap that creates
// concurrent write-sharing, and — under polling consistency — the reader
// that would see stale data.
func (e *Engine) genSharedRead(u *userState, file uint64) ([]op, float64) {
	b := newBuilder(e.p.ChunkBytes)
	bin := e.reg.RandomBinary(e.rng)
	b.exec(bin, e.p.StackPages)
	h := b.open(staticFile(file), true, false)
	b.readAll(h)
	polls := 1 + e.rng.Intn(3)
	for i := 0; i < polls; i++ {
		b.think(time.Duration(e.rng.Range(3000, 8000)) * time.Millisecond)
		b.seek(h, seekRandom)
		b.read(h, int64(e.rng.Range(500, 4000)))
	}
	b.close(h)
	return b.exit(), e.p.EditRate
}
