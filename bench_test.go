// Benchmarks that regenerate every table and figure of the paper's
// evaluation at reduced scale (quarter-size cluster, two simulated hours
// per iteration), reporting the headline value of each as a custom metric
// so regressions in the reproduction are visible in benchstat output.
// The full-scale runs behind EXPERIMENTS.md use cmd/experiments.
//
//	go test -bench=Table -benchmem
//	go test -bench=Figure
//	go test -bench=Ablation
package spritefs_test

import (
	"fmt"
	"testing"
	"time"

	"spritefs/internal/analysis"
	"spritefs/internal/client"
	"spritefs/internal/cluster"
	"spritefs/internal/consistency"
	"spritefs/internal/core"
	"spritefs/internal/trace"
	"spritefs/internal/vm"
	"spritefs/internal/workload"
)

// benchOpts are the reduced-scale settings every trace bench shares.
var benchOpts = core.TraceOptions{Hours: 2, Scale: 0.25}

// runTrace produces one scaled trace result (the shared harness for the
// Section 4 benches).
func runTrace(b *testing.B, n int) *core.TraceResult {
	b.Helper()
	r, err := core.RunTrace(n, benchOpts)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// runCounters produces one scaled counter-study result.
func runCounters(b *testing.B) *core.CounterResult {
	b.Helper()
	return core.RunCounterStudy(core.CounterOptions{Days: 0.1, Scale: 0.25})
}

func BenchmarkTable1OverallStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runTrace(b, 1)
		b.ReportMetric(float64(r.Overall.Opens), "opens")
		b.ReportMetric(r.Overall.MBReadFiles, "MB-read")
		b.ReportMetric(r.Overall.MBWrittenFiles, "MB-written")
	}
}

func BenchmarkTable2UserActivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runTrace(b, 1)
		b.ReportMetric(r.Activity.TenMinAll.AvgThroughputKBs, "KBps-10min")
		b.ReportMetric(r.Activity.TenSecAll.AvgThroughputKBs, "KBps-10sec")
		b.ReportMetric(r.Activity.TenSecMigrated.AvgThroughputKBs, "KBps-10sec-migrated")
	}
}

func BenchmarkTable3AccessPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runTrace(b, 1)
		ro, _ := r.Access.ClassPct(analysis.ReadOnly)
		wf, _ := r.Access.SeqPct(analysis.ReadOnly, analysis.WholeFile)
		b.ReportMetric(ro, "pct-read-only")
		b.ReportMetric(wf, "pct-RO-whole-file")
	}
}

func BenchmarkFigure1RunLengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runTrace(b, 1)
		b.ReportMetric(100*r.Access.RunsByCount.FracAtOrBelow(10*1024), "pct-runs-le-10KB")
		b.ReportMetric(100*(1-r.Access.RunsByBytes.FracAtOrBelow(1<<20)), "pct-bytes-runs-gt-1MB")
	}
}

func BenchmarkFigure2FileSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runTrace(b, 1)
		b.ReportMetric(100*r.Access.SizeByFiles.FracAtOrBelow(10*1024), "pct-files-le-10KB")
		b.ReportMetric(100*(1-r.Access.SizeByBytes.FracAtOrBelow(1<<20)), "pct-bytes-files-ge-1MB")
	}
}

func BenchmarkFigure3OpenTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runTrace(b, 1)
		b.ReportMetric(100*r.Access.OpenTimes.FracAtOrBelow(0.25), "pct-opens-le-250ms")
	}
}

func BenchmarkFigure4Lifetimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runTrace(b, 1)
		b.ReportMetric(r.Lifetime.PctFilesUnder30s(), "pct-files-lt-30s")
		b.ReportMetric(r.Lifetime.PctBytesUnder30s(), "pct-bytes-lt-30s")
	}
}

func BenchmarkTable4CacheSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runCounters(b)
		b.ReportMetric(r.Table4.AvgSizeKB, "KB-avg-cache")
		b.ReportMetric(r.Table4.Change15AvgKB, "KB-15min-change")
	}
}

func BenchmarkTable5TrafficSources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runCounters(b)
		b.ReportMetric(r.Table5.PagingPct, "pct-paging")
		b.ReportMetric(r.Table5.UncacheablePct, "pct-uncacheable")
	}
}

func BenchmarkTable6CacheEffectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runCounters(b)
		b.ReportMetric(r.Table6.All.ReadMissPct, "pct-read-miss")
		b.ReportMetric(r.Table6.All.WritebackPct, "pct-writeback")
		b.ReportMetric(r.Table6.Migrated.ReadMissPct, "pct-read-miss-migrated")
	}
}

func BenchmarkTable7ServerTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runCounters(b)
		b.ReportMetric(r.Table7.PagingPct, "pct-paging")
		b.ReportMetric(r.Table7.ReadWriteRatio, "read-write-ratio")
	}
}

func BenchmarkTable8Replacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runCounters(b)
		b.ReportMetric(r.Table8.FilePct, "pct-file-replacement")
		b.ReportMetric(r.Table8.AvgAgeMin, "min-replacement-age")
	}
}

func BenchmarkTable9Cleaning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runCounters(b)
		b.ReportMetric(r.Table9.Pct[0], "pct-delay-cleanings")
		b.ReportMetric(r.Table9.AgeSec[0], "sec-delay-age")
	}
}

func BenchmarkTable10ConsistencyActions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runTrace(b, 7) // the sharing-heavy configuration
		b.ReportMetric(r.Actions.PctCWS(), "pct-cws-opens")
		b.ReportMetric(r.Actions.PctRecalls(), "pct-recall-opens")
	}
}

func BenchmarkTable11StaleData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runTrace(b, 7)
		b.ReportMetric(r.Stale60.ErrorsPerHour, "errors-per-hour-60s")
		b.ReportMetric(r.Stale3.ErrorsPerHour, "errors-per-hour-3s")
	}
}

func BenchmarkTable12ConsistencyOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := runTrace(b, 7)
		b.ReportMetric(r.Overhead.ByteRatio(consistency.AlgToken), "token-byte-ratio")
		b.ReportMetric(r.Overhead.RPCRatio(consistency.AlgToken), "token-rpc-ratio")
	}
}

// --- Ablations: the design-choice checks DESIGN.md calls out. ---

func ablationCluster(b *testing.B, mutate func(*cluster.Config)) *cluster.Cluster {
	b.Helper()
	p := workload.Default(5150)
	p.NumClients, p.DailyUsers, p.OccasionalUsers = 10, 8, 8
	p.EmitBackupNoise = false
	p.BigSimUsers = 1
	p.SimInputMB = 6
	p.SimOutputMB = 2
	cfg := cluster.DefaultConfig(p)
	cfg.NumServers = 2
	cfg.CollectTrace = false
	mutate(&cfg)
	c := cluster.New(cfg)
	c.Run(2 * time.Hour)
	return c
}

// BenchmarkAblationPrefetch checks the paper's claim that prefetching
// cannot reduce read-related server traffic (only the miss count).
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, n := range []int{0, 8} {
		n := n
		name := "off"
		if n > 0 {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := ablationCluster(b, func(cfg *cluster.Config) { cfg.PrefetchBlocks = n })
				t6 := c.Table6Report()
				// The honest comparison is the byte RATIO (fetched /
				// requested): totals depend on how much work the
				// community got done before the fixed horizon.
				b.ReportMetric(t6.All.ReadMissPct, "pct-read-miss")
				b.ReportMetric(t6.All.ReadMissTrafficPct, "pct-miss-traffic")
			}
		})
	}
}

// BenchmarkAblationDelay sweeps the delayed-write interval (the paper's
// future-work direction).
func BenchmarkAblationDelay(b *testing.B) {
	for _, d := range []time.Duration{5 * time.Second, 30 * time.Second, 5 * time.Minute} {
		d := d
		b.Run(d.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := ablationCluster(b, func(cfg *cluster.Config) { cfg.WritebackDelay = d })
				t6 := c.Table6Report()
				b.ReportMetric(t6.All.WritebackPct, "pct-writeback")
				b.ReportMetric(t6.BytesSavedByDeletePct, "pct-saved-by-delete")
			}
		})
	}
}

// BenchmarkAblationCacheSize pins the cache at fixed sizes (the BSD-study
// prediction check).
func BenchmarkAblationCacheSize(b *testing.B) {
	for _, mb := range []int{2, 4, 8} {
		mb := mb
		b.Run(fmt.Sprintf("%dMB", mb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := ablationCluster(b, func(cfg *cluster.Config) {
					cfg.FixedCachePages = mb << 20 / vm.PageSize
				})
				b.ReportMetric(c.Table6Report().All.ReadMissPct, "pct-read-miss")
			}
		})
	}
}

// BenchmarkAblationMigrationReuse compares migrated-process hit ratios
// with and without the host-selection reuse bias — the mechanism the
// paper credits for migration's surprisingly good cache behavior.
func BenchmarkAblationMigrationReuse(b *testing.B) {
	for _, bias := range []float64{0, 0.7} {
		bias := bias
		name := "no-reuse"
		if bias > 0 {
			name = "reuse"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := workload.Default(777)
				p.NumClients, p.DailyUsers, p.OccasionalUsers = 10, 8, 8
				p.EmitBackupNoise = false
				p.MigrationUserFrac = 1.0
				p.MigrationReuseBias = bias
				cfg := cluster.DefaultConfig(p)
				cfg.NumServers = 2
				cfg.CollectTrace = false
				c := cluster.New(cfg)
				c.Run(2 * time.Hour)
				b.ReportMetric(c.Table6Report().Migrated.ReadMissPct, "pct-read-miss-migrated")
			}
		})
	}
}

// BenchmarkPipelineMergeAnalyze measures the raw analysis pipeline:
// regenerate a trace once, then benchmark merging + analyzing it, the
// way the paper's post-processing scanned its trace files.
func BenchmarkPipelineMergeAnalyze(b *testing.B) {
	p := workload.Default(2)
	p.NumClients, p.DailyUsers, p.OccasionalUsers = 10, 8, 8
	cfg := cluster.DefaultConfig(p)
	cfg.NumServers = 2
	c := cluster.New(cfg)
	c.Run(2 * time.Hour)
	recs := c.Trace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ov := analysis.NewOverall()
		ap := analysis.NewAccessPatterns()
		lt := analysis.NewLifetimes()
		ua := analysis.NewUserActivity()
		ca := analysis.NewConsistencyActions()
		if err := analysis.Run(trace.NewSliceStream(recs), ov, ap, lt, ua, ca); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs)), "records")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(len(recs))*float64(b.N)/secs, "records/s")
	}
}

// BenchmarkAblationConsistencyMode runs the cluster LIVE under Sprite's
// perfect consistency versus the NFS-style polling scheme — the
// experiment the paper could only approximate from traces (Table 11).
func BenchmarkAblationConsistencyMode(b *testing.B) {
	modes := []struct {
		name     string
		mode     client.ConsistencyMode
		interval time.Duration
	}{
		{"sprite", client.ConsistencySprite, 0},
		{"poll-60s", client.ConsistencyPoll, 60 * time.Second},
		{"poll-3s", client.ConsistencyPoll, 3 * time.Second},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := workload.Default(4242)
				p.NumClients, p.DailyUsers, p.OccasionalUsers = 10, 8, 8
				p.EmitBackupNoise = false
				p.AwaySessionProb = 0.4
				p.SharedReadSoonP = 0.95
				cfg := cluster.DefaultConfig(p)
				cfg.NumServers = 2
				cfg.CollectTrace = false
				cfg.Consistency = m.mode
				cfg.PollInterval = m.interval
				c := cluster.New(cfg)
				c.Run(2 * time.Hour)
				st := c.LiveStaleReport()
				b.ReportMetric(float64(st.StaleReads)/2, "stale-reads-per-hour")
				b.ReportMetric(float64(st.PollRPCs)/2, "poll-rpcs-per-hour")
			}
		})
	}
}

// BenchmarkBSDComparison measures the paper's headline claim — average
// file throughput per active user grew by a factor of ~20 between the
// 1985 BSD study (0.40 KB/s over 10-minute intervals) and the 1991 Sprite
// cluster (8.0 KB/s) — by running both communities through the same
// Table 2 analysis.
func BenchmarkBSDComparison(b *testing.B) {
	measure := func(p workload.Params) float64 {
		cfg := cluster.DefaultConfig(p)
		cfg.NumServers = 2
		cfg.SamplePeriod = 0
		c := cluster.New(cfg)
		c.Run(2 * time.Hour)
		ua := analysis.NewUserActivity()
		if err := analysis.Run(trace.Merge(c.PerServerStreams()...), ua); err != nil {
			b.Fatal(err)
		}
		return ua.TenMinAll.AvgThroughputKBs
	}
	for i := 0; i < b.N; i++ {
		p91 := workload.Default(1985)
		p91.NumClients, p91.DailyUsers, p91.OccasionalUsers = 10, 8, 8
		sprite := measure(p91)

		p85 := workload.BSD1985(1985)
		p85.DailyUsers, p85.OccasionalUsers = 8, 8
		bsd := measure(p85)

		b.ReportMetric(sprite, "KBps-1991")
		b.ReportMetric(bsd, "KBps-1985")
		if bsd > 0 {
			b.ReportMetric(sprite/bsd, "growth-factor")
		}
	}
}
