// Package server implements the Sprite file server's role in the study:
// the authoritative name space, per-file open state, and the three
// consistency mechanisms of Section 5 — version timestamps handed out at
// open (clients flush stale cached data), recall of dirty data from the
// last writer, and disabling of client caching under concurrent
// write-sharing. The server counts every consistency action, which is the
// instrumentation behind Table 10.
//
// Naming operations (opens, closes, deletes) all pass through the server,
// which is why the paper could collect a system-wide trace on just four
// machines; the cluster layer emits trace records at exactly these points.
package server

import (
	"fmt"
	"time"
)

// NoClient marks the absence of a client in last-writer tracking.
const NoClient int32 = -1

// File is one file's authoritative state.
type File struct {
	ID         uint64
	Size       int64
	Version    uint64 // bumped on every write reaching the server
	Directory  bool
	Created    time.Duration
	OldestByte time.Duration // creation time of current oldest byte (for lifetime accounting)
	LastWrite  time.Duration

	// openers holds one entry per client with the file open, in arrival
	// order (consumers that need a deterministic order sort explicitly).
	// Entries with zero counts are removed, so len(openers) is the number
	// of opening clients. A compact slice replaces the previous pair of
	// count maps: nearly every file has zero or one opener, and two map
	// allocations per Create dominated the server's allocation profile.
	openers []opener

	// lastWriter is the client that most recently wrote the file and may
	// still hold dirty data in its cache. The server does not know whether
	// the delayed-write daemon has already flushed it, so recalls are an
	// upper bound — exactly as the paper notes.
	lastWriter int32

	// uncacheable is set while the file undergoes concurrent
	// write-sharing; all reads and writes pass through to the server.
	uncacheable bool
}

// opener is one client's open registration on a file.
type opener struct {
	client int32
	reads  int32 // open-for-read count
	writes int32 // open-for-write count
}

// opener returns the registration entry for client, or nil.
func (f *File) opener(client int32) *opener {
	for i := range f.openers {
		if f.openers[i].client == client {
			return &f.openers[i]
		}
	}
	return nil
}

// removeOpener drops client's (zeroed) registration entry.
func (f *File) removeOpener(client int32) {
	for i := range f.openers {
		if f.openers[i].client == client {
			last := len(f.openers) - 1
			f.openers[i] = f.openers[last]
			f.openers = f.openers[:last]
			return
		}
	}
}

// Openers returns the number of clients with the file open.
func (f *File) Openers() int { return len(f.openers) }

// WriterCount returns the number of clients with the file open for writing.
func (f *File) WriterCount() int {
	n := 0
	for i := range f.openers {
		if f.openers[i].writes > 0 {
			n++
		}
	}
	return n
}

// Uncacheable reports whether client caching is currently disabled.
func (f *File) Uncacheable() bool { return f.uncacheable }

// Stats holds the consistency-action counters for Table 10 plus name-space
// bookkeeping and the crash/recovery counters of the fault study.
type Stats struct {
	FileOpens   int64 // opens of regular files (Table 10's denominator)
	DirOpens    int64
	Creates     int64
	Deletes     int64
	Truncates   int64
	Recalls     int64 // opens that triggered a dirty-data recall
	CWSEvents   int64 // opens that initiated concurrent write-sharing
	CacheOffOps int64 // reads/writes passed through while uncacheable
	Invalids    int64 // stale-version invalidations instructed to clients

	// WriteBackBytes is every byte accepted via WriteBack — the server
	// side of the conservation invariant the fault harness checks against
	// the clients' shipped-byte counters.
	WriteBackBytes int64

	// Crash/recovery bookkeeping (see crash.go).
	Crashes          int64 // times this server crashed
	OpensLostInCrash int64 // open registrations discarded by crashes
	RecoveryOpens    int64 // handle re-registrations served after restarts
	RecoveryCWS      int64 // write-sharing re-detected during recovery
	// MaxRecoveryTime is the longest time-to-reconsistency observed: from
	// crash until the slowest client finished the recovery protocol.
	MaxRecoveryTime time.Duration
}

// Server is one file server.
type Server struct {
	id     int16
	files  map[uint64]*File
	nextID uint64
	st     Stats

	// fileFree recycles File objects from Delete to the next
	// Create/Install (see Delete's validity contract).
	fileFree []*File

	// epoch counts restarts; clients compare it against the epoch they
	// last saw to detect that their open registrations died with the
	// server's volatile state.
	epoch uint64
	// down is true between Crash and Restart. The injector restarts
	// logically at the crash instant (the outage surfaces as RPC stall
	// latency), so a down window is only observable when Crash and
	// Restart are driven separately.
	down bool

	// Store models the server's memory cache and disk when attached
	// (AttachStorage); nil means storage is not modeled.
	Store *Storage
}

// AttachStorage gives the server a memory cache of the given capacity (in
// 4 KB blocks) backed by a modeled disk.
func (s *Server) AttachStorage(capacityBlocks int) {
	s.Store = NewStorage(capacityBlocks)
}

// ServeBlock serves one client block fetch through the server cache,
// returning any disk time incurred. A no-op without attached storage.
func (s *Server) ServeBlock(id uint64, block int64, now time.Duration) time.Duration {
	if s.Store == nil {
		return 0
	}
	f := s.files[id]
	if f == nil {
		return 0
	}
	return s.Store.ServeRead(id, block, f.Size, now)
}

// ServeSpan serves a pass-through read (uncacheable file) block by block.
func (s *Server) ServeSpan(id uint64, offset, length int64, now time.Duration) time.Duration {
	if s.Store == nil || length <= 0 {
		return 0
	}
	var d time.Duration
	for b := offset / 4096; b <= (offset+length-1)/4096; b++ {
		d += s.ServeBlock(id, b, now)
	}
	return d
}

// AcceptSpan takes a pass-through write into the server cache.
func (s *Server) AcceptSpan(id uint64, offset, length int64, now time.Duration) {
	if s.Store == nil || length <= 0 {
		return
	}
	for b := offset / 4096; b <= (offset+length-1)/4096; b++ {
		end := offset + length - b*4096
		if end > 4096 {
			end = 4096
		}
		s.Store.AcceptWrite(id, b, end, now)
	}
}

// New returns an empty server with the given id. File ids are made unique
// across servers by embedding the server id in the top bits.
func New(id int16) *Server {
	if id < 0 {
		panic("server: negative id")
	}
	return &Server{
		id:     id,
		files:  make(map[uint64]*File),
		nextID: uint64(id)<<48 | 1,
	}
}

// ID returns the server id.
func (s *Server) ID() int16 { return s.id }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats { return s.st }

// NumFiles returns the number of live files.
func (s *Server) NumFiles() int { return len(s.files) }

// Lookup returns the file with the given id, or nil.
func (s *Server) Lookup(id uint64) *File { return s.files[id] }

// takeFile pops a recycled File (pushed by Delete) or allocates a fresh
// one, reset to the zero state with lastWriter cleared.
func (s *Server) takeFile() *File {
	if n := len(s.fileFree); n > 0 {
		f := s.fileFree[n-1]
		s.fileFree = s.fileFree[:n-1]
		*f = File{openers: f.openers[:0], lastWriter: NoClient}
		return f
	}
	return &File{lastWriter: NoClient}
}

// Create makes a new file (or directory) and returns it.
func (s *Server) Create(directory bool, now time.Duration) *File {
	// Skip over ids claimed by Install so replay bootstrap and live
	// creation can coexist on one server.
	for s.files[s.nextID] != nil {
		s.nextID++
	}
	f := s.takeFile()
	f.ID = s.nextID
	f.Directory = directory
	f.Created = now
	f.OldestByte = now
	f.LastWrite = now
	s.nextID++
	s.files[f.ID] = f
	s.st.Creates++
	return f
}

// Install registers a file under a caller-chosen id. Trace replay uses it
// to materialize the files a captured trace references: the replayed
// cluster must reuse the original file ids so routing, client caches and
// consistency state all line up with the source run. Installing an id that
// already exists returns the existing file unchanged. Unlike Create it is
// bootstrap, not workload, so it does not count toward the create counters.
func (s *Server) Install(id uint64, size int64, directory bool, now time.Duration) *File {
	if f := s.files[id]; f != nil {
		return f
	}
	f := s.takeFile()
	f.ID = id
	f.Size = size
	f.Directory = directory
	f.Created = now
	f.OldestByte = now
	f.LastWrite = now
	s.files[id] = f
	return f
}

// OpenReply tells the opening client what consistency actions apply.
type OpenReply struct {
	Version uint64
	Size    int64
	// Cacheable is false when the file is under concurrent write-sharing;
	// the client must bypass its cache for this file.
	Cacheable bool
	// RecallFrom names a client whose dirty data the server must recall
	// before this open proceeds (NoClient if none).
	RecallFrom int32
	// DisableOn lists clients that were already caching the file and must
	// now flush and bypass (set when this open initiates write-sharing).
	DisableOn []int32
	// StartedCWS reports that this open initiated concurrent write-sharing.
	StartedCWS bool
}

// Open registers an open of file id by client. write selects write mode.
// It returns the consistency actions the cluster must carry out. Opening
// a missing file is an error.
func (s *Server) Open(id uint64, client int32, write bool, now time.Duration) (OpenReply, error) {
	if s.down {
		return OpenReply{}, ErrDown
	}
	f := s.files[id]
	if f == nil {
		return OpenReply{}, fmt.Errorf("server %d: open of unknown file %#x", s.id, id)
	}
	reply := OpenReply{Version: f.Version, Size: f.Size, Cacheable: true, RecallFrom: NoClient}
	if f.Directory {
		s.st.DirOpens++
		// Directories are never cached on clients (Sprite avoids the
		// consistency problem entirely).
		reply.Cacheable = false
		f.addOpen(client, write)
		return reply, nil
	}
	s.st.FileOpens++

	// Dirty-data recall: another client may hold newer data than we do.
	if f.lastWriter != NoClient && f.lastWriter != client {
		reply.RecallFrom = f.lastWriter
		f.lastWriter = NoClient
		f.Version++ // recalled data becomes the new authoritative version
		reply.Version = f.Version
		s.st.Recalls++
	}

	wasShared := f.uncacheable
	f.addOpen(client, write)

	// Concurrent write-sharing: open on >=2 clients with >=1 writer.
	if !wasShared && f.Openers() >= 2 && f.WriterCount() >= 1 {
		f.uncacheable = true
		reply.StartedCWS = true
		s.st.CWSEvents++
		// disableList sorts: map iteration order is randomized, and the
		// flush/disable sequence — and therefore every downstream counter —
		// must be a pure function of the seed (the repo's bit-for-bit
		// determinism claim).
		reply.DisableOn = f.disableList(client)
	}
	if f.uncacheable {
		reply.Cacheable = false
	}
	return reply, nil
}

func (f *File) addOpen(client int32, write bool) {
	o := f.opener(client)
	if o == nil {
		f.openers = append(f.openers, opener{client: client})
		o = &f.openers[len(f.openers)-1]
	}
	if write {
		o.writes++
	} else {
		o.reads++
	}
}

// Close unregisters an open. dirty reports whether the client holds dirty
// data for the file at close (it becomes the last writer). In Sprite a
// file stays uncacheable until it has been closed by all clients.
func (s *Server) Close(id uint64, client int32, write, dirty bool, now time.Duration) error {
	if s.down {
		return ErrDown
	}
	f := s.files[id]
	if f == nil {
		// The file was deleted while open; Sprite allows this.
		return nil
	}
	o := f.opener(client)
	if o == nil || (write && o.writes <= 0) || (!write && o.reads <= 0) {
		return fmt.Errorf("server %d: close without open (file %#x client %d write %v)", s.id, id, client, write)
	}
	if write {
		o.writes--
	} else {
		o.reads--
	}
	if o.reads == 0 && o.writes == 0 {
		f.removeOpener(client)
	}
	if write && dirty && !f.uncacheable {
		f.lastWriter = client
	}
	if f.uncacheable && f.Openers() == 0 {
		f.uncacheable = false
	}
	return nil
}

// Write applies a write's metadata at the server: size growth and version
// bump. through reports a pass-through (uncacheable) write as opposed to a
// delayed writeback.
func (s *Server) Write(id uint64, client int32, offset, length int64, through bool, now time.Duration) {
	f := s.files[id]
	if f == nil {
		return
	}
	if end := offset + length; end > f.Size {
		f.Size = end
	}
	f.Version++
	f.LastWrite = now
	if through {
		s.st.CacheOffOps++
		f.lastWriter = NoClient
	}
}

// WriteBack records a delayed writeback block arriving from a client's
// cache. It does not clear last-writer state: the server does not track
// whether the client has finished flushing (the paper's upper-bound
// caveat). The block lands in the server cache (when storage is attached)
// and reaches the disk after the server's own 30-second delay.
func (s *Server) WriteBack(id uint64, client int32, block, bytes int64, now time.Duration) {
	// Count before the deleted-file early-out: the client counted these
	// bytes as shipped, and the conservation invariant the fault harness
	// checks compares exactly these two counters.
	s.st.WriteBackBytes += bytes
	f := s.files[id]
	if f == nil {
		return
	}
	f.Version++
	f.LastWrite = now
	if s.Store != nil {
		s.Store.AcceptWrite(id, block, bytes, now)
	}
}

// Grow is used by the client layer on every cached application write: the
// real server learns the new size at writeback or close, but the simulator
// keeps authoritative sizes (and last-write times, for the lifetime
// analyses) eagerly for simplicity.
func (s *Server) Grow(id uint64, newSize int64, now time.Duration) {
	f := s.files[id]
	if f == nil {
		return
	}
	if newSize > f.Size {
		f.Size = newSize
	}
	f.LastWrite = now
}

// Delete removes the file. It returns the file's final state for lifetime
// accounting (nil if unknown). The returned File is recycled: it is valid
// only until this server's next Create or Install, so callers must read
// what they need before creating files (every caller consumes it on the
// spot).
func (s *Server) Delete(id uint64, now time.Duration) *File {
	f := s.files[id]
	if f == nil {
		return nil
	}
	delete(s.files, id)
	s.st.Deletes++
	if s.Store != nil {
		s.Store.Drop(id)
	}
	s.fileFree = append(s.fileFree, f)
	return f
}

// Truncate cuts the file to zero length. The paper treats truncation to
// zero as deletion for lifetime purposes; the cluster layer records both.
func (s *Server) Truncate(id uint64, now time.Duration) *File {
	f := s.files[id]
	if f == nil {
		return nil
	}
	f.Size = 0
	f.Version++
	f.OldestByte = now
	f.LastWrite = now
	s.st.Truncates++
	return f
}

// NoteInvalidation counts a client invalidating stale cached data after an
// open returned a newer version.
func (s *Server) NoteInvalidation() { s.st.Invalids++ }
