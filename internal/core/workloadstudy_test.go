package core

import (
	"strings"
	"testing"

	"spritefs/internal/workload"
)

func TestRunWorkloadStudy(t *testing.T) {
	r := RunWorkloadStudy(WorkloadOptions{Hours: 0.25, Scale: 0.2})
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	byName := map[string]WorkloadRow{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	stream := byName["streaming"]
	if stream.Programs == 0 {
		t.Error("no streaming sessions ran")
	}
	if stream.ReadMB == 0 {
		t.Error("streaming community read nothing")
	}
	farm := byName["build-farm"]
	if farm.Programs == 0 {
		t.Error("no build-farm programs ran")
	}
	if farm.Migrations == 0 {
		t.Error("build farm triggered no migrations")
	}
	if byName["sprite-1991"].AllPrograms == 0 {
		t.Error("baseline community ran nothing")
	}

	out := WorkloadTables(r)
	for _, want := range []string{"Modern workloads", "streaming", "build-farm",
		workload.AppStream.String(), workload.AppBuildFarm.String()} {
		if !strings.Contains(out, want) {
			t.Errorf("workload report missing %q", want)
		}
	}
}
