package cluster

import (
	"testing"
	"time"

	"spritefs/internal/analysis"
	"spritefs/internal/trace"
	"spritefs/internal/workload"
)

// shortParams shrinks the community so integration tests run in
// milliseconds of wall time.
func shortParams(seed int64) workload.Params {
	p := workload.Default(seed)
	p.NumClients = 8
	p.DailyUsers = 6
	p.OccasionalUsers = 4
	p.SessionMedian = 8 * time.Minute
	p.GapMedian = 10 * time.Minute
	p.ThinkMean = 5 * time.Second
	p.EmitBackupNoise = true
	return p
}

func runShort(t *testing.T, seed int64, d time.Duration) *Cluster {
	t.Helper()
	cfg := DefaultConfig(shortParams(seed))
	cfg.NumServers = 2
	c := New(cfg)
	c.Run(d)
	return c
}

func TestClusterEndToEnd(t *testing.T) {
	c := runShort(t, 1, 2*time.Hour)
	recs := c.Trace()
	if len(recs) < 500 {
		t.Fatalf("only %d trace records", len(recs))
	}
	// Records are time-ordered per server stream after merge.
	merged, err := trace.Collect(trace.Merge(c.PerServerStreams()...))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time < merged[i-1].Time {
			t.Fatalf("merged trace out of order at %d", i)
		}
	}
	// Backup noise was emitted raw but scrubbed by the merge.
	raw, scrubbed := 0, 0
	for _, r := range recs {
		if r.Flags&trace.FlagSelfTrace != 0 {
			raw++
		}
	}
	for _, r := range merged {
		if r.Flags&trace.FlagSelfTrace != 0 {
			scrubbed++
		}
	}
	if raw == 0 {
		t.Error("no backup noise emitted")
	}
	if scrubbed != 0 {
		t.Error("backup noise survived the merge")
	}
}

func TestClusterAnalysesProduceSaneShapes(t *testing.T) {
	c := runShort(t, 2, 3*time.Hour)
	merged := trace.Merge(c.PerServerStreams()...)
	ov := analysis.NewOverall()
	ap := analysis.NewAccessPatterns()
	lt := analysis.NewLifetimes()
	ua := analysis.NewUserActivity()
	ca := analysis.NewConsistencyActions()
	if err := analysis.Run(merged, ov, ap, lt, ua, ca); err != nil {
		t.Fatal(err)
	}
	if ov.Opens == 0 || ov.Closes == 0 {
		t.Fatal("no opens in trace")
	}
	if ov.MBReadFiles <= 0 || ov.MBWrittenFiles <= 0 {
		t.Errorf("traffic: read=%g written=%g MB", ov.MBReadFiles, ov.MBWrittenFiles)
	}
	// Reads should dominate writes (the paper's 4:1 application ratio,
	// loosely).
	if ov.MBReadFiles < ov.MBWrittenFiles {
		t.Errorf("writes exceed reads: %g < %g", ov.MBReadFiles, ov.MBWrittenFiles)
	}
	// Access mix: read-only must dominate.
	roAcc, _ := ap.ClassPct(analysis.ReadOnly)
	if roAcc < 50 {
		t.Errorf("read-only accesses = %.1f%%, expected dominant", roAcc)
	}
	// Sequential whole-file reads dominate read-only accesses.
	wf, _ := ap.SeqPct(analysis.ReadOnly, analysis.WholeFile)
	if wf < 50 {
		t.Errorf("whole-file read pct = %.1f%%", wf)
	}
	// Some files die young (temporaries).
	if lt.Deleted == 0 {
		t.Fatal("no deletions observed")
	}
	if lt.PctFilesUnder30s() < 20 {
		t.Errorf("files under 30s = %.1f%%", lt.PctFilesUnder30s())
	}
	// Activity plausible.
	if ua.TenMinAll.AvgActiveUsers <= 0 {
		t.Error("no active users")
	}
	if ca.FileOpens == 0 {
		t.Error("no file opens in consistency analyzer")
	}
}

func TestClusterCountersProduceSection5Tables(t *testing.T) {
	c := runShort(t, 3, 3*time.Hour)

	t4 := c.Table4Report()
	if t4.AvgSizeKB <= 0 {
		t.Errorf("table 4 avg size = %g", t4.AvgSizeKB)
	}
	if t4.ActiveIntervals15 == 0 {
		t.Error("no active intervals sampled")
	}

	t5 := c.Table5Report()
	if t5.TotalBytes == 0 {
		t.Fatal("no raw traffic")
	}
	sum := t5.FileReadPct + t5.FileWritePct + t5.PagingCacheableReadPct +
		t5.PagingBackingReadPct + t5.PagingBackingWritePct +
		t5.SharedReadPct + t5.SharedWritePct + t5.DirReadPct
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("table 5 percentages sum to %g", sum)
	}
	if t5.FileReadPct <= t5.FileWritePct {
		t.Errorf("raw reads (%g%%) should exceed raw writes (%g%%)", t5.FileReadPct, t5.FileWritePct)
	}

	t6 := c.Table6Report()
	if t6.All.ReadMissPct <= 0 || t6.All.ReadMissPct >= 100 {
		t.Errorf("read miss pct = %g", t6.All.ReadMissPct)
	}
	if t6.All.WritebackPct <= 0 || t6.All.WritebackPct > 150 {
		t.Errorf("writeback pct = %g", t6.All.WritebackPct)
	}
	// Delayed writes must save some bytes (deleted temporaries).
	if t6.BytesSavedByDeletePct <= 0 {
		t.Errorf("no delayed-write savings: %g", t6.BytesSavedByDeletePct)
	}

	t7 := c.Table7Report()
	if t7.TotalBytes == 0 {
		t.Fatal("no server traffic")
	}
	if t7.ReadPct+t7.WritePct < 99.9 || t7.ReadPct+t7.WritePct > 100.1 {
		t.Errorf("table 7 read+write = %g", t7.ReadPct+t7.WritePct)
	}

	t9 := c.Table9Report()
	var pctSum float64
	for _, p := range t9.Pct {
		pctSum += p
	}
	if pctSum < 99 || pctSum > 101 {
		t.Errorf("table 9 reasons sum to %g", pctSum)
	}

	t10 := c.Table10Report()
	if t10.FileOpens == 0 {
		t.Fatal("no file opens at servers")
	}
	if t10.RecallPct < 0 || t10.RecallPct > 50 {
		t.Errorf("recall pct = %g", t10.RecallPct)
	}
}

func TestClusterDeterminism(t *testing.T) {
	runOnce := func() (int, int64) {
		c := runShort(t, 4, time.Hour)
		total := c.Net.Total()
		return len(c.Trace()), total.TotalBytes()
	}
	n1, b1 := runOnce()
	n2, b2 := runOnce()
	if n1 != n2 || b1 != b2 {
		t.Errorf("nondeterministic: %d/%d records, %d/%d bytes", n1, n2, b1, b2)
	}
}

func TestClusterCacheFiltersServerTraffic(t *testing.T) {
	c := runShort(t, 5, 3*time.Hour)
	t5 := c.Table5Report()
	t7 := c.Table7Report()
	// The caches must absorb a substantial share: server bytes well below
	// raw bytes (the paper measured ~50%).
	ratio := float64(t7.TotalBytes) / float64(t5.TotalBytes)
	if ratio >= 1.0 {
		t.Errorf("caches filtered nothing: server/raw = %.2f", ratio)
	}
	if ratio < 0.05 {
		t.Errorf("implausibly low server traffic: %.2f", ratio)
	}
}

func TestTraceSinkReceivesRecords(t *testing.T) {
	var n int
	cfg := DefaultConfig(shortParams(6))
	cfg.NumServers = 1
	cfg.TraceSink = func(trace.Record) { n++ }
	c := New(cfg)
	c.Run(time.Hour)
	if n == 0 {
		t.Error("sink received nothing")
	}
	if len(c.Trace()) != 0 {
		t.Error("records buffered despite sink")
	}
}

func TestClusterEdgeConfigurations(t *testing.T) {
	// A minimal cluster: one server, two clients, two users, zero-length
	// run — construction and teardown must be clean.
	p := workload.Default(99)
	p.NumClients, p.DailyUsers, p.OccasionalUsers = 2, 2, 0
	cfg := DefaultConfig(p)
	cfg.NumServers = 1
	c := New(cfg)
	c.Run(0)
	if c.Sim.Pending() != 0 {
		t.Errorf("pending events after zero-length run: %d", c.Sim.Pending())
	}
	// No user activity ran — only the system processes' boot page-ins.
	if got := c.Engine.Stats().ProgramsRun; got != 0 {
		t.Errorf("programs ran in a zero-length run: %d", got)
	}
	if t10 := c.Table10Report(); t10.FileOpens != 0 {
		t.Errorf("file opens in a zero-length run: %d", t10.FileOpens)
	}
	if t8 := c.Table8Report(); t8.FilePct != 0 || t8.VMPct != 0 {
		t.Errorf("idle cluster replacements: %+v", t8)
	}
}

func TestClusterRejectsZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero servers")
		}
	}()
	cfg := DefaultConfig(shortParams(1))
	cfg.NumServers = 0
	New(cfg)
}
