// Package faults is the deterministic fault-injection subsystem: seedable
// schedules of server crashes, workstation crashes, network partitions,
// drop windows and delay windows, driven entirely by the simulation clock
// so that a faulted run is exactly as reproducible as a healthy one. The
// paper's system survived real server crashes with "at most 30 seconds" of
// lost work and no user-visible inconsistency; this package exists to make
// those claims testable — the invariant harness in faults/check replays
// randomized schedules against a live cluster and audits what survives.
package faults
