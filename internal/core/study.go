// Package core is the reproduction's public façade: it packages the whole
// measurement study — the paper's primary contribution — as a library.
// A Study runs the two campaigns the paper describes: the eight 24-hour
// trace collections analyzed in Section 4 (Tables 1-3, Figures 1-4, plus
// the trace-driven consistency simulations of Tables 10-12), and the
// multi-day kernel-counter collection behind the Section 5 cache tables
// (Tables 4-9).
//
// Everything is deterministic given the trace number / seed, and every
// run can be scaled down (fewer hours, fewer clients) for quick
// experimentation; cmd/experiments drives full-scale runs.
package core

import (
	"time"

	"spritefs/internal/analysis"
	"spritefs/internal/cluster"
	"spritefs/internal/consistency"
	"spritefs/internal/trace"
	"spritefs/internal/workload"
)

// TraceResult bundles every Section 4 analysis of one trace, plus the
// trace-driven consistency simulations of Sections 5.5-5.6.
type TraceResult struct {
	TraceNum int
	Hours    float64

	Overall  *analysis.Overall
	Activity *analysis.UserActivity
	Access   *analysis.AccessPatterns
	Lifetime *analysis.Lifetimes
	Actions  *analysis.ConsistencyActions

	Stale60  consistency.StaleResult
	Stale3   consistency.StaleResult
	Overhead consistency.Overhead

	Records int
}

// TraceOptions scales a trace run.
type TraceOptions struct {
	// Hours of simulated time (the paper's traces are 24-hour).
	Hours float64
	// Scale shrinks the community: 1.0 is the full 40-client cluster;
	// 0.25 runs a quarter-size cluster for quick checks. Values <= 0
	// default to 1.0.
	Scale float64
	// SeedOffset perturbs the trace's seed (repeat runs).
	SeedOffset int64
}

// scaleParams shrinks the community proportionally.
func scaleParams(p workload.Params, scale float64) workload.Params {
	if scale <= 0 || scale >= 1 {
		return p
	}
	shrink := func(n int) int {
		v := int(float64(n) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	p.NumClients = shrink(p.NumClients)
	p.DailyUsers = shrink(p.DailyUsers)
	p.OccasionalUsers = shrink(p.OccasionalUsers)
	return p
}

// RunTrace executes trace configuration n (1..8) and all its analyses.
func RunTrace(n int, opts TraceOptions) (*TraceResult, error) {
	p := workload.TraceParams(n)
	p.Seed += opts.SeedOffset
	p = scaleParams(p, opts.Scale)
	hours := opts.Hours
	if hours <= 0 {
		hours = 24
	}

	cfg := cluster.DefaultConfig(p)
	cfg.SamplePeriod = 0 // Section 4 runs need no counter sampling
	cl := cluster.New(cfg)
	cl.Run(time.Duration(hours * float64(time.Hour)))

	res := &TraceResult{TraceNum: n, Hours: hours}
	res.Overall = analysis.NewOverall()
	res.Activity = analysis.NewUserActivity()
	res.Access = analysis.NewAccessPatterns()
	res.Lifetime = analysis.NewLifetimes()
	res.Actions = analysis.NewConsistencyActions()

	// Merge the per-server streams (scrubbing backup noise) exactly as
	// the paper's post-processing did, then run every analyzer in one
	// pass.
	merged, err := trace.Collect(trace.Merge(cl.PerServerStreams()...))
	if err != nil {
		return nil, err
	}
	res.Records = len(merged)
	if err := analysis.Run(trace.NewSliceStream(merged),
		res.Overall, res.Activity, res.Access, res.Lifetime, res.Actions); err != nil {
		return nil, err
	}

	shared := consistency.CollectShared(merged)
	res.Stale60 = consistency.SimulateStale(shared, 60*time.Second)
	res.Stale3 = consistency.SimulateStale(shared, 3*time.Second)
	res.Overhead = consistency.SimulateOverhead(shared)
	return res, nil
}

// CounterResult bundles the Section 5 counter-study tables.
type CounterResult struct {
	Days float64

	Table4  cluster.Table4
	Table5  cluster.Table5
	Table6  cluster.Table6
	Table7  cluster.Table7
	Table8  cluster.Table8
	Table9  cluster.Table9
	Table10 cluster.Table10
	Storage cluster.ServerStorage

	NetUtilization float64
}

// CounterOptions scales the counter campaign.
type CounterOptions struct {
	// Days of simulated time (the paper collected two weeks).
	Days float64
	// Scale shrinks the community as in TraceOptions.
	Scale float64
	Seed  int64
}

// RunCounterStudy reproduces the Section 5 measurement campaign: the
// cluster runs with counters sampled periodically and no tracing, and the
// tables are computed from the counters.
func RunCounterStudy(opts CounterOptions) *CounterResult {
	days := opts.Days
	if days <= 0 {
		days = 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 424242
	}
	p := workload.Default(seed)
	p.EmitBackupNoise = false
	// The paper's two-week counter window spanned the big-file class
	// projects too; the counter study therefore includes them (their
	// multi-megabyte inputs are what keep read miss ratios high even
	// with multi-megabyte caches — Section 5.2).
	p.BigSimUsers = 1
	p.SimInputMB = 6
	p.SimOutputMB = 2
	p = scaleParams(p, opts.Scale)

	cfg := cluster.DefaultConfig(p)
	cfg.CollectTrace = false
	cfg.SamplePeriod = time.Minute
	cl := cluster.New(cfg)
	dur := time.Duration(days * 24 * float64(time.Hour))
	cl.Run(dur)

	return &CounterResult{
		Days:           days,
		Table4:         cl.Table4Report(),
		Table5:         cl.Table5Report(),
		Table6:         cl.Table6Report(),
		Table7:         cl.Table7Report(),
		Table8:         cl.Table8Report(),
		Table9:         cl.Table9Report(),
		Table10:        cl.Table10Report(),
		Storage:        cl.ServerStorageReport(),
		NetUtilization: cl.Net.Utilization(dur),
	}
}
