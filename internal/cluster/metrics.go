package cluster

import (
	"spritefs/internal/client"
	"spritefs/internal/faults"
	"spritefs/internal/metrics"
	"spritefs/internal/netsim"
	"spritefs/internal/server"
	"spritefs/internal/sim"
)

// RegisterComponents registers a full component stack into one registry.
// Both assemblers (the live Cluster and the replay Engine) call this — or,
// for lazily materialized clients, its per-component pieces — so that any
// run exposes the identical metric families and Report projections read
// from one store regardless of who built the components.
//
// sm, when non-nil, also exposes the simulation core's scheduler gauges
// (event-queue depth, event-pool occupancy, armed timer-wheel timers) so
// profiling runs can watch scheduler pressure alongside the model metrics.
func RegisterComponents(r *metrics.Registry, sm *sim.Sim, clients []*client.Client, servers []*server.Server, net *netsim.Network, inj *faults.Injector) {
	if sm != nil {
		r.Int(metrics.Desc{Name: "spritefs_sim_events_pending", Unit: "events",
			Help: "Events currently scheduled on the simulator (one-shot events plus armed tickers).",
			Kind: metrics.Gauge},
			nil, func() int64 { return int64(sm.Pending()) })
		r.Int(metrics.Desc{Name: "spritefs_sim_event_pool_free", Unit: "events",
			Help: "Recycled one-shot event arena slots awaiting reuse; the steady-state allocation-free scheduler draws from this pool.",
			Kind: metrics.Gauge},
			nil, func() int64 { return int64(sm.EventPoolFree()) })
		r.Int(metrics.Desc{Name: "spritefs_sim_wheel_timers", Unit: "timers",
			Help: "Recurring timers armed on the hierarchical timer wheel (periodic daemons created via Every).",
			Kind: metrics.Gauge},
			nil, func() int64 { return int64(sm.WheelTimers()) })
	}
	if net != nil {
		net.RegisterMetrics(r)
	}
	for _, s := range servers {
		s.RegisterMetrics(r)
	}
	for _, cl := range clients {
		cl.RegisterMetrics(r)
	}
	if inj != nil {
		inj.RegisterMetrics(r)
	}
}

// Registry returns the central metric registry behind this view. Views
// built by a Cluster or replay Engine carry the registry those assemblers
// populated at construction time; a hand-assembled Metrics (tests, ad-hoc
// tools) gets one built on first use from its component slices.
func (m *Metrics) Registry() *metrics.Registry {
	if m.Reg == nil {
		m.Reg = metrics.New()
		RegisterComponents(m.Reg, nil, m.Clients, m.Servers, m.Net, nil)
	}
	return m.Reg
}
