// Package check audits a fault-injected system against the invariants the
// crash-recovery protocol promises. The checks are written against the
// faults.System view, so the same auditor runs over a live cluster, a
// trace replay engine, or a hand-built test rig.
//
// The invariants, in the order checked:
//
//  1. Cache accounting is structurally sound on every client and every
//     server store (block counts, dirty sets, size bookkeeping).
//  2. Open-table agreement: for every file a server knows, the server's
//     per-client read/write registration counts equal the handles the
//     client actually holds. A server crash tears its half down; the
//     recovery protocol must rebuild it exactly — no leaked opens, no
//     double-counted re-registrations.
//  3. Conservation of written-back bytes: every byte a client shipped as
//     a writeback was accepted by some server, and servers accepted no
//     byte that no client sent. Crashes may destroy cached data, but they
//     must never mint or vanish acknowledged transfers.
//  4. Cacheability discipline: a file marked uncacheable is open
//     somewhere. Servers clear the flag when the last opener leaves, and
//     crash recovery must not resurrect it for closed files.
//
// Run requires the system to be quiescent with respect to recovery: every
// scheduled outage healed and its recovery sweep completed. Mid-outage,
// the two sides legitimately disagree — that window is exactly what the
// recovery protocol exists to close.
package check

import (
	"fmt"

	"spritefs/internal/faults"
)

// Violation is one invariant breach: which rule, and the evidence.
type Violation struct {
	Rule   string
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Run audits sys and returns every invariant violation found (nil when the
// system is consistent).
func Run(sys faults.System) []Violation {
	var vs []Violation
	bad := func(rule, format string, args ...interface{}) {
		vs = append(vs, Violation{rule, fmt.Sprintf(format, args...)})
	}
	clients := sys.Workstations()
	servers := sys.FileServers()

	// 1. Structural cache accounting, both sides of the wire.
	for _, ws := range clients {
		if err := ws.Cache.CheckInvariants(); err != nil {
			bad("client-cache", "client %d: %v", ws.ID(), err)
		}
	}
	for _, srv := range servers {
		if srv.Store == nil {
			continue
		}
		if err := srv.Store.CheckInvariants(); err != nil {
			bad("server-cache", "server %d: %v", srv.ID(), err)
		}
	}

	// 2. Open-table agreement, per (file, client) pair. Handles a client
	// holds on files no server knows are skipped: the file was deleted
	// while the holder was cut off, and those handles no-op by design.
	counts := make([]map[uint64][2]int, len(clients))
	for i, ws := range clients {
		counts[i] = ws.HandleCounts()
	}
	for _, srv := range servers {
		for _, id := range srv.FileIDs() {
			f := srv.Lookup(id)
			if f == nil {
				continue
			}
			for i, ws := range clients {
				rd, wr := f.Registration(ws.ID())
				want := counts[i][id]
				if rd != want[0] || wr != want[1] {
					bad("open-tables",
						"file %#x client %d: server %d registers r=%d w=%d, client holds r=%d w=%d",
						id, ws.ID(), srv.ID(), rd, wr, want[0], want[1])
				}
			}
		}
	}

	// 3. Conservation of written-back bytes across the whole system.
	var shipped, accepted int64
	for _, ws := range clients {
		shipped += ws.BytesWrittenBack()
	}
	for _, srv := range servers {
		accepted += srv.Stats().WriteBackBytes
	}
	if shipped != accepted {
		bad("conservation", "clients shipped %d writeback bytes, servers accepted %d",
			shipped, accepted)
	}

	// 4. Uncacheable files are open files.
	for _, srv := range servers {
		for _, id := range srv.FileIDs() {
			f := srv.Lookup(id)
			if f == nil {
				continue
			}
			if f.Uncacheable() && f.Openers() == 0 {
				bad("cacheability", "file %#x on server %d uncacheable with zero openers",
					id, srv.ID())
			}
		}
	}
	return vs
}
