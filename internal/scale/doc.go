// Package scale grows the measured 40-workstation, one-Ethernet cluster
// into a sharded topology — many Ethernet segments, each with its own
// server group and community slice, joined by an inter-segment router —
// and runs it on a deterministic parallel executor.
//
// The topology is declarative: Config names the paper's community, a
// population multiplier, a shard count, and the router's latency and
// bandwidth; New instantiates one hermetic cluster (simulator, netsim
// segment, servers, clients, workload engine) per shard plus a static
// file→(shard, server) placement map of the files visible across
// segments. A configurable slice of each shard's traffic crosses the
// router to remote shards (reads of shared artifacts, writes into remote
// logs), so segments are coupled exactly the way wide-area successors of
// Sprite couple their sites.
//
// The executor is a conservative parallel discrete-event scheme: the
// router's propagation latency is a hard lower bound on cross-shard
// message delay, so every shard may advance one lookahead window (an
// epoch) without hearing from the others. One goroutine per worker runs
// shards through the epoch; at the barrier the coordinator routes the
// epoch's outboxes and delivers them in sorted (arrival, shard, seq)
// order. Because shards share no mutable state and the barrier exchange
// is totally ordered, the parallel run is byte-identical to the
// sequential one at any worker count and GOMAXPROCS — the property
// TestParallelMatchesSequential pins down and `make scalecheck` guards
// under the race detector.
package scale
