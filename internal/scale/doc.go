// Package scale grows the measured 40-workstation, one-Ethernet cluster
// into a sharded topology — many Ethernet segments, each with its own
// server group and community slice, joined by an inter-segment router —
// and runs it on a deterministic parallel executor.
//
// The topology is declarative: Config names the paper's community, a
// population multiplier, a shard count, and the router's latency and
// bandwidth (uniform or per-link). New instantiates one hermetic cluster
// (simulator, netsim segment, servers, clients, workload engine) per
// shard plus a static file→(shard, server) placement map of the files
// visible across segments. A configurable slice of each shard's traffic
// crosses the router to remote shards (reads of shared artifacts, writes
// into remote logs), so segments are coupled exactly the way wide-area
// successors of Sprite couple their sites.
//
// The executor is a conservative parallel discrete-event scheme built on
// per-link channel clocks (null-message style): each link's latency is a
// hard lower bound on cross-shard message delay, so each round every
// shard advertises a floor on its next possible send, the floors relax
// through the cheapest-latency path matrix (bounding reply chains), and
// every shard advances to the minimum of its inbound channel clocks —
// not to the global minimum the old epoch barrier forced. Clock advances
// on links that carry no payload are the protocol's null messages; they
// keep idle links from stalling the pipeline, and a serialized
// stall-breaker restores progress on zero-latency links. One goroutine
// per worker runs the shards that have work; at the exchange the
// coordinator routes the round's outboxes and delivers them in sorted
// (arrival, shard, seq) order. Because shards share no mutable state and
// the exchange is totally ordered, the parallel run is byte-identical to
// the sequential one at any worker count and GOMAXPROCS — the property
// TestParallelMatchesSequential and the determinism fuzz suite pin down
// and `make scalecheck` guards under the race detector.
package scale
