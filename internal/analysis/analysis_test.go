package analysis

import (
	"math"
	"testing"
	"time"

	"spritefs/internal/trace"
)

// script builds trace records tersely for tests. Per-handle user, client
// and file are propagated onto every subsequent record for the handle.
type script struct {
	recs   []trace.Record
	handle uint64
	opens  map[uint64]trace.Record
}

func (s *script) add(r trace.Record) { s.recs = append(s.recs, r) }

// open appends an open record and returns the handle.
func (s *script) open(t time.Duration, user, client int32, file uint64, read, write bool) uint64 {
	if s.opens == nil {
		s.opens = make(map[uint64]trace.Record)
	}
	s.handle++
	var flags uint8
	if read {
		flags |= trace.FlagReadMode
	}
	if write {
		flags |= trace.FlagWriteMode
	}
	rec := trace.Record{Time: t, Kind: trace.KindOpen, User: user, Client: client, File: file, Handle: s.handle, Flags: flags}
	s.opens[s.handle] = rec
	s.add(rec)
	return s.handle
}

func (s *script) onHandle(t time.Duration, h uint64, kind trace.Kind) trace.Record {
	o := s.opens[h]
	return trace.Record{Time: t, Kind: kind, User: o.User, Client: o.Client, File: o.File, Handle: h}
}

func (s *script) read(t time.Duration, h uint64, off, n int64) {
	r := s.onHandle(t, h, trace.KindRead)
	r.Offset, r.Length = off, n
	s.add(r)
}

func (s *script) write(t time.Duration, h uint64, off, n int64) {
	r := s.onHandle(t, h, trace.KindWrite)
	r.Offset, r.Length = off, n
	s.add(r)
}

func (s *script) seek(t time.Duration, h uint64, pos int64) {
	r := s.onHandle(t, h, trace.KindReposition)
	r.Offset = pos
	s.add(r)
}

func (s *script) close(t time.Duration, h uint64, size int64) {
	r := s.onHandle(t, h, trace.KindClose)
	r.Size = size
	r.Flags = s.opens[h].Flags // preserve the open's mode flags
	s.add(r)
}

func run(t *testing.T, recs []trace.Record, sinks ...Sink) {
	t.Helper()
	if err := Run(trace.NewSliceStream(recs), sinks...); err != nil {
		t.Fatal(err)
	}
}

func TestOverallCounts(t *testing.T) {
	var s script
	h := s.open(time.Second, 1, 0, 10, true, false)
	s.read(2*time.Second, h, 0, 1<<20)
	s.close(3*time.Second, h, 1<<20)
	h2 := s.open(4*time.Second, 2, 1, 11, false, true)
	s.write(5*time.Second, h2, 0, 2<<20)
	s.close(6*time.Second, h2, 2<<20)
	s.add(trace.Record{Time: 7 * time.Second, Kind: trace.KindDelete, User: 2, File: 11})
	s.add(trace.Record{Time: 8 * time.Second, Kind: trace.KindDirRead, User: 1, File: 12, Length: 512, Flags: trace.FlagDirectory})
	s.add(trace.Record{Time: 9 * time.Second, Kind: trace.KindRead, User: 3, File: 10, Length: 100, Flags: trace.FlagMigrated})

	o := NewOverall()
	run(t, s.recs, o)
	if o.Users != 3 || o.MigrationUsers != 1 {
		t.Errorf("users = %d/%d", o.Users, o.MigrationUsers)
	}
	if o.Opens != 2 || o.Closes != 2 || o.Deletes != 1 {
		t.Errorf("counts: %+v", o)
	}
	if math.Abs(o.MBReadFiles-(1+100.0/(1<<20))) > 1e-6 {
		t.Errorf("MB read = %g", o.MBReadFiles)
	}
	if o.MBWrittenFiles != 2 {
		t.Errorf("MB written = %g", o.MBWrittenFiles)
	}
	if math.Abs(o.MBReadDirs-512.0/(1<<20)) > 1e-9 {
		t.Errorf("MB dirs = %g", o.MBReadDirs)
	}
	if o.Duration != 9*time.Second {
		t.Errorf("duration = %v", o.Duration)
	}
}

func TestUserActivityThroughput(t *testing.T) {
	var s script
	// One user reads 1 MB at t=1s — a single 10-minute interval, a single
	// 10-second interval.
	h := s.open(time.Second, 1, 0, 10, true, false)
	s.read(time.Second+500*time.Millisecond, h, 0, 1<<20)
	s.close(2*time.Second, h, 1<<20)

	u := NewUserActivity()
	run(t, s.recs, u)
	// 1 MB over a 600 s interval = 1.707 KB/s.
	want := float64(1<<20) / 1024 / 600
	if math.Abs(u.TenMinAll.AvgThroughputKBs-want) > 1e-9 {
		t.Errorf("10-min throughput = %g, want %g", u.TenMinAll.AvgThroughputKBs, want)
	}
	// 1 MB over a 10 s interval = 102.4 KB/s.
	want = float64(1<<20) / 1024 / 10
	if math.Abs(u.TenSecAll.AvgThroughputKBs-want) > 1e-9 {
		t.Errorf("10-sec throughput = %g, want %g", u.TenSecAll.AvgThroughputKBs, want)
	}
	if u.TenMinAll.MaxActiveUsers != 1 || u.TenMinMigrated.MaxActiveUsers != 0 {
		t.Errorf("active users: %d/%d", u.TenMinAll.MaxActiveUsers, u.TenMinMigrated.MaxActiveUsers)
	}
}

func TestUserActivityMigratedBurst(t *testing.T) {
	var s script
	// Migrated process moves 4 MB in one 10-second interval.
	s.add(trace.Record{Time: time.Second, Kind: trace.KindRead, User: 1, File: 1, Length: 4 << 20, Flags: trace.FlagMigrated})
	u := NewUserActivity()
	run(t, s.recs, u)
	if u.TenSecMigrated.PeakUserKBs != 4*1024.0/10 {
		t.Errorf("migrated peak = %g", u.TenSecMigrated.PeakUserKBs)
	}
	if u.TenSecAll.PeakUserKBs != u.TenSecMigrated.PeakUserKBs {
		t.Error("migrated traffic missing from All")
	}
}

func TestAccessPatternsWholeFileRead(t *testing.T) {
	var s script
	h := s.open(time.Second, 1, 0, 10, true, false)
	s.read(time.Second+10*time.Millisecond, h, 0, 4096)
	s.read(time.Second+20*time.Millisecond, h, 4096, 4096)
	s.close(time.Second+30*time.Millisecond, h, 8192)

	a := NewAccessPatterns()
	run(t, s.recs, a)
	if a.Counts[ReadOnly][WholeFile] != 1 {
		t.Errorf("counts = %+v", a.Counts)
	}
	accPct, bytePct := a.ClassPct(ReadOnly)
	if accPct != 100 || bytePct != 100 {
		t.Errorf("class pct = %g/%g", accPct, bytePct)
	}
	seqPct, seqByte := a.SeqPct(ReadOnly, WholeFile)
	if seqPct != 100 || seqByte != 100 {
		t.Errorf("seq pct = %g/%g", seqPct, seqByte)
	}
	// Both reads form ONE sequential run of 8192 bytes.
	if a.RunsByCount.N() != 1 {
		t.Errorf("runs = %d, want 1", a.RunsByCount.N())
	}
	if q := a.RunsByCount.Quantile(0.99); q < 8192 || q > 8192*1.5 {
		t.Errorf("run length quantile = %g", q)
	}
}

func TestAccessPatternsPartialSequential(t *testing.T) {
	var s script
	h := s.open(time.Second, 1, 0, 10, true, false)
	s.read(2*time.Second, h, 0, 1000) // file is 8192: not whole
	s.close(3*time.Second, h, 8192)
	a := NewAccessPatterns()
	run(t, s.recs, a)
	if a.Counts[ReadOnly][OtherSeq] != 1 {
		t.Errorf("counts = %+v", a.Counts)
	}
}

func TestAccessPatternsRandom(t *testing.T) {
	var s script
	h := s.open(time.Second, 1, 0, 10, true, false)
	s.read(2*time.Second, h, 4096, 100)
	s.seek(3*time.Second, h, 0)
	s.read(4*time.Second, h, 0, 100)
	s.close(5*time.Second, h, 8192)
	a := NewAccessPatterns()
	run(t, s.recs, a)
	if a.Counts[ReadOnly][Random] != 1 {
		t.Errorf("counts = %+v", a.Counts)
	}
	// The two runs enter the run-length distribution separately.
	if a.RunsByCount.N() != 2 {
		t.Errorf("runs = %d", a.RunsByCount.N())
	}
}

func TestAccessPatternsReadWriteClass(t *testing.T) {
	var s script
	h := s.open(time.Second, 1, 0, 10, true, true)
	s.read(2*time.Second, h, 0, 4096)
	s.write(3*time.Second, h, 4096, 100)
	s.close(4*time.Second, h, 4196)
	a := NewAccessPatterns()
	run(t, s.recs, a)
	// Read then write continuing at position 4096: a single sequential
	// run covering the whole file -> read-write whole-file.
	if a.Counts[ReadWrite][WholeFile] != 1 {
		t.Errorf("counts = %+v", a.Counts)
	}
}

func TestAccessPatternsWriteOnlyCreate(t *testing.T) {
	var s script
	h := s.open(time.Second, 1, 0, 10, false, true)
	s.write(2*time.Second, h, 0, 10000)
	s.close(3*time.Second, h, 10000)
	a := NewAccessPatterns()
	run(t, s.recs, a)
	if a.Counts[WriteOnly][WholeFile] != 1 {
		t.Errorf("counts = %+v", a.Counts)
	}
}

func TestAccessPatternsZeroByteOpenOnlyInFig3(t *testing.T) {
	var s script
	h := s.open(time.Second, 1, 0, 10, true, false)
	s.close(time.Second+100*time.Millisecond, h, 4096)
	a := NewAccessPatterns()
	run(t, s.recs, a)
	var totalAccesses int64
	for c := 0; c < NumClasses; c++ {
		for q := 0; q < NumSeqs; q++ {
			totalAccesses += a.Counts[c][q]
		}
	}
	if totalAccesses != 0 {
		t.Errorf("zero-byte access classified: %d", totalAccesses)
	}
	if a.OpenTimes.N() != 1 {
		t.Errorf("open times = %d", a.OpenTimes.N())
	}
	// 100 ms open duration.
	if f := a.OpenTimes.FracAtOrBelow(0.2); f != 1 {
		t.Errorf("open time distribution wrong: %g", f)
	}
}

func TestAccessPatternsIgnoresDirectories(t *testing.T) {
	var s script
	s.add(trace.Record{Time: time.Second, Kind: trace.KindOpen, Handle: 1, File: 5, Flags: trace.FlagDirectory | trace.FlagReadMode})
	s.add(trace.Record{Time: 2 * time.Second, Kind: trace.KindClose, Handle: 1, File: 5, Flags: trace.FlagDirectory})
	a := NewAccessPatterns()
	run(t, s.recs, a)
	if a.OpenTimes.N() != 0 {
		t.Error("directory open counted")
	}
}

func TestAccessPatternsUnclosedDiscarded(t *testing.T) {
	var s script
	h := s.open(time.Second, 1, 0, 10, true, false)
	s.read(2*time.Second, h, 0, 100)
	a := NewAccessPatterns()
	run(t, s.recs, a)
	var total int64
	for c := 0; c < NumClasses; c++ {
		for q := 0; q < NumSeqs; q++ {
			total += a.Counts[c][q]
		}
	}
	if total != 0 {
		t.Error("unclosed access classified")
	}
}

func TestLifetimes(t *testing.T) {
	var s script
	// File created at t=0 (oldest byte), last written t=10s, deleted t=20s.
	// Lifetime by files = ((20-0)+(20-10))/2 = 15 s.
	s.add(trace.Record{
		Time: 20 * time.Second, Kind: trace.KindDelete, File: 1,
		Offset: 0, Length: int64(10 * time.Second), Size: 1000,
	})
	l := NewLifetimes()
	run(t, s.recs, l)
	if l.Deleted != 1 || l.Live30s != 1 {
		t.Errorf("deleted=%d live30=%d", l.Deleted, l.Live30s)
	}
	if l.PctFilesUnder30s() != 100 {
		t.Errorf("pct under 30s = %g", l.PctFilesUnder30s())
	}
	if got := l.ByFiles.Quantile(0.5); got < 15 || got > 25 {
		t.Errorf("file lifetime quantile = %g, want ~15", got)
	}
	if l.BytesDeleted != 1000 {
		t.Errorf("bytes deleted = %d", l.BytesDeleted)
	}
	// All bytes are between 10 and 20 s old: all under 30 s.
	if l.PctBytesUnder30s() != 100 {
		t.Errorf("pct bytes under 30s = %g", l.PctBytesUnder30s())
	}
}

func TestLifetimesOldFileBytesSurvive30s(t *testing.T) {
	var s script
	// Created at t=0, last write at t=0, deleted at t=100s: everything
	// is 100 s old.
	s.add(trace.Record{
		Time: 100 * time.Second, Kind: trace.KindDelete, File: 1,
		Offset: 0, Length: 0, Size: 5000,
	})
	l := NewLifetimes()
	run(t, s.recs, l)
	if l.Live30s != 0 || l.Bytes30s != 0 {
		t.Errorf("old file counted as young: %d/%d", l.Live30s, l.Bytes30s)
	}
}

func TestLifetimesClampsFutureTimestamps(t *testing.T) {
	var s script
	s.add(trace.Record{
		Time: 5 * time.Second, Kind: trace.KindDelete, File: 1,
		Offset: int64(9 * time.Second), Length: int64(8 * time.Second), Size: 10,
	})
	l := NewLifetimes()
	run(t, s.recs, l)
	if l.Deleted != 1 {
		t.Error("record dropped")
	}
	// Clamped ages are >= 0; nothing negative may enter the histograms.
	if l.ByFiles.Total() != 1 {
		t.Error("file lifetime not recorded")
	}
}

func TestConsistencyActionsCWSAndRecall(t *testing.T) {
	var s script
	// Recall: client 0 writes and closes; client 1 opens.
	h := s.open(time.Second, 1, 0, 10, false, true)
	s.write(2*time.Second, h, 0, 100)
	s.close(3*time.Second, h, 100)
	s.recs[len(s.recs)-1].Client = 0
	h2 := s.open(4*time.Second, 2, 1, 10, true, false)
	s.recs[len(s.recs)-1].Client = 1
	s.close(5*time.Second, h2, 100)
	s.recs[len(s.recs)-1].Client = 1

	// CWS: clients 2 and 3 open file 20 concurrently, 3 writing.
	h3 := s.open(6*time.Second, 3, 2, 20, true, false)
	s.recs[len(s.recs)-1].Client = 2
	h4 := s.open(7*time.Second, 4, 3, 20, false, true)
	s.recs[len(s.recs)-1].Client = 3
	s.close(8*time.Second, h3, 0)
	s.recs[len(s.recs)-1].Client = 2
	s.close(9*time.Second, h4, 0)
	s.recs[len(s.recs)-1].Client = 3

	a := NewConsistencyActions()
	run(t, s.recs, a)
	if a.FileOpens != 4 {
		t.Fatalf("opens = %d", a.FileOpens)
	}
	if a.Recalls != 1 {
		t.Errorf("recalls = %d", a.Recalls)
	}
	if a.CWS != 1 {
		t.Errorf("cws = %d", a.CWS)
	}
	if a.PctRecalls() != 25 || a.PctCWS() != 25 {
		t.Errorf("pcts = %g/%g", a.PctRecalls(), a.PctCWS())
	}
}

func TestRunPropagatesStreamErrors(t *testing.T) {
	// A corrupt binary stream must surface its error through Run.
	bad := trace.Filter(trace.NewSliceStream(nil), func(*trace.Record) bool { return true })
	if err := Run(bad, NewOverall()); err != nil {
		t.Errorf("empty stream errored: %v", err)
	}
}

func TestUserActivitySDAndPeaks(t *testing.T) {
	var s script
	// Two users with different volumes in one 10-second interval.
	s.add(trace.Record{Time: time.Second, Kind: trace.KindRead, User: 1, File: 1, Length: 100 * 1024})
	s.add(trace.Record{Time: 2 * time.Second, Kind: trace.KindRead, User: 2, File: 2, Length: 300 * 1024})
	u := NewUserActivity()
	run(t, s.recs, u)
	r := u.TenSecAll
	if r.AvgThroughputKBs != 20 { // (10+30)/2 KB/s
		t.Errorf("avg = %g", r.AvgThroughputKBs)
	}
	if r.SDThroughputKBs != 10 {
		t.Errorf("sd = %g", r.SDThroughputKBs)
	}
	if r.PeakUserKBs != 30 || r.PeakTotalKBs != 40 {
		t.Errorf("peaks = %g/%g", r.PeakUserKBs, r.PeakTotalKBs)
	}
}

func TestAccessPatternsRepositionToCurrentPosStillBreaksRun(t *testing.T) {
	// The paper defines runs as bounded by reposition operations, even a
	// seek to the current position.
	var s script
	h := s.open(time.Second, 1, 0, 10, true, false)
	s.read(2*time.Second, h, 0, 1000)
	s.seek(3*time.Second, h, 1000) // no-op position, still a boundary
	s.read(4*time.Second, h, 1000, 1000)
	s.close(5*time.Second, h, 2000)
	a := NewAccessPatterns()
	run(t, s.recs, a)
	if a.RunsByCount.N() != 2 {
		t.Errorf("runs = %d, want 2 (reposition is a boundary)", a.RunsByCount.N())
	}
	if a.Counts[ReadOnly][Random] != 1 {
		t.Errorf("counts = %+v, want random", a.Counts)
	}
}

func TestLifetimesByteWeightingInterpolates(t *testing.T) {
	// Oldest byte written at t=0, newest at t=90s, deleted at t=100s:
	// byte ages run linearly from 100s (offset 0) down to 10s (last byte).
	var s script
	s.add(trace.Record{
		Time: 100 * time.Second, Kind: trace.KindDelete, File: 1,
		Offset: 0, Length: int64(90 * time.Second), Size: 1000,
	})
	l := NewLifetimes()
	run(t, s.recs, l)
	// Roughly the first quarter of bytes (ages 10-30s) fall under 30s.
	pct := l.PctBytesUnder30s()
	if pct < 10 || pct > 35 {
		t.Errorf("bytes under 30s = %g%%, want ~20-25%%", pct)
	}
	// By files: mean age (100+10)/2 = 55s > 30s.
	if l.Live30s != 0 {
		t.Error("file counted as young")
	}
}

func TestOverallSharedEventCounts(t *testing.T) {
	var s script
	s.add(trace.Record{Time: 1, Kind: trace.KindRead, User: 1, File: 1, Length: 10, Flags: trace.FlagShared})
	s.add(trace.Record{Time: 2, Kind: trace.KindWrite, User: 1, File: 1, Length: 10, Flags: trace.FlagShared})
	s.add(trace.Record{Time: 3, Kind: trace.KindRead, User: 1, File: 1, Length: 10})
	o := NewOverall()
	run(t, s.recs, o)
	if o.SharedReads != 1 || o.SharedWrites != 1 {
		t.Errorf("shared events = %d/%d", o.SharedReads, o.SharedWrites)
	}
}
