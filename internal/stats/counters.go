package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a named set of int64 counters, mirroring the ~50 kernel
// counters the paper's authors added to the Sprite kernels (Section 3).
// A Counters value is safe for concurrent use; the simulators are
// single-threaded per cluster, but analyses may read snapshots from other
// goroutines.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Add increments counter name by delta (which may be negative).
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Inc increments counter name by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the current value of counter name (0 if never touched).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Delta returns the difference between a later snapshot b and an earlier
// snapshot a (b - a), including keys present in only one of the two.
func Delta(a, b map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(b))
	for k, v := range b {
		out[k] = v - a[k]
	}
	for k, v := range a {
		if _, ok := b[k]; !ok {
			out[k] = -v
		}
	}
	return out
}

// String renders the counters sorted by name, one per line.
func (c *Counters) String() string {
	snap := c.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-40s %d\n", k, snap[k])
	}
	return b.String()
}

// Ratio returns num/den as a percentage, or 0 if den == 0. It is the
// pervasive "percent of" helper for the Section 5 tables.
func Ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// RatioF is Ratio for floating-point numerator and denominator.
func RatioF(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * num / den
}
