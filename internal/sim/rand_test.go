package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRandDeterministicAndForkIndependent(t *testing.T) {
	a, b := NewRand(9), NewRand(9)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	// A fork must not disturb the parent's future sequence relative to an
	// identically-seeded parent that also forked.
	c, d := NewRand(9), NewRand(9)
	_ = c.Fork()
	_ = d.Fork()
	for i := 0; i < 100; i++ {
		if c.Float64() != d.Float64() {
			t.Fatal("forked parents diverged")
		}
	}
}

func TestExpMean(t *testing.T) {
	g := NewRand(1)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += g.Exp(50)
	}
	mean := sum / n
	if mean < 48 || mean > 52 {
		t.Errorf("Exp mean = %g, want ~50", mean)
	}
}

func TestExpDur(t *testing.T) {
	g := NewRand(1)
	var sum time.Duration
	const n = 100000
	for i := 0; i < n; i++ {
		sum += g.ExpDur(time.Second)
	}
	mean := sum / n
	if mean < 950*time.Millisecond || mean > 1050*time.Millisecond {
		t.Errorf("ExpDur mean = %v, want ~1s", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	g := NewRand(2)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = g.LogNormal(4096, 1.5)
	}
	// Median estimate by counting below/above.
	below := 0
	for _, v := range vals {
		if v < 4096 {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.48 || frac > 0.52 {
		t.Errorf("fraction below median = %g, want ~0.5", frac)
	}
}

func TestParetoBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := g.Pareto(100, 1.2)
			if v < 100 {
				return false
			}
			b := g.BoundedPareto(100, 1e6, 1.2)
			if b < 100 || b > 1e6+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	g := NewRand(3)
	if v := g.BoundedPareto(100, 50, 1.0); v != 100 {
		t.Errorf("degenerate bounded pareto = %g, want xm", v)
	}
}

func TestBoundedParetoTailHeaviness(t *testing.T) {
	// With alpha close to 1, a visible fraction of mass must land far into
	// the tail — the property that produces the paper's multi-megabyte files.
	g := NewRand(4)
	const n = 50000
	big := 0
	for i := 0; i < n; i++ {
		if g.BoundedPareto(1024, 20<<20, 1.0) > 1<<20 {
			big++
		}
	}
	frac := float64(big) / n
	if frac < 0.0002 || frac > 0.05 {
		t.Errorf("fraction above 1 MB = %g, want small but nonzero", frac)
	}
}

func TestPickWeights(t *testing.T) {
	g := NewRand(5)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight choice picked %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if frac0 < 0.23 || frac0 > 0.27 {
		t.Errorf("weight-1 choice frac = %g, want ~0.25", frac0)
	}
}

func TestPickDegenerate(t *testing.T) {
	g := NewRand(6)
	if g.Pick(nil) != 0 {
		t.Error("Pick(nil) != 0")
	}
	if g.Pick([]float64{0, 0}) != 0 {
		t.Error("Pick(all zero) != 0")
	}
	if g.Pick([]float64{-1, 2}) != 1 {
		t.Error("negative weights must be skipped")
	}
}

func TestJitterBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRand(seed)
		for i := 0; i < 50; i++ {
			d := g.Jitter(time.Second, 0.2)
			if d < 800*time.Millisecond || d > 1200*time.Millisecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormal(t *testing.T) {
	g := NewRand(7)
	const n = 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if mean < 9.9 || mean > 10.1 || sd < 2.9 || sd > 3.1 {
		t.Errorf("Normal mean=%g sd=%g, want 10/3", mean, sd)
	}
}

func TestRangeBounds(t *testing.T) {
	g := NewRand(8)
	for i := 0; i < 1000; i++ {
		v := g.Range(5, 6)
		if v < 5 || v >= 6 {
			t.Fatalf("Range out of bounds: %g", v)
		}
	}
}
