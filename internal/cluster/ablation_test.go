package cluster

import (
	"testing"
	"time"

	"spritefs/internal/vm"
	"spritefs/internal/workload"
)

// ablationRun executes a small fixed workload under a mutated config.
func ablationRun(t *testing.T, mutate func(*Config)) *Cluster {
	t.Helper()
	p := workload.Default(8888)
	p.NumClients, p.DailyUsers, p.OccasionalUsers = 8, 6, 4
	p.EmitBackupNoise = false
	p.BigSimUsers = 1
	p.SimInputMB = 4
	p.SimOutputMB = 1
	cfg := DefaultConfig(p)
	cfg.NumServers = 2
	cfg.CollectTrace = false
	mutate(&cfg)
	c := New(cfg)
	c.Run(2 * time.Hour)
	return c
}

func TestAblationFixedCacheSizeMonotonicMisses(t *testing.T) {
	// Bigger fixed caches must not miss more.
	var prev float64 = 101
	for _, mb := range []int{1, 4, 16} {
		c := ablationRun(t, func(cfg *Config) { cfg.FixedCachePages = mb << 20 / vm.PageSize })
		miss := c.Table6Report().All.ReadMissPct
		if miss > prev+2 { // small tolerance: workloads differ slightly via timing
			t.Errorf("%d MB cache missed more than smaller cache: %.1f > %.1f", mb, miss, prev)
		}
		prev = miss
	}
}

func TestAblationLongerDelaySavesMoreBytes(t *testing.T) {
	short := ablationRun(t, func(cfg *Config) { cfg.WritebackDelay = 5 * time.Second })
	long := ablationRun(t, func(cfg *Config) { cfg.WritebackDelay = 10 * time.Minute })
	s6 := short.Table6Report()
	l6 := long.Table6Report()
	if l6.BytesSavedByDeletePct <= s6.BytesSavedByDeletePct {
		t.Errorf("longer delay saved less: %.1f%% vs %.1f%%",
			l6.BytesSavedByDeletePct, s6.BytesSavedByDeletePct)
	}
	if l6.All.WritebackPct >= s6.All.WritebackPct {
		t.Errorf("longer delay wrote back more: %.1f%% vs %.1f%%",
			l6.All.WritebackPct, s6.All.WritebackPct)
	}
}

func TestAblationPrefetchDoesNotCutReadBytes(t *testing.T) {
	// The paper's Section 5.2 claim: prefetch lowers the *miss count* but
	// cannot lower the bytes fetched from servers.
	off := ablationRun(t, func(cfg *Config) { cfg.PrefetchBlocks = 0 })
	on := ablationRun(t, func(cfg *Config) { cfg.PrefetchBlocks = 8 })
	offT6 := off.Table6Report()
	onT6 := on.Table6Report()
	if onT6.All.ReadMissPct >= offT6.All.ReadMissPct {
		t.Errorf("prefetch did not reduce miss ops: %.1f%% vs %.1f%%",
			onT6.All.ReadMissPct, offT6.All.ReadMissPct)
	}
	// The byte RATIO (fetched from servers / requested by applications)
	// is the paper's claim: prefetch cannot reduce it. Totals are not
	// comparable across runs because latency feedback changes how much
	// work the community completes before the fixed horizon.
	if onT6.All.ReadMissTrafficPct < 0.9*offT6.All.ReadMissTrafficPct {
		t.Errorf("prefetch reduced miss traffic ratio: %.1f%% vs %.1f%% (the paper says it cannot)",
			onT6.All.ReadMissTrafficPct, offT6.All.ReadMissTrafficPct)
	}
}

func TestServerStorageAbsorbsRepeatedFetches(t *testing.T) {
	c := ablationRun(t, func(cfg *Config) {})
	st := c.ServerStorageReport()
	if st.DiskReads == 0 && st.DiskWrites == 0 {
		t.Fatal("server disks never touched")
	}
	// The server cache must absorb a visible share of client fetches.
	if st.ReadHitPct <= 0 {
		t.Errorf("server cache hit rate = %.1f%%", st.ReadHitPct)
	}
}
