// Command tracefmt converts traces between the binary and text formats:
// binary traces (from cmd/tracegen) become grep/awk-able text, and edited
// text traces can be re-encoded for the analyzers.
//
// Usage:
//
//	tracefmt trace1.srv0 > trace1.srv0.txt         # binary -> text
//	tracefmt -encode trace1.srv0.txt > trace1.bin  # text -> binary
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spritefs/internal/trace"
)

func main() {
	encode := flag.Bool("encode", false, "encode text input back to binary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracefmt [-encode] tracefile")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *encode); err != nil {
		fmt.Fprintln(os.Stderr, "tracefmt:", err)
		os.Exit(1)
	}
}

func run(path string, encode bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return convert(f, os.Stdout, encode)
}

// convert copies a whole trace from in to out, decoding binary to text or
// (with encode) text back to binary.
func convert(in io.Reader, out io.Writer, encode bool) error {
	var src trace.Stream
	var sink interface {
		Write(*trace.Record) error
		Flush() error
	}
	if encode {
		r, err := trace.NewTextReader(in)
		if err != nil {
			return err
		}
		w, err := trace.NewWriter(out)
		if err != nil {
			return err
		}
		src, sink = r, w
	} else {
		r, err := trace.NewReader(in)
		if err != nil {
			return err
		}
		w, err := trace.NewTextWriter(out)
		if err != nil {
			return err
		}
		src, sink = r, w
	}
	for {
		rec, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := sink.Write(&rec); err != nil {
			return err
		}
	}
	return sink.Flush()
}
