package fscache

import (
	"testing"
	"time"
)

func TestDiscardAllMeasuresLoss(t *testing.T) {
	c := New(64)
	now := 10 * time.Second
	c.Write(1, 0, 6000, 0, Attr{}, now)           // two dirty blocks
	c.Write(2, 0, 100, 0, Attr{}, 25*time.Second) // one newer dirty block
	c.Read(3, 0, 4096, 4096, Attr{}, now)         // one clean block

	loss := c.DiscardAll(30 * time.Second)
	if loss.Blocks != 4 || loss.DirtyBlocks != 3 {
		t.Errorf("loss = %+v, want 4 blocks / 3 dirty", loss)
	}
	if loss.DirtyBytes != 6000+100 {
		t.Errorf("dirty bytes lost = %d, want 6100", loss.DirtyBytes)
	}
	if loss.MaxDirtyAge != 20*time.Second {
		t.Errorf("max dirty age = %v, want 20s", loss.MaxDirtyAge)
	}
	if c.NumBlocks() != 0 || c.DirtyBytes() != 0 {
		t.Errorf("cache not empty after crash: %d blocks, %d dirty bytes", c.NumBlocks(), c.DirtyBytes())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("post-crash invariants: %v", err)
	}
	// Counters (the measurement infrastructure) survive the crash.
	if c.Stats().All.BytesWritten != 6100 {
		t.Errorf("BytesWritten = %d after crash, want 6100", c.Stats().All.BytesWritten)
	}
}

func TestDirtyFilesSortedAndRecoverFlush(t *testing.T) {
	c := New(64)
	c.Write(9, 0, 100, 0, Attr{}, 0)
	c.Write(2, 0, 200, 0, Attr{}, 0)
	c.Read(5, 0, 100, 100, Attr{}, 0) // clean only

	got := c.DirtyFiles()
	if len(got) != 2 || got[0] != 2 || got[1] != 9 {
		t.Fatalf("DirtyFiles = %v, want [2 9]", got)
	}
	wbs := c.RecoverFlush(9, time.Second)
	if len(wbs) != 1 || wbs[0].Reason != CleanRecover || wbs[0].Bytes != 100 {
		t.Fatalf("RecoverFlush = %+v", wbs)
	}
	if c.FileDirty(9) {
		t.Error("file 9 still dirty after recovery flush")
	}
	if st := c.Stats(); st.Cleaned[CleanRecover] != 1 {
		t.Errorf("CleanRecover count = %d, want 1", st.Cleaned[CleanRecover])
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	c := New(64)
	c.Write(1, 0, 100, 0, Attr{}, 0)
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("clean cache flagged: %v", err)
	}
	c.dirtyBytes += 7 // corrupt the accounting
	if err := c.CheckInvariants(); err == nil {
		t.Error("corrupted dirtyBytes not detected")
	}
}
