package server

import (
	"testing"
	"time"
)

func TestCreateAssignsUniqueIDsAcrossServers(t *testing.T) {
	s0, s1 := New(0), New(1)
	a := s0.Create(false, 0)
	b := s0.Create(false, 0)
	c := s1.Create(false, 0)
	if a.ID == b.ID || a.ID == c.ID || b.ID == c.ID {
		t.Error("duplicate file ids")
	}
	if s0.NumFiles() != 2 || s1.NumFiles() != 1 {
		t.Error("file counts wrong")
	}
	if s0.Lookup(a.ID) != a || s0.Lookup(999) != nil {
		t.Error("lookup wrong")
	}
}

func TestNegativeServerIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(-1)
}

func TestOpenUnknownFile(t *testing.T) {
	s := New(0)
	if _, err := s.Open(42, 1, false, 0); err == nil {
		t.Error("open of unknown file succeeded")
	}
}

func TestSingleClientOpenCloseNoConsistencyActions(t *testing.T) {
	s := New(0)
	f := s.Create(false, 0)
	r, err := s.Open(f.ID, 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cacheable || r.RecallFrom != NoClient || r.StartedCWS {
		t.Errorf("reply = %+v", r)
	}
	if err := s.Close(f.ID, 1, true, true, time.Second); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FileOpens != 1 || st.Recalls != 0 || st.CWSEvents != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRecallOnOpenAfterOtherClientWrote(t *testing.T) {
	s := New(0)
	f := s.Create(false, 0)
	s.Open(f.ID, 1, true, 0)
	s.Close(f.ID, 1, true, true, time.Second) // client 1 may hold dirty data

	r, _ := s.Open(f.ID, 2, false, 2*time.Second)
	if r.RecallFrom != 1 {
		t.Errorf("RecallFrom = %d, want 1", r.RecallFrom)
	}
	if s.Stats().Recalls != 1 {
		t.Errorf("recalls = %d", s.Stats().Recalls)
	}
	// The same client re-opening its own dirty file: no recall.
	s.Close(f.ID, 2, false, false, 3*time.Second)
	s.Open(f.ID, 1, true, 4*time.Second)
	s.Close(f.ID, 1, true, true, 5*time.Second)
	r, _ = s.Open(f.ID, 1, false, 6*time.Second)
	if r.RecallFrom != NoClient {
		t.Errorf("self-open recalled: %+v", r)
	}
}

func TestRecallIsUpperBound(t *testing.T) {
	// Even if the client's daemon already flushed, the server still
	// recalls — it does not track flush completion (paper's caveat).
	s := New(0)
	f := s.Create(false, 0)
	s.Open(f.ID, 1, true, 0)
	s.Close(f.ID, 1, true, true, time.Second)
	s.WriteBack(f.ID, 1, 0, 4096, 2*time.Second) // daemon flushes
	r, _ := s.Open(f.ID, 2, false, 40*time.Second)
	if r.RecallFrom != 1 {
		t.Error("recall skipped after writeback; server should not track flushes")
	}
}

func TestConcurrentWriteSharingDisablesCaching(t *testing.T) {
	s := New(0)
	f := s.Create(false, 0)
	r1, _ := s.Open(f.ID, 1, false, 0)
	if !r1.Cacheable {
		t.Fatal("single reader not cacheable")
	}
	// Client 2 opens for write: CWS begins.
	r2, _ := s.Open(f.ID, 2, true, time.Second)
	if r2.Cacheable {
		t.Error("writer cacheable during CWS")
	}
	if !r2.StartedCWS {
		t.Error("StartedCWS not set")
	}
	if len(r2.DisableOn) != 1 || r2.DisableOn[0] != 1 {
		t.Errorf("DisableOn = %v, want [1]", r2.DisableOn)
	}
	if s.Stats().CWSEvents != 1 {
		t.Errorf("CWS events = %d", s.Stats().CWSEvents)
	}
	// A third client's open is uncacheable but NOT a new CWS event.
	r3, _ := s.Open(f.ID, 3, false, 2*time.Second)
	if r3.Cacheable || r3.StartedCWS {
		t.Errorf("third open: %+v", r3)
	}
	if s.Stats().CWSEvents != 1 {
		t.Error("CWS double counted")
	}

	// Sprite: uncacheable until closed by ALL clients.
	s.Close(f.ID, 2, true, false, 3*time.Second)
	s.Close(f.ID, 3, false, false, 4*time.Second)
	if !f.Uncacheable() {
		t.Error("file became cacheable while still open (Sprite keeps it off)")
	}
	s.Close(f.ID, 1, false, false, 5*time.Second)
	if f.Uncacheable() {
		t.Error("file still uncacheable after all closes")
	}
	// Fresh open is cacheable again.
	r, _ := s.Open(f.ID, 4, false, 6*time.Second)
	if !r.Cacheable {
		t.Error("file not cacheable after sharing ended")
	}
}

func TestTwoWritersSameClientNoCWS(t *testing.T) {
	// Two opens on the SAME machine do not constitute concurrent
	// write-sharing (the paper's definition requires several workstations).
	s := New(0)
	f := s.Create(false, 0)
	s.Open(f.ID, 1, true, 0)
	r, _ := s.Open(f.ID, 1, false, time.Second)
	if r.StartedCWS || !r.Cacheable {
		t.Errorf("same-machine sharing triggered CWS: %+v", r)
	}
}

func TestCloseWithoutOpenFails(t *testing.T) {
	s := New(0)
	f := s.Create(false, 0)
	if err := s.Close(f.ID, 1, false, false, 0); err == nil {
		t.Error("close without open succeeded")
	}
	// Close of a deleted file is tolerated.
	g := s.Create(false, 0)
	s.Open(g.ID, 1, false, 0)
	s.Delete(g.ID, time.Second)
	if err := s.Close(g.ID, 1, false, false, 2*time.Second); err != nil {
		t.Errorf("close after delete failed: %v", err)
	}
}

func TestDirectoriesNeverCacheable(t *testing.T) {
	s := New(0)
	d := s.Create(true, 0)
	r, _ := s.Open(d.ID, 1, false, 0)
	if r.Cacheable {
		t.Error("directory cacheable on client")
	}
	st := s.Stats()
	if st.DirOpens != 1 || st.FileOpens != 0 {
		t.Errorf("dir open miscounted: %+v", st)
	}
}

func TestWriteGrowsAndBumpsVersion(t *testing.T) {
	s := New(0)
	f := s.Create(false, 0)
	v0 := f.Version
	s.Write(f.ID, 1, 0, 5000, true, time.Second)
	if f.Size != 5000 {
		t.Errorf("size = %d", f.Size)
	}
	if f.Version == v0 {
		t.Error("version not bumped")
	}
	if s.Stats().CacheOffOps != 1 {
		t.Errorf("pass-through ops = %d", s.Stats().CacheOffOps)
	}
	// Overwrite inside the file does not shrink it.
	s.Write(f.ID, 1, 0, 100, false, 2*time.Second)
	if f.Size != 5000 {
		t.Errorf("size shrank to %d", f.Size)
	}
	s.Grow(f.ID, 8000, 3*time.Second)
	if f.Size != 8000 {
		t.Errorf("Grow: size = %d", f.Size)
	}
	s.Grow(f.ID, 100, 4*time.Second) // never shrinks
	if f.Size != 8000 {
		t.Errorf("Grow shrank file to %d", f.Size)
	}
}

func TestDeleteAndTruncate(t *testing.T) {
	s := New(0)
	f := s.Create(false, time.Second)
	s.Write(f.ID, 1, 0, 1000, true, 2*time.Second)
	got := s.Delete(f.ID, 10*time.Second)
	if got == nil || got.ID != f.ID {
		t.Fatal("delete returned wrong file")
	}
	if s.Lookup(f.ID) != nil {
		t.Error("file still present after delete")
	}
	if s.Delete(f.ID, 11*time.Second) != nil {
		t.Error("double delete returned a file")
	}

	g := s.Create(false, 0)
	s.Write(g.ID, 1, 0, 500, true, time.Second)
	tr := s.Truncate(g.ID, 5*time.Second)
	if tr == nil || tr.Size != 0 {
		t.Errorf("truncate: %+v", tr)
	}
	if tr.OldestByte != 5*time.Second {
		t.Errorf("OldestByte = %v", tr.OldestByte)
	}
	st := s.Stats()
	if st.Deletes != 1 || st.Truncates != 1 {
		t.Errorf("stats = %+v", st)
	}
	if s.Truncate(999, 0) != nil {
		t.Error("truncate of unknown file returned a file")
	}
}

func TestOpenersCountsDistinctClients(t *testing.T) {
	s := New(0)
	f := s.Create(false, 0)
	s.Open(f.ID, 1, false, 0)
	s.Open(f.ID, 1, true, 0) // same client, both modes: one opener
	s.Open(f.ID, 2, true, 0)
	if got := f.Openers(); got != 2 {
		t.Errorf("Openers = %d, want 2", got)
	}
	if got := f.WriterCount(); got != 2 {
		t.Errorf("WriterCount = %d, want 2", got)
	}
}

func TestRecallBumpsVersionSoReaderInvalidates(t *testing.T) {
	s := New(0)
	f := s.Create(false, 0)
	s.Open(f.ID, 1, true, 0)
	s.Close(f.ID, 1, true, true, time.Second)
	v := f.Version
	r, _ := s.Open(f.ID, 2, false, 2*time.Second)
	if r.Version <= v {
		t.Error("recalled open did not observe a newer version")
	}
}
