package main

import (
	"io"
	"strings"
	"testing"
)

// TestFlagValidation pins fail-fast on contradictory flag combinations.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error
	}{
		{"sample without out", []string{"-metrics-sample", "10s", "-trace", "x"}, "-metrics-out"},
		{"format without out", []string{"-metrics-format", "tsv", "-trace", "x"}, "-metrics-out"},
		{"bad format", []string{"-metrics-out", "-", "-metrics-format", "xml", "-trace", "x"}, "xml"},
		{"bad report", []string{"-report", "yaml", "-trace", "x"}, "yaml"},
		{"workers without sweep", []string{"-workers", "4", "-trace", "x"}, "-sweep"},
		{"zero workers", []string{"-workers", "0", "-sweep", "cache=512", "-trace", "x"}, "at least 1"},
		{"poll without poll mode", []string{"-poll", "5s", "-trace", "x"}, "-mode poll"},
		{"no traces", []string{}, "no trace files"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error %q, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestValidCombosPassValidation checks validation does not reject the
// documented invocations (they fail later, at trace open).
func TestValidCombosPassValidation(t *testing.T) {
	err := run([]string{"-trace", "/nonexistent", "-sweep", "cache=512", "-workers", "2",
		"-metrics-out", "-", "-metrics-sample", "10s", "-mode", "poll", "-poll", "5s"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "nonexistent") {
		t.Errorf("want trace-open error, got %v", err)
	}
}
